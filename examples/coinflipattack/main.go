// Coin-flip attack: the framework detecting a genuine protocol attack.
// Distributed XOR coin flipping is secure against passive adversaries
// (ε = 0), fully broken by a rushing adversary that corrupts the last
// player (bias exactly 1/2 against the strong ideal coin), and exactly
// realises the weaker, adversarially-biasable coin functionality.
//
// Run with: go run ./examples/coinflipattack
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/protocols/coinflip"
)

func emulate(label string, real, ideal dse.SPSIOA, adv, sim dse.PSIOA, templates [][]string) {
	rep, err := dse.SecureEmulates(real, ideal,
		[]dse.AdvSim{{Adv: adv, Sim: sim}},
		dse.Options{
			Envs:    []dse.PSIOA{coinflip.Env("x")},
			Schema:  &dse.PrefixPrioritySchema{Templates: templates},
			Insight: dse.Trace(),
			Eps:     0,
			Q1:      12,
		}, 50000)
	if err != nil {
		log.Fatal(err)
	}
	dist := 0.0
	for _, r := range rep.PerAdv {
		if r.MaxDist > dist {
			dist = r.MaxDist
		}
	}
	fmt.Printf("%-46s holds=%-5v distance=%.3f\n", label, rep.Holds, dist)
}

func main() {
	fmt.Println("XOR coin flipping (2 players), secure emulation at ε = 0:")
	passive := [][]string{
		{"pick", "share", "see", "toss", "announce", "fabshare", "result"},
		{"pick", "share", "see", "toss", "announce", "fabshare"},
	}
	rushing := [][]string{{"pick", "share", "bias1", "toss", "announce", "result"}}

	emulate("honest players vs strong ideal coin",
		coinflip.Real("x", 2), coinflip.Ideal("x"),
		coinflip.PassiveAdv("x", 2), coinflip.PassiveSim("x"), passive)
	emulate("rushing adversary vs strong ideal coin",
		coinflip.RealCorrupt("x", 2), coinflip.Ideal("x"),
		coinflip.RushingAdv("x"), coinflip.NullSim("x"), rushing)
	emulate("rushing adversary vs weak (biasable) coin",
		coinflip.RealCorrupt("x", 2), coinflip.WeakIdeal("x"),
		coinflip.RushingAdv("x"), coinflip.RushSim("x"), rushing)

	fmt.Println("\nThe rushing adversary's view (it answers the honest share with its complement):")
	w := dse.MustCompose(coinflip.Env("x"), coinflip.RealCorrupt("x", 2), coinflip.RushingAdv("x"))
	ss, err := (&dse.PrefixPrioritySchema{Templates: [][]string{{"pick", "share", "result"}}}).Enumerate(w, 8)
	if err != nil {
		log.Fatal(err)
	}
	em, err := dse.Measure(w, ss[0], 12)
	if err != nil {
		log.Fatal(err)
	}
	em.ForEach(func(f *dse.Frag, p float64) {
		fmt.Printf("  p=%.2f  %v\n", p, f.Actions())
	})
}
