// Quickstart: build a probabilistic automaton, compose it with an
// environment, resolve non-determinism with a scheduler, compute the exact
// execution measure, and check an approximate implementation relation.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/protocols/coin"
)

func main() {
	// A slightly biased coin protocol (the "real" system)...
	biased := coin.Flipper("demo", 0.5+1.0/16)
	// ...and the ideal fair coin it claims to implement.
	fair := coin.Fair("demo")
	// The distinguishing environment triggers one flip and listens.
	env := coin.Env("demo")

	// 1. Compose environment and system (Def 2.18) and validate.
	world := dse.MustCompose(env, biased)
	if err := dse.Validate(world, 1000); err != nil {
		log.Fatal(err)
	}
	fmt.Println("composed world:", world.ID())

	// 2. Resolve non-determinism with a bounded scheduler and compute the
	// exact execution measure ε_σ (Section 3).
	schema := &dse.ObliviousSchema{}
	scheds, err := schema.Enumerate(world, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("oblivious schema enumerated %d schedulers of bound 3\n", len(scheds))
	em, err := dse.Measure(world, scheds[len(scheds)/2], 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one scheduler's execution measure: %d executions, total mass %.3f\n",
		em.Len(), em.Total())

	// 3. Check the approximate implementation relation (Def 4.12):
	// the biased coin implements the fair coin within ε = 1/16 but not
	// within ε = 1/32.
	for _, eps := range []float64{1.0 / 16, 1.0 / 32} {
		rep, err := dse.Implements(biased, fair, dse.Options{
			Envs:    []dse.PSIOA{env},
			Schema:  schema,
			Insight: dse.Trace(),
			Eps:     eps,
			Q1:      3,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("biased ≤_%.4f fair: holds=%v (measured distance %.4f over %d scheduler pairs)\n",
			eps, rep.Holds, rep.MaxDist, len(rep.Pairs))
	}
}
