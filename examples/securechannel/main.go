// Secure channel: the one-time-pad secure message transmission protocol
// securely emulates the ideal secure channel (Def 4.26), with a perfect
// (ε = 0) simulator for the eavesdropping adversary — and a leaky variant
// fails, by exactly the leak probability.
//
// Run with: go run ./examples/securechannel
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/protocols/channel"
)

func schema() dse.Schema {
	return &dse.PrefixPrioritySchema{Templates: [][]string{
		{"send", "encrypt", "tap", "notify", "fabricate", "g_tap", "guess", "deliver"},
		{"send", "encrypt", "tap", "notify", "fabricate", "g_tap", "g_block", "block", "guess", "deliver"},
		{"send", "encrypt", "tap", "notify", "deliver"},
	}}
}

func opts(eps float64) dse.Options {
	return dse.Options{
		Envs:    []dse.PSIOA{channel.Env("x", 0), channel.Env("x", 1)},
		Schema:  schema(),
		Insight: dse.Trace(),
		Eps:     eps,
		Q1:      8,
	}
}

func main() {
	ideal := channel.Ideal("x")
	cases := []dse.AdvSim{
		{Adv: channel.Eavesdropper("x"), Sim: channel.SimFor("x")},
		{Adv: channel.Blocker("x"), Sim: channel.BlockerSim("x")},
	}

	fmt.Println("== perfect one-time pad ==")
	rep, err := dse.SecureEmulates(channel.Real("x"), ideal, cases, opts(0), 50000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)

	fmt.Println("\n== leaky pad (message sent in clear with probability 1/2) ==")
	leaky := channel.LeakyReal("x", 0.5)
	rep, err = dse.SecureEmulates(leaky, ideal, cases[:1], opts(0), 50000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("at ε=0:   ", rep)
	rep, err = dse.SecureEmulates(leaky, ideal, cases[:1], opts(0.25), 50000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("at ε=0.25:", rep)

	fmt.Println("\n== why it works: the ciphertext is uniform ==")
	for m := 0; m < 2; m++ {
		w := dse.MustCompose(channel.Env("x", m), channel.Real("x"), channel.Eavesdropper("x"))
		scheds, err := schema().Enumerate(w, 8)
		if err != nil {
			log.Fatal(err)
		}
		d, err := dse.FDist(w, scheds[0], dse.Accept(channel.Guess("x", 0)), 10)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("message %d: eavesdropper announces ciphertext 0 with probability %.3f\n", m, d.P("1"))
	}
}
