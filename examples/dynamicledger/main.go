// Dynamic ledger: a probabilistic configuration automaton whose
// configuration changes at run time — subchains are created by the host
// (Def 2.14) and destroyed when their signatures empty out (Def 2.12) —
// scheduled by a creation-oblivious scheduler (§4.4).
//
// Run with: go run ./examples/dynamicledger
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/protocols/ledger"
	"repro/internal/sched"
)

func main() {
	host, _ := ledger.Host("demo", 2, ledger.Direct)
	if err := dse.ValidatePCA(host, 5000); err != nil {
		log.Fatal(err)
	}

	// Drive the ledger to completion: each subchain is opened, samples its
	// beacon, seals, and is destroyed.
	s := &sched.Priority{A: host, Bound: 8, LocalOnly: true, Order: []dse.Action{
		"sample_0_demo", "sample_1_demo",
		ledger.Sealed("demo", 0, 0), ledger.Sealed("demo", 0, 1),
		ledger.Sealed("demo", 1, 0), ledger.Sealed("demo", 1, 1),
		ledger.Open("demo"),
	}}
	em, err := dse.Measure(host, s, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ledger run: %d distinct executions, total mass %.3f\n\n", em.Len(), em.Total())

	// Show one execution with its live configuration at every step.
	shown := false
	em.ForEach(func(f *dse.Frag, p float64) {
		if shown {
			return
		}
		shown = true
		fmt.Printf("one execution (probability %.3f):\n", p)
		for i := 0; i <= f.Len(); i++ {
			cfg := host.Config(f.StateAt(i))
			fmt.Printf("  config %v\n", cfg)
			if i < f.Len() {
				fmt.Printf("    --%s-->\n", f.ActionAt(i))
			}
		}
	})

	// Creation-obliviousness: an off-line scheduler factors through the
	// masked view that hides subchain internals.
	view := ledger.MaskView(host, "demo")
	seq := &sched.Sequence{A: host, LocalOnly: true, Acts: []dse.Action{
		ledger.Open("demo"), "sample_0_demo",
	}}
	if err := sched.FactorsThrough(host, seq, view, 20); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noff-line scheduler verified creation-oblivious (factors through the masked view)")

	// The two host variants (direct vs parity beacons) are externally
	// indistinguishable — the §4.4 monotonicity scenario.
	direct, _ := ledger.Host("m", 1, ledger.Direct)
	parity, _ := ledger.Host("m", 1, ledger.Parity)
	order := []dse.Action{
		"sample_0_m", "sample_0_m2",
		ledger.Sealed("m", 0, 0), ledger.Sealed("m", 0, 1),
		ledger.Open("m"),
	}
	dd, err := dse.FDist(direct, &sched.Priority{A: direct, Bound: 10, LocalOnly: true, Order: order}, dse.Trace(), 20)
	if err != nil {
		log.Fatal(err)
	}
	dp, err := dse.FDist(parity, &sched.Priority{A: parity, Bound: 10, LocalOnly: true, Order: order}, dse.Trace(), 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("direct-vs-parity host perception distance: %.6f (identical beacons)\n", dse.Distance(dd, dp))
}
