// Dynamic emulation: the paper's motivating scenario end to end. A host
// configuration automaton opens secure-channel sessions *at run time*
// (automaton creation, Def 2.14); the real host creates one-time-pad
// sessions, the ideal host creates ideal-functionality sessions; with the
// per-session simulators composed, the real host securely emulates the
// ideal host at ε = 0 — dynamicity and simulation-based security under one
// hood (Def 4.26 over PCA).
//
// Run with: go run ./examples/dynamicemulation
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/protocols/dynchannel"
	"repro/internal/sched"
)

func main() {
	real := dynchannel.Host("d", 1, dynchannel.RealKind)
	ideal := dynchannel.Host("d", 1, dynchannel.IdealKind)
	if err := dse.ValidatePCA(real, 20000); err != nil {
		log.Fatal(err)
	}
	if err := dse.ValidatePCA(ideal, 20000); err != nil {
		log.Fatal(err)
	}

	// Show the dynamic lifecycle: the session exists only between open and
	// completion. The host is driven by an environment that submits one
	// message to the session.
	world := dse.MustCompose(dynchannel.Env("d", []int{1}), real)
	s := &sched.Priority{A: world, Bound: 8, LocalOnly: true, Order: []dse.Action{
		dynchannel.Open("d"), "send1_ds0", "encrypt_ds0",
		"tap0_ds0", "tap1_ds0", "deliver1_ds0",
	}}
	em, err := dse.Measure(world, s, 20)
	if err != nil {
		log.Fatal(err)
	}
	shown := false
	em.ForEach(func(f *dse.Frag, p float64) {
		if shown {
			return
		}
		shown = true
		fmt.Println("one real-host execution (host configurations):")
		for i := 0; i <= f.Len(); i++ {
			hostState := world.Project(f.StateAt(i), 1)
			fmt.Printf("  config %v\n", real.Config(hostState))
			if i < f.Len() {
				fmt.Printf("    --%s-->\n", f.ActionAt(i))
			}
		}
	})

	// The emulation check: for the composed eavesdropper adversary there is
	// a composed simulator making the hosts perfectly indistinguishable.
	rep, err := dse.SecureEmulates(real, ideal,
		[]dse.AdvSim{{Adv: dynchannel.Adversary("d", 1), Sim: dynchannel.Simulator("d", 1)}},
		dse.Options{
			Envs: []dse.PSIOA{dynchannel.Env("d", []int{0}), dynchannel.Env("d", []int{1})},
			Schema: &dse.PrefixPrioritySchema{Templates: [][]string{
				{"open", "send", "encrypt", "tap", "notify", "fabricate", "guess", "deliver"},
				{"open", "send", "encrypt", "tap", "notify", "deliver"},
			}},
			Insight: dse.Trace(),
			Eps:     0,
			Q1:      10,
		}, 20000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndynamic secure emulation (run-time-created sessions):")
	fmt.Println(rep)
}
