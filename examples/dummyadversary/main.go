// Dummy adversary: the insertion lemma (Lemma 4.29) made concrete. A
// protocol's adversary interface is renamed to fresh action names; a dummy
// adversary (Def 4.27) is inserted between the protocol and the outer
// adversary; the Forward^s scheduler transport makes the two worlds
// perception-identical (ε = 0) — the key reduction behind the
// composability of secure emulation (Theorem 4.30).
//
// Run with: go run ./examples/dummyadversary
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/protocols/channel"
	"repro/internal/sched"
)

func main() {
	a := channel.Real("x")
	adv := gEaves()
	env := channel.Env("x", 1)

	ctx, err := dse.NewForwardCtx(env, a, adv, channel.G("x"), 10000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("W1 =", ctx.W1.ID())
	fmt.Println("W2 =", ctx.W2.ID())
	fmt.Printf("adversary interface: AI=%v AO=%v\n\n", ctx.Iface.AI, ctx.Iface.AO)

	// A scheduler of W1 that runs the protocol with adversary interaction.
	s1 := &sched.Priority{A: ctx.W1, Bound: 8, LocalOnly: true, Order: []dse.Action{
		channel.Send("x", 1), "encrypt_x",
		"g_tap0_x", "g_tap1_x", // renamed adversary observations
		channel.Guess("x", 0), channel.Guess("x", 1),
		channel.Deliver("x", 1),
	}}
	s2 := ctx.ForwardSched(s1)

	d1, err := dse.FDist(ctx.W1, s1, dse.Trace(), 20)
	if err != nil {
		log.Fatal(err)
	}
	d2, err := dse.FDist(ctx.W2, s2, dse.Trace(), 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("W1 perception:", d1)
	fmt.Println("W2 perception:", d2)
	fmt.Printf("\nLemma 4.29 distance: %.9f (want 0)\n", dse.Distance(d1, d2))

	// Show one forwarded execution: every adversary-interface step becomes
	// a receive + forward pair through the dummy.
	em, err := dse.Measure(ctx.W1, s1, 20)
	if err != nil {
		log.Fatal(err)
	}
	printed := false
	em.ForEach(func(f *dse.Frag, p float64) {
		if printed || f.Len() < 4 {
			return
		}
		printed = true
		fwd, err := ctx.ForwardExec(f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nW1 execution (%d steps): %v\n", f.Len(), f.Actions())
		fmt.Printf("W2 forwarded (%d steps): %v\n", fwd.Len(), fwd.Actions())
	})
}

// gEaves is the eavesdropper speaking the g-renamed adversary interface.
func gEaves() dse.PSIOA {
	return dse.RenameMap(channel.Eavesdropper("x"), channel.G("x"))
}
