// dsesim simulates automata under schedulers: it composes the referenced
// systems, resolves non-determinism with the chosen scheduler, and prints
// either the exact execution measure or Monte-Carlo trace estimates.
//
// Usage:
//
//	dsesim -sys chan:real:x -sys chan:env:x:1 -sched priority \
//	       -order send,encrypt,tap,deliver -bound 8
//	dsesim -sys coin:fair:x -sys coin:env:x -sched random -bound 4 -samples 10000
//
// System references are JSON spec paths or built-in names (see
// internal/spec). With -samples > 0 the tool samples instead of computing
// the exact measure.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/insight"
	"repro/internal/obs"
	"repro/internal/psioa"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/spec"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

var ocli obs.CLI

func main() {
	var systems multiFlag
	flag.Var(&systems, "sys", "system reference (repeatable; composed in order)")
	schedName := flag.String("sched", "greedy", "scheduler: greedy | random | priority | sequence")
	order := flag.String("order", "", "comma-separated action prefixes (priority) or actions (sequence)")
	bound := flag.Int("bound", 10, "scheduler bound (Def 4.6)")
	samples := flag.Int("samples", 0, "Monte-Carlo samples (0 = exact measure)")
	seed := flag.Uint64("seed", 1, "random seed for sampling")
	insightName := flag.String("insight", "trace", "insight: trace | accept:<action> | print:<prefix>")
	maxShow := flag.Int("show", 20, "max entries to print")
	ocli.Register(flag.CommandLine)
	flag.Parse()
	fatal(ocli.Start())

	if len(systems) == 0 {
		fmt.Fprintln(os.Stderr, "dsesim: need at least one -sys")
		exit(2)
	}
	var auts []psioa.PSIOA
	for _, ref := range systems {
		a, err := spec.Resolve(ref)
		fatal(err)
		auts = append(auts, a)
	}
	w, err := psioa.Compose(auts...)
	fatal(err)
	fatal(psioa.Validate(w, 200000))

	s := buildSched(w, *schedName, *order, *bound)
	f := buildInsight(*insightName)

	if *samples > 0 {
		stream := rng.New(*seed)
		d, err := sched.SampleImage(w, s, stream, 4**bound+16, *samples, func(fr *psioa.Frag) string {
			return f.Apply(w, fr)
		})
		fatal(err)
		fmt.Printf("sampled %s distribution over %d runs (%d outcomes):\n", f.ID, *samples, d.Len())
		printDist(dMap(d.Support(), d.P), *maxShow)
		exit(0)
	}

	em, err := sched.Measure(w, s, 4**bound+16)
	fatal(err)
	fmt.Printf("exact execution measure: %d executions, total mass %.6f, max length %d\n",
		em.Len(), em.Total(), em.MaxLen())
	img := em.Image(func(fr *psioa.Frag) string { return f.Apply(w, fr) })
	fmt.Printf("%s distribution (%d outcomes):\n", f.ID, img.Len())
	printDist(dMap(img.Support(), img.P), *maxShow)
	exit(0)
}

// exit routes every termination through the observability teardown so the
// trace is flushed and the metrics snapshot emitted even on failure.
func exit(code int) {
	ocli.Stop()
	os.Exit(code)
}

func buildSched(w psioa.PSIOA, name, order string, bound int) sched.Scheduler {
	var acts []psioa.Action
	if order != "" {
		for _, s := range strings.Split(order, ",") {
			acts = append(acts, psioa.Action(strings.TrimSpace(s)))
		}
	}
	switch name {
	case "greedy":
		return &sched.Greedy{A: w, Bound: bound, LocalOnly: true}
	case "random":
		return &sched.Random{A: w, Bound: bound, LocalOnly: true}
	case "priority":
		tmpl := make([]string, len(acts))
		for i, a := range acts {
			tmpl[i] = string(a)
		}
		ss, err := (&sched.PrefixPrioritySchema{Templates: [][]string{tmpl}}).Enumerate(w, bound)
		fatal(err)
		return ss[0]
	case "sequence":
		return &sched.Sequence{A: w, Acts: acts, LocalOnly: true}
	default:
		fmt.Fprintf(os.Stderr, "dsesim: unknown scheduler %q\n", name)
		exit(2)
		return nil
	}
}

func buildInsight(name string) insight.Insight {
	switch {
	case name == "trace":
		return insight.Trace()
	case strings.HasPrefix(name, "accept:"):
		return insight.Accept(psioa.Action(strings.TrimPrefix(name, "accept:")))
	case strings.HasPrefix(name, "print:"):
		return insight.Print(strings.TrimPrefix(name, "print:"))
	default:
		fmt.Fprintf(os.Stderr, "dsesim: unknown insight %q\n", name)
		exit(2)
		return insight.Insight{}
	}
}

type entry struct {
	k string
	p float64
}

func dMap(keys []string, p func(string) float64) []entry {
	out := make([]entry, 0, len(keys))
	for _, k := range keys {
		out = append(out, entry{k, p(k)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].p != out[j].p {
			return out[i].p > out[j].p
		}
		return out[i].k < out[j].k
	})
	return out
}

func printDist(entries []entry, maxShow int) {
	for i, e := range entries {
		if i >= maxShow {
			fmt.Printf("  ... (%d more)\n", len(entries)-maxShow)
			return
		}
		k := e.k
		if k == "()" || k == "" {
			k = "(empty)"
		}
		fmt.Printf("  %8.5f  %s\n", e.p, k)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsesim:", err)
		exit(1)
	}
}
