// dsesim simulates automata under schedulers: it composes the referenced
// systems, resolves non-determinism with the chosen scheduler, and prints
// either the exact execution measure or Monte-Carlo trace estimates. Exact
// runs go through the engine's memoization cache, so repeated invocations
// inside one process (and the dsed daemon serving the same request) reuse
// the measure expansion.
//
// Usage:
//
//	dsesim -sys chan:real:x -sys chan:env:x:1 -sched priority \
//	       -order send,encrypt,tap,deliver -bound 8
//	dsesim -sys coin:fair:x -sys coin:env:x -sched random -bound 4 -samples 10000
//
// System references are JSON spec paths or built-in names (see
// internal/spec). With -samples > 0 the tool samples instead of computing
// the exact measure.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/resilience"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

var ocli obs.CLI

func main() {
	var systems multiFlag
	flag.Var(&systems, "sys", "system reference (repeatable; composed in order)")
	schedName := flag.String("sched", "greedy", "scheduler: greedy | random | priority | sequence")
	order := flag.String("order", "", "comma-separated action prefixes (priority) or actions (sequence)")
	bound := flag.Int("bound", 10, "scheduler bound (Def 4.6)")
	samples := flag.Int("samples", 0, "Monte-Carlo samples (0 = exact measure)")
	seed := flag.Uint64("seed", 1, "random seed for sampling")
	insightName := flag.String("insight", "trace", "insight: trace | accept:<action> | print:<prefix>")
	maxShow := flag.Int("show", 20, "max entries to print")
	timeout := flag.Duration("timeout", 0, "abort after this wall-clock time (0 = no limit)")
	budget := flag.Int64("budget", 0, "kernel transition budget before stopping (0 = unlimited)")
	workers := flag.Int("workers", 0, "measure/sampling kernel workers (0 = GOMAXPROCS, 1 = sequential)")
	ocli.Register(flag.CommandLine)
	flag.Parse()
	fatal(ocli.Start())

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *budget > 0 || *timeout > 0 {
		resilience.SetDefaultBudget(resilience.NewBudget(0, *budget, *timeout))
	}

	if len(systems) == 0 {
		fmt.Fprintln(os.Stderr, "dsesim: need at least one -sys")
		exit(2)
	}
	var orderList []string
	if *order != "" {
		orderList = strings.Split(*order, ",")
	}

	// The pool sizes the parallel measure kernels (results are byte-identical
	// at any worker count, so -workers only affects wall clock).
	r := engine.NewRunner(engine.NewPool(*workers), engine.NewCache(0))
	res, err := r.Simulate(ctx, &engine.SimulateSpec{
		Systems: systems,
		Sched:   *schedName,
		Order:   orderList,
		Bound:   *bound,
		Samples: *samples,
		Seed:    *seed,
		Insight: *insightName,
	})
	fatal(err)

	if res.Partial {
		fmt.Printf("PARTIAL result (budget exhausted: %s)\n", res.Degraded)
	}
	if res.Exact {
		fmt.Printf("exact execution measure: %d executions, total mass %.6f, max length %d\n",
			res.Executions, res.TotalMass, res.MaxLen)
		fmt.Printf("%s distribution (%d outcomes):\n", res.InsightID, len(res.Outcomes))
	} else {
		fmt.Printf("sampled %s distribution over %d runs (%d outcomes):\n",
			res.InsightID, res.Executions, len(res.Outcomes))
	}
	printDist(res.Outcomes, *maxShow)
	exit(0)
}

// exit routes every termination through the observability teardown so the
// trace is flushed and the metrics snapshot emitted even on failure.
func exit(code int) {
	ocli.Stop()
	os.Exit(code)
}

func printDist(entries []engine.SimOutcome, maxShow int) {
	for i, e := range entries {
		if i >= maxShow {
			fmt.Printf("  ... (%d more)\n", len(entries)-maxShow)
			return
		}
		k := e.Key
		if k == "()" || k == "" {
			k = "(empty)"
		}
		fmt.Printf("  %8.5f  %s\n", e.P, k)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsesim:", err)
		exit(1)
	}
}
