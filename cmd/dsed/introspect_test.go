package main

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/resilience"
)

// getBody GETs url and returns the response and its body.
func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// promSample matches one exposition-format sample line; comment lines are
// checked separately.
var promSample = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+-]+$`)

// promValue extracts the (unlabelled) sample value of the named metric
// from an exposition-format body, or -1 when absent.
func promValue(body, name string) float64 {
	for _, ln := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(ln, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				return -1
			}
			return v
		}
	}
	return -1
}

// debugResponse mirrors the /v1/debug JSON shape for decoding in tests.
type debugResponse struct {
	UptimeMS   int64 `json:"uptime_ms"`
	Goroutines int   `json:"goroutines"`
	Workers    int   `json:"workers"`
	Busy       int   `json:"busy"`
	InFlight   int   `json:"inflight"`
	QueueLimit int   `json:"queue_limit"`
	Jobs       []struct {
		ID        string `json:"id"`
		Status    string `json:"status"`
		ElapsedMS int64  `json:"elapsed_ms"`
	} `json:"jobs"`
	Breakers    []resilience.BreakerState `json:"breakers"`
	CacheLen    int                       `json:"cache_len"`
	CacheShards []struct {
		Shard  int   `json:"shard"`
		Len    int   `json:"len"`
		Hits   int64 `json:"hits"`
		Misses int64 `json:"misses"`
	} `json:"cache_shards"`
}

// TestMetricsPromEndpoint pins the Prometheus surface: the content type,
// the line format of every emitted line, and the presence of the daemon's
// own request counter.
func TestMetricsPromEndpoint(t *testing.T) {
	ts := newHardenedServer(t, engine.StoreConfig{})
	resp, body := getBody(t, ts.URL+"/v1/metrics?format=prom")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content type = %q", ct)
	}
	text := string(body)
	for i, ln := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if strings.HasPrefix(ln, "# TYPE ") || strings.HasPrefix(ln, "# HELP ") {
			continue
		}
		if !promSample.MatchString(ln) {
			t.Errorf("line %d not exposition format: %q", i+1, ln)
		}
	}
	if promValue(text, "dse_dsed_http_requests") < 1 {
		t.Errorf("dse_dsed_http_requests missing or zero:\n%.400s", text)
	}
	// The JSON view must still be the default.
	resp, body = getBody(t, ts.URL+"/v1/metrics")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("default content type = %q", ct)
	}
	if !json.Valid(body) {
		t.Error("default metrics body is not JSON")
	}
}

// TestDebugEndpoint pins /v1/debug on a healthy daemon: pool and queue
// configuration, and a running job showing up with its elapsed time.
func TestDebugEndpoint(t *testing.T) {
	restore := resilience.InstallInjector(resilience.NewInjector(1).
		ArmDelay(resilience.FaultSlowOp, 1, 10*time.Second))
	defer restore()
	ts := newHardenedServer(t, engine.StoreConfig{QueueLimit: 8})

	if resp, _ := post(t, ts.URL+"/v1/simulate?async=1", simulateBody(1)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	var d debugResponse
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, body := getBody(t, ts.URL+"/v1/debug")
		if err := json.Unmarshal(body, &d); err != nil {
			t.Fatalf("debug not JSON: %v: %s", err, body)
		}
		if len(d.Jobs) > 0 && d.Jobs[0].Status == engine.StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never showed running in /v1/debug: %+v", d)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if d.Workers != 2 || d.QueueLimit != 8 || d.InFlight != 1 {
		t.Errorf("workers/queue/inflight = %d/%d/%d, want 2/8/1", d.Workers, d.QueueLimit, d.InFlight)
	}
	if d.UptimeMS < 0 || d.Goroutines < 1 {
		t.Errorf("uptime=%d goroutines=%d", d.UptimeMS, d.Goroutines)
	}
	if d.Jobs[0].ElapsedMS < 0 {
		t.Errorf("running job elapsed = %d", d.Jobs[0].ElapsedMS)
	}
}

// TestChaosObservability is the chaos-suite introspection check: after a
// breaker trip and a load shed, both incidents must be visible in
// /v1/metrics?format=prom, and the open breaker in /v1/debug.
func TestChaosObservability(t *testing.T) {
	ts := newHardenedServer(t, engine.StoreConfig{
		QueueLimit: 2,
		Breaker:    resilience.NewBreaker(2),
	})

	// Phase 1 — trip the breaker: two injected panics of one spec open it,
	// and a third submission is rejected without running.
	restore := resilience.InstallInjector(resilience.NewInjector(5).
		Arm(resilience.FaultTransitionPanic, 1))
	for i := 0; i < 2; i++ {
		if resp, body := post(t, ts.URL+"/v1/simulate", simulateBody(7)); resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("panicking request %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	if resp, _ := post(t, ts.URL+"/v1/simulate?async=1", simulateBody(7)); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("quarantined submit: status %d, want 422", resp.StatusCode)
	}
	restore()

	// Phase 2 — shed load: stall the queue with injected delays and
	// overflow it.
	restore = resilience.InstallInjector(resilience.NewInjector(1).
		ArmDelay(resilience.FaultSlowOp, 1, 10*time.Second))
	defer restore()
	for i := 0; i < 2; i++ {
		if resp, body := post(t, ts.URL+"/v1/simulate?async=1", simulateBody(i)); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	if resp, _ := post(t, ts.URL+"/v1/simulate?async=1", simulateBody(2)); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-limit submit: status %d, want 503", resp.StatusCode)
	}

	// Both incidents are on the metrics surface. The counters are
	// process-global, so assert at least the increments this test caused.
	_, body := getBody(t, ts.URL+"/v1/metrics?format=prom")
	text := string(body)
	if v := promValue(text, "dse_engine_jobs_rejected"); v < 1 {
		t.Errorf("dse_engine_jobs_rejected = %v, want >= 1 after quarantine", v)
	}
	if v := promValue(text, "dse_engine_jobs_shed"); v < 1 {
		t.Errorf("dse_engine_jobs_shed = %v, want >= 1 after queue overflow", v)
	}

	// The open breaker is in the debug view, with the quarantined
	// fingerprint's consecutive-panic count.
	var d debugResponse
	_, body = getBody(t, ts.URL+"/v1/debug")
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatalf("debug not JSON: %v", err)
	}
	open := 0
	for _, b := range d.Breakers {
		if b.Open {
			open++
			if b.Consecutive < 2 {
				t.Errorf("open breaker %s consecutive = %d, want >= 2", b.Key, b.Consecutive)
			}
		}
	}
	if open != 1 {
		t.Errorf("debug shows %d open breakers, want 1: %+v", open, d.Breakers)
	}
	if d.InFlight != 2 {
		t.Errorf("inflight = %d, want 2 stalled jobs", d.InFlight)
	}
}
