package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/resilience"
)

// newWorkerServer spins up a full dsed worker with a stable worker id.
func newWorkerServer(t *testing.T, id string) *httptest.Server {
	t.Helper()
	s := &server{
		runner:  engine.NewRunner(engine.NewPool(2), engine.NewCache(256)),
		store:   engine.NewStore(),
		timeout: 30 * time.Second,
		ctx:     context.Background(),
	}
	s.runner.WorkerID = id
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return ts
}

// newCoordinatorServer spins up a dsed coordinator over the given workers.
func newCoordinatorServer(t *testing.T, workers ...*httptest.Server) *httptest.Server {
	t.Helper()
	var backends []cluster.Backend
	for _, w := range workers {
		backends = append(backends, cluster.NewRemoteBackend(w.URL, w.URL, resilience.Backoff{
			Attempts: 3, Base: time.Millisecond, Cap: 50 * time.Millisecond,
		}))
	}
	coord, err := cluster.NewCoordinator(backends...)
	if err != nil {
		t.Fatal(err)
	}
	s := &server{
		runner:  engine.NewRunner(engine.NewPool(1), engine.NewCache(16)),
		store:   engine.NewStore(),
		timeout: 30 * time.Second,
		coord:   coord,
		ctx:     context.Background(),
	}
	s.runner.WorkerID = "coordinator"
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return ts
}

const clusterCheckBody = `{"left":"chan:leaky:x:0.5","right":"chan:ideal:x",` +
	`"envs":["chan:env:x:0","chan:env:x:1"],"schema":"priority",` +
	`"templates":[["send","encrypt","tap","notify","fabricate","deliver"]],` +
	`"eps":0.25,"q1":6,"q2":6}`

// TestClusterEndToEnd is the daemon-level acceptance test for coordinator
// mode: a 2-worker cluster serves a check byte-identical to a single
// worker's answer, attributes shards to worker ids, and the second request
// is store-served.
func TestClusterEndToEnd(t *testing.T) {
	w1 := newWorkerServer(t, "w1")
	w2 := newWorkerServer(t, "w2")
	coord := newCoordinatorServer(t, w1, w2)

	// Baseline: the same check on a plain worker (strip worker attribution
	// and telemetry — per-node accounts, not content).
	solo := newWorkerServer(t, "solo")
	resp, base := post(t, solo.URL+"/v1/check", clusterCheckBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline check: status %d: %s", resp.StatusCode, base)
	}
	var baseRes struct {
		Check json.RawMessage `json:"check"`
	}
	if err := json.Unmarshal(base, &baseRes); err != nil {
		t.Fatal(err)
	}

	type clusterResp struct {
		Kind     string          `json:"kind"`
		WorkerID string          `json:"worker_id"`
		Check    json.RawMessage `json:"check"`
		Shards   []struct {
			Key       string `json:"key"`
			Env       string `json:"env"`
			Worker    string `json:"worker"`
			FromStore bool   `json:"from_store"`
		} `json:"shards"`
	}
	resp, body := post(t, coord.URL+"/v1/check", clusterCheckBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster check: status %d: %s", resp.StatusCode, body)
	}
	var cr clusterResp
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cr.Check, baseRes.Check) {
		t.Fatalf("cluster report differs from single worker:\n got: %s\nwant: %s", cr.Check, baseRes.Check)
	}
	if len(cr.Shards) != 2 {
		t.Fatalf("shards = %+v, want 2", cr.Shards)
	}
	for _, sh := range cr.Shards {
		if sh.Worker != w1.URL && sh.Worker != w2.URL {
			t.Fatalf("shard %+v not attributed to a worker", sh)
		}
	}

	// Second request: served from the workers' content-addressed stores.
	resp, body = post(t, coord.URL+"/v1/check", clusterCheckBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second cluster check: status %d: %s", resp.StatusCode, body)
	}
	var cr2 clusterResp
	if err := json.Unmarshal(body, &cr2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cr2.Check, baseRes.Check) {
		t.Fatal("store-served cluster report differs from single worker")
	}
	for _, sh := range cr2.Shards {
		if !sh.FromStore {
			t.Fatalf("second-run shard not store-served: %+v", sh)
		}
	}

	// The coordinator's /v1/debug exposes the per-worker account.
	resp2, err := http.Get(coord.URL + "/v1/debug")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var dbg struct {
		WorkerID string `json:"worker_id"`
		Cluster  *struct {
			Workers []struct {
				ID   string `json:"id"`
				Down bool   `json:"down"`
			} `json:"workers"`
			Dispatched int64 `json:"dispatched"`
			StoreHits  int64 `json:"store_hits"`
		} `json:"cluster"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&dbg); err != nil {
		t.Fatal(err)
	}
	if dbg.WorkerID != "coordinator" {
		t.Fatalf("debug worker_id = %q", dbg.WorkerID)
	}
	if dbg.Cluster == nil || len(dbg.Cluster.Workers) != 2 {
		t.Fatalf("debug cluster section missing or wrong: %+v", dbg.Cluster)
	}
	if dbg.Cluster.Dispatched < 4 || dbg.Cluster.StoreHits < 2 {
		t.Fatalf("cluster counters off: %+v", dbg.Cluster)
	}
}

// TestClusterAsyncRejected pins that coordinator mode refuses ?async=1 —
// queueing is the workers' admission control, not the coordinator's.
func TestClusterAsyncRejected(t *testing.T) {
	w := newWorkerServer(t, "w1")
	coord := newCoordinatorServer(t, w)
	resp, body := post(t, coord.URL+"/v1/check?async=1", clusterCheckBody)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("async in coordinator mode: status %d: %s", resp.StatusCode, body)
	}
}

// TestClusterAllWorkersDown pins the daemon-level dead-cluster surface:
// 503 with the no-workers message, no hang.
func TestClusterAllWorkersDown(t *testing.T) {
	w := newWorkerServer(t, "w1")
	url := w.URL
	w.Close() // worker gone before the first job
	var backends []cluster.Backend
	backends = append(backends, cluster.NewRemoteBackend(url, url, resilience.Backoff{
		Attempts: 2, Base: time.Millisecond,
	}))
	coord, err := cluster.NewCoordinator(backends...)
	if err != nil {
		t.Fatal(err)
	}
	s := &server{
		runner:  engine.NewRunner(engine.NewPool(1), engine.NewCache(16)),
		store:   engine.NewStore(),
		timeout: 5 * time.Second,
		coord:   coord,
		ctx:     context.Background(),
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	resp, body := post(t, ts.URL+"/v1/check", clusterCheckBody)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("dead cluster: status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "no live workers") {
		t.Fatalf("dead cluster body: %s", body)
	}
}

// TestStoreEndpoints pins the worker-side content-addressed store facade:
// PUT then GET round-trips, a miss is 404.
func TestStoreEndpoints(t *testing.T) {
	w := newWorkerServer(t, "w1")

	resp, err := http.Get(w.URL + "/v1/store/job-absent")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("store miss: status %d, want 404", resp.StatusCode)
	}

	req, err := http.NewRequest(http.MethodPut, w.URL+"/v1/store/job-0001", strings.NewReader(`{"kind":"check"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("store put: status %d, want 204", resp.StatusCode)
	}

	resp, body := get(t, w.URL+"/v1/store/job-0001")
	if resp.StatusCode != http.StatusOK || string(body) != `{"kind":"check"}` {
		t.Fatalf("store get: status %d body %s", resp.StatusCode, body)
	}
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}
