package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/resilience"
)

// newHardenedServer builds a test daemon with the full hardening stack: a
// bounded queue, a circuit breaker shared between the sync and async paths,
// and transient-fault retries. The jobs context is cancelled at cleanup so
// injected delays never outlive the test.
func newHardenedServer(t *testing.T, cfg engine.StoreConfig) *httptest.Server {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	s := &server{
		runner:  engine.NewRunner(engine.NewPool(2), engine.NewCache(64)),
		store:   engine.NewStoreWith(cfg),
		timeout: 30 * time.Second,
		ctx:     ctx,
		started: time.Now(),
	}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return ts
}

func simulateBody(seed int) string {
	return fmt.Sprintf(`{"systems":["coin:fair:x","coin:env:x"],"bound":4,"seed":%d}`, seed)
}

// TestChaosDaemonSurvivesFaults is the ISSUE acceptance chaos test: with
// worker panics and transient job faults injected, every submitted job
// reaches a terminal state (zero lost jobs) and the daemon keeps serving
// /healthz throughout.
func TestChaosDaemonSurvivesFaults(t *testing.T) {
	// The panic point is bounded so it crashes some jobs and then runs dry,
	// giving a mix of panicked and completed jobs under the same chaos run.
	restore := resilience.InstallInjector(resilience.NewInjector(2026).
		ArmN(resilience.FaultTransitionPanic, 0.5, 4).
		Arm(resilience.FaultJobTransient, 0.3).
		Arm(resilience.FaultCacheEvict, 0.5))
	defer restore()
	ts := newHardenedServer(t, engine.StoreConfig{
		QueueLimit: 64,
		Breaker:    resilience.NewBreaker(1000), // count panics, never quarantine here
		Retry:      resilience.Backoff{Attempts: 3, Base: time.Millisecond},
	})

	const jobs = 12
	ids := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		// Distinct seeds give distinct fingerprints, so one crash-looping
		// spec cannot shadow the others.
		resp, body := post(t, ts.URL+"/v1/simulate?async=1", simulateBody(i))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d: %s", i, resp.StatusCode, body)
		}
		var rec struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &rec); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, rec.ID)
	}

	// While jobs churn through panics and retries, the daemon must answer
	// liveness probes.
	deadline := time.Now().Add(60 * time.Second)
	terminal := map[string]string{}
	for len(terminal) < jobs {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d jobs terminal: %v", len(terminal), jobs, terminal)
		}
		hr, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		hr.Body.Close()
		if hr.StatusCode != http.StatusOK {
			t.Fatalf("healthz = %d under chaos", hr.StatusCode)
		}
		for _, id := range ids {
			r, err := http.Get(ts.URL + "/v1/jobs/" + id)
			if err != nil {
				t.Fatal(err)
			}
			var got struct {
				Status   string `json:"status"`
				ErrClass string `json:"error_class"`
			}
			err = json.NewDecoder(r.Body).Decode(&got)
			r.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if got.Status == engine.StatusDone || got.Status == engine.StatusFailed {
				terminal[id] = got.Status + "/" + got.ErrClass
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Zero lost jobs: every record is terminal, and failures are classified
	// (a recovered panic, never an unexplained loss).
	failed := 0
	for id, st := range terminal {
		if st == engine.StatusFailed+"/" {
			t.Errorf("job %s failed without a classification", id)
		}
		if strings.HasPrefix(st, engine.StatusFailed) {
			failed++
		}
	}
	t.Logf("chaos outcome: %d done, %d failed-classified of %d", jobs-failed, failed, jobs)
}

// TestChaosDaemonTimeout is the ISSUE acceptance timeout test: a check job
// whose workload is delayed past its timeout answers with a
// deadline-classified error in under 2x the timeout.
func TestChaosDaemonTimeout(t *testing.T) {
	restore := resilience.InstallInjector(resilience.NewInjector(1).
		ArmDelay(resilience.FaultSlowOp, 1, 10*time.Second))
	defer restore()
	ts := newHardenedServer(t, engine.StoreConfig{})

	start := time.Now()
	resp, body := post(t, ts.URL+"/v1/check?timeout_ms=250", checkBody)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var e struct {
		Class string `json:"class"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Class != "deadline" {
		t.Errorf("class = %q, want deadline (%s)", e.Class, body)
	}
	if elapsed >= 500*time.Millisecond {
		t.Errorf("timed-out request took %v, want < 2x the 250ms timeout", elapsed)
	}
}

// TestChaosDaemonQuarantine pins the crash-loop circuit breaker: after K
// consecutive panics of one spec, further submissions are rejected 422
// without running, while other specs stay unaffected.
func TestChaosDaemonQuarantine(t *testing.T) {
	restore := resilience.InstallInjector(resilience.NewInjector(5).
		Arm(resilience.FaultTransitionPanic, 1))
	defer restore()
	ts := newHardenedServer(t, engine.StoreConfig{Breaker: resilience.NewBreaker(2)})

	for i := 0; i < 2; i++ {
		resp, body := post(t, ts.URL+"/v1/simulate", simulateBody(7))
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("panicking request %d: status %d: %s", i, resp.StatusCode, body)
		}
		var e struct {
			Class string `json:"class"`
		}
		if err := json.Unmarshal(body, &e); err != nil {
			t.Fatal(err)
		}
		if e.Class != "panic" {
			t.Errorf("request %d class = %q, want panic", i, e.Class)
		}
	}
	resp, body := post(t, ts.URL+"/v1/simulate", simulateBody(7))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("quarantined request: status %d: %s", resp.StatusCode, body)
	}
	var e struct {
		Class string `json:"class"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Class != "quarantined" {
		t.Errorf("class = %q, want quarantined (%s)", e.Class, body)
	}
	// A different spec still runs (and fails with the injected panic, but
	// is not rejected up front).
	resp, _ = post(t, ts.URL+"/v1/simulate", simulateBody(8))
	if resp.StatusCode == http.StatusUnprocessableEntity {
		t.Error("unrelated spec rejected as quarantined")
	}
}

// TestChaosDaemonQueueShed pins load shedding: submissions past the queue
// bound answer 503 with Retry-After instead of piling up.
func TestChaosDaemonQueueShed(t *testing.T) {
	restore := resilience.InstallInjector(resilience.NewInjector(1).
		ArmDelay(resilience.FaultSlowOp, 1, 10*time.Second))
	defer restore()
	ts := newHardenedServer(t, engine.StoreConfig{QueueLimit: 2})

	for i := 0; i < 2; i++ {
		resp, body := post(t, ts.URL+"/v1/simulate?async=1", simulateBody(i))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	resp, body := post(t, ts.URL+"/v1/simulate?async=1", simulateBody(2))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-limit submit: status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	var e struct {
		Class string `json:"class"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Class != "queue-full" {
		t.Errorf("class = %q, want queue-full (%s)", e.Class, body)
	}
}

// TestBudgetOverrideQueryParams pins the per-request budget override: a
// transition budget on a simulate request degrades it to a partial result.
func TestBudgetOverrideQueryParams(t *testing.T) {
	ts := newHardenedServer(t, engine.StoreConfig{})
	resp, body := post(t, ts.URL+"/v1/simulate?budget_transitions=400",
		`{"systems":["ledger:direct:x:2"],"sched":"random","bound":8}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res struct {
		Simulate struct {
			Partial   bool    `json:"partial"`
			TotalMass float64 `json:"total_mass"`
		} `json:"simulate"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Simulate.Partial || res.Simulate.TotalMass >= 1 {
		t.Errorf("budgeted simulate = %+v, want a partial sub-probability result", res.Simulate)
	}
	// Bad override values are rejected up front.
	resp, _ = post(t, ts.URL+"/v1/simulate?budget_transitions=-1", simulateBody(1))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative budget: status %d, want 400", resp.StatusCode)
	}
	resp, _ = post(t, ts.URL+"/v1/check?timeout_ms=zebra", checkBody)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("non-numeric timeout: status %d, want 400", resp.StatusCode)
	}
}

// TestHandlerPanicRecovered pins the HTTP layer's last-resort boundary: a
// handler panic answers 500 and the daemon keeps serving.
func TestHandlerPanicRecovered(t *testing.T) {
	// The transition panic fires inside the job, which RunSafe isolates; to
	// hit the HTTP middleware we need a panic outside the runner. Simplest
	// honest probe: a spec whose decode succeeds but whose run panics
	// beyond RunSafe is not constructible from outside, so exercise the
	// middleware directly.
	rec := recoveredProbe{}
	h := recovered(rec)
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	// The server goroutine survived; a second request is served.
	resp2, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
}

type recoveredProbe struct{}

func (recoveredProbe) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	panic("handler bug")
}
