package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// Observability instruments for the HTTP layer.
var (
	cHTTPRequests = obs.C("dsed.http.requests")
	cHTTPErrors   = obs.C("dsed.http.errors")
)

// server wires the engine's runner and job store to the HTTP API.
type server struct {
	runner  *engine.Runner
	store   *engine.Store
	timeout time.Duration
	// ctx is the daemon's serve context: async jobs detach from their
	// request and run under it, so shutdown cancels them.
	ctx context.Context
}

// handler builds the daemon's route table:
//
//	POST /v1/check      — run an implementation check (?async=1 to queue)
//	POST /v1/simulate   — run a simulation (?async=1 to queue)
//	POST /v1/describe   — profile systems (?async=1 to queue)
//	GET  /v1/jobs       — list submitted jobs
//	GET  /v1/jobs/{id}  — fetch one job record
//	GET  /v1/metrics    — obs metrics snapshot (counters, gauges, histograms)
//	GET  /healthz       — liveness probe
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/check", s.jobHandler(engine.KindCheck))
	mux.HandleFunc("POST /v1/simulate", s.jobHandler(engine.KindSimulate))
	mux.HandleFunc("POST /v1/describe", s.jobHandler(engine.KindDescribe))
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		cHTTPRequests.Inc()
		writeJSON(w, http.StatusOK, s.store.List())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		cHTTPRequests.Inc()
		rec, ok := s.store.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, rec)
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		cHTTPRequests.Inc()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(obs.Default.Snapshot().JSON())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// jobHandler decodes the kind-specific spec from the request body and either
// runs it synchronously (the default: 200 with the result) or queues it
// (?async=1: 202 with the job record, poll GET /v1/jobs/{id}).
func (s *server) jobHandler(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		cHTTPRequests.Inc()
		job := engine.Job{Kind: kind}
		var spec any
		switch kind {
		case engine.KindCheck:
			job.Check = &engine.CheckSpec{}
			spec = job.Check
		case engine.KindSimulate:
			job.Simulate = &engine.SimulateSpec{}
			spec = job.Simulate
		case engine.KindDescribe:
			job.Describe = &engine.DescribeSpec{}
			spec = job.Describe
		}
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(spec); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad %s spec: %w", kind, err))
			return
		}
		if job.TimeoutMS <= 0 {
			job.TimeoutMS = s.timeout.Milliseconds()
		}
		if r.URL.Query().Get("async") == "1" {
			// Detach from the request context: the job outlives the request
			// and is bounded by the job timeout and the serve context.
			rec := s.store.Submit(s.ctx, s.runner, job)
			writeJSON(w, http.StatusAccepted, rec)
			return
		}
		res, err := s.runner.Run(r.Context(), job)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	cHTTPErrors.Inc()
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
