package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/durable"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/psioa"
	"repro/internal/resilience"
)

// Observability instruments for the HTTP layer.
var (
	cHTTPRequests = obs.C("dsed.http.requests")
	cHTTPErrors   = obs.C("dsed.http.errors")
	cHTTPPanics   = obs.C("dsed.http.panics")
)

// maxStoreEntry bounds a PUT /v1/store/{key} body (16 MiB — far above any
// real result payload, cheap insurance against a runaway peer).
const maxStoreEntry = 16 << 20

// server wires the engine's runner and job store to the HTTP API.
type server struct {
	runner  *engine.Runner
	store   *engine.Store
	timeout time.Duration
	// coord, when non-nil, puts the daemon in coordinator mode: sync jobs
	// are sharded across the cluster's workers instead of run locally.
	coord *cluster.Coordinator
	// durable, when non-nil, is the crash-safety layer (-store-dir /
	// -journal): the disk store backing the cache's raw namespace and the
	// write-ahead job journal (see docs/DURABILITY.md).
	durable *durable.Manager
	// budget is the default per-job work budget applied when a request
	// does not set its own (zero fields = unlimited).
	budget budgetDefaults
	// ctx is the daemon's jobs context: async jobs detach from their
	// request and run under it. It is separate from the shutdown signal
	// so main can drain in-flight jobs first and cancel stragglers after.
	ctx context.Context
	// started stamps process start for the /v1/debug uptime field.
	started time.Time
}

// budgetDefaults carries the daemon-level -budget-* flag values.
type budgetDefaults struct {
	states, transitions, wallMS int64
}

// handler builds the daemon's route table:
//
//	POST /v1/check      — run an implementation check (?async=1 to queue)
//	POST /v1/simulate   — run a simulation (?async=1 to queue)
//	POST /v1/describe   — profile systems (?async=1 to queue)
//	GET  /v1/jobs       — list submitted jobs
//	GET  /v1/jobs/{id}  — fetch one job record
//	GET  /v1/store/{key} — fetch a content-addressed result (404 on miss)
//	PUT  /v1/store/{key} — publish a content-addressed result (204)
//	GET  /v1/metrics    — obs metrics snapshot (JSON; ?format=prom for
//	                      Prometheus text exposition format 0.0.4)
//	GET  /v1/debug      — live introspection: uptime, pool occupancy,
//	                      in-flight jobs with elapsed time, breaker states,
//	                      cache shard occupancy, sort-memo stats
//	GET  /healthz       — liveness probe
//
// Job routes accept query overrides: ?timeout_ms=, ?budget_states=,
// ?budget_transitions=, ?budget_wall_ms= (the spec body schema is strict,
// so per-request limits travel in the URL).
//
// The whole table is wrapped in a panic-recovery middleware: a handler
// panic is answered with 500 instead of killing the connection — and the
// breaker keeps counting panics per job fingerprint underneath, so a spec
// that reliably panics is quarantined with 422 after K attempts.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/check", s.jobHandler(engine.KindCheck))
	mux.HandleFunc("POST /v1/simulate", s.jobHandler(engine.KindSimulate))
	mux.HandleFunc("POST /v1/describe", s.jobHandler(engine.KindDescribe))
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		cHTTPRequests.Inc()
		writeJSON(w, http.StatusOK, s.store.List())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		cHTTPRequests.Inc()
		rec, ok := s.store.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, rec)
	})
	mux.HandleFunc("GET /v1/store/{key}", func(w http.ResponseWriter, r *http.Request) {
		cHTTPRequests.Inc()
		data, err := s.runner.Cache.GetRaw(r.PathValue("key"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		w.Write(data)
	})
	mux.HandleFunc("PUT /v1/store/{key}", func(w http.ResponseWriter, r *http.Request) {
		cHTTPRequests.Inc()
		// The store rides the bounded striped cache, so an oversized body
		// only wastes transfer; cap it anyway to keep a bad peer cheap.
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxStoreEntry))
		if err != nil {
			httpError(w, http.StatusRequestEntityTooLarge, err)
			return
		}
		s.runner.Cache.PutRaw(r.PathValue("key"), data)
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		cHTTPRequests.Inc()
		if r.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", obs.PromContentType)
			w.WriteHeader(http.StatusOK)
			obs.Default.Snapshot().WriteProm(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(obs.Default.Snapshot().JSON())
	})
	mux.HandleFunc("GET /v1/debug", func(w http.ResponseWriter, r *http.Request) {
		cHTTPRequests.Inc()
		writeJSON(w, http.StatusOK, s.debugInfo())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return recovered(mux)
}

// debugState is the GET /v1/debug response: a live snapshot of the
// daemon's moving parts for operators diagnosing a stuck or overloaded
// instance.
type debugState struct {
	// WorkerID is this node's stable identity (-worker-id flag, hostname
	// derived by default), the id stamped on every result it computes.
	WorkerID   string `json:"worker_id"`
	UptimeMS   int64  `json:"uptime_ms"`
	Goroutines int    `json:"goroutines"`
	// Pool occupancy: Busy of Workers tasks running right now.
	Workers int `json:"workers"`
	Busy    int `json:"busy"`
	// Queue: async jobs queued or running, against the shed limit
	// (0 = unbounded).
	InFlight   int `json:"inflight"`
	QueueLimit int `json:"queue_limit"`
	// Jobs are the non-terminal job records with elapsed wall time.
	Jobs []debugJob `json:"jobs"`
	// Breakers lists per-fingerprint breaker states (open or counting).
	Breakers []resilience.BreakerState `json:"breakers"`
	// Cache is the memoization cache: total occupancy plus per-shard
	// occupancy and contention counters.
	CacheLen    int                     `json:"cache_len"`
	CacheShards []engine.CacheShardStat `json:"cache_shards"`
	// SortMemo is the psioa canonical-sort memo.
	SortMemo psioa.SortMemoStats `json:"sort_memo"`
	// Cluster is the coordinator's per-worker account (coordinator mode
	// only): each worker's liveness, traffic and store counters plus the
	// dispatch/re-route/store-hit totals.
	Cluster *cluster.CoordinatorStats `json:"cluster,omitempty"`
	// Durable is the crash-safety layer's account (present only with
	// -store-dir/-journal): disk store occupancy and hit/corrupt counters,
	// journal path and append count, and the boot-time replay stats.
	Durable *durable.DebugStats `json:"durable,omitempty"`
}

// debugJob is one queued or running job in the /v1/debug view.
type debugJob struct {
	ID        string `json:"id"`
	Kind      string `json:"kind"`
	Status    string `json:"status"`
	ElapsedMS int64  `json:"elapsed_ms"`
}

// debugInfo assembles the /v1/debug snapshot. The pieces are sampled
// independently (pool, store, cache), so the snapshot is not a consistent
// cut — fine for introspection.
func (s *server) debugInfo() debugState {
	d := debugState{
		WorkerID:    s.runner.WorkerID,
		UptimeMS:    time.Since(s.started).Milliseconds(),
		Goroutines:  runtime.NumGoroutine(),
		Workers:     s.runner.Pool.Workers(),
		Busy:        s.runner.Pool.Busy(),
		InFlight:    s.store.InFlight(),
		QueueLimit:  s.store.QueueLimit(),
		Jobs:        []debugJob{},
		Breakers:    s.store.Breaker().Snapshot(),
		CacheShards: s.runner.Cache.ShardStats(),
		SortMemo:    psioa.SortMemoSnapshot(),
	}
	now := time.Now()
	for _, rec := range s.store.List() {
		if rec.Status != engine.StatusQueued && rec.Status != engine.StatusRunning {
			continue
		}
		since := rec.Started
		if since.IsZero() {
			since = rec.Submitted
		}
		d.Jobs = append(d.Jobs, debugJob{
			ID:        rec.ID,
			Kind:      rec.Kind,
			Status:    rec.Status,
			ElapsedMS: now.Sub(since).Milliseconds(),
		})
	}
	for _, sh := range d.CacheShards {
		d.CacheLen += sh.Len
	}
	if s.coord != nil {
		st := s.coord.Stats()
		d.Cluster = &st
	}
	d.Durable = s.durable.Debug()
	return d
}

// recovered is the last-resort panic boundary of the HTTP layer.
func recovered(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				cHTTPPanics.Inc()
				httpError(w, http.StatusInternalServerError, fmt.Errorf("internal panic: %v", rec))
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// jobHandler decodes the kind-specific spec from the request body and either
// runs it synchronously (the default: 200 with the result) or queues it
// (?async=1: 202 with the job record, poll GET /v1/jobs/{id}).
func (s *server) jobHandler(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		cHTTPRequests.Inc()
		job := engine.Job{Kind: kind}
		var spec any
		switch kind {
		case engine.KindCheck:
			job.Check = &engine.CheckSpec{}
			spec = job.Check
		case engine.KindSimulate:
			job.Simulate = &engine.SimulateSpec{}
			spec = job.Simulate
		case engine.KindDescribe:
			job.Describe = &engine.DescribeSpec{}
			spec = job.Describe
		}
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(spec); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad %s spec: %w", kind, err))
			return
		}
		if err := applyOverrides(&job, r); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if job.TimeoutMS <= 0 {
			job.TimeoutMS = s.timeout.Milliseconds()
		}
		if job.BudgetStates <= 0 {
			job.BudgetStates = s.budget.states
		}
		if job.BudgetTransitions <= 0 {
			job.BudgetTransitions = s.budget.transitions
		}
		if job.BudgetWallMS <= 0 {
			job.BudgetWallMS = s.budget.wallMS
		}
		if s.coord != nil {
			// Coordinator mode: shard across the cluster. The async job
			// store is a per-node facility; queueing belongs on the workers
			// (their 503 sheds are the cluster's admission control).
			if r.URL.Query().Get("async") == "1" {
				httpError(w, http.StatusBadRequest, fmt.Errorf("async jobs are not supported in coordinator mode"))
				return
			}
			res, err := s.coord.Run(r.Context(), job)
			if err != nil {
				code := statusFor(err)
				if errors.Is(err, cluster.ErrNoWorkers) {
					code = http.StatusServiceUnavailable
				}
				httpError(w, code, err)
				return
			}
			writeJSON(w, http.StatusOK, res)
			return
		}
		if r.URL.Query().Get("async") == "1" {
			// Detach from the request context: the job outlives the request
			// and is bounded by the job timeout and the jobs context.
			rec, err := s.store.Submit(s.ctx, s.runner, job)
			if err != nil {
				httpError(w, statusFor(err), err)
				return
			}
			writeJSON(w, http.StatusAccepted, rec)
			return
		}
		// The synchronous path shares the store's breaker: a quarantined
		// spec is rejected up front, and every outcome is observed so the
		// sync and async paths count panics against the same fingerprint.
		fp := job.Fingerprint()
		if err := s.store.Breaker().Allow(fp); err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		res, err := s.runner.RunSafe(r.Context(), job)
		s.store.Breaker().Observe(fp, err)
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	}
}

// applyOverrides reads the per-request limit overrides from the query.
func applyOverrides(job *engine.Job, r *http.Request) error {
	for _, f := range []struct {
		name string
		dst  *int64
	}{
		{"timeout_ms", &job.TimeoutMS},
		{"budget_states", &job.BudgetStates},
		{"budget_transitions", &job.BudgetTransitions},
		{"budget_wall_ms", &job.BudgetWallMS},
	} {
		raw := r.URL.Query().Get(f.name)
		if raw == "" {
			continue
		}
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || v < 0 {
			return fmt.Errorf("bad %s %q", f.name, raw)
		}
		*f.dst = v
	}
	return nil
}

// statusFor maps resilience classifications to HTTP statuses: shed load is
// 503 (retryable), deadlines and cancellations 504, quarantined specs and
// ordinary job failures 422, recovered panics 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, resilience.ErrQueueFull):
		return http.StatusServiceUnavailable
	case errors.Is(err, resilience.ErrDeadline), errors.Is(err, resilience.ErrCancelled):
		return http.StatusGatewayTimeout
	case errors.Is(err, resilience.ErrQuarantined):
		return http.StatusUnprocessableEntity
	}
	var pe *resilience.PanicError
	if errors.As(err, &pe) {
		return http.StatusInternalServerError
	}
	return http.StatusUnprocessableEntity
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	cHTTPErrors.Inc()
	if code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	body := map[string]string{"error": err.Error()}
	if class := resilience.Class(err); class != "" {
		body["class"] = class
	}
	writeJSON(w, code, body)
}
