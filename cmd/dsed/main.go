// dsed is the verification daemon: it serves the implementation checks,
// simulations and resource-bound profiles of the framework over HTTP,
// running every job on one shared worker pool with one shared memoization
// cache — repeated checks of the same systems reuse each other's measure
// expansions (watch engine.cache.hits in GET /v1/metrics).
//
// Usage:
//
//	dsed -addr :8080 -workers 8 -cache-size 4096
//
//	curl -X POST localhost:8080/v1/check -d '{
//	  "left": "coin:biased:x:0.625", "right": "coin:fair:x",
//	  "envs": ["coin:env:x"], "eps": 0.125, "q1": 3}'
//
// See docs/ENGINE.md for the full API walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

var ocli obs.CLI

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache-size", engine.DefaultCacheSize, "memoization cache entries")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-job timeout")
	ocli.Register(flag.CommandLine)
	flag.Parse()
	fatal(ocli.Start())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := &server{
		runner:  engine.NewRunner(engine.NewPool(*workers), engine.NewCache(*cacheSize)),
		store:   engine.NewStore(),
		timeout: *timeout,
		ctx:     ctx,
	}
	hs := &http.Server{Addr: *addr, Handler: srv.handler()}

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "dsed: listening on %s (workers=%d, cache=%d)\n",
			*addr, srv.runner.Pool.Workers(), *cacheSize)
		errCh <- hs.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		// Graceful shutdown: stop accepting, drain in-flight requests.
		fmt.Fprintln(os.Stderr, "dsed: shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			fmt.Fprintln(os.Stderr, "dsed: shutdown:", err)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
	exit(0)
}

// exit routes every termination through the observability teardown so the
// trace is flushed and the metrics snapshot emitted even on failure.
func exit(code int) {
	ocli.Stop()
	os.Exit(code)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsed:", err)
		exit(1)
	}
}
