// dsed is the verification daemon: it serves the implementation checks,
// simulations and resource-bound profiles of the framework over HTTP,
// running every job on one shared worker pool with one shared memoization
// cache — repeated checks of the same systems reuse each other's measure
// expansions (watch engine.cache.hits in GET /v1/metrics).
//
// Usage:
//
//	dsed -addr :8080 -workers 8 -cache-size 4096
//
//	curl -X POST localhost:8080/v1/check -d '{
//	  "left": "coin:biased:x:0.625", "right": "coin:fair:x",
//	  "envs": ["coin:env:x"], "eps": 0.125, "q1": 3}'
//
// See docs/ENGINE.md for the full API walkthrough and docs/ROBUSTNESS.md
// for the hardening knobs (-queue, -breaker-k, -retries, -drain,
// -budget-*).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/durable"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/resilience"
)

var ocli obs.CLI

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker pool size for jobs and the parallel measure kernels (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache-size", engine.DefaultCacheSize, "memoization cache entries")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-job timeout")
	queue := flag.Int("queue", 64, "max async jobs in flight before shedding with 503 (0 = unbounded)")
	breakerK := flag.Int("breaker-k", 3, "consecutive panics before a job fingerprint is quarantined")
	retries := flag.Int("retries", 2, "retry attempts for transient job failures")
	drain := flag.Duration("drain", 10*time.Second, "grace period for in-flight jobs on shutdown")
	budgetStates := flag.Int64("budget-states", 0, "default per-job state budget (0 = unlimited)")
	budgetTrans := flag.Int64("budget-transitions", 0, "default per-job transition budget (0 = unlimited)")
	workerID := flag.String("worker-id", "", "stable node identity stamped on results (default: hostname + addr)")
	coordinator := flag.String("coordinator", "", "comma-separated worker URLs; non-empty runs this daemon as a cluster coordinator (see docs/CLUSTER.md)")
	storeDir := flag.String("store-dir", "", "directory for the durable content-addressed result store; empty keeps results in memory only (see docs/DURABILITY.md)")
	journalPath := flag.String("journal", "", "write-ahead job journal path (default: <store-dir>/journal.jsonl when -store-dir is set; empty with no -store-dir disables journaling)")
	storeMax := flag.Int("store-max", durable.DefaultMaxEntries, "durable store entry bound before LRU eviction")
	fsync := flag.Bool("fsync", true, "fsync durable store commits and journal appends (disabling trades crash durability of the tail for speed; torn writes are still quarantined, never served)")
	ocli.Register(flag.CommandLine)
	flag.Parse()
	fatal(ocli.Start())

	if *workerID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "dsed"
		}
		*workerID = host + *addr
	}

	// Durability layer: a disk-backed content-addressed store under the
	// cache's raw namespace, plus a write-ahead journal of async job
	// lifecycles. Either piece runs alone; both empty means the daemon is
	// memory-only, exactly as before.
	var dm *durable.Manager
	if *storeDir != "" || *journalPath != "" {
		var ds *durable.DiskStore
		if *storeDir != "" {
			var err error
			ds, err = durable.Open(*storeDir, durable.StoreOptions{MaxEntries: *storeMax, NoFsync: !*fsync})
			fatal(err)
			if *journalPath == "" {
				*journalPath = filepath.Join(*storeDir, "journal.jsonl")
			}
		}
		jr, err := durable.OpenJournal(*journalPath, !*fsync)
		fatal(err)
		dm = durable.NewManager(jr, ds)
	}

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Jobs run under their own context, decoupled from the shutdown
	// signal: on SIGTERM the listener closes and in-flight jobs get the
	// drain grace period before jobCancel interrupts their kernels.
	jobCtx, jobCancel := context.WithCancel(context.Background())
	defer jobCancel()

	storeCfg := engine.StoreConfig{
		QueueLimit: *queue,
		Breaker:    resilience.NewBreaker(*breakerK),
		Retry: resilience.Backoff{
			Attempts: *retries + 1,
			Base:     25 * time.Millisecond,
			Cap:      2 * time.Second,
			Jitter:   0.2,
			Seed:     1,
		},
	}
	if dm != nil {
		storeCfg.Journal = dm
	}
	store := engine.NewStoreWith(storeCfg)
	srv := &server{
		runner:  engine.NewRunner(engine.NewPool(*workers), engine.NewCache(*cacheSize)),
		store:   store,
		timeout: *timeout,
		durable: dm,
		budget:  budgetDefaults{states: *budgetStates, transitions: *budgetTrans},
		ctx:     jobCtx,
		started: time.Now(),
	}
	srv.runner.WorkerID = *workerID
	if dm != nil && dm.Store() != nil {
		// The disk store becomes the tier under the cache's raw namespace:
		// memory misses fall through to it, raw puts write through, so the
		// warm store survives restarts and cluster peers are served from
		// disk after a worker bounce.
		srv.runner.Cache.SetRawBacking(dm.Store())
	}
	if dm != nil {
		// Replay the journal before accepting traffic: completed results
		// are restored from the disk store (byte-identical), and
		// accepted-but-unfinished jobs are re-enqueued under their original
		// IDs — unless their result is already stored, in which case the
		// idempotency guard serves it instead of recomputing.
		stats, err := dm.Replay(jobCtx, store, srv.runner)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dsed: journal replay:", err)
		}
		dm.SetReplay(stats)
		if stats.Jobs > 0 {
			fmt.Fprintf(os.Stderr, "dsed: replayed %d journal records: %d jobs, %d restored (%d served from store), %d re-enqueued\n",
				stats.Records, stats.Jobs, stats.Restored, stats.Served, stats.Requeued)
		}
	}
	if *coordinator != "" {
		// Coordinator mode: jobs shard across the listed workers. Each
		// backend is identified by its URL — stable across coordinator
		// restarts, which keeps rendezvous placement stable too. The
		// retry budget mirrors the async store's.
		var backends []cluster.Backend
		for _, raw := range strings.Split(*coordinator, ",") {
			u := strings.TrimSpace(raw)
			if u == "" {
				continue
			}
			backends = append(backends, cluster.NewRemoteBackend(u, u, resilience.Backoff{
				Attempts: *retries + 1,
				Base:     25 * time.Millisecond,
				Cap:      2 * time.Second,
				Jitter:   0.2,
				Seed:     1,
			}))
		}
		coord, err := cluster.NewCoordinator(backends...)
		fatal(err)
		// Background revival re-probe: an idle coordinator (no job traffic
		// to trigger the lazy revive) still notices a restarted worker. The
		// cadence backs off while an outage persists and resets when a node
		// rejoins.
		coord.StartReprobe(jobCtx, resilience.Backoff{
			Attempts: 1,
			Base:     500 * time.Millisecond,
			Cap:      15 * time.Second,
			Jitter:   0.2,
			Seed:     2,
		})
		srv.coord = coord
	}
	hs := &http.Server{Addr: *addr, Handler: srv.handler()}

	errCh := make(chan error, 1)
	go func() {
		mode := ""
		if srv.coord != nil {
			mode = fmt.Sprintf(", coordinator over %d workers", len(srv.coord.Backends()))
		}
		fmt.Fprintf(os.Stderr, "dsed: listening on %s (worker-id=%s, workers=%d, cache=%d, queue=%d%s)\n",
			*addr, *workerID, srv.runner.Pool.Workers(), *cacheSize, *queue, mode)
		errCh <- hs.ListenAndServe()
	}()

	select {
	case <-sigCtx.Done():
		// Graceful shutdown: stop accepting, drain in-flight requests and
		// async jobs, then cancel stragglers so their cancellation
		// checkpoints terminate them.
		fmt.Fprintln(os.Stderr, "dsed: shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			fmt.Fprintln(os.Stderr, "dsed: shutdown:", err)
		}
		if err := store.Drain(shCtx); err != nil {
			fmt.Fprintln(os.Stderr, "dsed: drain expired, cancelling in-flight jobs:", err)
			jobCancel()
			lastCtx, lastCancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer lastCancel()
			store.Drain(lastCtx)
		}
		// Close the journal after the drain so every terminal record of the
		// drained jobs lands on disk; cancelled stragglers journal as failed
		// with class "cancelled" and are re-enqueued by the next replay.
		if dm != nil {
			dm.Journal().Close()
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
	exit(0)
}

// exit routes every termination through the observability teardown so the
// trace is flushed and the metrics snapshot emitted even on failure.
func exit(code int) {
	ocli.Stop()
	os.Exit(code)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsed:", err)
		exit(1)
	}
}
