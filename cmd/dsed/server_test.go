package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	s := &server{
		runner:  engine.NewRunner(engine.NewPool(2), engine.NewCache(0)),
		store:   engine.NewStore(),
		timeout: 30 * time.Second,
		ctx:     context.Background(),
	}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return ts
}

const checkBody = `{"left":"coin:biased:x:0.625","right":"coin:fair:x","envs":["coin:env:x"],"eps":0.125,"q1":3}`

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func metricCounter(t *testing.T, url, name string) int64 {
	t.Helper()
	resp, err := http.Get(url + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap.Counters[name]
}

// TestCheckEndToEndWithCacheHits is the daemon acceptance test: a check
// request is served end to end, and a second identical request hits the
// memoization cache (visible in /v1/metrics).
func TestCheckEndToEndWithCacheHits(t *testing.T) {
	ts := newTestServer(t)

	hits0 := metricCounter(t, ts.URL, "engine.cache.hits")
	var first, second struct {
		Kind  string `json:"kind"`
		Check struct {
			Holds   bool    `json:"Holds"`
			MaxDist float64 `json:"MaxDist"`
		} `json:"check"`
	}
	resp, body := post(t, ts.URL+"/v1/check", checkBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first check: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatalf("first check: %v in %s", err, body)
	}
	if first.Kind != "check" || !first.Check.Holds {
		t.Fatalf("first check result: %s", body)
	}

	resp, body = post(t, ts.URL+"/v1/check", checkBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second check: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if second.Check.Holds != first.Check.Holds || second.Check.MaxDist != first.Check.MaxDist {
		t.Errorf("cached check disagrees: %+v vs %+v", second, first)
	}
	if hits := metricCounter(t, ts.URL, "engine.cache.hits") - hits0; hits == 0 {
		t.Error("second identical check produced no cache hits")
	}
}

func TestAsyncJobLifecycle(t *testing.T) {
	ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/v1/check?async=1", checkBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: status %d: %s", resp.StatusCode, body)
	}
	var rec struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.ID == "" {
		t.Fatalf("no job id in %s", body)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/jobs/" + rec.ID)
		if err != nil {
			t.Fatal(err)
		}
		var got struct {
			Status string `json:"status"`
		}
		err = json.NewDecoder(r.Body).Decode(&got)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if got.Status == engine.StatusDone {
			break
		}
		if got.Status == engine.StatusFailed {
			t.Fatal("async job failed")
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", got.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The job list includes it.
	r, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var list []json.RawMessage
	if err := json.NewDecoder(r.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 {
		t.Errorf("jobs list has %d entries", len(list))
	}
}

func TestBadRequests(t *testing.T) {
	ts := newTestServer(t)
	resp, _ := post(t, ts.URL+"/v1/check", `{"nope": true}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d", resp.StatusCode)
	}
	resp, _ = post(t, ts.URL+"/v1/check", `{"left":"coin:fair:x"}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("incomplete spec: status %d", resp.StatusCode)
	}
	r, err := http.Get(ts.URL + "/v1/jobs/j9999")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d", r.StatusCode)
	}
	r, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Errorf("healthz: status %d", r.StatusCode)
	}
}
