package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/engine"
	"repro/internal/resilience"
)

// durableDaemon is one in-process daemon incarnation over a shared durable
// directory, mirroring main()'s wiring: journal sink on the job store, disk
// store behind the cache's raw namespace, journal replay before serving.
type durableDaemon struct {
	ts    *httptest.Server
	dm    *durable.Manager
	store *engine.Store
	stats durable.ReplayStats
	kill  context.CancelFunc
}

func startDurableDaemon(t *testing.T, dir string) *durableDaemon {
	t.Helper()
	ds, err := durable.Open(filepath.Join(dir, "store"), durable.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	jr, err := durable.OpenJournal(filepath.Join(dir, "journal.jsonl"), false)
	if err != nil {
		t.Fatal(err)
	}
	dm := durable.NewManager(jr, ds)
	st := engine.NewStoreWith(engine.StoreConfig{Journal: dm})
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	s := &server{
		// One worker slot: submissions past the first provably sit queued
		// when the kill lands.
		runner:  engine.NewRunner(engine.NewPool(1), engine.NewCache(64)),
		store:   st,
		timeout: 30 * time.Second,
		durable: dm,
		ctx:     ctx,
		started: time.Now(),
	}
	s.runner.Cache.SetRawBacking(ds)
	stats, err := dm.Replay(ctx, st, s.runner)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	dm.SetReplay(stats)
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return &durableDaemon{ts: ts, dm: dm, store: st, stats: stats, kill: cancel}
}

func submitAsync(t *testing.T, d *durableDaemon, body string) string {
	t.Helper()
	resp, b := post(t, d.ts.URL+"/v1/simulate?async=1", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, b)
	}
	var rec struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(b, &rec); err != nil {
		t.Fatal(err)
	}
	return rec.ID
}

func jobStatus(t *testing.T, d *durableDaemon, id string) (status, class string) {
	t.Helper()
	r, err := http.Get(d.ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		return "", ""
	}
	var got struct {
		Status   string `json:"status"`
		ErrClass string `json:"error_class"`
	}
	if err := json.NewDecoder(r.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	return got.Status, got.ErrClass
}

// TestChaosDurableKillRestart is the ISSUE acceptance chaos test for the
// durability layer: the daemon is SIGKILLed (journal appends and store
// publications cut dead) with one job completed and three still queued
// behind a deliberately slow worker; the restarted daemon replays the
// journal with zero lost accepted jobs — the completed one is served from
// the disk store without recomputation, the queued ones are re-enqueued
// under their original IDs and run to completion, and the daemon serves
// /healthz throughout.
func TestChaosDurableKillRestart(t *testing.T) {
	dir := t.TempDir()
	d1 := startDurableDaemon(t, dir)

	// Job 0 completes pre-crash; its result lands on disk.
	id0 := submitAsync(t, d1, simulateBody(100))
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st, _ := jobStatus(t, d1, id0); st == engine.StatusDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job 0 never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitForEntries(t, filepath.Join(dir, "store"), 1)

	// Jobs 1-3 queue behind an injected 10s kernel delay on the single
	// worker slot, so the SIGKILL provably catches them non-terminal. Each
	// gets a fresh exploration bound: the kernel memos key on (automaton,
	// bound) but not seed, and a memo hit would skip the delay point.
	restore := resilience.InstallInjector(resilience.NewInjector(1).
		ArmDelay(resilience.FaultSlowOp, 1, 10*time.Second))
	ids := []string{id0}
	for i := 101; i <= 103; i++ {
		ids = append(ids, submitAsync(t, d1, slowBody(i, i-96)))
	}

	// SIGKILL: nothing journals or publishes past this point; the process
	// teardown (ctx cancel) reaps the delayed kernels.
	d1.dm.Kill()
	d1.kill()
	drainCtx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := d1.store.Drain(drainCtx); err != nil {
		t.Fatal(err)
	}
	restore()

	// Restart over the same directory.
	d2 := startDurableDaemon(t, dir)
	if d2.stats.Served != 1 {
		t.Errorf("replay served = %d, want 1 (job 0 from the disk store)", d2.stats.Served)
	}
	if d2.stats.Requeued != 3 {
		t.Errorf("replay requeued = %d, want 3", d2.stats.Requeued)
	}

	// Zero lost jobs: every pre-crash ID reaches done on the restarted
	// daemon, which keeps answering liveness probes meanwhile.
	deadline = time.Now().Add(60 * time.Second)
	for {
		hr, err := http.Get(d2.ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		hr.Body.Close()
		if hr.StatusCode != http.StatusOK {
			t.Fatalf("healthz = %d during recovery", hr.StatusCode)
		}
		done := 0
		for _, id := range ids {
			if st, class := jobStatus(t, d2, id); st == engine.StatusDone {
				done++
			} else if st == engine.StatusFailed {
				t.Fatalf("job %s failed after replay (class %s)", id, class)
			}
		}
		if done == len(ids) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d jobs terminal after restart", done, len(ids))
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The served job hit the disk store; /v1/debug exposes the account.
	r, err := http.Get(d2.ts.URL + "/v1/debug")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var dbg struct {
		Durable *durable.DebugStats `json:"durable"`
	}
	if err := json.NewDecoder(r.Body).Decode(&dbg); err != nil {
		t.Fatal(err)
	}
	if dbg.Durable == nil || dbg.Durable.Store == nil || dbg.Durable.Replay == nil {
		t.Fatalf("debug durable section missing: %+v", dbg.Durable)
	}
	if dbg.Durable.Store.Hits < 1 {
		t.Errorf("disk store hits = %d, want >= 1 (replay served job 0 from disk)", dbg.Durable.Store.Hits)
	}

	// Byte-identity across the crash: the restored record's result matches
	// a fresh computation of the same spec on the restarted daemon.
	resp, body := post(t, d2.ts.URL+"/v1/simulate", simulateBody(100))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh run: status %d: %s", resp.StatusCode, body)
	}
	var fresh engine.Result
	if err := json.Unmarshal(body, &fresh); err != nil {
		t.Fatal(err)
	}
	rec, ok := d2.store.Get(id0)
	if !ok || rec.Result == nil {
		t.Fatalf("restored record missing: %+v", rec)
	}
	fresh.Report = nil // run telemetry is per-run, stripped before persistence
	freshJSON, _ := json.Marshal(&fresh)
	restoredJSON, _ := json.Marshal(rec.Result)
	if string(freshJSON) != string(restoredJSON) {
		t.Errorf("restored result not byte-identical to fresh computation:\n got %s\nwant %s", restoredJSON, freshJSON)
	}
}

// slowBody is simulateBody with an explicit exploration bound.
func slowBody(seed, bound int) string {
	return fmt.Sprintf(`{"systems":["coin:fair:x","coin:env:x"],"bound":%d,"seed":%d}`, bound, seed)
}

// waitForEntries polls until the store directory holds n committed entries.
// A job's HTTP status flips to done before its result is published (the
// journal sink runs after the record update), so tests that act on the
// on-disk state must wait on the entry files, not the job status.
func waitForEntries(t *testing.T, dir string, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		des, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		got := 0
		for _, de := range des {
			if strings.HasPrefix(de.Name(), "e-") {
				got++
			}
		}
		if got >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("store has %d committed entries, want %d", got, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// corruptAllEntries flips a bit in the payload tail of every committed
// store entry under dir.
func corruptAllEntries(t *testing.T, dir string) {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, de := range des {
		if !strings.HasPrefix(de.Name(), "e-") {
			continue
		}
		p := filepath.Join(dir, de.Name())
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0x20
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n == 0 {
		t.Fatal("no committed entries to corrupt")
	}
}

// TestChaosDurableCorruptEntryAtBoot pins daemon-level corruption handling:
// a bit-flipped store entry under a restarted daemon is quarantined, the
// affected job is recomputed, and the daemon never fails or serves the
// corrupt bytes.
func TestChaosDurableCorruptEntryAtBoot(t *testing.T) {
	dir := t.TempDir()
	d1 := startDurableDaemon(t, dir)
	id := submitAsync(t, d1, simulateBody(200))
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st, _ := jobStatus(t, d1, id); st == engine.StatusDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitForEntries(t, filepath.Join(dir, "store"), 1)
	d1.kill()

	corruptAllEntries(t, filepath.Join(dir, "store"))

	d2 := startDurableDaemon(t, dir)
	if d2.stats.Requeued != 1 {
		t.Errorf("replay requeued = %d, want 1 (corrupt entry forces recompute)", d2.stats.Requeued)
	}
	deadline = time.Now().Add(30 * time.Second)
	for {
		if st, _ := jobStatus(t, d2, id); st == engine.StatusDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never recomputed after quarantine")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := d2.dm.Store().Stats(); st.Corrupt < 1 || st.Quarantined < 1 {
		t.Errorf("store stats = %+v, want corrupt and quarantined >= 1", st)
	}
}
