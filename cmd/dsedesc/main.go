// dsedesc reports the resource-bound profile of a system (§4.1–4.2):
// canonical description lengths (bits) of states, actions, transitions and
// — for configuration automata — configurations, creation sets and hidden
// sets, plus the instrumented per-query work of the evaluators. With two
// systems it additionally reports the empirical composition-bound constant
// of Lemma 4.3.
//
// Usage:
//
//	dsedesc -sys coin:fair:x
//	dsedesc -sys ledger:direct:x:2 -limit 50000
//	dsedesc -sys coin:fair:x -sys chan:real:y     # composition bound
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bounded"
	"repro/internal/obs"
	"repro/internal/pca"
	"repro/internal/psioa"
	"repro/internal/spec"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

var ocli obs.CLI

func main() {
	var systems multiFlag
	flag.Var(&systems, "sys", "system reference (repeatable)")
	limit := flag.Int("limit", 100000, "reachability exploration limit")
	ocli.Register(flag.CommandLine)
	flag.Parse()
	fatal(ocli.Start())

	if len(systems) == 0 {
		fmt.Fprintln(os.Stderr, "dsedesc: need at least one -sys")
		exit(2)
	}
	auts := make([]psioa.PSIOA, 0, len(systems))
	for _, ref := range systems {
		a, err := spec.Resolve(ref)
		fatal(err)
		auts = append(auts, a)
		describe(ref, a, *limit)
	}
	if len(auts) == 2 {
		r, err := bounded.CompositionBound(auts[0], auts[1], *limit)
		fatal(err)
		fmt.Printf("composition bound (Lemma 4.3): %s\n", r)
	}
	exit(0)
}

// exit routes every termination through the observability teardown so the
// trace is flushed and the metrics snapshot emitted even on failure.
func exit(code int) {
	ocli.Stop()
	os.Exit(code)
}

func describe(ref string, a psioa.PSIOA, limit int) {
	// PCA get their Def 4.2 components measured through the adapter.
	target := a
	if x, ok := a.(pca.PCA); ok {
		target = pca.DescAdapter{PCA: x}
	}
	d, err := bounded.Describe(target, limit)
	fatal(err)
	fmt.Printf("%s\n  description: %s\n", ref, d)
	maxQ, total, err := bounded.QueryWork(a, limit)
	fatal(err)
	fmt.Printf("  query work:  max %d bits/query, %d bits total over the reachable fragment\n", maxQ, total)
	ex, err := psioa.Explore(a, limit)
	fatal(err)
	fmt.Printf("  reachable:   %d states, %d actions%s\n", len(ex.States), len(ex.Acts), trunc(ex.Truncated))
}

func trunc(t bool) string {
	if t {
		return " (truncated)"
	}
	return ""
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsedesc:", err)
		exit(1)
	}
}
