// dsedesc reports the resource-bound profile of a system (§4.1–4.2):
// canonical description lengths (bits) of states, actions, transitions and
// — for configuration automata — configurations, creation sets and hidden
// sets, plus the instrumented per-query work of the evaluators. With two
// systems it additionally reports the empirical composition-bound constant
// of Lemma 4.3.
//
// Usage:
//
//	dsedesc -sys coin:fair:x
//	dsedesc -sys ledger:direct:x:2 -limit 50000
//	dsedesc -sys coin:fair:x -sys chan:real:y     # composition bound
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/resilience"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

var ocli obs.CLI

func main() {
	var systems multiFlag
	flag.Var(&systems, "sys", "system reference (repeatable)")
	limit := flag.Int("limit", 100000, "reachability exploration limit")
	timeout := flag.Duration("timeout", 0, "abort after this wall-clock time (0 = no limit)")
	budget := flag.Int64("budget", 0, "kernel transition budget before stopping (0 = unlimited)")
	ocli.Register(flag.CommandLine)
	flag.Parse()
	fatal(ocli.Start())

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *budget > 0 || *timeout > 0 {
		resilience.SetDefaultBudget(resilience.NewBudget(0, *budget, *timeout))
	}

	if len(systems) == 0 {
		fmt.Fprintln(os.Stderr, "dsedesc: need at least one -sys")
		exit(2)
	}
	r := engine.NewRunner(nil, engine.NewCache(0))
	res, err := r.DescribeSystems(ctx, &engine.DescribeSpec{
		Systems: systems,
		Limit:   *limit,
	})
	fatal(err)
	for _, sd := range res.Systems {
		fmt.Printf("%s\n  description: %s\n", sd.Ref, sd.Description)
		fmt.Printf("  query work:  max %d bits/query, %d bits total over the reachable fragment\n",
			sd.QueryMaxBits, sd.QueryTotalBits)
		fmt.Printf("  reachable:   %d states, %d actions%s\n", sd.States, sd.Actions, trunc(sd.Truncated))
	}
	if res.CompositionBound != "" {
		fmt.Printf("composition bound (Lemma 4.3): %s\n", res.CompositionBound)
	}
	exit(0)
}

// exit routes every termination through the observability teardown so the
// trace is flushed and the metrics snapshot emitted even on failure.
func exit(code int) {
	ocli.Stop()
	os.Exit(code)
}

func trunc(t bool) string {
	if t {
		return " (truncated)"
	}
	return ""
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsedesc:", err)
		exit(1)
	}
}
