// dsecheck decides approximate implementation (Def 4.12) between two
// systems: for every scheduler of the schema on env‖left it searches a
// balanced scheduler on env‖right. The check runs on the engine's worker
// pool with memoized measure expansions; -workers 1 -cache 0 reproduces the
// plain sequential run (the report is byte-identical either way).
//
// Usage:
//
//	dsecheck -left coin:leaky:x:4 -right coin:fair:x -env coin:env:x \
//	         -eps 0.0625 -q1 3
//	dsecheck -left chan:leaky:x:0.5 -right chan:ideal:x \
//	         -env chan:env:x:0 -env chan:env:x:1 \
//	         -schema priority -tmpl send,encrypt,tap,notify,fabricate,deliver \
//	         -eps 0.25 -q1 8 -workers 4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/resilience"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ";") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

var ocli obs.CLI

func main() {
	left := flag.String("left", "", "left (implementing) system reference")
	right := flag.String("right", "", "right (specification) system reference")
	var envs, tmpls multiFlag
	flag.Var(&envs, "env", "environment reference (repeatable)")
	flag.Var(&tmpls, "tmpl", "priority template, comma-separated prefixes (repeatable; priority schema)")
	schemaName := flag.String("schema", "oblivious", "scheduler schema: oblivious | priority | basic")
	eps := flag.Float64("eps", 0, "tolerance ε")
	q1 := flag.Int("q1", 3, "left scheduler bound")
	q2 := flag.Int("q2", 0, "right scheduler bound (default q1)")
	workers := flag.Int("workers", 0, "worker pool size for jobs and the parallel measure kernels (0 = GOMAXPROCS, 1 = sequential)")
	cacheSize := flag.Int("cache", engine.DefaultCacheSize, "memoization cache entries (0 = default)")
	clusterURL := flag.String("cluster", "", "run the check on a dsed cluster: URL of the coordinator (or a single worker)")
	verbose := flag.Bool("v", false, "print every (environment, scheduler) pair")
	explain := flag.Bool("explain", false, "print the per-job run report (work counters, shard balance, cache hit ratio, phase walls)")
	timeout := flag.Duration("timeout", 0, "abort after this wall-clock time (0 = no limit)")
	budget := flag.Int64("budget", 0, "kernel transition budget before stopping (0 = unlimited)")
	ocli.Register(flag.CommandLine)
	flag.Parse()
	fatal(ocli.Start())

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *budget > 0 || *timeout > 0 {
		// The default budget makes the kernels' cancellation checkpoints
		// enforce the limits even where a context is not threaded through.
		resilience.SetDefaultBudget(resilience.NewBudget(0, *budget, *timeout))
	}

	if *left == "" || *right == "" || len(envs) == 0 {
		fmt.Fprintln(os.Stderr, "dsecheck: need -left, -right and at least one -env")
		exit(2)
	}
	var templates [][]string
	for _, t := range tmpls {
		templates = append(templates, strings.Split(t, ","))
	}
	if *schemaName == "priority" && len(templates) == 0 {
		fmt.Fprintln(os.Stderr, "dsecheck: priority schema needs at least one -tmpl")
		exit(2)
	}
	schema, err := engine.SchemaByName(*schemaName, templates)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsecheck: unknown schema %q\n", *schemaName)
		exit(2)
	}

	job := engine.Job{Kind: engine.KindCheck, Check: &engine.CheckSpec{
		Left:      *left,
		Right:     *right,
		Envs:      envs,
		Schema:    *schemaName,
		Templates: templates,
		Eps:       *eps,
		Q1:        *q1,
		Q2:        *q2,
	}}
	if *timeout > 0 {
		job.TimeoutMS = timeout.Milliseconds()
	}
	var res *engine.Result
	if *clusterURL != "" {
		// Remote mode: ship the job to a dsed coordinator (or plain
		// worker) instead of computing locally. The report it returns is
		// byte-identical to the local run (docs/CLUSTER.md).
		backend := cluster.NewRemoteBackend(*clusterURL, *clusterURL, resilience.Backoff{
			Attempts: 3, Base: 25 * time.Millisecond, Cap: 2 * time.Second, Jitter: 0.2, Seed: 1,
		})
		res, err = backend.Run(ctx, job)
	} else {
		r := engine.NewRunner(engine.NewPool(*workers), engine.NewCache(*cacheSize))
		res, err = r.Run(ctx, job)
	}
	fatal(err)
	rep := res.Check
	if rep == nil {
		fatal(fmt.Errorf("no check report in result"))
	}

	fmt.Printf("%s ≤_{%g} %s [schema %s, q1=%d]: %v\n", *left, *eps, *right, schema.Name(), *q1, rep.Holds)
	fmt.Printf("  pairs checked: %d, measured max distance: %.6g\n", len(rep.Pairs), rep.MaxDist)
	if *verbose {
		for _, p := range rep.Pairs {
			status := "ok"
			if !p.OK {
				status = "FAIL"
			}
			fmt.Printf("  [%s] env=%s sched=%s dist=%.6g matched=%s\n", status, p.Env, p.Sched, p.Dist, p.Matched)
		}
	} else {
		for _, p := range rep.Failures() {
			fmt.Printf("  FAIL env=%s sched=%s dist=%.6g\n", p.Env, p.Sched, p.Dist)
		}
	}
	if *explain && res.Report != nil {
		fmt.Print(res.Report.String())
	}
	if !rep.Holds {
		exit(1)
	}
	exit(0)
}

// exit routes every termination through the observability teardown so the
// trace is flushed and the metrics snapshot emitted even on failure.
func exit(code int) {
	ocli.Stop()
	os.Exit(code)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsecheck:", err)
		exit(1)
	}
}
