// dsebench runs the reproduction experiment suite E1–E18 (see DESIGN.md and
// EXPERIMENTS.md): each experiment validates one lemma or theorem of the
// paper on calibrated instances and prints a table of measured quantities.
//
// Usage:
//
//	dsebench                       # run everything
//	dsebench -only E4              # run one experiment
//	dsebench -workers 4            # fan experiments out on an engine pool
//	dsebench -json BENCH.json      # also emit one JSON object per benchmark
//	dsebench -trace out.jsonl -metrics   # observability (see docs/OBSERVABILITY.md)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/psioa"
	"repro/internal/resilience"
)

var ocli obs.CLI

func main() {
	only := flag.String("only", "", "run a single experiment (E1..E18)")
	workers := flag.Int("workers", 1, "experiment parallelism (engine pool size; 1 = sequential; per-kernel worker counts are recorded in the JSON output)")
	jsonOut := flag.String("json", "", "write machine-readable results (one JSON object per benchmark) to `file` (\"-\" for stdout)")
	timeout := flag.Duration("timeout", 0, "abort after this wall-clock time (0 = no limit)")
	budget := flag.Int64("budget", 0, "kernel transition budget before stopping (0 = unlimited)")
	ocli.Register(flag.CommandLine)
	flag.Parse()
	if err := ocli.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "dsebench:", err)
		exit(2)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *budget > 0 || *timeout > 0 {
		// Experiment kernels do not all receive the context, so the process
		// default budget is what propagates the limits into their
		// cancellation checkpoints.
		resilience.SetDefaultBudget(resilience.NewBudget(0, *budget, *timeout))
	}

	_, runs := experiments.Runners()

	if *only != "" {
		run, ok := runs[strings.ToUpper(*only)]
		if !ok {
			fmt.Fprintf(os.Stderr, "dsebench: unknown experiment %q\n", *only)
			exit(2)
		}
		t, err := run()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dsebench:", err)
			exit(1)
		}
		fmt.Println(t)
		emitJSON(*jsonOut, []*experiments.Table{t})
		if !t.Pass() {
			exit(1)
		}
		exit(0)
	}

	start := time.Now()
	tables, err := experiments.AllParallel(ctx, engine.NewPool(*workers))
	for _, t := range tables {
		fmt.Println(t)
	}
	emitJSON(*jsonOut, tables)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsebench:", err)
		exit(1)
	}
	fmt.Printf("all experiments completed in %s\n", time.Since(start).Round(time.Millisecond))
	for _, t := range tables {
		if !t.Pass() {
			fmt.Fprintf(os.Stderr, "dsebench: %s failed\n", t.ID)
			exit(1)
		}
	}
	exit(0)
}

// emitJSON writes one JSON object per benchmark table, for tracking the
// perf trajectory across revisions (BENCH_*.json files).
func emitJSON(path string, tables []*experiments.Table) {
	if path == "" {
		return
	}
	var out io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dsebench:", err)
			exit(1)
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	for _, t := range tables {
		if err := enc.Encode(t.Result()); err != nil {
			fmt.Fprintln(os.Stderr, "dsebench:", err)
			exit(1)
		}
	}
	if err := enc.Encode(telemetryLine()); err != nil {
		fmt.Fprintln(os.Stderr, "dsebench:", err)
		exit(1)
	}
}

// telemetryLine is the trailing process-level run-report line of the -json
// output: cumulative kernel/cache/memo telemetry across the whole suite.
// It deliberately has no "elapsed_us" field, so scripts/bench_compare.sh
// (which keys benchmark rows on "id" + "elapsed_us") skips it.
func telemetryLine() map[string]any {
	snap := obs.Default.Snapshot()
	memo := psioa.SortMemoSnapshot()
	rr := map[string]any{
		"cache_hits":      snap.Counters["engine.cache.hits"],
		"cache_misses":    snap.Counters["engine.cache.misses"],
		"cache_evictions": snap.Counters["engine.cache.evictions"],
		"sort_memo":       memo,
		"pool_tasks":      snap.Counters["engine.pool.tasks"],
		"pool_busy_max":   snap.Gauges["engine.pool.busy.max"],
	}
	if tot := snap.Counters["engine.cache.hits"] + snap.Counters["engine.cache.misses"]; tot > 0 {
		rr["cache_hit_ratio"] = float64(snap.Counters["engine.cache.hits"]) / float64(tot)
	}
	phases := map[string]string{
		"measure_us":     "sched.measure.us",
		"measure_par_us": "sched.measure.par.us",
		"measure_dag_us": "sched.measure.dag.us",
		"sample_par_us":  "sched.sample.par.us",
	}
	for key, hist := range phases {
		if h, ok := snap.Histograms[hist]; ok && h.Count > 0 {
			rr[key] = h
		}
	}
	return map[string]any{"id": "telemetry", "run_report": rr}
}

// exit routes every termination through the observability teardown so the
// trace is flushed and the metrics snapshot emitted even on failure.
func exit(code int) {
	ocli.Stop()
	os.Exit(code)
}
