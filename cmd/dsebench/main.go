// dsebench runs the reproduction experiment suite E1–E10 (see DESIGN.md and
// EXPERIMENTS.md): each experiment validates one lemma or theorem of the
// paper on calibrated instances and prints a table of measured quantities.
//
// Usage:
//
//	dsebench            # run everything
//	dsebench -only E4   # run one experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run a single experiment (E1..E10)")
	flag.Parse()

	runs := map[string]func() (*experiments.Table, error){
		"E1":  experiments.E1CompositionBound,
		"E2":  experiments.E2PCACompositionBound,
		"E3":  experiments.E3HidingBound,
		"E4":  experiments.E4Transitivity,
		"E5":  experiments.E5Composability,
		"E6":  experiments.E6FamilyNegPt,
		"E7":  experiments.E7DummyInsertion,
		"E8":  experiments.E8SecureEmulation,
		"E9":  experiments.E9DynamicCreation,
		"E10": experiments.E10Scaling,
		"E11": experiments.E11DynamicEmulation,
		"E12": experiments.E12Commitment,
		"E13": experiments.E13CreationMonotonicity,
		"E14": experiments.E14CoinFlipping,
		"E15": experiments.E15FamilyEmulation,
		"E16": experiments.E16SchedulingRole,
		"E17": experiments.E17SamplingConvergence,
	}

	if *only != "" {
		run, ok := runs[strings.ToUpper(*only)]
		if !ok {
			fmt.Fprintf(os.Stderr, "dsebench: unknown experiment %q\n", *only)
			os.Exit(2)
		}
		emit(run)
		return
	}

	start := time.Now()
	tables, err := experiments.All()
	for _, t := range tables {
		fmt.Println(t)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsebench:", err)
		os.Exit(1)
	}
	fmt.Printf("all experiments completed in %s\n", time.Since(start).Round(time.Millisecond))
	for _, t := range tables {
		if strings.HasPrefix(t.Verdict, "FAIL") {
			fmt.Fprintf(os.Stderr, "dsebench: %s failed\n", t.ID)
			os.Exit(1)
		}
	}
}

func emit(run func() (*experiments.Table, error)) {
	t, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsebench:", err)
		os.Exit(1)
	}
	fmt.Println(t)
	if strings.HasPrefix(t.Verdict, "FAIL") {
		os.Exit(1)
	}
}
