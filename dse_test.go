package dse_test

import (
	"math"
	"testing"

	"repro"
	"repro/internal/measure"
	"repro/internal/protocols/channel"
	"repro/internal/protocols/coin"
)

// TestFacadeEndToEnd exercises the public facade exactly as the package
// documentation advertises: build, compose, validate, measure, check.
func TestFacadeEndToEnd(t *testing.T) {
	fair := coin.Fair("x")
	leaky := coin.Leaky("x", 8)
	rep, err := dse.Implements(leaky, fair, dse.Options{
		Envs:    []dse.PSIOA{coin.Env("x")},
		Schema:  &dse.ObliviousSchema{},
		Insight: dse.Trace(),
		Eps:     1.0 / 256,
		Q1:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Errorf("doc-comment example fails: %s", rep)
	}
	if math.Abs(rep.MaxDist-1.0/256) > 1e-9 {
		t.Errorf("MaxDist = %v, want 1/256", rep.MaxDist)
	}
}

// TestFacadeBuilder builds an automaton through the facade aliases.
func TestFacadeBuilder(t *testing.T) {
	a := dse.NewBuilder("t", "q0").
		AddState("q0", dse.NewSignature(nil, []dse.Action{"go"}, nil)).
		AddState("q1", dse.NewSignature(nil, nil, nil)).
		AddDet("q0", "go", "q1").
		MustBuild()
	if err := dse.Validate(a, 10); err != nil {
		t.Fatal(err)
	}
	w, err := dse.Compose(a, coin.Fair("x"))
	if err != nil {
		t.Fatal(err)
	}
	ex, err := dse.Explore(w, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.States) == 0 {
		t.Error("no reachable states")
	}
}

// TestFacadeDistances checks the re-exported measure functions.
func TestFacadeDistances(t *testing.T) {
	a := measure.MustFromMap(map[string]float64{"x": 0.5, "y": 0.5})
	b := measure.MustFromMap(map[string]float64{"x": 0.75, "y": 0.25})
	if got := dse.BalancedSup(a, b); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("BalancedSup = %v", got)
	}
	if got := dse.TVDistance(a, b); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("TVDistance = %v", got)
	}
}

// TestFacadeSecureEmulation smoke-tests the security-layer aliases.
func TestFacadeSecureEmulation(t *testing.T) {
	rep, err := dse.SecureEmulates(channel.Real("x"), channel.Ideal("x"),
		[]dse.AdvSim{{Adv: channel.Blocker("x"), Sim: channel.BlockerSim("x")}},
		dse.Options{
			Envs: []dse.PSIOA{channel.Env("x", 0)},
			Schema: &dse.PrefixPrioritySchema{Templates: [][]string{
				{"send", "encrypt", "tap", "notify", "block", "deliver"},
			}},
			Insight: dse.Trace(),
			Eps:     0,
			Q1:      8,
		}, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Errorf("facade emulation check failed: %s", rep)
	}
}
