// Durable-store pins against the nine kernel-equivalence fingerprints: the
// canonical kernel renderings round-trip through the disk store across a
// reopen with their SHA-256 goldens unchanged, and a corrupted entry is
// quarantined and recomputed back to the exact golden — persistence and
// quarantine-and-recompute never alter a byte of kernel output.
package dse_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/durable"
)

func TestDurableStoreKernelPins(t *testing.T) {
	dir := t.TempDir()
	s, err := durable.Open(dir, durable.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cases := kernelPinCases()
	for _, c := range cases {
		text, err := c.text()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Put(c.name, []byte(text)); err != nil {
			t.Fatal(err)
		}
	}

	// Reopen (the restart) and verify every recovered entry still hashes to
	// its golden.
	s2, err := durable.Open(dir, durable.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		data, err := s2.Get(c.name)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got, want := pinHash(string(data)), kernelPins[c.name]; got != want {
			t.Errorf("%s: recovered entry hash %s, golden %s", c.name, got, want)
		}
	}

	// Flip one bit in every committed entry: each Get must quarantine and
	// the recompute-and-republish cycle must land back on the golden.
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if !strings.HasPrefix(de.Name(), "e-") {
			continue
		}
		p := filepath.Join(dir, de.Name())
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0x04
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s3, err := durable.Open(dir, durable.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		if _, err := s3.Get(c.name); err == nil {
			t.Fatalf("%s: bit-flipped entry served", c.name)
		}
		text, err := c.text() // recompute
		if err != nil {
			t.Fatal(err)
		}
		if err := s3.Put(c.name, []byte(text)); err != nil {
			t.Fatal(err)
		}
		data, err := s3.Get(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := pinHash(string(data)), kernelPins[c.name]; got != want {
			t.Errorf("%s: recomputed entry hash %s, golden %s", c.name, got, want)
		}
	}
	if st := s3.Stats(); st.Corrupt != int64(len(cases)) {
		t.Errorf("corrupt count = %d, want %d", st.Corrupt, len(cases))
	}
}
