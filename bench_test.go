// Benchmarks for the reproduction experiment suite (E1–E10, see DESIGN.md
// §4 and EXPERIMENTS.md) plus micro-benchmarks of the framework kernels.
// Each experiment benchmark exercises the same code path as the
// corresponding cmd/dsebench table.
package dse_test

import (
	"context"
	"fmt"
	"testing"

	"repro"
	"repro/internal/adversary"
	"repro/internal/bounded"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/insight"
	"repro/internal/measure"
	"repro/internal/pca"
	"repro/internal/protocols/channel"
	"repro/internal/protocols/coin"
	"repro/internal/protocols/coinflip"
	"repro/internal/protocols/commitment"
	"repro/internal/protocols/dynchannel"
	"repro/internal/protocols/ledger"
	"repro/internal/psioa"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/testaut"
)

// BenchmarkE1CompositionBound measures the Lemma 4.3 description-bound
// computation for a PSIOA pair.
func BenchmarkE1CompositionBound(b *testing.B) {
	a1 := testaut.Counter("a1", 16)
	a2 := testaut.Counter("a2", 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bounded.CompositionBound(a1, a2, 100000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2PCACompositionBound measures the Lemma B.2 bound computation
// for composed dynamic ledgers.
func BenchmarkE2PCACompositionBound(b *testing.B) {
	x1, _ := ledger.Host("a", 2, ledger.Direct)
	x2, _ := ledger.Host("b", 2, ledger.Parity)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		comp, err := pca.ComposePCA(x1, x2)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := bounded.Describe(pca.DescAdapter{PCA: comp}, 100000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3HidingBound measures the Lemma 4.5 bound computation.
func BenchmarkE3HidingBound(b *testing.B) {
	a := testaut.Counter("a", 16)
	s := dse.NewActionSet("done_a")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bounded.HidingBound(a, s, 100000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4Transitivity measures a full witness-checked transitivity
// instance (Theorem 4.16).
func BenchmarkE4Transitivity(b *testing.B) {
	delta := 0.0625
	a1 := coin.Flipper("x", 0.5+2*delta)
	a3 := coin.Fair("x")
	w13 := core.ComposeWitnesses(coin.Flipper("x", 0.5+delta), core.IdentityWitness(), core.IdentityWitness())
	opt := core.Options{
		Envs: []psioa.PSIOA{coin.Env("x")}, Schema: &sched.ObliviousSchema{},
		Insight: insight.Trace(), Eps: 2 * delta, Q1: 3, Q2: 3,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := core.ImplementsWitness(a1, a3, w13, opt)
		if err != nil || !rep.Holds {
			b.Fatalf("%v %v", rep, err)
		}
	}
}

// BenchmarkE5Composability measures the Lemma 4.13 conclusion check.
func BenchmarkE5Composability(b *testing.B) {
	delta := 0.125
	left, right, err := core.ComposeContext(coin.Fair("y"), coin.Flipper("x", 0.5+delta), coin.Fair("x"))
	if err != nil {
		b.Fatal(err)
	}
	opt := core.Options{
		Envs:    []psioa.PSIOA{coin.Env("x")},
		Schema:  &sched.PrefixPrioritySchema{Templates: [][]string{{"flip_x", "result"}}},
		Insight: insight.Trace(), Eps: delta, Q1: 4, Q2: 4,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := core.Implements(left, right, opt)
		if err != nil || !rep.Holds {
			b.Fatalf("%v %v", rep, err)
		}
	}
}

// BenchmarkE6FamilyCheck measures one family-member implementation check of
// the Lemma 4.14 experiment.
func BenchmarkE6FamilyCheck(b *testing.B) {
	fam := coin.Family("x")
	fair := coin.FairFamily("x")
	opt := core.Options{
		Envs: []psioa.PSIOA{coin.Env("x")}, Schema: &sched.ObliviousSchema{},
		Insight: insight.Trace(), Eps: bounded.Negl(2)(6), Q1: 3, Q2: 3,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := core.Implements(fam(6), fair(6), opt)
		if err != nil || !rep.Holds {
			b.Fatalf("%v %v", rep, err)
		}
	}
}

// BenchmarkE7DummyForward measures the Lemma 4.29 pipeline: transport a
// scheduler through Forward^s and compare the two worlds' perceptions.
func BenchmarkE7DummyForward(b *testing.B) {
	env := channel.Env("x", 1)
	a := channel.Real("x")
	adv := psioa.RenameMap(channel.Eavesdropper("x"), channel.G("x"))
	ctx, err := adversary.NewForwardCtx(env, a, adv, channel.G("x"), 10000)
	if err != nil {
		b.Fatal(err)
	}
	ss, err := (&sched.PrefixPrioritySchema{Templates: [][]string{
		{"send", "encrypt", "g_tap", "guess", "deliver"},
	}}).Enumerate(ctx.W1, 8)
	if err != nil {
		b.Fatal(err)
	}
	s1 := ss[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s2 := ctx.ForwardSched(s1)
		d1, err := insight.FDist(ctx.W1, s1, insight.Trace(), 30)
		if err != nil {
			b.Fatal(err)
		}
		d2, err := insight.FDist(ctx.W2, s2, insight.Trace(), 30)
		if err != nil {
			b.Fatal(err)
		}
		if insight.Distance(d1, d2) > 1e-9 {
			b.Fatal("lemma 4.29 violated")
		}
	}
}

// BenchmarkE8SecureEmulation measures a full single-instance OTP
// secure-emulation check (Def 4.26).
func BenchmarkE8SecureEmulation(b *testing.B) {
	real := channel.Real("x")
	ideal := channel.Ideal("x")
	cases := []core.AdvSim{{Adv: channel.Eavesdropper("x"), Sim: channel.SimFor("x")}}
	opt := core.Options{
		Envs: []psioa.PSIOA{channel.Env("x", 0), channel.Env("x", 1)},
		Schema: &sched.PrefixPrioritySchema{Templates: [][]string{
			{"send", "encrypt", "tap", "notify", "fabricate", "g_tap", "guess", "deliver"},
			{"send", "encrypt", "tap", "notify", "deliver"},
		}},
		Insight: insight.Trace(), Eps: 0, Q1: 8, Q2: 8,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := core.SecureEmulates(real, ideal, cases, opt, 50000)
		if err != nil || !rep.Holds {
			b.Fatalf("%v %v", rep, err)
		}
	}
}

// BenchmarkE9DynamicCreation measures execution-measure computation over a
// dynamic ledger (creation + destruction on every path).
func BenchmarkE9DynamicCreation(b *testing.B) {
	x, _ := ledger.Host("m", 2, ledger.Direct)
	order := []psioa.Action{
		"sample_0_m", "sample_1_m",
		ledger.Sealed("m", 0, 0), ledger.Sealed("m", 0, 1),
		ledger.Sealed("m", 1, 0), ledger.Sealed("m", 1, 1),
		ledger.Open("m"),
	}
	s := &sched.Priority{A: x, Bound: 12, LocalOnly: true, Order: order}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		em, err := sched.Measure(x, s, 20)
		if err != nil || em.Len() == 0 {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10ExecMeasure measures exact ε_σ computation on a branching
// random walk (depth 12).
func BenchmarkE10ExecMeasure(b *testing.B) {
	w := testaut.RandomWalk("w", 8, 0.5)
	s := &sched.Greedy{A: w, Bound: 12, LocalOnly: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Measure(w, s, 14); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10Sampling measures the Monte-Carlo alternative at the same
// depth (per sampled execution).
func BenchmarkE10Sampling(b *testing.B) {
	w := testaut.RandomWalk("w", 8, 0.5)
	s := &sched.Greedy{A: w, Bound: 12, LocalOnly: true}
	stream := rng.New(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Sample(w, s, stream, 14); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11DynamicEmulation measures the full dynamic-host secure
// emulation check (one run-time-created session).
func BenchmarkE11DynamicEmulation(b *testing.B) {
	real := dynchannel.Host("d", 1, dynchannel.RealKind)
	ideal := dynchannel.Host("d", 1, dynchannel.IdealKind)
	cases := []core.AdvSim{{Adv: dynchannel.Adversary("d", 1), Sim: dynchannel.Simulator("d", 1)}}
	opt := core.Options{
		Envs: []psioa.PSIOA{dynchannel.Env("d", []int{0}), dynchannel.Env("d", []int{1})},
		Schema: &sched.PrefixPrioritySchema{Templates: [][]string{
			{"open", "send", "encrypt", "tap", "notify", "fabricate", "guess", "deliver"},
			{"open", "send", "encrypt", "tap", "notify", "deliver"},
		}},
		Insight: insight.Trace(), Eps: 0, Q1: 10, Q2: 10,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := core.SecureEmulates(real, ideal, cases, opt, 20000)
		if err != nil || !rep.Holds {
			b.Fatalf("%v %v", rep, err)
		}
	}
}

// BenchmarkE12Commitment measures the stateful-simulator emulation check on
// the bit-commitment protocol.
func BenchmarkE12Commitment(b *testing.B) {
	opt := core.Options{
		Envs: []psioa.PSIOA{commitment.Env("x", 0), commitment.Env("x", 1)},
		Schema: &sched.PrefixPrioritySchema{Templates: [][]string{
			{"commit", "blind", "tapc", "committed", "fabc", "seec", "open_x", "tapp", "opened", "fabp", "seep", "reveal"},
		}},
		Insight: insight.Trace(), Eps: 0, Q1: 12, Q2: 12,
	}
	cases := []core.AdvSim{{Adv: commitment.Observer("x"), Sim: commitment.Sim("x")}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := core.SecureEmulates(commitment.Real("x"), commitment.Ideal("x"), cases, opt, 50000)
		if err != nil || !rep.Holds {
			b.Fatalf("%v %v", rep, err)
		}
	}
}

// BenchmarkE13CreationMonotonicity measures the end-to-end monotonicity
// check (child relation + obliviousness + host relation).
func BenchmarkE13CreationMonotonicity(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.E13CreationMonotonicity()
		if err != nil || tbl == nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE14CoinFlipping measures the passive XOR coin-flipping emulation
// check (the largest composed real system in the suite: 3 automata + 2
// relays).
func BenchmarkE14CoinFlipping(b *testing.B) {
	opt := core.Options{
		Envs: []psioa.PSIOA{coinflip.Env("x")},
		Schema: &sched.PrefixPrioritySchema{Templates: [][]string{
			{"pick", "share", "see", "toss", "announce", "fabshare", "result"},
		}},
		Insight: insight.Trace(), Eps: 0, Q1: 12, Q2: 12,
	}
	cases := []core.AdvSim{{Adv: coinflip.PassiveAdv("x", 2), Sim: coinflip.PassiveSim("x")}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := core.SecureEmulates(coinflip.Real("x", 2), coinflip.Ideal("x"), cases, opt, 50000)
		if err != nil || !rep.Holds {
			b.Fatalf("%v %v", rep, err)
		}
	}
}

// Micro-benchmarks of the framework kernels.

// BenchmarkComposeSig measures composed-signature evaluation (cold cache).
func BenchmarkComposeSig(b *testing.B) {
	auts := make([]psioa.PSIOA, 8)
	for i := range auts {
		auts[i] = testaut.Coin(fmt.Sprintf("c%d", i), 0.5)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := psioa.MustCompose(auts...)
		p.Sig(p.Start())
	}
}

// BenchmarkProductTrans measures a product transition with 8 participants
// (warm caches).
func BenchmarkProductTrans(b *testing.B) {
	auts := make([]psioa.PSIOA, 8)
	for i := range auts {
		auts[i] = testaut.Coin(fmt.Sprintf("c%d", i), 0.5)
	}
	p := psioa.MustCompose(auts...)
	q := p.Start()
	p.Trans(q, "flip_c3")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Trans(q, "flip_c3")
	}
}

// BenchmarkExplore measures reachability analysis of a composed system.
func BenchmarkExplore(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := psioa.MustCompose(channel.Env("x", 1), channel.Real("x"), channel.Eavesdropper("x"))
		if _, err := psioa.Explore(w, 100000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeasureDeep measures a deep, nearly-linear scheduler-tree
// expansion (Counter chain, execution depth 257): the regime where
// per-step fragment copying would be quadratic in the depth.
func BenchmarkMeasureDeep(b *testing.B) {
	c := testaut.Counter("c", 256)
	acts := make([]psioa.Action, 0, 257)
	for i := 0; i < 256; i++ {
		acts = append(acts, "tick")
	}
	acts = append(acts, "done_c")
	s := &sched.Sequence{A: c, Acts: acts}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		em, err := sched.Measure(c, s, 260)
		if err != nil || em.MaxLen() != 257 {
			b.Fatalf("%v maxlen=%d", err, em.MaxLen())
		}
	}
}

// BenchmarkMeasureDeepBranching measures ε_σ expansion of a reflecting
// random walk whose tree is both deep and wide.
func BenchmarkMeasureDeepBranching(b *testing.B) {
	w := testaut.RandomWalk("w", 10, 0.5)
	s := &sched.Greedy{A: w, Bound: 16, LocalOnly: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Measure(w, s, 18); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSampleImageMany measures Monte-Carlo image estimation: 1000
// depth-64 walks per iteration, the SampleImage hot path.
func BenchmarkSampleImageMany(b *testing.B) {
	w := testaut.RandomWalk("w", 32, 0.5)
	s := &sched.Greedy{A: w, Bound: 64, LocalOnly: true}
	stream := rng.New(7)
	traceOf := func(f *psioa.Frag) string { return f.TraceKey(w) }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sched.SampleImage(w, s, stream, 66, 1000, traceOf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFragExtendKey measures building a depth-512 fragment one step at
// a time, keying every prefix (the Measure inner loop's fragment work).
func BenchmarkFragExtendKey(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := psioa.NewFrag("q0")
		for j := 0; j < 512; j++ {
			f = f.Extend("a", psioa.State(fmt.Sprintf("q%d", j+1)))
			_ = f.Key()
		}
	}
}

// BenchmarkFragIsPrefixOf measures the prefix check between a depth-256
// fragment and its depth-512 extension.
func BenchmarkFragIsPrefixOf(b *testing.B) {
	f := psioa.NewFrag("q0")
	var half *psioa.Frag
	for j := 0; j < 512; j++ {
		f = f.Extend("a", psioa.State(fmt.Sprintf("q%d", j+1)))
		if j == 255 {
			half = f
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !half.IsPrefixOf(f) {
			b.Fatal("prefix check failed")
		}
	}
}

// BenchmarkConeLookup measures cone-mass queries against a branching
// execution measure (one query per prefix depth).
func BenchmarkConeLookup(b *testing.B) {
	w := testaut.RandomWalk("w", 8, 0.5)
	s := &sched.Greedy{A: w, Bound: 12, LocalOnly: true}
	em, err := sched.Measure(w, s, 14)
	if err != nil {
		b.Fatal(err)
	}
	alpha := psioa.NewFrag(w.Start()).Extend("step_w", "x1").Extend("step_w", "x2")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if em.Cone(alpha) <= 0 {
			b.Fatal("cone mass vanished")
		}
	}
}

// BenchmarkExploreWarm measures repeated reachability analysis of one
// composed system (warm signature/transition caches), the pattern of
// Validate + ActsUniverse + fingerprinting over a shared automaton.
func BenchmarkExploreWarm(b *testing.B) {
	w := psioa.MustCompose(channel.Env("x", 1), channel.Real("x"), channel.Eavesdropper("x"))
	if _, err := psioa.Explore(w, 100000); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := psioa.Explore(w, 100000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistSample measures repeated draws from one 64-point
// distribution (the transition-sampling inner loop of Sample).
func BenchmarkDistSample(b *testing.B) {
	m := make(map[string]float64, 64)
	for i := 0; i < 64; i++ {
		m[fmt.Sprintf("x%02d", i)] = 1.0 / 64
	}
	d := measure.MustFromMap(m)
	stream := rng.New(11)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := d.Sample(stream.Float64()); !ok {
			b.Fatal("probability measure failed to sample")
		}
	}
}

// BenchmarkBalancedSup measures the Def 3.6 distance on 1k-point supports.
func BenchmarkBalancedSup(b *testing.B) {
	x := make(map[string]float64, 1000)
	y := make(map[string]float64, 1000)
	for i := 0; i < 1000; i++ {
		x[fmt.Sprint(i)] = 1.0 / 1000
		y[fmt.Sprint((i+1)%1000)] = 1.0 / 1000
	}
	dx := measure.MustFromMap(x)
	dy := measure.MustFromMap(y)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dse.BalancedSup(dx, dy)
	}
}

// BenchmarkMeasureParallel measures the sharded frontier expansion against
// the deep/wide random-walk tree at several worker counts; the workers=1
// case routes through the sequential kernel, so the sub-benchmark family is
// the parallel-vs-sequential scaling curve (see make bench-par).
func BenchmarkMeasureParallel(b *testing.B) {
	w := testaut.RandomWalk("w", 10, 0.5)
	s := &sched.Random{A: w, Bound: 14}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sched.MeasureOpts(context.Background(), w, s, 16, nil,
					sched.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMeasureDAGConverging measures the state-collapsed DAG kernel
// against the tree kernel on a converging automaton at the same bound: the
// tree expands ~2^14 executions while the DAG propagates |states|×depth
// nodes.
func BenchmarkMeasureDAGConverging(b *testing.B) {
	w := testaut.RandomWalk("w", 6, 0.5)
	s := &sched.Random{A: w, Bound: 14}
	b.Run("tree", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sched.Measure(w, s, 16); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dag", func(b *testing.B) {
		dob, ok := sched.AsDepthOblivious(s)
		if !ok {
			b.Fatal("Random must be depth-oblivious")
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sched.MeasureDAG(context.Background(), w, dob, 16, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSampleImageParallel measures the substream Monte-Carlo sampler
// at several worker counts (the sampled distribution is identical at all of
// them).
func BenchmarkSampleImageParallel(b *testing.B) {
	w := testaut.RandomWalk("w", 32, 0.5)
	s := &sched.Greedy{A: w, Bound: 64, LocalOnly: true}
	traceOf := func(f *psioa.Frag) string { return f.TraceKey(w) }
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			stream := rng.New(7)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sched.SampleImageOpts(context.Background(), w, s, stream, 66, 1000,
					traceOf, nil, sched.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
