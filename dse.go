// Package dse is the public facade of the Composable Dynamic Secure
// Emulation framework — an executable rendering of Civit & Potop-Butucaru,
// "Composable Dynamic Secure Emulation" (SPAA 2022), built on dynamic
// probabilistic input/output automata.
//
// The framework is organised in layers, each its own package; this facade
// re-exports the names a typical user needs so one import suffices:
//
//   - automata: PSIOA (Def 2.1), signatures, composition (Def 2.18),
//     hiding, renaming, executions and traces — internal/psioa;
//   - dynamics: configurations and PCA with run-time creation and
//     destruction of automata (Defs 2.9–2.19) — internal/pca;
//   - scheduling: schedulers, scheduler schemas and the execution measure
//     ε_σ (Defs 3.1–3.2, 4.6) — internal/sched;
//   - perception: insight functions, f-dist and the balanced-scheduler
//     distance (Defs 3.4–3.7) — internal/insight;
//   - resources: description bounds, bounded families, polynomial and
//     negligible asymptotics (§4.1–4.5) — internal/bounded;
//   - security: structured automata (Def 4.17), adversaries and the dummy
//     adversary (Defs 4.24, 4.27), approximate implementation (Def 4.12)
//     and secure emulation with the Theorem 4.30 composed-simulator
//     construction — internal/structured, internal/adversary,
//     internal/core.
//
// A minimal session:
//
//	fair := coin.Fair("x")            // ideal system
//	leaky := coin.Leaky("x", 8)       // real system, bias 2^-8
//	rep, err := dse.Implements(leaky, fair, dse.Options{
//	    Envs:    []dse.PSIOA{coin.Env("x")},
//	    Schema:  &dse.ObliviousSchema{},
//	    Insight: dse.Trace(),
//	    Eps:     1.0 / 256,
//	    Q1:      3,
//	})
//
// See examples/ for complete programs and EXPERIMENTS.md for the
// experiment suite that validates every lemma and theorem of the paper.
package dse

import (
	"repro/internal/adversary"
	"repro/internal/bounded"
	"repro/internal/core"
	"repro/internal/insight"
	"repro/internal/measure"
	"repro/internal/pca"
	"repro/internal/psioa"
	"repro/internal/sched"
	"repro/internal/structured"
)

// Automata layer (internal/psioa).
type (
	// PSIOA is a probabilistic signature input/output automaton (Def 2.1).
	PSIOA = psioa.PSIOA
	// State is an automaton state (canonical string encoding).
	State = psioa.State
	// Action is an action name.
	Action = psioa.Action
	// ActionSet is a finite set of actions.
	ActionSet = psioa.ActionSet
	// Signature is a state signature (in, out, int).
	Signature = psioa.Signature
	// Builder assembles explicit finite automata.
	Builder = psioa.Builder
	// Table is an explicit finite automaton.
	Table = psioa.Table
	// Product is a parallel composition (Def 2.18).
	Product = psioa.Product
	// Frag is an execution fragment (Def 2.2).
	Frag = psioa.Frag
	// Exploration is a bounded reachability analysis result.
	Exploration = psioa.Exploration
)

var (
	// NewBuilder starts building a finite automaton.
	NewBuilder = psioa.NewBuilder
	// NewActionSet builds an action set.
	NewActionSet = psioa.NewActionSet
	// NewSignature builds a signature from action lists.
	NewSignature = psioa.NewSignature
	// Compose builds the partial composition A₁‖...‖Aₙ.
	Compose = psioa.Compose
	// MustCompose is Compose that panics on error.
	MustCompose = psioa.MustCompose
	// Hide applies the hiding operator (Def 2.7).
	Hide = psioa.Hide
	// HideSet hides a fixed output set.
	HideSet = psioa.HideSet
	// Rename applies action renaming (Def 2.8).
	Rename = psioa.Rename
	// RenameMap renames via a fixed injective map.
	RenameMap = psioa.RenameMap
	// Explore performs bounded reachability analysis.
	Explore = psioa.Explore
	// Validate checks the PSIOA constraints on the reachable fragment.
	Validate = psioa.Validate
	// NewFrag returns the zero-length fragment at a state.
	NewFrag = psioa.NewFrag
)

// Dynamics layer (internal/pca).
type (
	// PCA is a probabilistic configuration automaton (Def 2.16).
	PCA = pca.PCA
	// Config is a configuration (A, S) (Def 2.9).
	Config = pca.Config
	// Registry maps automaton identifiers to automata.
	Registry = pca.Registry
	// MapRegistry is a Registry backed by a map.
	MapRegistry = pca.MapRegistry
	// ConfigAutomaton is the standard PCA constructor.
	ConfigAutomaton = pca.ConfigAutomaton
)

var (
	// NewConfig builds a configuration from an id → state map.
	NewConfig = pca.NewConfig
	// NewPCA builds a ConfigAutomaton (constraints of Def 2.16 by
	// construction).
	NewPCA = pca.New
	// WithCreated installs a creation mapping.
	WithCreated = pca.WithCreated
	// WithHidden installs a hidden-actions mapping.
	WithHidden = pca.WithHidden
	// ComposePCA composes PCAs (Def 2.19).
	ComposePCA = pca.ComposePCA
	// ValidatePCA mechanically checks PCA constraints 1–4.
	ValidatePCA = pca.ValidatePCA
	// IntrinsicTrans computes the dynamic transition of Def 2.14.
	IntrinsicTrans = pca.IntrinsicTrans
	// CreationMaskView renders the creation-oblivious view of §4.4.
	CreationMaskView = pca.CreationMaskView
)

// Scheduling layer (internal/sched).
type (
	// Scheduler resolves non-determinism (Def 3.1).
	Scheduler = sched.Scheduler
	// Schema is a scheduler schema (Def 3.2).
	Schema = sched.Schema
	// ObliviousSchema enumerates off-line deterministic schedulers.
	ObliviousSchema = sched.ObliviousSchema
	// PrefixPrioritySchema enumerates run-to-completion strategies.
	PrefixPrioritySchema = sched.PrefixPrioritySchema
	// ExecMeasure is the execution measure ε_σ.
	ExecMeasure = sched.ExecMeasure
)

var (
	// Measure computes ε_σ exactly.
	Measure = sched.Measure
	// Sample simulates one execution.
	Sample = sched.Sample
	// IsBounded verifies Def 4.6 boundedness.
	IsBounded = sched.IsBounded
)

// Perception layer (internal/insight).
type (
	// Insight is an insight function (Def 3.4).
	Insight = insight.Insight
)

var (
	// Trace is the external-trace insight.
	Trace = insight.Trace
	// Accept is the accept insight of Canetti et al.
	Accept = insight.Accept
	// Print is the print insight of the PSIOA framework.
	Print = insight.Print
	// FDist computes f-dist (Def 3.5).
	FDist = insight.FDist
	// Balanced checks σ S^{≤ε}_{E,f} σ′ (Def 3.6).
	Balanced = insight.Balanced
	// Distance is the Def 3.6 distance between perceptions.
	Distance = insight.Distance
)

// Resource layer (internal/bounded).
type (
	// Desc is a description-length report (Defs 4.1–4.2).
	Desc = bounded.Desc
	// Family is an indexed automaton family (Def 4.7).
	Family = bounded.Family
	// Fn is a bound/tolerance function ℕ → ℝ≥0.
	Fn = bounded.Fn
)

var (
	// Describe measures canonical description lengths.
	Describe = bounded.Describe
	// CompositionBound checks Lemma 4.3 empirically.
	CompositionBound = bounded.CompositionBound
	// HidingBound checks Lemma 4.5 empirically.
	HidingBound = bounded.HidingBound
	// Poly builds a polynomial bound.
	Poly = bounded.Poly
	// Negl builds a negligible function base^(−k).
	Negl = bounded.Negl
)

// Security layer (internal/structured, internal/adversary, internal/core).
type (
	// SPSIOA is a structured PSIOA (Def 4.17).
	SPSIOA = structured.SPSIOA
	// Structured wraps a PSIOA with an environment-action mapping.
	Structured = structured.Structured
	// DummyAdv is the dummy adversary of Def 4.27.
	DummyAdv = adversary.DummyAdv
	// ForwardCtx packages Lemma 4.29's two worlds and transports.
	ForwardCtx = adversary.ForwardCtx
	// Options configures implementation-relation checks (Def 4.12).
	Options = core.Options
	// Report is an implementation-check outcome.
	Report = core.Report
	// Witness is a constructive scheduler correspondence σ ↦ σ′.
	Witness = core.Witness
	// AdvSim is an adversary/simulator pair for secure emulation.
	AdvSim = core.AdvSim
	// SFamily is an indexed family of structured automata (Def 4.26).
	SFamily = core.SFamily
	// AdvSimFamily pairs an adversary family with its simulator family.
	AdvSimFamily = core.AdvSimFamily
	// FamilyEmulationReport is a family-level emulation outcome.
	FamilyEmulationReport = core.FamilyEmulationReport
	// EmulationReport is a secure-emulation outcome.
	EmulationReport = core.EmulationReport
)

var (
	// NewStructured wraps an automaton with an EAct mapping.
	NewStructured = structured.New
	// NewStructuredSet wraps with a fixed environment-action set.
	NewStructuredSet = structured.NewSet
	// AAct returns the adversary actions at a state.
	AAct = structured.AAct
	// IsAdversaryFor checks Def 4.24.
	IsAdversaryFor = adversary.IsAdversaryFor
	// Dummy builds the dummy adversary of Def 4.27.
	Dummy = adversary.Dummy
	// NewForwardCtx builds the Lemma 4.29 worlds.
	NewForwardCtx = adversary.NewForwardCtx
	// Implements checks A ≤^{Sch,f}_{q1,q2,ε} B exhaustively (Def 4.12).
	Implements = core.Implements
	// ImplementsWitness checks the relation with a constructive witness.
	ImplementsWitness = core.ImplementsWitness
	// SecureEmulates checks Def 4.26.
	SecureEmulates = core.SecureEmulates
	// SecureEmulatesFamily checks Def 4.26 at the family level.
	SecureEmulatesFamily = core.SecureEmulatesFamily
	// NegPtEmulation checks the ≤_{neg,pt} emulation error curve.
	NegPtEmulation = core.NegPtEmulation
	// ComposedSimulator builds Theorem 4.30's simulator.
	ComposedSimulator = core.ComposedSimulator
	// ComposeWitnesses chains witnesses along Theorem 4.16.
	ComposeWitnesses = core.ComposeWitnesses
	// ContextWitness lifts a witness into a context (Lemma 4.13).
	ContextWitness = core.ContextWitness
	// FamilyImplements checks the family-level relation.
	FamilyImplements = core.FamilyImplements
	// NegPt checks the ≤_{neg,pt} form on a finite range.
	NegPt = core.NegPt
)

// Dist is a discrete sub-probability measure over string-encoded elements.
type Dist = measure.Dist[string]

// BalancedSup is the Def 3.6 distance on raw distributions.
func BalancedSup(d, e *Dist) float64 { return measure.BalancedSup(d, e) }

// TVDistance is the total-variation distance on raw distributions.
func TVDistance(d, e *Dist) float64 { return measure.TVDistance(d, e) }
