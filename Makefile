GO ?= go

.PHONY: build test race vet bench check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/obs/... ./internal/sched/... ./internal/psioa/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# check is the tier-1 gate plus static analysis and the race-sensitive
# packages; run before every commit.
check: build vet test race

clean:
	$(GO) clean ./...
	rm -f *.test cpu.prof mem.prof trace.jsonl metrics.json
