GO ?= go

.PHONY: build test race vet bench bench-json bench-par bench-compare bench-smoke no-string-keys daemon-smoke obs-smoke cluster-smoke durable-smoke chaos check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/obs/... ./internal/sched/... ./internal/psioa/... ./internal/engine/... ./internal/cluster/... ./cmd/dsed/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# bench-json runs the full experiment suite and records machine-readable
# results (id, verdict, pass, elapsed_us, table rows — one JSON object per
# line). Compare two recordings with scripts/bench_compare.sh; see
# docs/PERFORMANCE.md.
bench-json:
	$(GO) run ./cmd/dsebench -json BENCH_7.json

# bench-par runs the parallel-vs-sequential kernels at GOMAXPROCS 1 and at
# the host default: the sharded expansion, the DAG collapse, and the
# substream sampler. Results are byte-identical at every worker count, so
# the only thing that moves between the two runs is wall clock.
bench-par:
	GOMAXPROCS=1 $(GO) test -bench='Parallel|DAG' -benchtime=1x -run='^$$' .
	$(GO) test -bench='Parallel|DAG' -benchtime=1x -run='^$$' .

# bench-compare fails when the current recording (BENCH_7.json) regresses
# more than 20% against the previous PR's baseline (BENCH_6.json).
bench-compare:
	sh scripts/bench_compare.sh BENCH_6.json BENCH_7.json

# no-string-keys guards the interned measure core's representation
# boundary: string-keyed maps are banned from the kernel files and allowed
# in the measure's view layer only on annotated lines. See
# docs/PERFORMANCE.md ("The interned core").
no-string-keys:
	sh scripts/no_string_keys.sh

# bench-smoke is the short-mode wiring for check: one fast experiment
# through the -json path, self-compared through bench_compare.sh, so the
# recording and comparison tooling cannot rot.
bench-smoke:
	$(GO) run ./cmd/dsebench -only E1 -json .bench_smoke.json >/dev/null
	sh scripts/bench_compare.sh .bench_smoke.json .bench_smoke.json
	rm -f .bench_smoke.json

# daemon-smoke starts dsed on a scratch port and runs a check through the
# HTTP API twice, asserting the second run hits the memoization cache.
daemon-smoke:
	sh scripts/daemon_smoke.sh

# obs-smoke drives the telemetry-v2 surface end to end: dsecheck -explain
# with a JSONL trace (validated against the documented event-kind table),
# and dsed's /v1/metrics?format=prom (validated by scripts/prom_check.sh)
# and /v1/debug. See docs/OBSERVABILITY.md.
obs-smoke:
	sh scripts/obs_smoke.sh

# cluster-smoke starts a 1-coordinator + 2-worker dsed cluster on scratch
# ports and runs a two-environment check through the coordinator twice: the
# answers must be byte-identical and the second pass served from the
# workers' content-addressed stores. See docs/CLUSTER.md.
cluster-smoke:
	sh scripts/cluster_smoke.sh

# durable-smoke SIGKILLs a dsed with a durable store directory mid-queue
# and restarts it: zero lost jobs, at least one result served from disk
# instead of recomputed. See docs/DURABILITY.md.
durable-smoke:
	sh scripts/durable_smoke.sh

# chaos runs the fault-injected suite under the race detector: worker
# panics, transient job faults, cache eviction, slow operations and queue
# saturation, through both the engine and the daemon's HTTP surface. See
# docs/ROBUSTNESS.md for the fault-point catalogue.
chaos:
	$(GO) test -race -run Chaos ./internal/engine/... ./internal/sched/... ./internal/cluster/... ./cmd/dsed/...
	$(GO) test -race ./internal/resilience/...

# check is the tier-1 gate plus static analysis, the race-sensitive
# packages, the chaos suite, the bench tooling smoke, the parallel-kernel
# smoke, the baseline comparison, and the daemon, cluster, and durability
# end-to-end smokes; run before every commit.
check: build vet no-string-keys test race chaos bench-smoke bench-par bench-compare daemon-smoke obs-smoke cluster-smoke durable-smoke

clean:
	$(GO) clean ./...
	rm -f *.test cpu.prof mem.prof trace.jsonl metrics.json .bench_smoke.json
