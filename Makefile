GO ?= go

.PHONY: build test race vet bench daemon-smoke check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/obs/... ./internal/sched/... ./internal/psioa/... ./internal/engine/... ./cmd/dsed/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# daemon-smoke starts dsed on a scratch port and runs a check through the
# HTTP API twice, asserting the second run hits the memoization cache.
daemon-smoke:
	sh scripts/daemon_smoke.sh

# check is the tier-1 gate plus static analysis, the race-sensitive
# packages, and the daemon end-to-end smoke; run before every commit.
check: build vet test race daemon-smoke

clean:
	$(GO) clean ./...
	rm -f *.test cpu.prof mem.prof trace.jsonl metrics.json
