#!/bin/sh
# no_string_keys.sh — representation-boundary guard for the interned
# measure core (ROADMAP item 2).
#
# The measure kernels' hot structures are slice-indexed by dense intern
# IDs; canonical strings exist only at the API/codec/fingerprint boundary.
# This check keeps it that way: string-keyed (and State-keyed) maps are
# banned outright from the kernel files, and allowed in the measure's view
# layer only on lines explicitly annotated `boundary-ok`.
#
# Exit 0 when clean; prints each offending line and exits 1 otherwise.

set -eu
cd "$(dirname "$0")/.."

fail=0

# Kernel files: no string-keyed maps at all.
for f in internal/sched/dag.go internal/sched/parallel.go; do
    if grep -n 'map\[string\]\|map\[psioa\.State\]' "$f"; then
        echo "no_string_keys: $f: string-keyed map in an interned kernel file" >&2
        fail=1
    fi
done

# Boundary file: string-keyed maps only on boundary-ok annotated lines.
f=internal/sched/execmeasure.go
if grep -n 'map\[string\]\|map\[psioa\.State\]' "$f" | grep -v 'boundary-ok'; then
    echo "no_string_keys: $f: unannotated string-keyed map (add boundary-ok only for API/codec views)" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "no_string_keys: kernels clean"
