#!/bin/sh
# cluster_smoke.sh — end-to-end smoke test of the dsed verification
# cluster: build dsed and dsecheck, start two workers and a coordinator on
# scratch ports, run a two-environment check through the coordinator twice,
# and assert the two answers are byte-identical and the second pass was
# served from the workers' content-addressed stores (nonzero
# dse_cluster_remote_hits on the coordinator's prom surface). See
# docs/CLUSTER.md.
set -eu

CPORT="${DSED_CLUSTER_PORT:-18452}"
W1PORT=$((CPORT + 1))
W2PORT=$((CPORT + 2))
COORD="http://127.0.0.1:$CPORT"
W1="http://127.0.0.1:$W1PORT"
W2="http://127.0.0.1:$W2PORT"
TMP="${TMPDIR:-/tmp}/dse-cluster-smoke.$$"
mkdir -p "$TMP"

go build -o "$TMP/dsed" ./cmd/dsed
go build -o "$TMP/dsecheck" ./cmd/dsecheck

PIDS=""
cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    rm -rf "$TMP"
}
trap cleanup EXIT

"$TMP/dsed" -addr "127.0.0.1:$W1PORT" -worker-id w1 &
PIDS="$PIDS $!"
"$TMP/dsed" -addr "127.0.0.1:$W2PORT" -worker-id w2 &
PIDS="$PIDS $!"
"$TMP/dsed" -addr "127.0.0.1:$CPORT" -worker-id coordinator -coordinator "$W1,$W2" &
PIDS="$PIDS $!"

wait_up() {
    i=0
    until curl -sf "$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "cluster-smoke: $1 did not come up" >&2
            exit 1
        fi
        sleep 0.1
    done
}
wait_up "$W1"
wait_up "$W2"
wait_up "$COORD"

# The standard two-environment channel fixture. The verdict is false (the
# leak is observable without a simulator — dsecheck exits 1), which is fine:
# the property under test is that the cluster's answer is byte-identical
# across runs, not that the theorem holds. Only exit codes >= 2 (transport
# or job errors) fail the smoke.
check() {
    set +e
    "$TMP/dsecheck" -cluster "$COORD" \
        -left 'chan:leaky:x:0.5' -right 'chan:ideal:x' \
        -env 'chan:env:x:0' -env 'chan:env:x:1' \
        -schema priority -tmpl send,encrypt,tap,notify,fabricate,deliver \
        -eps 0.25 -q1 6 -v >"$1"
    code=$?
    set -e
    if [ "$code" -ge 2 ]; then
        echo "cluster-smoke: dsecheck failed with exit $code" >&2
        exit 1
    fi
    if ! [ -s "$1" ]; then
        echo "cluster-smoke: dsecheck produced no output" >&2
        exit 1
    fi
}

check "$TMP/run1.txt"
check "$TMP/run2.txt"

if ! cmp -s "$TMP/run1.txt" "$TMP/run2.txt"; then
    echo "cluster-smoke: cluster answers differ between runs" >&2
    diff "$TMP/run1.txt" "$TMP/run2.txt" >&2 || true
    exit 1
fi

prom=$(curl -sf "$COORD/v1/metrics?format=prom") || {
    echo "cluster-smoke: coordinator metrics fetch failed" >&2
    exit 1
}
hits=$(printf '%s\n' "$prom" | sed -n 's/^dse_cluster_remote_hits \([0-9][0-9]*\)$/\1/p' | head -n1)
if [ -z "$hits" ] || [ "$hits" -eq 0 ]; then
    echo "cluster-smoke: no cross-node store hits after identical re-check (hits=${hits:-absent})" >&2
    exit 1
fi

echo "cluster-smoke: ok (byte-identical runs, cluster store hits: $hits)"
