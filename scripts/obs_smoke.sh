#!/bin/sh
# obs_smoke.sh — end-to-end smoke test of the telemetry-v2 surface:
#
#   1. dsecheck -explain -trace: the run report must print per-shard work
#      counts and the cache hit ratio, and every JSONL trace event must
#      carry a kind from the documented event-kind table
#      (docs/OBSERVABILITY.md).
#   2. dsed: /v1/metrics?format=prom must pass scripts/prom_check.sh and
#      /v1/debug must answer a JSON introspection snapshot.
set -eu

TMP="${TMPDIR:-/tmp}/obs-smoke.$$"
mkdir -p "$TMP"
PORT="${DSED_PORT:-18433}"
BASE="http://127.0.0.1:$PORT"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

# --- 1. dsecheck -explain with a trace ---------------------------------
go build -o "$TMP/dsecheck" ./cmd/dsecheck
"$TMP/dsecheck" -left coin:biased:x:0.625 -right coin:fair:x -env coin:env:x \
    -eps 0.125 -q1 3 -workers 4 -explain -trace "$TMP/trace.jsonl" > "$TMP/explain.out"

for frag in 'run report (check)' 'hit-ratio=' 'shard 0' 'states'; do
    grep -q "$frag" "$TMP/explain.out" || {
        echo "obs-smoke: -explain output missing '$frag':" >&2
        cat "$TMP/explain.out" >&2
        exit 1
    }
done

# Every trace line must be JSON with a documented event kind.
[ -s "$TMP/trace.jsonl" ] || { echo "obs-smoke: empty trace" >&2; exit 1; }
awk '
    BEGIN {
        split("span.begin span.end sched.step sched.halt explore.state " \
              "explore.transition insight.probe implements.pair " \
              "emulation.round experiment sched.shard", ks, " ")
        for (i in ks) known[ks[i]] = 1
        bad = 0
    }
    {
        if (match($0, /"kind":"[^"]*"/) == 0) {
            print "obs-smoke: trace line " NR " has no kind: " $0; bad = 1; next
        }
        kind = substr($0, RSTART + 8, RLENGTH - 9)
        if (!(kind in known)) {
            print "obs-smoke: undocumented event kind \"" kind "\" at line " NR
            bad = 1
        }
    }
    END { if (bad) exit 1 }
' "$TMP/trace.jsonl"

# --- 2. dsed prom + debug ----------------------------------------------
go build -o "$TMP/dsed" ./cmd/dsed
"$TMP/dsed" -addr "127.0.0.1:$PORT" &
PID=$!

i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "obs-smoke: dsed did not come up on $BASE" >&2
        exit 1
    fi
    sleep 0.1
done

# Push one job through so the metric families are populated.
curl -sf -X POST "$BASE/v1/check" \
    -d '{"left":"coin:biased:x:0.625","right":"coin:fair:x","envs":["coin:env:x"],"eps":0.125,"q1":3}' \
    > "$TMP/check.json"
grep -q '"run_report"' "$TMP/check.json" || {
    echo "obs-smoke: daemon check response has no run_report" >&2
    exit 1
}

ct=$(curl -sf -o "$TMP/metrics.prom" -w '%{content_type}' "$BASE/v1/metrics?format=prom")
[ "$ct" = "text/plain; version=0.0.4; charset=utf-8" ] || {
    echo "obs-smoke: prom content type: $ct" >&2
    exit 1
}
sh scripts/prom_check.sh "$TMP/metrics.prom"
grep -q '^dse_dsed_http_requests ' "$TMP/metrics.prom" || {
    echo "obs-smoke: prom output missing dse_dsed_http_requests" >&2
    exit 1
}

curl -sf "$BASE/v1/debug" > "$TMP/debug.json"
for field in '"workers"' '"uptime_ms"' '"cache_shards"' '"sort_memo"'; do
    grep -q "$field" "$TMP/debug.json" || {
        echo "obs-smoke: /v1/debug missing $field:" >&2
        cat "$TMP/debug.json" >&2
        exit 1
    }
done

echo "obs-smoke: ok"
