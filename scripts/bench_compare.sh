#!/bin/sh
# bench_compare.sh OLD.json NEW.json
#
# Compares two `dsebench -json` outputs (one JSON object per line, fields
# id/pass/elapsed_us among others) and fails when NEW regresses relative to
# OLD: an experiment slower by more than 20%, a pass that turned into a
# fail, or an experiment that disappeared. Rows below the noise floor
# BENCH_COMPARE_MIN_US (default 1000 microseconds) in both files are
# reported but never fail the comparison — their timings are dominated by
# scheduling jitter.
set -eu

if [ $# -ne 2 ]; then
	echo "usage: $0 OLD.json NEW.json" >&2
	exit 2
fi

old=$1
new=$2
min=${BENCH_COMPARE_MIN_US:-1000}

for f in "$old" "$new"; do
	if [ ! -f "$f" ]; then
		echo "bench_compare: no such file: $f" >&2
		exit 2
	fi
done

# Pull (id, pass, elapsed_us) out of each JSON line. Field extraction is
# anchored on the exact `"key":` spellings encoding/json produces, so free
# text in titles and verdicts cannot confuse it.
extract() {
	awk '
	{
		id = ""; pass = ""; us = ""
		if (match($0, /"id":"[^"]*"/))          id   = substr($0, RSTART + 6, RLENGTH - 7)
		if (match($0, /"pass":(true|false)/))   pass = substr($0, RSTART + 7, RLENGTH - 7)
		if (match($0, /"elapsed_us":[0-9]+/))   us   = substr($0, RSTART + 13, RLENGTH - 13)
		if (id != "" && us != "") print id, pass, us
	}' "$1"
}

tmp_old=$(mktemp)
tmp_new=$(mktemp)
trap 'rm -f "$tmp_old" "$tmp_new"' EXIT

extract "$old" >"$tmp_old"
extract "$new" >"$tmp_new"

if [ ! -s "$tmp_old" ]; then
	echo "bench_compare: no benchmark rows found in $old" >&2
	exit 2
fi

awk -v min="$min" '
	NR == FNR { opass[$1] = $2; ous[$1] = $3; next }
	{ npass[$1] = $2; nus[$1] = $3 }
	END {
		bad = 0
		for (id in opass) {
			if (!(id in nus)) {
				printf "MISSING  %-4s present in old, absent in new\n", id
				bad = 1
				continue
			}
			if (opass[id] == "true" && npass[id] != "true") {
				printf "FAILED   %-4s pass -> fail\n", id
				bad = 1
			}
			o = ous[id] + 0
			n = nus[id] + 0
			if (o < min && n < min) {
				printf "NOISE    %-4s %8dus -> %8dus (below %dus floor)\n", id, o, n, min
				continue
			}
			if (o > 0 && n > o * 1.2) {
				printf "REGRESS  %-4s %8dus -> %8dus (+%.1f%%)\n", id, o, n, (n / o - 1) * 100
				bad = 1
			} else {
				printf "OK       %-4s %8dus -> %8dus\n", id, o, n
			}
		}
		exit bad
	}
' "$tmp_old" "$tmp_new"

echo "bench_compare: no regressions over 20% ($old -> $new)"
