#!/bin/sh
# durable_smoke.sh — end-to-end crash test of dsed's durability layer:
# build dsed, start it with a durable store directory on a scratch port,
# complete one async job, queue several more behind a single worker slot,
# SIGKILL the daemon mid-queue, restart it over the same directory, and
# assert zero lost jobs (every pre-crash ID reaches done) with at least one
# result served from the disk store instead of recomputed. See
# docs/DURABILITY.md.
set -eu

PORT="${DSED_DURABLE_PORT:-18462}"
BASE="http://127.0.0.1:$PORT"
TMP="${TMPDIR:-/tmp}/dse-durable-smoke.$$"
DUR="$TMP/durable"
mkdir -p "$TMP"

go build -o "$TMP/dsed" ./cmd/dsed

DSED_PID=""
cleanup() {
    [ -n "$DSED_PID" ] && kill "$DSED_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

start_dsed() {
    # One worker slot so queued jobs provably sit behind the running one
    # when the SIGKILL lands.
    "$TMP/dsed" -addr "127.0.0.1:$PORT" -worker-id durable-smoke \
        -workers 1 -store-dir "$DUR" >>"$TMP/dsed.log" 2>&1 &
    DSED_PID=$!
}

wait_up() {
    i=0
    until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "durable-smoke: dsed did not come up on $BASE" >&2
            cat "$TMP/dsed.log" >&2 || true
            exit 1
        fi
        sleep 0.1
    done
}

# submit <body> — queue an async simulate job, print its ID.
submit() {
    out=$(curl -sf -X POST "$BASE/v1/simulate?async=1" -d "$1")
    id=$(printf '%s' "$out" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
    if [ -z "$id" ]; then
        echo "durable-smoke: submit returned no job ID: $out" >&2
        exit 1
    fi
    printf '%s' "$id"
}

# job_status <id> — print the job's status field ("" if unknown).
job_status() {
    curl -s "$BASE/v1/jobs/$1" | sed -n 's/.*"status": *"\([^"]*\)".*/\1/p'
}

# await_done <id> — poll until the job is done; fail on failed/lost.
await_done() {
    i=0
    while :; do
        st=$(job_status "$1")
        case "$st" in
        done) return 0 ;;
        failed)
            echo "durable-smoke: job $1 failed" >&2
            curl -s "$BASE/v1/jobs/$1" >&2 || true
            exit 1
            ;;
        esac
        i=$((i + 1))
        if [ "$i" -gt 300 ]; then
            echo "durable-smoke: job $1 stuck in '${st:-lost}'" >&2
            exit 1
        fi
        sleep 0.1
    done
}

start_dsed
wait_up

# Phase 1: one job runs to completion (its result lands in the durable
# store), then a burst queues up and the daemon is SIGKILLed mid-queue.
J0=$(submit '{"systems":["coin:fair:x","coin:env:x"],"bound":4,"seed":1}')
await_done "$J0"

IDS="$J0"
for b in 5 6 7 8 9; do
    id=$(submit "{\"systems\":[\"coin:fair:x\",\"coin:env:x\"],\"bound\":$b,\"seed\":$b}")
    IDS="$IDS $id"
done

kill -9 "$DSED_PID"
wait "$DSED_PID" 2>/dev/null || true
DSED_PID=""

# Phase 2: restart over the same directory. The journal replay must
# restore or re-enqueue every accepted job — zero lost.
start_dsed
wait_up

for id in $IDS; do
    await_done "$id"
done

prom=$(curl -sf "$BASE/v1/metrics?format=prom") || {
    echo "durable-smoke: metrics fetch failed" >&2
    exit 1
}
hits=$(printf '%s\n' "$prom" | sed -n 's/^dse_cluster_store_disk_hits \([0-9][0-9]*\)$/\1/p' | head -n1)
if [ -z "$hits" ] || [ "$hits" -eq 0 ]; then
    echo "durable-smoke: no disk-served results after restart (disk_hits=${hits:-absent})" >&2
    exit 1
fi
replayed=$(printf '%s\n' "$prom" | sed -n 's/^dse_dsed_journal_replayed \([0-9][0-9]*\)$/\1/p' | head -n1)
if [ -z "$replayed" ] || [ "$replayed" -eq 0 ]; then
    echo "durable-smoke: journal replay processed no records (replayed=${replayed:-absent})" >&2
    exit 1
fi

echo "durable-smoke: ok (zero lost jobs, disk hits: $hits, journal records replayed: $replayed)"
