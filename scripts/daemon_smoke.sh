#!/bin/sh
# daemon_smoke.sh — end-to-end smoke test of the dsed daemon: build it,
# start it on a scratch port, run an implementation check twice over HTTP
# (the second must be served from the memoization cache), and fetch the
# metrics snapshot. Fails if any request does not return 200 or if the
# second check produced no cache hits.
set -eu

PORT="${DSED_PORT:-18432}"
BASE="http://127.0.0.1:$PORT"
BIN="${TMPDIR:-/tmp}/dsed-smoke.$$"

go build -o "$BIN" ./cmd/dsed

"$BIN" -addr "127.0.0.1:$PORT" &
PID=$!
trap 'kill "$PID" 2>/dev/null; rm -f "$BIN"' EXIT

# Wait for the daemon to come up.
i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "daemon-smoke: dsed did not come up on $BASE" >&2
        exit 1
    fi
    sleep 0.1
done

BODY='{"left":"coin:biased:x:0.625","right":"coin:fair:x","envs":["coin:env:x"],"eps":0.125,"q1":3}'

code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE/v1/check" -d "$BODY")
[ "$code" = "200" ] || { echo "daemon-smoke: first check returned $code" >&2; exit 1; }

code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE/v1/check" -d "$BODY")
[ "$code" = "200" ] || { echo "daemon-smoke: second check returned $code" >&2; exit 1; }

metrics=$(curl -sf "$BASE/v1/metrics") || { echo "daemon-smoke: metrics fetch failed" >&2; exit 1; }
hits=$(printf '%s' "$metrics" | sed -n 's/.*"engine\.cache\.hits": *\([0-9][0-9]*\).*/\1/p' | head -n1)
if [ -z "$hits" ] || [ "$hits" -eq 0 ]; then
    echo "daemon-smoke: no cache hits after identical re-check (hits=${hits:-absent})" >&2
    exit 1
fi

echo "daemon-smoke: ok (cache hits: $hits)"
