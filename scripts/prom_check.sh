#!/bin/sh
# prom_check.sh — minimal Prometheus text exposition format (0.0.4)
# checker. Reads an exposition body on stdin (or from the file given as
# $1) and fails unless every line is a well-formed comment or sample, at
# least one sample is present, and every sample's family was declared by
# a preceding # TYPE line. This is what gates dsed's
# /v1/metrics?format=prom output in make obs-smoke.
set -eu

if [ "$#" -ge 1 ]; then
    exec < "$1"
fi

awk '
    BEGIN { samples = 0; bad = 0 }
    /^$/ { next }
    /^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|summary|histogram|untyped)$/ {
        typed[$3] = 1; next
    }
    /^# HELP / { next }
    /^#/ { print "prom_check: bad comment line " NR ": " $0; bad = 1; next }
    # Sample: name{labels} value  |  name value
    /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$/ {
        name = $1
        sub(/\{.*/, "", name)
        # _sum/_count/quantile samples belong to their summary family.
        base = name
        sub(/_(sum|count)$/, "", base)
        if (!(name in typed) && !(base in typed)) {
            print "prom_check: sample without # TYPE at line " NR ": " $0
            bad = 1
        }
        samples++
        next
    }
    { print "prom_check: malformed line " NR ": " $0; bad = 1 }
    END {
        if (samples == 0) { print "prom_check: no samples"; bad = 1 }
        if (bad) exit 1
        print "prom_check: ok (" samples " samples)"
    }
'
