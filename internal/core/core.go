package core
