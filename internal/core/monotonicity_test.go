package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/insight"
	"repro/internal/protocols/ledger"
	"repro/internal/psioa"
	"repro/internal/sched"
)

// ledgerSchema is a creation-oblivious schema for ledger hosts: off-line
// action sequences driving the subchain lifecycle.
func ledgerSchema(seqs ...[]psioa.Action) sched.Schema {
	return &sched.FixedSchema{
		ID: "ledger-sequences",
		Default: func(a psioa.PSIOA, bound int) []sched.Scheduler {
			out := make([]sched.Scheduler, len(seqs))
			for i, s := range seqs {
				out[i] = &sched.Sequence{A: a, Acts: s, LocalOnly: true}
			}
			return out
		},
	}
}

func TestCreationMonotonicityLedger(t *testing.T) {
	// §4.4: X_direct creates Direct subchains, X_parity creates Parity
	// subchains. The subchains are 0-balanced (trace-equivalent) and the
	// off-line host schedulers are creation-oblivious, so the hosts are
	// 0-balanced too.
	childA := ledger.Subchain("m", 0, ledger.Direct)
	childB := ledger.Subchain("m", 0, ledger.Parity)
	hostA, _ := ledger.Host("m", 1, ledger.Direct)
	hostB, _ := ledger.Host("m", 1, ledger.Parity)

	childOpt := core.Options{
		Envs: []psioa.PSIOA{psioa.Null("nullenv")},
		Schema: ledgerSchema(
			[]psioa.Action{"sample_0_m", "sample_0_m2", ledger.Sealed("m", 0, 0)},
			[]psioa.Action{"sample_0_m", "sample_0_m2", ledger.Sealed("m", 0, 1)},
			[]psioa.Action{"sample_0_m", "sample_0_m2"},
		),
		Insight: insight.Trace(),
		Eps:     0,
		Q1:      4, Q2: 4,
	}
	hostOpt := core.Options{
		Envs: []psioa.PSIOA{psioa.Null("nullenv")},
		Schema: ledgerSchema(
			[]psioa.Action{ledger.Open("m"), "sample_0_m", "sample_0_m2", ledger.Sealed("m", 0, 0)},
			[]psioa.Action{ledger.Open("m"), "sample_0_m", "sample_0_m2", ledger.Sealed("m", 0, 1)},
			[]psioa.Action{ledger.Open("m"), "sample_0_m", "sample_0_m2"},
		),
		Insight: insight.Trace(),
		Eps:     0,
		Q1:      5, Q2: 5,
	}
	rep, err := core.CreationMonotonicity(childA, childB, hostA, hostB, []string{"host_m"}, childOpt, hostOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds() {
		t.Errorf("creation monotonicity failed:\n%s", rep)
	}
	if rep.String() == "" {
		t.Error("empty report string")
	}
}

func TestCheckCreationObliviousSchemaRejectsPeeker(t *testing.T) {
	// The parity subchain's half0/half1 states expose identical signatures
	// ({sample2}), so conditioning on which half was drawn is hidden-state
	// peeking and must be rejected.
	hostB, _ := ledger.Host("m", 1, ledger.Parity)
	peeky := &sched.FixedSchema{
		ID: "peeky",
		Default: func(a psioa.PSIOA, bound int) []sched.Scheduler {
			return []sched.Scheduler{&sched.FuncSched{ID: "peek", Fn: func(f *psioa.Frag) *sched.Choice {
				cfg := hostB.Config(f.LState())
				if st, ok := cfg.StateOf(ledger.SubchainID("m", 0)); ok {
					switch st {
					case "fresh":
						return dirac("sample_0_m")
					case "half0":
						return dirac("sample_0_m2") // continues only on half0: peeks!
					}
					return sched.Halt()
				}
				if f.Len() == 0 {
					return dirac(ledger.Open("m"))
				}
				return sched.Halt()
			}}}
		},
	}
	err := core.CheckCreationObliviousSchema(hostB, []string{"host_m"}, peeky, 6, 12)
	if err == nil || !strings.Contains(err.Error(), "creation-oblivious") {
		t.Errorf("peeking schema accepted: %v", err)
	}
}

func dirac(a psioa.Action) *sched.Choice {
	c := sched.Halt()
	c.Add(a, 1)
	return c
}

func TestNullEnvironment(t *testing.T) {
	n := psioa.Null("nullenv")
	if !n.Sig(n.Start()).IsEmpty() {
		t.Error("null automaton has actions")
	}
	if err := psioa.Validate(n, 10); err != nil {
		t.Fatal(err)
	}
	// Null is a unit: composing with it preserves perception.
	host, _ := ledger.Host("m", 1, ledger.Direct)
	w := psioa.MustCompose(n, host)
	s1 := &sched.Greedy{A: w, Bound: 3, LocalOnly: true}
	s2 := &sched.Greedy{A: host, Bound: 3, LocalOnly: true}
	d1, err := insight.FDist(w, s1, insight.Trace(), 10)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := insight.FDist(host, s2, insight.Trace(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if insight.Distance(d1, d2) > 1e-9 {
		t.Error("null environment changed the perception")
	}
}
