package core

import "errors"

// Sentinel errors for relation-check outcomes, wrapped with %w so callers
// can distinguish "the relation measurably fails" from infrastructure
// errors (bad automata, scheduler faults) with errors.Is.
var (
	// ErrDoesNotHold reports a family relation or emulation whose
	// per-index checks found an unmatched scheduler.
	ErrDoesNotHold = errors.New("relation does not hold")
	// ErrExceedsNegligible reports a measured distance above the claimed
	// negligible bound at some index.
	ErrExceedsNegligible = errors.New("distance exceeds negligible bound")
)
