package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/insight"
	"repro/internal/protocols/channel"
	"repro/internal/psioa"
	"repro/internal/sched"
	"repro/internal/structured"
)

// chanSchema is the scheduler schema for channel-protocol emulation checks:
// run-to-completion strategies with different adversary timing. The prefix
// templates rank actions; unmatched actions are never scheduled.
func chanSchema() sched.Schema {
	return &sched.PrefixPrioritySchema{Templates: [][]string{
		// Deliver as soon as possible, adversary observes along the way.
		{"send", "encrypt", "tap", "notify", "fabricate", "g_tap", "guess", "deliver"},
		// Adversary finishes its announcement before delivery.
		{"send", "encrypt", "tap", "notify", "fabricate", "g_tap", "guess", "deliver", "g_block", "block"},
		// Adversary blocks before delivery can happen (the g_ prefixes cover
		// the simulator-internal forwarding chain on the ideal side).
		{"send", "encrypt", "tap", "notify", "fabricate", "g_tap", "g_block", "block", "guess", "deliver"},
		// No adversary activity at all: deliver directly.
		{"send", "encrypt", "tap", "notify", "deliver"},
	}}
}

func chanOpts(eps float64, ids ...string) core.Options {
	envs := make([]psioa.PSIOA, 0, 2*len(ids))
	if len(ids) == 1 {
		for m := 0; m < 2; m++ {
			envs = append(envs, channel.Env(ids[0], m))
		}
	} else {
		// Multi-instance worlds: one environment per message combination.
		for m1 := 0; m1 < 2; m1++ {
			for m2 := 0; m2 < 2; m2++ {
				envs = append(envs, psioa.MustCompose(channel.Env(ids[0], m1), channel.Env(ids[1], m2)))
			}
		}
	}
	return core.Options{
		Envs:    envs,
		Schema:  chanSchema(),
		Insight: insight.Trace(),
		Eps:     eps,
		Q1:      8 * len(ids),
		Q2:      8 * len(ids),
	}
}

func TestSecureEmulationOTP(t *testing.T) {
	// E7 headline: the perfect OTP channel securely emulates the ideal
	// secure channel with ε = 0, for both the eavesdropper and the blocker.
	real := channel.Real("x")
	ideal := channel.Ideal("x")
	cases := []core.AdvSim{
		{Adv: channel.Eavesdropper("x"), Sim: channel.SimFor("x")},
		{Adv: channel.Blocker("x"), Sim: channel.BlockerSim("x")},
	}
	rep, err := core.SecureEmulates(real, ideal, cases, chanOpts(0, "x"), 50000)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Errorf("OTP secure emulation failed:\n%s", rep)
	}
}

func TestSecureEmulationLeakyFails(t *testing.T) {
	// A substantially leaky channel does NOT securely emulate the ideal
	// channel at ε = 0: the eavesdropper's announcement correlates with the
	// message.
	real := channel.LeakyReal("x", 0.5)
	ideal := channel.Ideal("x")
	cases := []core.AdvSim{{Adv: channel.Eavesdropper("x"), Sim: channel.SimFor("x")}}
	rep, err := core.SecureEmulates(real, ideal, cases, chanOpts(0, "x"), 50000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Holds {
		t.Error("leaky channel accepted at ε=0")
	}
	// At ε = leak/2 = 0.25 the simulator is good enough.
	rep, err = core.SecureEmulates(real, ideal, cases, chanOpts(0.25, "x"), 50000)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Errorf("leaky channel rejected at ε=0.25:\n%s", rep)
	}
}

func TestSecureEmulationRejectsBadAdversary(t *testing.T) {
	real := channel.Real("x")
	ideal := channel.Ideal("x")
	// An "adversary" that listens to the environment interface is rejected
	// up front.
	nosy := psioa.NewBuilder("nosy", "n0").
		AddState("n0", psioa.NewSignature(
			[]psioa.Action{channel.Deliver("x", 0), channel.Tap("x", 0), channel.Tap("x", 1)},
			[]psioa.Action{channel.Block("x")}, nil)).
		AddDet("n0", channel.Deliver("x", 0), "n0").
		AddDet("n0", channel.Tap("x", 0), "n0").
		AddDet("n0", channel.Tap("x", 1), "n0").
		AddDet("n0", channel.Block("x"), "n0").
		MustBuild()
	_, err := core.SecureEmulates(real, ideal, []core.AdvSim{{Adv: nosy, Sim: channel.SimFor("x")}}, chanOpts(0, "x"), 50000)
	if err == nil {
		t.Error("environment-touching adversary accepted")
	}
}

func TestHideAAct(t *testing.T) {
	real := channel.Real("x")
	h, err := core.HideAAct(real, channel.Eavesdropper("x"), 50000)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := psioa.Explore(h, 50000)
	if err != nil {
		t.Fatal(err)
	}
	// Hiding moves outputs to internal (Def 2.6); adversary actions must
	// never appear as outputs of the hidden composition.
	for _, q := range ex.States {
		sig := h.Sig(q)
		for _, a := range []psioa.Action{channel.Tap("x", 0), channel.Tap("x", 1), channel.Block("x")} {
			if sig.Out.Has(a) {
				t.Fatalf("adversary action %q still an output at %q", a, q)
			}
		}
	}
}

func TestComposedSimulatorConstruction(t *testing.T) {
	// The syntactic shape of Theorem 4.30's simulator: renamed adversary
	// composed with the dummy simulators, fresh names hidden.
	g := channel.G("a")
	for k, v := range channel.G("b") {
		g[k] = v
	}
	adv := psioa.MustCompose(channel.Eavesdropper("a"), channel.Eavesdropper("b"))
	sim, err := core.ComposedSimulator(g, []psioa.PSIOA{channel.DummySim("a"), channel.DummySim("b")}, adv)
	if err != nil {
		t.Fatal(err)
	}
	if err := psioa.Validate(sim, 100000); err != nil {
		t.Fatalf("composed simulator invalid: %v", err)
	}
	// The fresh g-names are hidden: not external anywhere reachable.
	ex, err := psioa.Explore(sim, 100000)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range ex.States {
		sig := sim.Sig(q)
		for _, fresh := range g {
			if sig.Out.Has(fresh) {
				t.Fatalf("fresh action %q visible at %q", fresh, q)
			}
		}
	}
}

func TestDummyOf(t *testing.T) {
	real := channel.Real("x")
	d, err := core.DummyOf(real, channel.G("x"), 50000)
	if err != nil {
		t.Fatal(err)
	}
	if err := psioa.Validate(d, 1000); err != nil {
		t.Fatal(err)
	}
	if !d.Interface().AI.Equal(psioa.NewActionSet(channel.Block("x"))) {
		t.Errorf("dummy AI = %v", d.Interface().AI)
	}
}

func TestPerComponentDummySimulation(t *testing.T) {
	// The premise of Theorem 4.30's proof: for each component,
	// hide(Real‖Dummy, AAct_real) ≤ hide(Ideal‖DSim, AAct_ideal) with ε=0.
	real := channel.Real("x")
	ideal := channel.Ideal("x")
	dum, err := core.DummyOf(real, channel.G("x"), 50000)
	if err != nil {
		t.Fatal(err)
	}
	left, err := core.HideAAct(real, dum, 50000)
	if err != nil {
		t.Fatal(err)
	}
	right, err := core.HideAAct(ideal, channel.DummySim("x"), 50000)
	if err != nil {
		t.Fatal(err)
	}
	// Schedulers drive the g-named interface: the environment-facing trace
	// must be indistinguishable. The g_tap/g_block actions are outputs of
	// the hidden systems (dummy side) — external on both sides.
	schema := &sched.PrefixPrioritySchema{Templates: [][]string{
		{"send", "encrypt", "tap", "notify", "fabricate", "g_tap", "deliver"},
		{"send", "encrypt", "tap", "notify", "fabricate", "g_tap", "g_block", "block", "deliver"},
		{"send", "deliver"},
	}}
	rep, err := core.Implements(left, right, core.Options{
		Envs:    []psioa.PSIOA{channel.Env("x", 0), channel.Env("x", 1)},
		Schema:  schema,
		Insight: insight.Trace(),
		Eps:     0,
		Q1:      10, Q2: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Errorf("per-component dummy simulation failed: %s", rep)
		for _, f := range rep.Failures() {
			t.Logf("  failure: %+v", f)
		}
	}
}

func TestSecureEmulationComposition(t *testing.T) {
	// E8: Theorem 4.30 end-to-end on two channel instances. The composed
	// real system with a composed adversary is simulated by the simulator
	// *constructed* from the per-component dummy simulators.
	realHat := structured.MustCompose(channel.Real("a"), channel.Real("b"))
	idealHat := structured.MustCompose(channel.Ideal("a"), channel.Ideal("b"))
	g := channel.G("a")
	for k, v := range channel.G("b") {
		g[k] = v
	}
	adv := psioa.MustCompose(channel.Eavesdropper("a"), channel.Eavesdropper("b"))
	sim, err := core.ComposedSimulator(g, []psioa.PSIOA{channel.DummySim("a"), channel.DummySim("b")}, adv)
	if err != nil {
		t.Fatal(err)
	}
	// The exploration limit truncates the (large) ideal‖simulator product;
	// the adversary predicate and AAct computation are exact on the real
	// side and prefix-verified on the ideal side.
	opts := chanOpts(0, "a", "b")
	rep, err := core.SecureEmulates(realHat, idealHat, []core.AdvSim{{Adv: adv, Sim: sim}}, opts, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Errorf("composed secure emulation failed:\n%s", rep)
		for _, r := range rep.PerAdv {
			for _, f := range r.Failures() {
				t.Logf("  failure: %+v", f)
			}
		}
	}
}
