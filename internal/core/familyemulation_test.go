package core_test

import (
	"math"
	"testing"

	"repro/internal/bounded"
	"repro/internal/core"
	"repro/internal/insight"
	"repro/internal/protocols/channel"
	"repro/internal/psioa"
	"repro/internal/sched"
	"repro/internal/structured"
)

// leakyFamily is the channel family whose pad breaks with probability 2^-k:
// the emulation error against the ideal channel is exactly 2^-(k+1).
func leakyFamily() core.SFamily {
	return func(k int) structured.SPSIOA {
		return channel.LeakyReal("x", bounded.Negl(2)(k))
	}
}

func idealFamily() core.SFamily {
	return func(k int) structured.SPSIOA { return channel.Ideal("x") }
}

func famOpts(k int) core.Options {
	return core.Options{
		Envs: []psioa.PSIOA{channel.Env("x", 0), channel.Env("x", 1)},
		Schema: &sched.PrefixPrioritySchema{Templates: [][]string{
			{"send", "encrypt", "tap", "notify", "fabricate", "g_tap", "guess", "deliver"},
			{"send", "encrypt", "tap", "notify", "deliver"},
		}},
		Insight: insight.Trace(),
		Eps:     bounded.Negl(2)(k) / 2,
		Q1:      8, Q2: 8,
	}
}

func eavesCases() []core.AdvSimFamily {
	return []core.AdvSimFamily{{
		Adv: func(k int) psioa.PSIOA { return channel.Eavesdropper("x") },
		Sim: func(k int) psioa.PSIOA { return channel.SimFor("x") },
	}}
}

func TestSecureEmulatesFamilyCalibrated(t *testing.T) {
	rep, err := core.SecureEmulatesFamily(leakyFamily(), idealFamily(), eavesCases(), famOpts, 1, 6, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Fatalf("family emulation failed: %s", rep)
	}
	// Measured distances are exactly 2^-(k+1).
	f := rep.MaxDistFn()
	for k := 1; k <= 6; k++ {
		want := math.Pow(2, -float64(k+1))
		if math.Abs(f(k)-want) > 1e-9 {
			t.Errorf("k=%d: distance = %v, want %v", k, f(k), want)
		}
	}
	if f(99) != 0 {
		t.Error("out-of-range index should report 0")
	}
	// ≤_{neg,pt}: dominated by 2^-k but not by 4^-k.
	if err := core.NegPtEmulation(rep, bounded.Negl(2), 1, 6); err != nil {
		t.Errorf("NegPt(2^-k) failed: %v", err)
	}
	if err := core.NegPtEmulation(rep, bounded.Negl(4), 1, 6); err == nil {
		t.Error("NegPt(4^-k) should fail")
	}
}

func TestSecureEmulatesFamilyFailurePropagates(t *testing.T) {
	// Too-tight tolerance at every index: the family check must fail and
	// NegPtEmulation must report it.
	tight := func(k int) core.Options {
		o := famOpts(k)
		o.Eps = 0
		return o
	}
	rep, err := core.SecureEmulatesFamily(leakyFamily(), idealFamily(), eavesCases(), tight, 1, 2, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Holds {
		t.Error("tight family emulation accepted")
	}
	if err := core.NegPtEmulation(rep, bounded.Negl(2), 1, 2); err == nil {
		t.Error("NegPtEmulation accepted a failing family")
	}
}

func TestSecureEmulatesFamilyWithWitness(t *testing.T) {
	templates := [][]string{{"send", "encrypt", "tap", "notify", "fabricate", "g_tap", "guess", "deliver"}}
	cases := []core.AdvSimFamily{{
		Adv: func(k int) psioa.PSIOA { return channel.Eavesdropper("x") },
		Sim: func(k int) psioa.PSIOA { return channel.SimFor("x") },
		Witness: func(k int) core.Witness {
			return func(env psioa.PSIOA, wa *psioa.Product, s1 sched.Scheduler, wb *psioa.Product) sched.Scheduler {
				ss, err := (&sched.PrefixPrioritySchema{Templates: templates}).Enumerate(wb, 8)
				if err != nil {
					panic(err)
				}
				return ss[0]
			}
		},
	}}
	opt := func(k int) core.Options {
		o := famOpts(k)
		o.Schema = &sched.PrefixPrioritySchema{Templates: templates}
		return o
	}
	rep, err := core.SecureEmulatesFamily(leakyFamily(), idealFamily(), cases, opt, 1, 3, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Errorf("witnessed family emulation failed: %s", rep)
	}
}
