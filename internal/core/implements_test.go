package core_test

import (
	"math"
	"testing"

	"repro/internal/bounded"
	"repro/internal/core"
	"repro/internal/insight"
	"repro/internal/protocols/coin"
	"repro/internal/psioa"
	"repro/internal/sched"
)

// coinOpts returns check options for coin-protocol implementation checks:
// the canonical coin environment and the exhaustive oblivious schema.
func coinOpts(eps float64) core.Options {
	return core.Options{
		Envs:    []psioa.PSIOA{coin.Env("x")},
		Schema:  &sched.ObliviousSchema{},
		Insight: insight.Trace(),
		Eps:     eps,
		Q1:      3,
		Q2:      3,
	}
}

func TestImplementsReflexive(t *testing.T) {
	a := coin.Fair("x")
	b := coin.Fair("x")
	rep, err := core.Implements(a, b, coinOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Errorf("A ≤ A failed: %s", rep)
	}
	if rep.MaxDist > 1e-9 {
		t.Errorf("self-implementation distance = %v", rep.MaxDist)
	}
}

func TestImplementsBiasedVsFair(t *testing.T) {
	delta := 0.125
	a := coin.Flipper("x", 0.5+delta)
	b := coin.Fair("x")
	// Holds at ε = δ.
	rep, err := core.Implements(a, b, coinOpts(delta))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Errorf("biased ≤_δ fair failed: %s", rep)
	}
	if math.Abs(rep.MaxDist-delta) > 1e-9 {
		t.Errorf("MaxDist = %v, want exactly δ = %v", rep.MaxDist, delta)
	}
	// Fails at ε = δ/2.
	rep, err = core.Implements(a, b, coinOpts(delta/2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Holds {
		t.Error("biased ≤_{δ/2} fair should fail")
	}
	if len(rep.Failures()) == 0 {
		t.Error("no failures reported")
	}
}

func TestImplementsWitnessIdentity(t *testing.T) {
	delta := 0.25
	a := coin.Flipper("x", 0.5+delta)
	b := coin.Fair("x")
	rep, err := core.ImplementsWitness(a, b, core.IdentityWitness(), coinOpts(delta))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Errorf("identity witness failed: %s", rep)
	}
	if math.Abs(rep.MaxDist-delta) > 1e-9 {
		t.Errorf("MaxDist = %v, want %v", rep.MaxDist, delta)
	}
}

func TestTransitivityTheorem(t *testing.T) {
	// Theorem 4.16: ε₁₃ = ε₁₂ + ε₂₃, realised exactly by the coin chain
	// 0.5+2δ → 0.5+δ → 0.5.
	delta := 0.0625
	a1 := coin.Flipper("x", 0.5+2*delta)
	a2 := coin.Flipper("x", 0.5+delta)
	a3 := coin.Fair("x")

	r12, err := core.ImplementsWitness(a1, a2, core.IdentityWitness(), coinOpts(delta))
	if err != nil {
		t.Fatal(err)
	}
	r23, err := core.ImplementsWitness(a2, a3, core.IdentityWitness(), coinOpts(delta))
	if err != nil {
		t.Fatal(err)
	}
	if !r12.Holds || !r23.Holds {
		t.Fatalf("premises failed: %s / %s", r12, r23)
	}
	w13 := core.ComposeWitnesses(a2, core.IdentityWitness(), core.IdentityWitness())
	r13, err := core.ImplementsWitness(a1, a3, w13, coinOpts(2*delta))
	if err != nil {
		t.Fatal(err)
	}
	if !r13.Holds {
		t.Errorf("transitivity conclusion failed: %s", r13)
	}
	if math.Abs(r13.MaxDist-2*delta) > 1e-9 {
		t.Errorf("ε₁₃ = %v, want exactly ε₁₂+ε₂₃ = %v", r13.MaxDist, 2*delta)
	}
	// Triangle inequality is tight here: ε < 2δ fails.
	r13tight, err := core.ImplementsWitness(a1, a3, w13, coinOpts(1.9*delta))
	if err != nil {
		t.Fatal(err)
	}
	if r13tight.Holds {
		t.Error("ε₁₃ < ε₁₂+ε₂₃ should fail on this chain")
	}
}

func TestComposabilityLemma(t *testing.T) {
	// Lemma 4.13: A₁ ≤ A₂ (checked against the extended environment E‖A₃)
	// implies A₃‖A₁ ≤ A₃‖A₂ (checked against E), with the same ε. Because
	// composition flattens, the two checks quantify over literally the same
	// automata, which is the content of the lemma's proof.
	delta := 0.125
	a1 := coin.Flipper("x", 0.5+delta)
	a2 := coin.Fair("x")
	a3 := coin.Fair("y") // independent context
	env := coin.Env("x")

	// Premise: A₁ ≤ A₂ w.r.t. the extended environment E‖A₃.
	extEnv := psioa.MustCompose(env, a3)
	premise, err := core.Implements(a1, a2, core.Options{
		Envs:    []psioa.PSIOA{extEnv},
		Schema:  &sched.PrefixPrioritySchema{Templates: [][]string{{"flip_x", "result"}, {"result", "flip_x"}}},
		Insight: insight.Trace(),
		Eps:     delta,
		Q1:      4, Q2: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !premise.Holds {
		t.Fatalf("premise failed: %s", premise)
	}

	// Conclusion: A₃‖A₁ ≤ A₃‖A₂ w.r.t. E.
	left, right, err := core.ComposeContext(a3, a1, a2)
	if err != nil {
		t.Fatal(err)
	}
	conclusion, err := core.Implements(left, right, core.Options{
		Envs:    []psioa.PSIOA{env},
		Schema:  &sched.PrefixPrioritySchema{Templates: [][]string{{"flip_x", "result"}, {"result", "flip_x"}}},
		Insight: insight.Trace(),
		Eps:     delta,
		Q1:      4, Q2: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !conclusion.Holds {
		t.Errorf("Lemma 4.13 conclusion failed: %s", conclusion)
	}
	if math.Abs(conclusion.MaxDist-premise.MaxDist) > 1e-9 {
		t.Errorf("context changed the distance: premise %v vs conclusion %v", premise.MaxDist, conclusion.MaxDist)
	}
}

func TestContextWitness(t *testing.T) {
	delta := 0.125
	a1 := coin.Flipper("x", 0.5+delta)
	a2 := coin.Fair("x")
	a3 := coin.Fair("y")
	left, right, err := core.ComposeContext(a3, a1, a2)
	if err != nil {
		t.Fatal(err)
	}
	w := core.ContextWitness(a3, core.IdentityWitness())
	rep, err := core.ImplementsWitness(left, right, w, core.Options{
		Envs:    []psioa.PSIOA{coin.Env("x")},
		Schema:  &sched.PrefixPrioritySchema{Templates: [][]string{{"flip_x", "result"}}},
		Insight: insight.Trace(),
		Eps:     delta,
		Q1:      4, Q2: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Errorf("context witness failed: %s", rep)
	}
}

func TestFamilyImplementsAndNegPt(t *testing.T) {
	// Lemma 4.14 / Theorem 4.15 material: the leaky family implements the
	// fair family with ε(k) = 2^−k.
	fam := coin.Family("x")
	fair := coin.FairFamily("x")
	fopt := core.FamilyOptions{
		Kmin: 1, Kmax: 6,
		OptionsFor: func(k int) core.Options {
			o := coinOpts(bounded.Negl(2)(k))
			return o
		},
	}
	rep, err := core.FamilyImplements(fam, fair, fopt)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Fatalf("family implementation failed: %s", rep)
	}
	// The measured distances are ≤ 2^−k...
	if err := core.NegPt(rep, bounded.Negl(2), 1, 6); err != nil {
		t.Errorf("NegPt(2^-k) failed: %v", err)
	}
	// ...but not ≤ 4^−k.
	if err := core.NegPt(rep, bounded.Negl(4), 1, 6); err == nil {
		t.Error("NegPt(4^-k) should fail")
	}
	// MaxDistFn exposes the measured curve.
	f := rep.MaxDistFn()
	if math.Abs(f(3)-0.125) > 1e-9 {
		t.Errorf("MaxDistFn(3) = %v, want 0.125", f(3))
	}
	if f(99) != 0 {
		t.Error("MaxDistFn outside range should be 0")
	}
}

func TestFamilyComposability(t *testing.T) {
	// Theorem 4.15: composing the family with a polynomial context
	// preserves ≤_{neg,pt}.
	ctx := bounded.Family(func(k int) psioa.PSIOA { return coin.Fair("y") })
	fam := core.ContextFamily(ctx, coin.Family("x"))
	fair := core.ContextFamily(ctx, coin.FairFamily("x"))
	fopt := core.FamilyOptions{
		Kmin: 1, Kmax: 5,
		OptionsFor: func(k int) core.Options {
			return core.Options{
				Envs:    []psioa.PSIOA{coin.Env("x")},
				Schema:  &sched.PrefixPrioritySchema{Templates: [][]string{{"flip_x", "result"}}},
				Insight: insight.Trace(),
				Eps:     bounded.Negl(2)(k),
				Q1:      4, Q2: 4,
			}
		},
	}
	rep, err := core.FamilyImplements(fam, fair, fopt)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Fatalf("family composability failed: %s", rep)
	}
	if err := core.NegPt(rep, bounded.Negl(2), 1, 5); err != nil {
		t.Errorf("NegPt after composition failed: %v", err)
	}
}

func TestFamilyImplementsWitness(t *testing.T) {
	fam := coin.Family("x")
	fair := coin.FairFamily("x")
	rep, err := core.FamilyImplementsWitness(fam, fair,
		func(k int) core.Witness { return core.IdentityWitness() },
		core.FamilyOptions{
			Kmin: 1, Kmax: 4,
			OptionsFor: func(k int) core.Options { return coinOpts(bounded.Negl(2)(k)) },
		})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Errorf("witness family check failed: %s", rep)
	}
}

func TestReportAccessors(t *testing.T) {
	rep := &core.Report{Holds: false, Pairs: []core.PairResult{
		{Env: "e", Sched: "s1", OK: true, Dist: 0.1},
		{Env: "e", Sched: "s2", OK: false, Dist: 0.9},
	}}
	if got := rep.Failures(); len(got) != 1 || got[0].Sched != "s2" {
		t.Errorf("Failures = %v", got)
	}
	if rep.String() == "" {
		t.Error("empty String")
	}
}
