package core

import (
	"fmt"
	"sort"

	"repro/internal/adversary"
	"repro/internal/bounded"
	"repro/internal/obs"
	"repro/internal/psioa"
	"repro/internal/structured"
)

// AdvSim is one adversary/simulator pair for a secure-emulation check: the
// executable rendering of "for every adversary Adv there exists a simulator
// Sim". Sim plays the role the paper's existential quantifier promises; the
// check verifies it actually works.
type AdvSim struct {
	// Adv is an adversary for the real system.
	Adv psioa.PSIOA
	// Sim is the claimed simulator: an adversary for the ideal system.
	Sim psioa.PSIOA
	// Witness optionally maps real-side schedulers to ideal-side schedulers
	// constructively; when nil the check searches the schema exhaustively.
	Witness Witness
}

// EmulationReport aggregates the per-adversary implementation reports of a
// secure-emulation check.
type EmulationReport struct {
	// Holds reports whether every adversary was simulated within ε.
	Holds bool
	// PerAdv maps adversary identifiers to their implementation reports.
	PerAdv map[string]*Report
}

// String summarises the report, listing adversaries in sorted order so the
// rendering is byte-identical run to run (PerAdv is a map).
func (r *EmulationReport) String() string {
	s := fmt.Sprintf("secure-emulation holds=%v adversaries=%d", r.Holds, len(r.PerAdv))
	ids := make([]string, 0, len(r.PerAdv))
	for id := range r.PerAdv {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		s += fmt.Sprintf("\n  %s: %s", id, r.PerAdv[id])
	}
	return s
}

// HideAAct returns hide(S‖Other, AAct_S): the composition of a structured
// automaton with a companion (adversary or simulator), with the structured
// automaton's universal adversary actions hidden — the construction
// Def 4.26 compares on both sides.
func HideAAct(s structured.SPSIOA, other psioa.PSIOA, limit int) (psioa.PSIOA, error) {
	aact, err := structured.AActUniverse(s, limit)
	if err != nil {
		return nil, err
	}
	comp, err := psioa.Compose(s, other)
	if err != nil {
		return nil, err
	}
	return psioa.HideSet(comp, aact), nil
}

// SecureEmulates checks Def 4.26 on the given adversary/simulator pairs:
// for each pair, Adv must be an adversary for real and Sim an adversary for
// ideal, and hide(real‖Adv, AAct_real) ≤^{Sch,f}_{q1,q2,ε}
// hide(ideal‖Sim, AAct_ideal) must hold. limit bounds the reachability
// analyses.
func SecureEmulates(real, ideal structured.SPSIOA, cases []AdvSim, opt Options, limit int) (*EmulationReport, error) {
	sp := obs.Begin("core.emulation", real.ID()+" ~> "+ideal.ID())
	defer sp.End()
	defer obs.Time("core.emulation.us")()
	tr := obs.Active()
	out := &EmulationReport{Holds: true, PerAdv: make(map[string]*Report, len(cases))}
	for _, cs := range cases {
		if err := adversary.IsAdversaryFor(cs.Adv, real, limit); err != nil {
			return nil, fmt.Errorf("core: %q is not an adversary for %q: %w", cs.Adv.ID(), real.ID(), err)
		}
		if err := adversary.IsAdversaryFor(cs.Sim, ideal, limit); err != nil {
			return nil, fmt.Errorf("core: simulator %q is not an adversary for %q: %w", cs.Sim.ID(), ideal.ID(), err)
		}
		left, err := HideAAct(real, cs.Adv, limit)
		if err != nil {
			return nil, err
		}
		right, err := HideAAct(ideal, cs.Sim, limit)
		if err != nil {
			return nil, err
		}
		var rep *Report
		if cs.Witness != nil {
			rep, err = ImplementsWitness(left, right, cs.Witness, opt)
		} else {
			rep, err = Implements(left, right, opt)
		}
		if err != nil {
			return nil, err
		}
		out.PerAdv[cs.Adv.ID()] = rep
		if !rep.Holds {
			out.Holds = false
		}
		cEmuRounds.Inc()
		if tr.Enabled() {
			status := "ok"
			if !rep.Holds {
				status = "fail"
			}
			tr.Emit(obs.Event{Kind: obs.KindEmuRound, Name: cs.Adv.ID(), Attr: status, V: rep.MaxDist, N: int64(len(rep.Pairs))})
		}
	}
	return out, nil
}

// SFamily is an indexed family of structured automata — the objects
// Def 4.26 actually quantifies over (structured PSIOA/PCA *families*).
type SFamily func(k int) structured.SPSIOA

// AdvSimFamily is an adversary family paired with its simulator family
// (Def 4.26: "for every adversary family Adv ... there is an adversary
// family Sim ...").
type AdvSimFamily struct {
	// Adv and Sim produce the k-th adversary and simulator.
	Adv, Sim func(k int) psioa.PSIOA
	// Witness optionally produces the per-index constructive scheduler
	// correspondence.
	Witness func(k int) Witness
}

// FamilyEmulationReport aggregates per-index emulation reports.
type FamilyEmulationReport struct {
	// Holds reports whether every index passed.
	Holds bool
	// PerK maps the security parameter to its report.
	PerK map[int]*EmulationReport
}

// MaxDistFn returns k ↦ the largest per-adversary distance at index k, for
// comparison against a negligible function (the ≤_{neg,pt} form of
// Def 4.26).
func (r *FamilyEmulationReport) MaxDistFn() bounded.Fn {
	return func(k int) float64 {
		rep, ok := r.PerK[k]
		if !ok {
			return 0
		}
		dist := 0.0
		for _, pr := range rep.PerAdv {
			if pr.MaxDist > dist {
				dist = pr.MaxDist
			}
		}
		return dist
	}
}

// String summarises the report.
func (r *FamilyEmulationReport) String() string {
	return fmt.Sprintf("family secure-emulation holds=%v indices=%d", r.Holds, len(r.PerK))
}

// SecureEmulatesFamily checks Def 4.26 at the family level: for each k in
// [kmin, kmax], real(k) must securely emulate ideal(k) against every
// adversary/simulator family pair, with the per-index options (whose Eps
// should follow the intended negligible function).
func SecureEmulatesFamily(real, ideal SFamily, cases []AdvSimFamily, optFor func(k int) Options, kmin, kmax, limit int) (*FamilyEmulationReport, error) {
	out := &FamilyEmulationReport{Holds: true, PerK: make(map[int]*EmulationReport)}
	for k := kmin; k <= kmax; k++ {
		inst := make([]AdvSim, len(cases))
		for i, c := range cases {
			inst[i] = AdvSim{Adv: c.Adv(k), Sim: c.Sim(k)}
			if c.Witness != nil {
				inst[i].Witness = c.Witness(k)
			}
		}
		rep, err := SecureEmulates(real(k), ideal(k), inst, optFor(k), limit)
		if err != nil {
			return nil, fmt.Errorf("core: family index %d: %w", k, err)
		}
		out.PerK[k] = rep
		if !rep.Holds {
			out.Holds = false
		}
	}
	return out, nil
}

// NegPtEmulation checks that a family emulation report's measured distances
// are dominated by the given negligible function on [kmin, kmax] — the
// executable ≤_{neg,pt} conclusion of Def 4.26.
func NegPtEmulation(rep *FamilyEmulationReport, negl bounded.Fn, kmin, kmax int) error {
	if !rep.Holds {
		return fmt.Errorf("core: family emulation: %w", ErrDoesNotHold)
	}
	f := rep.MaxDistFn()
	for k := kmin; k <= kmax; k++ {
		if f(k) > negl(k)+1e-12 {
			return fmt.Errorf("core: index %d: distance %v exceeds negligible bound %v: %w", k, f(k), negl(k), ErrExceedsNegligible)
		}
	}
	return nil
}

// ComposedSimulator implements the constructive step of Theorem 4.30: given
// the per-component dummy simulators DSim_i (each simulating the dummy
// adversary of component i against its ideal functionality), the renaming g
// of the composed system's adversary actions, and an adversary Adv for the
// composed real system, it builds
//
//	Sim = hide(DSim₁‖...‖DSim_b‖g(Adv), g(AAct_Â))
//
// — the simulator for the composed ideal system.
func ComposedSimulator(g map[psioa.Action]psioa.Action, dsims []psioa.PSIOA, adv psioa.PSIOA) (psioa.PSIOA, error) {
	gAdv := psioa.RenameMap(adv, g)
	comps := make([]psioa.PSIOA, 0, len(dsims)+1)
	comps = append(comps, dsims...)
	comps = append(comps, gAdv)
	inner, err := psioa.Compose(comps...)
	if err != nil {
		return nil, err
	}
	gAAct := psioa.NewActionSet()
	for _, fresh := range g {
		gAAct.Add(fresh)
	}
	return psioa.HideSet(inner, gAAct), nil
}

// DummyOf builds the dummy adversary of a structured automaton for the
// given renaming, as used by the Theorem 4.30 decomposition (the real
// system composed with its dummy is the canonical "most permissive"
// adversary interface).
func DummyOf(s structured.SPSIOA, g map[psioa.Action]psioa.Action, limit int) (*adversary.DummyAdv, error) {
	iface, err := adversary.InterfaceOf(s, limit)
	if err != nil {
		return nil, err
	}
	return adversary.Dummy("dummy("+s.ID()+")", iface, g)
}
