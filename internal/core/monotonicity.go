package core

import (
	"fmt"

	"repro/internal/pca"
	"repro/internal/psioa"
	"repro/internal/sched"
)

// This file renders the monotonicity-w.r.t.-creation discussion of §4.4:
// [7] shows that if PCA X_A and X_B differ only in that X_A dynamically
// creates and destroys PSIOA A where X_B creates B, and A implements B,
// then X_A implements X_B — *provided* the schedulers are
// creation-oblivious. The paper keeps its scheduler model broad enough to
// admit such a schema (§4.4, third bullet) so that the result can later be
// lifted to secure emulation.

// CheckCreationObliviousSchema verifies that every scheduler the schema
// enumerates for the PCA is creation-oblivious in the masked-view sense:
// its decisions factor through the view that hides the internal states of
// dynamically created automata (everything outside base).
func CheckCreationObliviousSchema(x pca.PCA, base []string, schema sched.Schema, bound, depth int) error {
	ss, err := schema.Enumerate(x, bound)
	if err != nil {
		return err
	}
	view := pca.CreationMaskView(x, base)
	for _, s := range ss {
		if err := sched.FactorsThrough(x, s, view, depth); err != nil {
			return fmt.Errorf("core: schema %q is not creation-oblivious on %q: %w", schema.Name(), x.ID(), err)
		}
	}
	return nil
}

// MonotonicityReport is the outcome of a creation-monotonicity check.
type MonotonicityReport struct {
	// Child is the report for the created automata: A ≤ B.
	Child *Report
	// Host is the report for the hosts: X_A ≤ X_B.
	Host *Report
}

// Holds reports whether both levels hold.
func (r *MonotonicityReport) Holds() bool { return r.Child.Holds && r.Host.Holds }

// String summarises the report.
func (r *MonotonicityReport) String() string {
	return fmt.Sprintf("child: %s\nhost:  %s", r.Child, r.Host)
}

// CreationMonotonicity checks the §4.4 scenario end to end:
//
//  1. the created automata satisfy childA ≤ childB under childOpt;
//  2. the host schedulers are creation-oblivious (the schema of hostOpt
//     factors through the creation mask on both hosts, with base the
//     statically present automata);
//  3. the hosts satisfy hostA ≤ hostB under hostOpt.
//
// It returns the two implementation reports; per [7], (1) and (2) should
// entail (3), which the caller observes by Holds().
func CreationMonotonicity(childA, childB psioa.PSIOA, hostA, hostB pca.PCA, base []string, childOpt, hostOpt Options) (*MonotonicityReport, error) {
	childRep, err := Implements(childA, childB, childOpt)
	if err != nil {
		return nil, err
	}
	for _, x := range []pca.PCA{hostA, hostB} {
		if err := CheckCreationObliviousSchema(x, base, hostOpt.Schema, hostOpt.Q1, hostOpt.depth()); err != nil {
			return nil, err
		}
	}
	hostRep, err := Implements(hostA, hostB, hostOpt)
	if err != nil {
		return nil, err
	}
	return &MonotonicityReport{Child: childRep, Host: hostRep}, nil
}
