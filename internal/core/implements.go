// Package core implements the paper's primary contribution: the approximate
// implementation relation extended to bounded dynamic settings (Def 4.12),
// its transitivity (Theorem 4.16) and composability (Lemmas 4.13–4.14,
// Theorem 4.15), and composable dynamic secure emulation (Def 4.26,
// Theorem 4.30) with the dummy-adversary reduction of Lemma 4.29.
//
// The relation A ≤^{Sch,f}_{p,q1,q2,ε} B quantifies over all p-bounded
// environments and q₁-bounded schedulers: "for every σ there exists a
// q₂-bounded σ′ with σ S^{≤ε}_{E,f} σ′". Two executable renderings are
// provided:
//
//   - Implements: exhaustive search over an enumerable scheduler schema —
//     exact on finite instances, the analogue of model checking;
//   - ImplementsWitness: a constructive witness σ ↦ σ′ is supplied (as the
//     paper's proofs do) and only the balance condition is verified.
package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/insight"
	"repro/internal/measure"
	"repro/internal/obs"
	"repro/internal/psioa"
	"repro/internal/sched"
)

// Observability instruments for the implementation-relation checks — the
// outermost loops of every emulation workload.
var (
	cImplCalls = obs.C("core.implements.calls")
	cImplPairs = obs.C("core.implements.pairs")
	cEmuRounds = obs.C("core.emulation.rounds")
)

// emitPair records one decided (environment, scheduler) pair.
func emitPair(tr obs.Tracer, env, sched string, dist float64, ok bool) {
	status := "ok"
	if !ok {
		status = "fail"
	}
	tr.Emit(obs.Event{Kind: obs.KindPair, Name: sched, Attr: env + ":" + status, V: dist})
}

// Options configures an implementation-relation check.
type Options struct {
	// Envs is the set of environments to quantify over (the executable
	// stand-in for "every p-bounded environment"; see DESIGN.md §2).
	Envs []psioa.PSIOA
	// Schema enumerates the candidate schedulers (Sch of Def 4.12).
	Schema sched.Schema
	// Insight is the insight function f.
	Insight insight.Insight
	// Eps is the tolerance ε.
	Eps float64
	// Q1 and Q2 bound the schedulers of the left and right systems
	// (Def 4.12's q₁, q₂). Q2 defaults to Q1 when zero.
	Q1, Q2 int
	// MaxDepth guards exact measure expansion; defaults to max(Q1,Q2).
	MaxDepth int
}

func (o Options) q2() int {
	if o.Q2 == 0 {
		return o.Q1
	}
	return o.Q2
}

func (o Options) depth() int {
	if o.MaxDepth == 0 {
		d := o.Q1
		if o.q2() > d {
			d = o.q2()
		}
		return d
	}
	return o.MaxDepth
}

// PairResult records the outcome for one (environment, scheduler) pair.
type PairResult struct {
	// Env and Sched identify the environment and left scheduler.
	Env, Sched string
	// Matched is the name of the right scheduler achieving the best
	// balance (empty if none was found below ε).
	Matched string
	// Dist is the best achieved Def 3.6 distance.
	Dist float64
	// OK reports whether Dist ≤ ε.
	OK bool
}

// Report is the outcome of an implementation-relation check.
type Report struct {
	// Holds reports whether the relation held for every pair.
	Holds bool
	// MaxDist is the largest best-achievable distance over all pairs — the
	// empirical ε of the instance.
	MaxDist float64
	// Pairs holds the per-(environment, scheduler) outcomes.
	Pairs []PairResult
}

// Failures returns the pairs for which no balanced scheduler was found.
func (r *Report) Failures() []PairResult {
	var out []PairResult
	for _, p := range r.Pairs {
		if !p.OK {
			out = append(out, p)
		}
	}
	return out
}

// String summarises the report.
func (r *Report) String() string {
	return fmt.Sprintf("holds=%v pairs=%d failures=%d maxDist=%.6g", r.Holds, len(r.Pairs), len(r.Failures()), r.MaxDist)
}

// Implements checks A ≤^{Sch,f}_{q1,q2,ε} B exhaustively: for every
// environment E in opt.Envs and every q₁-bounded σ enumerated by the schema
// on E‖A, it searches the schema's q₂-bounded schedulers on E‖B for one
// balanced within ε (Def 4.12). Environments must be partially compatible
// with both A and B.
func Implements(a, b psioa.PSIOA, opt Options) (*Report, error) {
	sp := obs.Begin("core.implements", a.ID()+" <= "+b.ID())
	defer sp.End()
	defer obs.Time("core.implements.us")()
	cImplCalls.Inc()
	tr := obs.Active()
	rep := &Report{Holds: true}
	for _, env := range opt.Envs {
		wa, err := psioa.Compose(env, a)
		if err != nil {
			return nil, err
		}
		wb, err := psioa.Compose(env, b)
		if err != nil {
			return nil, err
		}
		left, err := opt.Schema.Enumerate(wa, opt.Q1)
		if err != nil {
			return nil, err
		}
		right, err := opt.Schema.Enumerate(wb, opt.q2())
		if err != nil {
			return nil, err
		}
		// Precompute the right-side perceptions once.
		type rd struct {
			name string
			dist *measure.Dist[string]
		}
		rds := make([]rd, 0, len(right))
		for _, s2 := range right {
			d2, err := insight.FDist(wb, s2, opt.Insight, opt.depth())
			if err != nil {
				return nil, fmt.Errorf("core: right scheduler %s: %w", s2.Name(), err)
			}
			rds = append(rds, rd{s2.Name(), d2})
		}
		for _, s1 := range left {
			d1, err := insight.FDist(wa, s1, opt.Insight, opt.depth())
			if err != nil {
				return nil, fmt.Errorf("core: left scheduler %s: %w", s1.Name(), err)
			}
			best := math.Inf(1)
			bestName := ""
			for _, r := range rds {
				if d := insight.Distance(d1, r.dist); d < best {
					best, bestName = d, r.name
				}
			}
			pr := PairResult{
				Env: env.ID(), Sched: s1.Name(),
				Dist: best, OK: best <= opt.Eps+measure.Eps,
			}
			if pr.OK {
				pr.Matched = bestName
			} else {
				rep.Holds = false
			}
			cImplPairs.Inc()
			if tr.Enabled() {
				emitPair(tr, pr.Env, pr.Sched, pr.Dist, pr.OK)
			}
			if best > rep.MaxDist && !math.IsInf(best, 1) {
				rep.MaxDist = best
			}
			rep.Pairs = append(rep.Pairs, pr)
		}
	}
	sort.Slice(rep.Pairs, func(i, j int) bool {
		if rep.Pairs[i].Env != rep.Pairs[j].Env {
			return rep.Pairs[i].Env < rep.Pairs[j].Env
		}
		return rep.Pairs[i].Sched < rep.Pairs[j].Sched
	})
	return rep, nil
}

// Witness maps a left scheduler to the right scheduler that matches it —
// the constructive σ ↦ σ′ at the heart of every composability proof in the
// paper. env is the environment, wa = E‖A and wb = E‖B.
type Witness func(env psioa.PSIOA, wa *psioa.Product, s1 sched.Scheduler, wb *psioa.Product) sched.Scheduler

// IdentityWitness returns σ itself — valid whenever E‖A and E‖B have the
// same action alphabet and σ's decisions transfer verbatim (e.g. A and B
// differ only in internal probabilities).
func IdentityWitness() Witness {
	return func(_ psioa.PSIOA, _ *psioa.Product, s1 sched.Scheduler, _ *psioa.Product) sched.Scheduler {
		return s1
	}
}

// ImplementsWitness checks the implementation relation with a constructive
// witness: for every environment and every schema scheduler σ on E‖A, it
// verifies σ S^{≤ε}_{E,f} w(σ).
func ImplementsWitness(a, b psioa.PSIOA, w Witness, opt Options) (*Report, error) {
	sp := obs.Begin("core.implements.witness", a.ID()+" <= "+b.ID())
	defer sp.End()
	defer obs.Time("core.implements.us")()
	cImplCalls.Inc()
	tr := obs.Active()
	rep := &Report{Holds: true}
	for _, env := range opt.Envs {
		wa, err := psioa.Compose(env, a)
		if err != nil {
			return nil, err
		}
		wb, err := psioa.Compose(env, b)
		if err != nil {
			return nil, err
		}
		left, err := opt.Schema.Enumerate(wa, opt.Q1)
		if err != nil {
			return nil, err
		}
		for _, s1 := range left {
			s2 := w(env, wa, s1, wb)
			ok, dist, err := insight.Balanced(wa, s1, wb, s2, opt.Insight, opt.Eps, opt.depth())
			if err != nil {
				return nil, err
			}
			pr := PairResult{Env: env.ID(), Sched: s1.Name(), Matched: s2.Name(), Dist: dist, OK: ok}
			if !ok {
				rep.Holds = false
			}
			cImplPairs.Inc()
			if tr.Enabled() {
				emitPair(tr, pr.Env, pr.Sched, pr.Dist, pr.OK)
			}
			if dist > rep.MaxDist {
				rep.MaxDist = dist
			}
			rep.Pairs = append(rep.Pairs, pr)
		}
	}
	return rep, nil
}

// ComposeWitnesses chains witnesses along Theorem 4.16 (transitivity): from
// witnesses for A₁ ≤ A₂ and A₂ ≤ A₃, build the witness for A₁ ≤ A₃ with
// ε₁₃ = ε₁₂ + ε₂₃ (the triangle inequality of the Def 3.6 distance). a2 is
// the middle automaton.
func ComposeWitnesses(a2 psioa.PSIOA, w12, w23 Witness) Witness {
	return func(env psioa.PSIOA, wa *psioa.Product, s1 sched.Scheduler, wc *psioa.Product) sched.Scheduler {
		wb := psioa.MustCompose(env, a2)
		s2 := w12(env, wa, s1, wb)
		return w23(env, wb, s2, wc)
	}
}

// ContextWitness lifts a witness for A₁ ≤ A₂ to a witness for
// A₃‖A₁ ≤ A₃‖A₂, following the proof of Lemma 4.13: a scheduler of
// E‖(A₃‖A₁) is literally a scheduler of (E‖A₃)‖A₁ because composition
// flattens, so the witness is invoked with the extended environment E‖A₃.
func ContextWitness(a3 psioa.PSIOA, w Witness) Witness {
	return func(env psioa.PSIOA, wa *psioa.Product, s1 sched.Scheduler, wb *psioa.Product) sched.Scheduler {
		e3 := psioa.MustCompose(env, a3)
		return w(e3, wa, s1, wb)
	}
}

// ComposeContext returns the options for checking A₃‖A₁ ≤ A₃‖A₂ given the
// options used for A₁ ≤ A₂: every environment E is replaced by E (the
// context A₃ travels with the systems), matching Lemma 4.13's statement
// that E‖A₃ is a c_comp(p+p₃)-bounded environment for A₁ and A₂.
func ComposeContext(a3 psioa.PSIOA, a1, a2 psioa.PSIOA) (left, right psioa.PSIOA, err error) {
	l, err := psioa.Compose(a3, a1)
	if err != nil {
		return nil, nil, err
	}
	r, err := psioa.Compose(a3, a2)
	if err != nil {
		return nil, nil, err
	}
	return l, r, nil
}
