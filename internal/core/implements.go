// Package core implements the paper's primary contribution: the approximate
// implementation relation extended to bounded dynamic settings (Def 4.12),
// its transitivity (Theorem 4.16) and composability (Lemmas 4.13–4.14,
// Theorem 4.15), and composable dynamic secure emulation (Def 4.26,
// Theorem 4.30) with the dummy-adversary reduction of Lemma 4.29.
//
// The relation A ≤^{Sch,f}_{p,q1,q2,ε} B quantifies over all p-bounded
// environments and q₁-bounded schedulers: "for every σ there exists a
// q₂-bounded σ′ with σ S^{≤ε}_{E,f} σ′". Two executable renderings are
// provided:
//
//   - Implements: exhaustive search over an enumerable scheduler schema —
//     exact on finite instances, the analogue of model checking;
//   - ImplementsWitness: a constructive witness σ ↦ σ′ is supplied (as the
//     paper's proofs do) and only the balance condition is verified.
//
// Both renderings are embarrassingly parallel over (environment, scheduler)
// pairs. The Options.Exec and Options.Memo hooks let callers fan the pair
// work out to a worker pool and memoize the underlying measure expansions
// (see internal/engine); the produced Report is byte-identical between
// sequential and parallel runs.
package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/insight"
	"repro/internal/measure"
	"repro/internal/obs"
	"repro/internal/psioa"
	"repro/internal/resilience"
	"repro/internal/sched"
)

// Observability instruments for the implementation-relation checks — the
// outermost loops of every emulation workload.
var (
	cImplCalls = obs.C("core.implements.calls")
	cImplPairs = obs.C("core.implements.pairs")
	cEmuRounds = obs.C("core.emulation.rounds")
)

// emitPair records one decided (environment, scheduler) pair.
func emitPair(tr obs.Tracer, env, sched string, dist float64, ok bool) {
	status := "ok"
	if !ok {
		status = "fail"
	}
	tr.Emit(obs.Event{Kind: obs.KindPair, Name: sched, Attr: env + ":" + status, V: dist})
}

// Executor runs n independent tasks, possibly concurrently. fn(i) must be
// safe to call from multiple goroutines for distinct i. Map returns the
// error of the lowest-index failing task (so parallel and sequential runs
// fail identically), or the context error if cancelled. internal/engine.Pool
// is the standard implementation.
type Executor interface {
	Map(ctx context.Context, n int, fn func(i int) error) error
}

// Memo caches f-dist computations across checks, keyed by a canonical
// fingerprint of the composed automaton plus the scheduler's name. The
// returned distributions are shared and must be treated as read-only.
// Implementations must honour ctx and b by threading them into the
// underlying expansion and must never cache results computed under an
// exhausted budget. internal/engine.Cache is the standard implementation.
type Memo interface {
	FDistCtx(ctx context.Context, w psioa.PSIOA, s sched.Scheduler, f insight.Insight, maxDepth int, b *resilience.Budget) (*measure.Dist[string], error)
}

// MemoOpts is the optional extension of Memo that threads kernel options
// (intra-measure worker counts, DAG routing) into the expansion. A Memo
// that also implements MemoOpts receives Options.Kernel; plain Memo
// implementations keep working unchanged.
type MemoOpts interface {
	Memo
	FDistOpts(ctx context.Context, w psioa.PSIOA, s sched.Scheduler, f insight.Insight, maxDepth int, b *resilience.Budget, o sched.Options) (*measure.Dist[string], error)
}

// Options configures an implementation-relation check.
type Options struct {
	// Envs is the set of environments to quantify over (the executable
	// stand-in for "every p-bounded environment"; see DESIGN.md §2).
	Envs []psioa.PSIOA
	// Schema enumerates the candidate schedulers (Sch of Def 4.12).
	Schema sched.Schema
	// Insight is the insight function f.
	Insight insight.Insight
	// Eps is the tolerance ε.
	Eps float64
	// Q1 and Q2 bound the schedulers of the left and right systems
	// (Def 4.12's q₁, q₂). Q2 defaults to Q1 when zero.
	Q1, Q2 int
	// MaxDepth guards exact measure expansion; defaults to max(Q1,Q2).
	MaxDepth int
	// Exec fans the per-(environment, scheduler) work out to a worker pool
	// (see internal/engine.Pool). Nil runs sequentially.
	Exec Executor
	// Memo caches measure expansions across repeated checks (see
	// internal/engine.Cache). Nil recomputes everything.
	Memo Memo
	// Ctx cancels long-running checks. Nil means context.Background().
	Ctx context.Context
	// Budget bounds the total work of the check across all pairs (shared
	// by every worker). A check cannot soundly report a verdict from a
	// partial expansion, so an exhausted budget fails the check with an
	// ErrBudgetExceeded-classified error. Nil means unbounded.
	Budget *resilience.Budget
	// Kernel configures the measure kernels themselves: a worker count
	// shards each expansion's frontier (sched.MeasureOpts), on top of the
	// pair-level fan-out of Exec. Parallel kernels are byte-identical to
	// sequential ones, so reports do not depend on it. Leave Kernel.Pool
	// nil when Exec is an engine.Pool — the per-pair tasks already run on
	// that pool, and a nested fan-out onto the same semaphore would
	// deadlock; Kernel.Workers alone spawns private bounded goroutines.
	Kernel sched.Options
}

func (o Options) q2() int {
	if o.Q2 == 0 {
		return o.Q1
	}
	return o.Q2
}

func (o Options) depth() int {
	if o.MaxDepth == 0 {
		d := o.Q1
		if o.q2() > d {
			d = o.q2()
		}
		return d
	}
	return o.MaxDepth
}

func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// fdist computes f-dist through the memo when one is installed, threading
// the check's context and budget into the expansion.
func (o Options) fdist(ctx context.Context, w psioa.PSIOA, s sched.Scheduler) (*measure.Dist[string], error) {
	if o.Memo != nil {
		if mo, ok := o.Memo.(MemoOpts); ok {
			return mo.FDistOpts(ctx, w, s, o.Insight, o.depth(), o.Budget, o.Kernel)
		}
		return o.Memo.FDistCtx(ctx, w, s, o.Insight, o.depth(), o.Budget)
	}
	return insight.FDistOpts(ctx, w, s, o.Insight, o.depth(), o.Budget, o.Kernel)
}

// runTasks executes n tasks through the executor, or sequentially (stopping
// at the first error, checking cancellation between tasks) when none is set.
func (o Options) runTasks(ctx context.Context, n int, fn func(i int) error) error {
	if o.Exec != nil {
		return o.Exec.Map(ctx, n, fn)
	}
	for i := 0; i < n; i++ {
		if err := resilience.CtxError(ctx); err != nil {
			return err
		}
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}

// PairResult records the outcome for one (environment, scheduler) pair.
type PairResult struct {
	// Env and Sched identify the environment and left scheduler.
	Env, Sched string
	// Matched is the name of the right scheduler achieving the best
	// balance (empty if none was found below ε).
	Matched string
	// Dist is the best achieved Def 3.6 distance.
	Dist float64
	// OK reports whether Dist ≤ ε.
	OK bool
}

// Report is the outcome of an implementation-relation check. Pairs are
// always sorted by (Env, Sched), so reports are byte-identical however the
// pair work was scheduled.
type Report struct {
	// Holds reports whether the relation held for every pair.
	Holds bool
	// MaxDist is the largest best-achievable distance over all pairs — the
	// empirical ε of the instance.
	MaxDist float64
	// Pairs holds the per-(environment, scheduler) outcomes.
	Pairs []PairResult
}

// sortPairs orders pair results canonically by (Env, Sched, Matched): the
// deterministic report order shared by the sequential and pooled checkers.
func sortPairs(pairs []PairResult) {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Env != pairs[j].Env {
			return pairs[i].Env < pairs[j].Env
		}
		if pairs[i].Sched != pairs[j].Sched {
			return pairs[i].Sched < pairs[j].Sched
		}
		return pairs[i].Matched < pairs[j].Matched
	})
}

// Failures returns the pairs for which no balanced scheduler was found, in
// the report's canonical (Env, Sched) order.
func (r *Report) Failures() []PairResult {
	var out []PairResult
	for _, p := range r.Pairs {
		if !p.OK {
			out = append(out, p)
		}
	}
	return out
}

// String summarises the report.
func (r *Report) String() string {
	return fmt.Sprintf("holds=%v pairs=%d failures=%d maxDist=%.6g", r.Holds, len(r.Pairs), len(r.Failures()), r.MaxDist)
}

// assemble folds per-task pair results into the report in task order and
// establishes the canonical pair ordering.
func (r *Report) assemble(results []PairResult) {
	for _, pr := range results {
		if !pr.OK {
			r.Holds = false
		}
		if pr.Dist > r.MaxDist && !math.IsInf(pr.Dist, 1) {
			r.MaxDist = pr.Dist
		}
		r.Pairs = append(r.Pairs, pr)
	}
	sortPairs(r.Pairs)
}

// rd is one precomputed right-side perception.
type rd struct {
	name string
	dist *measure.Dist[string]
}

// envWork is the per-environment setup shared by the pair tasks.
type envWork struct {
	env    psioa.PSIOA
	wa, wb *psioa.Product
	left   []sched.Scheduler
	right  []sched.Scheduler
	rds    []rd
}

// setup composes every environment with both systems and enumerates the
// schema on the compositions. It is sequential: composition and enumeration
// are cheap relative to measure expansion, and running them up front keeps
// error reporting deterministic.
func setup(a, b psioa.PSIOA, opt Options, needRight bool) ([]*envWork, error) {
	works := make([]*envWork, 0, len(opt.Envs))
	for _, env := range opt.Envs {
		wa, err := psioa.Compose(env, a)
		if err != nil {
			return nil, err
		}
		wb, err := psioa.Compose(env, b)
		if err != nil {
			return nil, err
		}
		left, err := opt.Schema.Enumerate(wa, opt.Q1)
		if err != nil {
			return nil, err
		}
		w := &envWork{env: env, wa: wa, wb: wb, left: left}
		if needRight {
			right, err := opt.Schema.Enumerate(wb, opt.q2())
			if err != nil {
				return nil, err
			}
			w.right = right
			w.rds = make([]rd, len(right))
		}
		works = append(works, w)
	}
	return works, nil
}

// Implements checks A ≤^{Sch,f}_{q1,q2,ε} B exhaustively: for every
// environment E in opt.Envs and every q₁-bounded σ enumerated by the schema
// on E‖A, it searches the schema's q₂-bounded schedulers on E‖B for one
// balanced within ε (Def 4.12). Environments must be partially compatible
// with both A and B.
//
// The search fans out through opt.Exec when set: right-side perceptions are
// computed first (one task per (environment, right scheduler)), then every
// (environment, left scheduler) pair is decided independently. The report
// is identical to the sequential one.
func Implements(a, b psioa.PSIOA, opt Options) (*Report, error) {
	sp := obs.Begin("core.implements", a.ID()+" <= "+b.ID())
	defer sp.End()
	defer obs.Time("core.implements.us")()
	cImplCalls.Inc()
	tr := obs.Active()
	ctx := opt.ctx()
	works, err := setup(a, b, opt, true)
	if err != nil {
		return nil, err
	}

	// Phase 1: the right-side perceptions, once per (env, right scheduler).
	type rref struct {
		w *envWork
		j int
	}
	var rrefs []rref
	for _, w := range works {
		for j := range w.right {
			rrefs = append(rrefs, rref{w, j})
		}
	}
	err = opt.runTasks(ctx, len(rrefs), func(i int) error {
		r := rrefs[i]
		s2 := r.w.right[r.j]
		d2, err := opt.fdist(ctx, r.w.wb, s2)
		if err != nil {
			return fmt.Errorf("core: right scheduler %s: %w", s2.Name(), err)
		}
		r.w.rds[r.j] = rd{s2.Name(), d2}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: decide every (env, left scheduler) pair against the
	// precomputed right-side perceptions.
	type lref struct {
		w  *envWork
		s1 sched.Scheduler
	}
	var lrefs []lref
	for _, w := range works {
		for _, s1 := range w.left {
			lrefs = append(lrefs, lref{w, s1})
		}
	}
	results := make([]PairResult, len(lrefs))
	err = opt.runTasks(ctx, len(lrefs), func(i int) error {
		t := lrefs[i]
		d1, err := opt.fdist(ctx, t.w.wa, t.s1)
		if err != nil {
			return fmt.Errorf("core: left scheduler %s: %w", t.s1.Name(), err)
		}
		// The inner sweep over right-side perceptions can dwarf the
		// expansions when the schema is large; poll the same checkpoint
		// machinery (without charging state/transition work).
		ck := resilience.NewCheckpoint(ctx, opt.Budget)
		best := math.Inf(1)
		bestName := ""
		for _, r := range t.w.rds {
			if err := ck.Step(0, 0); err != nil {
				return fmt.Errorf("core: matching scheduler %s: %w", t.s1.Name(), err)
			}
			if d := insight.Distance(d1, r.dist); d < best {
				best, bestName = d, r.name
			}
		}
		pr := PairResult{
			Env: t.w.env.ID(), Sched: t.s1.Name(),
			Dist: best, OK: best <= opt.Eps+measure.Eps,
		}
		if pr.OK {
			pr.Matched = bestName
		}
		cImplPairs.Inc()
		if tr.Enabled() {
			emitPair(tr, pr.Env, pr.Sched, pr.Dist, pr.OK)
		}
		results[i] = pr
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{Holds: true}
	rep.assemble(results)
	return rep, nil
}

// Witness maps a left scheduler to the right scheduler that matches it —
// the constructive σ ↦ σ′ at the heart of every composability proof in the
// paper. env is the environment, wa = E‖A and wb = E‖B.
type Witness func(env psioa.PSIOA, wa *psioa.Product, s1 sched.Scheduler, wb *psioa.Product) sched.Scheduler

// IdentityWitness returns σ itself — valid whenever E‖A and E‖B have the
// same action alphabet and σ's decisions transfer verbatim (e.g. A and B
// differ only in internal probabilities).
func IdentityWitness() Witness {
	return func(_ psioa.PSIOA, _ *psioa.Product, s1 sched.Scheduler, _ *psioa.Product) sched.Scheduler {
		return s1
	}
}

// ImplementsWitness checks the implementation relation with a constructive
// witness: for every environment and every schema scheduler σ on E‖A, it
// verifies σ S^{≤ε}_{E,f} w(σ). Like Implements, the per-pair balance
// checks fan out through opt.Exec when set.
func ImplementsWitness(a, b psioa.PSIOA, w Witness, opt Options) (*Report, error) {
	sp := obs.Begin("core.implements.witness", a.ID()+" <= "+b.ID())
	defer sp.End()
	defer obs.Time("core.implements.us")()
	cImplCalls.Inc()
	tr := obs.Active()
	ctx := opt.ctx()
	works, err := setup(a, b, opt, false)
	if err != nil {
		return nil, err
	}
	// The witness is applied sequentially up front: witnesses may compose
	// automata and are not required to be concurrency-safe.
	type pairTask struct {
		w      *envWork
		s1, s2 sched.Scheduler
	}
	var tasks []pairTask
	for _, ew := range works {
		for _, s1 := range ew.left {
			tasks = append(tasks, pairTask{ew, s1, w(ew.env, ew.wa, s1, ew.wb)})
		}
	}
	results := make([]PairResult, len(tasks))
	err = opt.runTasks(ctx, len(tasks), func(i int) error {
		t := tasks[i]
		d1, err := opt.fdist(ctx, t.w.wa, t.s1)
		if err != nil {
			return err
		}
		d2, err := opt.fdist(ctx, t.w.wb, t.s2)
		if err != nil {
			return err
		}
		dist := insight.Distance(d1, d2)
		ok := dist <= opt.Eps+measure.Eps
		pr := PairResult{Env: t.w.env.ID(), Sched: t.s1.Name(), Matched: t.s2.Name(), Dist: dist, OK: ok}
		cImplPairs.Inc()
		if tr.Enabled() {
			emitPair(tr, pr.Env, pr.Sched, pr.Dist, pr.OK)
		}
		results[i] = pr
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{Holds: true}
	rep.assemble(results)
	return rep, nil
}

// ComposeWitnesses chains witnesses along Theorem 4.16 (transitivity): from
// witnesses for A₁ ≤ A₂ and A₂ ≤ A₃, build the witness for A₁ ≤ A₃ with
// ε₁₃ = ε₁₂ + ε₂₃ (the triangle inequality of the Def 3.6 distance). a2 is
// the middle automaton.
func ComposeWitnesses(a2 psioa.PSIOA, w12, w23 Witness) Witness {
	return func(env psioa.PSIOA, wa *psioa.Product, s1 sched.Scheduler, wc *psioa.Product) sched.Scheduler {
		wb := psioa.MustCompose(env, a2)
		s2 := w12(env, wa, s1, wb)
		return w23(env, wb, s2, wc)
	}
}

// ContextWitness lifts a witness for A₁ ≤ A₂ to a witness for
// A₃‖A₁ ≤ A₃‖A₂, following the proof of Lemma 4.13: a scheduler of
// E‖(A₃‖A₁) is literally a scheduler of (E‖A₃)‖A₁ because composition
// flattens, so the witness is invoked with the extended environment E‖A₃.
func ContextWitness(a3 psioa.PSIOA, w Witness) Witness {
	return func(env psioa.PSIOA, wa *psioa.Product, s1 sched.Scheduler, wb *psioa.Product) sched.Scheduler {
		e3 := psioa.MustCompose(env, a3)
		return w(e3, wa, s1, wb)
	}
}

// ComposeContext returns the options for checking A₃‖A₁ ≤ A₃‖A₂ given the
// options used for A₁ ≤ A₂: every environment E is replaced by E (the
// context A₃ travels with the systems), matching Lemma 4.13's statement
// that E‖A₃ is a c_comp(p+p₃)-bounded environment for A₁ and A₂.
func ComposeContext(a3 psioa.PSIOA, a1, a2 psioa.PSIOA) (left, right psioa.PSIOA, err error) {
	l, err := psioa.Compose(a3, a1)
	if err != nil {
		return nil, nil, err
	}
	r, err := psioa.Compose(a3, a2)
	if err != nil {
		return nil, nil, err
	}
	return l, r, nil
}
