package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/insight"
	"repro/internal/protocols/channel"
	"repro/internal/protocols/coin"
	"repro/internal/psioa"
	"repro/internal/sched"
)

// ExampleImplements decides the approximate implementation relation
// (Def 4.12) between a biased coin and the fair coin: the measured distance
// is exactly the bias offset.
func ExampleImplements() {
	biased := coin.Flipper("x", 0.5+0.125)
	fair := coin.Fair("x")
	rep, err := core.Implements(biased, fair, core.Options{
		Envs:    []psioa.PSIOA{coin.Env("x")},
		Schema:  &sched.ObliviousSchema{},
		Insight: insight.Trace(),
		Eps:     0.125,
		Q1:      3,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("holds=%v distance=%v\n", rep.Holds, rep.MaxDist)
	// Output:
	// holds=true distance=0.125
}

// ExampleSecureEmulates checks dynamic secure emulation (Def 4.26): the
// one-time-pad channel with its eavesdropper is perfectly simulated against
// the ideal channel.
func ExampleSecureEmulates() {
	rep, err := core.SecureEmulates(channel.Real("x"), channel.Ideal("x"),
		[]core.AdvSim{{Adv: channel.Eavesdropper("x"), Sim: channel.SimFor("x")}},
		core.Options{
			Envs: []psioa.PSIOA{channel.Env("x", 0), channel.Env("x", 1)},
			Schema: &sched.PrefixPrioritySchema{Templates: [][]string{
				{"send", "encrypt", "tap", "notify", "fabricate", "g_tap", "guess", "deliver"},
			}},
			Insight: insight.Trace(),
			Eps:     0,
			Q1:      8,
		}, 50000)
	if err != nil {
		panic(err)
	}
	fmt.Println(rep.Holds)
	// Output:
	// true
}

// ExampleComposeWitnesses chains constructive witnesses along transitivity
// (Theorem 4.16): the measured ε₁₃ is exactly ε₁₂ + ε₂₃.
func ExampleComposeWitnesses() {
	delta := 0.0625
	a1 := coin.Flipper("x", 0.5+2*delta)
	a2 := coin.Flipper("x", 0.5+delta)
	a3 := coin.Fair("x")
	w13 := core.ComposeWitnesses(a2, core.IdentityWitness(), core.IdentityWitness())
	rep, err := core.ImplementsWitness(a1, a3, w13, core.Options{
		Envs:    []psioa.PSIOA{coin.Env("x")},
		Schema:  &sched.ObliviousSchema{},
		Insight: insight.Trace(),
		Eps:     2 * delta,
		Q1:      3,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("holds=%v ε13=%v\n", rep.Holds, rep.MaxDist)
	// Output:
	// holds=true ε13=0.125
}
