package core

import (
	"fmt"

	"repro/internal/bounded"
	"repro/internal/psioa"
)

// FamilyOptions configures a family-level implementation check
// (Def 4.12's family form): per-index environments, bounds and tolerance.
type FamilyOptions struct {
	// OptionsFor returns the per-index check options; Eps should follow
	// ε(k), Q1/Q2 the polynomial bounds q₁(k), q₂(k).
	OptionsFor func(k int) Options
	// Kmin and Kmax delimit the checked range of the security parameter.
	Kmin, Kmax int
}

// FamilyReport records per-index implementation reports.
type FamilyReport struct {
	// Holds reports whether every index passed.
	Holds bool
	// PerK maps the security parameter to its report.
	PerK map[int]*Report
}

// MaxDistFn returns k ↦ MaxDist(k), for comparison against a negligible
// function.
func (r *FamilyReport) MaxDistFn() bounded.Fn {
	return func(k int) float64 {
		if rep, ok := r.PerK[k]; ok {
			return rep.MaxDist
		}
		return 0
	}
}

// String summarises the report.
func (r *FamilyReport) String() string {
	return fmt.Sprintf("family holds=%v indices=%d", r.Holds, len(r.PerK))
}

// FamilyImplements checks A_k ≤^{Sch,f}_{q1(k),q2(k),ε(k)} B_k for every k
// in [Kmin, Kmax] (Def 4.12 extended to families).
func FamilyImplements(fa, fb bounded.Family, fopt FamilyOptions) (*FamilyReport, error) {
	out := &FamilyReport{Holds: true, PerK: make(map[int]*Report)}
	for k := fopt.Kmin; k <= fopt.Kmax; k++ {
		rep, err := Implements(fa(k), fb(k), fopt.OptionsFor(k))
		if err != nil {
			return nil, fmt.Errorf("core: family index %d: %w", k, err)
		}
		out.PerK[k] = rep
		if !rep.Holds {
			out.Holds = false
		}
	}
	return out, nil
}

// FamilyImplementsWitness is FamilyImplements with per-index constructive
// witnesses.
func FamilyImplementsWitness(fa, fb bounded.Family, w func(k int) Witness, fopt FamilyOptions) (*FamilyReport, error) {
	out := &FamilyReport{Holds: true, PerK: make(map[int]*Report)}
	for k := fopt.Kmin; k <= fopt.Kmax; k++ {
		rep, err := ImplementsWitness(fa(k), fb(k), w(k), fopt.OptionsFor(k))
		if err != nil {
			return nil, fmt.Errorf("core: family index %d: %w", k, err)
		}
		out.PerK[k] = rep
		if !rep.Holds {
			out.Holds = false
		}
	}
	return out, nil
}

// NegPt checks the ≤_{neg,pt} form on a finite range: the family check must
// hold with a tolerance ε(k) that is dominated by the given negligible
// function, i.e. the measured per-index distances satisfy
// MaxDist(k) ≤ negl(k) for all k in range.
func NegPt(rep *FamilyReport, negl bounded.Fn, kmin, kmax int) error {
	if !rep.Holds {
		return fmt.Errorf("core: family relation: %w", ErrDoesNotHold)
	}
	for k := kmin; k <= kmax; k++ {
		r, ok := rep.PerK[k]
		if !ok {
			continue
		}
		if r.MaxDist > negl(k)+1e-12 {
			return fmt.Errorf("core: index %d: distance %v exceeds negligible bound %v: %w", k, r.MaxDist, negl(k), ErrExceedsNegligible)
		}
	}
	return nil
}

// ContextFamily lifts a family pointwise into a context (Lemma 4.14 /
// Theorem 4.15): (A₃‖A)_k = A₃_k ‖ A_k.
func ContextFamily(ctx, f bounded.Family) bounded.Family {
	return func(k int) psioa.PSIOA {
		return psioa.MustCompose(ctx(k), f(k))
	}
}
