package core_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/insight"
	"repro/internal/protocols/channel"
	"repro/internal/protocols/coin"
	"repro/internal/psioa"
	"repro/internal/sched"
)

func TestOptionsDefaults(t *testing.T) {
	// Q2 defaults to Q1 and MaxDepth to max(Q1, Q2): a check configured
	// with only Q1 must behave identically to the fully explicit one.
	a := coin.Flipper("x", 0.625)
	b := coin.Fair("x")
	short := core.Options{
		Envs: []psioa.PSIOA{coin.Env("x")}, Schema: &sched.ObliviousSchema{},
		Insight: insight.Trace(), Eps: 0.125, Q1: 3,
	}
	full := short
	full.Q2 = 3
	full.MaxDepth = 3
	r1, err := core.Implements(a, b, short)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := core.Implements(a, b, full)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Holds != r2.Holds || math.Abs(r1.MaxDist-r2.MaxDist) > 1e-12 {
		t.Errorf("defaults diverge: %s vs %s", r1, r2)
	}
}

func TestImplementsIncompatibleEnv(t *testing.T) {
	// An environment clashing on outputs with the system is rejected via
	// the enumeration/exploration error path.
	clash := psioa.NewBuilder("clash", "q").
		AddState("q", psioa.NewSignature(nil, []psioa.Action{coin.Result("x", 0)}, nil)).
		AddDet("q", coin.Result("x", 0), "q").
		MustBuild()
	_, err := core.Implements(coin.Fair("x"), coin.Fair("x"), core.Options{
		Envs: []psioa.PSIOA{clash}, Schema: &sched.ObliviousSchema{},
		Insight: insight.Trace(), Q1: 2,
	})
	if err == nil {
		t.Error("clashing environment accepted")
	}
}

func TestImplementsSchemaErrorPropagates(t *testing.T) {
	_, err := core.Implements(coin.Fair("x"), coin.Fair("x"), core.Options{
		Envs:    []psioa.PSIOA{coin.Env("x")},
		Schema:  &sched.ObliviousSchema{MaxCount: 1},
		Insight: insight.Trace(), Q1: 5,
	})
	if err == nil || !strings.Contains(err.Error(), "cap") {
		t.Errorf("expected cap error, got %v", err)
	}
}

func TestSecureEmulatesWithWitness(t *testing.T) {
	// The witness path of AdvSim: instead of searching the schema on the
	// right, rebuild the same run-to-completion strategy against the ideal
	// world.
	templates := [][]string{
		{"send", "encrypt", "tap", "notify", "block", "deliver"},
	}
	w := core.Witness(func(env psioa.PSIOA, wa *psioa.Product, s1 sched.Scheduler, wb *psioa.Product) sched.Scheduler {
		ss, err := (&sched.PrefixPrioritySchema{Templates: templates}).Enumerate(wb, 8)
		if err != nil {
			panic(err)
		}
		return ss[0]
	})
	rep, err := core.SecureEmulates(channel.Real("x"), channel.Ideal("x"),
		[]core.AdvSim{{Adv: channel.Blocker("x"), Sim: channel.BlockerSim("x"), Witness: w}},
		core.Options{
			Envs:    []psioa.PSIOA{channel.Env("x", 0), channel.Env("x", 1)},
			Schema:  &sched.PrefixPrioritySchema{Templates: templates},
			Insight: insight.Trace(), Eps: 0, Q1: 8,
		}, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Errorf("witnessed emulation failed:\n%s", rep)
	}
}

func TestEmulationReportString(t *testing.T) {
	rep := &core.EmulationReport{Holds: true, PerAdv: map[string]*core.Report{
		"adv1": {Holds: true, MaxDist: 0},
	}}
	s := rep.String()
	if !strings.Contains(s, "adv1") || !strings.Contains(s, "holds=true") {
		t.Errorf("report rendering: %q", s)
	}
}

func TestImplementsWitnessFailureReported(t *testing.T) {
	// A deliberately wrong witness (halts immediately) must fail with the
	// halting-vs-running distance.
	bad := core.Witness(func(env psioa.PSIOA, wa *psioa.Product, s1 sched.Scheduler, wb *psioa.Product) sched.Scheduler {
		return &sched.FuncSched{ID: "halter", Fn: func(*psioa.Frag) *sched.Choice { return sched.Halt() }}
	})
	rep, err := core.ImplementsWitness(coin.Fair("x"), coin.Fair("x"), bad, core.Options{
		Envs: []psioa.PSIOA{coin.Env("x")}, Schema: &sched.ObliviousSchema{},
		Insight: insight.Trace(), Eps: 0, Q1: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Holds {
		t.Error("halting witness accepted at ε=0")
	}
	if len(rep.Failures()) == 0 {
		t.Error("no failures recorded")
	}
}

func TestHideAActErrorPath(t *testing.T) {
	// Composing a structured system with an automaton sharing its outputs
	// errors through HideAAct.
	real := channel.Real("x")
	clash := psioa.NewBuilder("clash", "q").
		AddState("q", psioa.NewSignature(nil, []psioa.Action{channel.Tap("x", 0)}, nil)).
		AddDet("q", channel.Tap("x", 0), "q").
		MustBuild()
	h, err := core.HideAAct(real, clash, 50000)
	if err != nil {
		return // either error now...
	}
	if _, err := psioa.Explore(h, 1000); err == nil {
		t.Error("clashing composition accepted") // ...or at exploration
	}
}
