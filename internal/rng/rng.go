// Package rng provides deterministic, splittable pseudo-random streams for
// Monte-Carlo experiments. Every experiment in the repository is reproducible
// from a single seed; sub-streams derived via Split are independent enough
// for simulation purposes and stable across runs and platforms.
package rng

import (
	"math/rand/v2"
)

// Stream is a deterministic random stream.
type Stream struct {
	r *rand.Rand
}

// New returns a stream seeded from the given 64-bit seed.
func New(seed uint64) *Stream {
	return &Stream{r: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Split derives an independent sub-stream labelled by index. The derivation
// is deterministic in (parent seed material, index), so parallel experiment
// arms get stable, non-overlapping streams.
func (s *Stream) Split(index uint64) *Stream {
	return Substream(s.r.Uint64(), index)
}

// Substream is the pure counterpart of Split: it derives the index-labelled
// stream directly from raw seed material, without consuming any caller
// state. Two calls with equal (material, index) return identical streams,
// so workloads sharded by index — e.g. the parallel sampling kernel, which
// draws the material once and derives one substream per sample — produce
// the same randomness for any worker count and assignment order.
func Substream(material, index uint64) *Stream {
	return &Stream{r: rand.New(rand.NewPCG(material^mix(index), mix(index+0x632be59bd9b4e019)))}
}

func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Float64 returns a uniform sample in [0, 1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// IntN returns a uniform sample in [0, n).
func (s *Stream) IntN(n int) int { return s.r.IntN(n) }

// Uint64 returns a uniform 64-bit sample.
func (s *Stream) Uint64() uint64 { return s.r.Uint64() }

// Perm returns a pseudo-random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.r.Perm(n) }
