package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds collided %d/64 times", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(7).Split(3)
	b := New(7).Split(3)
	for i := 0; i < 50; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestSplitIndependent(t *testing.T) {
	parent := New(7)
	s1 := parent.Split(1)
	parent2 := New(7)
	s2 := parent2.Split(2)
	same := 0
	for i := 0; i < 64; i++ {
		if s1.Uint64() == s2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("split streams collided %d/64 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(99)
	sum := 0.0
	const n = 10000
	for i := 0; i < n; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("mean of %d uniforms = %v, want ≈0.5", n, mean)
	}
}

func TestIntN(t *testing.T) {
	s := New(5)
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		v := s.IntN(4)
		if v < 0 || v >= 4 {
			t.Fatalf("IntN out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("bucket %d count %d outside [800,1200]", i, c)
		}
	}
}

func TestPerm(t *testing.T) {
	p := New(11).Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestSubstreamPure(t *testing.T) {
	// Substream is a pure function of (material, index): it never consumes
	// parent state, so shard workers can derive per-sample streams in any
	// order and still agree.
	a, b := Substream(99, 7), Substream(99, 7)
	for i := 0; i < 50; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Substream is not a pure function of (material, index)")
		}
	}
	same := 0
	x, y := Substream(99, 7), Substream(99, 8)
	for i := 0; i < 64; i++ {
		if x.Uint64() == y.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("adjacent substreams collided %d/64 times", same)
	}
}

func TestSplitMatchesSubstream(t *testing.T) {
	// Split draws one material word from the parent, then delegates to
	// Substream — so a caller can reproduce a split stream from the
	// material alone.
	parent := New(13)
	material := New(13).Uint64()
	s1 := parent.Split(5)
	s2 := Substream(material, 5)
	for i := 0; i < 50; i++ {
		if s1.Uint64() != s2.Uint64() {
			t.Fatal("Split(i) must equal Substream(parent draw, i)")
		}
	}
}
