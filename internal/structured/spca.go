package structured

import (
	"fmt"

	"repro/internal/pca"
	"repro/internal/psioa"
)

// SPCA is a structured PCA (Def 4.22): a PCA whose constituents are
// structured, with EAct_X(q) = EAct(config(X)(q)) \ hidden-actions(X)(q).
type SPCA interface {
	pca.PCA
	SPSIOA
}

// StructuredPCA implements SPCA on top of an arbitrary PCA by deriving the
// environment actions from the structured constituents registered in a
// structured registry.
type StructuredPCA struct {
	pca.PCA
	// eacts maps constituent identifiers to their environment-action
	// mappings. Constituents absent from the map are treated as fully
	// environment-facing (EAct = ext), the default of Def 4.17.
	eacts map[string]func(q psioa.State) psioa.ActionSet
}

// StructurePCA wraps x, taking environment-action mappings from the given
// structured constituents (matched by identifier).
func StructurePCA(x pca.PCA, constituents ...SPSIOA) *StructuredPCA {
	eacts := make(map[string]func(q psioa.State) psioa.ActionSet, len(constituents))
	for _, s := range constituents {
		s := s
		eacts[s.ID()] = func(q psioa.State) psioa.ActionSet { return s.EAct(q) }
	}
	return &StructuredPCA{PCA: x, eacts: eacts}
}

// ConfigEAct returns EAct(C) of Def 4.20: the union of the constituents'
// environment actions at their configuration states.
func (s *StructuredPCA) ConfigEAct(c *pca.Config) psioa.ActionSet {
	out := psioa.NewActionSet()
	for _, id := range c.Auts() {
		q, _ := c.StateOf(id)
		if f, ok := s.eacts[id]; ok {
			out = out.Union(f(q))
			continue
		}
		aut, ok := s.PCA.Registry().Lookup(id)
		if !ok {
			panic(fmt.Sprintf("structured: constituent %q not in registry", id))
		}
		out = out.Union(aut.Sig(q).Ext())
	}
	return out
}

// EAct implements SPSIOA per Def 4.22:
// EAct_X(q) = EAct(config(X)(q)) \ hidden-actions(X)(q).
func (s *StructuredPCA) EAct(q psioa.State) psioa.ActionSet {
	return s.ConfigEAct(s.PCA.Config(q)).Minus(s.PCA.HiddenActions(q))
}

// CompatAt delegates compatibility checking to the wrapped PCA.
func (s *StructuredPCA) CompatAt(q psioa.State) error {
	if cc, ok := s.PCA.(interface{ CompatAt(psioa.State) error }); ok {
		return cc.CompatAt(q)
	}
	return nil
}

// ComposeSPCA composes structured PCAs (Lemma 4.23: the composition of
// partially-compatible structured PCAs is a structured PCA). The underlying
// PCAs are composed per Def 2.19 and the environment mappings are merged.
func ComposeSPCA(xs ...*StructuredPCA) (*StructuredPCA, error) {
	inner := make([]pca.PCA, len(xs))
	merged := make(map[string]func(q psioa.State) psioa.ActionSet)
	for i, x := range xs {
		inner[i] = x.PCA
		for id, f := range x.eacts {
			if _, dup := merged[id]; dup {
				return nil, fmt.Errorf("structured: constituent %q appears in two composed structured PCAs", id)
			}
			merged[id] = f
		}
	}
	base, err := pca.ComposePCA(inner...)
	if err != nil {
		return nil, err
	}
	return &StructuredPCA{PCA: base, eacts: merged}, nil
}
