package structured_test

import (
	"testing"

	"repro/internal/pca"
	"repro/internal/psioa"
	"repro/internal/structured"
	"repro/internal/testaut"
)

// server returns a structured automaton with an environment interface
// (req/rsp) and an adversary interface (leak output, corrupt input).
func server(id string) *structured.Structured {
	req := psioa.Action("req_" + id)
	rsp := psioa.Action("rsp_" + id)
	leak := psioa.Action("leak_" + id)
	corrupt := psioa.Action("corrupt_" + id)
	t := psioa.NewBuilder(id, "idle").
		AddState("idle", psioa.NewSignature([]psioa.Action{req, corrupt}, nil, nil)).
		AddState("busy", psioa.NewSignature([]psioa.Action{corrupt}, []psioa.Action{rsp, leak}, nil)).
		AddState("corrupted", psioa.NewSignature([]psioa.Action{req}, []psioa.Action{leak}, nil)).
		AddDet("idle", req, "busy").
		AddDet("idle", corrupt, "corrupted").
		AddDet("busy", rsp, "idle").
		AddDet("busy", leak, "busy").
		AddDet("busy", corrupt, "corrupted").
		AddDet("corrupted", req, "corrupted").
		AddDet("corrupted", leak, "corrupted").
		MustBuild()
	return structured.NewSet(t, psioa.NewActionSet(req, rsp))
}

func TestEActAAct(t *testing.T) {
	s := server("s")
	if !s.EAct("idle").Equal(psioa.NewActionSet("req_s")) {
		t.Errorf("EAct(idle) = %v", s.EAct("idle"))
	}
	if !structured.AAct(s, "idle").Equal(psioa.NewActionSet("corrupt_s")) {
		t.Errorf("AAct(idle) = %v", structured.AAct(s, "idle"))
	}
	if !structured.AAct(s, "busy").Equal(psioa.NewActionSet("leak_s", "corrupt_s")) {
		t.Errorf("AAct(busy) = %v", structured.AAct(s, "busy"))
	}
}

func TestDerivedMappings(t *testing.T) {
	s := server("s")
	if !structured.EI(s, "idle").Equal(psioa.NewActionSet("req_s")) {
		t.Errorf("EI = %v", structured.EI(s, "idle"))
	}
	if !structured.EO(s, "busy").Equal(psioa.NewActionSet("rsp_s")) {
		t.Errorf("EO = %v", structured.EO(s, "busy"))
	}
	if !structured.AI(s, "idle").Equal(psioa.NewActionSet("corrupt_s")) {
		t.Errorf("AI = %v", structured.AI(s, "idle"))
	}
	if !structured.AO(s, "busy").Equal(psioa.NewActionSet("leak_s")) {
		t.Errorf("AO = %v", structured.AO(s, "busy"))
	}
}

func TestDefaultEActIsExt(t *testing.T) {
	c := testaut.Coin("c", 0.5)
	s := structured.New(c, nil)
	if !s.EAct("h").Equal(psioa.NewActionSet("heads_c")) {
		t.Errorf("default EAct = %v", s.EAct("h"))
	}
	if len(structured.AAct(s, "h")) != 0 {
		t.Error("default AAct should be empty")
	}
}

func TestValidateStructured(t *testing.T) {
	if err := structured.Validate(server("s"), 100); err != nil {
		t.Errorf("valid structured automaton rejected: %v", err)
	}
	// EAct containing a non-external action is invalid.
	c := testaut.Coin("c", 0.5)
	bad := structured.New(c, func(q psioa.State) psioa.ActionSet {
		return psioa.NewActionSet("flip_c") // internal!
	})
	if err := structured.Validate(bad, 100); err == nil {
		t.Error("EAct ⊄ ext accepted")
	}
}

func TestUniverses(t *testing.T) {
	s := server("s")
	aa, err := structured.AActUniverse(s, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !aa.Equal(psioa.NewActionSet("leak_s", "corrupt_s")) {
		t.Errorf("AActUniverse = %v", aa)
	}
	ea, err := structured.EActUniverse(s, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !ea.Equal(psioa.NewActionSet("req_s", "rsp_s")) {
		t.Errorf("EActUniverse = %v", ea)
	}
}

func TestStructuredCompatibility(t *testing.T) {
	// A client that drives the server via its environment interface: shared
	// actions req/rsp are environment actions of both — compatible.
	s := server("s")
	clientT := psioa.NewBuilder("client", "c0").
		AddState("c0", psioa.NewSignature([]psioa.Action{"rsp_s"}, []psioa.Action{"req_s"}, nil)).
		AddState("c1", psioa.NewSignature([]psioa.Action{"rsp_s"}, nil, nil)).
		AddDet("c0", "req_s", "c1").
		AddDet("c0", "rsp_s", "c0").
		AddDet("c1", "rsp_s", "c0").
		MustBuild()
	client := structured.NewSet(clientT, psioa.NewActionSet("req_s", "rsp_s"))
	if err := structured.CheckCompatible(1000, s, client); err != nil {
		t.Errorf("compatible pair rejected: %v", err)
	}
	// An eavesdropper that listens on the adversary action leak_s: shared
	// action is not an environment action of the server — incompatible as
	// *structured* automata (though fine as plain PSIOA).
	evilT := psioa.NewBuilder("evil", "e0").
		AddState("e0", psioa.NewSignature([]psioa.Action{"leak_s"}, nil, nil)).
		AddDet("e0", "leak_s", "e0").
		MustBuild()
	evil := structured.NewSet(evilT, psioa.NewActionSet("leak_s"))
	if err := psioa.CheckPartiallyCompatible(1000, s, evilT); err != nil {
		t.Fatalf("plain compatibility should hold: %v", err)
	}
	if err := structured.CheckCompatible(1000, s, evil); err == nil {
		t.Error("adversary-action sharing accepted as structured-compatible")
	}
}

func TestStructuredCompose(t *testing.T) {
	s1, s2 := server("a"), server("b")
	p, err := structured.Compose(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	q := p.Start()
	if !p.EAct(q).Equal(psioa.NewActionSet("req_a", "req_b")) {
		t.Errorf("composed EAct = %v", p.EAct(q))
	}
	if !structured.AAct(p, q).Equal(psioa.NewActionSet("corrupt_a", "corrupt_b")) {
		t.Errorf("composed AAct = %v", structured.AAct(p, q))
	}
	// Flattening.
	s3 := server("c")
	nested := structured.MustCompose(structured.MustCompose(s1, s2), s3)
	flat := structured.MustCompose(s1, s2, s3)
	if nested.ID() != flat.ID() || len(nested.Components()) != 3 {
		t.Error("structured composition flattening broken")
	}
}

func TestStructuredHide(t *testing.T) {
	s := server("s")
	h := structured.HideSet(s, psioa.NewActionSet("rsp_s"))
	// rsp becomes internal: removed from EAct and from ext.
	if h.EAct("busy").Has("rsp_s") {
		t.Error("hidden action still in EAct")
	}
	if h.Sig("busy").Out.Has("rsp_s") || !h.Sig("busy").Int.Has("rsp_s") {
		t.Errorf("hide signature wrong: %v", h.Sig("busy"))
	}
	// AAct unchanged.
	if !structured.AAct(h, "busy").Equal(psioa.NewActionSet("leak_s", "corrupt_s")) {
		t.Errorf("AAct after hide = %v", structured.AAct(h, "busy"))
	}
	if err := structured.Validate(h, 100); err != nil {
		t.Errorf("hidden structured automaton invalid: %v", err)
	}
}

func TestStructuredPCA(t *testing.T) {
	// A PCA over structured constituents: EAct_X(q) = EAct(config) \ hidden.
	sA := server("a")
	reg := pca.MapRegistry{}.Register(sA)
	init := pca.NewConfig(map[string]psioa.State{"a": "idle"})
	x := pca.MustNew("X", reg, init, pca.WithHidden(func(c *pca.Config) psioa.ActionSet {
		return psioa.NewActionSet() // nothing hidden
	}))
	sx := structured.StructurePCA(x, sA)
	q := sx.Start()
	if !sx.EAct(q).Equal(psioa.NewActionSet("req_a")) {
		t.Errorf("SPCA EAct = %v", sx.EAct(q))
	}
	if !structured.AAct(sx, q).Equal(psioa.NewActionSet("corrupt_a")) {
		t.Errorf("SPCA AAct = %v", structured.AAct(sx, q))
	}
	if err := structured.Validate(sx, 1000); err != nil {
		t.Errorf("SPCA invalid as structured automaton: %v", err)
	}
}

func TestStructuredPCADefaultConstituent(t *testing.T) {
	// Constituents without a registered EAct default to fully environment-
	// facing.
	c := testaut.Coin("c", 0.5)
	reg := pca.MapRegistry{}.Register(c)
	init := pca.NewConfig(map[string]psioa.State{"c": "q0"})
	x := pca.MustNew("X", reg, init)
	sx := structured.StructurePCA(x)
	// After flipping, the configuration is at h or t with an output action.
	eta := sx.Trans(sx.Start(), "flip_c")
	for _, q2 := range eta.Support() {
		ea := sx.EAct(q2)
		if len(ea) != 1 {
			t.Errorf("default SPCA EAct at %q = %v", q2, ea)
		}
	}
}

func TestComposeSPCA(t *testing.T) {
	mk := func(id string) *structured.StructuredPCA {
		s := server(id)
		reg := pca.MapRegistry{}.Register(s)
		init := pca.NewConfig(map[string]psioa.State{id: "idle"})
		return structured.StructurePCA(pca.MustNew("X_"+id, reg, init), s)
	}
	x1, x2 := mk("a"), mk("b")
	comp, err := structured.ComposeSPCA(x1, x2)
	if err != nil {
		t.Fatal(err)
	}
	q := comp.Start()
	if !comp.EAct(q).Equal(psioa.NewActionSet("req_a", "req_b")) {
		t.Errorf("composed SPCA EAct = %v", comp.EAct(q))
	}
	// Lemma 4.23: the composition is still a valid structured PCA.
	if err := structured.Validate(comp, 2000); err != nil {
		t.Errorf("composed SPCA invalid: %v", err)
	}
	if err := pca.ValidatePCA(comp, 2000); err != nil {
		t.Errorf("composed SPCA violates PCA constraints: %v", err)
	}
	// Duplicate constituents rejected.
	if _, err := structured.ComposeSPCA(x1, mk("a")); err == nil {
		t.Error("duplicate constituent accepted")
	}
}
