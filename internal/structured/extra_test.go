package structured_test

import (
	"testing"

	"repro/internal/pca"
	"repro/internal/psioa"
	"repro/internal/structured"
	"repro/internal/testaut"
)

func TestHideOverStructuredPCA(t *testing.T) {
	// Hiding a structured PCA's environment output removes it from EAct.
	s := server("a")
	reg := pca.MapRegistry{}.Register(s)
	init := pca.NewConfig(map[string]psioa.State{"a": "idle"})
	x := pca.MustNew("X", reg, init)
	sx := structured.StructurePCA(x, s)
	h := structured.HideSet(sx, psioa.NewActionSet("rsp_a"))
	// Find a state where rsp would be offered: idle --req--> busy.
	q := sx.Trans(sx.Start(), "req_a").Support()[0]
	if h.EAct(q).Has("rsp_a") {
		t.Error("hidden action still environment-facing")
	}
	if !h.Sig(q).Int.Has("rsp_a") {
		t.Errorf("hidden action not internal: %v", h.Sig(q))
	}
	if err := structured.Validate(h, 1000); err != nil {
		t.Errorf("hidden structured PCA invalid: %v", err)
	}
}

func TestCheckCompatibleThreeWay(t *testing.T) {
	a, b, c := server("a"), server("b"), server("c")
	if err := structured.CheckCompatible(5000, a, b, c); err != nil {
		t.Errorf("three independent servers rejected: %v", err)
	}
}

func TestEActUniverseOnProduct(t *testing.T) {
	p := structured.MustCompose(server("a"), server("b"))
	ea, err := structured.EActUniverse(p, 5000)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []psioa.Action{"req_a", "rsp_a", "req_b", "rsp_b"} {
		if !ea.Has(want) {
			t.Errorf("EActUniverse missing %s: %v", want, ea)
		}
	}
	aa, err := structured.AActUniverse(p, 5000)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []psioa.Action{"leak_a", "corrupt_a", "leak_b", "corrupt_b"} {
		if !aa.Has(want) {
			t.Errorf("AActUniverse missing %s: %v", want, aa)
		}
	}
}

func TestStructuredWrapsComposite(t *testing.T) {
	// NewSet over an (unstructured) product classifies per projected state.
	inner := psioa.MustCompose(testaut.Coin("p", 0.5), testaut.Coin("q", 0.5))
	s := structured.NewSet(inner, psioa.NewActionSet("heads_p", "tails_p"))
	ex, err := psioa.Explore(s, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range ex.States {
		ea := s.EAct(q)
		if ea.Has("heads_q") || ea.Has("tails_q") {
			t.Fatalf("q-coin actions leaked into EAct at %q", q)
		}
	}
	if err := structured.Validate(s, 1000); err != nil {
		t.Fatal(err)
	}
}

func TestStructuredCompatAtDelegation(t *testing.T) {
	// A structured wrapper over an incompatible product surfaces the error.
	mk := func(id string) *psioa.Table {
		return psioa.NewBuilder(id, "q").
			AddState("q", psioa.NewSignature(nil, []psioa.Action{"o"}, nil)).
			AddDet("q", "o", "q").
			MustBuild()
	}
	inner := psioa.MustCompose(mk("a"), mk("b"))
	s := structured.New(inner, nil)
	if err := structured.Validate(s, 10); err == nil {
		t.Error("incompatible product hidden by structured wrapper")
	}
}
