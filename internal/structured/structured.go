// Package structured implements the security layer's structured automata
// (Section 4.7): PSIOA extended with an environment-action mapping EAct
// that partitions external actions into environment-facing and
// adversary-facing ones (Def 4.17), structured compatibility and
// composition (Defs 4.18–4.19), hiding on structured automata, and
// structured configurations/PCA (Defs 4.20–4.22, Lemma 4.23).
package structured

import (
	"fmt"

	"repro/internal/psioa"
)

// SPSIOA is a structured PSIOA (Def 4.17): a PSIOA together with an
// environment action mapping EAct with EAct(q) ⊆ ext(A)(q).
type SPSIOA interface {
	psioa.PSIOA
	// EAct returns the environment actions at state q.
	EAct(q psioa.State) psioa.ActionSet
}

// Structured wraps a PSIOA with an explicit environment-action mapping.
type Structured struct {
	psioa.PSIOA
	// EActFn maps each state to its environment actions. nil means all
	// external actions are environment actions (no adversary interface).
	EActFn func(q psioa.State) psioa.ActionSet
}

// New wraps a with the given environment-action mapping.
func New(a psioa.PSIOA, eact func(q psioa.State) psioa.ActionSet) *Structured {
	return &Structured{PSIOA: a, EActFn: eact}
}

// NewSet wraps a with a state-independent environment-action set: at every
// state the environment actions are ext(q) ∩ set.
func NewSet(a psioa.PSIOA, set psioa.ActionSet) *Structured {
	fixed := set.Copy()
	return &Structured{PSIOA: a, EActFn: func(q psioa.State) psioa.ActionSet {
		return a.Sig(q).Ext().Intersect(fixed)
	}}
}

// EAct implements SPSIOA.
func (s *Structured) EAct(q psioa.State) psioa.ActionSet {
	if s.EActFn == nil {
		return s.Sig(q).Ext()
	}
	return s.EActFn(q)
}

// CompatAt delegates to the wrapped automaton.
func (s *Structured) CompatAt(q psioa.State) error {
	if cc, ok := s.PSIOA.(interface{ CompatAt(psioa.State) error }); ok {
		return cc.CompatAt(q)
	}
	return nil
}

// AAct returns the adversary action mapping AAct(q) = ext(q) \ EAct(q)
// (Def 4.17).
func AAct(s SPSIOA, q psioa.State) psioa.ActionSet {
	return s.Sig(q).Ext().Minus(s.EAct(q))
}

// EI returns the environment inputs EAct(q) ∩ in(q).
func EI(s SPSIOA, q psioa.State) psioa.ActionSet { return s.EAct(q).Intersect(s.Sig(q).In) }

// EO returns the environment outputs EAct(q) ∩ out(q).
func EO(s SPSIOA, q psioa.State) psioa.ActionSet { return s.EAct(q).Intersect(s.Sig(q).Out) }

// AI returns the adversary inputs AAct(q) ∩ in(q).
func AI(s SPSIOA, q psioa.State) psioa.ActionSet { return AAct(s, q).Intersect(s.Sig(q).In) }

// AO returns the adversary outputs AAct(q) ∩ out(q).
func AO(s SPSIOA, q psioa.State) psioa.ActionSet { return AAct(s, q).Intersect(s.Sig(q).Out) }

// Validate checks Def 4.17's constraint EAct(q) ⊆ ext(q) on the reachable
// fragment, on top of the underlying PSIOA validity.
func Validate(s SPSIOA, limit int) error {
	if err := psioa.Validate(s, limit); err != nil {
		return err
	}
	ex, err := psioa.Explore(s, limit)
	if err != nil {
		return err
	}
	for _, q := range ex.States {
		if extra := s.EAct(q).Minus(s.Sig(q).Ext()); len(extra) > 0 {
			return fmt.Errorf("structured: %q state %q: EAct contains non-external actions %v", s.ID(), q, extra)
		}
	}
	return nil
}

// AActUniverse returns the union of AAct over the reachable states — the
// AAct_A set used by hide(A‖Adv, AAct_A) in the secure-emulation layer.
func AActUniverse(s SPSIOA, limit int) (psioa.ActionSet, error) {
	ex, err := psioa.Explore(s, limit)
	if err != nil {
		return nil, err
	}
	out := psioa.NewActionSet()
	for _, q := range ex.States {
		out = out.Union(AAct(s, q))
	}
	return out, nil
}

// EActUniverse returns the union of EAct over the reachable states.
func EActUniverse(s SPSIOA, limit int) (psioa.ActionSet, error) {
	ex, err := psioa.Explore(s, limit)
	if err != nil {
		return nil, err
	}
	out := psioa.NewActionSet()
	for _, q := range ex.States {
		out = out.Union(s.EAct(q))
	}
	return out, nil
}

// CheckCompatible verifies structured partial compatibility (Def 4.18) on
// the reachable fragment of the composition: the automata are partially
// compatible as PSIOA, and at every reachable state every shared action is
// an environment action of both.
func CheckCompatible(limit int, ss ...SPSIOA) error {
	auts := make([]psioa.PSIOA, len(ss))
	for i, s := range ss {
		auts[i] = s
	}
	p, err := psioa.Compose(auts...)
	if err != nil {
		return err
	}
	ex, err := psioa.Explore(p, limit)
	if err != nil {
		return err
	}
	for _, q := range ex.States {
		qs := p.Split(q)
		for i := range ss {
			for j := i + 1; j < len(ss); j++ {
				shared := ss[i].Sig(qs[i]).All().Intersect(ss[j].Sig(qs[j]).All())
				envBoth := ss[i].EAct(qs[i]).Intersect(ss[j].EAct(qs[j]))
				if !shared.Equal(envBoth) {
					return fmt.Errorf("structured: %q and %q share non-environment actions %v at state %q",
						ss[i].ID(), ss[j].ID(), shared.Minus(envBoth), q)
				}
			}
		}
	}
	return nil
}

// Product is the structured composition of Def 4.19:
// (A₁,EAct₁)‖(A₂,EAct₂) = (A₁‖A₂, EAct₁ ∪ EAct₂).
type Product struct {
	*psioa.Product
	comps []SPSIOA
}

// Compose builds the structured composition, flattening nested structured
// products.
func Compose(ss ...SPSIOA) (*Product, error) {
	var flat []SPSIOA
	for _, s := range ss {
		if p, ok := s.(*Product); ok {
			flat = append(flat, p.comps...)
		} else {
			flat = append(flat, s)
		}
	}
	auts := make([]psioa.PSIOA, len(flat))
	for i, s := range flat {
		auts[i] = s
	}
	base, err := psioa.Compose(auts...)
	if err != nil {
		return nil, err
	}
	return &Product{Product: base, comps: flat}, nil
}

// MustCompose is Compose that panics on error.
func MustCompose(ss ...SPSIOA) *Product {
	p, err := Compose(ss...)
	if err != nil {
		panic(err)
	}
	return p
}

// Components returns the flattened structured components.
func (p *Product) Components() []SPSIOA { return p.comps }

// EAct implements SPSIOA per Def 4.19: the union of the component
// environment actions at the projected states.
func (p *Product) EAct(q psioa.State) psioa.ActionSet {
	qs := p.Split(q)
	out := psioa.NewActionSet()
	for i, s := range p.comps {
		out = out.Union(s.EAct(qs[i]))
	}
	return out
}

// Hidden is hiding on structured automata (§4.7):
// hide((A,EAct), S) = (hide(A,S), EAct \ S).
type Hidden struct {
	*psioa.Hidden
	inner SPSIOA
	s     func(q psioa.State) psioa.ActionSet
}

// Hide hides the state-dependent output set on a structured automaton.
func Hide(inner SPSIOA, s func(q psioa.State) psioa.ActionSet) *Hidden {
	return &Hidden{Hidden: psioa.Hide(inner, s), inner: inner, s: s}
}

// HideSet hides a fixed output set at every state.
func HideSet(inner SPSIOA, set psioa.ActionSet) *Hidden {
	fixed := set.Copy()
	return Hide(inner, func(psioa.State) psioa.ActionSet { return fixed })
}

// EAct implements SPSIOA: EAct(q) \ S(q).
func (h *Hidden) EAct(q psioa.State) psioa.ActionSet {
	return h.inner.EAct(q).Minus(h.s(q))
}
