// Package bounded implements the resource-bounded layer of Section 4.1–4.5:
// b-time-bounded PSIOA and PCA (Defs 4.1–4.2), the boundedness of
// composition and hiding (Lemmas 4.3/4.5, B.1–B.3), bounded schedulers and
// scheduler families (Defs 4.6, 4.9–4.10), PSIOA families (Defs 4.7–4.8)
// and polynomial/negligible asymptotics.
//
// The paper states bounds in terms of Turing machines that decode the
// bit-string representations and compute next states in time ≤ b. We render
// this with two measurable quantities:
//
//   - description length: the maximum bit length of the canonical encodings
//     ⟨q⟩, ⟨a⟩, ⟨tr⟩ (and ⟨C⟩, ⟨φ⟩, ⟨h⟩ for PCA) over the reachable
//     fragment — Def 4.1 item 1 and Def 4.2 item 2 exactly;
//   - query work: an instrumented operation counter that charges each
//     Sig/Trans evaluation the number of bits it touches — the analogue of
//     the machines' running time.
//
// The lemma checks (CompositionBound, HidingBound) then verify the paper's
// linear bounds B(A₁‖A₂) ≤ c·(B₁+B₂) with explicit empirical constants.
package bounded

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/codec"
	"repro/internal/psioa"
)

// Desc is the description-length report of an automaton: the bit lengths of
// the canonical representations over the reachable fragment.
type Desc struct {
	// MaxStateBits is max |⟨q⟩| over reachable q.
	MaxStateBits int
	// MaxActionBits is max |⟨a⟩| over reachable actions.
	MaxActionBits int
	// MaxTransBits is max |⟨tr⟩| over reachable transitions (q, a, η).
	MaxTransBits int
	// MaxConfigBits, MaxCreatedBits, MaxHiddenBits are the PCA components
	// of Def 4.2 (zero for plain PSIOA).
	MaxConfigBits  int
	MaxCreatedBits int
	MaxHiddenBits  int
	// States is the number of reachable states inspected.
	States int
	// Truncated reports whether the exploration hit its limit.
	Truncated bool
}

// B returns the overall bound: the maximum of all component bit lengths —
// the least b for which the automaton is b-bounded in the description sense.
func (d *Desc) B() int {
	b := d.MaxStateBits
	for _, v := range []int{d.MaxActionBits, d.MaxTransBits, d.MaxConfigBits, d.MaxCreatedBits, d.MaxHiddenBits} {
		if v > b {
			b = v
		}
	}
	return b
}

// String renders the report.
func (d *Desc) String() string {
	return fmt.Sprintf("B=%d (state=%d action=%d trans=%d config=%d created=%d hidden=%d, %d states%s)",
		d.B(), d.MaxStateBits, d.MaxActionBits, d.MaxTransBits, d.MaxConfigBits, d.MaxCreatedBits, d.MaxHiddenBits,
		d.States, truncStr(d.Truncated))
}

func truncStr(t bool) string {
	if t {
		return ", truncated"
	}
	return ""
}

// EncodeTransition produces ⟨tr⟩: the canonical bit-string representation
// of a transition (q, a, η), with the measure rendered as sorted
// (state, probability) pairs.
func EncodeTransition(q psioa.State, a psioa.Action, eta *psioa.Dist) string {
	support := eta.Support()
	sort.Slice(support, func(i, j int) bool { return support[i] < support[j] })
	pairs := make([]string, len(support))
	for i, s := range support {
		pairs[i] = codec.EncodeTuple([]string{string(s), strconv.FormatFloat(eta.P(s), 'g', 17, 64)})
	}
	return codec.EncodeTuple([]string{string(q), string(a), codec.EncodeTuple(pairs)})
}

// pcaLike exposes the PCA attributes needed by Def 4.2 without importing
// the pca package (avoiding a dependency cycle: pca builds on psioa only).
type pcaLike interface {
	ConfigKey(q psioa.State) string
	CreatedIDs(q psioa.State, a psioa.Action) []string
	HiddenSet(q psioa.State) psioa.ActionSet
}

// Describe computes the description-length report of the automaton over its
// reachable fragment (bounded by limit states). If the automaton implements
// the PCA attribute accessors (see PCAAdapter), the configuration, created
// and hidden-actions encodings of Def 4.2 are measured as well.
func Describe(a psioa.PSIOA, limit int) (*Desc, error) {
	ex, err := psioa.Explore(a, limit)
	if err != nil {
		return nil, err
	}
	d := &Desc{States: len(ex.States), Truncated: ex.Truncated}
	pl, isPCA := a.(pcaLike)
	for _, q := range ex.States {
		if n := codec.BitLen(string(q)); n > d.MaxStateBits {
			d.MaxStateBits = n
		}
		sig := ex.Sigs[q]
		if isPCA {
			if n := codec.BitLen(pl.ConfigKey(q)); n > d.MaxConfigBits {
				d.MaxConfigBits = n
			}
			if n := codec.BitLen(pl.HiddenSet(q).Key()); n > d.MaxHiddenBits {
				d.MaxHiddenBits = n
			}
		}
		for act := range sig.All() {
			if n := codec.BitLen(string(act)); n > d.MaxActionBits {
				d.MaxActionBits = n
			}
			eta := a.Trans(q, act)
			if n := codec.BitLen(EncodeTransition(q, act, eta)); n > d.MaxTransBits {
				d.MaxTransBits = n
			}
			if isPCA {
				created := pl.CreatedIDs(q, act)
				if n := codec.BitLen(codec.EncodeSortedSet(created)); n > d.MaxCreatedBits {
					d.MaxCreatedBits = n
				}
			}
		}
	}
	return d, nil
}

// BoundReport is the result of an empirical linear-bound check for
// composition (Lemma 4.3) or hiding (Lemma 4.5).
type BoundReport struct {
	// B1, B2 are the component bounds; B12 the bound of the combined
	// automaton.
	B1, B2, B12 int
	// C is the empirical constant B12 / (B1 + B2).
	C float64
}

// String renders the report.
func (r *BoundReport) String() string {
	return fmt.Sprintf("B1=%d B2=%d B12=%d c=%.3f", r.B1, r.B2, r.B12, r.C)
}

// CompositionBound measures the empirical constant of Lemma 4.3/B.1:
// B(A₁‖A₂) ≤ c_comp · (B(A₁)+B(A₂)). The lemma asserts a universal
// constant exists; the report exposes the measured ratio for this instance.
func CompositionBound(a1, a2 psioa.PSIOA, limit int) (*BoundReport, error) {
	d1, err := Describe(a1, limit)
	if err != nil {
		return nil, err
	}
	d2, err := Describe(a2, limit)
	if err != nil {
		return nil, err
	}
	p, err := psioa.Compose(a1, a2)
	if err != nil {
		return nil, err
	}
	d12, err := Describe(p, limit)
	if err != nil {
		return nil, err
	}
	r := &BoundReport{B1: d1.B(), B2: d2.B(), B12: d12.B()}
	if s := d1.B() + d2.B(); s > 0 {
		r.C = float64(d12.B()) / float64(s)
	}
	return r, nil
}

// HidingBound measures the empirical constant of Lemma 4.5/B.3:
// B(hide(A,S)) ≤ c_hide · (B(A) + B(S)), where B(S) is the bit length of
// the canonical encoding of the hidden set (our rendering of "S is b′-time
// recognizable": the recogniser is table-driven with description
// proportional to the set encoding).
func HidingBound(a psioa.PSIOA, s psioa.ActionSet, limit int) (*BoundReport, error) {
	da, err := Describe(a, limit)
	if err != nil {
		return nil, err
	}
	dh, err := Describe(psioa.HideSet(a, s), limit)
	if err != nil {
		return nil, err
	}
	bS := codec.BitLen(s.Key())
	r := &BoundReport{B1: da.B(), B2: bS, B12: dh.B()}
	if sum := da.B() + bS; sum > 0 {
		r.C = float64(dh.B()) / float64(sum)
	}
	return r, nil
}
