package bounded

import (
	"fmt"
	"math"

	"repro/internal/psioa"
	"repro/internal/sched"
)

// Fn is a function ℕ → ℝ≥0, used for time bounds b(k), polynomial bounds
// p(k) and error bounds ε(k) of families.
type Fn func(k int) float64

// Poly returns the polynomial Σ coeffs[i]·kⁱ.
func Poly(coeffs ...float64) Fn {
	cp := append([]float64(nil), coeffs...)
	return func(k int) float64 {
		v, pow := 0.0, 1.0
		for _, c := range cp {
			v += c * pow
			pow *= float64(k)
		}
		return v
	}
}

// Negl returns the negligible function base^(−k) (base > 1). The canonical
// choice base = 2 gives 2^−k.
func Negl(base float64) Fn {
	return func(k int) float64 { return math.Pow(base, -float64(k)) }
}

// Const returns the constant function.
func Const(c float64) Fn { return func(int) float64 { return c } }

// IsNegligibleOn empirically checks the defining property of negligibility
// on a finite index range: for the given polynomial p, ε(k) ≤ 1/p(k) for
// all k ≥ from in the range. This is the only machine-checkable rendering
// of an asymptotic statement; the range should extend well past any
// constant behaviour.
func IsNegligibleOn(eps Fn, p Fn, from, to int) bool {
	for k := from; k <= to; k++ {
		if pv := p(k); pv > 0 && eps(k) > 1/pv {
			return false
		}
	}
	return true
}

// Family is a PSIOA family (Def 4.7): an indexed set (A_k) of automata.
type Family func(k int) psioa.PSIOA

// SchedulerFamily is a scheduler family (Def 4.9): an indexed set of
// schedulers, one per security parameter.
type SchedulerFamily func(k int) sched.Scheduler

// ComposeFamilies composes two families pointwise (Def 4.7):
// (A‖B)_k = A_k ‖ B_k.
func ComposeFamilies(fs ...Family) Family {
	return func(k int) psioa.PSIOA {
		auts := make([]psioa.PSIOA, len(fs))
		for i, f := range fs {
			auts[i] = f(k)
		}
		return psioa.MustCompose(auts...)
	}
}

// FamilyDesc describes every member of the family for k in [kmin, kmax].
func FamilyDesc(f Family, kmin, kmax, limit int) (map[int]*Desc, error) {
	out := make(map[int]*Desc, kmax-kmin+1)
	for k := kmin; k <= kmax; k++ {
		d, err := Describe(f(k), limit)
		if err != nil {
			return nil, fmt.Errorf("bounded: family member k=%d: %w", k, err)
		}
		out[k] = d
	}
	return out, nil
}

// CheckTimeBoundedFamily verifies Def 4.8 on a finite range: every A_k is
// b(k)-bounded in the description sense, i.e. Describe(A_k).B() ≤ b(k).
func CheckTimeBoundedFamily(f Family, b Fn, kmin, kmax, limit int) error {
	descs, err := FamilyDesc(f, kmin, kmax, limit)
	if err != nil {
		return err
	}
	for k := kmin; k <= kmax; k++ {
		if got := float64(descs[k].B()); got > b(k) {
			return fmt.Errorf("bounded: family member k=%d has B=%v > b(k)=%v", k, got, b(k))
		}
	}
	return nil
}

// CheckBoundedSchedulerFamily verifies Def 4.10 on a finite range: every
// σ_k is b(k)-bounded (never schedules more than b(k) actions) against the
// corresponding automaton family member.
func CheckBoundedSchedulerFamily(f Family, sf SchedulerFamily, b Fn, kmin, kmax int) error {
	for k := kmin; k <= kmax; k++ {
		if err := sched.IsBounded(f(k), sf(k), int(b(k))); err != nil {
			return fmt.Errorf("bounded: scheduler family member k=%d: %w", k, err)
		}
	}
	return nil
}
