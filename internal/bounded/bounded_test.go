package bounded_test

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/bounded"
	"repro/internal/pca"
	"repro/internal/psioa"
	"repro/internal/sched"
	"repro/internal/testaut"
)

func TestDescribeCoin(t *testing.T) {
	c := testaut.Coin("c", 0.5)
	d, err := bounded.Describe(c, 100)
	if err != nil {
		t.Fatal(err)
	}
	if d.States != 4 {
		t.Errorf("States = %d, want 4", d.States)
	}
	// Longest action name: "heads_c"/"tails_c" = 7 bytes = 56 bits.
	if d.MaxActionBits != 56 {
		t.Errorf("MaxActionBits = %d, want 56", d.MaxActionBits)
	}
	if d.MaxStateBits != 4*8 {
		t.Errorf("MaxStateBits = %d, want 32 (\"done\")", d.MaxStateBits)
	}
	if d.MaxTransBits <= d.MaxActionBits {
		t.Error("transition encoding should dominate action encoding")
	}
	if d.B() != d.MaxTransBits {
		t.Errorf("B = %d, want MaxTransBits = %d", d.B(), d.MaxTransBits)
	}
	if d.Truncated {
		t.Error("unexpected truncation")
	}
	if !strings.Contains(d.String(), "B=") {
		t.Error("String() malformed")
	}
}

func TestDescribePCAComponents(t *testing.T) {
	reg := pca.MapRegistry{}.Register(testaut.Coin("c1", 0.5))
	init := pca.NewConfig(map[string]psioa.State{"c1": "q0"})
	x := pca.MustNew("X", reg, init)
	d, err := bounded.Describe(pca.DescAdapter{PCA: x}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if d.MaxConfigBits == 0 {
		t.Error("PCA config bits not measured")
	}
	// Plain PSIOA has no PCA components.
	dp, _ := bounded.Describe(testaut.Coin("c", 0.5), 100)
	if dp.MaxConfigBits != 0 || dp.MaxCreatedBits != 0 || dp.MaxHiddenBits != 0 {
		t.Error("plain PSIOA reported PCA components")
	}
}

func TestCompositionBoundLemma(t *testing.T) {
	// Lemma 4.3/B.1: B(A1||A2) ≤ c·(B1+B2) with a universal constant. Our
	// tuple encoding gives c close to 1 (separator overhead only); assert a
	// generous c ≤ 3 across a sweep of sizes, matching the lemma's "there
	// exists a constant".
	for _, n := range []int{2, 5, 10, 20} {
		a1 := testaut.Counter("a1", n)
		a2 := testaut.Counter("a2", 2*n)
		r, err := bounded.CompositionBound(a1, a2, 10000)
		if err != nil {
			t.Fatal(err)
		}
		if r.C > 3 {
			t.Errorf("n=%d: empirical c=%v exceeds 3 (%v)", n, r.C, r)
		}
		if r.B12 < r.B1 || r.B12 < r.B2 {
			t.Errorf("n=%d: composition bound below component bound: %v", n, r)
		}
	}
}

func TestCompositionBoundPCA(t *testing.T) {
	// Lemma B.2: PCA composition is bounded too.
	mk := func(id string) pca.PCA {
		reg := pca.MapRegistry{}.Register(testaut.Coin("c_"+id, 0.5))
		init := pca.NewConfig(map[string]psioa.State{"c_" + id: "q0"})
		return pca.MustNew("X_"+id, reg, init)
	}
	x1, x2 := mk("a"), mk("b")
	d1, _ := bounded.Describe(pca.DescAdapter{PCA: x1}, 1000)
	d2, _ := bounded.Describe(pca.DescAdapter{PCA: x2}, 1000)
	comp := pca.MustComposePCA(x1, x2)
	d12, err := bounded.Describe(pca.DescAdapter{PCA: comp}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	c := float64(d12.B()) / float64(d1.B()+d2.B())
	if c > 3 {
		t.Errorf("PCA composition constant %v exceeds 3", c)
	}
	if d12.MaxConfigBits == 0 {
		t.Error("composed PCA config bits not measured")
	}
}

func TestHidingBoundLemma(t *testing.T) {
	// Lemma 4.5/B.3: hiding is bounded with a universal constant; in fact
	// hiding never increases the description in our encoding.
	a := testaut.Coin("c", 0.5)
	r, err := bounded.HidingBound(a, psioa.NewActionSet("heads_c", "tails_c"), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if r.C > 1 {
		t.Errorf("hiding constant %v exceeds 1: %v", r.C, r)
	}
	if r.B12 > r.B1 {
		t.Errorf("hiding increased the description bound: %v", r)
	}
}

func TestEncodeTransitionCanonical(t *testing.T) {
	c := testaut.Coin("c", 0.5)
	e1 := bounded.EncodeTransition("q0", "flip_c", c.Trans("q0", "flip_c"))
	e2 := bounded.EncodeTransition("q0", "flip_c", c.Trans("q0", "flip_c"))
	if e1 != e2 {
		t.Error("transition encoding not deterministic")
	}
	d := testaut.Coin("d", 0.25)
	if e1 == bounded.EncodeTransition("q0", "flip_c", d.Trans("q0", "flip_d")) {
		t.Error("different measures share an encoding")
	}
}

func TestInstrumentCounters(t *testing.T) {
	var ctr bounded.Counter
	c := testaut.Coin("c", 0.5)
	inst := bounded.Instrument(c, &ctr)
	if inst.ID() != "c" || inst.Start() != "q0" {
		t.Error("instrumented wrapper changed identity")
	}
	inst.Sig("q0")
	inst.Trans("q0", "flip_c")
	if ctr.SigQueries.Load() != 1 || ctr.TransQueries.Load() != 1 {
		t.Errorf("queries = %d/%d", ctr.SigQueries.Load(), ctr.TransQueries.Load())
	}
	if ctr.Work.Load() <= 0 || ctr.MaxQueryWork.Load() <= 0 {
		t.Error("no work recorded")
	}
	if ctr.MaxQueryWork.Load() > ctr.Work.Load() {
		t.Error("max per query exceeds total")
	}
}

func TestQueryWorkCompositionLinear(t *testing.T) {
	// The per-query work of the composed evaluator is within a constant of
	// the sum of component per-query works (the executable content of
	// Lemma 4.3's time bound).
	a1 := testaut.Counter("a1", 8)
	a2 := testaut.Counter("a2", 8)
	w1, _, err := bounded.QueryWork(a1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	w2, _, err := bounded.QueryWork(a2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	w12, _, err := bounded.QueryWork(psioa.MustCompose(a1, a2), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if c := float64(w12) / float64(w1+w2); c > 3 {
		t.Errorf("per-query work constant %v exceeds 3 (w1=%d w2=%d w12=%d)", c, w1, w2, w12)
	}
}

func TestPolyAndNegl(t *testing.T) {
	p := bounded.Poly(1, 2, 3) // 1 + 2k + 3k²
	if p(0) != 1 || p(2) != 17 {
		t.Errorf("Poly wrong: p(0)=%v p(2)=%v", p(0), p(2))
	}
	n := bounded.Negl(2)
	if math.Abs(n(3)-0.125) > 1e-12 {
		t.Errorf("Negl(2)(3) = %v", n(3))
	}
	if bounded.Const(5)(99) != 5 {
		t.Error("Const wrong")
	}
}

func TestIsNegligibleOn(t *testing.T) {
	if !bounded.IsNegligibleOn(bounded.Negl(2), bounded.Poly(0, 0, 1), 10, 40) {
		t.Error("2^-k should beat k² on [10,40]")
	}
	// 1/k is not negligible against k².
	inv := func(k int) float64 { return 1 / float64(k) }
	if bounded.IsNegligibleOn(inv, bounded.Poly(0, 0, 1), 10, 40) {
		t.Error("1/k accepted as negligible against k²")
	}
}

func TestFamilyHelpers(t *testing.T) {
	fam := bounded.Family(func(k int) psioa.PSIOA { return testaut.Counter(fmt.Sprintf("cnt%d", k), k) })
	descs, err := bounded.FamilyDesc(fam, 1, 5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(descs) != 5 {
		t.Errorf("descs = %d", len(descs))
	}
	// Description grows with k but stays within a generous linear bound.
	if err := bounded.CheckTimeBoundedFamily(fam, bounded.Poly(2000, 600), 1, 5, 1000); err != nil {
		t.Errorf("CheckTimeBoundedFamily: %v", err)
	}
	if err := bounded.CheckTimeBoundedFamily(fam, bounded.Const(1), 1, 5, 1000); err == nil {
		t.Error("absurd bound accepted")
	}
}

func TestComposeFamilies(t *testing.T) {
	f1 := bounded.Family(func(k int) psioa.PSIOA { return testaut.Counter(fmt.Sprintf("a%d", k), k) })
	f2 := bounded.Family(func(k int) psioa.PSIOA { return testaut.Counter(fmt.Sprintf("b%d", k), k) })
	comp := bounded.ComposeFamilies(f1, f2)
	m := comp(3)
	if m.ID() != "a3||b3" {
		t.Errorf("composed family member ID = %q", m.ID())
	}
}

func TestCheckBoundedSchedulerFamily(t *testing.T) {
	fam := bounded.Family(func(k int) psioa.PSIOA { return testaut.Coin(fmt.Sprintf("c%d", k), 0.5) })
	sf := bounded.SchedulerFamily(func(k int) sched.Scheduler {
		return &sched.Greedy{A: fam(k).(psioa.PSIOA), Bound: k}
	})
	if err := bounded.CheckBoundedSchedulerFamily(fam, sf, bounded.Poly(0, 1), 1, 5); err != nil {
		t.Errorf("bounded family rejected: %v", err)
	}
	// An unbounded scheduler family fails.
	bad := bounded.SchedulerFamily(func(k int) sched.Scheduler {
		return &sched.FuncSched{ID: "loop", Fn: func(f *psioa.Frag) *sched.Choice {
			ch := sched.Halt()
			ch.Add(psioa.Action(fmt.Sprintf("go_c%d", k)), 1)
			return ch
		}}
	})
	badFam := bounded.Family(func(k int) psioa.PSIOA { return testaut.OpenCoin(fmt.Sprintf("c%d", k), 0.5) })
	if err := bounded.CheckBoundedSchedulerFamily(badFam, bad, bounded.Poly(2), 1, 3); err == nil {
		t.Error("unbounded scheduler family accepted")
	}
}
