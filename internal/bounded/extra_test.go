package bounded_test

import (
	"strings"
	"testing"

	"repro/internal/bounded"
	"repro/internal/measure"
	"repro/internal/psioa"
	"repro/internal/testaut"
)

// unboundedCounter is an infinite-state functional automaton: exploration
// must truncate and Describe must report it.
func unboundedCounter() psioa.PSIOA {
	return &psioa.Func{
		Name:    "unbounded",
		StartSt: "x",
		SigFn: func(q psioa.State) psioa.Signature {
			return psioa.NewSignature(nil, nil, []psioa.Action{"grow"})
		},
		TransFn: func(q psioa.State, a psioa.Action) *psioa.Dist {
			return measure.Dirac(q + "x")
		},
	}
}

func TestDescribeTruncates(t *testing.T) {
	d, err := bounded.Describe(unboundedCounter(), 50)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Truncated {
		t.Error("infinite automaton not reported truncated")
	}
	if d.States != 50 {
		t.Errorf("States = %d, want 50", d.States)
	}
	// The description bound grows with the exploration depth: states are
	// unary-encoded here, so MaxStateBits ≈ 8·limit.
	if d.MaxStateBits < 8*40 {
		t.Errorf("MaxStateBits = %d, unexpectedly small", d.MaxStateBits)
	}
	if !strings.Contains(d.String(), "truncated") {
		t.Error("String does not mention truncation")
	}
}

func TestDescBIsMax(t *testing.T) {
	d := &bounded.Desc{MaxStateBits: 10, MaxActionBits: 99, MaxTransBits: 50, MaxConfigBits: 98}
	if d.B() != 99 {
		t.Errorf("B = %d, want 99", d.B())
	}
}

func TestEncodeTransitionSupportOrderCanonical(t *testing.T) {
	// The measure's support map iterates randomly; the encoding must not.
	d := measure.New[psioa.State]()
	d.Add("zz", 0.25)
	d.Add("aa", 0.25)
	d.Add("mm", 0.5)
	first := bounded.EncodeTransition("q", "a", d)
	for i := 0; i < 20; i++ {
		d2 := measure.New[psioa.State]()
		d2.Add("mm", 0.5)
		d2.Add("zz", 0.25)
		d2.Add("aa", 0.25)
		if bounded.EncodeTransition("q", "a", d2) != first {
			t.Fatal("encoding depends on insertion order")
		}
	}
}

func TestQueryWorkErrors(t *testing.T) {
	// Incompatible compositions error through QueryWork.
	mk := func(id string) *psioa.Table {
		return psioa.NewBuilder(id, "q").
			AddState("q", psioa.NewSignature(nil, []psioa.Action{"o"}, nil)).
			AddDet("q", "o", "q").
			MustBuild()
	}
	p := psioa.MustCompose(mk("a"), mk("b"))
	if _, _, err := bounded.QueryWork(p, 100); err == nil {
		t.Error("incompatible composition accepted")
	}
}

func TestBoundReportString(t *testing.T) {
	r := &bounded.BoundReport{B1: 1, B2: 2, B12: 3, C: 1.0}
	if !strings.Contains(r.String(), "c=1.000") {
		t.Errorf("String = %q", r.String())
	}
}

func TestInstrumentedCompatDelegation(t *testing.T) {
	mk := func(id string) *psioa.Table {
		return psioa.NewBuilder(id, "q").
			AddState("q", psioa.NewSignature(nil, []psioa.Action{"o"}, nil)).
			AddDet("q", "o", "q").
			MustBuild()
	}
	var c bounded.Counter
	inst := bounded.Instrument(psioa.MustCompose(mk("a"), mk("b")), &c)
	if err := inst.CompatAt(inst.Start()); err == nil {
		t.Error("instrumented wrapper hid the incompatibility")
	}
	ok := bounded.Instrument(testaut.Coin("c", 0.5), &c)
	if err := ok.CompatAt(ok.Start()); err != nil {
		t.Errorf("plain automaton reported incompatible: %v", err)
	}
}
