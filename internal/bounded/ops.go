package bounded

import (
	"sync/atomic"

	"repro/internal/codec"
	"repro/internal/psioa"
)

// Counter accumulates the work performed by an instrumented automaton. Work
// is measured in bits touched per query — the executable analogue of the
// running time of the decoding machines M_sig, M_trans, M_state of Def 4.1.
// All fields are updated atomically so instrumented automata remain safe
// under concurrent benchmarks.
type Counter struct {
	// SigQueries and TransQueries count evaluations.
	SigQueries   atomic.Int64
	TransQueries atomic.Int64
	// Work is the total number of bits read or written across all queries.
	Work atomic.Int64
	// MaxQueryWork is the largest single-query work observed — the
	// per-query time bound the lemmas speak about.
	MaxQueryWork atomic.Int64
}

func (c *Counter) charge(bits int64) {
	c.Work.Add(bits)
	for {
		cur := c.MaxQueryWork.Load()
		if bits <= cur || c.MaxQueryWork.CompareAndSwap(cur, bits) {
			return
		}
	}
}

// Instrumented wraps a PSIOA and charges every Sig/Trans evaluation to a
// Counter.
type Instrumented struct {
	inner psioa.PSIOA
	c     *Counter
}

// Instrument wraps a with work accounting on counter c.
func Instrument(a psioa.PSIOA, c *Counter) *Instrumented {
	return &Instrumented{inner: a, c: c}
}

// ID implements PSIOA.
func (i *Instrumented) ID() string { return i.inner.ID() }

// Start implements PSIOA.
func (i *Instrumented) Start() psioa.State { return i.inner.Start() }

// Sig implements PSIOA, charging the bits of the state read and the
// signature produced.
func (i *Instrumented) Sig(q psioa.State) psioa.Signature {
	sig := i.inner.Sig(q)
	bits := int64(codec.BitLen(string(q)))
	for a := range sig.All() {
		bits += int64(codec.BitLen(string(a)))
	}
	i.c.SigQueries.Add(1)
	i.c.charge(bits)
	return sig
}

// Trans implements PSIOA, charging the bits of the inputs and of the
// produced transition representation.
func (i *Instrumented) Trans(q psioa.State, a psioa.Action) *psioa.Dist {
	eta := i.inner.Trans(q, a)
	bits := int64(codec.BitLen(EncodeTransition(q, a, eta)))
	i.c.TransQueries.Add(1)
	i.c.charge(bits)
	return eta
}

// CompatAt delegates compatibility checking to the wrapped automaton.
func (i *Instrumented) CompatAt(q psioa.State) error {
	if cc, ok := i.inner.(interface{ CompatAt(psioa.State) error }); ok {
		return cc.CompatAt(q)
	}
	return nil
}

// QueryWork runs one full exploration of the automaton (bounded by limit
// states) under instrumentation and reports the maximum per-query work —
// the empirical "time bound" b of Def 4.1 items 2–3 for our evaluators.
func QueryWork(a psioa.PSIOA, limit int) (maxPerQuery int64, total int64, err error) {
	var c Counter
	inst := Instrument(a, &c)
	if _, err := psioa.Explore(inst, limit); err != nil {
		return 0, 0, err
	}
	return c.MaxQueryWork.Load(), c.Work.Load(), nil
}
