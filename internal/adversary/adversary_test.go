package adversary_test

import (
	"math"
	"testing"

	"repro/internal/adversary"
	"repro/internal/insight"
	"repro/internal/measure"
	"repro/internal/psioa"
	"repro/internal/sched"
	"repro/internal/structured"
)

// leakyChannel is a structured protocol automaton with environment
// interface {send, recv} and adversary interface {leak (output), drop
// (input)}: after receiving a message it may leak to the adversary, the
// adversary may drop the message, or it is delivered.
func leakyChannel() *structured.Structured {
	t := psioa.NewBuilder("chan", "s0").
		AddState("s0", psioa.NewSignature([]psioa.Action{"send"}, nil, nil)).
		AddState("s1", psioa.NewSignature([]psioa.Action{"drop"}, []psioa.Action{"leak", "recv"}, nil)).
		AddState("s2", psioa.NewSignature([]psioa.Action{"drop"}, []psioa.Action{"recv"}, nil)).
		AddState("s3", psioa.NewSignature([]psioa.Action{"send"}, nil, nil)).
		AddDet("s0", "send", "s1").
		AddDet("s1", "leak", "s2").
		AddDet("s1", "drop", "s3").
		AddDet("s1", "recv", "s0").
		AddDet("s2", "drop", "s3").
		AddDet("s2", "recv", "s0").
		AddDet("s3", "send", "s3").
		MustBuild()
	return structured.NewSet(t, psioa.NewActionSet("send", "recv"))
}

// g is the adversary-action renaming for leakyChannel.
func gMap() map[psioa.Action]psioa.Action {
	return map[psioa.Action]psioa.Action{"leak": "g_leak", "drop": "g_drop"}
}

// dropperAdv drops the message after seeing a leak; it speaks the g-renamed
// interface.
func dropperAdv() *psioa.Table {
	return psioa.NewBuilder("adv", "a0").
		AddState("a0", psioa.NewSignature([]psioa.Action{"g_leak"}, nil, nil)).
		AddState("a1", psioa.NewSignature([]psioa.Action{"g_leak"}, []psioa.Action{"g_drop"}, nil)).
		AddState("a2", psioa.NewSignature([]psioa.Action{"g_leak"}, nil, nil)).
		AddDet("a0", "g_leak", "a1").
		AddDet("a1", "g_leak", "a1").
		AddDet("a1", "g_drop", "a2").
		AddDet("a2", "g_leak", "a2").
		MustBuild()
}

// sender is an environment that sends one message and listens for delivery.
func sender() *psioa.Table {
	return psioa.NewBuilder("env", "e0").
		AddState("e0", psioa.NewSignature([]psioa.Action{"recv"}, []psioa.Action{"send"}, nil)).
		AddState("e1", psioa.NewSignature([]psioa.Action{"recv"}, nil, nil)).
		AddState("e2", psioa.NewSignature([]psioa.Action{"recv"}, nil, nil)).
		AddDet("e0", "send", "e1").
		AddDet("e0", "recv", "e2").
		AddDet("e1", "recv", "e2").
		AddDet("e2", "recv", "e2").
		MustBuild()
}

func TestInterfaceOf(t *testing.T) {
	a := leakyChannel()
	iface, err := adversary.InterfaceOf(a, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !iface.AO.Equal(psioa.NewActionSet("leak")) {
		t.Errorf("AO = %v", iface.AO)
	}
	if !iface.AI.Equal(psioa.NewActionSet("drop")) {
		t.Errorf("AI = %v", iface.AI)
	}
	if !iface.AAct().Equal(psioa.NewActionSet("leak", "drop")) {
		t.Errorf("AAct = %v", iface.AAct())
	}
}

func TestInterfaceOfMixedDirection(t *testing.T) {
	// An action that is an adversary input at one state and output at
	// another is classified as an output (the protocol produces it; the
	// input occurrences are unmatched-listening states).
	amb := psioa.NewBuilder("amb", "q0").
		AddState("q0", psioa.NewSignature([]psioa.Action{"x"}, nil, nil)).
		AddState("q1", psioa.NewSignature(nil, []psioa.Action{"x"}, nil)).
		AddDet("q0", "x", "q1").
		AddDet("q1", "x", "q0").
		MustBuild()
	s := structured.NewSet(amb, psioa.NewActionSet())
	iface, err := adversary.InterfaceOf(s, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !iface.AO.Has("x") || iface.AI.Has("x") {
		t.Errorf("mixed-direction action misclassified: AI=%v AO=%v", iface.AI, iface.AO)
	}
}

func TestIsAdversaryFor(t *testing.T) {
	a := leakyChannel()
	// A proper adversary speaking the *real* interface (no renaming):
	// inputs leak, outputs drop.
	good := psioa.NewBuilder("adv0", "a0").
		AddState("a0", psioa.NewSignature([]psioa.Action{"leak"}, []psioa.Action{"drop"}, nil)).
		AddDet("a0", "leak", "a0").
		AddDet("a0", "drop", "a0").
		MustBuild()
	if err := adversary.IsAdversaryFor(good, a, 1000); err != nil {
		t.Errorf("good adversary rejected: %v", err)
	}
	// An adversary that also listens to the environment action recv.
	nosy := psioa.NewBuilder("nosy", "a0").
		AddState("a0", psioa.NewSignature([]psioa.Action{"leak", "recv"}, []psioa.Action{"drop"}, nil)).
		AddDet("a0", "leak", "a0").
		AddDet("a0", "recv", "a0").
		AddDet("a0", "drop", "a0").
		MustBuild()
	if err := adversary.IsAdversaryFor(nosy, a, 1000); err == nil {
		t.Error("environment-touching adversary accepted")
	}
	// An adversary that does not drive the adversary input drop.
	lazy := psioa.NewBuilder("lazy", "a0").
		AddState("a0", psioa.NewSignature([]psioa.Action{"leak"}, nil, nil)).
		AddDet("a0", "leak", "a0").
		MustBuild()
	if err := adversary.IsAdversaryFor(lazy, a, 1000); err == nil {
		t.Error("adversary not covering AI accepted")
	}
}

func TestAdversaryForCompositionIsAdversaryForComponent(t *testing.T) {
	// Lemma 4.25: an adversary for A‖B is an adversary for A.
	a := leakyChannel()
	bT := psioa.NewBuilder("other", "q").
		AddState("q", psioa.NewSignature(nil, []psioa.Action{"tick"}, nil)).
		AddDet("q", "tick", "q").
		MustBuild()
	b := structured.NewSet(bT, psioa.NewActionSet()) // tick is adversary-facing
	ab := structured.MustCompose(a, b)
	adv := psioa.NewBuilder("advAB", "a0").
		AddState("a0", psioa.NewSignature([]psioa.Action{"leak", "tick"}, []psioa.Action{"drop"}, nil)).
		AddDet("a0", "leak", "a0").
		AddDet("a0", "tick", "a0").
		AddDet("a0", "drop", "a0").
		MustBuild()
	if err := adversary.IsAdversaryFor(adv, ab, 1000); err != nil {
		t.Fatalf("adversary for composition rejected: %v", err)
	}
	if err := adversary.IsAdversaryFor(adv, a, 1000); err != nil {
		t.Errorf("Lemma 4.25 violated: %v", err)
	}
}

func TestDummyConstruction(t *testing.T) {
	a := leakyChannel()
	iface, _ := adversary.InterfaceOf(a, 100)
	d, err := adversary.Dummy("D", iface, gMap())
	if err != nil {
		t.Fatal(err)
	}
	if err := psioa.Validate(d, 100); err != nil {
		t.Fatalf("dummy invalid: %v", err)
	}
	q0 := d.Start()
	sig := d.Sig(q0)
	if !sig.In.Equal(psioa.NewActionSet("leak", "g_drop")) {
		t.Errorf("dummy inputs = %v", sig.In)
	}
	if len(sig.Out) != 0 {
		t.Errorf("dummy at ⊥ has outputs: %v", sig.Out)
	}
	// Receive leak → pending; output must be g_leak.
	q1 := d.Trans(q0, "leak").Support()[0]
	if !d.Sig(q1).Out.Equal(psioa.NewActionSet("g_leak")) {
		t.Errorf("pending-leak outputs = %v", d.Sig(q1).Out)
	}
	// Forward clears pending.
	q2 := d.Trans(q1, "g_leak").Support()[0]
	if q2 != d.Start() {
		t.Errorf("forward did not clear pending: %q", q2)
	}
	// Command direction: g_drop pending forwards as drop.
	q3 := d.Trans(q0, "g_drop").Support()[0]
	if !d.Sig(q3).Out.Equal(psioa.NewActionSet("drop")) {
		t.Errorf("pending-command outputs = %v", d.Sig(q3).Out)
	}
	// ForwardOf.
	if f, _ := d.ForwardOf("leak"); f != "g_leak" {
		t.Errorf("ForwardOf(leak) = %q", f)
	}
	if f, _ := d.ForwardOf("g_drop"); f != "drop" {
		t.Errorf("ForwardOf(g_drop) = %q", f)
	}
	if _, err := d.ForwardOf("junk"); err == nil {
		t.Error("ForwardOf(junk) accepted")
	}
	// Overwrite semantics: a new input replaces the pending value.
	q4 := d.Trans(q1, "g_drop").Support()[0]
	if !d.Sig(q4).Out.Equal(psioa.NewActionSet("drop")) {
		t.Errorf("overwritten pending outputs = %v", d.Sig(q4).Out)
	}
}

func TestDummyConstructionErrors(t *testing.T) {
	a := leakyChannel()
	iface, _ := adversary.InterfaceOf(a, 100)
	// Missing mapping.
	if _, err := adversary.Dummy("D", iface, map[psioa.Action]psioa.Action{"leak": "g_leak"}); err == nil {
		t.Error("partial g accepted")
	}
	// Non-fresh target.
	if _, err := adversary.Dummy("D", iface, map[psioa.Action]psioa.Action{"leak": "drop", "drop": "g_drop"}); err == nil {
		t.Error("non-fresh g accepted")
	}
	// Non-injective.
	if _, err := adversary.Dummy("D", iface, map[psioa.Action]psioa.Action{"leak": "x", "drop": "x"}); err == nil {
		t.Error("non-injective g accepted")
	}
}

func newCtx(t *testing.T) *adversary.ForwardCtx {
	t.Helper()
	ctx, err := adversary.NewForwardCtx(sender(), leakyChannel(), dropperAdv(), gMap(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func TestForwardCtxWorldsValid(t *testing.T) {
	ctx := newCtx(t)
	if err := psioa.Validate(ctx.W1, 10000); err != nil {
		t.Errorf("W1 invalid: %v", err)
	}
	if err := psioa.Validate(ctx.W2, 10000); err != nil {
		t.Errorf("W2 invalid: %v", err)
	}
}

func TestForwardExecRoundTrip(t *testing.T) {
	ctx := newCtx(t)
	// Drive W1: send, g_leak (A leaks via renamed action), g_drop (Adv
	// drops).
	s1 := &sched.Sequence{A: ctx.W1, Acts: []psioa.Action{"send", "g_leak", "g_drop"}}
	em, err := sched.Measure(ctx.W1, s1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if em.Len() != 1 {
		t.Fatalf("W1 support = %d, want 1 (deterministic)", em.Len())
	}
	em.ForEach(func(alpha *psioa.Frag, p float64) {
		fwd, err := ctx.ForwardExec(alpha)
		if err != nil {
			t.Fatal(err)
		}
		// Each adversary-interface action doubles: 3 → 1 + 2 + 2 = 5.
		if fwd.Len() != 5 {
			t.Fatalf("forwarded length = %d, want 5 (%v)", fwd.Len(), fwd)
		}
		if !fwd.IsExecOf(ctx.W2) {
			t.Fatalf("forwarded fragment is not an execution of W2: %v", fwd)
		}
		back, pending, ok := ctx.UnforwardExec(fwd)
		if !ok || pending != "" {
			t.Fatalf("UnforwardExec failed: ok=%v pending=%q", ok, pending)
		}
		if back.Key() != alpha.Key() {
			t.Errorf("round trip mismatch:\n %v\n %v", alpha, back)
		}
	})
}

func TestUnforwardRejectsBrokenForwarding(t *testing.T) {
	ctx := newCtx(t)
	// An execution of W2 where the dummy receives leak but something else
	// happens before the forward is outside the image of Forward^e.
	s := &sched.Sequence{A: ctx.W2, Acts: []psioa.Action{"send", "leak", "recv"}}
	em, err := sched.Measure(ctx.W2, s, 20)
	if err != nil {
		t.Fatal(err)
	}
	em.ForEach(func(alpha *psioa.Frag, p float64) {
		if alpha.Len() != 3 {
			return
		}
		if _, _, ok := ctx.UnforwardExec(alpha); ok {
			t.Errorf("broken forwarding accepted: %v", alpha)
		}
	})
}

func TestUnforwardPending(t *testing.T) {
	ctx := newCtx(t)
	s := &sched.Sequence{A: ctx.W2, Acts: []psioa.Action{"send", "leak"}}
	em, err := sched.Measure(ctx.W2, s, 20)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	em.ForEach(func(alpha *psioa.Frag, p float64) {
		if alpha.Len() != 2 {
			return
		}
		found = true
		_, pending, ok := ctx.UnforwardExec(alpha)
		if !ok || pending != "leak" {
			t.Errorf("pending = %q ok=%v, want leak/true", pending, ok)
		}
	})
	if !found {
		t.Fatal("expected a length-2 execution")
	}
}

// lemma429Check verifies f-dist equality between σ on W1 and Forward^s(σ)
// on W2 — the ε = 0 balance at the heart of Lemma 4.29/D.1.
func lemma429Check(t *testing.T, ctx *adversary.ForwardCtx, s1 sched.Scheduler, f insight.Insight) {
	t.Helper()
	s2 := ctx.ForwardSched(s1)
	d1, err := insight.FDist(ctx.W1, s1, f, 40)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := insight.FDist(ctx.W2, s2, f, 40)
	if err != nil {
		t.Fatal(err)
	}
	if dist := insight.Distance(d1, d2); dist > 1e-9 {
		t.Errorf("scheduler %s: f-dist distance = %v, want 0\n d1=%v\n d2=%v", s1.Name(), dist, d1, d2)
	}
}

func TestDummyInsertionDeterministicScheds(t *testing.T) {
	ctx := newCtx(t)
	seqs := [][]psioa.Action{
		{"send", "g_leak", "g_drop"},
		{"send", "recv"},
		{"send", "g_leak", "recv"},
		{"send", "g_drop"},
		{"send"},
		{},
		{"g_leak"}, // disabled at start: halts in both worlds
	}
	for _, acts := range seqs {
		lemma429Check(t, ctx, &sched.Sequence{A: ctx.W1, Acts: acts}, insight.Trace())
	}
}

func TestDummyInsertionProbabilisticSched(t *testing.T) {
	ctx := newCtx(t)
	// A probabilistic scheduler mixing delivery and adversary interaction.
	mix := &sched.FuncSched{ID: "mix", Fn: func(f *psioa.Frag) *sched.Choice {
		enabled := ctx.W1.Sig(f.LState()).All().Sorted()
		if f.Len() >= 6 || len(enabled) == 0 {
			return sched.Halt()
		}
		ch := sched.Halt()
		total := 0.9 // halt with probability 0.1
		for i, a := range enabled {
			w := total / float64(len(enabled))
			// Skew toward earlier actions to avoid a uniform special case.
			if i == 0 {
				w += total / 10
			}
			ch.Add(a, w)
		}
		// Renormalise to ≤ 1.
		scale := total / ch.Total()
		out := sched.Halt()
		ch.ForEach(func(a psioa.Action, p float64) { out.Add(a, p*scale) })
		return out
	}}
	lemma429Check(t, ctx, mix, insight.Trace())
	lemma429Check(t, ctx, mix, insight.Accept("recv"))
}

func TestCheckBravePair(t *testing.T) {
	// The (priority/sequence schema, trace) pair is brave on the channel
	// context (Def 4.28): perceptions transport along Forward^e and
	// Forward^s stays in the scheduler space.
	ctx := newCtx(t)
	tr := insight.Trace()
	f1 := func(a *psioa.Frag) string { return tr.Apply(ctx.W1, a) }
	f2 := func(a *psioa.Frag) string { return tr.Apply(ctx.W2, a) }
	scheds := []sched.Scheduler{
		&sched.Sequence{A: ctx.W1, Acts: []psioa.Action{"send", "g_leak", "g_drop"}},
		&sched.Sequence{A: ctx.W1, Acts: []psioa.Action{"send", "recv"}},
		&sched.Random{A: ctx.W1, Bound: 4, LocalOnly: true},
	}
	if err := ctx.CheckBrave(scheds, f1, f2, 20); err != nil {
		t.Errorf("brave pair rejected: %v", err)
	}
	// A non-transporting "insight" (the raw execution key, which sees the
	// dummy's extra steps) is not brave.
	raw := func(a *psioa.Frag) string { return a.Key() }
	if err := ctx.CheckBrave(scheds[:1], raw, raw, 20); err == nil {
		t.Error("state-revealing insight accepted as brave")
	}
}

func TestForwardSchedBoundDoubles(t *testing.T) {
	ctx := newCtx(t)
	s1 := &sched.Bounded{Inner: &sched.Random{A: ctx.W1, Bound: 3}, B: 3}
	s2 := ctx.ForwardSched(s1)
	// σ q1-bounded ⇒ σ′ 2·q1-bounded (Lemma 4.29 proof sets q2 = 2q1).
	if err := sched.IsBounded(ctx.W2, s2, 6); err != nil {
		t.Errorf("forwarded scheduler exceeds 2·q1: %v", err)
	}
}

func TestForwardSchedHaltProbabilityPreserved(t *testing.T) {
	ctx := newCtx(t)
	// Scheduler that halts with probability 0.5 at the start.
	s1 := &sched.FuncSched{ID: "half", Fn: func(f *psioa.Frag) *sched.Choice {
		if f.Len() > 0 {
			return sched.Halt()
		}
		ch := measure.New[psioa.Action]()
		ch.Add("send", 0.5)
		return ch
	}}
	s2 := ctx.ForwardSched(s1)
	em1, err := sched.Measure(ctx.W1, s1, 10)
	if err != nil {
		t.Fatal(err)
	}
	em2, err := sched.Measure(ctx.W2, s2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(em1.Total()-em2.Total()) > 1e-9 {
		t.Errorf("total mass differs: %v vs %v", em1.Total(), em2.Total())
	}
	if math.Abs(em2.P(psioa.NewFrag(ctx.W2.Start()))-0.5) > 1e-9 {
		t.Error("halting mass not preserved")
	}
}
