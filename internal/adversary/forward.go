package adversary

import (
	"fmt"

	"repro/internal/measure"
	"repro/internal/psioa"
	"repro/internal/sched"
	"repro/internal/structured"
)

// ForwardCtx packages the two worlds of the dummy-adversary insertion lemma
// (Lemma 4.29 / Appendix D) for a concrete (E, A, g, Adv):
//
//	W1 = E ‖ g(A) ‖ Adv                       (the outer adversary speaks
//	                                           to the renamed protocol
//	                                           directly)
//	W2 = E ‖ hide(A ‖ Dummy(A,g), AAct_A) ‖ Adv   (the dummy forwards)
//
// and provides the Forward^e execution transport and the Forward^s
// scheduler transport whose existence the lemma's proof constructs.
//
// An occurrence of a renamed action g(b) in W1 is a *forward* occurrence
// when A actually participates (b ∈ out(A)(q_A) for b ∈ AO, or
// b ∈ in(A)(q_A) for b ∈ AI): it maps to two W2 steps, the real action and
// the dummy's forward. When A does not participate — an orphan input to
// Adv, or a command A cannot hear — the action maps to a single W2 step; in
// the command case the dummy still intercepts it and is left holding a
// stale pending value, which the transport tracks (a later input simply
// overwrites it, matching Def 4.27's transition relation).
type ForwardCtx struct {
	E   psioa.PSIOA
	A   structured.SPSIOA
	Adv psioa.PSIOA

	Iface *Interface
	Dum   *DummyAdv
	g     map[psioa.Action]psioa.Action
	ginv  map[psioa.Action]psioa.Action

	// GA is g(A); H is hide(A‖Dummy, AAct_A).
	GA psioa.PSIOA
	H  psioa.PSIOA
	// W1 and W2 are the two composed worlds.
	W1 *psioa.Product
	W2 *psioa.Product
}

// NewForwardCtx builds the two worlds. g must be a fresh bijection on the
// adversary interface of A (see Dummy). limit bounds the exploration that
// computes the interface.
func NewForwardCtx(e psioa.PSIOA, a structured.SPSIOA, adv psioa.PSIOA, g map[psioa.Action]psioa.Action, limit int) (*ForwardCtx, error) {
	iface, err := InterfaceOf(a, limit)
	if err != nil {
		return nil, err
	}
	dum, err := Dummy("dummy("+a.ID()+")", iface, g)
	if err != nil {
		return nil, err
	}
	ga := psioa.RenameMap(a, g)
	inner, err := psioa.Compose(psioa.Atom(a), dum)
	if err != nil {
		return nil, err
	}
	h := psioa.HideSet(inner, iface.AAct())
	// Atoms keep the worlds' states positional triples even when E, A or
	// Adv are themselves compositions.
	w1, err := psioa.Compose(psioa.Atom(e), ga, psioa.Atom(adv))
	if err != nil {
		return nil, err
	}
	w2, err := psioa.Compose(psioa.Atom(e), h, psioa.Atom(adv))
	if err != nil {
		return nil, err
	}
	ginv := make(map[psioa.Action]psioa.Action, len(g))
	for k, v := range g {
		ginv[v] = k
	}
	return &ForwardCtx{
		E: e, A: a, Adv: adv,
		Iface: iface, Dum: dum, g: g, ginv: ginv,
		GA: ga, H: h, W1: w1, W2: w2,
	}, nil
}

// splitW1 returns (qE, qA, qAdv) of a W1 state.
func (c *ForwardCtx) splitW1(q psioa.State) (psioa.State, psioa.State, psioa.State) {
	qs := c.W1.Split(q)
	return qs[0], qs[1], qs[2]
}

// joinW2 assembles a W2 state from (qE, qA, qDummy, qAdv).
func (c *ForwardCtx) joinW2(qE, qA, qD, qAdv psioa.State) psioa.State {
	inner := c.H.(*psioa.Hidden).Inner().(*psioa.Product)
	return c.W2.Join([]psioa.State{qE, inner.Join([]psioa.State{qA, qD}), qAdv})
}

// splitW2 returns (qE, qA, qD, qAdv) of a W2 state.
func (c *ForwardCtx) splitW2(q psioa.State) (psioa.State, psioa.State, psioa.State, psioa.State) {
	qs := c.W2.Split(q)
	inner := c.H.(*psioa.Hidden).Inner().(*psioa.Product)
	hq := inner.Split(qs[1])
	return qs[0], hq[0], hq[1], qs[2]
}

// classify determines the role of a W1 action occurrence at A-state qA.
type fwdClass int

const (
	classEnv     fwdClass = iota // no dummy involvement
	classAOFwd                   // A outputs b, dummy forwards g(b)
	classAIFwd                   // Adv commands g(b), dummy forwards b into A
	classAIStale                 // Adv commands g(b), A cannot hear: dummy holds it
)

func (c *ForwardCtx) classify(act psioa.Action, qA psioa.State) fwdClass {
	orig, renamed := c.ginv[act], act
	_ = renamed
	if orig == "" {
		return classEnv
	}
	sig := c.A.Sig(qA)
	if c.Iface.AO.Has(orig) {
		if sig.Out.Has(orig) {
			return classAOFwd
		}
		return classEnv // orphan input to Adv; dummy does not hear g(b)
	}
	if c.Iface.AI.Has(orig) {
		if sig.In.Has(orig) {
			return classAIFwd
		}
		return classAIStale
	}
	return classEnv
}

// ForwardExec is Forward^e_{(A,g,Adv)}: it transports an execution of W1 to
// the unique corresponding execution of W2 in which every adversary-
// interface action is correctly forwarded by the dummy (the relation α ~ α′
// of Appendix D).
func (c *ForwardCtx) ForwardExec(alpha *psioa.Frag) (*psioa.Frag, error) {
	if alpha.FState() != c.W1.Start() {
		return nil, fmt.Errorf("adversary: ForwardExec needs an execution from the start state")
	}
	qD := c.Dum.Start()
	out := psioa.NewFrag(c.W2.Start())
	for i := 0; i < alpha.Len(); i++ {
		act := alpha.ActionAt(i)
		_, qA0, qAdv0 := c.splitW1(alpha.StateAt(i))
		qE1, qA1, qAdv1 := c.splitW1(alpha.StateAt(i + 1))
		qE0, _, _ := c.splitW1(alpha.StateAt(i))
		orig := c.ginv[act]
		switch c.classify(act, qA0) {
		case classAOFwd:
			// A emits the original action into the dummy (hidden), then the
			// dummy emits g(orig) to Adv/E.
			mid := c.joinW2(qE0, qA1, dummyState(string(orig)), qAdv0)
			out = out.Extend(orig, mid)
			qD = c.Dum.Start()
			out = out.Extend(act, c.joinW2(qE1, qA1, qD, qAdv1))
		case classAIFwd:
			// Adv emits g(orig) into the dummy (Adv and E move), then the
			// dummy emits the original action into A (hidden).
			mid := c.joinW2(qE1, qA0, dummyState(string(act)), qAdv1)
			out = out.Extend(act, mid)
			qD = c.Dum.Start()
			out = out.Extend(orig, c.joinW2(qE1, qA1, qD, qAdv1))
		case classAIStale:
			// The dummy intercepts the command but A cannot hear it; the
			// pending value is held (possibly overwriting a previous one).
			qD = dummyState(string(act))
			out = out.Extend(act, c.joinW2(qE1, qA1, qD, qAdv1))
		default:
			out = out.Extend(act, c.joinW2(qE1, qA1, qD, qAdv1))
		}
	}
	return out, nil
}

// UnforwardExec inverts ForwardExec: it maps a W2 execution back to the W1
// execution it forwards, if any. When the W2 execution ends mid-forward
// (the dummy holds a pending action awaiting its forward step), pending is
// that value; otherwise pending is empty. ok reports whether the W2
// execution is in the image of ForwardExec (possibly plus one pending
// half-step); executions outside the image are never scheduled by
// Forward^s.
func (c *ForwardCtx) UnforwardExec(alpha2 *psioa.Frag) (alpha *psioa.Frag, pending psioa.Action, ok bool) {
	if alpha2.FState() != c.W2.Start() {
		return nil, "", false
	}
	qE0, qA0, _, qAdv0 := c.splitW2(alpha2.StateAt(0))
	alpha = psioa.NewFrag(c.W1.Join([]psioa.State{qE0, qA0, qAdv0}))
	i := 0
	proj := func(idx int) psioa.State {
		qE, qA, _, qAdv := c.splitW2(alpha2.StateAt(idx))
		return c.W1.Join([]psioa.State{qE, qA, qAdv})
	}
	for i < alpha2.Len() {
		act := alpha2.ActionAt(i)
		_, qA, _, _ := c.splitW2(alpha2.StateAt(i))
		orig := c.ginv[act]
		switch {
		case c.Iface.AO.Has(act):
			// Real adversary output of A: first half of a forward.
			if i+1 >= alpha2.Len() {
				return alpha, act, true
			}
			if alpha2.ActionAt(i+1) != c.g[act] {
				return nil, "", false
			}
			alpha = alpha.Extend(c.g[act], proj(i+2))
			i += 2
		case orig != "" && c.Iface.AI.Has(orig) && c.A.Sig(qA).In.Has(orig):
			// Command A can hear: must be forwarded immediately.
			if i+1 >= alpha2.Len() {
				return alpha, act, true
			}
			if alpha2.ActionAt(i+1) != orig {
				return nil, "", false
			}
			alpha = alpha.Extend(act, proj(i+2))
			i += 2
		case orig != "" && c.Iface.AI.Has(orig):
			// Stale command: single step, dummy holds it.
			alpha = alpha.Extend(act, proj(i+1))
			i++
		default:
			// Environment-side step (including orphan g(AO) inputs); the
			// dummy must not have moved.
			if c.Iface.AI.Has(act) {
				// A bare forward step without its first half.
				return nil, "", false
			}
			alpha = alpha.Extend(act, proj(i+1))
			i++
		}
	}
	return alpha, "", true
}

// CheckBrave verifies the substantive conditions of Def 4.28 (a "brave"
// pair of scheduler schema and insight function) on this context, for the
// given schedulers:
//
//   - perception transport: f(α) = f(Forward^e(α)) for every execution α in
//     the support of each scheduler's measure (the third bullet — the first
//     two bullets are definitional for insights that read the action
//     sequence, since hiding only reclassifies actions the insight already
//     ignores);
//   - schema closure: Forward^s(σ) is a well-formed scheduler of W2 whose
//     measure is total (the fourth bullet).
//
// f is given as the insight's Apply function specialised to each world.
func (c *ForwardCtx) CheckBrave(scheds []sched.Scheduler, f1 func(*psioa.Frag) string, f2 func(*psioa.Frag) string, maxDepth int) error {
	for _, s := range scheds {
		em, err := sched.Measure(c.W1, s, maxDepth)
		if err != nil {
			return fmt.Errorf("adversary: CheckBrave: scheduler %q on W1: %w", s.Name(), err)
		}
		var bad error
		em.ForEach(func(alpha *psioa.Frag, p float64) {
			if bad != nil {
				return
			}
			fwd, err := c.ForwardExec(alpha)
			if err != nil {
				bad = err
				return
			}
			if f1(alpha) != f2(fwd) {
				bad = fmt.Errorf("adversary: CheckBrave: perception changed under Forward^e: %q vs %q at %v", f1(alpha), f2(fwd), alpha)
			}
		})
		if bad != nil {
			return bad
		}
		em2, err := sched.Measure(c.W2, c.ForwardSched(s), 2*maxDepth)
		if err != nil {
			return fmt.Errorf("adversary: CheckBrave: Forward^s(%q) ill-formed: %w", s.Name(), err)
		}
		if d := em.Total() - em2.Total(); d > 1e-9 || d < -1e-9 {
			return fmt.Errorf("adversary: CheckBrave: Forward^s(%q) loses mass: %v vs %v", s.Name(), em.Total(), em2.Total())
		}
	}
	return nil
}

// ForwardSched is Forward^s_{(A,g,Adv)}: it transports a scheduler of W1 to
// the scheduler of W2 that mimics it, inserting the dummy's forwarding
// steps (the σ′ constructed in the proof of Lemma D.1). If σ is q₁-bounded
// then the result is 2·q₁-bounded.
func (c *ForwardCtx) ForwardSched(sigma sched.Scheduler) sched.Scheduler {
	return &sched.FuncSched{
		ID: "forward(" + sigma.Name() + ")",
		Fn: func(alpha2 *psioa.Frag) *sched.Choice {
			alpha, pending, ok := c.UnforwardExec(alpha2)
			if !ok {
				return sched.Halt()
			}
			if pending != "" {
				fwd, err := c.Dum.ForwardOf(pending)
				if err != nil {
					return sched.Halt()
				}
				return measure.Dirac(fwd)
			}
			_, qA, _ := c.splitW1(alpha.LState())
			choice := sigma.Choose(alpha)
			out := sched.Halt()
			choice.ForEach(func(a psioa.Action, p float64) {
				if c.classify(a, qA) == classAOFwd {
					// σ asks for A's (renamed) adversary output: in W2 the
					// real (hidden) output fires first.
					out.Add(c.ginv[a], p)
					return
				}
				out.Add(a, p)
			})
			return out
		},
	}
}
