// Package adversary implements the adversary layer of Section 4.8: the
// adversary predicate for structured automata (Def 4.24, Lemma 4.25), the
// dummy adversary (Def 4.27) and the Forward^e / Forward^s constructions
// used by the dummy-adversary insertion lemma (Lemma 4.29, Appendix D).
package adversary

import (
	"fmt"

	"repro/internal/codec"
	"repro/internal/measure"
	"repro/internal/psioa"
	"repro/internal/structured"
)

// Interface is the (universal) adversary interface of a structured
// automaton: the unions of its adversary inputs and outputs over reachable
// states. The dummy adversary of Def 4.27 is parameterised by these sets.
type Interface struct {
	// AI is the universal set of adversary inputs of A.
	AI psioa.ActionSet
	// AO is the universal set of adversary outputs of A.
	AO psioa.ActionSet
}

// InterfaceOf computes the adversary interface of s over its reachable
// fragment. An action's direction can vary with the state in composed
// protocols — e.g. a player's share announcement is an adversary *output*
// once the player offers it but appears as an unmatched composite *input*
// beforehand — so classification prioritises the output role: AO collects
// everything that is ever an adversary output, and AI only the adversary
// inputs that are never outputs (the genuinely adversary-driven commands).
// This keeps the dummy adversary's forwarding direction well-defined.
func InterfaceOf(s structured.SPSIOA, limit int) (*Interface, error) {
	ex, err := psioa.Explore(s, limit)
	if err != nil {
		return nil, err
	}
	aiAll := psioa.NewActionSet()
	aoAll := psioa.NewActionSet()
	for _, q := range ex.States {
		aiAll = aiAll.Union(structured.AI(s, q))
		aoAll = aoAll.Union(structured.AO(s, q))
	}
	return &Interface{AI: aiAll.Minus(aoAll), AO: aoAll}, nil
}

// AAct returns the universal adversary action set AI ∪ AO.
func (i *Interface) AAct() psioa.ActionSet { return i.AI.Union(i.AO) }

// IsAdversaryFor checks Def 4.24 on the reachable fragment of A‖Adv:
//
//   - Adv is partially compatible with A;
//   - Adv drives A's adversary inputs: AI_A ⊆ out(Adv), read over the
//     reachable unions. (Def 4.24 states the inclusion per state, but the
//     per-state reading rejects the paper's own dummy adversary — whose
//     output set is empty whenever pending = ⊥ (Def 4.27) — and the
//     Theorem 4.30 simulator built from it. We therefore adopt the
//     capability reading: the adversary can drive every adversary input
//     somewhere, not at every instant. See DESIGN.md §2.)
//   - Adv never touches A's environment interface, at every reachable
//     state: EAct_A(q_A) ∩ sig(Adv)(q_Adv) = ∅. This is the
//     security-critical condition and is kept per-state.
func IsAdversaryFor(adv psioa.PSIOA, s structured.SPSIOA, limit int) error {
	// Atoms keep the composite state a pair (q_A, q_Adv) even when either
	// side is itself a composition.
	p, err := psioa.Compose(psioa.Atom(s), psioa.Atom(adv))
	if err != nil {
		return err
	}
	ex, err := psioa.Explore(p, limit)
	if err != nil {
		return fmt.Errorf("adversary: %q not partially compatible with %q: %w", adv.ID(), s.ID(), err)
	}
	aiUnion := psioa.NewActionSet()
	aoUnion := psioa.NewActionSet()
	advOutUnion := psioa.NewActionSet()
	for _, q := range ex.States {
		qs := p.Split(q)
		qa, qadv := qs[0], qs[1]
		aiUnion = aiUnion.Union(structured.AI(s, qa))
		aoUnion = aoUnion.Union(structured.AO(s, qa))
		advOutUnion = advOutUnion.Union(adv.Sig(qadv).Out)
		if overlap := s.EAct(qa).Intersect(adv.Sig(qadv).All()); len(overlap) > 0 {
			return fmt.Errorf("adversary: %q touches environment actions %v of %q at state %q", adv.ID(), overlap, s.ID(), q)
		}
	}
	// Genuine adversary commands are the adversary inputs never produced by
	// the protocol itself (see InterfaceOf on mixed-direction actions).
	if missing := aiUnion.Minus(aoUnion).Minus(advOutUnion); len(missing) > 0 {
		return fmt.Errorf("adversary: %q does not drive adversary inputs %v of %q", adv.ID(), missing, s.ID())
	}
	return nil
}

// dummyBot is the ⊥ pending value of the dummy adversary.
const dummyBot = "bot"

func dummyState(pending string) psioa.State {
	return psioa.State(codec.EncodeTagged("dummy", pending))
}

func dummyPending(q psioa.State) (string, error) {
	tag, parts, err := codec.DecodeTagged(string(q))
	if err != nil || tag != "dummy" || len(parts) != 1 {
		return "", fmt.Errorf("adversary: %q is not a dummy state", q)
	}
	return parts[0], nil
}

// DummyAdv is the dummy adversary Dummy(A, g) of Def 4.27: a pure forwarder
// between a structured automaton A (speaking its real adversary actions)
// and an outer adversary (speaking the g-renamed fresh actions). Its state
// is a single pending slot holding the last unforwarded action (or ⊥).
type DummyAdv struct {
	id    string
	iface *Interface
	g     map[psioa.Action]psioa.Action
	ginv  map[psioa.Action]psioa.Action
	// inSet is the constant input set AO_A ∪ g(AI_A).
	inSet psioa.ActionSet
}

// Dummy builds the dummy adversary for the given interface and renaming.
// g must be a bijection defined on all of AI ∪ AO, mapping onto fresh
// action names (disjoint from AI ∪ AO).
func Dummy(id string, iface *Interface, g map[psioa.Action]psioa.Action) (*DummyAdv, error) {
	aact := iface.AAct()
	for a := range aact {
		if _, ok := g[a]; !ok {
			return nil, fmt.Errorf("adversary: renaming g undefined on adversary action %q", a)
		}
	}
	ginv := make(map[psioa.Action]psioa.Action, len(g))
	for a, b := range g {
		if aact.Has(b) {
			return nil, fmt.Errorf("adversary: renamed action %q is not fresh", b)
		}
		if _, dup := ginv[b]; dup {
			return nil, fmt.Errorf("adversary: renaming g is not injective at %q", b)
		}
		ginv[b] = a
	}
	in := iface.AO.Copy()
	for a := range iface.AI {
		in.Add(g[a])
	}
	return &DummyAdv{id: id, iface: iface, g: g, ginv: ginv, inSet: in}, nil
}

// MustDummy is Dummy that panics on error.
func MustDummy(id string, iface *Interface, g map[psioa.Action]psioa.Action) *DummyAdv {
	d, err := Dummy(id, iface, g)
	if err != nil {
		panic(err)
	}
	return d
}

// ID implements PSIOA.
func (d *DummyAdv) ID() string { return d.id }

// Start implements PSIOA: pending = ⊥.
func (d *DummyAdv) Start() psioa.State { return dummyState(dummyBot) }

// G returns the renaming.
func (d *DummyAdv) G() map[psioa.Action]psioa.Action { return d.g }

// Interface returns the adversary interface the dummy forwards for.
func (d *DummyAdv) Interface() *Interface { return d.iface }

// Sig implements PSIOA per Def 4.27: inputs are constantly AO ∪ g(AI); the
// output is the pending action's forward, when a forward is due.
func (d *DummyAdv) Sig(q psioa.State) psioa.Signature {
	pending, err := dummyPending(q)
	if err != nil {
		panic(err)
	}
	out := psioa.NewActionSet()
	if pending != dummyBot {
		p := psioa.Action(pending)
		switch {
		case d.iface.AO.Has(p):
			out.Add(d.g[p]) // forward A's adversary output, renamed
		case d.ginv[p] != "" && d.iface.AI.Has(d.ginv[p]):
			out.Add(d.ginv[p]) // forward the outer adversary's command to A
		default:
			panic(fmt.Sprintf("adversary: dummy %q has invalid pending %q", d.id, pending))
		}
	}
	return psioa.Signature{In: d.inSet.Copy(), Out: out, Int: psioa.NewActionSet()}
}

// Trans implements PSIOA: inputs load the pending slot, outputs clear it.
// All transitions are Dirac.
func (d *DummyAdv) Trans(q psioa.State, a psioa.Action) *psioa.Dist {
	sig := d.Sig(q)
	if !sig.All().Has(a) {
		panic(fmt.Sprintf("adversary: dummy %q: action %q not enabled at %q", d.id, a, q))
	}
	if sig.In.Has(a) && !sig.Out.Has(a) {
		return measure.Dirac(dummyState(string(a)))
	}
	return measure.Dirac(dummyState(dummyBot))
}

// ForwardOf returns the action the dummy will emit for a given pending
// value: g(a) for a ∈ AO, g⁻¹(b) for b ∈ g(AI).
func (d *DummyAdv) ForwardOf(pending psioa.Action) (psioa.Action, error) {
	if d.iface.AO.Has(pending) {
		return d.g[pending], nil
	}
	if orig, ok := d.ginv[pending]; ok && d.iface.AI.Has(orig) {
		return orig, nil
	}
	return "", fmt.Errorf("adversary: %q is not a forwardable pending value", pending)
}
