package engine_test

import (
	"context"
	"testing"

	"repro/internal/engine"
	"repro/internal/insight"
	"repro/internal/protocols/coin"
	"repro/internal/psioa"
	"repro/internal/sched"
)

func BenchmarkFingerprint(b *testing.B) {
	w := psioa.MustCompose(coin.Fair("x"), coin.Env("x"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Fingerprint(w, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCachedFDistWarm(b *testing.B) {
	c := engine.NewCache(0)
	w := psioa.MustCompose(coin.Fair("x"), coin.Env("x"))
	s := &sched.Greedy{A: w, Bound: 4, LocalOnly: true}
	f := insight.Trace()
	if _, err := c.FDist(w, s, f, 8); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.FDist(w, s, f, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUncachedFDist(b *testing.B) {
	w := psioa.MustCompose(coin.Fair("x"), coin.Env("x"))
	s := &sched.Greedy{A: w, Bound: 4, LocalOnly: true}
	f := insight.Trace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := insight.FDist(w, s, f, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPoolMap(b *testing.B) {
	p := engine.NewPool(4)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := p.Map(ctx, 16, func(int) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}
