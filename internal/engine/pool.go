// Package engine is the execution layer of the framework: a bounded worker
// pool that fans out the embarrassingly-parallel (environment, scheduler)
// sweeps of the implementation checkers, a memoization cache for the measure
// expansions they repeat, and a batch job API that expresses check and
// simulate requests as values so the same code path backs the CLI tools and
// the dsed daemon.
//
// The pool and cache plug into internal/core through the core.Executor and
// core.Memo hooks; reports produced through the engine are byte-identical
// to sequential, uncached runs.
package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"

	"repro/internal/obs"
	"repro/internal/resilience"
)

// Observability instruments for the pool.
var (
	cPoolMaps   = obs.C("engine.pool.maps")
	cPoolTasks  = obs.C("engine.pool.tasks")
	cPoolPanics = obs.C("engine.pool.panics")
	gPoolBusy   = obs.G("engine.pool.busy.max")
)

// call runs one task with panic isolation: a panicking fn becomes a
// *resilience.PanicError instead of killing the process, and a task that
// returns nil under a terminated context reports the classified context
// error — so cancellation mid-task is surfaced by the same deterministic
// lowest-index rule as an ordinary task failure.
func call(ctx context.Context, fn func(i int) error, i int) error {
	err := resilience.Catch(func() error { return fn(i) })
	var pe *resilience.PanicError
	if errors.As(err, &pe) {
		cPoolPanics.Inc()
	}
	if err == nil {
		err = resilience.CtxError(ctx)
	}
	return err
}

// Pool is a bounded worker pool. A single pool is meant to be shared by all
// concurrent work in a process (every CLI invocation, every daemon job):
// the worker budget caps total parallelism, and concurrent Map calls simply
// queue for slots. The zero worker count defaults to GOMAXPROCS.
type Pool struct {
	workers int
	sem     chan struct{}
	mu      sync.Mutex
	busy    int
}

// NewPool returns a pool with the given worker budget; workers <= 0 means
// runtime.GOMAXPROCS(0).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, sem: make(chan struct{}, workers)}
}

// Workers returns the pool's worker budget.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Busy returns the number of tasks currently running on the pool — a live
// instantaneous view (the engine.pool.busy.max gauge keeps the high-water
// mark).
func (p *Pool) Busy() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.busy
}

// Map runs fn(0..n-1), at most Workers() at a time, and waits for all
// launched tasks. The error returned is that of the lowest-index failing
// task — the same error a sequential in-order run would return — or the
// classified context error if cancellation stopped the launch with no task
// failure. The context is also checked after each fn returns, so a context
// terminated while a worker was mid-task is reported under the same
// lowest-index rule (as resilience.ErrCancelled/ErrDeadline wrapping
// ctx.Err()). Panics in fn are isolated into *resilience.PanicError task
// failures. fn must be safe for concurrent calls with distinct indices. A
// nil pool or a single-worker pool runs sequentially, stopping at the
// first error.
func (p *Pool) Map(ctx context.Context, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	cPoolMaps.Inc()
	defer obs.Time("engine.pool.map.us")()
	if p == nil || p.workers <= 1 || n == 1 {
		cPoolTasks.Add(int64(n))
		for i := 0; i < n; i++ {
			if err := resilience.CtxError(ctx); err != nil {
				return err
			}
			if err := call(ctx, fn, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		firstIdx = n
	)
	record := func(i int, err error) {
		mu.Lock()
		if i < firstIdx {
			firstErr, firstIdx = err, i
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	launched := 0
launch:
	// Launch strictly in index order: once a launched task fails at index
	// k, every index < k has already been launched, so the minimum failing
	// index among launched tasks equals the sequential first failure.
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			break launch
		case p.sem <- struct{}{}:
		}
		if failed() {
			<-p.sem
			break launch
		}
		p.mu.Lock()
		p.busy++
		gPoolBusy.SetMax(int64(p.busy))
		p.mu.Unlock()
		cPoolTasks.Inc()
		launched++
		wg.Add(1)
		go func(i int) {
			defer func() {
				p.mu.Lock()
				p.busy--
				p.mu.Unlock()
				<-p.sem
				wg.Done()
			}()
			if err := call(ctx, fn, i); err != nil {
				record(i, err)
			}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if launched < n {
		return resilience.CtxError(ctx)
	}
	return nil
}
