package engine_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/engine"
)

// fakeBacking is an in-memory engine.RawBacking with traffic counters and a
// scriptable failure mode.
type fakeBacking struct {
	mu      sync.Mutex
	entries map[string][]byte
	loads   int
	saves   int
	failing bool
}

func newFakeBacking() *fakeBacking {
	return &fakeBacking{entries: make(map[string][]byte)}
}

func (f *fakeBacking) Load(key string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.loads++
	if f.failing {
		return nil, errors.New("disk on fire")
	}
	data, ok := f.entries[key]
	if !ok {
		return nil, fmt.Errorf("fake: %q not found", key)
	}
	return append([]byte(nil), data...), nil
}

func (f *fakeBacking) Save(key string, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.saves++
	if f.failing {
		return errors.New("disk on fire")
	}
	f.entries[key] = append([]byte(nil), data...)
	return nil
}

// TestRawBackingWriteThroughAndFallback pins the two-tier raw store: PutRaw
// writes through to the backing, and a memory miss falls through to it —
// promoting the entry so the next lookup is a memory hit.
func TestRawBackingWriteThroughAndFallback(t *testing.T) {
	fb := newFakeBacking()
	c := engine.NewCache(16)
	c.SetRawBacking(fb)

	data := []byte(`{"kind":"check"}`)
	c.PutRaw("job-0001", data)
	if fb.saves != 1 {
		t.Fatalf("saves = %d after PutRaw, want 1 (write-through)", fb.saves)
	}

	// A fresh cache over the same backing — the restart scenario: memory
	// cold, disk warm.
	c2 := engine.NewCache(16)
	c2.SetRawBacking(fb)
	got, err := c2.GetRaw("job-0001")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("fallback GetRaw = %q, %v", got, err)
	}
	if fb.loads != 1 {
		t.Fatalf("loads = %d, want 1", fb.loads)
	}
	// Promoted: the second lookup is served from memory, no backing I/O.
	if _, err := c2.GetRaw("job-0001"); err != nil {
		t.Fatal(err)
	}
	if fb.loads != 1 {
		t.Fatalf("loads = %d after promoted hit, want still 1", fb.loads)
	}
}

// TestRawBackingMissAndFailure pins degradation: a backing miss is a plain
// cache miss, and a failing backing degrades durability, not availability —
// PutRaw still serves from memory, GetRaw still classifies ErrCacheMiss.
func TestRawBackingMissAndFailure(t *testing.T) {
	fb := newFakeBacking()
	c := engine.NewCache(16)
	c.SetRawBacking(fb)
	if _, err := c.GetRaw("absent"); !errors.Is(err, engine.ErrCacheMiss) {
		t.Fatalf("backing miss = %v, want ErrCacheMiss", err)
	}

	fb.failing = true
	c.PutRaw("k", []byte("v"))
	got, err := c.GetRaw("k")
	if err != nil || string(got) != "v" {
		t.Fatalf("memory tier lost entry when backing failed: %q, %v", got, err)
	}
	if _, err := c.GetRaw("other"); !errors.Is(err, engine.ErrCacheMiss) {
		t.Fatalf("failing backing = %v, want ErrCacheMiss", err)
	}
}

// TestRawBackingNilSafe pins the no-backing and nil-cache contracts.
func TestRawBackingNilSafe(t *testing.T) {
	var c *engine.Cache
	c.SetRawBacking(newFakeBacking()) // must not panic
	c2 := engine.NewCache(16)
	c2.SetRawBacking(nil)
	c2.PutRaw("k", []byte("v"))
	if got, err := c2.GetRaw("k"); err != nil || string(got) != "v" {
		t.Fatalf("nil backing round-trip = %q, %v", got, err)
	}
}
