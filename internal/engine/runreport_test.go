package engine_test

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/psioa"
)

// runCheckReport runs the coin check job on a fresh runner (fresh cache,
// reset sort memo) and returns its run report.
func runCheckReport(t *testing.T) *obs.RunReport {
	t.Helper()
	psioa.ResetSortMemo()
	r := engine.NewRunner(engine.NewPool(4), engine.NewCache(0))
	res, err := r.Run(context.Background(), engine.Job{Kind: engine.KindCheck, Check: coinCheck()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report == nil {
		t.Fatal("Run attached no report")
	}
	return res.Report
}

// stripTiming zeroes every wall-clock-derived field so two reports of
// identical runs can be compared for the deterministic remainder.
func stripTiming(r *obs.RunReport) *obs.RunReport {
	c := *r
	c.WallUS, c.BarrierWaitUS, c.CacheLockWaitUS = 0, 0, 0
	c.Shards = append([]obs.ShardStat(nil), c.Shards...)
	for i := range c.Shards {
		c.Shards[i].WallUS, c.Shards[i].BarrierWaitUS = 0, 0
	}
	c.Phases = append([]obs.PhaseStat(nil), c.Phases...)
	for i := range c.Phases {
		c.Phases[i].WallUS = 0
		// Quantiles come from process-cumulative histograms and shift as
		// other tests observe into them.
		c.Phases[i].P50US, c.Phases[i].P95US, c.Phases[i].P99US = 0, 0, 0
	}
	return &c
}

// TestRunReportDeterministic runs the same job twice on identical fresh
// state: everything in the two reports except the timing fields must match
// exactly — the work account is a function of the workload, not the
// schedule.
func TestRunReportDeterministic(t *testing.T) {
	a := stripTiming(runCheckReport(t))
	b := stripTiming(runCheckReport(t))
	if !reflect.DeepEqual(a, b) {
		t.Errorf("non-timing report fields differ between identical runs:\n a: %+v\n b: %+v", a, b)
	}
}

// TestRunReportAccounts sanity-checks the report of a real check job:
// work was metered, the kernels were observed, and the derived statistics
// are consistent with their parts.
func TestRunReportAccounts(t *testing.T) {
	psioa.ResetSortMemo()
	r := engine.NewRunner(engine.NewPool(4), engine.NewCache(0))
	job := engine.Job{Kind: engine.KindCheck, Check: coinCheck()}
	cold, err := r.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := r.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	rep := cold.Report
	if rep.Kind != engine.KindCheck {
		t.Errorf("kind = %q, want %q", rep.Kind, engine.KindCheck)
	}
	if rep.States == 0 && rep.Transitions == 0 {
		t.Error("no states or transitions metered — budget substitution broken")
	}
	if rep.CacheMisses == 0 {
		t.Error("cold run recorded no cache misses")
	}
	if warm.Report.CacheHits == 0 {
		t.Error("warm re-run recorded no cache hits")
	}
	if tot := rep.CacheHits + rep.CacheMisses; tot > 0 {
		want := float64(rep.CacheHits) / float64(tot)
		if rep.CacheHitRatio != want {
			t.Errorf("cache hit ratio = %v, want %v", rep.CacheHitRatio, want)
		}
	}
	if rep.Workers != 4 {
		t.Errorf("workers = %d, want 4", rep.Workers)
	}
	if got, want := rep.ShardImbalance, obs.Imbalance(rep.Shards); got != want {
		t.Errorf("shard imbalance = %v, want %v", got, want)
	}
	if rep.String() == "" {
		t.Error("empty rendering")
	}
}

// TestRunReportOnSyncAndError checks the report rides along even without a
// budget and is absent when the job fails before producing a result.
func TestRunReportOnSyncAndError(t *testing.T) {
	r := engine.NewRunner(nil, nil)
	res, err := r.Run(context.Background(), engine.Job{Kind: engine.KindCheck, Check: coinCheck()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report == nil || res.Report.States == 0 {
		t.Errorf("nil-pool run report = %+v, want metered states", res.Report)
	}
	if _, err := r.Run(context.Background(), engine.Job{Kind: "bogus"}); err == nil {
		t.Error("bogus job kind did not fail")
	}
}
