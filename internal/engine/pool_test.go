package engine_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/engine"
)

func TestPoolMapRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := engine.NewPool(workers)
		const n = 100
		var counts [n]int32
		if err := p.Map(context.Background(), n, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestPoolMapNilPoolSequential(t *testing.T) {
	var p *engine.Pool
	if got := p.Workers(); got != 1 {
		t.Errorf("nil pool Workers = %d", got)
	}
	ran := 0
	boom := errors.New("boom")
	err := p.Map(context.Background(), 10, func(i int) error {
		ran++
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
	// Sequential execution stops at the first error: indices 4..9 never run.
	if ran != 4 {
		t.Errorf("ran %d tasks, want 4", ran)
	}
}

func TestPoolMapLowestIndexError(t *testing.T) {
	// Whatever interleaving the pool produces, the reported error must be
	// the lowest-index one — the error a sequential run would return.
	p := engine.NewPool(4)
	for round := 0; round < 20; round++ {
		err := p.Map(context.Background(), 32, func(i int) error {
			if i == 5 || i == 6 || i == 20 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 5 failed" {
			t.Fatalf("round %d: err = %v, want task 5's error", round, err)
		}
	}
}

func TestPoolMapCancellation(t *testing.T) {
	p := engine.NewPool(2)
	ctx, cancel := context.WithCancel(context.Background())
	var launched int32
	block := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- p.Map(ctx, 1000, func(i int) error {
			atomic.AddInt32(&launched, 1)
			<-block
			return nil
		})
	}()
	cancel()
	close(block)
	err := <-done
	if launched == 1000 {
		t.Skip("all tasks launched before cancellation took effect")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestPoolMapCompletedBeforeCancelIsClean(t *testing.T) {
	// Cancelling after every task has been launched and completed must not
	// retroactively fail the map.
	p := engine.NewPool(4)
	ctx, cancel := context.WithCancel(context.Background())
	if err := p.Map(ctx, 50, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	cancel()
}

func TestPoolConcurrentMaps(t *testing.T) {
	// Many concurrent Map calls share one worker budget; run under -race
	// this also checks the pool's internal accounting.
	p := engine.NewPool(4)
	var wg sync.WaitGroup
	var total int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Map(context.Background(), 25, func(i int) error {
				atomic.AddInt64(&total, 1)
				return nil
			}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if total != 8*25 {
		t.Errorf("total tasks = %d, want %d", total, 8*25)
	}
}
