package engine

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"reflect"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/insight"
	"repro/internal/measure"
	"repro/internal/obs"
	"repro/internal/psioa"
	"repro/internal/resilience"
	"repro/internal/sched"
)

// Observability instruments for the cache; hit/miss counters are the
// acceptance signal that memoization is actually engaging across repeated
// checks (GET /v1/metrics on the daemon exposes them).
var (
	cCacheHits      = obs.C("engine.cache.hits")
	cCacheMisses    = obs.C("engine.cache.misses")
	cCacheEvictions = obs.C("engine.cache.evictions")
	gCacheSize      = obs.G("engine.cache.size")
)

// DefaultCacheSize is the default entry bound of a Cache.
const DefaultCacheSize = 4096

// DefaultCacheShards is the default lock-stripe count of a Cache. With the
// kernels themselves now parallel, many goroutines hit the cache at once;
// striping by key hash keeps them from serializing on a single mutex.
const DefaultCacheShards = 8

// maxFingerprintMemo bounds the identity-keyed fingerprint memo; when
// exceeded it is dropped wholesale (fingerprints are recomputable).
const maxFingerprintMemo = 8192

// Cache is a concurrency-safe, size-bounded LRU cache for the expensive
// intermediate results of implementation checks: exploration results and
// execution-measure distributions, keyed by a canonical automaton
// fingerprint (plus scheduler name, insight id and depth). It implements
// core.Memo (and core.MemoOpts), so it can be plugged into core.Options
// directly. Storage is lock-striped: keys map to N independent mutex-LRU
// shards by key hash, so the concurrent callers of the parallel kernels do
// not serialize on a single mutex, while hit/miss/eviction counters stay
// aggregated.
//
// Cached values are shared between callers and must be treated as
// read-only; everything the engine caches (Exploration, ExecMeasure,
// measure.Dist) is immutable after construction.
//
// Memoization keys schedulers by Scheduler.Name(). Every schema in
// internal/sched produces structurally-descriptive names (the sequence or
// priority order is part of the name), which makes the name canonical per
// automaton; hand-built FuncSched values that reuse an ID for different
// behaviour on the same automaton would alias and must not be mixed with a
// shared cache.
type Cache struct {
	shards  []cacheShard
	size    atomic.Int64 // total entries across shards (feeds gCacheSize)
	fpLimit int
	fpMu    sync.Mutex
	fps     map[psioa.PSIOA]string
	raw     RawBacking // optional disk tier under the raw namespace
}

// cacheShard is one mutex-striped LRU unit. Keys map to shards by fnv-1a
// hash, which is stable across runs, so a fixed operation sequence always
// touches the same shards in the same order and per-shard LRU eviction
// order is deterministic. Per-shard hit/miss/eviction counters (same cost
// class as the aggregate counters: one atomic add alongside each) expose
// stripe skew; lockWaitUS accumulates mutex acquisition wait and is
// collected only while tracing is enabled, so the default path pays no
// clock reads.
type cacheShard struct {
	mu         sync.Mutex
	cap        int
	ll         *list.List // front = most recently used
	items      map[string]*list.Element
	hits       atomic.Int64
	misses     atomic.Int64
	evictions  atomic.Int64
	lockWaitUS atomic.Int64
}

// lock acquires the shard mutex, timing the wait when tracing is enabled.
func (sh *cacheShard) lock() {
	if !obs.Active().Enabled() {
		sh.mu.Lock()
		return
	}
	t0 := time.Now()
	sh.mu.Lock()
	if w := time.Since(t0).Microseconds(); w > 0 {
		sh.lockWaitUS.Add(w)
	}
}

// CacheShardStat is a point-in-time view of one cache stripe: occupancy
// plus cumulative traffic and contention counters.
type CacheShardStat struct {
	Shard      int   `json:"shard"`
	Len        int   `json:"len"`
	Cap        int   `json:"cap"`
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Evictions  int64 `json:"evictions"`
	LockWaitUS int64 `json:"lock_wait_us,omitempty"`
}

type centry struct {
	key string
	val any
}

// NewCache returns a cache bounded to capacity entries (DefaultCacheSize if
// capacity <= 0), striped across DefaultCacheShards locks and
// fingerprinting automata with DefaultFingerprintLimit.
func NewCache(capacity int) *Cache {
	return NewCacheSharded(capacity, DefaultCacheShards)
}

// NewCacheSharded is NewCache with an explicit lock-stripe count. Capacity
// is divided across shards (rounded up, and shards are clamped to the
// capacity), so each shard evicts independently in its own deterministic
// LRU order; a single shard reproduces the exact global LRU of the
// unstriped cache.
func NewCacheSharded(capacity, shards int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	if shards <= 0 {
		shards = DefaultCacheShards
	}
	if shards > capacity {
		shards = capacity
	}
	per := (capacity + shards - 1) / shards
	c := &Cache{
		shards:  make([]cacheShard, shards),
		fpLimit: DefaultFingerprintLimit,
		fps:     make(map[psioa.PSIOA]string),
	}
	for i := range c.shards {
		c.shards[i].cap = per
		c.shards[i].ll = list.New()
		c.shards[i].items = make(map[string]*list.Element)
	}
	return c
}

// Shards returns the lock-stripe count.
func (c *Cache) Shards() int {
	if c == nil {
		return 0
	}
	return len(c.shards)
}

// shard returns the stripe owning key.
func (c *Cache) shard(key string) *cacheShard {
	h := fnv.New64a()
	h.Write([]byte(key))
	return &c.shards[h.Sum64()%uint64(len(c.shards))]
}

// SetFingerprintLimit overrides the exploration bound used when
// fingerprinting automata (see Fingerprint). Call before sharing the cache.
func (c *Cache) SetFingerprintLimit(limit int) { c.fpLimit = limit }

// Len returns the current number of cached entries across all shards.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	return int(c.size.Load())
}

// Get returns the cached value for key, marking it most recently used in
// its shard. Under an armed cache.evict fault point a present entry is
// dropped and reported as a miss, forcing recomputation downstream.
func (c *Cache) Get(key string) (any, bool) {
	sh := c.shard(key)
	sh.lock()
	defer sh.mu.Unlock()
	el, ok := sh.items[key]
	if !ok {
		cCacheMisses.Inc()
		sh.misses.Add(1)
		return nil, false
	}
	if resilience.Fire(resilience.FaultCacheEvict) {
		sh.ll.Remove(el)
		delete(sh.items, key)
		gCacheSize.Set(c.size.Add(-1))
		cCacheEvictions.Inc()
		cCacheMisses.Inc()
		sh.evictions.Add(1)
		sh.misses.Add(1)
		return nil, false
	}
	cCacheHits.Inc()
	sh.hits.Add(1)
	sh.ll.MoveToFront(el)
	return el.Value.(*centry).val, true
}

// Put stores a value, evicting the shard's least-recently-used entries over
// its capacity. Aggregate hit/miss/eviction counters and the size gauge are
// shared across shards.
func (c *Cache) Put(key string, v any) {
	sh := c.shard(key)
	sh.lock()
	defer sh.mu.Unlock()
	if el, ok := sh.items[key]; ok {
		el.Value.(*centry).val = v
		sh.ll.MoveToFront(el)
		return
	}
	sh.items[key] = sh.ll.PushFront(&centry{key: key, val: v})
	n := int64(1)
	for len(sh.items) > sh.cap {
		back := sh.ll.Back()
		sh.ll.Remove(back)
		delete(sh.items, back.Value.(*centry).key)
		cCacheEvictions.Inc()
		sh.evictions.Add(1)
		n--
	}
	gCacheSize.Set(c.size.Add(n))
}

// ShardStats returns a per-stripe snapshot: occupancy under each shard's
// lock, counters atomically. Ordered by shard index; nil cache → nil.
func (c *Cache) ShardStats() []CacheShardStat {
	if c == nil {
		return nil
	}
	out := make([]CacheShardStat, len(c.shards))
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n := len(sh.items)
		sh.mu.Unlock()
		out[i] = CacheShardStat{
			Shard:      i,
			Len:        n,
			Cap:        sh.cap,
			Hits:       sh.hits.Load(),
			Misses:     sh.misses.Load(),
			Evictions:  sh.evictions.Load(),
			LockWaitUS: sh.lockWaitUS.Load(),
		}
	}
	return out
}

// Totals sums the per-shard counters — the cache-local analogue of the
// process-wide engine.cache.* metrics, used to delta cache traffic around
// one job for its run report.
func (c *Cache) Totals() (hits, misses, evictions, lockWaitUS int64) {
	if c == nil {
		return 0, 0, 0, 0
	}
	for i := range c.shards {
		sh := &c.shards[i]
		hits += sh.hits.Load()
		misses += sh.misses.Load()
		evictions += sh.evictions.Load()
		lockWaitUS += sh.lockWaitUS.Load()
	}
	return hits, misses, evictions, lockWaitUS
}

// ErrCacheMiss reports a key absent from the cache. The raw store facade
// (GET /v1/store/{key} on dsed, cluster.Backend.StoreGet) classifies misses
// with it so callers distinguish "not cached" from transport failures.
var ErrCacheMiss = errors.New("engine: cache miss")

// rawPrefix namespaces raw store entries inside the striped LRU so they can
// never collide with the typed explore/measure/fdist memo keys: raw keys
// start with the printable byte 'r', typed memo keys with a control byte.
const rawPrefix = "raw|"

// RawBacking is a second, slower tier under the raw namespace — typically
// the disk store in internal/durable. GetRaw consults it on memory misses
// and PutRaw writes through to it. Load returns the stored bytes or an
// error (ErrCacheMiss-compatible for absence); Save persists them. Both
// must be safe for concurrent use.
type RawBacking interface {
	Load(key string) ([]byte, error)
	Save(key string, data []byte) error
}

// SetRawBacking installs a backing tier under the raw namespace. Call
// before sharing the cache; a nil cache or nil backing is a no-op/removal.
func (c *Cache) SetRawBacking(b RawBacking) {
	if c == nil {
		return
	}
	c.raw = b
}

// Typed memo keys are fixed-width: one kind byte plus the 16-byte fnv-1a
// 128 hash of the key parts. Seventeen bytes regardless of fingerprint,
// scheduler-name or insight-ID length, so shard routing and LRU map probes
// stop re-hashing long concatenated strings on every cache access.
const (
	memoExplore byte = 0x01
	memoMeasure byte = 0x02
	memoFDist   byte = 0x03
)

// memoKey builds the fixed-width key for a typed memo entry. Parts are
// NUL-separated before hashing, so no concatenation of distinct part
// tuples aliases; kind bytes keep the typed namespaces disjoint from each
// other and from rawPrefix.
func memoKey(kind byte, parts ...string) string {
	h := fnv.New128a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	b := make([]byte, 1, 17)
	b[0] = kind
	return string(h.Sum(b))
}

// GetRaw returns the canonical bytes stored under key by PutRaw, or
// ErrCacheMiss. Raw entries live in the same striped LRU as the kernel
// memos — they are looked up by content-addressed key alone, with no
// re-fingerprinting — and the lookup counts against the owning shard's
// hit/miss counters like any other access, so remote store traffic stays
// visible in ShardStats and the engine.cache.* metrics.
func (c *Cache) GetRaw(key string) ([]byte, error) {
	if c == nil {
		return nil, ErrCacheMiss
	}
	v, ok := c.Get(rawPrefix + key)
	if ok {
		b, ok := v.([]byte)
		if !ok {
			return nil, fmt.Errorf("engine: raw store entry %q holds %T: %w", key, v, ErrCacheMiss)
		}
		return b, nil
	}
	if c.raw != nil {
		// Memory miss: fall through to the backing tier and, on success,
		// promote the entry so the next lookup is a memory hit.
		b, err := c.raw.Load(key)
		if err == nil {
			c.Put(rawPrefix+key, append([]byte(nil), b...))
			return b, nil
		}
	}
	return nil, ErrCacheMiss
}

// PutRaw stores canonical bytes under key (see GetRaw), writing through to
// the backing tier when one is installed (backing failures degrade
// durability, not availability — the memory entry is kept either way). The
// bytes are copied, so callers may reuse their buffer; entries round-trip
// verbatim. A nil cache drops the entry.
func (c *Cache) PutRaw(key string, data []byte) {
	if c == nil {
		return
	}
	c.Put(rawPrefix+key, append([]byte(nil), data...))
	if c.raw != nil {
		_ = c.raw.Save(key, data)
	}
}

// Fingerprint returns the canonical fingerprint of a, memoized by identity
// for automata with comparable dynamic types (compositions produce fresh
// pointers per check, so the identity memo is bounded and periodically
// dropped rather than LRU-managed).
func (c *Cache) Fingerprint(a psioa.PSIOA) (string, error) {
	cmp := reflect.TypeOf(a).Comparable()
	if cmp {
		c.fpMu.Lock()
		fp, ok := c.fps[a]
		c.fpMu.Unlock()
		if ok {
			return fp, nil
		}
	}
	fp, err := Fingerprint(a, c.fpLimit)
	if err != nil {
		return "", err
	}
	if cmp {
		c.fpMu.Lock()
		if len(c.fps) >= maxFingerprintMemo {
			c.fps = make(map[psioa.PSIOA]string)
		}
		c.fps[a] = fp
		c.fpMu.Unlock()
	}
	return fp, nil
}

// Explore is a memoizing psioa.Explore: repeated explorations of
// structurally identical automata return the cached Exploration. A nil
// cache passes through.
func (c *Cache) Explore(a psioa.PSIOA, limit int) (*psioa.Exploration, error) {
	return c.ExploreCtx(context.Background(), a, limit, nil)
}

// ExploreCtx is Explore threading cancellation and a budget into the
// exploration. Results computed under an exhausted budget are partial and
// are returned to the caller but never cached.
func (c *Cache) ExploreCtx(ctx context.Context, a psioa.PSIOA, limit int, b *resilience.Budget) (*psioa.Exploration, error) {
	if c == nil {
		return psioa.ExploreCtx(ctx, a, limit, b)
	}
	fp, err := c.Fingerprint(a)
	if err != nil {
		return nil, err
	}
	key := memoKey(memoExplore, fp, strconv.Itoa(limit))
	if v, ok := c.Get(key); ok {
		return v.(*psioa.Exploration), nil
	}
	ex, err := psioa.ExploreCtx(ctx, a, limit, b)
	if err != nil {
		return ex, err
	}
	c.Put(key, ex)
	return ex, nil
}

// Measure is a memoizing sched.Measure: the exact execution measure of a
// (automaton, scheduler, depth) triple is expanded once and reused across
// checks. A nil cache passes through.
func (c *Cache) Measure(a psioa.PSIOA, s sched.Scheduler, maxDepth int) (*sched.ExecMeasure, error) {
	return c.MeasureCtx(context.Background(), a, s, maxDepth, nil)
}

// MeasureCtx is Measure threading cancellation and a budget into the
// expansion. A budget-bounded partial measure is returned with its error
// but never cached: only complete expansions are reused.
func (c *Cache) MeasureCtx(ctx context.Context, a psioa.PSIOA, s sched.Scheduler, maxDepth int, b *resilience.Budget) (*sched.ExecMeasure, error) {
	if c == nil {
		return sched.MeasureCtx(ctx, a, s, maxDepth, b)
	}
	fp, err := c.Fingerprint(a)
	if err != nil {
		return nil, err
	}
	key := memoKey(memoMeasure, fp, s.Name(), strconv.Itoa(maxDepth))
	if v, ok := c.Get(key); ok {
		return v.(*sched.ExecMeasure), nil
	}
	em, err := sched.MeasureCtx(ctx, a, s, maxDepth, b)
	if err != nil {
		return em, err
	}
	c.Put(key, em)
	return em, nil
}

// MeasureOpts is MeasureCtx computing misses with the parallel
// level-synchronous kernel. Parallel and sequential expansions are
// byte-identical, so they share cache keys: a measure expanded at one
// worker count is reused at any other. Partial results are never cached.
func (c *Cache) MeasureOpts(ctx context.Context, a psioa.PSIOA, s sched.Scheduler, maxDepth int, b *resilience.Budget, o sched.Options) (*sched.ExecMeasure, error) {
	if c == nil {
		return sched.MeasureOpts(ctx, a, s, maxDepth, b, o)
	}
	fp, err := c.Fingerprint(a)
	if err != nil {
		return nil, err
	}
	key := memoKey(memoMeasure, fp, s.Name(), strconv.Itoa(maxDepth))
	if v, ok := c.Get(key); ok {
		return v.(*sched.ExecMeasure), nil
	}
	em, err := sched.MeasureOpts(ctx, a, s, maxDepth, b, o)
	if err != nil {
		return em, err
	}
	c.Put(key, em)
	return em, nil
}

// FDist is a memoizing insight.FDist, the hot path of Implements: the image
// distribution is cached per (automaton, scheduler, insight, depth), and a
// miss reuses a cached execution measure when one exists. A nil cache
// passes through.
func (c *Cache) FDist(w psioa.PSIOA, s sched.Scheduler, f insight.Insight, maxDepth int) (*measure.Dist[string], error) {
	return c.FDistCtx(context.Background(), w, s, f, maxDepth, nil)
}

// FDistCtx is FDist threading cancellation and a budget into the underlying
// expansion; it implements core.Memo. Interrupted computations — including
// budget-bounded partial measures — are never cached.
func (c *Cache) FDistCtx(ctx context.Context, w psioa.PSIOA, s sched.Scheduler, f insight.Insight, maxDepth int, b *resilience.Budget) (*measure.Dist[string], error) {
	if c == nil {
		return insight.FDistCtx(ctx, w, s, f, maxDepth, b)
	}
	fp, err := c.Fingerprint(w)
	if err != nil {
		return nil, err
	}
	key := memoKey(memoFDist, fp, s.Name(), f.ID, strconv.Itoa(maxDepth))
	if v, ok := c.Get(key); ok {
		return v.(*measure.Dist[string]), nil
	}
	em, err := c.MeasureCtx(ctx, w, s, maxDepth, b)
	if err != nil {
		return nil, err
	}
	img := em.Image(func(fr *psioa.Frag) string { return f.Apply(w, fr) })
	c.Put(key, img)
	return img, nil
}

// FDistOpts is FDistCtx with kernel options; it implements core.MemoOpts.
// State-local insights under depth-oblivious schedulers compute on the
// state-collapsed DAG (no tree expansion is performed or cached); other
// misses reuse or expand the tree measure through MeasureOpts. Both routes
// fill the same fdist key — the distributions agree — so DAG-computed
// images are reused by tree-routed callers and vice versa.
func (c *Cache) FDistOpts(ctx context.Context, w psioa.PSIOA, s sched.Scheduler, f insight.Insight, maxDepth int, b *resilience.Budget, o sched.Options) (*measure.Dist[string], error) {
	if c == nil {
		return insight.FDistOpts(ctx, w, s, f, maxDepth, b, o)
	}
	fp, err := c.Fingerprint(w)
	if err != nil {
		return nil, err
	}
	key := memoKey(memoFDist, fp, s.Name(), f.ID, strconv.Itoa(maxDepth))
	if v, ok := c.Get(key); ok {
		return v.(*measure.Dist[string]), nil
	}
	if f.StateLocal != nil {
		if _, ok := sched.AsDepthOblivious(s); ok {
			img, err := insight.FDistOpts(ctx, w, s, f, maxDepth, b, o)
			if err != nil {
				return nil, err
			}
			c.Put(key, img)
			return img, nil
		}
	}
	em, err := c.MeasureOpts(ctx, w, s, maxDepth, b, o)
	if err != nil {
		return nil, err
	}
	img := em.Image(func(fr *psioa.Frag) string { return f.Apply(w, fr) })
	c.Put(key, img)
	return img, nil
}
