package engine

import (
	"container/list"
	"context"
	"reflect"
	"strconv"
	"sync"

	"repro/internal/insight"
	"repro/internal/measure"
	"repro/internal/obs"
	"repro/internal/psioa"
	"repro/internal/resilience"
	"repro/internal/sched"
)

// Observability instruments for the cache; hit/miss counters are the
// acceptance signal that memoization is actually engaging across repeated
// checks (GET /v1/metrics on the daemon exposes them).
var (
	cCacheHits      = obs.C("engine.cache.hits")
	cCacheMisses    = obs.C("engine.cache.misses")
	cCacheEvictions = obs.C("engine.cache.evictions")
	gCacheSize      = obs.G("engine.cache.size")
)

// DefaultCacheSize is the default entry bound of a Cache.
const DefaultCacheSize = 4096

// maxFingerprintMemo bounds the identity-keyed fingerprint memo; when
// exceeded it is dropped wholesale (fingerprints are recomputable).
const maxFingerprintMemo = 8192

// Cache is a concurrency-safe, size-bounded LRU cache for the expensive
// intermediate results of implementation checks: exploration results and
// execution-measure distributions, keyed by a canonical automaton
// fingerprint (plus scheduler name, insight id and depth). It implements
// core.Memo, so it can be plugged into core.Options directly.
//
// Cached values are shared between callers and must be treated as
// read-only; everything the engine caches (Exploration, ExecMeasure,
// measure.Dist) is immutable after construction.
//
// Memoization keys schedulers by Scheduler.Name(). Every schema in
// internal/sched produces structurally-descriptive names (the sequence or
// priority order is part of the name), which makes the name canonical per
// automaton; hand-built FuncSched values that reuse an ID for different
// behaviour on the same automaton would alias and must not be mixed with a
// shared cache.
type Cache struct {
	mu      sync.Mutex
	cap     int
	fpLimit int
	ll      *list.List // front = most recently used
	items   map[string]*list.Element
	fps     map[psioa.PSIOA]string
}

type centry struct {
	key string
	val any
}

// NewCache returns a cache bounded to capacity entries (DefaultCacheSize if
// capacity <= 0), fingerprinting automata with DefaultFingerprintLimit.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &Cache{
		cap:     capacity,
		fpLimit: DefaultFingerprintLimit,
		ll:      list.New(),
		items:   make(map[string]*list.Element),
		fps:     make(map[psioa.PSIOA]string),
	}
}

// SetFingerprintLimit overrides the exploration bound used when
// fingerprinting automata (see Fingerprint). Call before sharing the cache.
func (c *Cache) SetFingerprintLimit(limit int) { c.fpLimit = limit }

// Len returns the current number of cached entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Get returns the cached value for key, marking it most recently used.
// Under an armed cache.evict fault point a present entry is dropped and
// reported as a miss, forcing recomputation downstream.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		cCacheMisses.Inc()
		return nil, false
	}
	if resilience.Fire(resilience.FaultCacheEvict) {
		c.ll.Remove(el)
		delete(c.items, key)
		gCacheSize.Set(int64(len(c.items)))
		cCacheEvictions.Inc()
		cCacheMisses.Inc()
		return nil, false
	}
	cCacheHits.Inc()
	c.ll.MoveToFront(el)
	return el.Value.(*centry).val, true
}

// Put stores a value, evicting least-recently-used entries over capacity.
func (c *Cache) Put(key string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*centry).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&centry{key: key, val: v})
	for len(c.items) > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*centry).key)
		cCacheEvictions.Inc()
	}
	gCacheSize.Set(int64(len(c.items)))
}

// Fingerprint returns the canonical fingerprint of a, memoized by identity
// for automata with comparable dynamic types (compositions produce fresh
// pointers per check, so the identity memo is bounded and periodically
// dropped rather than LRU-managed).
func (c *Cache) Fingerprint(a psioa.PSIOA) (string, error) {
	cmp := reflect.TypeOf(a).Comparable()
	if cmp {
		c.mu.Lock()
		fp, ok := c.fps[a]
		c.mu.Unlock()
		if ok {
			return fp, nil
		}
	}
	fp, err := Fingerprint(a, c.fpLimit)
	if err != nil {
		return "", err
	}
	if cmp {
		c.mu.Lock()
		if len(c.fps) >= maxFingerprintMemo {
			c.fps = make(map[psioa.PSIOA]string)
		}
		c.fps[a] = fp
		c.mu.Unlock()
	}
	return fp, nil
}

// Explore is a memoizing psioa.Explore: repeated explorations of
// structurally identical automata return the cached Exploration. A nil
// cache passes through.
func (c *Cache) Explore(a psioa.PSIOA, limit int) (*psioa.Exploration, error) {
	return c.ExploreCtx(context.Background(), a, limit, nil)
}

// ExploreCtx is Explore threading cancellation and a budget into the
// exploration. Results computed under an exhausted budget are partial and
// are returned to the caller but never cached.
func (c *Cache) ExploreCtx(ctx context.Context, a psioa.PSIOA, limit int, b *resilience.Budget) (*psioa.Exploration, error) {
	if c == nil {
		return psioa.ExploreCtx(ctx, a, limit, b)
	}
	fp, err := c.Fingerprint(a)
	if err != nil {
		return nil, err
	}
	key := "explore|" + fp + "|" + strconv.Itoa(limit)
	if v, ok := c.Get(key); ok {
		return v.(*psioa.Exploration), nil
	}
	ex, err := psioa.ExploreCtx(ctx, a, limit, b)
	if err != nil {
		return ex, err
	}
	c.Put(key, ex)
	return ex, nil
}

// Measure is a memoizing sched.Measure: the exact execution measure of a
// (automaton, scheduler, depth) triple is expanded once and reused across
// checks. A nil cache passes through.
func (c *Cache) Measure(a psioa.PSIOA, s sched.Scheduler, maxDepth int) (*sched.ExecMeasure, error) {
	return c.MeasureCtx(context.Background(), a, s, maxDepth, nil)
}

// MeasureCtx is Measure threading cancellation and a budget into the
// expansion. A budget-bounded partial measure is returned with its error
// but never cached: only complete expansions are reused.
func (c *Cache) MeasureCtx(ctx context.Context, a psioa.PSIOA, s sched.Scheduler, maxDepth int, b *resilience.Budget) (*sched.ExecMeasure, error) {
	if c == nil {
		return sched.MeasureCtx(ctx, a, s, maxDepth, b)
	}
	fp, err := c.Fingerprint(a)
	if err != nil {
		return nil, err
	}
	key := "measure|" + fp + "|" + s.Name() + "|" + strconv.Itoa(maxDepth)
	if v, ok := c.Get(key); ok {
		return v.(*sched.ExecMeasure), nil
	}
	em, err := sched.MeasureCtx(ctx, a, s, maxDepth, b)
	if err != nil {
		return em, err
	}
	c.Put(key, em)
	return em, nil
}

// FDist is a memoizing insight.FDist, the hot path of Implements: the image
// distribution is cached per (automaton, scheduler, insight, depth), and a
// miss reuses a cached execution measure when one exists. A nil cache
// passes through.
func (c *Cache) FDist(w psioa.PSIOA, s sched.Scheduler, f insight.Insight, maxDepth int) (*measure.Dist[string], error) {
	return c.FDistCtx(context.Background(), w, s, f, maxDepth, nil)
}

// FDistCtx is FDist threading cancellation and a budget into the underlying
// expansion; it implements core.Memo. Interrupted computations — including
// budget-bounded partial measures — are never cached.
func (c *Cache) FDistCtx(ctx context.Context, w psioa.PSIOA, s sched.Scheduler, f insight.Insight, maxDepth int, b *resilience.Budget) (*measure.Dist[string], error) {
	if c == nil {
		return insight.FDistCtx(ctx, w, s, f, maxDepth, b)
	}
	fp, err := c.Fingerprint(w)
	if err != nil {
		return nil, err
	}
	key := "fdist|" + fp + "|" + s.Name() + "|" + f.ID + "|" + strconv.Itoa(maxDepth)
	if v, ok := c.Get(key); ok {
		return v.(*measure.Dist[string]), nil
	}
	em, err := c.MeasureCtx(ctx, w, s, maxDepth, b)
	if err != nil {
		return nil, err
	}
	img := em.Image(func(fr *psioa.Frag) string { return f.Apply(w, fr) })
	c.Put(key, img)
	return img, nil
}
