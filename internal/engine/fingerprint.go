package engine

import (
	"fmt"
	"hash/fnv"
	"strconv"

	"repro/internal/obs"
	"repro/internal/psioa"
)

// DefaultFingerprintLimit bounds the exploration a fingerprint is computed
// from. Automata larger than this still fingerprint (the hash covers the
// first DefaultFingerprintLimit states plus a truncation marker), but
// distinct automata that agree on that fragment would collide, so cache
// users working with larger systems should raise the limit.
const DefaultFingerprintLimit = 1 << 15

var cFingerprints = obs.C("engine.fingerprints")

// Fingerprint computes a canonical identity for an automaton: a hash over
// its ID, start state, and the sorted reachable transition structure
// (states, signatures, and transition measures, all in canonical order, the
// same representation internal/codec's encodings canonicalise). Two automata
// with equal fingerprints behave identically on their explored fragment, so
// the fingerprint is a sound memoization key for Explore and Measure
// results. limit <= 0 means DefaultFingerprintLimit.
func Fingerprint(a psioa.PSIOA, limit int) (string, error) {
	if limit <= 0 {
		limit = DefaultFingerprintLimit
	}
	ex, err := psioa.Explore(a, limit)
	if err != nil {
		return "", err
	}
	cFingerprints.Inc()
	h := fnv.New128a()
	wr := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	wr(a.ID())
	wr(string(a.Start()))
	for _, q := range ex.SortedStates() {
		sig := ex.Sigs[q]
		wr("q")
		wr(string(q))
		for _, part := range []struct {
			tag  string
			acts psioa.ActionSet
		}{{"in", sig.In}, {"out", sig.Out}, {"int", sig.Int}} {
			wr(part.tag)
			for _, act := range part.acts.Sorted() {
				wr(string(act))
			}
		}
		for _, act := range psioa.SortedAll(sig) {
			wr("t")
			wr(string(act))
			d := a.Trans(q, act)
			// Lexicographic successor order, shared with the transition
			// measure's cached sorted view instead of copied and re-sorted
			// per call.
			succs := d.SortedSupport()
			for _, q2 := range succs {
				wr(string(q2))
				wr(strconv.FormatFloat(d.P(q2), 'g', -1, 64))
			}
		}
	}
	fp := fmt.Sprintf("%x", h.Sum(nil))
	if ex.Truncated {
		// A truncated exploration identifies only the explored fragment;
		// mark it so such keys are visibly partial.
		fp += "!trunc"
	}
	return fp, nil
}
