package engine_test

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/insight"
	"repro/internal/obs"
	"repro/internal/protocols/coin"
	"repro/internal/psioa"
	"repro/internal/sched"
)

func TestFingerprintCanonical(t *testing.T) {
	fp1, err := engine.Fingerprint(coin.Fair("x"), 0)
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := engine.Fingerprint(coin.Fair("x"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Errorf("same automaton, different fingerprints: %s vs %s", fp1, fp2)
	}
	fp3, err := engine.Fingerprint(coin.Flipper("x", 0.75), 0)
	if err != nil {
		t.Fatal(err)
	}
	if fp1 == fp3 {
		t.Error("fair and biased coin share a fingerprint")
	}
	// A composition fingerprints like itself, built twice.
	w1 := psioa.MustCompose(coin.Fair("x"), coin.Env("x"))
	w2 := psioa.MustCompose(coin.Fair("x"), coin.Env("x"))
	g1, err := engine.Fingerprint(w1, 0)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := engine.Fingerprint(w2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Error("structurally identical compositions fingerprint differently")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	ev0 := obs.C("engine.cache.evictions").Value()
	// A single shard pins the exact global LRU order; the striped default
	// only guarantees LRU order per shard.
	c := engine.NewCacheSharded(2, 1)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", 3)
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted as least recently used")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should have survived")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c should have survived")
	}
	if got := obs.C("engine.cache.evictions").Value() - ev0; got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
}

func TestCacheHitMissCounters(t *testing.T) {
	c := engine.NewCache(16)
	w := psioa.MustCompose(coin.Fair("x"), coin.Env("x"))
	s := &sched.Greedy{A: w, Bound: 3, LocalOnly: true}

	hits0 := obs.C("engine.cache.hits").Value()
	miss0 := obs.C("engine.cache.misses").Value()
	if _, err := c.FDist(w, s, insight.Trace(), 6); err != nil {
		t.Fatal(err)
	}
	if obs.C("engine.cache.hits").Value() != hits0 {
		t.Error("cold FDist should not hit")
	}
	if obs.C("engine.cache.misses").Value() == miss0 {
		t.Error("cold FDist should record misses")
	}
	hits1 := obs.C("engine.cache.hits").Value()
	if _, err := c.FDist(w, s, insight.Trace(), 6); err != nil {
		t.Fatal(err)
	}
	if obs.C("engine.cache.hits").Value() <= hits1 {
		t.Error("warm FDist should hit the cache")
	}
}

// TestCachedIdentity is the memoization regression: every cached accessor
// must return results identical to the uncached computation.
func TestCachedIdentity(t *testing.T) {
	c := engine.NewCache(64)
	w := psioa.MustCompose(coin.Flipper("x", 0.625), coin.Env("x"))
	s := &sched.Greedy{A: w, Bound: 4, LocalOnly: true}
	f := insight.Trace()
	const depth = 8

	exPlain, err := psioa.Explore(w, 10000)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ { // round 1 exercises the hit path
		ex, err := c.Explore(w, 10000)
		if err != nil {
			t.Fatal(err)
		}
		if len(ex.States) != len(exPlain.States) || ex.Truncated != exPlain.Truncated {
			t.Errorf("round %d: cached exploration differs: %d states vs %d",
				round, len(ex.States), len(exPlain.States))
		}
	}

	emPlain, err := sched.Measure(w, s, depth)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		em, err := c.Measure(w, s, depth)
		if err != nil {
			t.Fatal(err)
		}
		if em.Len() != emPlain.Len() || em.Total() != emPlain.Total() || em.MaxLen() != emPlain.MaxLen() {
			t.Errorf("round %d: cached measure differs: len %d/%d total %v/%v",
				round, em.Len(), emPlain.Len(), em.Total(), emPlain.Total())
		}
	}

	dPlain, err := insight.FDist(w, s, f, depth)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		d, err := c.FDist(w, s, f, depth)
		if err != nil {
			t.Fatal(err)
		}
		if d.Len() != dPlain.Len() {
			t.Fatalf("round %d: support size %d, want %d", round, d.Len(), dPlain.Len())
		}
		for _, k := range dPlain.Support() {
			if math.Abs(d.P(k)-dPlain.P(k)) > 0 {
				t.Errorf("round %d: P(%q) = %v, want %v", round, k, d.P(k), dPlain.P(k))
			}
		}
	}
}

func TestNilCachePassesThrough(t *testing.T) {
	var c *engine.Cache
	w := psioa.MustCompose(coin.Fair("x"), coin.Env("x"))
	s := &sched.Greedy{A: w, Bound: 3, LocalOnly: true}
	if _, err := c.Explore(w, 1000); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Measure(w, s, 6); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FDist(w, s, insight.Trace(), 6); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Error("nil cache has entries?")
	}
}

func TestSchedulerNameDisambiguates(t *testing.T) {
	// Two different schedulers on the same automaton must not alias in the
	// cache: the memo key includes Scheduler.Name().
	c := engine.NewCache(64)
	w := psioa.MustCompose(coin.Fair("x"), coin.Env("x"))
	g := &sched.Greedy{A: w, Bound: 1, LocalOnly: true}
	g2 := &sched.Greedy{A: w, Bound: 4, LocalOnly: true}
	em1, err := c.Measure(w, g, 8)
	if err != nil {
		t.Fatal(err)
	}
	em2, err := c.Measure(w, g2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if em1.MaxLen() == em2.MaxLen() {
		t.Errorf("bound-1 and bound-4 greedy measures alias: MaxLen %d both", em1.MaxLen())
	}
}

// TestCacheStripedDeterminism pins the shard design: fnv-1a shard selection
// is stable across runs, so a fixed operation sequence leaves the same
// surviving keys for a fixed (capacity, shards) pair — per-shard LRU
// eviction is deterministic at any stripe count.
func TestCacheStripedDeterminism(t *testing.T) {
	ops := func(c *engine.Cache) string {
		for i := 0; i < 64; i++ {
			c.Put(fmt.Sprintf("k%d", i), i)
			if i%3 == 0 {
				c.Get(fmt.Sprintf("k%d", i/2))
			}
		}
		var surviving []string
		for i := 0; i < 64; i++ {
			k := fmt.Sprintf("k%d", i)
			if _, ok := c.Get(k); ok {
				surviving = append(surviving, k)
			}
		}
		return strings.Join(surviving, ",")
	}
	for _, shards := range []int{1, 8} {
		a := ops(engine.NewCacheSharded(16, shards))
		b := ops(engine.NewCacheSharded(16, shards))
		if a != b {
			t.Errorf("shards=%d: same op sequence, different survivors:\n%s\nvs\n%s", shards, a, b)
		}
	}
}

// TestCacheShardedClamps pins the constructor invariants: stripes never
// exceed capacity, defaults apply, and capacity stays an aggregate bound.
func TestCacheShardedClamps(t *testing.T) {
	if got := engine.NewCacheSharded(2, 8).Shards(); got != 2 {
		t.Errorf("Shards() = %d, want clamped to capacity 2", got)
	}
	if got := engine.NewCacheSharded(0, 0).Shards(); got != engine.DefaultCacheShards {
		t.Errorf("Shards() = %d, want default %d", got, engine.DefaultCacheShards)
	}
	c := engine.NewCacheSharded(16, 4)
	for i := 0; i < 200; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	// Per-shard caps round up, so the aggregate bound is capacity + shards-1
	// in the worst hash skew.
	if c.Len() > 16+3 {
		t.Errorf("Len = %d after overfill, want <= 19", c.Len())
	}
}

// TestCacheConcurrentAccess hammers the striped cache from many goroutines —
// the race detector validates the locking, and the size gauge must settle to
// the real entry count.
func TestCacheConcurrentAccess(t *testing.T) {
	c := engine.NewCacheSharded(128, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				k := fmt.Sprintf("k%d", (g*31+i)%96)
				if _, ok := c.Get(k); !ok {
					c.Put(k, i)
				}
			}
		}(g)
	}
	wg.Wait()
	n := 0
	for i := 0; i < 96; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); ok {
			n++
		}
	}
	if c.Len() != n {
		t.Errorf("Len = %d, but %d keys present", c.Len(), n)
	}
}
