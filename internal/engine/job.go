package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"time"

	"repro/internal/bounded"
	"repro/internal/core"
	"repro/internal/insight"
	"repro/internal/measure"
	"repro/internal/obs"
	"repro/internal/pca"
	"repro/internal/psioa"
	"repro/internal/resilience"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/spec"
)

// Job kinds.
const (
	KindCheck    = "check"
	KindSimulate = "simulate"
	KindDescribe = "describe"
)

// Job is one batch request, expressed as a value so the same code path
// backs the CLI tools, tests and the dsed daemon. Exactly one of the spec
// fields matching Kind must be set.
type Job struct {
	// Kind selects the operation: check | simulate | describe.
	Kind string `json:"kind"`
	// Check is the Def 4.12 implementation check request.
	Check *CheckSpec `json:"check,omitempty"`
	// Simulate is the execution-measure / Monte-Carlo request.
	Simulate *SimulateSpec `json:"simulate,omitempty"`
	// Describe is the §4.1–4.2 resource-bound profile request.
	Describe *DescribeSpec `json:"describe,omitempty"`
	// TimeoutMS bounds the job's run time (0 = caller's default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// BudgetStates / BudgetTransitions / BudgetWallMS bound the total
	// kernel work of the job (shared across all its workers); zero means
	// unlimited. Simulate jobs degrade gracefully to a partial result;
	// check jobs fail with an ErrBudgetExceeded-classified error (a
	// verdict from a partial expansion would be unsound).
	BudgetStates      int64 `json:"budget_states,omitempty"`
	BudgetTransitions int64 `json:"budget_transitions,omitempty"`
	BudgetWallMS      int64 `json:"budget_wall_ms,omitempty"`
}

// Fingerprint canonically identifies the job's workload — kind, spec and
// budget, but not the timeout — for the circuit breaker: two submissions
// of the same spec share a quarantine state regardless of deadline.
func (j Job) Fingerprint() string {
	j.TimeoutMS = 0
	b, err := json.Marshal(j)
	if err != nil {
		return "job-unmarshalable"
	}
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("job-%016x", h.Sum64())
}

// CheckSpec describes an Implements run over spec references (see
// internal/spec.Resolve for the reference syntax).
type CheckSpec struct {
	Left      string     `json:"left"`
	Right     string     `json:"right"`
	Envs      []string   `json:"envs"`
	Schema    string     `json:"schema,omitempty"` // oblivious | basic | priority (default oblivious)
	Templates [][]string `json:"templates,omitempty"`
	Insight   string     `json:"insight,omitempty"` // trace | accept:<act> | print:<prefix> (default trace)
	Eps       float64    `json:"eps"`
	Q1        int        `json:"q1"`
	Q2        int        `json:"q2,omitempty"`
	MaxDepth  int        `json:"max_depth,omitempty"`
}

// SimulateSpec describes an exact execution-measure computation (Samples ==
// 0) or a Monte-Carlo estimate (Samples > 0) of the composed systems under
// one scheduler.
type SimulateSpec struct {
	Systems []string `json:"systems"`
	Sched   string   `json:"sched,omitempty"` // greedy | random | priority | sequence (default greedy)
	Order   []string `json:"order,omitempty"`
	Bound   int      `json:"bound"`
	Samples int      `json:"samples,omitempty"`
	Seed    uint64   `json:"seed,omitempty"`
	Insight string   `json:"insight,omitempty"`
	// MaxDepth guards the expansion; default 4*Bound+16.
	MaxDepth int `json:"max_depth,omitempty"`
}

// DescribeSpec describes a resource-bound profile request. With exactly two
// systems the empirical Lemma 4.3 composition bound is also reported.
type DescribeSpec struct {
	Systems []string `json:"systems"`
	Limit   int      `json:"limit,omitempty"` // exploration limit, default 100000
}

// SimOutcome is one row of a simulated insight distribution.
type SimOutcome struct {
	Key string  `json:"key"`
	P   float64 `json:"p"`
}

// SimulateResult is the outcome of a simulate job. For exact runs the
// measure statistics are filled; for sampled runs Executions is the sample
// count and TotalMass 1. When a work budget ran out mid-expansion the
// result is the exact sub-probability prefix expanded so far, flagged
// Partial with the budget diagnostics in Degraded.
type SimulateResult struct {
	Exact      bool         `json:"exact"`
	InsightID  string       `json:"insight_id"`
	Executions int          `json:"executions"`
	TotalMass  float64      `json:"total_mass"`
	MaxLen     int          `json:"max_len"`
	Outcomes   []SimOutcome `json:"outcomes"`
	Partial    bool         `json:"partial,omitempty"`
	Degraded   string       `json:"degraded,omitempty"`
}

// SystemDescription is the profile of one system in a describe job.
type SystemDescription struct {
	Ref            string `json:"ref"`
	Description    string `json:"description"`
	QueryMaxBits   int64  `json:"query_max_bits"`
	QueryTotalBits int64  `json:"query_total_bits"`
	States         int    `json:"states"`
	Actions        int    `json:"actions"`
	Truncated      bool   `json:"truncated"`
}

// DescribeResult is the outcome of a describe job.
type DescribeResult struct {
	Systems          []SystemDescription `json:"systems"`
	CompositionBound string              `json:"composition_bound,omitempty"`
}

// Result is the outcome of a job; the field matching the job's Kind is set.
// Report is the job's telemetry account (always attached by Run). WorkerID
// names the node that computed the result (see Runner.WorkerID) so merged
// cluster reports and /v1/debug can attribute shards to nodes; it is empty
// for anonymous runners.
type Result struct {
	Kind     string          `json:"kind"`
	WorkerID string          `json:"worker_id,omitempty"`
	Check    *core.Report    `json:"check,omitempty"`
	Simulate *SimulateResult `json:"simulate,omitempty"`
	Describe *DescribeResult `json:"describe,omitempty"`
	Report   *obs.RunReport  `json:"run_report,omitempty"`
}

// Observability instruments for the runner.
var (
	cJobsRun    = obs.C("engine.jobs.run")
	cJobsFailed = obs.C("engine.jobs.failed")
)

// Runner executes jobs on a shared pool with a shared memoization cache.
// Both may be nil (sequential, uncached). The zero Resolve resolves system
// references through internal/spec.
type Runner struct {
	Pool  *Pool
	Cache *Cache
	// WorkerID is a stable identity for this runner's node, stamped on
	// every Result it produces (dsed derives it from -worker-id or the
	// hostname). Empty leaves results unattributed.
	WorkerID string
	Resolve  func(ref string) (psioa.PSIOA, error)
}

// NewRunner returns a runner over the given pool and cache.
func NewRunner(pool *Pool, cache *Cache) *Runner {
	return &Runner{Pool: pool, Cache: cache}
}

func (r *Runner) resolve(ref string) (psioa.PSIOA, error) {
	if r.Resolve != nil {
		return r.Resolve(ref)
	}
	return spec.Resolve(ref)
}

func (r *Runner) resolveAll(refs []string) ([]psioa.PSIOA, error) {
	out := make([]psioa.PSIOA, 0, len(refs))
	for _, ref := range refs {
		a, err := r.resolve(ref)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// options assembles core.Options wired to the runner's pool, cache and the
// job's budget, collecting kernel telemetry into st when non-nil.
func (r *Runner) options(ctx context.Context, b *resilience.Budget, st *sched.Stats) core.Options {
	opt := core.Options{Ctx: ctx, Budget: b, Kernel: r.kernelOpts(st)}
	if r.Pool != nil {
		opt.Exec = r.Pool
	}
	if r.Cache != nil {
		opt.Memo = r.Cache
	}
	return opt
}

// kernelOpts derives the sched kernel options from the runner's pool: the
// worker count only, never the pool handle itself — check jobs already run
// per-pair tasks on the pool, and a kernel fanning its frontier shards back
// onto the same semaphore from inside one of those tasks would deadlock.
// The kernels spawn private bounded goroutines instead. st (may be nil)
// threads the job's telemetry collector into every kernel call.
func (r *Runner) kernelOpts(st *sched.Stats) sched.Options {
	if r.Pool == nil {
		return sched.Options{Stats: st}
	}
	return sched.Options{Workers: r.Pool.Workers(), Stats: st}
}

// budget materialises the job's work budget; nil when the job sets none.
// The budget is created per Run (its wall clock starts now) and shared by
// every worker the job fans out to.
func (j Job) budget() *resilience.Budget {
	if j.BudgetStates <= 0 && j.BudgetTransitions <= 0 && j.BudgetWallMS <= 0 {
		return nil
	}
	return resilience.NewBudget(j.BudgetStates, j.BudgetTransitions, time.Duration(j.BudgetWallMS)*time.Millisecond)
}

// Run executes one job. The context bounds the run; Job.TimeoutMS, when
// set, tightens it further. Errors are classified: context termination
// surfaces as resilience.ErrDeadline/ErrCancelled, budget exhaustion (on
// jobs that cannot degrade) as resilience.ErrBudgetExceeded.
func (r *Runner) Run(ctx context.Context, job Job) (*Result, error) {
	if job.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(job.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	cJobsRun.Inc()
	start := time.Now()
	st := &sched.Stats{}
	bud := job.budget()
	if bud == nil {
		// Metering without enforcement: checkpoints created with a nil
		// budget fall back to the process default budget, so substitute
		// that when one is installed (its limits must stay enforced), and
		// an always-passing NewBudget(0,0,0) otherwise — it never trips
		// but still tallies the job's states and transitions for the run
		// report.
		if bud = resilience.DefaultBudget(); bud == nil {
			bud = resilience.NewBudget(0, 0, 0)
		}
	}
	states0, trans0 := bud.Used()
	hits0, miss0, evict0, lock0 := r.Cache.Totals()
	memo0 := psioa.SortMemoSnapshot()
	res, err := r.dispatch(ctx, job, bud, st)
	if err != nil {
		err = resilience.WrapCtx(err)
		cJobsFailed.Inc()
	}
	if res != nil {
		res.WorkerID = r.WorkerID
		states1, trans1 := bud.Used()
		hits1, miss1, evict1, lock1 := r.Cache.Totals()
		memo1 := psioa.SortMemoSnapshot()
		rep := &obs.RunReport{
			Kind:              job.Kind,
			WallUS:            time.Since(start).Microseconds(),
			States:            states1 - states0,
			Transitions:       trans1 - trans0,
			DepthReached:      st.DepthReached(),
			CacheHits:         hits1 - hits0,
			CacheMisses:       miss1 - miss0,
			CacheEvictions:    evict1 - evict0,
			CacheLockWaitUS:   lock1 - lock0,
			SortMemoHits:      memo1.Hits - memo0.Hits,
			SortMemoMisses:    memo1.Misses - memo0.Misses,
			SortMemoResets:    memo1.Resets - memo0.Resets,
			SortMemoEntries:   int64(memo1.Entries),
			BudgetStates:      job.BudgetStates,
			BudgetTransitions: job.BudgetTransitions,
			Workers:           r.Pool.Workers(),
			Levels:            st.Levels(),
			Shards:            st.Shards(),
			Phases:            st.Phases(),
		}
		rep.ShardImbalance = obs.Imbalance(rep.Shards)
		for _, s := range rep.Shards {
			rep.BarrierWaitUS += s.BarrierWaitUS
		}
		if tot := rep.CacheHits + rep.CacheMisses; tot > 0 {
			rep.CacheHitRatio = float64(rep.CacheHits) / float64(tot)
		}
		phaseQuantiles(rep.Phases)
		res.Report = rep
	}
	return res, err
}

// phaseQuantiles fills each phase row's wall quantiles from the matching
// duration histogram of the default registry. The histograms are
// process-cumulative (per-call durations across the process lifetime), so
// the quantiles characterise the kernel family, not this job alone.
func phaseQuantiles(phases []obs.PhaseStat) {
	for i := range phases {
		var names []string
		switch phases[i].Name {
		case "sched.measure":
			names = []string{"sched.measure.par.us", "sched.measure.us"}
		case "sched.sample":
			names = []string{"sched.sample.par.us"}
		case "sched.measure.dag":
			names = []string{"sched.measure.dag.us"}
		}
		for _, n := range names {
			if s := obs.H(n).Snapshot(); s.Count > 0 {
				phases[i].P50US, phases[i].P95US, phases[i].P99US = s.P50, s.P95, s.P99
				break
			}
		}
	}
}

// RunSafe is Run behind a panic isolation boundary: a panicking job
// becomes a *resilience.PanicError instead of killing the caller. The
// daemon's handlers and the async store run jobs through it.
func (r *Runner) RunSafe(ctx context.Context, job Job) (res *Result, err error) {
	defer resilience.RecoverTo(&err)
	return r.Run(ctx, job)
}

func (r *Runner) dispatch(ctx context.Context, job Job, bud *resilience.Budget, st *sched.Stats) (*Result, error) {
	if err := resilience.FireErr(resilience.FaultJobTransient); err != nil {
		return nil, err
	}
	switch job.Kind {
	case KindCheck:
		if job.Check == nil {
			return nil, fmt.Errorf("engine: check job without check spec")
		}
		rep, err := r.check(ctx, job.Check, bud, st)
		if err != nil {
			return nil, err
		}
		return &Result{Kind: KindCheck, Check: rep}, nil
	case KindSimulate:
		if job.Simulate == nil {
			return nil, fmt.Errorf("engine: simulate job without simulate spec")
		}
		sr, err := r.simulate(ctx, job.Simulate, bud, st)
		if err != nil {
			return nil, err
		}
		return &Result{Kind: KindSimulate, Simulate: sr}, nil
	case KindDescribe:
		if job.Describe == nil {
			return nil, fmt.Errorf("engine: describe job without describe spec")
		}
		dr, err := r.describeSystems(ctx, job.Describe, bud)
		if err != nil {
			return nil, err
		}
		return &Result{Kind: KindDescribe, Describe: dr}, nil
	default:
		return nil, fmt.Errorf("engine: unknown job kind %q", job.Kind)
	}
}

// Check resolves the spec and runs core.Implements on the runner's pool and
// cache. The report is identical to a sequential, uncached run.
func (r *Runner) Check(ctx context.Context, cs *CheckSpec) (*core.Report, error) {
	return r.check(ctx, cs, nil, nil)
}

func (r *Runner) check(ctx context.Context, cs *CheckSpec, bud *resilience.Budget, st *sched.Stats) (*core.Report, error) {
	if cs.Left == "" || cs.Right == "" || len(cs.Envs) == 0 {
		return nil, fmt.Errorf("engine: check needs left, right and at least one env")
	}
	a, err := r.resolve(cs.Left)
	if err != nil {
		return nil, err
	}
	b, err := r.resolve(cs.Right)
	if err != nil {
		return nil, err
	}
	envs, err := r.resolveAll(cs.Envs)
	if err != nil {
		return nil, err
	}
	schema, err := SchemaByName(cs.Schema, cs.Templates)
	if err != nil {
		return nil, err
	}
	ins, err := InsightByName(cs.Insight)
	if err != nil {
		return nil, err
	}
	opt := r.options(ctx, bud, st)
	opt.Envs = envs
	opt.Schema = schema
	opt.Insight = ins
	opt.Eps = cs.Eps
	opt.Q1 = cs.Q1
	opt.Q2 = cs.Q2
	opt.MaxDepth = cs.MaxDepth
	return core.Implements(a, b, opt)
}

// Simulate composes the referenced systems, resolves non-determinism with
// the requested scheduler and computes the exact execution measure (or a
// Monte-Carlo estimate when Samples > 0), reusing cached measures for
// repeated exact requests.
func (r *Runner) Simulate(ctx context.Context, ss *SimulateSpec) (*SimulateResult, error) {
	return r.simulate(ctx, ss, nil, nil)
}

func (r *Runner) simulate(ctx context.Context, ss *SimulateSpec, bud *resilience.Budget, st *sched.Stats) (*SimulateResult, error) {
	if len(ss.Systems) == 0 {
		return nil, fmt.Errorf("engine: simulate needs at least one system")
	}
	if err := resilience.CtxError(ctx); err != nil {
		return nil, err
	}
	auts, err := r.resolveAll(ss.Systems)
	if err != nil {
		return nil, err
	}
	w, err := psioa.Compose(auts...)
	if err != nil {
		return nil, err
	}
	if err := psioa.Validate(w, 200000); err != nil {
		return nil, err
	}
	s, err := SchedByName(w, ss.Sched, ss.Order, ss.Bound)
	if err != nil {
		return nil, err
	}
	ins, err := InsightByName(ss.Insight)
	if err != nil {
		return nil, err
	}
	depth := ss.MaxDepth
	if depth <= 0 {
		depth = 4*ss.Bound + 16
	}
	if ss.Samples > 0 {
		// Index-substream sampling: the estimate is identical for any
		// -workers setting (including 1), deterministic per seed.
		stream := rng.New(ss.Seed)
		d, err := sched.SampleImageOpts(ctx, w, s, stream, depth, ss.Samples, func(fr *psioa.Frag) string {
			return ins.Apply(w, fr)
		}, bud, r.kernelOpts(st))
		if err != nil {
			return nil, err
		}
		return &SimulateResult{
			Exact:      false,
			InsightID:  ins.ID,
			Executions: ss.Samples,
			TotalMass:  d.Total(),
			Outcomes:   outcomes(d),
		}, nil
	}
	em, err := r.Cache.MeasureOpts(ctx, w, s, depth, bud, r.kernelOpts(st))
	if err != nil {
		// Graceful degradation: a budget-bounded stop leaves an exact
		// sub-probability prefix of ε_σ, which is a usable answer for a
		// simulation (unlike for a check). Report it flagged Partial
		// rather than failing the job. The partial measure is never
		// cached (see Cache.MeasureCtx), so later unconstrained runs
		// recompute in full.
		if em == nil || !resilience.IsBudget(err) {
			return nil, err
		}
		img := em.Image(func(fr *psioa.Frag) string { return ins.Apply(w, fr) })
		return &SimulateResult{
			Exact:      true,
			InsightID:  ins.ID,
			Executions: em.Len(),
			TotalMass:  em.Total(),
			MaxLen:     em.MaxLen(),
			Outcomes:   outcomes(img),
			Partial:    true,
			Degraded:   err.Error(),
		}, nil
	}
	img, err := r.Cache.FDistOpts(ctx, w, s, ins, depth, bud, r.kernelOpts(st))
	if err != nil {
		return nil, err
	}
	return &SimulateResult{
		Exact:      true,
		InsightID:  ins.ID,
		Executions: em.Len(),
		TotalMass:  em.Total(),
		MaxLen:     em.MaxLen(),
		Outcomes:   outcomes(img),
	}, nil
}

// DescribeSystems profiles each referenced system (description lengths,
// per-query work, reachability), plus the Lemma 4.3 composition bound when
// exactly two systems are given.
func (r *Runner) DescribeSystems(ctx context.Context, ds *DescribeSpec) (*DescribeResult, error) {
	return r.describeSystems(ctx, ds, nil)
}

func (r *Runner) describeSystems(ctx context.Context, ds *DescribeSpec, bud *resilience.Budget) (*DescribeResult, error) {
	if len(ds.Systems) == 0 {
		return nil, fmt.Errorf("engine: describe needs at least one system")
	}
	limit := ds.Limit
	if limit <= 0 {
		limit = 100000
	}
	out := &DescribeResult{}
	auts := make([]psioa.PSIOA, 0, len(ds.Systems))
	for _, ref := range ds.Systems {
		if err := resilience.CtxError(ctx); err != nil {
			return nil, err
		}
		a, err := r.resolve(ref)
		if err != nil {
			return nil, err
		}
		auts = append(auts, a)
		target := a
		if x, ok := a.(pca.PCA); ok {
			target = pca.DescAdapter{PCA: x}
		}
		d, err := bounded.Describe(target, limit)
		if err != nil {
			return nil, err
		}
		maxQ, total, err := bounded.QueryWork(a, limit)
		if err != nil {
			return nil, err
		}
		ex, err := r.Cache.ExploreCtx(ctx, a, limit, bud)
		if err != nil {
			return nil, err
		}
		out.Systems = append(out.Systems, SystemDescription{
			Ref:            ref,
			Description:    d.String(),
			QueryMaxBits:   maxQ,
			QueryTotalBits: total,
			States:         len(ex.States),
			Actions:        len(ex.Acts),
			Truncated:      ex.Truncated,
		})
	}
	if len(auts) == 2 {
		cb, err := bounded.CompositionBound(auts[0], auts[1], limit)
		if err != nil {
			return nil, err
		}
		out.CompositionBound = cb.String()
	}
	return out, nil
}

// outcomes renders a distribution as rows sorted by probability descending,
// key ascending — the canonical presentation order of the CLI tools.
func outcomes(d *measure.Dist[string]) []SimOutcome {
	keys := d.Support()
	out := make([]SimOutcome, 0, len(keys))
	for _, k := range keys {
		out = append(out, SimOutcome{Key: k, P: d.P(k)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].P != out[j].P {
			return out[i].P > out[j].P
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// SchemaByName builds a scheduler schema from its CLI/HTTP name.
func SchemaByName(name string, templates [][]string) (sched.Schema, error) {
	switch name {
	case "", "oblivious":
		return &sched.ObliviousSchema{}, nil
	case "basic":
		return sched.BasicSchema{}, nil
	case "priority":
		if len(templates) == 0 {
			return nil, fmt.Errorf("engine: priority schema needs at least one template")
		}
		return &sched.PrefixPrioritySchema{Templates: templates}, nil
	default:
		return nil, fmt.Errorf("engine: unknown schema %q", name)
	}
}

// InsightByName builds an insight function from its CLI/HTTP name:
// trace | final | accept:<action> | print:<prefix>. The final insight is
// state-local, so depth-oblivious schedulers compute it on the
// state-collapsed DAG kernel.
func InsightByName(name string) (insight.Insight, error) {
	switch {
	case name == "" || name == "trace":
		return insight.Trace(), nil
	case name == "final":
		return insight.Final(), nil
	case strings.HasPrefix(name, "accept:"):
		return insight.Accept(psioa.Action(strings.TrimPrefix(name, "accept:"))), nil
	case strings.HasPrefix(name, "print:"):
		return insight.Print(strings.TrimPrefix(name, "print:")), nil
	default:
		return insight.Insight{}, fmt.Errorf("engine: unknown insight %q", name)
	}
}

// SchedByName builds a scheduler for w from its CLI/HTTP name.
func SchedByName(w psioa.PSIOA, name string, order []string, bound int) (sched.Scheduler, error) {
	acts := make([]psioa.Action, 0, len(order))
	for _, o := range order {
		acts = append(acts, psioa.Action(strings.TrimSpace(o)))
	}
	switch name {
	case "", "greedy":
		return &sched.Greedy{A: w, Bound: bound, LocalOnly: true}, nil
	case "random":
		return &sched.Random{A: w, Bound: bound, LocalOnly: true}, nil
	case "priority":
		tmpl := make([]string, len(acts))
		for i, a := range acts {
			tmpl[i] = string(a)
		}
		ss, err := (&sched.PrefixPrioritySchema{Templates: [][]string{tmpl}}).Enumerate(w, bound)
		if err != nil {
			return nil, err
		}
		return ss[0], nil
	case "sequence":
		return &sched.Sequence{A: w, Acts: acts, LocalOnly: true}, nil
	default:
		return nil, fmt.Errorf("engine: unknown scheduler %q", name)
	}
}
