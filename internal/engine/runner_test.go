package engine_test

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/insight"
	"repro/internal/obs"
	"repro/internal/protocols/coin"
	"repro/internal/psioa"
	"repro/internal/sched"
	"repro/internal/spec"
)

// seqReport runs the check sequentially and uncached — the baseline every
// engine-backed run must reproduce byte for byte.
func seqReport(t *testing.T, cs *engine.CheckSpec) *core.Report {
	t.Helper()
	r := &engine.Runner{} // no pool, no cache
	rep, err := r.Check(context.Background(), cs)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func coinCheck() *engine.CheckSpec {
	return &engine.CheckSpec{
		Left:  "coin:biased:x:0.625",
		Right: "coin:fair:x",
		Envs:  []string{"coin:env:x"},
		Eps:   0.125,
		Q1:    3, Q2: 3,
	}
}

func chanCheck() *engine.CheckSpec {
	return &engine.CheckSpec{
		Left:      "chan:leaky:x:0.5",
		Right:     "chan:ideal:x",
		Envs:      []string{"chan:env:x:0", "chan:env:x:1"},
		Schema:    "priority",
		Templates: [][]string{{"send", "encrypt", "tap", "notify", "fabricate", "deliver"}},
		Eps:       0.25,
		Q1:        6, Q2: 6,
	}
}

// TestPooledCheckIdentical is the tentpole acceptance test: a pooled,
// memoized Implements run must produce a report identical to the
// sequential, uncached run — same pairs, same distances, same ordering —
// on both the coin-flip and the secure-channel examples, cold and warm.
func TestPooledCheckIdentical(t *testing.T) {
	specs := map[string]*engine.CheckSpec{
		"coin":    coinCheck(),
		"channel": chanCheck(),
	}
	for name, cs := range specs {
		t.Run(name, func(t *testing.T) {
			want := seqReport(t, cs)
			r := engine.NewRunner(engine.NewPool(8), engine.NewCache(0))
			hits0 := obs.C("engine.cache.hits").Value()
			for _, run := range []string{"cold", "warm"} {
				got, err := r.Check(context.Background(), cs)
				if err != nil {
					t.Fatalf("%s: %v", run, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s pooled report differs from sequential:\n got: %s\nwant: %s", run, got, want)
				}
				if got.String() != want.String() {
					t.Errorf("%s rendering differs", run)
				}
			}
			if hits := obs.C("engine.cache.hits").Value() - hits0; hits == 0 {
				t.Error("warm re-check produced no cache hits")
			}
		})
	}
}

func TestPooledWitnessIdentical(t *testing.T) {
	a := coin.Flipper("x", 0.75)
	b := coin.Fair("x")
	opt := core.Options{
		Envs:    []psioa.PSIOA{coin.Env("x")},
		Schema:  &sched.ObliviousSchema{},
		Insight: insight.Trace(),
		Eps:     0.25,
		Q1:      3, Q2: 3,
	}
	want, err := core.ImplementsWitness(a, b, core.IdentityWitness(), opt)
	if err != nil {
		t.Fatal(err)
	}
	popt := opt
	popt.Exec = engine.NewPool(8)
	popt.Memo = engine.NewCache(0)
	got, err := core.ImplementsWitness(a, b, core.IdentityWitness(), popt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("pooled witness report differs:\n got: %s\nwant: %s", got, want)
	}
}

// TestConcurrentChecksShareCache exercises concurrent Implements runs over
// one pool and one cache (the daemon's steady state); run under -race.
func TestConcurrentChecksShareCache(t *testing.T) {
	cs := coinCheck()
	want := seqReport(t, cs)
	r := engine.NewRunner(engine.NewPool(4), engine.NewCache(0))
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := r.Check(context.Background(), cs)
			if err != nil {
				t.Error(err)
				return
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("concurrent report differs:\n got: %s\nwant: %s", got, want)
			}
		}()
	}
	wg.Wait()
}

func TestRunnerSimulateMatchesDirect(t *testing.T) {
	r := engine.NewRunner(nil, engine.NewCache(0))
	res, err := r.Simulate(context.Background(), &engine.SimulateSpec{
		Systems: []string{"coin:fair:x", "coin:env:x"},
		Bound:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Error("samples=0 should be exact")
	}
	w := psioa.MustCompose(mustResolve(t, "coin:fair:x"), mustResolve(t, "coin:env:x"))
	em, err := sched.Measure(w, &sched.Greedy{A: w, Bound: 3, LocalOnly: true}, 4*3+16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executions != em.Len() || res.TotalMass != em.Total() || res.MaxLen != em.MaxLen() {
		t.Errorf("simulate stats %d/%v/%d differ from direct %d/%v/%d",
			res.Executions, res.TotalMass, res.MaxLen, em.Len(), em.Total(), em.MaxLen())
	}
	for i := 1; i < len(res.Outcomes); i++ {
		a, b := res.Outcomes[i-1], res.Outcomes[i]
		if a.P < b.P || (a.P == b.P && a.Key > b.Key) {
			t.Errorf("outcomes not in canonical order at %d: %+v then %+v", i, a, b)
		}
	}
}

func TestRunnerSimulateSampled(t *testing.T) {
	r := engine.NewRunner(nil, nil)
	res, err := r.Simulate(context.Background(), &engine.SimulateSpec{
		Systems: []string{"coin:fair:x", "coin:env:x"},
		Sched:   "random",
		Bound:   3,
		Samples: 200,
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Error("sampled run marked exact")
	}
	if res.Executions != 200 {
		t.Errorf("Executions = %d", res.Executions)
	}
}

func TestRunnerDescribe(t *testing.T) {
	r := engine.NewRunner(nil, engine.NewCache(0))
	res, err := r.DescribeSystems(context.Background(), &engine.DescribeSpec{
		Systems: []string{"coin:fair:x", "chan:real:y"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Systems) != 2 {
		t.Fatalf("Systems = %d", len(res.Systems))
	}
	for _, sd := range res.Systems {
		if sd.States == 0 || sd.Description == "" {
			t.Errorf("empty description for %s: %+v", sd.Ref, sd)
		}
	}
	if res.CompositionBound == "" {
		t.Error("two systems should report a composition bound")
	}
}

func TestJobDispatchAndStore(t *testing.T) {
	r := engine.NewRunner(engine.NewPool(2), engine.NewCache(0))
	if _, err := r.Run(context.Background(), engine.Job{Kind: "nope"}); err == nil {
		t.Error("unknown kind should fail")
	}
	if _, err := r.Run(context.Background(), engine.Job{Kind: engine.KindCheck}); err == nil {
		t.Error("check job without spec should fail")
	}

	st := engine.NewStore()
	rec, err := st.Submit(context.Background(), r, engine.Job{Kind: engine.KindCheck, Check: coinCheck()})
	if err != nil {
		t.Fatal(err)
	}
	if rec.ID == "" || rec.Kind != engine.KindCheck {
		t.Fatalf("bad record: %+v", rec)
	}
	final, err := st.Await(context.Background(), rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != engine.StatusDone || final.Result == nil || final.Result.Check == nil {
		t.Fatalf("job did not complete: %+v", final)
	}
	if !final.Result.Check.Holds {
		t.Error("coin check should hold at ε=0.125")
	}

	bad, err := st.Submit(context.Background(), r, engine.Job{Kind: engine.KindCheck, Check: &engine.CheckSpec{Left: "coin:fair:x", Right: "coin:fair:x", Envs: []string{"no:such:ref"}}})
	if err != nil {
		t.Fatal(err)
	}
	fin, err := st.Await(context.Background(), bad.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.Status != engine.StatusFailed || fin.Err == "" {
		t.Errorf("bad job should fail: %+v", fin)
	}

	if got := st.List(); len(got) != 2 || got[0].ID >= got[1].ID {
		t.Errorf("List = %+v", got)
	}
	if _, ok := st.Get("j9999"); ok {
		t.Error("Get of unknown id succeeded")
	}
	if _, err := st.Await(context.Background(), "j9999"); err == nil {
		t.Error("Await of unknown id succeeded")
	}
}

func mustResolve(t *testing.T, ref string) psioa.PSIOA {
	t.Helper()
	a, err := spec.Resolve(ref)
	if err != nil {
		t.Fatal(err)
	}
	return a
}
