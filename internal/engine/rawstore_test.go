package engine_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/engine"
)

// TestRawStoreRoundTrip pins the canonical-bytes store path: PutRaw/GetRaw
// round-trips exactly, misses classify as engine.ErrCacheMiss, and the
// entries live in the same striped LRU as the typed memos (counted by the
// shard hit/miss counters, so remote store traffic stays visible in
// Cache.ShardStats).
func TestRawStoreRoundTrip(t *testing.T) {
	c := engine.NewCache(16)

	if _, err := c.GetRaw("job-absent"); !errors.Is(err, engine.ErrCacheMiss) {
		t.Fatalf("GetRaw on empty cache: err=%v, want ErrCacheMiss", err)
	}

	data := []byte(`{"kind":"check"}`)
	c.PutRaw("job-0001", data)
	got, err := c.GetRaw("job-0001")
	if err != nil {
		t.Fatalf("GetRaw after PutRaw: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("GetRaw = %q, want %q", got, data)
	}

	// The stored bytes are a private copy in both directions.
	data[0] = 'X'
	got2, err := c.GetRaw("job-0001")
	if err != nil || got2[0] != '{' {
		t.Fatalf("stored entry aliased caller bytes: %q, %v", got2, err)
	}

	hits, misses, _, _ := c.Totals()
	if hits < 2 || misses < 1 {
		t.Fatalf("raw traffic not counted: hits=%d misses=%d", hits, misses)
	}
}

// TestRawStoreNilCache pins the nil-receiver contract the store facade
// relies on: GetRaw misses, PutRaw is a no-op.
func TestRawStoreNilCache(t *testing.T) {
	var c *engine.Cache
	c.PutRaw("k", []byte("v"))
	if _, err := c.GetRaw("k"); !errors.Is(err, engine.ErrCacheMiss) {
		t.Fatalf("nil cache GetRaw: err=%v, want ErrCacheMiss", err)
	}
}

// TestRawStoreNamespaced pins that raw entries cannot collide with typed
// memo entries sharing the same key string.
func TestRawStoreNamespaced(t *testing.T) {
	c := engine.NewCache(16)
	c.Put("job-0002", "typed")
	c.PutRaw("job-0002", []byte("raw"))
	v, ok := c.Get("job-0002")
	if !ok || v != "typed" {
		t.Fatalf("typed entry clobbered by raw put: %v %v", v, ok)
	}
	got, err := c.GetRaw("job-0002")
	if err != nil || string(got) != "raw" {
		t.Fatalf("raw entry: %q %v", got, err)
	}
}
