package engine_test

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/resilience"
)

// TestPoolMapPanicIsolation pins panic isolation: a panicking task becomes
// a *resilience.PanicError reported under the deterministic lowest-index
// rule, never a crashed process.
func TestPoolMapPanicIsolation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := engine.NewPool(workers)
		err := p.Map(context.Background(), 16, func(i int) error {
			if i == 5 || i == 11 {
				panic(fmt.Sprintf("task %d exploded", i))
			}
			return nil
		})
		var pe *resilience.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: Map = %v, want *PanicError", workers, err)
		}
		if pe.Value != "task 5 exploded" {
			t.Errorf("workers=%d: got panic %q, want the lowest-index one", workers, pe.Value)
		}
		// A panic is an ordinary task failure: the pool stays usable.
		if err := p.Map(context.Background(), 4, func(int) error { return nil }); err != nil {
			t.Errorf("workers=%d: pool unusable after panic: %v", workers, err)
		}
	}
}

// TestPoolMapCancelledMidTask pins the context-after-fn rule: when the
// context terminates while workers are mid-task and every launched task
// itself returns nil, Map still reports the classified context error — a
// run interrupted mid-flight must not look like a clean completion.
func TestPoolMapCancelledMidTask(t *testing.T) {
	p := engine.NewPool(4)
	ctx, cancel := context.WithCancel(context.Background())
	var entered atomic.Int32
	err := p.Map(ctx, 4, func(i int) error {
		if entered.Add(1) == 4 {
			cancel()
		}
		// Wait until cancellation so every task finishes *after* the
		// context died, then report success.
		<-ctx.Done()
		return nil
	})
	if !errors.Is(err, resilience.ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("Map = %v, want ErrCancelled wrapping context.Canceled", err)
	}
}

// TestRunnerTimeout is the ISSUE acceptance test: a job whose workload runs
// far longer than its timeout must return an ErrDeadline-classified error
// in well under 2× the timeout.
func TestRunnerTimeout(t *testing.T) {
	restore := resilience.InstallInjector(
		resilience.NewInjector(1).ArmDelay(resilience.FaultSlowOp, 1, 10*time.Second))
	defer restore()
	r := engine.NewRunner(engine.NewPool(2), engine.NewCache(0))
	job := engine.Job{Kind: engine.KindCheck, Check: coinCheck(), TimeoutMS: 250}
	start := time.Now()
	_, err := r.Run(context.Background(), job)
	elapsed := time.Since(start)
	if !errors.Is(err, resilience.ErrDeadline) {
		t.Fatalf("Run = %v, want ErrDeadline", err)
	}
	if resilience.Class(err) != "deadline" {
		t.Errorf("Class = %q, want deadline", resilience.Class(err))
	}
	if elapsed >= 500*time.Millisecond {
		t.Errorf("timed-out job took %v, want < 2x the 250ms timeout", elapsed)
	}
}

// TestSimulateBudgetPartial pins graceful degradation: an exact simulate
// job stopped by its transition budget returns the expanded sub-probability
// prefix flagged Partial instead of failing.
func TestSimulateBudgetPartial(t *testing.T) {
	r := engine.NewRunner(nil, engine.NewCache(16))
	spec := &engine.SimulateSpec{Systems: []string{"ledger:direct:x:2"}, Sched: "random", Bound: 8}
	// The budgeted job runs first, on a cold cache (a cached full measure
	// would satisfy the request without ever consulting the budget).
	res, err := r.Run(context.Background(), engine.Job{
		Kind: engine.KindSimulate, Simulate: spec, BudgetTransitions: 400,
	})
	if err != nil {
		t.Fatalf("budgeted simulate should degrade, not fail: %v", err)
	}
	sr := res.Simulate
	if !sr.Partial || sr.Degraded == "" {
		t.Fatalf("result not flagged partial: %+v", sr)
	}
	// Partials are never cached: an unconstrained run of the same spec
	// must produce the full measure, strictly heavier than the prefix.
	full, err := r.Run(context.Background(), engine.Job{Kind: engine.KindSimulate, Simulate: spec})
	if err != nil {
		t.Fatal(err)
	}
	if full.Simulate.Partial {
		t.Fatalf("unconstrained run served the partial: %+v", full.Simulate)
	}
	if sr.TotalMass <= 0 || sr.TotalMass >= full.Simulate.TotalMass {
		t.Errorf("partial mass = %v, want in (0, %v)", sr.TotalMass, full.Simulate.TotalMass)
	}
}

// TestCheckBudgetFails pins that check jobs do NOT degrade: a verdict from
// a partial expansion would be unsound, so the job fails classified.
func TestCheckBudgetFails(t *testing.T) {
	r := engine.NewRunner(nil, engine.NewCache(0))
	_, err := r.Run(context.Background(), engine.Job{
		Kind: engine.KindCheck, Check: coinCheck(), BudgetTransitions: 8,
	})
	if !errors.Is(err, resilience.ErrBudgetExceeded) {
		t.Fatalf("budgeted check = %v, want ErrBudgetExceeded", err)
	}
	if resilience.Class(err) != "budget" {
		t.Errorf("Class = %q, want budget", resilience.Class(err))
	}
}

// TestRunSafeIsolatesPanics pins the runner's isolation boundary.
func TestRunSafeIsolatesPanics(t *testing.T) {
	restore := resilience.InstallInjector(
		resilience.NewInjector(1).Arm(resilience.FaultTransitionPanic, 1))
	defer restore()
	r := engine.NewRunner(nil, engine.NewCache(0))
	_, err := r.RunSafe(context.Background(), engine.Job{
		Kind:     engine.KindSimulate,
		Simulate: &engine.SimulateSpec{Systems: []string{"coin:fair:x", "coin:env:x"}, Bound: 4},
	})
	var pe *resilience.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("RunSafe = %v, want *PanicError", err)
	}
	if resilience.Class(err) != "panic" {
		t.Errorf("Class = %q, want panic", resilience.Class(err))
	}
}

// TestStoreQueueShedding pins load shedding on the bounded async queue.
func TestStoreQueueShedding(t *testing.T) {
	restore := resilience.InstallInjector(
		resilience.NewInjector(1).ArmDelay(resilience.FaultSlowOp, 1, 10*time.Second))
	defer restore()
	ctx, cancel := context.WithCancel(context.Background())
	r := engine.NewRunner(nil, engine.NewCache(0))
	st := engine.NewStoreWith(engine.StoreConfig{QueueLimit: 2})
	slow := func(n int) engine.Job {
		return engine.Job{Kind: engine.KindSimulate, Simulate: &engine.SimulateSpec{
			Systems: []string{"coin:fair:x", "coin:env:x"}, Bound: 4, Seed: uint64(n),
		}}
	}
	if _, err := st.Submit(ctx, r, slow(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Submit(ctx, r, slow(2)); err != nil {
		t.Fatal(err)
	}
	_, err := st.Submit(ctx, r, slow(3))
	if !errors.Is(err, resilience.ErrQueueFull) {
		t.Fatalf("third submit = %v, want ErrQueueFull", err)
	}
	// Cancel the in-flight jobs and verify Drain completes (the delay is
	// context-aware, so cancellation releases the queue promptly).
	cancel()
	drainCtx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer dcancel()
	if err := st.Drain(drainCtx); err != nil {
		t.Fatalf("Drain after cancel = %v", err)
	}
	if st.InFlight() != 0 {
		t.Errorf("InFlight = %d after drain, want 0", st.InFlight())
	}
}

// TestChaosTransientRetry injects a bounded burst of transient job faults
// and verifies the store's retry policy absorbs them: every job reaches a
// terminal state and none is lost.
func TestChaosTransientRetry(t *testing.T) {
	in := resilience.NewInjector(99).ArmN(resilience.FaultJobTransient, 1, 2)
	restore := resilience.InstallInjector(in)
	defer restore()
	r := engine.NewRunner(nil, engine.NewCache(16))
	st := engine.NewStoreWith(engine.StoreConfig{
		Retry: resilience.Backoff{Attempts: 4, Base: time.Millisecond},
	})
	rec, err := st.Submit(context.Background(), r, engine.Job{
		Kind:     engine.KindSimulate,
		Simulate: &engine.SimulateSpec{Systems: []string{"coin:fair:x", "coin:env:x"}, Bound: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	fin, err := st.Await(context.Background(), rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.Status != engine.StatusDone || fin.Result == nil {
		t.Fatalf("job should survive 2 injected transient faults: %+v", fin)
	}
	if got := in.Fired(resilience.FaultJobTransient); got != 2 {
		t.Errorf("injected %d transient faults, want 2", got)
	}
}

// TestChaosWorkerPanicsAndBreaker drives the same panicking job through
// the store until the circuit breaker quarantines its fingerprint.
func TestChaosWorkerPanicsAndBreaker(t *testing.T) {
	restore := resilience.InstallInjector(
		resilience.NewInjector(7).Arm(resilience.FaultTransitionPanic, 1))
	defer restore()
	r := engine.NewRunner(nil, engine.NewCache(0))
	st := engine.NewStoreWith(engine.StoreConfig{Breaker: resilience.NewBreaker(3)})
	job := engine.Job{
		Kind:     engine.KindSimulate,
		Simulate: &engine.SimulateSpec{Systems: []string{"coin:fair:x", "coin:env:x"}, Bound: 4},
	}
	for i := 0; i < 3; i++ {
		rec, err := st.Submit(context.Background(), r, job)
		if err != nil {
			t.Fatalf("submit %d rejected before quarantine: %v", i, err)
		}
		fin, err := st.Await(context.Background(), rec.ID)
		if err != nil {
			t.Fatal(err)
		}
		if fin.Status != engine.StatusFailed || fin.ErrClass != "panic" {
			t.Fatalf("panicking job %d: status %q class %q, want failed/panic", i, fin.Status, fin.ErrClass)
		}
	}
	_, err := st.Submit(context.Background(), r, job)
	if !errors.Is(err, resilience.ErrQuarantined) {
		t.Fatalf("4th submit = %v, want ErrQuarantined", err)
	}
	// A different workload is unaffected.
	other := engine.Job{
		Kind:     engine.KindSimulate,
		Simulate: &engine.SimulateSpec{Systems: []string{"coin:fair:x", "coin:env:x"}, Bound: 3},
	}
	if st.Breaker().Allow(other.Fingerprint()) != nil {
		t.Error("unrelated fingerprint quarantined")
	}
}

// TestChaosCacheEviction injects cache evictions and verifies results stay
// byte-identical: eviction only costs recomputation, never correctness.
// It runs at shard counts 1 and 8 so both the single global LRU and the
// striped per-shard LRUs keep the deterministic eviction order.
func TestChaosCacheEviction(t *testing.T) {
	for _, shards := range []int{1, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			r := engine.NewRunner(nil, engine.NewCacheSharded(64, shards))
			spec := &engine.SimulateSpec{Systems: []string{"coin:fair:x", "coin:env:x"}, Bound: 6}
			baseline, err := r.Simulate(context.Background(), spec)
			if err != nil {
				t.Fatal(err)
			}
			restore := resilience.InstallInjector(
				resilience.NewInjector(3).Arm(resilience.FaultCacheEvict, 0.5))
			defer restore()
			for i := 0; i < 8; i++ {
				res, err := r.Simulate(context.Background(), spec)
				if err != nil {
					t.Fatal(err)
				}
				if res.TotalMass != baseline.TotalMass || len(res.Outcomes) != len(baseline.Outcomes) {
					t.Fatalf("run %d diverged under cache eviction: %+v vs %+v", i, res, baseline)
				}
				for j, o := range res.Outcomes {
					if o != baseline.Outcomes[j] {
						t.Fatalf("run %d outcome %d = %+v, want %+v", i, j, o, baseline.Outcomes[j])
					}
				}
			}
		})
	}
}
