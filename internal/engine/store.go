package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Job lifecycle states.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// Observability instruments for the store.
var (
	cJobsSubmitted = obs.C("engine.jobs.submitted")
	cJobsCompleted = obs.C("engine.jobs.completed")
	cJobsErrored   = obs.C("engine.jobs.errored")
	gJobsRunning   = obs.G("engine.jobs.running")
)

// JobRecord is the stored state of a submitted job. Records returned by the
// store are copies; mutating them does not affect the store.
type JobRecord struct {
	ID        string    `json:"id"`
	Kind      string    `json:"kind"`
	Status    string    `json:"status"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitempty"`
	Finished  time.Time `json:"finished,omitempty"`
	Result    *Result   `json:"result,omitempty"`
	Err       string    `json:"error,omitempty"`
}

// Store tracks submitted jobs and runs them asynchronously on a Runner. It
// is safe for concurrent use; the runner's pool bounds actual parallelism,
// so submitting many jobs at once queues them for worker slots rather than
// oversubscribing the process.
type Store struct {
	mu      sync.Mutex
	seq     int
	running int
	jobs    map[string]*JobRecord
	done    map[string]chan struct{}
}

// NewStore returns an empty job store.
func NewStore() *Store {
	return &Store{
		jobs: make(map[string]*JobRecord),
		done: make(map[string]chan struct{}),
	}
}

// Submit registers the job and starts it on the runner in a new goroutine,
// returning the queued record immediately. The context governs the job's
// whole run (the daemon passes its serve context so shutdown cancels
// in-flight jobs).
func (st *Store) Submit(ctx context.Context, r *Runner, job Job) *JobRecord {
	st.mu.Lock()
	st.seq++
	id := fmt.Sprintf("j%04d", st.seq)
	rec := &JobRecord{ID: id, Kind: job.Kind, Status: StatusQueued, Submitted: time.Now()}
	st.jobs[id] = rec
	ch := make(chan struct{})
	st.done[id] = ch
	queued := rec.clone()
	st.mu.Unlock()
	cJobsSubmitted.Inc()

	go func() {
		defer close(ch)
		st.update(id, func(r *JobRecord) {
			r.Status = StatusRunning
			r.Started = time.Now()
		})
		st.addRunning(1)
		res, err := r.Run(ctx, job)
		st.addRunning(-1)
		st.update(id, func(rec *JobRecord) {
			rec.Finished = time.Now()
			if err != nil {
				rec.Status = StatusFailed
				rec.Err = err.Error()
				return
			}
			rec.Status = StatusDone
			rec.Result = res
		})
		if err != nil {
			cJobsErrored.Inc()
		} else {
			cJobsCompleted.Inc()
		}
	}()
	return queued
}

// Get returns a copy of the record for id.
func (st *Store) Get(id string) (*JobRecord, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	rec, ok := st.jobs[id]
	if !ok {
		return nil, false
	}
	return rec.clone(), true
}

// List returns copies of all records, sorted by ID (= submission order).
func (st *Store) List() []*JobRecord {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*JobRecord, 0, len(st.jobs))
	for _, rec := range st.jobs {
		out = append(out, rec.clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Await blocks until the job finishes or the context expires, returning the
// final record.
func (st *Store) Await(ctx context.Context, id string) (*JobRecord, error) {
	st.mu.Lock()
	ch, ok := st.done[id]
	st.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown job %q", id)
	}
	select {
	case <-ch:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	rec, _ := st.Get(id)
	return rec, nil
}

func (st *Store) addRunning(d int) {
	st.mu.Lock()
	st.running += d
	gJobsRunning.Set(int64(st.running))
	st.mu.Unlock()
}

func (st *Store) update(id string, fn func(*JobRecord)) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if rec, ok := st.jobs[id]; ok {
		fn(rec)
	}
}

func (r *JobRecord) clone() *JobRecord {
	c := *r
	return &c
}
