package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
)

// Job lifecycle states.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// Observability instruments for the store.
var (
	cJobsSubmitted = obs.C("engine.jobs.submitted")
	cJobsCompleted = obs.C("engine.jobs.completed")
	cJobsErrored   = obs.C("engine.jobs.errored")
	cJobsShed      = obs.C("engine.jobs.shed")
	cJobsRejected  = obs.C("engine.jobs.rejected")
	gJobsRunning   = obs.G("engine.jobs.running")
	gJobsInFlight  = obs.G("engine.jobs.inflight")
)

// JobRecord is the stored state of a submitted job. Records returned by the
// store are copies; mutating them does not affect the store.
type JobRecord struct {
	ID        string    `json:"id"`
	Kind      string    `json:"kind"`
	Status    string    `json:"status"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitempty"`
	Finished  time.Time `json:"finished,omitempty"`
	Result    *Result   `json:"result,omitempty"`
	Err       string    `json:"error,omitempty"`
	// ErrClass is the resilience classification of Err ("deadline",
	// "budget", "panic", ...), empty for unclassified errors.
	ErrClass string `json:"error_class,omitempty"`
}

// StoreConfig hardens a Store. The zero value preserves the permissive
// behaviour: unbounded queue, no breaker, no retries.
type StoreConfig struct {
	// QueueLimit bounds queued + running async jobs; submissions beyond
	// it are shed with resilience.ErrQueueFull. 0 means unbounded.
	QueueLimit int
	// Breaker quarantines job fingerprints that panic repeatedly; nil
	// disables quarantine. Share the same breaker with the synchronous
	// request path so both see the same quarantine state.
	Breaker *resilience.Breaker
	// Retry is the backoff policy for transient job failures; the zero
	// value runs each job once.
	Retry resilience.Backoff
}

// Store tracks submitted jobs and runs them asynchronously on a Runner. It
// is safe for concurrent use; the runner's pool bounds actual parallelism,
// so submitting many jobs at once queues them for worker slots rather than
// oversubscribing the process.
type Store struct {
	cfg      StoreConfig
	mu       sync.Mutex
	seq      int
	running  int
	inflight int
	jobs     map[string]*JobRecord
	done     map[string]chan struct{}
	wg       sync.WaitGroup
}

// NewStore returns an empty, unhardened job store (no queue bound, no
// breaker, no retries).
func NewStore() *Store {
	return NewStoreWith(StoreConfig{})
}

// NewStoreWith returns an empty job store hardened per cfg.
func NewStoreWith(cfg StoreConfig) *Store {
	return &Store{
		cfg:  cfg,
		jobs: make(map[string]*JobRecord),
		done: make(map[string]chan struct{}),
	}
}

// Breaker exposes the store's circuit breaker (nil when unconfigured) so
// the synchronous request path can share its quarantine state.
func (st *Store) Breaker() *resilience.Breaker { return st.cfg.Breaker }

// QueueLimit returns the configured shed threshold (0 = unbounded).
func (st *Store) QueueLimit() int { return st.cfg.QueueLimit }

// InFlight returns the number of async jobs queued or running.
func (st *Store) InFlight() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.inflight
}

// Submit registers the job and starts it on the runner in a new goroutine,
// returning the queued record immediately. The context governs the job's
// whole run (the daemon passes a jobs context that outlives the listener,
// so shutdown can drain before cancelling).
//
// Submission fails fast — without creating a record — when the bounded
// queue is saturated (resilience.ErrQueueFull; the daemon sheds with 503 +
// Retry-After) or the job's fingerprint is quarantined by the breaker
// (resilience.ErrQuarantined). Jobs run behind panic isolation, transient
// failures are retried per the store's backoff policy, and the breaker
// observes every terminal outcome.
func (st *Store) Submit(ctx context.Context, r *Runner, job Job) (*JobRecord, error) {
	fp := job.Fingerprint()
	if err := st.cfg.Breaker.Allow(fp); err != nil {
		cJobsRejected.Inc()
		return nil, err
	}
	st.mu.Lock()
	if st.cfg.QueueLimit > 0 && st.inflight >= st.cfg.QueueLimit {
		n := st.inflight
		st.mu.Unlock()
		cJobsShed.Inc()
		return nil, fmt.Errorf("engine: %d jobs in flight: %w", n, resilience.ErrQueueFull)
	}
	st.inflight++
	gJobsInFlight.Set(int64(st.inflight))
	st.seq++
	id := fmt.Sprintf("j%04d", st.seq)
	rec := &JobRecord{ID: id, Kind: job.Kind, Status: StatusQueued, Submitted: time.Now()}
	st.jobs[id] = rec
	ch := make(chan struct{})
	st.done[id] = ch
	queued := rec.clone()
	st.wg.Add(1)
	st.mu.Unlock()
	cJobsSubmitted.Inc()

	go func() {
		defer st.wg.Done()
		defer close(ch)
		st.update(id, func(r *JobRecord) {
			r.Status = StatusRunning
			r.Started = time.Now()
		})
		st.addRunning(1)
		var res *Result
		err := resilience.Retry(ctx, st.cfg.Retry, func() error {
			var rerr error
			res, rerr = r.RunSafe(ctx, job)
			return rerr
		})
		st.addRunning(-1)
		st.cfg.Breaker.Observe(fp, err)
		st.update(id, func(rec *JobRecord) {
			rec.Finished = time.Now()
			if err != nil {
				rec.Status = StatusFailed
				rec.Err = err.Error()
				rec.ErrClass = resilience.Class(err)
				return
			}
			rec.Status = StatusDone
			rec.Result = res
		})
		st.mu.Lock()
		st.inflight--
		gJobsInFlight.Set(int64(st.inflight))
		st.mu.Unlock()
		if err != nil {
			cJobsErrored.Inc()
		} else {
			cJobsCompleted.Inc()
		}
	}()
	return queued, nil
}

// Drain blocks until every in-flight async job has reached a terminal
// state or ctx expires (returning the classified context error). Pair it
// with a jobs context separate from the shutdown signal: stop accepting
// work, Drain with a grace period, then cancel the jobs context so
// stragglers terminate through their own cancellation checkpoints.
func (st *Store) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		st.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return resilience.CtxError(ctx)
	}
}

// Get returns a copy of the record for id.
func (st *Store) Get(id string) (*JobRecord, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	rec, ok := st.jobs[id]
	if !ok {
		return nil, false
	}
	return rec.clone(), true
}

// List returns copies of all records, sorted by ID (= submission order).
func (st *Store) List() []*JobRecord {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*JobRecord, 0, len(st.jobs))
	for _, rec := range st.jobs {
		out = append(out, rec.clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Await blocks until the job finishes or the context expires, returning the
// final record.
func (st *Store) Await(ctx context.Context, id string) (*JobRecord, error) {
	st.mu.Lock()
	ch, ok := st.done[id]
	st.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown job %q", id)
	}
	select {
	case <-ch:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	rec, _ := st.Get(id)
	return rec, nil
}

func (st *Store) addRunning(d int) {
	st.mu.Lock()
	st.running += d
	gJobsRunning.Set(int64(st.running))
	st.mu.Unlock()
}

func (st *Store) update(id string, fn func(*JobRecord)) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if rec, ok := st.jobs[id]; ok {
		fn(rec)
	}
}

func (r *JobRecord) clone() *JobRecord {
	c := *r
	return &c
}
