package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
)

// Job lifecycle states.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// Observability instruments for the store.
var (
	cJobsSubmitted = obs.C("engine.jobs.submitted")
	cJobsCompleted = obs.C("engine.jobs.completed")
	cJobsErrored   = obs.C("engine.jobs.errored")
	cJobsShed      = obs.C("engine.jobs.shed")
	cJobsRejected  = obs.C("engine.jobs.rejected")
	gJobsRunning   = obs.G("engine.jobs.running")
	gJobsInFlight  = obs.G("engine.jobs.inflight")
)

// JobRecord is the stored state of a submitted job. Records returned by the
// store are copies; mutating them does not affect the store.
type JobRecord struct {
	ID   string `json:"id"`
	Kind string `json:"kind"`
	// Fingerprint is the job's canonical workload identity (Job.Fingerprint)
	// — the key its result is content-addressed under in the cluster and
	// durable stores.
	Fingerprint string    `json:"fingerprint,omitempty"`
	Status      string    `json:"status"`
	Submitted   time.Time `json:"submitted"`
	Started     time.Time `json:"started,omitempty"`
	Finished    time.Time `json:"finished,omitempty"`
	Result      *Result   `json:"result,omitempty"`
	Err         string    `json:"error,omitempty"`
	// ErrClass is the resilience classification of Err ("deadline",
	// "budget", "panic", ...), empty for unclassified errors.
	ErrClass string `json:"error_class,omitempty"`
}

// JournalSink receives async job lifecycle transitions for write-ahead
// journaling (see internal/durable). Implementations must be fast and must
// not call back into the store; every method may be invoked concurrently
// for different jobs. For one job the store guarantees the order
// Accepted → Running → Finished.
type JournalSink interface {
	// Accepted is invoked after admission (queue and breaker checks
	// passed), before the job starts, with the full job for later replay.
	Accepted(rec *JobRecord, job Job)
	// Running is invoked when the job leaves the queue and starts.
	Running(id string)
	// Finished is invoked with the terminal record (StatusDone with its
	// result, or StatusFailed with the classified error).
	Finished(rec *JobRecord)
}

// StoreConfig hardens a Store. The zero value preserves the permissive
// behaviour: unbounded queue, no breaker, no retries.
type StoreConfig struct {
	// QueueLimit bounds queued + running async jobs; submissions beyond
	// it are shed with resilience.ErrQueueFull. 0 means unbounded.
	QueueLimit int
	// Breaker quarantines job fingerprints that panic repeatedly; nil
	// disables quarantine. Share the same breaker with the synchronous
	// request path so both see the same quarantine state.
	Breaker *resilience.Breaker
	// Retry is the backoff policy for transient job failures; the zero
	// value runs each job once.
	Retry resilience.Backoff
	// Journal, when non-nil, receives every async job lifecycle transition
	// for write-ahead journaling, so a restarted daemon can replay
	// unfinished work (see internal/durable).
	Journal JournalSink
}

// Store tracks submitted jobs and runs them asynchronously on a Runner. It
// is safe for concurrent use; the runner's pool bounds actual parallelism,
// so submitting many jobs at once queues them for worker slots rather than
// oversubscribing the process.
type Store struct {
	cfg      StoreConfig
	mu       sync.Mutex
	seq      int
	running  int
	inflight int
	jobs     map[string]*JobRecord
	done     map[string]chan struct{}
	wg       sync.WaitGroup
}

// NewStore returns an empty, unhardened job store (no queue bound, no
// breaker, no retries).
func NewStore() *Store {
	return NewStoreWith(StoreConfig{})
}

// NewStoreWith returns an empty job store hardened per cfg.
func NewStoreWith(cfg StoreConfig) *Store {
	return &Store{
		cfg:  cfg,
		jobs: make(map[string]*JobRecord),
		done: make(map[string]chan struct{}),
	}
}

// Breaker exposes the store's circuit breaker (nil when unconfigured) so
// the synchronous request path can share its quarantine state.
func (st *Store) Breaker() *resilience.Breaker { return st.cfg.Breaker }

// QueueLimit returns the configured shed threshold (0 = unbounded).
func (st *Store) QueueLimit() int { return st.cfg.QueueLimit }

// InFlight returns the number of async jobs queued or running.
func (st *Store) InFlight() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.inflight
}

// Submit registers the job and starts it on the runner in a new goroutine,
// returning the queued record immediately. The context governs the job's
// whole run (the daemon passes a jobs context that outlives the listener,
// so shutdown can drain before cancelling).
//
// Submission fails fast — without creating a record — when the bounded
// queue is saturated (resilience.ErrQueueFull; the daemon sheds with 503 +
// Retry-After) or the job's fingerprint is quarantined by the breaker
// (resilience.ErrQuarantined). Jobs run behind panic isolation, transient
// failures are retried per the store's backoff policy, and the breaker
// observes every terminal outcome.
func (st *Store) Submit(ctx context.Context, r *Runner, job Job) (*JobRecord, error) {
	return st.submit(ctx, r, job, "", true)
}

// Resubmit is Submit for journal replay: the job re-enters the queue under
// its original ID, bypassing the admission checks (it was already admitted
// before the crash — shedding it now would lose accepted work) and without
// re-journaling an accepted record (the original one is still in the
// journal). The ID must not collide with a live record.
func (st *Store) Resubmit(ctx context.Context, r *Runner, job Job, id string) (*JobRecord, error) {
	if id == "" {
		return nil, fmt.Errorf("engine: resubmit needs a job id")
	}
	return st.submit(ctx, r, job, id, false)
}

// submit implements Submit (fresh, auto-ID) and Resubmit (replayed,
// pinned ID, admission checks and the accepted-journal append skipped).
func (st *Store) submit(ctx context.Context, r *Runner, job Job, id string, fresh bool) (*JobRecord, error) {
	fp := job.Fingerprint()
	if fresh {
		if err := st.cfg.Breaker.Allow(fp); err != nil {
			cJobsRejected.Inc()
			return nil, err
		}
	}
	st.mu.Lock()
	if fresh && st.cfg.QueueLimit > 0 && st.inflight >= st.cfg.QueueLimit {
		n := st.inflight
		st.mu.Unlock()
		cJobsShed.Inc()
		return nil, fmt.Errorf("engine: %d jobs in flight: %w", n, resilience.ErrQueueFull)
	}
	if id == "" {
		st.seq++
		id = fmt.Sprintf("j%04d", st.seq)
	} else {
		if _, exists := st.jobs[id]; exists {
			st.mu.Unlock()
			return nil, fmt.Errorf("engine: job %q already exists", id)
		}
		st.bumpSeqLocked(id)
	}
	st.inflight++
	gJobsInFlight.Set(int64(st.inflight))
	rec := &JobRecord{ID: id, Kind: job.Kind, Fingerprint: fp, Status: StatusQueued, Submitted: time.Now()}
	st.jobs[id] = rec
	ch := make(chan struct{})
	st.done[id] = ch
	queued := rec.clone()
	st.wg.Add(1)
	st.mu.Unlock()
	cJobsSubmitted.Inc()
	if fresh && st.cfg.Journal != nil {
		// Write-ahead: the accepted record (with the full job spec) is on
		// disk before the job can produce any other journal event — the
		// worker goroutine has not been launched yet.
		st.cfg.Journal.Accepted(queued, job)
	}

	go func() {
		defer st.wg.Done()
		defer close(ch)
		st.update(id, func(r *JobRecord) {
			r.Status = StatusRunning
			r.Started = time.Now()
		})
		if st.cfg.Journal != nil {
			st.cfg.Journal.Running(id)
		}
		st.addRunning(1)
		var res *Result
		err := resilience.Retry(ctx, st.cfg.Retry, func() error {
			var rerr error
			res, rerr = r.RunSafe(ctx, job)
			return rerr
		})
		st.addRunning(-1)
		st.cfg.Breaker.Observe(fp, err)
		st.update(id, func(rec *JobRecord) {
			rec.Finished = time.Now()
			if err != nil {
				rec.Status = StatusFailed
				rec.Err = err.Error()
				rec.ErrClass = resilience.Class(err)
				return
			}
			rec.Status = StatusDone
			rec.Result = res
		})
		st.mu.Lock()
		st.inflight--
		gJobsInFlight.Set(int64(st.inflight))
		terminal := st.jobs[id].clone()
		st.mu.Unlock()
		if st.cfg.Journal != nil {
			st.cfg.Journal.Finished(terminal)
		}
		if err != nil {
			cJobsErrored.Inc()
		} else {
			cJobsCompleted.Inc()
		}
	}()
	return queued, nil
}

// Restore inserts an already-terminal job record, as recovered from the
// journal by replay. The record must be StatusDone or StatusFailed; its
// Await channel is pre-closed so waiters return immediately. Restores do
// not touch the queue bound, the breaker, or the journal.
func (st *Store) Restore(rec *JobRecord) error {
	if rec == nil || rec.ID == "" {
		return fmt.Errorf("engine: restore needs a job record with an id")
	}
	if rec.Status != StatusDone && rec.Status != StatusFailed {
		return fmt.Errorf("engine: restore requires a terminal record, got %q", rec.Status)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, exists := st.jobs[rec.ID]; exists {
		return fmt.Errorf("engine: job %q already exists", rec.ID)
	}
	st.bumpSeqLocked(rec.ID)
	st.jobs[rec.ID] = rec.clone()
	ch := make(chan struct{})
	close(ch)
	st.done[rec.ID] = ch
	return nil
}

// bumpSeqLocked raises the ID sequence past a restored/replayed job ID so
// freshly submitted jobs never collide with recovered ones.
func (st *Store) bumpSeqLocked(id string) {
	var n int
	if _, err := fmt.Sscanf(id, "j%d", &n); err == nil && n > st.seq {
		st.seq = n
	}
}

// Drain blocks until every in-flight async job has reached a terminal
// state or ctx expires (returning the classified context error). Pair it
// with a jobs context separate from the shutdown signal: stop accepting
// work, Drain with a grace period, then cancel the jobs context so
// stragglers terminate through their own cancellation checkpoints.
func (st *Store) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		st.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return resilience.CtxError(ctx)
	}
}

// Get returns a copy of the record for id.
func (st *Store) Get(id string) (*JobRecord, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	rec, ok := st.jobs[id]
	if !ok {
		return nil, false
	}
	return rec.clone(), true
}

// List returns copies of all records, sorted by ID (= submission order).
func (st *Store) List() []*JobRecord {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*JobRecord, 0, len(st.jobs))
	for _, rec := range st.jobs {
		out = append(out, rec.clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Await blocks until the job finishes or the context expires, returning the
// final record.
func (st *Store) Await(ctx context.Context, id string) (*JobRecord, error) {
	st.mu.Lock()
	ch, ok := st.done[id]
	st.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown job %q", id)
	}
	select {
	case <-ch:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	rec, _ := st.Get(id)
	return rec, nil
}

func (st *Store) addRunning(d int) {
	st.mu.Lock()
	st.running += d
	gJobsRunning.Set(int64(st.running))
	st.mu.Unlock()
}

func (st *Store) update(id string, fn func(*JobRecord)) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if rec, ok := st.jobs[id]; ok {
		fn(rec)
	}
}

func (r *JobRecord) clone() *JobRecord {
	c := *r
	return &c
}
