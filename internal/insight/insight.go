// Package insight implements insight functions (Def 3.4), the image measure
// f-dist (Def 3.5), the balanced-scheduler relation S^{≤ε} (Def 3.6) and the
// stability-by-composition property (Def 3.7).
//
// An insight function f_{(E,A)} maps executions of E‖A into a measurable
// arrival space G_E that is shared between f_{(E,A)} and f_{(E,B)}, so that
// the external perceptions of two systems can be compared. All insights here
// produce canonical strings, so G_E is a countable discrete space.
//
// The implemented insights (trace, accept, print, action-set restriction)
// are all functions of the execution's action sequence together with the
// external status of each action at its occurrence. Because composition in
// this framework is flattening (internal/psioa), E‖(B‖A) and (E‖B)‖A are
// the same automaton, and all these insights are stable by composition in
// the sense of Def 3.7 — which TestStability verifies empirically.
package insight

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/codec"
	"repro/internal/measure"
	"repro/internal/obs"
	"repro/internal/psioa"
	"repro/internal/resilience"
	"repro/internal/sched"
)

// Observability instruments: every FDist call applies the insight probe to
// each execution in the measure's support, so evals counts probe
// applications across the run.
var (
	cProbeCalls = obs.C("insight.probe.calls")
	cProbeEvals = obs.C("insight.probe.evals")
	cDistances  = obs.C("insight.distance.calls")
)

// Insight is an insight function: a measurable map from executions of the
// composed system W = E‖A to the arrival space G_E (strings). The composed
// automaton is passed explicitly so insights can consult signatures (e.g.
// to restrict to external actions).
type Insight struct {
	// ID identifies the insight in reports.
	ID string
	// Apply maps an execution of w to an element of G_E.
	Apply func(w psioa.PSIOA, alpha *psioa.Frag) string
	// StateLocal, when set, is the state-local factoring of Apply: it must
	// satisfy Apply(w, α) == StateLocal(w, lstate(α), |α|) for every
	// execution α. FDistOpts uses it to route depth-oblivious schedulers
	// through the state-collapsed DAG kernel, which never materialises
	// individual fragments. Trace-based insights leave it nil.
	StateLocal func(w psioa.PSIOA, q psioa.State, depth int) string
}

// Trace is the trace insight: the full external trace of the composed
// system. It is the classic insight of I/O-automata implementation.
func Trace() Insight {
	return Insight{
		ID: "trace",
		Apply: func(w psioa.PSIOA, alpha *psioa.Frag) string {
			return alpha.TraceKey(w)
		},
	}
}

// Accept is the accept insight of Canetti et al. [3]: it outputs "1" iff
// the special action acc occurs in the trace of the execution, "0"
// otherwise. The accept action is conventionally an output of the
// environment signalling that it distinguished the real system from the
// ideal one.
func Accept(acc psioa.Action) Insight {
	return Insight{
		ID: "accept(" + string(acc) + ")",
		Apply: func(w psioa.PSIOA, alpha *psioa.Frag) string {
			for _, a := range alpha.Trace(w) {
				if a == acc {
					return "1"
				}
			}
			return "0"
		},
	}
}

// Print is the print insight of [7]: the subsequence of trace actions whose
// names start with the given prefix (conventionally "print_"). It is the
// insight the paper recommends for extending monotonicity w.r.t. creation
// to secure emulation.
func Print(prefix string) Insight {
	return Insight{
		ID: "print(" + prefix + ")",
		Apply: func(w psioa.PSIOA, alpha *psioa.Frag) string {
			var parts []string
			for _, a := range alpha.Trace(w) {
				if strings.HasPrefix(string(a), prefix) {
					parts = append(parts, string(a))
				}
			}
			return codec.EncodeTuple(parts)
		},
	}
}

// Restrict is the insight that records the subsequence of trace actions
// belonging to a fixed set — typically the external actions of the
// environment, giving the "what E itself saw" perception.
func Restrict(set psioa.ActionSet) Insight {
	fixed := set.Copy()
	return Insight{
		ID: "restrict" + fixed.String(),
		Apply: func(w psioa.PSIOA, alpha *psioa.Frag) string {
			var parts []string
			for _, a := range alpha.Trace(w) {
				if fixed.Has(a) {
					parts = append(parts, string(a))
				}
			}
			return codec.EncodeTuple(parts)
		},
	}
}

// Final is the state-local insight recording the final local state of the
// execution. Because it factors through (lstate, depth), FDistOpts computes
// it on the state-collapsed DAG for depth-oblivious schedulers — the
// O(|states| × depth) fast path — while remaining well-defined (via Apply)
// for every scheduler.
func Final() Insight {
	return Insight{
		ID: "final",
		Apply: func(w psioa.PSIOA, alpha *psioa.Frag) string {
			return string(alpha.LState())
		},
		StateLocal: func(w psioa.PSIOA, q psioa.State, depth int) string {
			return string(q)
		},
	}
}

// FDist computes f-dist_{(E,A)}(σ) (Def 3.5): the image measure of ε_σ
// under the insight function, where w is the composed system E‖A and σ a
// scheduler of w. maxDepth guards the exact expansion.
func FDist(w psioa.PSIOA, s sched.Scheduler, f Insight, maxDepth int) (*measure.Dist[string], error) {
	return FDistCtx(nil, w, s, f, maxDepth, nil)
}

// FDistCtx is FDist with cooperative cancellation and a work budget,
// threaded into the underlying measure expansion. An image of a partial
// measure would silently misreport the perception, so any interruption —
// budget included — returns nil with the classified error.
func FDistCtx(ctx context.Context, w psioa.PSIOA, s sched.Scheduler, f Insight, maxDepth int, b *resilience.Budget) (*measure.Dist[string], error) {
	return FDistOpts(ctx, w, s, f, maxDepth, b, sched.Options{})
}

// FDistOpts is FDistCtx with kernel options, routed automatically: a
// state-local insight under a depth-oblivious scheduler computes on the
// state-collapsed DAG kernel (no fragments materialised, O(|states| ×
// depth)); everything else expands the exact tree, sharded across workers
// when the options request parallelism. Both routes produce the same
// distribution — bit for bit on dyadic workloads, up to float summation
// order otherwise.
func FDistOpts(ctx context.Context, w psioa.PSIOA, s sched.Scheduler, f Insight, maxDepth int, b *resilience.Budget, o sched.Options) (*measure.Dist[string], error) {
	defer obs.Time("insight.fdist.us")()
	if f.StateLocal != nil {
		if dob, ok := sched.AsDepthOblivious(s); ok {
			dm, err := sched.MeasureDAGOpts(ctx, w, dob, maxDepth, b, o)
			if err != nil {
				return nil, err
			}
			cProbeCalls.Inc()
			cProbeEvals.Add(int64(dm.Classes()))
			img := dm.Image(func(q psioa.State, depth int) string { return f.StateLocal(w, q, depth) })
			if tr := obs.Active(); tr.Enabled() {
				tr.Emit(obs.Event{Kind: obs.KindProbe, Name: f.ID, Attr: s.Name(), N: int64(img.Len())})
			}
			return img, nil
		}
	}
	em, err := sched.MeasureOpts(ctx, w, s, maxDepth, b, o)
	if err != nil {
		return nil, err
	}
	cProbeCalls.Inc()
	cProbeEvals.Add(int64(em.Len()))
	img := em.Image(func(fr *psioa.Frag) string { return f.Apply(w, fr) })
	if tr := obs.Active(); tr.Enabled() {
		tr.Emit(obs.Event{Kind: obs.KindProbe, Name: f.ID, Attr: s.Name(), N: int64(img.Len())})
	}
	return img, nil
}

// Distance returns the Def 3.6 distance between two external perceptions:
// sup over families I of |Σ_i (d2(ζ_i) − d1(ζ_i))|.
func Distance(d1, d2 *measure.Dist[string]) float64 {
	cDistances.Inc()
	return measure.BalancedSup(d1, d2)
}

// Balanced reports whether σ S^{≤ε}_{E,f} σ′ holds (Def 3.6), i.e. whether
// the two schedulers induce external perceptions within ε of each other.
// wA = E‖A with scheduler s1, wB = E‖B with scheduler s2.
func Balanced(wA psioa.PSIOA, s1 sched.Scheduler, wB psioa.PSIOA, s2 sched.Scheduler, f Insight, eps float64, maxDepth int) (bool, float64, error) {
	d1, err := FDist(wA, s1, f, maxDepth)
	if err != nil {
		return false, 0, err
	}
	d2, err := FDist(wB, s2, f, maxDepth)
	if err != nil {
		return false, 0, err
	}
	dist := Distance(d1, d2)
	return dist <= eps+measure.Eps, dist, nil
}

// StabilityReport is the result of an empirical stability-by-composition
// check (Def 3.7).
type StabilityReport struct {
	// DistWithContext is the Def 3.6 distance computed with B counted as
	// part of the environment (E‖B observing A₁ vs A₂).
	DistWithContext float64
	// DistEnvOnly is the distance computed with the environment alone
	// (E observing B‖A₁ vs B‖A₂) — for stable insights this is never
	// larger.
	DistEnvOnly float64
}

// CheckStability empirically checks Def 3.7 on a concrete quadruple
// (A1, A2, B, E) with schedulers σ, σ′: the distinguishing power of E alone
// must not exceed that of E‖B. Thanks to flattening, E‖B‖A1 is a single
// automaton; the two readings differ only in which insight parametrisation
// is used, here expressed by fCtx (perception available to E‖B) and fEnv
// (perception available to E alone).
func CheckStability(e, b, a1, a2 psioa.PSIOA, s1, s2 sched.Scheduler, fEnv, fCtx Insight, maxDepth int) (*StabilityReport, error) {
	w1, err := psioa.Compose(e, b, a1)
	if err != nil {
		return nil, err
	}
	w2, err := psioa.Compose(e, b, a2)
	if err != nil {
		return nil, err
	}
	ctx1, err := FDist(w1, s1, fCtx, maxDepth)
	if err != nil {
		return nil, err
	}
	ctx2, err := FDist(w2, s2, fCtx, maxDepth)
	if err != nil {
		return nil, err
	}
	env1, err := FDist(w1, s1, fEnv, maxDepth)
	if err != nil {
		return nil, err
	}
	env2, err := FDist(w2, s2, fEnv, maxDepth)
	if err != nil {
		return nil, err
	}
	rep := &StabilityReport{
		DistWithContext: Distance(ctx1, ctx2),
		DistEnvOnly:     Distance(env1, env2),
	}
	return rep, nil
}

// Stable reports whether the report witnesses stability: the environment
// alone perceives no more than the environment with context.
func (r *StabilityReport) Stable() bool {
	return r.DistEnvOnly <= r.DistWithContext+measure.Eps
}

// String renders the report.
func (r *StabilityReport) String() string {
	return fmt.Sprintf("dist(E||B)=%.6g dist(E)=%.6g stable=%v", r.DistWithContext, r.DistEnvOnly, r.Stable())
}
