package insight_test

import (
	"testing"

	"repro/internal/insight"
	"repro/internal/psioa"
	"repro/internal/sched"
	"repro/internal/testaut"
)

// stabilitySetup builds the Def 3.7 quadruple used by the battery: E
// observes coin x, B is an unrelated coin y, A1/A2 are coins z of different
// bias, with matching run-to-completion schedulers.
func stabilitySetup(t *testing.T, biasA1, biasA2 float64) (e, b, a1, a2 psioa.PSIOA, s1, s2 sched.Scheduler) {
	t.Helper()
	e = testaut.CoinEnv("x")
	b = testaut.OpenCoin("x", 0.5)
	a1 = testaut.Coin("z", biasA1)
	a2 = testaut.Coin("z", biasA2)
	w1 := psioa.MustCompose(e, b, a1)
	w2 := psioa.MustCompose(e, b, a2)
	order := []psioa.Action{"go_x", "heads_x", "tails_x", "flip_z", "heads_z", "tails_z"}
	s1 = &sched.Priority{A: w1, Order: order, Bound: 8, LocalOnly: true}
	s2 = &sched.Priority{A: w2, Order: order, Bound: 8, LocalOnly: true}
	return
}

// TestStabilityBattery checks Def 3.7 for every stock insight across a
// sweep of bias gaps: the environment-only perception never distinguishes
// more than the context-extended one.
func TestStabilityBattery(t *testing.T) {
	envSet := psioa.NewActionSet("go_x", "heads_x", "tails_x")
	insights := []struct {
		name string
		fEnv insight.Insight
		fCtx insight.Insight
	}{
		{"trace", insight.Restrict(envSet), insight.Trace()},
		{"accept", insight.Accept("heads_x"), insight.Accept("heads_x")},
		{"print", insight.Print("heads"), insight.Print("heads")},
		{"restrict", insight.Restrict(envSet), insight.Restrict(envSet.Union(psioa.NewActionSet("heads_z", "tails_z")))},
	}
	for _, bias := range []float64{0.5, 0.75, 1.0} {
		e, b, a1, a2, s1, s2 := stabilitySetup(t, 0.5, bias)
		for _, in := range insights {
			rep, err := insight.CheckStability(e, b, a1, a2, s1, s2, in.fEnv, in.fCtx, 12)
			if err != nil {
				t.Fatalf("%s bias=%v: %v", in.name, bias, err)
			}
			if !rep.Stable() {
				t.Errorf("%s bias=%v unstable: %v", in.name, bias, rep)
			}
		}
	}
}

// TestStabilityDetectsContextSensitivity: the context's perception strictly
// exceeds the environment's whenever A1/A2 differ and only the context can
// see them.
func TestStabilityDetectsContextSensitivity(t *testing.T) {
	envSet := psioa.NewActionSet("go_x", "heads_x", "tails_x")
	e, b, a1, a2, s1, s2 := stabilitySetup(t, 0.5, 1.0)
	rep, err := insight.CheckStability(e, b, a1, a2, s1, s2, insight.Restrict(envSet), insight.Trace(), 12)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DistWithContext <= rep.DistEnvOnly {
		t.Errorf("context should strictly distinguish here: %v", rep)
	}
}

// TestInsightIDs: identifiers are stable and informative.
func TestInsightIDs(t *testing.T) {
	if insight.Trace().ID != "trace" {
		t.Error("trace ID changed")
	}
	if insight.Accept("acc").ID != "accept(acc)" {
		t.Error("accept ID changed")
	}
	if insight.Print("p_").ID != "print(p_)" {
		t.Error("print ID changed")
	}
}
