package insight_test

import (
	"math"
	"testing"

	"repro/internal/insight"
	"repro/internal/measure"
	"repro/internal/psioa"
	"repro/internal/sched"
	"repro/internal/testaut"
)

func coinWithSched(bias float64) (*psioa.Table, sched.Scheduler) {
	c := testaut.Coin("c", bias)
	return c, &sched.Greedy{A: c, Bound: 5}
}

func TestTraceInsightFDist(t *testing.T) {
	c, s := coinWithSched(0.25)
	d, err := insight.FDist(c, s, insight.Trace(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("f-dist support = %d, want 2 (heads/tails traces)", d.Len())
	}
	if !d.IsProb() {
		t.Error("f-dist should be a probability measure")
	}
}

func TestAcceptInsight(t *testing.T) {
	c, s := coinWithSched(0.25)
	acc := insight.Accept("heads_c")
	d, err := insight.FDist(c, s, acc, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.P("1")-0.25) > 1e-9 || math.Abs(d.P("0")-0.75) > 1e-9 {
		t.Errorf("accept dist = %v", d)
	}
}

func TestAcceptIgnoresInternal(t *testing.T) {
	c := testaut.Coin("c", 1.0)
	s := &sched.Greedy{A: c, Bound: 5}
	// flip_c is internal: accept(flip_c) must never fire.
	d, err := insight.FDist(c, s, insight.Accept("flip_c"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if d.P("1") != 0 {
		t.Errorf("internal action leaked into accept: %v", d)
	}
}

func TestPrintInsight(t *testing.T) {
	// An automaton that outputs print_x then other_y.
	a := psioa.NewBuilder("p", "q0").
		AddState("q0", psioa.NewSignature(nil, []psioa.Action{"print_x"}, nil)).
		AddState("q1", psioa.NewSignature(nil, []psioa.Action{"other_y"}, nil)).
		AddState("q2", psioa.EmptySignature()).
		AddDet("q0", "print_x", "q1").
		AddDet("q1", "other_y", "q2").
		MustBuild()
	s := &sched.Greedy{A: a, Bound: 5}
	d, err := insight.FDist(a, s, insight.Print("print_"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 {
		t.Fatalf("print dist support = %d", d.Len())
	}
	// The single perception contains only print_x.
	for _, k := range d.Support() {
		if k != "print_x" {
			t.Errorf("print perception = %q, want \"print_x\"", k)
		}
	}
}

func TestRestrictInsight(t *testing.T) {
	c, s := coinWithSched(0.5)
	r := insight.Restrict(psioa.NewActionSet("heads_c"))
	d, err := insight.FDist(c, s, r, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Two perceptions: "heads_c" (p=.5) and empty (p=.5).
	if d.Len() != 2 || math.Abs(d.P("heads_c")-0.5) > 1e-9 {
		t.Errorf("restrict dist = %v", d)
	}
}

func TestBalancedIdenticalCoins(t *testing.T) {
	c1, s1 := coinWithSched(0.5)
	c2 := testaut.Coin("c", 0.5) // same automaton, fresh instance
	s2 := &sched.Greedy{A: c2, Bound: 5}
	ok, dist, err := insight.Balanced(c1, s1, c2, s2, insight.Trace(), 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || dist > 1e-9 {
		t.Errorf("identical systems should be 0-balanced, dist=%v", dist)
	}
}

func TestBalancedBiasedCoins(t *testing.T) {
	c1, s1 := coinWithSched(0.5)
	c2 := testaut.Coin("c", 0.75)
	s2 := &sched.Greedy{A: c2, Bound: 5}
	ok, dist, err := insight.Balanced(c1, s1, c2, s2, insight.Trace(), 0.1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("0.25-apart coins should not be 0.1-balanced")
	}
	if math.Abs(dist-0.25) > 1e-9 {
		t.Errorf("distance = %v, want 0.25", dist)
	}
	ok, _, _ = insight.Balanced(c1, s1, c2, s2, insight.Trace(), 0.25, 10)
	if !ok {
		t.Error("should be 0.25-balanced")
	}
}

func TestDistanceMatchesBalancedSup(t *testing.T) {
	d1 := measure.MustFromMap(map[string]float64{"a": 0.5, "b": 0.5})
	d2 := measure.MustFromMap(map[string]float64{"a": 0.9, "b": 0.1})
	if got := insight.Distance(d1, d2); math.Abs(got-0.4) > 1e-9 {
		t.Errorf("Distance = %v, want 0.4", got)
	}
}

func TestStabilityTraceInsight(t *testing.T) {
	// E observes coin x; context B is an unrelated coin y; A1/A2 are coins z
	// with different bias. The environment-only perception (restricted to
	// E's actions) must not distinguish better than the full-context trace.
	e := testaut.CoinEnv("x")
	x := testaut.OpenCoin("x", 0.5)
	a1 := testaut.Coin("z", 0.5)
	a2 := testaut.Coin("z", 0.9)
	fEnv := insight.Restrict(psioa.NewActionSet("go_x", "heads_x", "tails_x"))
	fCtx := insight.Trace()
	w1 := psioa.MustCompose(e, x, a1)
	s1 := &sched.Sequence{A: w1, Acts: []psioa.Action{"go_x", "flip_z", "heads_z"}}
	w2 := psioa.MustCompose(e, x, a2)
	s2 := &sched.Sequence{A: w2, Acts: []psioa.Action{"go_x", "flip_z", "heads_z"}}
	rep, err := insight.CheckStability(e, x, a1, a2, s1, s2, fEnv, fCtx, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Stable() {
		t.Errorf("trace insight should be stable: %v", rep)
	}
	// The context does distinguish (heads_z frequency differs) while the
	// env-only view does not.
	if rep.DistWithContext <= 1e-9 {
		t.Errorf("context should distinguish: %v", rep)
	}
	if rep.DistEnvOnly > 1e-9 {
		t.Errorf("env-only view should not distinguish: %v", rep)
	}
}

func TestStabilityReportString(t *testing.T) {
	r := &insight.StabilityReport{DistWithContext: 0.5, DistEnvOnly: 0.25}
	if !r.Stable() {
		t.Error("0.25 <= 0.5 should be stable")
	}
	if r.String() == "" {
		t.Error("empty String()")
	}
	bad := &insight.StabilityReport{DistWithContext: 0.1, DistEnvOnly: 0.2}
	if bad.Stable() {
		t.Error("0.2 > 0.1 should be unstable")
	}
}

func TestFDistPropagatesErrors(t *testing.T) {
	c := testaut.OpenCoin("c", 0.5)
	evil := &sched.FuncSched{ID: "loop", Fn: func(f *psioa.Frag) *sched.Choice {
		return measure.Dirac(psioa.Action("go_c"))
	}}
	if _, err := insight.FDist(c, evil, insight.Trace(), 4); err == nil {
		t.Error("expected depth error to propagate")
	}
}
