package obs_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestNopHotPathAllocFree verifies the core contract of the no-op tracer:
// an instrumented hot path — fetch the active tracer, check Enabled, bump
// a counter, open and close a span, open and close a child span — allocates
// nothing when tracing is disabled.
func TestNopHotPathAllocFree(t *testing.T) {
	prev := obs.SetTracer(nil) // ensure the no-op tracer
	defer obs.SetTracer(prev)
	c := obs.C("obs.test.hotpath")
	allocs := testing.AllocsPerRun(1000, func() {
		tr := obs.Active()
		if tr.Enabled() {
			tr.Emit(obs.Event{Kind: obs.KindSchedStep, Name: "x"})
		}
		c.Inc()
		sp := obs.Begin("obs.test.span", "attr")
		sp.Begin("obs.test.child", "attr").End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled hot path allocates %v times per run, want 0", allocs)
	}
}

// TestMetricsConcurrent hammers one registry from many goroutines while
// snapshots are taken; run under -race this is the snapshot race-safety
// check, and the final snapshot must account for every write.
func TestMetricsConcurrent(t *testing.T) {
	r := obs.NewRegistry()
	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c")
			g := r.Gauge("g")
			h := r.Histogram("h")
			for i := 0; i < iters; i++ {
				c.Inc()
				g.SetMax(int64(i))
				h.Observe(float64(i))
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = r.Snapshot() // concurrent reads must be race-free
		}
	}()
	wg.Wait()
	<-done
	snap := r.Snapshot()
	if got := snap.Counters["c"]; got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if got := snap.Gauges["g"]; got != iters-1 {
		t.Errorf("gauge high-water mark = %d, want %d", got, iters-1)
	}
	h := snap.Histograms["h"]
	if h.Count != workers*iters {
		t.Errorf("histogram count = %d, want %d", h.Count, workers*iters)
	}
	if h.Min != 0 || h.Max != iters-1 {
		t.Errorf("histogram min/max = %v/%v, want 0/%d", h.Min, h.Max, iters-1)
	}
}

// TestRegistryGetOrCreate verifies instruments are shared by name.
func TestRegistryGetOrCreate(t *testing.T) {
	r := obs.NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Error("Counter(x) returned distinct instances")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Error("Gauge(x) returned distinct instances")
	}
	if r.Histogram("x") != r.Histogram("x") {
		t.Error("Histogram(x) returned distinct instances")
	}
}

// TestJSONLRoundTrip checks that every field of an event survives the
// JSONL encoding: each line must individually json.Unmarshal back into an
// equal Event (up to the tracer-stamped timestamp).
func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := obs.NewJSONL(&buf)
	want := []obs.Event{
		{Kind: obs.KindStateFound, Name: "aut", Attr: "q1", N: 3},
		{Kind: obs.KindSchedStep, Name: "greedy[4]", Attr: "toss", N: 2, V: 0.5},
		{Kind: obs.KindPair, Name: "seq", Attr: "env:ok", V: 0.0625},
	}
	for _, e := range want {
		j.Emit(e)
	}
	prev := obs.SetTracer(j)
	obs.Begin("work", "x").End()
	obs.SetTracer(prev)
	if err := j.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	// Each line is standalone JSON.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(want)+2 { // + span.begin/span.end
		t.Fatalf("got %d lines, want %d", len(lines), len(want)+2)
	}
	for i, ln := range lines {
		var e obs.Event
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
	}

	got, err := obs.ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	for i, w := range want {
		g := got[i]
		g.T = 0 // stamped by the tracer
		if g != w {
			t.Errorf("event %d = %+v, want %+v", i, g, w)
		}
	}
	if got[3].Kind != obs.KindSpanBegin || got[4].Kind != obs.KindSpanEnd {
		t.Errorf("span events = %v/%v, want begin/end", got[3].Kind, got[4].Kind)
	}
	if got[3].Span == 0 || got[3].Span != got[4].Span {
		t.Errorf("span ids %d/%d do not correlate", got[3].Span, got[4].Span)
	}
}

// TestSummarize checks the compact text summary over a recorded trace.
func TestSummarize(t *testing.T) {
	rec := obs.NewRecorder()
	prev := obs.SetTracer(rec)
	sp := obs.Begin("phase", "x")
	rec.Emit(obs.Event{Kind: obs.KindSchedStep, Name: "s"})
	rec.Emit(obs.Event{Kind: obs.KindSchedStep, Name: "s"})
	sp.End()
	obs.SetTracer(prev)

	sum := obs.Summarize(rec.Events())
	for _, frag := range []string{"4 events", "sched.step", "phase", "n=1"} {
		if !strings.Contains(sum, frag) {
			t.Errorf("summary missing %q:\n%s", frag, sum)
		}
	}
}

// TestSnapshotJSON checks the JSON export round-trips.
func TestSnapshotJSON(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("a").Add(7)
	r.Gauge("b").Set(42)
	r.Histogram("c").Observe(3)
	var got obs.Snapshot
	if err := json.Unmarshal(r.Snapshot().JSON(), &got); err != nil {
		t.Fatalf("unmarshal snapshot: %v", err)
	}
	if got.Counters["a"] != 7 || got.Gauges["b"] != 42 || got.Histograms["c"].Count != 1 {
		t.Errorf("round-tripped snapshot = %+v", got)
	}
	text := r.Snapshot().String()
	if !strings.Contains(text, "counter") || !strings.Contains(text, "a") {
		t.Errorf("text summary missing counter line:\n%s", text)
	}
}

// TestCLI exercises the flag-driven lifecycle: Start installs the JSONL
// tracer, Stop flushes the trace and writes the metrics snapshot, and a
// second Stop is a no-op.
func TestCLI(t *testing.T) {
	dir := t.TempDir()
	c := &obs.CLI{
		Trace:      filepath.Join(dir, "trace.jsonl"),
		MetricsOut: filepath.Join(dir, "metrics.json"),
	}
	if err := c.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	obs.Begin("cli.work", "unit").End()
	obs.C("obs.test.cli").Inc()
	c.Stop()
	c.Stop() // idempotent

	tf, err := os.Open(filepath.Join(dir, "trace.jsonl"))
	if err != nil {
		t.Fatalf("open trace: %v", err)
	}
	defer tf.Close()
	events, err := obs.ReadTrace(tf)
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	if len(events) != 2 {
		t.Errorf("trace has %d events, want 2", len(events))
	}

	mb, err := os.ReadFile(filepath.Join(dir, "metrics.json"))
	if err != nil {
		t.Fatalf("read metrics: %v", err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(mb, &snap); err != nil {
		t.Fatalf("unmarshal metrics: %v", err)
	}
	if snap.Counters["obs.test.cli"] < 1 {
		t.Errorf("metrics snapshot missing obs.test.cli: %v", snap.Counters)
	}
}
