package obs

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"runtime"
	"runtime/pprof"
)

// CLI bundles the observability flags shared by every command-line tool:
// execution tracing, a metrics snapshot at exit, a live pprof server, and
// one-shot CPU/heap profiles. Typical use:
//
//	var ocli obs.CLI
//	ocli.Register(flag.CommandLine)
//	flag.Parse()
//	if err := ocli.Start(); err != nil { ... }
//	defer ocli.Stop()
//
// Stop is idempotent, so tools that exit through os.Exit can route every
// exit path through a helper that calls Stop first.
type CLI struct {
	// Trace is the -trace flag: path of the JSONL trace to write.
	Trace string
	// Metrics is the -metrics flag: print a JSON snapshot of the Default
	// registry to stderr at Stop.
	Metrics bool
	// MetricsOut is the -metrics-out flag: also write the snapshot to a
	// file.
	MetricsOut string
	// Pprof is the -pprof flag: address for a live net/http/pprof server,
	// e.g. "localhost:6060".
	Pprof string
	// CPUProfile and MemProfile are the -cpuprofile/-memprofile flags:
	// paths for one-shot pprof files covering the run.
	CPUProfile string
	// MemProfile is the heap profile path, written at Stop.
	MemProfile string

	traceFile *os.File
	tracer    *JSONL
	cpuFile   *os.File
	stopped   bool
}

// Register installs the observability flags on fs.
func (c *CLI) Register(fs *flag.FlagSet) {
	fs.StringVar(&c.Trace, "trace", "", "write a JSONL execution trace to `file`")
	fs.BoolVar(&c.Metrics, "metrics", false, "print a JSON metrics snapshot to stderr at exit")
	fs.StringVar(&c.MetricsOut, "metrics-out", "", "write the JSON metrics snapshot to `file` at exit")
	fs.StringVar(&c.Pprof, "pprof", "", "serve net/http/pprof on `addr` (e.g. localhost:6060)")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a CPU profile to `file`")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a heap profile to `file` at exit")
}

// Start activates whatever the flags requested: installs the JSONL tracer,
// starts the CPU profile, and launches the pprof server.
func (c *CLI) Start() error {
	if c.Trace != "" {
		f, err := os.Create(c.Trace)
		if err != nil {
			return fmt.Errorf("obs: create trace: %w", err)
		}
		c.traceFile = f
		c.tracer = NewJSONL(f)
		SetTracer(c.tracer)
	}
	if c.CPUProfile != "" {
		f, err := os.Create(c.CPUProfile)
		if err != nil {
			return fmt.Errorf("obs: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("obs: start cpu profile: %w", err)
		}
		c.cpuFile = f
	}
	if c.Pprof != "" {
		go func() {
			if err := http.ListenAndServe(c.Pprof, nil); err != nil {
				fmt.Fprintf(os.Stderr, "obs: pprof server: %v\n", err)
			}
		}()
	}
	return nil
}

// Stop flushes the trace, writes the profiles and metrics snapshot, and
// restores the no-op tracer. Safe to call multiple times; only the first
// call acts.
func (c *CLI) Stop() {
	if c.stopped {
		return
	}
	c.stopped = true
	if c.tracer != nil {
		SetTracer(nil)
		if err := c.tracer.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "obs: flush trace: %v\n", err)
		}
		if err := c.traceFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "obs: close trace: %v\n", err)
		}
	}
	if c.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := c.cpuFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "obs: close cpu profile: %v\n", err)
		}
	}
	if c.MemProfile != "" {
		if f, err := os.Create(c.MemProfile); err != nil {
			fmt.Fprintf(os.Stderr, "obs: create mem profile: %v\n", err)
		} else {
			runtime.GC() // get up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "obs: write mem profile: %v\n", err)
			}
			f.Close()
		}
	}
	if c.Metrics || c.MetricsOut != "" {
		snap := Default.Snapshot().JSON()
		if c.Metrics {
			fmt.Fprintf(os.Stderr, "%s\n", snap)
		}
		if c.MetricsOut != "" {
			if err := os.WriteFile(c.MetricsOut, append(snap, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "obs: write metrics: %v\n", err)
			}
		}
	}
}
