// Package obs is the observability layer of the reproduction: structured
// execution tracing, a registry of atomic counters/gauges/histograms, a
// JSONL trace writer, and profiling hooks for the command-line tools.
//
// The package is zero-dependency (standard library only) and is designed
// so that instrumented hot paths cost ~nothing when tracing is disabled:
// the default tracer is a no-op whose Enabled method returns false, and
// every instrumentation site guards event construction behind that check.
// Metrics are always on — they are single atomic adds, typically batched
// per call rather than per inner-loop iteration.
//
// Conventions:
//
//   - tracer events carry a Kind (what happened), a Name (the subject:
//     automaton, scheduler, experiment), an optional Attr (secondary
//     label: action, status), and numeric payloads N (count/length) and
//     V (mass/distance);
//   - spans correlate a begin/end pair through a process-unique id and
//     report their wall-clock duration in microseconds on the end event;
//   - metric names are dotted paths rooted at the instrumented package,
//     e.g. "psioa.explore.states" or "sched.measure.steps".
package obs

import (
	"sync/atomic"
	"time"
)

// Kind classifies a trace event.
type Kind string

// The event kinds emitted by the instrumented pipeline.
const (
	// KindSpanBegin and KindSpanEnd bracket a timed region; they share a
	// Span id and the end event carries the duration.
	KindSpanBegin Kind = "span.begin"
	KindSpanEnd   Kind = "span.end"
	// KindSchedStep is one scheduler choice expanded during exact measure
	// computation (Name = scheduler, Attr = action, N = fragment length).
	KindSchedStep Kind = "sched.step"
	// KindSchedHalt is halting mass assigned to a fragment (V = mass).
	KindSchedHalt Kind = "sched.halt"
	// KindStateFound is a state discovered by bounded BFS exploration.
	KindStateFound Kind = "explore.state"
	// KindTransition is a transition expanded during exploration.
	KindTransition Kind = "explore.transition"
	// KindProbe is one insight-function evaluation over an execution
	// measure (Name = insight id, N = support size).
	KindProbe Kind = "insight.probe"
	// KindPair is one (environment, scheduler) pair decided by an
	// implementation-relation check (V = achieved distance).
	KindPair Kind = "implements.pair"
	// KindEmuRound is one adversary/simulator round of a secure-emulation
	// check (Name = adversary id, Attr = verdict).
	KindEmuRound Kind = "emulation.round"
	// KindExperiment is one completed experiment of the E1..E17 suite.
	KindExperiment Kind = "experiment"
	// KindShard is one shard of one level of a parallel kernel (Name =
	// scheduler, Attr = "L<level>.S<shard>", N = items expanded, Dur =
	// shard wall μs, Parent = the kernel span id).
	KindShard Kind = "sched.shard"
)

// Event is one structured trace record. The zero value of every optional
// field is omitted from the JSONL encoding.
type Event struct {
	// T is the event time in microseconds since the tracer started. It is
	// stamped by the tracer, not the caller.
	T int64 `json:"t_us"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// Name is the subject: automaton id, scheduler name, experiment id.
	Name string `json:"name,omitempty"`
	// Attr is a secondary label: action, status, counterpart.
	Attr string `json:"attr,omitempty"`
	// N is an integer payload: depth, count, support size.
	N int64 `json:"n,omitempty"`
	// V is a float payload: probability mass, distance.
	V float64 `json:"v,omitempty"`
	// Span correlates span.begin/span.end pairs.
	Span int64 `json:"span,omitempty"`
	// Parent is the id of the enclosing span (span.begin and events that
	// attribute themselves to a span); zero means a root span / no parent.
	Parent int64 `json:"parent,omitempty"`
	// Dur is the span duration in microseconds (span.end only).
	Dur int64 `json:"dur_us,omitempty"`
}

// Tracer receives structured events. Implementations must be safe for
// concurrent use. Hot paths must guard Emit calls behind Enabled so that
// the disabled case costs one interface call and a branch.
type Tracer interface {
	// Enabled reports whether events are recorded at all.
	Enabled() bool
	// Emit records one event. The tracer stamps Event.T itself.
	Emit(Event)
}

// Nop is the disabled tracer: Enabled is false and Emit discards.
type Nop struct{}

// Enabled implements Tracer.
func (Nop) Enabled() bool { return false }

// Emit implements Tracer.
func (Nop) Emit(Event) {}

// active holds the process-wide tracer; instrumented packages fetch it per
// operation so a tracer installed mid-run takes effect immediately.
var active atomic.Pointer[Tracer]

func init() {
	var t Tracer = Nop{}
	active.Store(&t)
}

// SetTracer installs t as the process-wide tracer; nil restores the no-op
// tracer. It returns the previous tracer so callers can chain or restore.
func SetTracer(t Tracer) Tracer {
	if t == nil {
		t = Nop{}
	}
	prev := active.Swap(&t)
	return *prev
}

// Active returns the process-wide tracer. The result is never nil.
func Active() Tracer { return *active.Load() }

// spanIDs issues process-unique span correlation ids.
var spanIDs atomic.Int64

// Span is a timed region begun with Begin. The zero Span (returned when
// tracing is disabled) is valid and End on it is a no-op, so callers can
// write `defer obs.Begin(...).End()` unconditionally.
type Span struct {
	tr     Tracer
	id     int64
	parent int64
	name   string
	start  time.Time
}

// Begin opens a root span when tracing is enabled and returns its handle.
func Begin(name, attr string) Span {
	return Span{}.Begin(name, attr)
}

// Begin opens a child span of s: the begin event carries s's id as Parent,
// so a SpanTree reconstructor can rebuild the call hierarchy from the
// trace. The zero Span is a valid parent (the child becomes a root), which
// keeps the disabled path allocation-free: when tracing is off every span
// is the zero Span and opening children off it costs one branch.
func (s Span) Begin(name, attr string) Span {
	tr := Active()
	if !tr.Enabled() {
		return Span{}
	}
	id := spanIDs.Add(1)
	tr.Emit(Event{Kind: KindSpanBegin, Name: name, Attr: attr, Span: id, Parent: s.id})
	return Span{tr: tr, id: id, parent: s.id, name: name, start: time.Now()}
}

// ID returns the span's correlation id (zero for the zero Span). Events
// emitted with Parent set to this id attribute themselves to the span.
func (s Span) ID() int64 { return s.id }

// End closes the span, emitting its duration. No-op on the zero Span.
func (s Span) End() {
	if s.tr == nil {
		return
	}
	s.tr.Emit(Event{Kind: KindSpanEnd, Name: s.name, Span: s.id, Parent: s.parent, Dur: time.Since(s.start).Microseconds()})
}
