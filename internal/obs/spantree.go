package obs

import (
	"fmt"
	"sort"
	"strings"
)

// SpanNode is one reconstructed span of a trace: its identity, its timing,
// and its children ordered by begin time. Ended is false for spans whose
// end event is missing from the trace (the run was cut short or the trace
// truncated); their Dur is zero.
type SpanNode struct {
	ID       int64
	Parent   int64
	Name     string
	Attr     string
	StartUS  int64
	DurUS    int64
	Ended    bool
	Children []*SpanNode
	// Leaves counts non-span events attributed to this span via
	// Event.Parent (e.g. sched.shard records).
	Leaves int
}

// SpanTree is the hierarchy reconstructed from a trace's span.begin /
// span.end events by BuildSpanTree.
type SpanTree struct {
	Roots []*SpanNode
	// byID indexes every node for Find.
	byID map[int64]*SpanNode
}

// BuildSpanTree reconstructs the span hierarchy of a trace: begin events
// create nodes, end events stamp durations, and Parent ids link children
// under their enclosing span. The reconstruction is tolerant of real
// traces: spans interleaved across goroutines correlate by id rather than
// by nesting order, a child whose parent id never appears in the trace
// becomes a root (orphan), and an end without a begin synthesises its
// node. Non-span events carrying a Parent id count into that span's
// Leaves. Siblings sort by begin timestamp, ties by id (ids are issued
// monotonically, so this is emission order).
func BuildSpanTree(events []Event) *SpanTree {
	t := &SpanTree{byID: make(map[int64]*SpanNode)}
	node := func(id int64) *SpanNode {
		n := t.byID[id]
		if n == nil {
			n = &SpanNode{ID: id}
			t.byID[id] = n
		}
		return n
	}
	for _, e := range events {
		switch e.Kind {
		case KindSpanBegin:
			n := node(e.Span)
			n.Name, n.Attr, n.Parent, n.StartUS = e.Name, e.Attr, e.Parent, e.T
		case KindSpanEnd:
			n := node(e.Span)
			if n.Name == "" {
				n.Name = e.Name
			}
			if n.Parent == 0 {
				n.Parent = e.Parent
			}
			n.DurUS, n.Ended = e.Dur, true
		default:
			if e.Parent != 0 {
				node(e.Parent).Leaves++
			}
		}
	}
	for _, n := range t.byID {
		if p, ok := t.byID[n.Parent]; ok && n.Parent != 0 && n.Parent != n.ID {
			p.Children = append(p.Children, n)
		} else {
			t.Roots = append(t.Roots, n)
		}
	}
	order := func(ns []*SpanNode) {
		sort.Slice(ns, func(i, j int) bool {
			if ns[i].StartUS != ns[j].StartUS {
				return ns[i].StartUS < ns[j].StartUS
			}
			return ns[i].ID < ns[j].ID
		})
	}
	order(t.Roots)
	for _, n := range t.byID {
		order(n.Children)
	}
	return t
}

// Find returns the reconstructed span with the given id, or nil.
func (t *SpanTree) Find(id int64) *SpanNode { return t.byID[id] }

// Len returns the number of reconstructed spans.
func (t *SpanTree) Len() int { return len(t.byID) }

// Render returns an indented text view of the tree, one span per line:
//
//	core.implements (seq vs seq')            12.3ms
//	  sched.measure.par (random[13])          4.1ms  leaves=16
func (t *SpanTree) Render() string {
	var b strings.Builder
	var walk func(n *SpanNode, depth int)
	walk = func(n *SpanNode, depth int) {
		fmt.Fprintf(&b, "%s%s", strings.Repeat("  ", depth), n.Name)
		if n.Attr != "" {
			fmt.Fprintf(&b, " (%s)", n.Attr)
		}
		if n.Ended {
			fmt.Fprintf(&b, "  %s", usDur(n.DurUS))
		} else {
			b.WriteString("  [unended]")
		}
		if n.Leaves > 0 {
			fmt.Fprintf(&b, "  leaves=%d", n.Leaves)
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range t.Roots {
		walk(r, 0)
	}
	return b.String()
}
