package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// JSONL is a Tracer that appends one JSON object per event to a writer.
// Events are timestamped relative to the tracer's creation and written
// under a mutex, so a single JSONL tracer may serve many goroutines.
type JSONL struct {
	mu    sync.Mutex
	w     *bufio.Writer
	enc   *json.Encoder
	start time.Time
	err   error
}

// NewJSONL returns a tracer writing JSON Lines to w. Call Flush before
// closing the underlying writer.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	return &JSONL{w: bw, enc: json.NewEncoder(bw), start: time.Now()}
}

// Enabled implements Tracer.
func (j *JSONL) Enabled() bool { return true }

// Emit implements Tracer.
func (j *JSONL) Emit(e Event) {
	t := time.Since(j.start).Microseconds()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	e.T = t
	j.err = j.enc.Encode(e)
}

// Flush drains buffered events and reports the first write error, if any.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	return j.w.Flush()
}

// ReadTrace decodes a JSONL trace produced by a JSONL tracer.
func ReadTrace(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(text), &e); err != nil {
			return out, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("obs: reading trace: %w", err)
	}
	return out, nil
}

// Recorder is an in-memory Tracer for tests and summaries.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	start  time.Time
}

// NewRecorder returns an empty in-memory tracer.
func NewRecorder() *Recorder { return &Recorder{start: time.Now()} }

// Enabled implements Tracer.
func (r *Recorder) Enabled() bool { return true }

// Emit implements Tracer.
func (r *Recorder) Emit(e Event) {
	t := time.Since(r.start).Microseconds()
	r.mu.Lock()
	e.T = t
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events returns a copy of the recorded events in emission order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Summarize renders a compact text summary of a trace: per-kind event
// counts and, for spans, per-name call counts with total and maximum
// duration. It is the human counterpart of the raw JSONL file.
func Summarize(events []Event) string {
	kinds := make(map[Kind]int)
	type spanAgg struct {
		n        int
		tot, max int64
	}
	spans := make(map[string]*spanAgg)
	for _, e := range events {
		kinds[e.Kind]++
		if e.Kind == KindSpanEnd {
			a := spans[e.Name]
			if a == nil {
				a = &spanAgg{}
				spans[e.Name] = a
			}
			a.n++
			a.tot += e.Dur
			if e.Dur > a.max {
				a.max = e.Dur
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events\n", len(events))
	kindNames := make([]string, 0, len(kinds))
	for k := range kinds {
		kindNames = append(kindNames, string(k))
	}
	sort.Strings(kindNames)
	for _, k := range kindNames {
		fmt.Fprintf(&b, "  %-22s %d\n", k, kinds[Kind(k)])
	}
	if len(spans) > 0 {
		b.WriteString("spans:\n")
		spanNames := make([]string, 0, len(spans))
		for n := range spans {
			spanNames = append(spanNames, n)
		}
		sort.Strings(spanNames)
		for _, n := range spanNames {
			a := spans[n]
			fmt.Fprintf(&b, "  %-28s n=%-6d total=%s max=%s\n",
				n, a.n, usDur(a.tot), usDur(a.max))
		}
	}
	return b.String()
}

func usDur(us int64) string {
	return (time.Duration(us) * time.Microsecond).Round(time.Microsecond).String()
}
