package obs_test

import (
	"regexp"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestPromName checks the registry-name mapping is stable and legal.
func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"sched.measure.steps":  "dse_sched_measure_steps",
		"engine.pool.busy.max": "dse_engine_pool_busy_max",
		"a-b c":                "dse_a_b_c",
		"x:y_z9":               "dse_x:y_z9",
	} {
		if got := obs.PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// promLine accepts one sample or comment line of the text exposition
// format 0.0.4 — the same shape scripts/prom_check.sh enforces.
var promLine = regexp.MustCompile(`^(# (TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|summary)|HELP .*)|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+-]+)$`)

// TestWriteProm renders a small registry and checks every line parses and
// the expected families appear with the right types and values.
func TestWriteProm(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("sched.measure.steps").Add(42)
	r.Gauge("engine.jobs.running").Set(3)
	h := r.Histogram("sched.measure.us")
	for i := 0; i < 100; i++ {
		h.Observe(float64(i))
	}
	r.Histogram("empty.us") // registered but never observed

	var b strings.Builder
	if err := r.Snapshot().WriteProm(&b); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	out := b.String()
	for i, ln := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if !promLine.MatchString(ln) {
			t.Errorf("line %d not valid exposition format: %q", i+1, ln)
		}
	}
	for _, frag := range []string{
		"# TYPE dse_sched_measure_steps counter\ndse_sched_measure_steps 42\n",
		"# TYPE dse_engine_jobs_running gauge\ndse_engine_jobs_running 3\n",
		"# TYPE dse_sched_measure_us summary\n",
		`dse_sched_measure_us{quantile="0.5"} `,
		`dse_sched_measure_us{quantile="0.99"} `,
		"dse_sched_measure_us_sum 4950\ndse_sched_measure_us_count 100\n",
		// An unobserved histogram still exports _sum/_count but no
		// quantiles (a quantile of an empty summary is undefined).
		"# TYPE dse_empty_us summary\ndse_empty_us_sum 0\ndse_empty_us_count 0\n",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
	if strings.Contains(out, `dse_empty_us{`) {
		t.Errorf("empty histogram exported quantiles:\n%s", out)
	}
}

// TestImbalance checks the max/mean shard-imbalance statistic.
func TestImbalance(t *testing.T) {
	if got := obs.Imbalance(nil); got != 0 {
		t.Errorf("Imbalance(nil) = %v, want 0", got)
	}
	even := []obs.ShardStat{{Items: 10}, {Items: 10}}
	if got := obs.Imbalance(even); got != 1 {
		t.Errorf("Imbalance(even) = %v, want 1", got)
	}
	skew := []obs.ShardStat{{Items: 30}, {Items: 10}}
	if got := obs.Imbalance(skew); got != 1.5 {
		t.Errorf("Imbalance(skew) = %v, want 1.5 (30 / mean 20)", got)
	}
}

// TestRunReportString spot-checks the -explain rendering.
func TestRunReportString(t *testing.T) {
	r := &obs.RunReport{
		Kind: "check", WallUS: 1500, States: 100, Transitions: 250, DepthReached: 6,
		CacheHits: 30, CacheMisses: 10, CacheHitRatio: 0.75,
		SortMemoHits: 5, SortMemoMisses: 2, SortMemoEntries: 2,
		Workers: 4, Levels: 6, ShardImbalance: 1.25,
		Shards: []obs.ShardStat{{Shard: 0, Levels: 6, Items: 40, Width: 48, WallUS: 900}},
		Phases: []obs.PhaseStat{{Name: "sched.measure", Calls: 3, WallUS: 1200, P50US: 256, P95US: 512, P99US: 512}},
	}
	out := r.String()
	for _, frag := range []string{
		"run report (check)", "states      100", "depth=6",
		"hit-ratio=0.750", "imbalance(max/mean)=1.250",
		"shard 0", "sched.measure", "p95≤",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("report missing %q:\n%s", frag, out)
		}
	}
}
