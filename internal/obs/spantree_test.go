package obs_test

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestSpanTreeNested reconstructs a simple nested hierarchy from a
// recorded trace and checks parentage, ordering and leaf attribution.
func TestSpanTreeNested(t *testing.T) {
	rec := obs.NewRecorder()
	prev := obs.SetTracer(rec)
	root := obs.Begin("core.implements", "a vs b")
	kid1 := root.Begin("sched.measure.par", "greedy")
	rec.Emit(obs.Event{Kind: obs.KindShard, Name: "greedy", Attr: "L0.S0", N: 5, Parent: kid1.ID()})
	rec.Emit(obs.Event{Kind: obs.KindShard, Name: "greedy", Attr: "L0.S1", N: 7, Parent: kid1.ID()})
	kid1.End()
	kid2 := root.Begin("sched.measure.par", "random")
	kid2.End()
	root.End()
	obs.SetTracer(prev)

	tree := obs.BuildSpanTree(rec.Events())
	if tree.Len() != 3 {
		t.Fatalf("tree has %d spans, want 3", tree.Len())
	}
	if len(tree.Roots) != 1 {
		t.Fatalf("tree has %d roots, want 1", len(tree.Roots))
	}
	r := tree.Roots[0]
	if r.Name != "core.implements" || !r.Ended {
		t.Errorf("root = %q ended=%v, want core.implements ended", r.Name, r.Ended)
	}
	if len(r.Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(r.Children))
	}
	if r.Children[0].Attr != "greedy" || r.Children[1].Attr != "random" {
		t.Errorf("children out of begin order: %q, %q", r.Children[0].Attr, r.Children[1].Attr)
	}
	if r.Children[0].Leaves != 2 {
		t.Errorf("first child has %d leaves, want 2 shard records", r.Children[0].Leaves)
	}
	out := tree.Render()
	for _, frag := range []string{"core.implements", "  sched.measure.par (greedy)", "leaves=2"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
}

// TestSpanTreeAcrossGoroutinesJSONL is the end-to-end correlation check:
// several goroutines emit interleaved span families through one JSONL
// tracer, and after a round trip through the encoded trace the tree must
// reassemble every family intact — children under the right parent no
// matter how the lines interleaved.
func TestSpanTreeAcrossGoroutinesJSONL(t *testing.T) {
	var buf bytes.Buffer
	j := obs.NewJSONL(&buf)
	prev := obs.SetTracer(j)
	const workers, tasks = 4, 3
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			root := obs.Begin("worker", fmt.Sprintf("g%d", g))
			for i := 0; i < tasks; i++ {
				child := root.Begin("task", fmt.Sprintf("g%d.t%d", g, i))
				obs.Active().Emit(obs.Event{Kind: obs.KindSchedStep, Name: "step", Parent: child.ID()})
				child.End()
			}
			root.End()
		}(g)
	}
	wg.Wait()
	obs.SetTracer(prev)
	if err := j.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	events, err := obs.ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	tree := obs.BuildSpanTree(events)
	if tree.Len() != workers*(tasks+1) {
		t.Fatalf("tree has %d spans, want %d", tree.Len(), workers*(tasks+1))
	}
	if len(tree.Roots) != workers {
		t.Fatalf("tree has %d roots, want %d", len(tree.Roots), workers)
	}
	for _, r := range tree.Roots {
		if r.Name != "worker" || !r.Ended {
			t.Errorf("root %q ended=%v, want worker ended", r.Name, r.Ended)
		}
		if len(r.Children) != tasks {
			t.Fatalf("root %s has %d children, want %d", r.Attr, len(r.Children), tasks)
		}
		for _, c := range r.Children {
			if !strings.HasPrefix(c.Attr, r.Attr+".") {
				t.Errorf("child %q filed under root %q", c.Attr, r.Attr)
			}
			if !c.Ended || c.Leaves != 1 {
				t.Errorf("child %q ended=%v leaves=%d, want ended with 1 leaf", c.Attr, c.Ended, c.Leaves)
			}
		}
	}
}

// TestSpanTreeTolerance checks the reconstruction survives ragged traces:
// an orphan child (parent id absent) becomes a root, an end without a
// begin synthesises its node unended-begin style.
func TestSpanTreeTolerance(t *testing.T) {
	tree := obs.BuildSpanTree([]obs.Event{
		{Kind: obs.KindSpanBegin, Name: "orphan", Span: 10, Parent: 99}, // parent 99 never appears
		{Kind: obs.KindSpanEnd, Name: "orphan", Span: 10, Parent: 99, Dur: 5},
		{Kind: obs.KindSpanEnd, Name: "cut", Span: 11, Dur: 7}, // begin lost
		{Kind: obs.KindSpanBegin, Name: "unended", Span: 12},   // end lost
	})
	if tree.Len() != 3 || len(tree.Roots) != 3 {
		t.Fatalf("tree has %d spans / %d roots, want 3/3", tree.Len(), len(tree.Roots))
	}
	if n := tree.Find(10); n == nil || !n.Ended || n.DurUS != 5 {
		t.Errorf("orphan span = %+v, want ended dur=5", n)
	}
	if n := tree.Find(11); n == nil || n.Name != "cut" || !n.Ended {
		t.Errorf("synthesised span = %+v, want cut ended", n)
	}
	if n := tree.Find(12); n == nil || n.Ended {
		t.Errorf("unended span = %+v, want unended", n)
	}
}
