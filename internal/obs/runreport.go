package obs

import (
	"fmt"
	"strings"
)

// ShardStat is the per-shard work account of a parallel kernel, aggregated
// over every level the shard participated in. Items is the number of
// frontier items (or samples) the shard expanded, Width the total span
// width it was handed, WallUS its busy wall time, and BarrierWaitUS the
// time it sat at level barriers while slower shards finished — the direct
// measurement of shard imbalance.
type ShardStat struct {
	Shard         int   `json:"shard"`
	Levels        int64 `json:"levels"`
	Items         int64 `json:"items"`
	Width         int64 `json:"width"`
	WallUS        int64 `json:"wall_us"`
	BarrierWaitUS int64 `json:"barrier_wait_us"`
}

// PhaseStat is one named phase of a run's wall-time breakdown, with
// bucket-resolution quantiles taken from the phase's duration histogram.
type PhaseStat struct {
	Name   string  `json:"name"`
	Calls  int64   `json:"calls"`
	WallUS int64   `json:"wall_us"`
	P50US  float64 `json:"p50_us,omitempty"`
	P95US  float64 `json:"p95_us,omitempty"`
	P99US  float64 `json:"p99_us,omitempty"`
}

// RunReport is the structured account of one verification job: where the
// states, transitions, cache hits and wall time went. It is attached to
// engine job results, printed by dsecheck -explain, appended to dsebench
// -json output and returned in dsed job responses.
//
// Cache and sort-memo figures are deltas of the process counters taken
// around the job; in a single-job CLI process they are exact, under
// concurrent daemon jobs they may include a neighbour's traffic (see
// docs/OBSERVABILITY.md).
type RunReport struct {
	Kind         string `json:"kind,omitempty"`
	WallUS       int64  `json:"wall_us"`
	States       int64  `json:"states"`
	Transitions  int64  `json:"transitions"`
	DepthReached int    `json:"depth_reached"`

	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	CacheEvictions int64   `json:"cache_evictions,omitempty"`
	CacheHitRatio  float64 `json:"cache_hit_ratio"`

	SortMemoHits    int64 `json:"sort_memo_hits"`
	SortMemoMisses  int64 `json:"sort_memo_misses"`
	SortMemoResets  int64 `json:"sort_memo_resets,omitempty"`
	SortMemoEntries int64 `json:"sort_memo_entries"`

	// BudgetStates/BudgetTransitions echo the limits the job ran under
	// (zero = unlimited); States/Transitions are the spend against them.
	BudgetStates      int64 `json:"budget_states,omitempty"`
	BudgetTransitions int64 `json:"budget_transitions,omitempty"`

	Workers int         `json:"workers,omitempty"`
	Levels  int64       `json:"levels,omitempty"`
	Shards  []ShardStat `json:"shards,omitempty"`
	// ShardImbalance is max/mean items per shard (1 = perfectly balanced,
	// 0 = no parallel levels ran).
	ShardImbalance float64 `json:"shard_imbalance,omitempty"`
	// BarrierWaitUS is the summed barrier wait across shards — the wall
	// time lost to imbalance rather than contention.
	BarrierWaitUS int64 `json:"barrier_wait_us,omitempty"`
	// CacheLockWaitUS is the summed striped-cache lock wait (collected
	// only while tracing is enabled; zero otherwise).
	CacheLockWaitUS int64 `json:"cache_lock_wait_us,omitempty"`

	Phases []PhaseStat `json:"phases,omitempty"`
}

// Imbalance computes max/mean items per shard over ss; 0 with no shards.
func Imbalance(ss []ShardStat) float64 {
	if len(ss) == 0 {
		return 0
	}
	var max, sum int64
	for _, s := range ss {
		sum += s.Items
		if s.Items > max {
			max = s.Items
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(ss))
	return float64(max) / mean
}

// String renders the report as aligned human-readable text (the body of
// dsecheck -explain).
func (r *RunReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "run report (%s): wall=%s\n", orDash(r.Kind), usDur(r.WallUS))
	fmt.Fprintf(&b, "  states      %-12d transitions %-12d depth=%d\n", r.States, r.Transitions, r.DepthReached)
	if r.BudgetStates > 0 || r.BudgetTransitions > 0 {
		fmt.Fprintf(&b, "  budget      states=%d transitions=%d\n", r.BudgetStates, r.BudgetTransitions)
	}
	fmt.Fprintf(&b, "  cache       hits=%d misses=%d evictions=%d hit-ratio=%.3f\n",
		r.CacheHits, r.CacheMisses, r.CacheEvictions, r.CacheHitRatio)
	fmt.Fprintf(&b, "  sort memo   hits=%d misses=%d resets=%d entries=%d\n",
		r.SortMemoHits, r.SortMemoMisses, r.SortMemoResets, r.SortMemoEntries)
	if len(r.Shards) > 0 {
		fmt.Fprintf(&b, "  shards      workers=%d levels=%d imbalance(max/mean)=%.3f barrier-wait=%s",
			r.Workers, r.Levels, r.ShardImbalance, usDur(r.BarrierWaitUS))
		if r.CacheLockWaitUS > 0 {
			fmt.Fprintf(&b, " cache-lock-wait=%s", usDur(r.CacheLockWaitUS))
		}
		b.WriteByte('\n')
		for _, s := range r.Shards {
			fmt.Fprintf(&b, "    shard %-3d levels=%-5d items=%-10d width=%-10d wall=%-10s barrier-wait=%s\n",
				s.Shard, s.Levels, s.Items, s.Width, usDur(s.WallUS), usDur(s.BarrierWaitUS))
		}
	}
	if len(r.Phases) > 0 {
		b.WriteString("  phases\n")
		for _, p := range r.Phases {
			fmt.Fprintf(&b, "    %-24s calls=%-8d wall=%-10s p50≤%s p95≤%s p99≤%s\n",
				p.Name, p.Calls, usDur(p.WallUS), usDur(int64(p.P50US)), usDur(int64(p.P95US)), usDur(int64(p.P99US)))
		}
	}
	return b.String()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
