package obs_test

// Integration: drive the instrumented pipeline (psioa.Explore and
// sched.Measure) under a recording tracer and check that events flow and
// the default-registry counters advance — the same plumbing the CLI tools'
// -trace/-metrics flags expose.

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/psioa"
	"repro/internal/sched"
	"repro/internal/testaut"
)

func TestPipelineEmitsEventsAndCounters(t *testing.T) {
	rec := obs.NewRecorder()
	prev := obs.SetTracer(rec)
	defer obs.SetTracer(prev)

	states0 := obs.C("psioa.explore.states").Value()
	steps0 := obs.C("sched.measure.steps").Value()

	coin := testaut.Coin("c", 0.5)
	ex, err := psioa.Explore(coin, 1000)
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	em, err := sched.Measure(coin, &sched.Greedy{A: coin, Bound: 4, LocalOnly: true}, 16)
	if err != nil {
		t.Fatalf("measure: %v", err)
	}

	if got := obs.C("psioa.explore.states").Value() - states0; got != int64(len(ex.States)) {
		t.Errorf("explore.states counter advanced by %d, want %d", got, len(ex.States))
	}
	if got := obs.C("sched.measure.steps").Value() - steps0; got <= 0 {
		t.Errorf("measure.steps counter did not advance (%d)", got)
	}
	if em.Len() == 0 {
		t.Fatal("empty execution measure")
	}

	kinds := make(map[obs.Kind]int)
	for _, e := range rec.Events() {
		kinds[e.Kind]++
	}
	if kinds[obs.KindStateFound] != len(ex.States) {
		t.Errorf("recorded %d state events, want %d", kinds[obs.KindStateFound], len(ex.States))
	}
	for _, k := range []obs.Kind{obs.KindTransition, obs.KindSchedStep, obs.KindSchedHalt, obs.KindSpanBegin, obs.KindSpanEnd} {
		if kinds[k] == 0 {
			t.Errorf("no %s events recorded", k)
		}
	}
}
