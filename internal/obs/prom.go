package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PromContentType is the content type of the Prometheus text exposition
// format version 0.0.4, served by dsed's /v1/metrics?format=prom.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promPrefix namespaces every exported metric so the registry's dotted
// names cannot collide with other exporters on the same Prometheus server.
const promPrefix = "dse_"

// PromName maps a registry name to a legal Prometheus metric name:
// the dse_ namespace prefix plus the dotted path with every character
// outside [a-zA-Z0-9_:] replaced by an underscore, e.g.
// "sched.measure.steps" → "dse_sched_measure_steps". The mapping is the
// stable metric-name registry documented in docs/OBSERVABILITY.md.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(promPrefix) + len(name))
	b.WriteString(promPrefix)
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteProm renders the snapshot in the Prometheus text exposition format
// (version 0.0.4): counters and gauges as single samples, histograms as
// summaries with quantile samples plus _sum and _count. Families are
// emitted in sorted name order so the output is deterministic for a fixed
// snapshot.
func (s Snapshot) WriteProm(w io.Writer) error {
	var names []string
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := PromName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := PromName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := PromName(n)
		h := s.Histograms[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", pn); err != nil {
			return err
		}
		if h.Count > 0 {
			for _, q := range []struct {
				q string
				v float64
			}{{"0.5", h.P50}, {"0.95", h.P95}, {"0.99", h.P99}} {
				if _, err := fmt.Fprintf(w, "%s{quantile=%q} %s\n", pn, q.q, promFloat(q.v)); err != nil {
					return err
				}
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, promFloat(h.Sum), pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promFloat renders a float as Prometheus expects: shortest exact decimal,
// no exponent surprises for the integral values our histograms mostly hold.
func promFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", v), "0"), ".")
}
