package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative to keep the counter monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// SetMax raises the gauge to n if n is larger — a high-water mark.
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of power-of-two histogram buckets; bucket i
// counts observations v with 2^(i-1) ≤ v < 2^i (bucket 0 counts v < 1).
const histBuckets = 40

// Histogram accumulates a distribution of non-negative observations
// (typically microsecond durations or support sizes) in power-of-two
// buckets, with exact count/sum/min/max.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     float64
	min     float64
	max     float64
	buckets [histBuckets]int64
}

// Observe records one observation. Negative values are clamped to zero.
func (h *Histogram) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	i := 0
	if v >= 1 {
		i = bits.Len64(uint64(v))
		if i >= histBuckets {
			i = histBuckets - 1
		}
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[i]++
	h.mu.Unlock()
}

// HistSnapshot is a point-in-time summary of a histogram.
type HistSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	// P50, P95 and P99 are bucket-resolution quantile estimates (upper
	// bucket bounds), adequate for order-of-magnitude profiling.
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// Snapshot returns a point-in-time summary of the histogram.
func (h *Histogram) Snapshot() HistSnapshot { return h.snapshot() }

func (h *Histogram) snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count > 0 {
		s.Mean = h.sum / float64(h.count)
		s.P50 = h.quantileLocked(0.50)
		s.P95 = h.quantileLocked(0.95)
		s.P99 = h.quantileLocked(0.99)
	}
	return s
}

// quantileLocked returns the upper bound of the bucket containing the
// q-quantile. Callers hold h.mu.
func (h *Histogram) quantileLocked(q float64) float64 {
	target := int64(math.Ceil(q * float64(h.count)))
	var seen int64
	for i, n := range h.buckets {
		seen += n
		if seen >= target {
			if i == 0 {
				return 1
			}
			return math.Ldexp(1, i) // 2^i, the bucket's upper bound
		}
	}
	return h.max
}

// Registry is a named collection of counters, gauges and histograms. All
// methods are safe for concurrent use; instruments are created on first
// reference and live for the registry's lifetime.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Time starts a wall-clock timer; the returned stop function records the
// elapsed microseconds into the named histogram:
//
//	defer r.Time("core.implements.us")()
func (r *Registry) Time(name string) func() {
	h := r.Histogram(name)
	start := time.Now()
	return func() { h.Observe(float64(time.Since(start).Microseconds())) }
}

// Reset discards every instrument. Intended for tests and benchmark
// isolation; instruments obtained before Reset keep counting into the
// discarded generation.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = make(map[string]*Counter)
	r.gauges = make(map[string]*Gauge)
	r.hists = make(map[string]*Histogram)
}

// Snapshot is a point-in-time JSON-marshalable view of a registry.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot captures the current values of every instrument. Counters and
// gauges are read atomically per instrument; the snapshot as a whole is
// not a consistent cut, which is fine for profiling.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() []byte {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil { // maps of scalars cannot fail to marshal
		panic("obs: snapshot marshal: " + err.Error())
	}
	return out
}

// String renders the snapshot as a compact sorted text summary, one
// instrument per line.
func (s Snapshot) String() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "counter  %-36s %d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "gauge    %-36s %d\n", n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		fmt.Fprintf(&b, "hist     %-36s n=%d mean=%.3g p50≤%.3g p95≤%.3g p99≤%.3g max=%.3g\n",
			n, h.Count, h.Mean, h.P50, h.P95, h.P99, h.Max)
	}
	return b.String()
}

// Default is the process-wide registry used by the instrumented packages
// and exported by the CLI tools' -metrics flag.
var Default = NewRegistry()

// C returns a counter from the Default registry.
func C(name string) *Counter { return Default.Counter(name) }

// G returns a gauge from the Default registry.
func G(name string) *Gauge { return Default.Gauge(name) }

// H returns a histogram from the Default registry.
func H(name string) *Histogram { return Default.Histogram(name) }

// Time times into the Default registry; see Registry.Time.
func Time(name string) func() { return Default.Time(name) }
