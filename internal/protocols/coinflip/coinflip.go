// Package coinflip implements the classic distributed XOR coin-flipping
// protocol and three ideal functionalities, demonstrating both a positive
// and a calibrated *negative* security result in the framework:
//
//   - against a passive (eavesdropping) adversary, the protocol securely
//     emulates the strong ideal coin (ε = 0): each player's share is
//     uniform, so a simulator can fabricate a consistent transcript from
//     the announced outcome alone;
//   - against a *rushing* adversary that corrupts the last player and
//     chooses its share after seeing the others, the protocol does NOT
//     emulate the strong ideal coin — the outcome is fully biased and the
//     emulation check fails by exactly 1/2;
//   - the same rushing adversary is perfectly simulated against the *weak*
//     ideal coin, whose adversary interface allows the outcome to be set —
//     the standard "XOR coin flipping realises only the biasable coin"
//     statement, here as an executable fact.
//
// The real protocol is a genuine composition: one automaton per player plus
// an aggregator, assembled with the framework's parallel composition.
package coinflip

import (
	"fmt"

	"repro/internal/measure"
	"repro/internal/psioa"
	"repro/internal/structured"
)

// Share returns player i's share announcement of bit b.
func Share(id string, i, b int) psioa.Action {
	return psioa.Action(fmt.Sprintf("share%d_%d_%s", i, b, id))
}

// Result returns the protocol's public outcome announcement.
func Result(id string, b int) psioa.Action {
	return psioa.Action(fmt.Sprintf("result%d_%s", b, id))
}

// Announce returns the ideal functionality's outcome leak to the adversary.
func Announce(id string, b int) psioa.Action {
	return psioa.Action(fmt.Sprintf("announce%d_%s", b, id))
}

// Bias returns the weak ideal functionality's adversary input forcing the
// outcome.
func Bias(id string, b int) psioa.Action {
	return psioa.Action(fmt.Sprintf("bias%d_%s", b, id))
}

// See returns the passive adversary's relay of player i's share.
func See(id string, i, b int) psioa.Action {
	return psioa.Action(fmt.Sprintf("see%d_%d_%s", i, b, id))
}

// EnvActions returns the environment interface (the public outcome).
func EnvActions(id string) psioa.ActionSet {
	return psioa.NewActionSet(Result(id, 0), Result(id, 1))
}

// Player builds player i: it picks a uniform bit internally and announces
// its share.
func Player(id string, i int) *psioa.Table {
	pick := psioa.Action(fmt.Sprintf("pick%d_%s", i, id))
	b := psioa.NewBuilder(fmt.Sprintf("player%d_%s", i, id), "p0")
	b.AddState("p0", psioa.NewSignature(nil, nil, []psioa.Action{pick}))
	d := measure.New[psioa.State]()
	d.Add("bit0", 0.5)
	d.Add("bit1", 0.5)
	b.AddTrans("p0", pick, d)
	for bit := 0; bit < 2; bit++ {
		st := psioa.State(fmt.Sprintf("bit%d", bit))
		b.AddState(st, psioa.NewSignature(nil, []psioa.Action{Share(id, i, bit)}, nil))
		b.AddDet(st, Share(id, i, bit), "sent")
	}
	b.AddState("sent", psioa.EmptySignature())
	return b.MustBuild()
}

// Aggregator builds the referee: it listens for one share from each of the
// n players (in any order) and announces the XOR of the received bits.
func Aggregator(id string, n int) *psioa.Table {
	b := psioa.NewBuilder("agg_"+id, aggSt(0, 0))
	full := (1 << n) - 1
	for mask := 0; mask <= full; mask++ {
		for parity := 0; parity < 2; parity++ {
			st := aggSt(mask, parity)
			if mask == full {
				b.AddState(st, psioa.NewSignature(nil, []psioa.Action{Result(id, parity)}, nil))
				b.AddDet(st, Result(id, parity), "fin")
				continue
			}
			var ins []psioa.Action
			for i := 1; i <= n; i++ {
				if mask&(1<<(i-1)) == 0 {
					ins = append(ins, Share(id, i, 0), Share(id, i, 1))
				}
			}
			b.AddState(st, psioa.NewSignature(ins, nil, nil))
			for i := 1; i <= n; i++ {
				if mask&(1<<(i-1)) != 0 {
					continue
				}
				for bit := 0; bit < 2; bit++ {
					b.AddDet(st, Share(id, i, bit), aggSt(mask|1<<(i-1), parity^bit))
				}
			}
		}
	}
	b.AddState("fin", psioa.EmptySignature())
	return b.MustBuild()
}

func aggSt(mask, parity int) psioa.State {
	return psioa.State(fmt.Sprintf("m%d_p%d", mask, parity))
}

// Real builds the honest n-player protocol: players 1..n composed with the
// aggregator, structured so that only the result is environment-facing
// (shares are adversary-observable).
func Real(id string, n int) *structured.Structured {
	auts := make([]psioa.PSIOA, 0, n+1)
	for i := 1; i <= n; i++ {
		auts = append(auts, Player(id, i))
	}
	auts = append(auts, Aggregator(id, n))
	return structured.NewSet(psioa.MustCompose(auts...), EnvActions(id))
}

// RealCorrupt builds the protocol with player n corrupted: players 1..n-1
// and the aggregator remain; player n's share becomes an adversary *input*
// (the adversary supplies it — and a rushing adversary supplies it after
// seeing the honest shares).
func RealCorrupt(id string, n int) *structured.Structured {
	auts := make([]psioa.PSIOA, 0, n)
	for i := 1; i < n; i++ {
		auts = append(auts, Player(id, i))
	}
	auts = append(auts, Aggregator(id, n))
	return structured.NewSet(psioa.MustCompose(auts...), EnvActions(id))
}

// Ideal builds the strong ideal coin: it tosses internally, leaks the
// outcome to the adversary (announce) and then publishes it (result). The
// adversary has no influence.
func Ideal(id string) *structured.Structured {
	toss := psioa.Action("toss_" + id)
	b := psioa.NewBuilder("idealflip_"+id, "i0")
	b.AddState("i0", psioa.NewSignature(nil, nil, []psioa.Action{toss}))
	d := measure.New[psioa.State]()
	d.Add("t0", 0.5)
	d.Add("t1", 0.5)
	b.AddTrans("i0", toss, d)
	for bit := 0; bit < 2; bit++ {
		tSt := psioa.State(fmt.Sprintf("t%d", bit))
		rSt := psioa.State(fmt.Sprintf("r%d", bit))
		b.AddState(tSt, psioa.NewSignature(nil, []psioa.Action{Announce(id, bit)}, nil))
		b.AddDet(tSt, Announce(id, bit), rSt)
		b.AddState(rSt, psioa.NewSignature(nil, []psioa.Action{Result(id, bit)}, nil))
		b.AddDet(rSt, Result(id, bit), "fin")
	}
	b.AddState("fin", psioa.EmptySignature())
	return structured.NewSet(b.MustBuild(), EnvActions(id))
}

// WeakIdeal builds the biasable ideal coin: before the internal toss the
// adversary may force the outcome (bias inputs). This is the functionality
// XOR coin flipping actually realises against rushing adversaries.
func WeakIdeal(id string) *structured.Structured {
	toss := psioa.Action("toss_" + id)
	biases := []psioa.Action{Bias(id, 0), Bias(id, 1)}
	b := psioa.NewBuilder("weakflip_"+id, "i0")
	b.AddState("i0", psioa.NewSignature(biases, nil, []psioa.Action{toss}))
	d := measure.New[psioa.State]()
	d.Add("t0", 0.5)
	d.Add("t1", 0.5)
	b.AddTrans("i0", toss, d)
	for bit := 0; bit < 2; bit++ {
		b.AddDet("i0", Bias(id, bit), psioa.State(fmt.Sprintf("t%d", bit)))
		tSt := psioa.State(fmt.Sprintf("t%d", bit))
		rSt := psioa.State(fmt.Sprintf("r%d", bit))
		b.AddState(tSt, psioa.NewSignature(nil, []psioa.Action{Announce(id, bit)}, nil))
		b.AddDet(tSt, Announce(id, bit), rSt)
		b.AddState(rSt, psioa.NewSignature(nil, []psioa.Action{Result(id, bit)}, nil))
		b.AddDet(rSt, Result(id, bit), "fin")
	}
	b.AddState("fin", psioa.EmptySignature())
	return structured.NewSet(b.MustBuild(), EnvActions(id))
}

// Relay builds the passive adversary component that relays player i's
// share to the environment (see announcements). The full passive adversary
// for Real(id, n) is the composition of the relays.
func Relay(id string, i int) *psioa.Table {
	ins := []psioa.Action{Share(id, i, 0), Share(id, i, 1)}
	b := psioa.NewBuilder(fmt.Sprintf("relay%d_%s", i, id), "w")
	b.AddState("w", psioa.NewSignature(ins, nil, nil))
	for bit := 0; bit < 2; bit++ {
		saw := psioa.State(fmt.Sprintf("saw%d", bit))
		ann := psioa.State(fmt.Sprintf("ann%d", bit))
		b.AddState(saw, psioa.NewSignature(ins, []psioa.Action{See(id, i, bit)}, nil))
		b.AddDet("w", Share(id, i, bit), saw)
		b.AddDet(saw, See(id, i, bit), ann)
		b.AddState(ann, psioa.NewSignature(ins, nil, nil))
		for _, in := range ins {
			b.AddDet(saw, in, saw)
			b.AddDet(ann, in, ann)
		}
	}
	return b.MustBuild()
}

// PassiveAdv builds the full passive adversary for Real(id, n).
func PassiveAdv(id string, n int) psioa.PSIOA {
	auts := make([]psioa.PSIOA, n)
	for i := 1; i <= n; i++ {
		auts[i-1] = Relay(id, i)
	}
	return psioa.MustCompose(auts...)
}

// PassiveSim builds the simulator for PassiveAdv against Ideal(id) with
// n = 2 players: on the announce leak it fabricates a uniform share for
// player 1 and the XOR-consistent share for player 2, then relays both.
func PassiveSim(id string) *psioa.Table {
	ins := []psioa.Action{Announce(id, 0), Announce(id, 1)}
	fab := psioa.Action("fabshare_" + id)
	b := psioa.NewBuilder("flipsim_"+id, "w")
	b.AddState("w", psioa.NewSignature(ins, nil, nil))
	for outcome := 0; outcome < 2; outcome++ {
		noted := psioa.State(fmt.Sprintf("noted%d", outcome))
		b.AddState(noted, psioa.NewSignature(ins, nil, []psioa.Action{fab}))
		b.AddDet("w", Announce(id, outcome), noted)
		d := measure.New[psioa.State]()
		d.Add(psioa.State(fmt.Sprintf("fab%d_0", outcome)), 0.5)
		d.Add(psioa.State(fmt.Sprintf("fab%d_1", outcome)), 0.5)
		b.AddTrans(noted, fab, d)
		for c := 0; c < 2; c++ {
			// Player 1 share = c, player 2 share = outcome ⊕ c.
			s1 := psioa.State(fmt.Sprintf("fab%d_%d", outcome, c))
			s2 := psioa.State(fmt.Sprintf("half%d_%d", outcome, c))
			done := psioa.State(fmt.Sprintf("done%d_%d", outcome, c))
			b.AddState(s1, psioa.NewSignature(ins, []psioa.Action{See(id, 1, c)}, nil))
			b.AddDet(s1, See(id, 1, c), s2)
			b.AddState(s2, psioa.NewSignature(ins, []psioa.Action{See(id, 2, outcome^c)}, nil))
			b.AddDet(s2, See(id, 2, outcome^c), done)
			b.AddState(done, psioa.NewSignature(ins, nil, nil))
			for _, in := range ins {
				b.AddDet(s1, in, s1)
				b.AddDet(s2, in, s2)
				b.AddDet(done, in, done)
			}
		}
		for _, in := range ins {
			b.AddDet(noted, in, noted)
		}
	}
	return b.MustBuild()
}

// RushingAdv builds the rushing adversary for RealCorrupt(id, 2): it waits
// for the honest player's share and answers with the complementary share,
// forcing outcome 1.
func RushingAdv(id string) *psioa.Table {
	ins := []psioa.Action{Share(id, 1, 0), Share(id, 1, 1)}
	b := psioa.NewBuilder("rusher_"+id, "w")
	b.AddState("w", psioa.NewSignature(ins, nil, nil))
	for bit := 0; bit < 2; bit++ {
		saw := psioa.State(fmt.Sprintf("saw%d", bit))
		sent := psioa.State(fmt.Sprintf("sent%d", bit))
		b.AddState(saw, psioa.NewSignature(ins, []psioa.Action{Share(id, 2, 1^bit)}, nil))
		b.AddDet("w", Share(id, 1, bit), saw)
		b.AddDet(saw, Share(id, 2, 1^bit), sent)
		b.AddState(sent, psioa.NewSignature(ins, nil, nil))
		for _, in := range ins {
			b.AddDet(saw, in, saw)
			b.AddDet(sent, in, sent)
		}
	}
	return b.MustBuild()
}

// RushSim builds the rushing adversary's simulator against WeakIdeal: it
// simply forces the outcome to 1 through the bias interface (and absorbs
// the announce leak).
func RushSim(id string) *psioa.Table {
	ins := []psioa.Action{Announce(id, 0), Announce(id, 1)}
	b := psioa.NewBuilder("rushsim_"+id, "w")
	b.AddState("w", psioa.NewSignature(ins, []psioa.Action{Bias(id, 1), Bias(id, 0)}, nil))
	b.AddDet("w", Bias(id, 1), "forced")
	b.AddDet("w", Bias(id, 0), "forced")
	b.AddState("forced", psioa.NewSignature(ins, nil, nil))
	for _, in := range ins {
		b.AddDet("w", in, "w")
		b.AddDet("forced", in, "forced")
	}
	return b.MustBuild()
}

// NullSim is the do-nothing ideal-side adversary (absorbs the announce
// leak). It is the best a simulator can do against the strong ideal coin
// when the real adversary rushes — and it fails by 1/2.
func NullSim(id string) *psioa.Table {
	ins := []psioa.Action{Announce(id, 0), Announce(id, 1)}
	b := psioa.NewBuilder("nullsim_"+id, "w")
	b.AddState("w", psioa.NewSignature(ins, nil, nil))
	for _, in := range ins {
		b.AddDet("w", in, "w")
	}
	return b.MustBuild()
}

// Env builds the distinguishing environment: it listens to the result and
// to any relay announcements.
func Env(id string) *psioa.Table {
	inputs := []psioa.Action{
		Result(id, 0), Result(id, 1),
		See(id, 1, 0), See(id, 1, 1), See(id, 2, 0), See(id, 2, 1),
	}
	b := psioa.NewBuilder("flipenv_"+id, "e")
	b.AddState("e", psioa.NewSignature(inputs, nil, nil))
	for _, in := range inputs {
		b.AddDet("e", in, "e")
	}
	return b.MustBuild()
}
