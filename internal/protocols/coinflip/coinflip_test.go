package coinflip_test

import (
	"math"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/insight"
	"repro/internal/protocols/coinflip"
	"repro/internal/psioa"
	"repro/internal/sched"
	"repro/internal/structured"
)

func TestAutomataValid(t *testing.T) {
	for _, a := range []psioa.PSIOA{
		coinflip.Player("x", 1), coinflip.Aggregator("x", 2), coinflip.Aggregator("x", 3),
		coinflip.Real("x", 2), coinflip.Real("x", 3), coinflip.RealCorrupt("x", 2),
		coinflip.Ideal("x"), coinflip.WeakIdeal("x"),
		coinflip.PassiveAdv("x", 2), coinflip.PassiveSim("x"),
		coinflip.RushingAdv("x"), coinflip.RushSim("x"), coinflip.NullSim("x"),
		coinflip.Env("x"),
	} {
		if err := psioa.Validate(a, 50000); err != nil {
			t.Errorf("%s: %v", a.ID(), err)
		}
	}
}

func TestHonestOutcomeUniform(t *testing.T) {
	// The XOR of independent fair shares is fair, for 2 and 3 players.
	for _, n := range []int{2, 3} {
		r := coinflip.Real("x", n)
		w := psioa.MustCompose(coinflip.Env("x"), r)
		ss, err := (&sched.PrefixPrioritySchema{Templates: [][]string{
			{"pick", "share", "result"},
		}}).Enumerate(w, 3*n+2)
		if err != nil {
			t.Fatal(err)
		}
		d, err := insight.FDist(w, ss[0], insight.Accept(coinflip.Result("x", 1)), 4*n+4)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d.P("1")-0.5) > 1e-9 {
			t.Errorf("n=%d: P(result=1) = %v, want 0.5", n, d.P("1"))
		}
	}
}

func TestXORCorrectness(t *testing.T) {
	// The aggregator computes the XOR: force shares via a corrupted-world
	// aggregator driven directly by a scripted adversary.
	agg := coinflip.Aggregator("x", 2)
	q := agg.Start()
	q = agg.Trans(q, coinflip.Share("x", 1, 1)).Support()[0]
	q = agg.Trans(q, coinflip.Share("x", 2, 1)).Support()[0]
	sig := agg.Sig(q)
	if !sig.Out.Has(coinflip.Result("x", 0)) {
		t.Errorf("1⊕1 should yield 0; sig = %v", sig)
	}
}

func TestAdversaryInterfaces(t *testing.T) {
	real := coinflip.Real("x", 2)
	iface, err := adversary.InterfaceOf(real, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if len(iface.AI) != 0 {
		t.Errorf("honest protocol AI = %v", iface.AI)
	}
	wantAO := psioa.NewActionSet(
		coinflip.Share("x", 1, 0), coinflip.Share("x", 1, 1),
		coinflip.Share("x", 2, 0), coinflip.Share("x", 2, 1))
	if !iface.AO.Equal(wantAO) {
		t.Errorf("AO = %v", iface.AO)
	}
	corrupt := coinflip.RealCorrupt("x", 2)
	ifc, err := adversary.InterfaceOf(corrupt, 50000)
	if err != nil {
		t.Fatal(err)
	}
	wantAI := psioa.NewActionSet(coinflip.Share("x", 2, 0), coinflip.Share("x", 2, 1))
	if !ifc.AI.Equal(wantAI) {
		t.Errorf("corrupt AI = %v", ifc.AI)
	}
	if err := adversary.IsAdversaryFor(coinflip.RushingAdv("x"), corrupt, 50000); err != nil {
		t.Errorf("rushing adversary rejected: %v", err)
	}
	if err := adversary.IsAdversaryFor(coinflip.PassiveAdv("x", 2), real, 50000); err != nil {
		t.Errorf("passive adversary rejected: %v", err)
	}
	if err := adversary.IsAdversaryFor(coinflip.PassiveSim("x"), coinflip.Ideal("x"), 50000); err != nil {
		t.Errorf("passive simulator rejected: %v", err)
	}
	if err := adversary.IsAdversaryFor(coinflip.RushSim("x"), coinflip.WeakIdeal("x"), 50000); err != nil {
		t.Errorf("rush simulator rejected: %v", err)
	}
}

func passiveOpts(eps float64) core.Options {
	return core.Options{
		Envs: []psioa.PSIOA{coinflip.Env("x")},
		Schema: &sched.PrefixPrioritySchema{Templates: [][]string{
			{"pick", "share", "see", "toss", "announce", "fabshare", "result"},
			{"pick", "share", "see", "toss", "announce", "fabshare"},
		}},
		Insight: insight.Trace(),
		Eps:     eps,
		Q1:      12, Q2: 12,
	}
}

func TestPassiveEmulation(t *testing.T) {
	// Positive: against the passive adversary, XOR coin flipping securely
	// emulates the strong ideal coin with ε = 0.
	rep, err := core.SecureEmulates(coinflip.Real("x", 2), coinflip.Ideal("x"),
		[]core.AdvSim{{Adv: coinflip.PassiveAdv("x", 2), Sim: coinflip.PassiveSim("x")}},
		passiveOpts(0), 50000)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Errorf("passive emulation failed:\n%s", rep)
		for _, r := range rep.PerAdv {
			for _, f := range r.Failures() {
				t.Logf("  %+v", f)
			}
		}
	}
}

func rushingOpts(eps float64) core.Options {
	return core.Options{
		Envs: []psioa.PSIOA{coinflip.Env("x")},
		Schema: &sched.PrefixPrioritySchema{Templates: [][]string{
			{"pick", "share", "bias1", "toss", "announce", "result"},
		}},
		Insight: insight.Trace(),
		Eps:     eps,
		Q1:      10, Q2: 10,
	}
}

func TestRushingBreaksStrongIdeal(t *testing.T) {
	// Negative: the rushing adversary forces outcome 1; no simulator can
	// bias the strong ideal coin, so emulation fails by exactly 1/2.
	rep, err := core.SecureEmulates(coinflip.RealCorrupt("x", 2), coinflip.Ideal("x"),
		[]core.AdvSim{{Adv: coinflip.RushingAdv("x"), Sim: coinflip.NullSim("x")}},
		rushingOpts(0), 50000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Holds {
		t.Fatal("rushing adversary accepted against the strong ideal coin")
	}
	dist := 0.0
	for _, r := range rep.PerAdv {
		if r.MaxDist > dist {
			dist = r.MaxDist
		}
	}
	if math.Abs(dist-0.5) > 1e-9 {
		t.Errorf("bias distance = %v, want exactly 0.5", dist)
	}
}

func TestRushingSimulatedByWeakIdeal(t *testing.T) {
	// Repair: against the weak (biasable) ideal coin, the rushing adversary
	// is perfectly simulated by forcing the same outcome.
	rep, err := core.SecureEmulates(coinflip.RealCorrupt("x", 2), coinflip.WeakIdeal("x"),
		[]core.AdvSim{{Adv: coinflip.RushingAdv("x"), Sim: coinflip.RushSim("x")}},
		rushingOpts(0), 50000)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Errorf("weak-ideal simulation failed:\n%s", rep)
		for _, r := range rep.PerAdv {
			for _, f := range r.Failures() {
				t.Logf("  %+v", f)
			}
		}
	}
}

func TestRushingForcesOutcome(t *testing.T) {
	// Direct check of the attack: with the rushing adversary the result is
	// always 1.
	w := psioa.MustCompose(coinflip.Env("x"), coinflip.RealCorrupt("x", 2), coinflip.RushingAdv("x"))
	ss, err := (&sched.PrefixPrioritySchema{Templates: [][]string{
		{"pick", "share", "result"},
	}}).Enumerate(w, 8)
	if err != nil {
		t.Fatal(err)
	}
	d, err := insight.FDist(w, ss[0], insight.Accept(coinflip.Result("x", 1)), 12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.P("1")-1) > 1e-9 {
		t.Errorf("P(result=1) = %v, want 1 under the rushing attack", d.P("1"))
	}
}

func TestStructuredViews(t *testing.T) {
	real := coinflip.Real("x", 2)
	q := real.Start()
	if !real.EAct(q).Equal(psioa.NewActionSet()) {
		t.Errorf("EAct at start = %v (result not yet offered)", real.EAct(q))
	}
	if err := structured.Validate(real, 50000); err != nil {
		t.Fatal(err)
	}
}
