package ledger_test

import (
	"math"
	"testing"

	"repro/internal/insight"
	"repro/internal/pca"
	"repro/internal/protocols/ledger"
	"repro/internal/psioa"
	"repro/internal/sched"
)

func TestSubchainVariants(t *testing.T) {
	for _, v := range []ledger.Variant{ledger.Direct, ledger.Parity} {
		sc := ledger.Subchain("x", 0, v)
		if err := psioa.Validate(sc, 100); err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		// Run to completion under the greedy local scheduler: the sealed
		// bit is uniform for both variants.
		s := &sched.Greedy{A: sc, Bound: 5, LocalOnly: true}
		d, err := insight.FDist(sc, s, insight.Trace(), 10)
		if err != nil {
			t.Fatal(err)
		}
		if d.Len() != 2 {
			t.Fatalf("%s: %d outcomes, want 2", v, d.Len())
		}
		for _, k := range d.Support() {
			if math.Abs(d.P(k)-0.5) > 1e-9 {
				t.Errorf("%s: P(%s) = %v, want 0.5", v, k, d.P(k))
			}
		}
	}
}

func TestVariantsTraceEquivalent(t *testing.T) {
	// The two subchain variants have identical trace distributions under
	// run-to-completion scheduling (greedy), despite different internal
	// structure.
	dists := map[ledger.Variant]string{}
	for _, v := range []ledger.Variant{ledger.Direct, ledger.Parity} {
		sc := ledger.Subchain("x", 0, v)
		s := &sched.Greedy{A: sc, Bound: 6, LocalOnly: true}
		d, err := insight.FDist(sc, s, insight.Trace(), 10)
		if err != nil {
			t.Fatal(err)
		}
		dists[v] = d.String()
	}
	if dists[ledger.Direct] != dists[ledger.Parity] {
		t.Errorf("trace distributions differ:\n direct=%s\n parity=%s", dists[ledger.Direct], dists[ledger.Parity])
	}
}

func TestHostValid(t *testing.T) {
	x, _ := ledger.Host("x", 2, ledger.Direct)
	if err := psioa.Validate(x, 5000); err != nil {
		t.Fatal(err)
	}
	if err := pca.ValidatePCA(x, 5000); err != nil {
		t.Fatal(err)
	}
}

func TestHostLifecycle(t *testing.T) {
	x, _ := ledger.Host("x", 2, ledger.Direct)
	// Drive each subchain to completion before opening the next: after
	// sealing, the subchain is destroyed.
	s := &sched.Priority{A: x, Bound: 8, LocalOnly: true, Order: []psioa.Action{
		"sample_0_x", "sample_1_x",
		ledger.Sealed("x", 0, 0), ledger.Sealed("x", 0, 1),
		ledger.Sealed("x", 1, 0), ledger.Sealed("x", 1, 1),
		ledger.Open("x"),
	}}
	em, err := sched.Measure(x, s, 20)
	if err != nil {
		t.Fatal(err)
	}
	sawDestruction := false
	em.ForEach(func(f *psioa.Frag, p float64) {
		for i := 0; i <= f.Len(); i++ {
			cfg := x.Config(f.StateAt(i))
			if i > 0 && !cfg.Has(ledger.SubchainID("x", 0)) && cfg.Len() == 1 {
				// Subchain 0 was created and has vanished again.
				for j := 0; j < i; j++ {
					if x.Config(f.StateAt(j)).Has(ledger.SubchainID("x", 0)) {
						sawDestruction = true
					}
				}
			}
		}
	})
	if !sawDestruction {
		t.Error("no subchain destruction observed")
	}
}

func TestHostVariantsIndistinguishableUnderObliviousScheduling(t *testing.T) {
	// The §4.4 monotonicity scenario: X_direct and X_parity create
	// trace-equivalent subchains; under run-to-completion (creation-
	// oblivious) scheduling their sealed-bit distributions coincide.
	xd, _ := ledger.Host("x", 1, ledger.Direct)
	xp, _ := ledger.Host("x", 1, ledger.Parity)
	order := []psioa.Action{
		"sample_0_x", "sample_0_x2",
		ledger.Sealed("x", 0, 0), ledger.Sealed("x", 0, 1),
		ledger.Open("x"),
	}
	sd := &sched.Priority{A: xd, Bound: 10, LocalOnly: true, Order: order}
	sp := &sched.Priority{A: xp, Bound: 10, LocalOnly: true, Order: order}
	dd, err := insight.FDist(xd, sd, insight.Trace(), 20)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := insight.FDist(xp, sp, insight.Trace(), 20)
	if err != nil {
		t.Fatal(err)
	}
	if dist := insight.Distance(dd, dp); dist > 1e-9 {
		t.Errorf("hosts distinguishable: %v\n direct=%v\n parity=%v", dist, dd, dp)
	}
}

func TestHostSchedulerCreationObliviousness(t *testing.T) {
	x, _ := ledger.Host("x", 2, ledger.Direct)
	view := ledger.MaskView(x, "x")
	s := &sched.Greedy{A: x, Bound: 4, LocalOnly: true}
	// Greedy is *not* creation-oblivious in general (it reads the full
	// signature, which depends on subchain states)...
	err := sched.FactorsThrough(x, s, view, 20)
	// ...but an oblivious sequence is.
	seq := &sched.Sequence{A: x, Acts: []psioa.Action{ledger.Open("x"), "sample_0_x"}, LocalOnly: true}
	if err2 := sched.FactorsThrough(x, seq, view, 20); err2 != nil {
		t.Errorf("oblivious sequence not creation-oblivious: %v", err2)
	}
	_ = err // greedy may or may not factor on this small instance
}

func TestSealedActionNames(t *testing.T) {
	if ledger.Sealed("x", 1, 0) != "sealed0_1_x" {
		t.Errorf("Sealed = %q", ledger.Sealed("x", 1, 0))
	}
	if ledger.SubchainID("x", 2) != "sub_x_2" {
		t.Errorf("SubchainID = %q", ledger.SubchainID("x", 2))
	}
}

func TestUnknownVariantPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ledger.Subchain("x", 0, ledger.Variant("bogus"))
}
