// Package ledger implements a dynamic subchain ledger as a probabilistic
// configuration automaton — the workload for the dynamic-creation
// experiments (E2, E9). A host controller opens subchains at run time
// (automaton creation, Def 2.14), each subchain seals one block carrying a
// random beacon bit and is destroyed when done (empty-signature reduction,
// Def 2.12).
//
// Two subchain variants with identical external behaviour are provided —
// Direct (one internal sampling step) and Parity (the beacon is the parity
// of two fair bits) — so Host(id, Direct) and Host(id, Parity) form the
// X_A / X_B pair of the monotonicity-w.r.t.-creation discussion of §4.4:
// the subchains are trace-equivalent, and under creation-oblivious
// schedulers the hosts are indistinguishable too.
package ledger

import (
	"fmt"

	"repro/internal/measure"
	"repro/internal/pca"
	"repro/internal/psioa"
)

// Variant selects the subchain implementation.
type Variant string

const (
	// Direct samples the beacon bit in one internal step.
	Direct Variant = "direct"
	// Parity samples two fair bits and seals their parity (two internal
	// steps, identical external distribution).
	Parity Variant = "parity"
)

// Open returns the host's subchain-opening action.
func Open(id string) psioa.Action { return psioa.Action("open_" + id) }

// Sealed returns the announcement that a subchain sealed a block with
// beacon bit b.
func Sealed(id string, n int, b int) psioa.Action {
	return psioa.Action(fmt.Sprintf("sealed%d_%d_%s", b, n, id))
}

// SubchainID returns the identifier of the n-th subchain of host id.
func SubchainID(id string, n int) string { return fmt.Sprintf("sub_%s_%d", id, n) }

// Subchain builds the n-th subchain automaton of the given variant. Its
// lifecycle: sample (internally), announce sealed<bit>, die (empty
// signature → removed by reduction).
func Subchain(id string, n int, v Variant) *psioa.Table {
	sample := psioa.Action(fmt.Sprintf("sample_%d_%s", n, id))
	b := psioa.NewBuilder(SubchainID(id, n), "fresh")
	switch v {
	case Direct:
		b.AddState("fresh", psioa.NewSignature(nil, nil, []psioa.Action{sample}))
		d := measure.New[psioa.State]()
		d.Add("bit0", 0.5)
		d.Add("bit1", 0.5)
		b.AddTrans("fresh", sample, d)
	case Parity:
		b.AddState("fresh", psioa.NewSignature(nil, nil, []psioa.Action{sample}))
		d := measure.New[psioa.State]()
		d.Add("half0", 0.5)
		d.Add("half1", 0.5)
		b.AddTrans("fresh", sample, d)
		for _, first := range []int{0, 1} {
			st := psioa.State(fmt.Sprintf("half%d", first))
			b.AddState(st, psioa.NewSignature(nil, nil, []psioa.Action{sample + "2"}))
			d2 := measure.New[psioa.State]()
			// Parity of two fair bits: second flip decides relative to the
			// first.
			d2.Add(psioa.State(fmt.Sprintf("bit%d", first)), 0.5)
			d2.Add(psioa.State(fmt.Sprintf("bit%d", 1-first)), 0.5)
			b.AddTrans(st, sample+"2", d2)
		}
	default:
		panic(fmt.Sprintf("ledger: unknown variant %q", v))
	}
	for _, bit := range []int{0, 1} {
		st := psioa.State(fmt.Sprintf("bit%d", bit))
		b.AddState(st, psioa.NewSignature(nil, []psioa.Action{Sealed(id, n, bit)}, nil))
		b.AddDet(st, Sealed(id, n, bit), "dead")
	}
	b.AddState("dead", psioa.EmptySignature())
	return b.MustBuild()
}

// controller builds the host's controller automaton: it can open up to n
// subchains, one at a time.
func controller(id string, n int) *psioa.Table {
	open := Open(id)
	b := psioa.NewBuilder("host_"+id, "h0")
	for i := 0; i < n; i++ {
		b.AddState(psioa.State(fmt.Sprintf("h%d", i)),
			psioa.NewSignature(nil, []psioa.Action{open}, nil))
		b.AddDet(psioa.State(fmt.Sprintf("h%d", i)), open, psioa.State(fmt.Sprintf("h%d", i+1)))
	}
	idle := psioa.Action("idle_" + id)
	b.AddState(psioa.State(fmt.Sprintf("h%d", n)),
		psioa.NewSignature(nil, []psioa.Action{idle}, nil))
	b.AddDet(psioa.State(fmt.Sprintf("h%d", n)), idle, psioa.State(fmt.Sprintf("h%d", n)))
	return b.MustBuild()
}

// Host builds the ledger PCA: a controller that opens up to maxChains
// subchains of the given variant. Each open action creates the next
// subchain (in its start state); subchains are destroyed on sealing.
func Host(id string, maxChains int, v Variant) (*pca.ConfigAutomaton, pca.MapRegistry) {
	reg := pca.MapRegistry{}
	ctrl := controller(id, maxChains)
	reg.Register(ctrl)
	for i := 0; i < maxChains; i++ {
		reg.Register(Subchain(id, i, v))
	}
	created := func(c *pca.Config, a psioa.Action) []string {
		if a != Open(id) {
			return nil
		}
		st, ok := c.StateOf(ctrl.ID())
		if !ok {
			return nil
		}
		var k int
		fmt.Sscanf(string(st), "h%d", &k)
		return []string{SubchainID(id, k)}
	}
	init := pca.NewConfig(map[string]psioa.State{ctrl.ID(): "h0"})
	return pca.MustNew("ledger_"+id+"_"+string(v), reg, init, pca.WithCreated(created)), reg
}

// MaskView returns the creation-oblivious view for a ledger host: the
// controller is the only base automaton; subchain internals are masked.
func MaskView(x pca.PCA, id string) func(*psioa.Frag) string {
	return pca.CreationMaskView(x, []string{"host_" + id})
}
