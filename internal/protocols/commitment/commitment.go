// Package commitment implements a perfectly-hiding bit commitment protocol
// and its ideal functionality — the second worked real/ideal pair of the
// repository, chosen because its simulator is *stateful*: unlike the
// secure-channel eavesdropper simulator (which fabricates an independent
// uniform observation), the commitment simulator must keep its fabricated
// commit-phase observation consistent with the bit revealed at open time.
// A subtly wrong simulator (fabricating an independent pad at open) fails
// the emulation check by exactly 1/2 — a calibrated negative control.
//
// Real protocol: on commit_b, sample a uniform pad p and publish
// c = b ⊕ p (adversary tap observation tapc). On open, publish the pad
// (adversary observation tapp) and announce reveal_b. The commitment is
// perfectly hiding (c is uniform regardless of b) and the transcript (c, p)
// satisfies b = c ⊕ p.
//
// Ideal functionality: on commit_b, the adversary learns only that a
// commitment happened (committed); on open, the adversary learns the bit
// (opened_b — the standard commitment functionality reveals the bit to the
// adversary at open) and the functionality announces reveal_b.
package commitment

import (
	"fmt"

	"repro/internal/measure"
	"repro/internal/psioa"
	"repro/internal/structured"
)

func act(name, id string) psioa.Action { return psioa.Action(name + "_" + id) }

// Commit returns the environment input committing to bit b.
func Commit(id string, b int) psioa.Action { return act(fmt.Sprintf("commit%d", b), id) }

// Open returns the environment input starting the open phase.
func Open(id string) psioa.Action { return act("open", id) }

// Reveal returns the environment output announcing the opened bit.
func Reveal(id string, b int) psioa.Action { return act(fmt.Sprintf("reveal%d", b), id) }

// TapC returns the adversary observation of the commit-phase ciphertext.
func TapC(id string, c int) psioa.Action { return act(fmt.Sprintf("tapc%d", c), id) }

// TapP returns the adversary observation of the opened pad.
func TapP(id string, p int) psioa.Action { return act(fmt.Sprintf("tapp%d", p), id) }

// Committed returns the ideal functionality's commit-phase leak (existence
// only).
func Committed(id string) psioa.Action { return act("committed", id) }

// Opened returns the ideal functionality's open-phase leak (the bit).
func Opened(id string, b int) psioa.Action { return act(fmt.Sprintf("opened%d", b), id) }

// EnvActions returns the shared environment interface.
func EnvActions(id string) psioa.ActionSet {
	return psioa.NewActionSet(
		Commit(id, 0), Commit(id, 1), Open(id), Reveal(id, 0), Reveal(id, 1))
}

// Real returns the perfectly-hiding commitment protocol.
func Real(id string) *structured.Structured {
	blind := act("blind", id)
	commits := []psioa.Action{Commit(id, 0), Commit(id, 1)}
	b := psioa.NewBuilder("realcom_"+id, "init")
	b.AddState("init", psioa.NewSignature(commits, nil, nil))
	for bit := 0; bit < 2; bit++ {
		have := psioa.State(fmt.Sprintf("have%d", bit))
		b.AddState(have, psioa.NewSignature(nil, nil, []psioa.Action{blind}))
		b.AddDet("init", Commit(id, bit), have)
		// Uniform pad p; ciphertext c = bit ⊕ p.
		d := measure.New[psioa.State]()
		d.Add(comSt(bit, 0), 0.5) // p = bit (c = 0)... see comSt: state carries (bit, c)
		d.Add(comSt(bit, 1), 0.5)
		b.AddTrans(have, blind, d)
	}
	for bit := 0; bit < 2; bit++ {
		for c := 0; c < 2; c++ {
			st := comSt(bit, c)
			committed := psioa.State(fmt.Sprintf("committed%d_%d", bit, c))
			b.AddState(st, psioa.NewSignature(nil, []psioa.Action{TapC(id, c)}, nil))
			b.AddDet(st, TapC(id, c), committed)
			// Wait for the open instruction.
			b.AddState(committed, psioa.NewSignature([]psioa.Action{Open(id)}, nil, nil))
			opening := psioa.State(fmt.Sprintf("opening%d_%d", bit, c))
			b.AddDet(committed, Open(id), opening)
			// Publish the pad p = bit ⊕ c, then reveal.
			p := bit ^ c
			b.AddState(opening, psioa.NewSignature(nil, []psioa.Action{TapP(id, p)}, nil))
			revealSt := psioa.State(fmt.Sprintf("reveal%d_%d", bit, c))
			b.AddDet(opening, TapP(id, p), revealSt)
			b.AddState(revealSt, psioa.NewSignature(nil, []psioa.Action{Reveal(id, bit)}, nil))
			b.AddDet(revealSt, Reveal(id, bit), "done")
		}
	}
	b.AddState("done", psioa.NewSignature(commits, nil, nil))
	for _, cm := range commits {
		b.AddDet("done", cm, "done")
	}
	return structured.NewSet(b.MustBuild(), EnvActions(id))
}

func comSt(bit, c int) psioa.State { return psioa.State(fmt.Sprintf("com%d_c%d", bit, c)) }

// Ideal returns the ideal commitment functionality.
func Ideal(id string) *structured.Structured {
	commits := []psioa.Action{Commit(id, 0), Commit(id, 1)}
	b := psioa.NewBuilder("idealcom_"+id, "init")
	b.AddState("init", psioa.NewSignature(commits, nil, nil))
	for bit := 0; bit < 2; bit++ {
		have := psioa.State(fmt.Sprintf("have%d", bit))
		committed := psioa.State(fmt.Sprintf("committed%d", bit))
		opening := psioa.State(fmt.Sprintf("opening%d", bit))
		revealSt := psioa.State(fmt.Sprintf("reveal%d", bit))
		b.AddState(have, psioa.NewSignature(nil, []psioa.Action{Committed(id)}, nil))
		b.AddDet("init", Commit(id, bit), have)
		b.AddDet(have, Committed(id), committed)
		b.AddState(committed, psioa.NewSignature([]psioa.Action{Open(id)}, nil, nil))
		b.AddDet(committed, Open(id), opening)
		b.AddState(opening, psioa.NewSignature(nil, []psioa.Action{Opened(id, bit)}, nil))
		b.AddDet(opening, Opened(id, bit), revealSt)
		b.AddState(revealSt, psioa.NewSignature(nil, []psioa.Action{Reveal(id, bit)}, nil))
		b.AddDet(revealSt, Reveal(id, bit), "done")
	}
	b.AddState("done", psioa.NewSignature(commits, nil, nil))
	for _, cm := range commits {
		b.AddDet("done", cm, "done")
	}
	return structured.NewSet(b.MustBuild(), EnvActions(id))
}

// Observer is the passive adversary for Real: it relays the commit-phase
// and open-phase observations to the environment via see-c / see-p
// announcements.
func Observer(id string) *psioa.Table {
	taps := []psioa.Action{TapC(id, 0), TapC(id, 1), TapP(id, 0), TapP(id, 1)}
	b := psioa.NewBuilder("observer_"+id, "w0")
	// addInputs declares the state with taps as inputs plus the given
	// outputs, wiring the progress map and self-looping every other tap.
	addInputs := func(q psioa.State, outs []psioa.Action, progress map[psioa.Action]psioa.State) {
		b.AddState(q, psioa.NewSignature(taps, outs, nil))
		for _, tp := range taps {
			if to, ok := progress[tp]; ok {
				b.AddDet(q, tp, to)
			} else {
				b.AddDet(q, tp, q)
			}
		}
	}
	addInputs("w0", nil, map[psioa.Action]psioa.State{
		TapC(id, 0): "sawc0",
		TapC(id, 1): "sawc1",
	})
	for c := 0; c < 2; c++ {
		sawC := psioa.State(fmt.Sprintf("sawc%d", c))
		annC := psioa.State(fmt.Sprintf("annc%d", c))
		addInputs(sawC, []psioa.Action{SeeC(id, c)}, nil)
		b.AddDet(sawC, SeeC(id, c), annC)
		addInputs(annC, nil, map[psioa.Action]psioa.State{
			TapP(id, 0): psioa.State(fmt.Sprintf("sawp%d_0", c)),
			TapP(id, 1): psioa.State(fmt.Sprintf("sawp%d_1", c)),
		})
		for p := 0; p < 2; p++ {
			sawP := psioa.State(fmt.Sprintf("sawp%d_%d", c, p))
			annP := psioa.State(fmt.Sprintf("annp%d_%d", c, p))
			addInputs(sawP, []psioa.Action{SeeP(id, p)}, nil)
			b.AddDet(sawP, SeeP(id, p), annP)
			addInputs(annP, nil, nil)
		}
	}
	return b.MustBuild()
}

// SeeC returns the observer's commit-phase announcement.
func SeeC(id string, c int) psioa.Action { return act(fmt.Sprintf("seec%d", c), id) }

// SeeP returns the observer's open-phase announcement.
func SeeP(id string, p int) psioa.Action { return act(fmt.Sprintf("seep%d", p), id) }

// Sim is the correct simulator for Observer against Ideal: at committed it
// fabricates a uniform ciphertext observation and *remembers it*; at
// opened_b it computes the unique consistent pad p = c ⊕ b. The announced
// transcript (c, p) has exactly the real distribution.
func Sim(id string) *psioa.Table {
	ins := []psioa.Action{Committed(id), Opened(id, 0), Opened(id, 1)}
	fab := act("fabc", id)
	b := psioa.NewBuilder("comsim_"+id, "w0")
	b.AddState("w0", psioa.NewSignature(ins, nil, nil))
	b.AddState("noted", psioa.NewSignature(ins, nil, []psioa.Action{fab}))
	b.AddDet("w0", Committed(id), "noted")
	d := measure.New[psioa.State]()
	d.Add("fabc0", 0.5)
	d.Add("fabc1", 0.5)
	b.AddTrans("noted", fab, d)
	for c := 0; c < 2; c++ {
		fabSt := psioa.State(fmt.Sprintf("fabc%d", c))
		annC := psioa.State(fmt.Sprintf("annc%d", c))
		b.AddState(fabSt, psioa.NewSignature(ins, []psioa.Action{SeeC(id, c)}, nil))
		b.AddDet(fabSt, SeeC(id, c), annC)
		b.AddState(annC, psioa.NewSignature(ins, nil, nil))
		for bit := 0; bit < 2; bit++ {
			// Consistency: p = c ⊕ bit.
			p := c ^ bit
			sawOpen := psioa.State(fmt.Sprintf("open%d_%d", c, bit))
			annP := psioa.State(fmt.Sprintf("annp%d_%d", c, bit))
			b.AddState(sawOpen, psioa.NewSignature(ins, []psioa.Action{SeeP(id, p)}, nil))
			b.AddDet(annC, Opened(id, bit), sawOpen)
			b.AddDet(sawOpen, SeeP(id, p), annP)
			b.AddState(annP, psioa.NewSignature(ins, nil, nil))
			for _, in := range ins {
				b.AddDet(annP, in, annP)
				b.AddDet(sawOpen, in, sawOpen)
			}
		}
		for _, in := range ins {
			b.AddDet(fabSt, in, fabSt)
		}
		b.AddDet(annC, Committed(id), annC)
	}
	// w0 already progresses on Committed; the open notifications idle.
	b.AddDet("w0", Opened(id, 0), "w0")
	b.AddDet("w0", Opened(id, 1), "w0")
	b.AddDet("noted", Committed(id), "noted")
	b.AddDet("noted", Opened(id, 0), "noted")
	b.AddDet("noted", Opened(id, 1), "noted")
	return b.MustBuild()
}

// ForgetfulSim is the calibrated *wrong* simulator: it fabricates an
// independent uniform pad at open instead of the consistent one, so its
// transcript satisfies b = c ⊕ p only half the time — the emulation check
// fails with distance exactly 1/2.
func ForgetfulSim(id string) *psioa.Table {
	ins := []psioa.Action{Committed(id), Opened(id, 0), Opened(id, 1)}
	fab := act("fabc", id)
	fabp := act("fabp", id)
	b := psioa.NewBuilder("badsim_"+id, "w0")
	b.AddState("w0", psioa.NewSignature(ins, nil, nil))
	b.AddState("noted", psioa.NewSignature(ins, nil, []psioa.Action{fab}))
	b.AddDet("w0", Committed(id), "noted")
	d := measure.New[psioa.State]()
	d.Add("fabc0", 0.5)
	d.Add("fabc1", 0.5)
	b.AddTrans("noted", fab, d)
	for c := 0; c < 2; c++ {
		fabSt := psioa.State(fmt.Sprintf("fabc%d", c))
		annC := psioa.State(fmt.Sprintf("annc%d", c))
		b.AddState(fabSt, psioa.NewSignature(ins, []psioa.Action{SeeC(id, c)}, nil))
		b.AddDet(fabSt, SeeC(id, c), annC)
		b.AddState(annC, psioa.NewSignature(ins, nil, nil))
		for bit := 0; bit < 2; bit++ {
			sawOpen := psioa.State(fmt.Sprintf("open%d_%d", c, bit))
			b.AddState(sawOpen, psioa.NewSignature(ins, nil, []psioa.Action{fabp}))
			b.AddDet(annC, Opened(id, bit), sawOpen)
			// Independent pad: ignores consistency.
			dp := measure.New[psioa.State]()
			dp.Add(psioa.State(fmt.Sprintf("padded%d_%d_0", c, bit)), 0.5)
			dp.Add(psioa.State(fmt.Sprintf("padded%d_%d_1", c, bit)), 0.5)
			b.AddTrans(sawOpen, fabp, dp)
			for p := 0; p < 2; p++ {
				padded := psioa.State(fmt.Sprintf("padded%d_%d_%d", c, bit, p))
				annP := psioa.State(fmt.Sprintf("annp%d_%d_%d", c, bit, p))
				b.AddState(padded, psioa.NewSignature(ins, []psioa.Action{SeeP(id, p)}, nil))
				b.AddDet(padded, SeeP(id, p), annP)
				b.AddState(annP, psioa.NewSignature(ins, nil, nil))
				for _, in := range ins {
					b.AddDet(annP, in, annP)
					b.AddDet(padded, in, padded)
				}
			}
			for _, in := range ins {
				b.AddDet(sawOpen, in, sawOpen)
			}
		}
		for _, in := range ins {
			b.AddDet(fabSt, in, fabSt)
		}
		b.AddDet(annC, Committed(id), annC)
	}
	b.AddDet("w0", Opened(id, 0), "w0")
	b.AddDet("w0", Opened(id, 1), "w0")
	for _, in := range ins {
		b.AddDet("noted", in, "noted")
	}
	return b.MustBuild()
}

// Env returns the distinguishing environment: it commits to bit b, opens,
// and listens to reveals and to the observer's announcements. Crucially it
// can compare seec and seep: in the real world seec ⊕ seep = b always.
func Env(id string, b int) *psioa.Table {
	inputs := []psioa.Action{
		Reveal(id, 0), Reveal(id, 1),
		SeeC(id, 0), SeeC(id, 1), SeeP(id, 0), SeeP(id, 1),
	}
	bld := psioa.NewBuilder(fmt.Sprintf("comenv_%s_b%d", id, b), "e0")
	bld.AddState("e0", psioa.NewSignature(inputs, []psioa.Action{Commit(id, b)}, nil))
	bld.AddState("committed", psioa.NewSignature(inputs, []psioa.Action{Open(id)}, nil))
	bld.AddDet("e0", Commit(id, b), "committed")
	bld.AddState("opened", psioa.NewSignature(inputs, nil, nil))
	bld.AddDet("committed", Open(id), "opened")
	for _, in := range inputs {
		bld.AddDet("e0", in, "e0")
		bld.AddDet("committed", in, "committed")
		bld.AddDet("opened", in, "opened")
	}
	return bld.MustBuild()
}
