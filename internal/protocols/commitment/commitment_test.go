package commitment_test

import (
	"math"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/insight"
	"repro/internal/protocols/commitment"
	"repro/internal/psioa"
	"repro/internal/sched"
	"repro/internal/structured"
)

func TestAutomataValid(t *testing.T) {
	for _, a := range []psioa.PSIOA{
		commitment.Real("x"), commitment.Ideal("x"),
		commitment.Observer("x"), commitment.Sim("x"), commitment.ForgetfulSim("x"),
		commitment.Env("x", 0), commitment.Env("x", 1),
	} {
		if err := psioa.Validate(a, 5000); err != nil {
			t.Errorf("%s: %v", a.ID(), err)
		}
	}
}

func TestAdversaryInterfaces(t *testing.T) {
	real := commitment.Real("x")
	iface, err := adversary.InterfaceOf(real, 5000)
	if err != nil {
		t.Fatal(err)
	}
	want := psioa.NewActionSet(
		commitment.TapC("x", 0), commitment.TapC("x", 1),
		commitment.TapP("x", 0), commitment.TapP("x", 1))
	if !iface.AO.Equal(want) {
		t.Errorf("real AO = %v", iface.AO)
	}
	if len(iface.AI) != 0 {
		t.Errorf("real AI = %v (passive protocol)", iface.AI)
	}
	if err := adversary.IsAdversaryFor(commitment.Observer("x"), real, 50000); err != nil {
		t.Errorf("observer rejected: %v", err)
	}
	if err := adversary.IsAdversaryFor(commitment.Sim("x"), commitment.Ideal("x"), 50000); err != nil {
		t.Errorf("simulator rejected: %v", err)
	}
}

func TestPerfectHiding(t *testing.T) {
	// Before open, the commit-phase observation is uniform regardless of b.
	for b := 0; b < 2; b++ {
		w := psioa.MustCompose(commitment.Env("x", b), commitment.Real("x"))
		s := &sched.PrefixPrioritySchema{Templates: [][]string{{"commit", "blind", "tapc"}}}
		ss, err := s.Enumerate(w, 3)
		if err != nil {
			t.Fatal(err)
		}
		d, err := insight.FDist(w, ss[0], insight.Accept(commitment.TapC("x", 0)), 8)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d.P("1")-0.5) > 1e-9 {
			t.Errorf("b=%d: P(c=0) = %v, want 0.5", b, d.P("1"))
		}
	}
}

func TestTranscriptConsistency(t *testing.T) {
	// In the real world, the opened pad always satisfies b = c ⊕ p.
	for b := 0; b < 2; b++ {
		w := psioa.MustCompose(commitment.Env("x", b), commitment.Real("x"), commitment.Observer("x"))
		schema := &sched.PrefixPrioritySchema{Templates: [][]string{
			{"commit", "blind", "tapc", "seec", "open", "tapp", "seep", "reveal"},
		}}
		ss, err := schema.Enumerate(w, 10)
		if err != nil {
			t.Fatal(err)
		}
		em, err := sched.Measure(w, ss[0], 12)
		if err != nil {
			t.Fatal(err)
		}
		em.ForEach(func(f *psioa.Frag, p float64) {
			var c, pad = -1, -1
			for _, a := range f.Actions() {
				switch a {
				case commitment.SeeC("x", 0):
					c = 0
				case commitment.SeeC("x", 1):
					c = 1
				case commitment.SeeP("x", 0):
					pad = 0
				case commitment.SeeP("x", 1):
					pad = 1
				}
			}
			if c >= 0 && pad >= 0 && c^pad != b {
				t.Errorf("b=%d: inconsistent transcript c=%d p=%d in %v", b, c, pad, f)
			}
		})
	}
}

func comOpts(eps float64) core.Options {
	return core.Options{
		Envs: []psioa.PSIOA{commitment.Env("x", 0), commitment.Env("x", 1)},
		// "open_x" is used as an exact name: the bare prefix "open" would
		// also rank the ideal side's opened0/opened1 leaks, making the
		// strategies asymmetric between the two worlds.
		Schema: &sched.PrefixPrioritySchema{Templates: [][]string{
			{"commit", "blind", "tapc", "committed", "fabc", "seec", "open_x", "tapp", "opened", "fabp", "seep", "reveal"},
			{"commit", "blind", "tapc", "committed", "fabc", "seec", "open_x"},
			{"commit", "blind", "tapc", "committed", "fabc", "seec"},
		}},
		Insight: insight.Trace(),
		Eps:     eps,
		Q1:      12, Q2: 12,
	}
}

func TestCommitmentEmulation(t *testing.T) {
	rep, err := core.SecureEmulates(commitment.Real("x"), commitment.Ideal("x"),
		[]core.AdvSim{{Adv: commitment.Observer("x"), Sim: commitment.Sim("x")}},
		comOpts(0), 50000)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Errorf("commitment emulation failed:\n%s", rep)
		for _, r := range rep.PerAdv {
			for _, f := range r.Failures() {
				t.Logf("  %+v", f)
			}
		}
	}
}

func TestForgetfulSimulatorFails(t *testing.T) {
	// The calibrated negative control: the forgetful simulator's pad is
	// independent of the revealed bit, so the transcript consistency check
	// b = c ⊕ p fails half the time → distance exactly 1/2 under the full
	// run-to-completion strategy.
	rep, err := core.SecureEmulates(commitment.Real("x"), commitment.Ideal("x"),
		[]core.AdvSim{{Adv: commitment.Observer("x"), Sim: commitment.ForgetfulSim("x")}},
		comOpts(0), 50000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Holds {
		t.Fatal("forgetful simulator accepted at ε=0")
	}
	dist := 0.0
	for _, r := range rep.PerAdv {
		if r.MaxDist > dist {
			dist = r.MaxDist
		}
	}
	if math.Abs(dist-0.5) > 1e-9 {
		t.Errorf("forgetful distance = %v, want exactly 0.5", dist)
	}
	// And it is accepted at ε = 1/2.
	rep, err = core.SecureEmulates(commitment.Real("x"), commitment.Ideal("x"),
		[]core.AdvSim{{Adv: commitment.Observer("x"), Sim: commitment.ForgetfulSim("x")}},
		comOpts(0.5), 50000)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Error("forgetful simulator rejected at ε=0.5")
	}
}

func TestStructuredCompatibilityWithEnv(t *testing.T) {
	// The environment only touches the environment interface.
	real := commitment.Real("x")
	env := structured.NewSet(commitment.Env("x", 1), psioa.NewActionSet(
		commitment.Commit("x", 1), commitment.Open("x"),
		commitment.Reveal("x", 0), commitment.Reveal("x", 1),
		commitment.SeeC("x", 0), commitment.SeeC("x", 1),
		commitment.SeeP("x", 0), commitment.SeeP("x", 1)))
	if err := structured.CheckCompatible(50000, real, env); err != nil {
		t.Errorf("env not structured-compatible: %v", err)
	}
}
