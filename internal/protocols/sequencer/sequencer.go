// Package sequencer implements the ordering/consistency motif of the
// paper's blockchain motivation (replicated state machines): a transaction
// sequencer that orders concurrently submitted transactions by arrival, and
// an ideal ledger that fixes an order nondeterministically. The real
// sequencer implements the ideal ledger at ε = 0: every arrival order the
// scheduler produces in the real world is matched by the corresponding
// ordering choice of the ideal ledger's scheduler — the ordering
// nondeterminism is absorbed by the scheduler correspondence, exactly the
// role Def 4.12's ∃σ′ plays for consistency models.
//
// A *committing* variant (CommitSequencer) additionally publishes the
// chosen order; an ideal ledger that always orders a-then-b then fails the
// check by exactly the probability mass of b-first schedules, showing that
// sequential-consistency-style specifications are strictly stronger.
package sequencer

import (
	"fmt"

	"repro/internal/psioa"
)

// Submit returns client c's transaction-submission action.
func Submit(id string, c string) psioa.Action { return psioa.Action("submit_" + c + "_" + id) }

// Commit returns the sequencer's commit announcement for position pos.
func Commit(id string, pos int, c string) psioa.Action {
	return psioa.Action(fmt.Sprintf("commit%d_%s_%s", pos, c, id))
}

// Done returns the completion announcement.
func Done(id string) psioa.Action { return psioa.Action("done_" + id) }

// Client builds the submitting client c: it submits one transaction.
func Client(id, c string) *psioa.Table {
	b := psioa.NewBuilder("client_"+c+"_"+id, "fresh")
	b.AddState("fresh", psioa.NewSignature(nil, []psioa.Action{Submit(id, c)}, nil))
	b.AddDet("fresh", Submit(id, c), "sent")
	b.AddState("sent", psioa.EmptySignature())
	return b.MustBuild()
}

// Real builds the arrival-order sequencer for clients a and b: it commits
// transactions in the order the submissions arrive (which the scheduler
// controls through the clients), then announces completion.
func Real(id string) *psioa.Table {
	subA, subB := Submit(id, "a"), Submit(id, "b")
	b := psioa.NewBuilder("seq_"+id, "empty")
	b.AddState("empty", psioa.NewSignature([]psioa.Action{subA, subB}, nil, nil))
	b.AddDet("empty", subA, "gotA")
	b.AddDet("empty", subB, "gotB")
	// After the first arrival, commit it at position 0, then await the
	// second, commit at position 1, and finish.
	b.AddState("gotA", psioa.NewSignature([]psioa.Action{subB}, []psioa.Action{Commit(id, 0, "a")}, nil))
	b.AddDet("gotA", Commit(id, 0, "a"), "waitB")
	b.AddDet("gotA", subB, "gotAB")
	b.AddState("gotB", psioa.NewSignature([]psioa.Action{subA}, []psioa.Action{Commit(id, 0, "b")}, nil))
	b.AddDet("gotB", Commit(id, 0, "b"), "waitA")
	b.AddDet("gotB", subA, "gotBA")
	// Both arrived before the first commit: the arrival order decides.
	b.AddState("gotAB", psioa.NewSignature(nil, []psioa.Action{Commit(id, 0, "a")}, nil))
	b.AddDet("gotAB", Commit(id, 0, "a"), "secondB")
	b.AddState("gotBA", psioa.NewSignature(nil, []psioa.Action{Commit(id, 0, "b")}, nil))
	b.AddDet("gotBA", Commit(id, 0, "b"), "secondA")
	b.AddState("waitB", psioa.NewSignature([]psioa.Action{subB}, nil, nil))
	b.AddDet("waitB", subB, "secondB")
	b.AddState("waitA", psioa.NewSignature([]psioa.Action{subA}, nil, nil))
	b.AddDet("waitA", subA, "secondA")
	b.AddState("secondB", psioa.NewSignature(nil, []psioa.Action{Commit(id, 1, "b")}, nil))
	b.AddDet("secondB", Commit(id, 1, "b"), "full")
	b.AddState("secondA", psioa.NewSignature(nil, []psioa.Action{Commit(id, 1, "a")}, nil))
	b.AddDet("secondA", Commit(id, 1, "a"), "full")
	b.AddState("full", psioa.NewSignature(nil, []psioa.Action{Done(id)}, nil))
	b.AddDet("full", Done(id), "fin")
	b.AddState("fin", psioa.EmptySignature())
	return b.MustBuild()
}

// RealSystem composes the sequencer with its two clients.
func RealSystem(id string) *psioa.Product {
	return psioa.MustCompose(Client(id, "a"), Client(id, "b"), Real(id))
}

// Ideal builds the ideal ledger: it absorbs both submissions and then
// *nondeterministically* commits them in either order (the scheduler — the
// specification's environment of choices — picks). Both orders are
// externally announced exactly like the real sequencer's.
func Ideal(id string) *psioa.Table {
	subA, subB := Submit(id, "a"), Submit(id, "b")
	b := psioa.NewBuilder("ledger_"+id, "empty")
	b.AddState("empty", psioa.NewSignature([]psioa.Action{subA, subB}, nil, nil))
	b.AddDet("empty", subA, "haveA")
	b.AddDet("empty", subB, "haveB")
	b.AddState("haveA", psioa.NewSignature([]psioa.Action{subB}, nil, nil))
	b.AddDet("haveA", subB, "haveBoth")
	b.AddState("haveB", psioa.NewSignature([]psioa.Action{subA}, nil, nil))
	b.AddDet("haveB", subA, "haveBoth")
	// The ordering choice: both commit actions enabled.
	b.AddState("haveBoth", psioa.NewSignature(nil,
		[]psioa.Action{Commit(id, 0, "a"), Commit(id, 0, "b")}, nil))
	b.AddDet("haveBoth", Commit(id, 0, "a"), "secondB")
	b.AddDet("haveBoth", Commit(id, 0, "b"), "secondA")
	b.AddState("secondB", psioa.NewSignature(nil, []psioa.Action{Commit(id, 1, "b")}, nil))
	b.AddDet("secondB", Commit(id, 1, "b"), "full")
	b.AddState("secondA", psioa.NewSignature(nil, []psioa.Action{Commit(id, 1, "a")}, nil))
	b.AddDet("secondA", Commit(id, 1, "a"), "full")
	b.AddState("full", psioa.NewSignature(nil, []psioa.Action{Done(id)}, nil))
	b.AddDet("full", Done(id), "fin")
	b.AddState("fin", psioa.EmptySignature())
	return b.MustBuild()
}

// IdealSystem composes the ideal ledger with the two clients.
func IdealSystem(id string) *psioa.Product {
	return psioa.MustCompose(Client(id, "a"), Client(id, "b"), Ideal(id))
}

// FifoAOnly builds the over-strong specification that always orders
// client a first — sequential consistency pinned to one order. The real
// sequencer does NOT implement it whenever the scheduler can deliver b
// first.
func FifoAOnly(id string) *psioa.Table {
	subA, subB := Submit(id, "a"), Submit(id, "b")
	b := psioa.NewBuilder("fifoa_"+id, "empty")
	b.AddState("empty", psioa.NewSignature([]psioa.Action{subA, subB}, nil, nil))
	b.AddDet("empty", subA, "haveA")
	b.AddDet("empty", subB, "haveB")
	b.AddState("haveA", psioa.NewSignature([]psioa.Action{subB}, nil, nil))
	b.AddDet("haveA", subB, "haveBoth")
	b.AddState("haveB", psioa.NewSignature([]psioa.Action{subA}, nil, nil))
	b.AddDet("haveB", subA, "haveBoth")
	b.AddState("haveBoth", psioa.NewSignature(nil, []psioa.Action{Commit(id, 0, "a")}, nil))
	b.AddDet("haveBoth", Commit(id, 0, "a"), "secondB")
	b.AddState("secondB", psioa.NewSignature(nil, []psioa.Action{Commit(id, 1, "b")}, nil))
	b.AddDet("secondB", Commit(id, 1, "b"), "full")
	b.AddState("full", psioa.NewSignature(nil, []psioa.Action{Done(id)}, nil))
	b.AddDet("full", Done(id), "fin")
	b.AddState("fin", psioa.EmptySignature())
	return b.MustBuild()
}

// FifoAOnlySystem composes the pinned specification with the clients.
func FifoAOnlySystem(id string) *psioa.Product {
	return psioa.MustCompose(Client(id, "a"), Client(id, "b"), FifoAOnly(id))
}
