package sequencer_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/insight"
	"repro/internal/protocols/sequencer"
	"repro/internal/psioa"
	"repro/internal/sched"
)

func TestAutomataValid(t *testing.T) {
	for _, a := range []psioa.PSIOA{
		sequencer.Real("x"), sequencer.Ideal("x"), sequencer.FifoAOnly("x"),
		sequencer.RealSystem("x"), sequencer.IdealSystem("x"), sequencer.FifoAOnlySystem("x"),
	} {
		if err := psioa.Validate(a, 5000); err != nil {
			t.Errorf("%s: %v", a.ID(), err)
		}
	}
}

// seqSchema enumerates the interesting interleavings: a first, b first,
// and both submitted before any commit (in both arrival orders).
func seqSchema(id string) sched.Schema {
	subA, subB := sequencer.Submit(id, "a"), sequencer.Submit(id, "b")
	orders := [][]psioa.Action{
		{subA, subB}, // a arrives first
		{subB, subA}, // b arrives first
	}
	return &sched.FixedSchema{ID: "interleavings", Default: func(a psioa.PSIOA, bound int) []sched.Scheduler {
		var out []sched.Scheduler
		// Arrival order × ordering preference (the latter only matters for
		// the nondeterministic ideal ledger, where both commits can be
		// enabled at once).
		for _, pre := range orders {
			for _, pref := range []string{"_a_", "_b_"} {
				pre, pref := pre, pref
				out = append(out, &sched.FuncSched{
					ID: "arrive" + string(pre[0]) + "/prefer" + pref,
					Fn: func(f *psioa.Frag) *sched.Choice {
						if f.Len() < len(pre) {
							// Submit phase in the chosen arrival order.
							ch := sched.Halt()
							ch.Add(pre[f.Len()], 1)
							return ch
						}
						if f.Len() >= bound {
							return sched.Halt()
						}
						// Run to completion, preferring the chosen client's
						// commits when the specification offers a choice.
						sig := a.Sig(f.LState())
						local := sig.Out.Union(sig.Int).Sorted()
						if len(local) == 0 {
							return sched.Halt()
						}
						pick := local[0]
						for _, act := range local {
							if containsMid(string(act), pref) {
								pick = act
								break
							}
						}
						ch := sched.Halt()
						ch.Add(pick, 1)
						return ch
					},
				})
			}
		}
		return out
	}}
}

func containsMid(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func opts(id string, eps float64) core.Options {
	return core.Options{
		Envs:    []psioa.PSIOA{psioa.Null("nullenv")},
		Schema:  seqSchema(id),
		Insight: insight.Trace(),
		Eps:     eps,
		Q1:      8, Q2: 8,
	}
}

func TestArrivalOrderImplementsNondeterministicLedger(t *testing.T) {
	// Every arrival order the real scheduler produces is matched by the
	// ideal ledger's ordering choice: ε = 0.
	rep, err := core.Implements(sequencer.RealSystem("x"), sequencer.IdealSystem("x"), opts("x", 0))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Errorf("sequencer does not implement the nondeterministic ledger: %s", rep)
		for _, f := range rep.Failures() {
			t.Logf("  %+v", f)
		}
	}
}

func TestPinnedOrderTooStrong(t *testing.T) {
	// The a-first-pinned specification is strictly stronger: the b-first
	// schedule has no counterpart, failing by the full mass 1.
	rep, err := core.Implements(sequencer.RealSystem("x"), sequencer.FifoAOnlySystem("x"), opts("x", 0))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Holds {
		t.Fatal("pinned specification accepted")
	}
	// Exactly the b-first schedulers fail (both preference variants).
	if got := len(rep.Failures()); got != 2 {
		t.Errorf("failures = %d, want 2", got)
	}
}

func TestCommitOrderMatchesArrival(t *testing.T) {
	// Directly inspect: when b arrives first, b commits at position 0.
	w := sequencer.RealSystem("x")
	ss, err := seqSchema("x").Enumerate(w, 8)
	if err != nil {
		t.Fatal(err)
	}
	var bFirst sched.Scheduler
	want := "arrive" + string(sequencer.Submit("x", "b"))
	for _, s := range ss {
		if len(s.Name()) >= len(want) && s.Name()[:len(want)] == want {
			bFirst = s
			break
		}
	}
	if bFirst == nil {
		t.Fatal("b-first scheduler not found")
	}
	d, err := insight.FDist(w, bFirst, insight.Accept(sequencer.Commit("x", 0, "b")), 10)
	if err != nil {
		t.Fatal(err)
	}
	if d.P("1") != 1 {
		t.Errorf("P(commit0=b | b first) = %v, want 1", d.P("1"))
	}
}
