package channel_test

import (
	"math"
	"testing"

	"repro/internal/adversary"
	"repro/internal/insight"
	"repro/internal/protocols/channel"
	"repro/internal/psioa"
	"repro/internal/sched"
	"repro/internal/structured"
)

func TestRealValid(t *testing.T) {
	r := channel.Real("x")
	if err := structured.Validate(r, 1000); err != nil {
		t.Fatal(err)
	}
	iface, err := adversary.InterfaceOf(r, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !iface.AO.Equal(psioa.NewActionSet(channel.Tap("x", 0), channel.Tap("x", 1))) {
		t.Errorf("AO = %v", iface.AO)
	}
	if !iface.AI.Equal(psioa.NewActionSet(channel.Block("x"))) {
		t.Errorf("AI = %v", iface.AI)
	}
}

func TestIdealValid(t *testing.T) {
	i := channel.Ideal("x")
	if err := structured.Validate(i, 1000); err != nil {
		t.Fatal(err)
	}
	iface, err := adversary.InterfaceOf(i, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !iface.AO.Equal(psioa.NewActionSet(channel.Notify("x"))) {
		t.Errorf("AO = %v", iface.AO)
	}
}

func TestCiphertextUniform(t *testing.T) {
	// Perfect OTP: P(tap0) = P(tap1) = 1/2 regardless of the message.
	for m := 0; m < 2; m++ {
		r := channel.Real("x")
		w := psioa.MustCompose(channel.Env("x", m), r)
		s := &sched.Sequence{A: w, Acts: []psioa.Action{
			channel.Send("x", m), psioa.Action("encrypt_x"), channel.Tap("x", 0),
		}}
		em, err := sched.Measure(w, s, 10)
		if err != nil {
			t.Fatal(err)
		}
		sawTap := 0.0
		em.ForEach(func(f *psioa.Frag, p float64) {
			for _, a := range f.Actions() {
				if a == channel.Tap("x", 0) {
					sawTap += p
				}
			}
		})
		if math.Abs(sawTap-0.5) > 1e-9 {
			t.Errorf("m=%d: P(tap0 fires) = %v, want 0.5", m, sawTap)
		}
	}
}

func TestLeakyBias(t *testing.T) {
	// leak = 0.5 ⇒ P(c = m) = 0.75.
	r := channel.LeakyReal("x", 0.5)
	w := psioa.MustCompose(channel.Env("x", 1), r)
	s := &sched.Sequence{A: w, Acts: []psioa.Action{
		channel.Send("x", 1), psioa.Action("encrypt_x"), channel.Tap("x", 1),
	}}
	em, err := sched.Measure(w, s, 10)
	if err != nil {
		t.Fatal(err)
	}
	sawMatch := 0.0
	em.ForEach(func(f *psioa.Frag, p float64) {
		for _, a := range f.Actions() {
			if a == channel.Tap("x", 1) {
				sawMatch += p
			}
		}
	})
	if math.Abs(sawMatch-0.75) > 1e-9 {
		t.Errorf("P(c=m) = %v, want 0.75", sawMatch)
	}
}

func TestEavesdropperIsAdversary(t *testing.T) {
	if err := adversary.IsAdversaryFor(channel.Eavesdropper("x"), channel.Real("x"), 5000); err != nil {
		t.Errorf("eavesdropper rejected: %v", err)
	}
	// The eavesdropper speaks tap actions, which the ideal system lacks —
	// it is still formally an adversary for Ideal (taps never fire), but
	// SimFor is the meaningful ideal-side adversary.
	if err := adversary.IsAdversaryFor(channel.SimFor("x"), channel.Ideal("x"), 5000); err != nil {
		t.Errorf("simulator rejected as ideal-side adversary: %v", err)
	}
}

func TestBlockerIsAdversary(t *testing.T) {
	if err := adversary.IsAdversaryFor(channel.Blocker("x"), channel.Real("x"), 5000); err != nil {
		t.Errorf("blocker rejected: %v", err)
	}
	if err := adversary.IsAdversaryFor(channel.BlockerSim("x"), channel.Ideal("x"), 5000); err != nil {
		t.Errorf("blocker sim rejected: %v", err)
	}
}

func TestDeliveryEndToEnd(t *testing.T) {
	// Without adversary interference the message is delivered faithfully.
	for m := 0; m < 2; m++ {
		r := channel.Real("x")
		w := psioa.MustCompose(channel.Env("x", m), r)
		// Locally-controlled priority scheduling: taps fire only when the
		// protocol actually outputs them, so the run always completes.
		s := &sched.Priority{A: w, LocalOnly: true, Bound: 5, Order: []psioa.Action{
			channel.Send("x", m), psioa.Action("encrypt_x"),
			channel.Tap("x", 0), channel.Tap("x", 1),
			channel.Deliver("x", m),
		}}
		d, err := insight.FDist(w, s, insight.Accept(channel.Deliver("x", m)), 10)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d.P("1")-1) > 1e-9 {
			t.Errorf("m=%d: delivery probability = %v, want 1", m, d.P("1"))
		}
	}
}

func TestBlockSuppressesDelivery(t *testing.T) {
	r := channel.Real("x")
	w := psioa.MustCompose(channel.Env("x", 0), r, channel.Blocker("x"))
	s := &sched.Priority{A: w, LocalOnly: true, Bound: 5, Order: []psioa.Action{
		channel.Send("x", 0), psioa.Action("encrypt_x"),
		channel.Tap("x", 0), channel.Tap("x", 1),
		channel.Block("x"), channel.Deliver("x", 0),
	}}
	d, err := insight.FDist(w, s, insight.Accept(channel.Deliver("x", 0)), 10)
	if err != nil {
		t.Fatal(err)
	}
	if d.P("1") > 0 {
		t.Errorf("delivery observed after block: %v", d)
	}
}

func TestTwoInstancesCompose(t *testing.T) {
	r1, r2 := channel.Real("a"), channel.Real("b")
	comp, err := structured.Compose(r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	if err := structured.Validate(comp, 20000); err != nil {
		t.Fatal(err)
	}
	if err := structured.CheckCompatible(20000, r1, r2); err != nil {
		t.Errorf("instances not structured-compatible: %v", err)
	}
}
