package channel_test

import (
	"math"
	"testing"

	"repro/internal/adversary"
	"repro/internal/protocols/channel"
	"repro/internal/psioa"
	"repro/internal/sched"
)

func TestGMapShape(t *testing.T) {
	g := channel.G("x")
	if len(g) != 3 {
		t.Fatalf("G has %d entries, want 3", len(g))
	}
	for from, to := range g {
		if string(to) != channel.GPrefix+string(from) {
			t.Errorf("G(%s) = %s", from, to)
		}
	}
}

func TestDummySimValid(t *testing.T) {
	ds := channel.DummySim("x")
	if err := psioa.Validate(ds, 1000); err != nil {
		t.Fatal(err)
	}
	// It is an adversary for the ideal functionality.
	if err := adversary.IsAdversaryFor(ds, channel.Ideal("x"), 50000); err != nil {
		t.Errorf("DummySim rejected as ideal-side adversary: %v", err)
	}
}

func TestDummySimFabricationUniform(t *testing.T) {
	// After notify and fabricate, the simulated observation is uniform.
	ds := channel.DummySim("x")
	q := ds.Trans(ds.Start(), channel.Notify("x")).Support()[0]
	d := ds.Trans(q, "fabricate_sim_x")
	if d.Len() != 2 {
		t.Fatalf("fabrication support = %d", d.Len())
	}
	for _, q2 := range d.Support() {
		if math.Abs(d.P(q2)-0.5) > 1e-9 {
			t.Errorf("P(%s) = %v, want 0.5", q2, d.P(q2))
		}
	}
}

func TestDummySimBlockForwarding(t *testing.T) {
	ds := channel.DummySim("x")
	g := channel.G("x")
	gBlock := g[channel.Block("x")]
	// g(block) arms the forward; block fires and clears it.
	q := ds.Trans(ds.Start(), gBlock).Support()[0]
	if !ds.Sig(q).Out.Has(channel.Block("x")) {
		t.Fatalf("block not armed at %q", q)
	}
	q2 := ds.Trans(q, channel.Block("x")).Support()[0]
	if ds.Sig(q2).Out.Has(channel.Block("x")) {
		t.Error("block not cleared after forwarding")
	}
	// Re-arming is idempotent.
	q3 := ds.Trans(q, gBlock).Support()[0]
	if !ds.Sig(q3).Out.Has(channel.Block("x")) {
		t.Error("re-arming lost the pending block")
	}
}

func TestBlockerNeverGuesses(t *testing.T) {
	// The blocker has no environment-visible outputs besides block itself
	// (which is hidden by the emulation construction): its composition with
	// the real channel yields env traces without guess actions.
	w := psioa.MustCompose(channel.Env("x", 0), channel.Real("x"), channel.Blocker("x"))
	s := &sched.Random{A: w, Bound: 8, LocalOnly: true}
	em, err := sched.Measure(w, s, 10)
	if err != nil {
		t.Fatal(err)
	}
	em.ForEach(func(f *psioa.Frag, p float64) {
		for _, a := range f.Actions() {
			if a == channel.Guess("x", 0) || a == channel.Guess("x", 1) {
				t.Fatalf("blocker guessed: %v", f)
			}
		}
	})
}

func TestLeakyRealExtremes(t *testing.T) {
	// leak = 1: the ciphertext always equals the message.
	r := channel.LeakyReal("x", 1)
	if err := psioa.Validate(r, 1000); err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 2; m++ {
		q := r.Trans("init", channel.Send("x", m)).Support()[0]
		d := r.Trans(q, "encrypt_x")
		if d.Len() != 1 {
			t.Fatalf("m=%d: leak=1 support = %d, want 1", m, d.Len())
		}
	}
}
