// Package channel implements a one-time-pad secure message transmission
// (SMT) protocol and its ideal functionality — the classic real/ideal pair
// of simulation-based security, rendered as structured PSIOA (Section 4.7).
// It is the main workload of the secure-emulation experiments (E7, E8).
//
// Real protocol Real(id): the environment submits a one-bit message
// (send0/send1). The protocol samples a uniform pad bit internally and
// transmits the ciphertext c = m ⊕ pad; the adversary observes c (adversary
// outputs tap0/tap1) and may block delivery (adversary input block).
// Otherwise the message is delivered verbatim (deliver0/deliver1).
//
// Ideal functionality Ideal(id): same environment interface, but the
// adversary only learns *that* a message was sent (adversary output notify)
// and may block it — never its content.
//
// Because the pad is uniform, the ciphertext is uniform independently of m,
// so the eavesdropper simulator (SimFor) that fabricates a uniform
// ciphertext achieves *perfect* (ε = 0) emulation. LeakyReal(id, δ) breaks
// the pad with probability δ (transmitting m in clear), giving a family
// whose emulation error is exactly calibrated for approximate
// implementation and negligible-function experiments (δ = 2^−k).
package channel

import (
	"fmt"

	"repro/internal/measure"
	"repro/internal/psioa"
	"repro/internal/structured"
)

// Action name constructors; all actions are suffixed with the instance id
// so several channel instances compose without clashes.
func act(name, id string) psioa.Action { return psioa.Action(name + "_" + id) }

// Send returns the environment input submitting message bit m.
func Send(id string, m int) psioa.Action { return act(fmt.Sprintf("send%d", m), id) }

// Deliver returns the environment output delivering message bit m.
func Deliver(id string, m int) psioa.Action { return act(fmt.Sprintf("deliver%d", m), id) }

// Tap returns the adversary output revealing ciphertext bit c (real
// protocol only).
func Tap(id string, c int) psioa.Action { return act(fmt.Sprintf("tap%d", c), id) }

// Notify returns the adversary output signalling a message in transit
// (ideal functionality only).
func Notify(id string) psioa.Action { return act("notify", id) }

// Block returns the adversary input suppressing delivery.
func Block(id string) psioa.Action { return act("block", id) }

// EnvActions returns the environment interface of either system.
func EnvActions(id string) psioa.ActionSet {
	return psioa.NewActionSet(Send(id, 0), Send(id, 1), Deliver(id, 0), Deliver(id, 1))
}

// Real returns the OTP real protocol as a structured automaton.
func Real(id string) *structured.Structured { return LeakyReal(id, 0) }

// LeakyReal returns the real protocol with a flawed pad: with probability
// leak the message bit is transmitted in clear (pad = 0); with probability
// 1−leak the pad is uniform. leak = 0 is the perfect OTP.
func LeakyReal(id string, leak float64) *structured.Structured {
	encrypt := act("encrypt", id)
	b := psioa.NewBuilder("real_"+id, "init")
	listen := []psioa.Action{Send(id, 0), Send(id, 1)}
	b.AddState("init", psioa.NewSignature(listen, nil, nil))
	for m := 0; m < 2; m++ {
		have := psioa.State(fmt.Sprintf("have%d", m))
		b.AddState(have, psioa.NewSignature(nil, nil, []psioa.Action{encrypt}))
		b.AddDet("init", Send(id, m), have)
		// Encrypt: ciphertext c = m ⊕ pad. Uniform pad → uniform c; a leak
		// shifts mass onto c = m.
		d := measure.New[psioa.State]()
		pm := 0.5 + leak/2   // P(c = m): pad 0 with prob (1-leak)/2 + leak
		d.Add(enc(m, m), pm) // clear
		d.Add(enc(m, 1-m), 1-pm)
		b.AddTrans(have, encrypt, d)
	}
	for m := 0; m < 2; m++ {
		for c := 0; c < 2; c++ {
			st := enc(m, c)
			b.AddState(st, psioa.NewSignature(nil, []psioa.Action{Tap(id, c)}, nil))
			sent := psioa.State(fmt.Sprintf("sent%d", m))
			b.AddDet(st, Tap(id, c), sent)
		}
	}
	for m := 0; m < 2; m++ {
		sent := psioa.State(fmt.Sprintf("sent%d", m))
		b.AddState(sent, psioa.NewSignature([]psioa.Action{Block(id)}, []psioa.Action{Deliver(id, m)}, nil))
		b.AddDet(sent, Deliver(id, m), "done")
		b.AddDet(sent, Block(id), "blocked")
	}
	b.AddState("done", psioa.NewSignature(listen, nil, nil))
	b.AddState("blocked", psioa.NewSignature(listen, nil, nil))
	for _, s := range []psioa.State{"done", "blocked"} {
		for m := 0; m < 2; m++ {
			b.AddDet(s, Send(id, m), s)
		}
	}
	return structured.NewSet(b.MustBuild(), EnvActions(id))
}

func enc(m, c int) psioa.State { return psioa.State(fmt.Sprintf("ct_m%d_c%d", m, c)) }

// Ideal returns the ideal secure-channel functionality as a structured
// automaton.
func Ideal(id string) *structured.Structured {
	b := psioa.NewBuilder("ideal_"+id, "init")
	listen := []psioa.Action{Send(id, 0), Send(id, 1)}
	b.AddState("init", psioa.NewSignature(listen, nil, nil))
	for m := 0; m < 2; m++ {
		have := psioa.State(fmt.Sprintf("have%d", m))
		sent := psioa.State(fmt.Sprintf("sent%d", m))
		b.AddState(have, psioa.NewSignature(nil, []psioa.Action{Notify(id)}, nil))
		b.AddState(sent, psioa.NewSignature([]psioa.Action{Block(id)}, []psioa.Action{Deliver(id, m)}, nil))
		b.AddDet("init", Send(id, m), have)
		b.AddDet(have, Notify(id), sent)
		b.AddDet(sent, Deliver(id, m), "done")
		b.AddDet(sent, Block(id), "blocked")
	}
	b.AddState("done", psioa.NewSignature(listen, nil, nil))
	b.AddState("blocked", psioa.NewSignature(listen, nil, nil))
	for _, s := range []psioa.State{"done", "blocked"} {
		for m := 0; m < 2; m++ {
			b.AddDet(s, Send(id, m), s)
		}
	}
	return structured.NewSet(b.MustBuild(), EnvActions(id))
}

// Eavesdropper returns the passive adversary for Real(id): it observes the
// ciphertext and announces its observation to the environment through the
// external outputs guess0/guess1. It never blocks (but block remains in its
// output signature so that it is a well-formed adversary driving all of
// AI — it simply never schedules it... it must *enable* block to satisfy
// Def 4.24's AI ⊆ out(Adv); the transition is a self-loop that is only
// taken if a scheduler forces it).
func Eavesdropper(id string) *psioa.Table {
	taps := []psioa.Action{Tap(id, 0), Tap(id, 1)}
	b := psioa.NewBuilder("eaves_"+id, "a0")
	b.AddState("a0", psioa.NewSignature(taps, []psioa.Action{Block(id)}, nil))
	b.AddDet("a0", Block(id), "a0")
	for c := 0; c < 2; c++ {
		saw := psioa.State(fmt.Sprintf("saw%d", c))
		out := psioa.State(fmt.Sprintf("out%d", c))
		b.AddState(saw, psioa.NewSignature(taps, []psioa.Action{act(fmt.Sprintf("guess%d", c), id), Block(id)}, nil))
		b.AddDet("a0", Tap(id, c), saw)
		b.AddDet(saw, act(fmt.Sprintf("guess%d", c), id), out)
		b.AddDet(saw, Block(id), saw)
		b.AddState(out, psioa.NewSignature(taps, []psioa.Action{Block(id)}, nil))
		b.AddDet(out, Block(id), out)
		for c2 := 0; c2 < 2; c2++ {
			b.AddDet(saw, Tap(id, c2), saw)
			b.AddDet(out, Tap(id, c2), out)
		}
	}
	return b.MustBuild()
}

// Guess returns the eavesdropper's external announcement of ciphertext c.
func Guess(id string, c int) psioa.Action { return act(fmt.Sprintf("guess%d", c), id) }

// SimFor returns the simulator for the eavesdropper against Ideal(id): on
// notify it fabricates a uniform ciphertext observation and announces it
// exactly as the eavesdropper would. Because the real ciphertext is uniform
// (perfect OTP), the fabrication is perfectly indistinguishable.
func SimFor(id string) *psioa.Table {
	notify := []psioa.Action{Notify(id)}
	fab := act("fabricate", id)
	b := psioa.NewBuilder("sim_"+id, "s0")
	b.AddState("s0", psioa.NewSignature(notify, []psioa.Action{Block(id)}, nil))
	b.AddDet("s0", Block(id), "s0")
	b.AddState("noted", psioa.NewSignature(notify, []psioa.Action{Block(id)}, []psioa.Action{fab}))
	b.AddDet("s0", Notify(id), "noted")
	b.AddDet("noted", Notify(id), "noted")
	b.AddDet("noted", Block(id), "noted")
	d := measure.New[psioa.State]()
	d.Add("saw0", 0.5)
	d.Add("saw1", 0.5)
	b.AddTrans("noted", fab, d)
	for c := 0; c < 2; c++ {
		saw := psioa.State(fmt.Sprintf("saw%d", c))
		out := psioa.State(fmt.Sprintf("out%d", c))
		b.AddState(saw, psioa.NewSignature(notify, []psioa.Action{Guess(id, c), Block(id)}, nil))
		b.AddDet(saw, Guess(id, c), out)
		b.AddDet(saw, Block(id), saw)
		b.AddDet(saw, Notify(id), saw)
		b.AddState(out, psioa.NewSignature(notify, []psioa.Action{Block(id)}, nil))
		b.AddDet(out, Block(id), out)
		b.AddDet(out, Notify(id), out)
	}
	return b.MustBuild()
}

// Blocker returns the active adversary that blocks delivery as soon as it
// observes traffic, and its ideal-side simulator counterpart is itself
// (modulo the observation action): BlockerSim observes notify instead of
// taps.
func Blocker(id string) *psioa.Table {
	taps := []psioa.Action{Tap(id, 0), Tap(id, 1)}
	b := psioa.NewBuilder("blocker_"+id, "b0")
	b.AddState("b0", psioa.NewSignature(taps, []psioa.Action{Block(id)}, nil))
	b.AddDet("b0", Block(id), "b0")
	b.AddState("armed", psioa.NewSignature(taps, []psioa.Action{Block(id)}, nil))
	for c := 0; c < 2; c++ {
		b.AddDet("b0", Tap(id, c), "armed")
		b.AddDet("armed", Tap(id, c), "armed")
	}
	b.AddDet("armed", Block(id), "b0")
	return b.MustBuild()
}

// BlockerSim is the blocker's simulator against the ideal functionality.
func BlockerSim(id string) *psioa.Table {
	notify := []psioa.Action{Notify(id)}
	b := psioa.NewBuilder("blockersim_"+id, "b0")
	b.AddState("b0", psioa.NewSignature(notify, []psioa.Action{Block(id)}, nil))
	b.AddDet("b0", Block(id), "b0")
	b.AddState("armed", psioa.NewSignature(notify, []psioa.Action{Block(id)}, nil))
	b.AddDet("b0", Notify(id), "armed")
	b.AddDet("armed", Notify(id), "armed")
	b.AddDet("armed", Block(id), "b0")
	return b.MustBuild()
}

// GPrefix is the fresh-name prefix used for adversary-action renamings of
// channel instances (the g of Section 4.9).
const GPrefix = "g_"

// G returns the canonical adversary-action renaming of a channel instance:
// every adversary action a maps to the fresh name GPrefix+a.
func G(id string) map[psioa.Action]psioa.Action {
	out := map[psioa.Action]psioa.Action{}
	for _, a := range []psioa.Action{Tap(id, 0), Tap(id, 1), Block(id)} {
		out[a] = psioa.Action(GPrefix + string(a))
	}
	return out
}

// DummySim returns the dummy simulator DSim for a channel instance: the
// ideal-side adversary that makes hide(Real‖Dummy(Real,g), AAct_real) and
// hide(Ideal‖DSim, AAct_ideal) indistinguishable. It consumes the ideal
// functionality's notify, fabricates a uniform ciphertext observation and
// re-emits it under the renamed name g(tap_c); renamed block commands
// g(block) are forwarded to the functionality as block. It is the
// per-component simulator the Theorem 4.30 construction composes.
func DummySim(id string) *psioa.Table {
	g := G(id)
	gBlock := g[Block(id)]
	fab := act("fabricate_sim", id)
	ins := []psioa.Action{Notify(id), gBlock}
	b := psioa.NewBuilder("dsim_"+id, "p0_fresh")
	phases := []string{"fresh", "noted", "saw0", "saw1", "done"}
	for _, pend := range []string{"p0", "p1"} {
		for _, ph := range phases {
			st := psioa.State(pend + "_" + ph)
			var outs []psioa.Action
			var ints []psioa.Action
			if pend == "p1" {
				outs = append(outs, Block(id))
			}
			switch ph {
			case "noted":
				ints = append(ints, fab)
			case "saw0":
				outs = append(outs, g[Tap(id, 0)])
			case "saw1":
				outs = append(outs, g[Tap(id, 1)])
			}
			b.AddState(st, psioa.NewSignature(ins, outs, ints))
		}
	}
	for _, pend := range []string{"p0", "p1"} {
		st := func(ph string) psioa.State { return psioa.State(pend + "_" + ph) }
		// notify advances fresh → noted; elsewhere it is absorbed.
		b.AddDet(st("fresh"), Notify(id), st("noted"))
		for _, ph := range phases[1:] {
			b.AddDet(st(ph), Notify(id), st(ph))
		}
		// fabricate flips the simulated ciphertext.
		d := measure.New[psioa.State]()
		d.Add(st("saw0"), 0.5)
		d.Add(st("saw1"), 0.5)
		b.AddTrans(st("noted"), fab, d)
		// emit the fabricated observation.
		b.AddDet(st("saw0"), g[Tap(id, 0)], st("done"))
		b.AddDet(st("saw1"), g[Tap(id, 1)], st("done"))
	}
	for _, ph := range phases {
		// g(block) arms the forward; block fires it.
		b.AddDet(psioa.State("p0_"+ph), gBlock, psioa.State("p1_"+ph))
		b.AddDet(psioa.State("p1_"+ph), gBlock, psioa.State("p1_"+ph))
		b.AddDet(psioa.State("p1_"+ph), Block(id), psioa.State("p0_"+ph))
	}
	return b.MustBuild()
}

// Env returns the canonical distinguishing environment: it sends message m
// and listens for deliveries and for the eavesdropper's announcements.
func Env(id string, m int) *psioa.Table {
	inputs := []psioa.Action{Deliver(id, 0), Deliver(id, 1), Guess(id, 0), Guess(id, 1)}
	b := psioa.NewBuilder(fmt.Sprintf("env_%s_m%d", id, m), "e0")
	b.AddState("e0", psioa.NewSignature(inputs, []psioa.Action{Send(id, m)}, nil))
	b.AddState("sent", psioa.NewSignature(inputs, nil, nil))
	b.AddDet("e0", Send(id, m), "sent")
	for _, in := range inputs {
		b.AddDet("e0", in, "e0")
		b.AddDet("sent", in, "sent")
	}
	return b.MustBuild()
}
