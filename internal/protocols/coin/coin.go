// Package coin implements a family of coin-flipping protocols used by the
// approximate-implementation experiments (E4–E6): an ideal fair coin and
// leaky variants whose bias decays with the security parameter. A biased
// coin ε-implements the fair coin with ε exactly equal to its bias offset,
// which makes the family a precise calibration source for the transitivity
// (ε₁₃ = ε₁₂ + ε₂₃) and negligible-function experiments.
package coin

import (
	"fmt"

	"repro/internal/bounded"
	"repro/internal/measure"
	"repro/internal/psioa"
)

// Flip returns the environment trigger action of instance id.
func Flip(id string) psioa.Action { return psioa.Action("flip_" + id) }

// Result returns the outcome announcement action of instance id.
func Result(id string, bit int) psioa.Action {
	return psioa.Action(fmt.Sprintf("result%d_%s", bit, id))
}

// Flipper returns a coin protocol: on the environment input flip it samples
// a bit with the given probability of 1 and announces result1/result0.
func Flipper(id string, p1 float64) *psioa.Table {
	flip := Flip(id)
	b := psioa.NewBuilder("coin_"+id, "idle")
	b.AddState("idle", psioa.NewSignature([]psioa.Action{flip}, nil, nil))
	d := measure.New[psioa.State]()
	d.Add("one", p1)
	d.Add("zero", 1-p1)
	b.AddTrans("idle", flip, d)
	for bit, st := range map[int]psioa.State{0: "zero", 1: "one"} {
		b.AddState(st, psioa.NewSignature([]psioa.Action{flip}, []psioa.Action{Result(id, bit)}, nil))
		b.AddDet(st, Result(id, bit), "done")
		b.AddDet(st, flip, st)
	}
	b.AddState("done", psioa.NewSignature([]psioa.Action{flip}, nil, nil))
	b.AddDet("done", flip, "done")
	return b.MustBuild()
}

// Fair returns the ideal fair coin.
func Fair(id string) *psioa.Table { return Flipper(id, 0.5) }

// Leaky returns the k-th member of the leaky family: bias offset 2^−k.
// Leaky(id, k) implements Fair(id) with ε(k) = 2^−k, a negligible function.
func Leaky(id string, k int) *psioa.Table {
	return Flipper(id, 0.5+bounded.Negl(2)(k))
}

// Family returns the leaky coin family (A_k) = Leaky(id, k), suitable for
// the family-level checks of Lemmas 4.14/4.15.
func Family(id string) bounded.Family {
	return func(k int) psioa.PSIOA { return Leaky(id, k) }
}

// FairFamily returns the constant family of fair coins.
func FairFamily(id string) bounded.Family {
	return func(k int) psioa.PSIOA { return Fair(id) }
}

// Env returns the canonical environment: it triggers one flip and listens
// for results.
func Env(id string) *psioa.Table {
	inputs := []psioa.Action{Result(id, 0), Result(id, 1)}
	b := psioa.NewBuilder("coinenv_"+id, "e0")
	b.AddState("e0", psioa.NewSignature(inputs, []psioa.Action{Flip(id)}, nil))
	b.AddState("waiting", psioa.NewSignature(inputs, nil, nil))
	b.AddDet("e0", Flip(id), "waiting")
	for _, in := range inputs {
		b.AddDet("e0", in, "e0")
		b.AddDet("waiting", in, "waiting")
	}
	return b.MustBuild()
}
