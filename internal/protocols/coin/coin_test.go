package coin_test

import (
	"math"
	"testing"

	"repro/internal/insight"
	"repro/internal/protocols/coin"
	"repro/internal/psioa"
	"repro/internal/sched"
)

func TestFlipperValid(t *testing.T) {
	for _, p := range []float64{0, 0.25, 0.5, 1} {
		if err := psioa.Validate(coin.Flipper("x", p), 100); err != nil {
			t.Errorf("p=%v: %v", p, err)
		}
	}
}

func TestFlipperDistribution(t *testing.T) {
	c := coin.Flipper("x", 0.25)
	w := psioa.MustCompose(coin.Env("x"), c)
	s := &sched.Greedy{A: w, Bound: 3, LocalOnly: true}
	d, err := insight.FDist(w, s, insight.Accept(coin.Result("x", 1)), 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.P("1")-0.25) > 1e-9 {
		t.Errorf("P(result1) = %v, want 0.25", d.P("1"))
	}
}

func TestLeakyBiasDecays(t *testing.T) {
	measureBias := func(k int) float64 {
		c := coin.Leaky("x", k)
		w := psioa.MustCompose(coin.Env("x"), c)
		s := &sched.Greedy{A: w, Bound: 3, LocalOnly: true}
		d, err := insight.FDist(w, s, insight.Accept(coin.Result("x", 1)), 10)
		if err != nil {
			t.Fatal(err)
		}
		return d.P("1") - 0.5
	}
	for k := 1; k <= 8; k++ {
		want := math.Pow(2, -float64(k))
		if got := measureBias(k); math.Abs(got-want) > 1e-9 {
			t.Errorf("k=%d: bias = %v, want %v", k, got, want)
		}
	}
}

func TestFamilies(t *testing.T) {
	fam := coin.Family("x")
	if fam(3).ID() != "coin_x" {
		t.Errorf("family member ID = %q", fam(3).ID())
	}
	fair := coin.FairFamily("x")
	if fair(1).ID() != fair(9).ID() {
		t.Error("fair family should be constant")
	}
}

func TestEnvListens(t *testing.T) {
	e := coin.Env("x")
	if !e.Sig("e0").Out.Has(coin.Flip("x")) {
		t.Error("env does not trigger the flip")
	}
	if !e.Sig("waiting").In.Has(coin.Result("x", 0)) {
		t.Error("env does not listen for results")
	}
}
