package dynchannel_test

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/insight"
	"repro/internal/pca"
	"repro/internal/protocols/channel"
	"repro/internal/protocols/dynchannel"
	"repro/internal/psioa"
	"repro/internal/sched"
	"repro/internal/structured"
)

func TestHostsValid(t *testing.T) {
	for _, kind := range []dynchannel.Kind{dynchannel.RealKind, dynchannel.IdealKind} {
		x := dynchannel.Host("d", 2, kind)
		if err := structured.Validate(x, 20000); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := pca.ValidatePCA(x, 5000); err != nil {
			t.Fatalf("%s PCA constraints: %v", kind, err)
		}
	}
}

func TestUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	dynchannel.Host("d", 1, dynchannel.Kind("bogus"))
}

func TestSessionLifecycle(t *testing.T) {
	x := dynchannel.Host("d", 1, dynchannel.RealKind)
	// Before opening, no session exists; after, the session is live at its
	// start state.
	cfg := x.Config(x.Start())
	if cfg.Len() != 1 {
		t.Fatalf("start config = %v", cfg)
	}
	eta := x.Trans(x.Start(), dynchannel.Open("d"))
	for _, q2 := range eta.Support() {
		c2 := x.Config(q2)
		sid := "real_" + dynchannel.SessionID("d", 0)
		if !c2.Has(sid) {
			t.Fatalf("session not created: %v", c2)
		}
		st, _ := c2.StateOf(sid)
		if st != "init" {
			t.Errorf("session created at %q, want init", st)
		}
	}
}

func TestAdversaryInterface(t *testing.T) {
	x := dynchannel.Host("d", 1, dynchannel.RealKind)
	iface, err := adversary.InterfaceOf(x, 20000)
	if err != nil {
		t.Fatal(err)
	}
	sid := dynchannel.SessionID("d", 0)
	if !iface.AO.Has(channel.Tap(sid, 0)) || !iface.AO.Has(channel.Tap(sid, 1)) {
		t.Errorf("AO = %v", iface.AO)
	}
	if !iface.AI.Has(channel.Block(sid)) {
		t.Errorf("AI = %v", iface.AI)
	}
	if err := adversary.IsAdversaryFor(dynchannel.Adversary("d", 1), x, 20000); err != nil {
		t.Errorf("session eavesdropper rejected: %v", err)
	}
}

// schema is the run-to-completion strategy family for dynamic hosts: open
// sessions first, then run each protocol phase.
func schema() sched.Schema {
	return &sched.PrefixPrioritySchema{Templates: [][]string{
		{"open", "send", "encrypt", "tap", "notify", "fabricate", "guess", "deliver"},
		{"open", "send", "encrypt", "tap", "notify", "fabricate", "guess"},
		{"open", "send", "encrypt", "tap", "notify", "deliver"},
	}}
}

func TestDynamicSecureEmulationSingleSession(t *testing.T) {
	real := dynchannel.Host("d", 1, dynchannel.RealKind)
	ideal := dynchannel.Host("d", 1, dynchannel.IdealKind)
	rep, err := core.SecureEmulates(real, ideal,
		[]core.AdvSim{{Adv: dynchannel.Adversary("d", 1), Sim: dynchannel.Simulator("d", 1)}},
		core.Options{
			Envs:    []psioa.PSIOA{dynchannel.Env("d", []int{0}), dynchannel.Env("d", []int{1})},
			Schema:  schema(),
			Insight: insight.Trace(),
			Eps:     0,
			Q1:      10, Q2: 10,
		}, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Errorf("dynamic secure emulation failed:\n%s", rep)
		for _, r := range rep.PerAdv {
			for _, f := range r.Failures() {
				t.Logf("  %+v", f)
			}
		}
	}
}

func TestDynamicSecureEmulationTwoSessions(t *testing.T) {
	if testing.Short() {
		t.Skip("two-session emulation sweep is slow")
	}
	real := dynchannel.Host("d", 2, dynchannel.RealKind)
	ideal := dynchannel.Host("d", 2, dynchannel.IdealKind)
	var envs []psioa.PSIOA
	for m1 := 0; m1 < 2; m1++ {
		for m2 := 0; m2 < 2; m2++ {
			envs = append(envs, dynchannel.Env("d", []int{m1, m2}))
		}
	}
	rep, err := core.SecureEmulates(real, ideal,
		[]core.AdvSim{{Adv: dynchannel.Adversary("d", 2), Sim: dynchannel.Simulator("d", 2)}},
		core.Options{
			Envs:    envs,
			Schema:  schema(),
			Insight: insight.Trace(),
			Eps:     0,
			Q1:      20, Q2: 20,
		}, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Errorf("two-session dynamic emulation failed:\n%s", rep)
	}
}

func TestPerceptionUnderCreationObliviousScheduling(t *testing.T) {
	// The masked view hides session internals; an off-line opener factors
	// through it on both hosts.
	for _, kind := range []dynchannel.Kind{dynchannel.RealKind, dynchannel.IdealKind} {
		x := dynchannel.Host("d", 1, kind)
		view := pca.CreationMaskView(x, []string{"host_d"})
		seq := &sched.Sequence{A: x, LocalOnly: true, Acts: []psioa.Action{dynchannel.Open("d")}}
		if err := sched.FactorsThrough(x, seq, view, 10); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
}
