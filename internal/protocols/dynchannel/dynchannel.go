// Package dynchannel combines the paper's two axes — dynamic creation and
// simulation-based security — in one system: a host configuration automaton
// that opens secure-channel sessions *at run time*. The real host creates
// OTP channel instances; the ideal host creates ideal-functionality
// instances. Experiment E11 shows the real host securely emulates the ideal
// host (ε = 0) with the session simulators composed — the scenario the
// paper's introduction motivates (dynamic protocol instances, UC's "!"
// operator) but no prior I/O-automata framework could express.
package dynchannel

import (
	"fmt"

	"repro/internal/pca"
	"repro/internal/protocols/channel"
	"repro/internal/psioa"
	"repro/internal/structured"
)

// Kind selects the session implementation the host creates.
type Kind string

const (
	// RealKind hosts one-time-pad channel sessions.
	RealKind Kind = "real"
	// IdealKind hosts ideal-functionality sessions.
	IdealKind Kind = "ideal"
)

// Open returns the host's session-opening action.
func Open(id string) psioa.Action { return psioa.Action("open_" + id) }

// SessionID returns the channel-instance identifier of session n of host
// id. Both kinds share session ids, so environments and adversaries are
// interchangeable between the real and ideal hosts.
func SessionID(id string, n int) string { return fmt.Sprintf("%ss%d", id, n) }

// controller builds the host's session opener: it can open up to n
// sessions, then idles.
func controller(id string, n int) *psioa.Table {
	open := Open(id)
	idle := psioa.Action("idle_" + id)
	b := psioa.NewBuilder("host_"+id, "h0")
	for i := 0; i < n; i++ {
		b.AddState(psioa.State(fmt.Sprintf("h%d", i)),
			psioa.NewSignature(nil, []psioa.Action{open}, nil))
		b.AddDet(psioa.State(fmt.Sprintf("h%d", i)), open, psioa.State(fmt.Sprintf("h%d", i+1)))
	}
	b.AddState(psioa.State(fmt.Sprintf("h%d", n)),
		psioa.NewSignature(nil, []psioa.Action{idle}, nil))
	b.AddDet(psioa.State(fmt.Sprintf("h%d", n)), idle, psioa.State(fmt.Sprintf("h%d", n)))
	return b.MustBuild()
}

// Host builds the dynamic channel host as a structured PCA: a controller
// that opens up to maxSessions sessions of the given kind, each session a
// full (real or ideal) secure-channel instance created in its start state
// (Def 2.14).
func Host(id string, maxSessions int, kind Kind) *structured.StructuredPCA {
	reg := pca.MapRegistry{}
	ctrl := controller(id, maxSessions)
	reg.Register(ctrl)
	constituents := make([]structured.SPSIOA, 0, maxSessions)
	for i := 0; i < maxSessions; i++ {
		sid := SessionID(id, i)
		var s *structured.Structured
		switch kind {
		case RealKind:
			s = channel.Real(sid)
		case IdealKind:
			s = channel.Ideal(sid)
		default:
			panic(fmt.Sprintf("dynchannel: unknown kind %q", kind))
		}
		// The session automaton's identifier is real_<sid>/ideal_<sid>; the
		// registry must address it by that identifier.
		reg.Register(s)
		constituents = append(constituents, s)
	}
	created := func(c *pca.Config, a psioa.Action) []string {
		if a != Open(id) {
			return nil
		}
		st, ok := c.StateOf(ctrl.ID())
		if !ok {
			return nil
		}
		var k int
		fmt.Sscanf(string(st), "h%d", &k)
		if k >= maxSessions {
			return nil
		}
		return []string{string(kind) + "_" + SessionID(id, k)}
	}
	init := pca.NewConfig(map[string]psioa.State{ctrl.ID(): "h0"})
	x := pca.MustNew(fmt.Sprintf("dynhost_%s_%s", id, kind), reg, init, pca.WithCreated(created))
	return structured.StructurePCA(x, constituents...)
}

// Adversary returns the composed passive adversary for the real host: one
// eavesdropper per potential session.
func Adversary(id string, maxSessions int) psioa.PSIOA {
	auts := make([]psioa.PSIOA, maxSessions)
	for i := 0; i < maxSessions; i++ {
		auts[i] = channel.Eavesdropper(SessionID(id, i))
	}
	return psioa.MustCompose(auts...)
}

// Simulator returns the composed simulator for the ideal host: one
// per-session eavesdropper simulator.
func Simulator(id string, maxSessions int) psioa.PSIOA {
	auts := make([]psioa.PSIOA, maxSessions)
	for i := 0; i < maxSessions; i++ {
		auts[i] = channel.SimFor(SessionID(id, i))
	}
	return psioa.MustCompose(auts...)
}

// Env returns the composed environment driving all sessions: per session a
// channel environment sending the given message bit.
func Env(id string, messages []int) psioa.PSIOA {
	auts := make([]psioa.PSIOA, len(messages))
	for i, m := range messages {
		auts[i] = channel.Env(SessionID(id, i), m)
	}
	return psioa.MustCompose(auts...)
}
