// Package testaut provides small, well-understood automata used as fixtures
// throughout the test suites and benchmarks: coin flippers, request/response
// servers, counters and simple environments. They are deliberately tiny so
// that expected execution measures can be computed by hand in tests.
package testaut

import (
	"fmt"

	"repro/internal/measure"
	"repro/internal/psioa"
)

// Coin returns a one-shot coin automaton with the given bias:
//
//	q0 --flip(int)--> heads/tails, then outputs "heads"/"tails" and stops.
//
// bias is the probability of heads. Action names are parameterised by id so
// that two coins can be composed without output clashes.
func Coin(id string, bias float64) *psioa.Table {
	flip := psioa.Action("flip_" + id)
	heads := psioa.Action("heads_" + id)
	tails := psioa.Action("tails_" + id)
	d := measure.New[psioa.State]()
	d.Add("h", bias)
	d.Add("t", 1-bias)
	return psioa.NewBuilder(id, "q0").
		AddState("q0", psioa.NewSignature(nil, nil, []psioa.Action{flip})).
		AddState("h", psioa.NewSignature(nil, []psioa.Action{heads}, nil)).
		AddState("t", psioa.NewSignature(nil, []psioa.Action{tails}, nil)).
		AddState("done", psioa.EmptySignature()).
		AddTrans("q0", flip, d).
		AddDet("h", heads, "done").
		AddDet("t", tails, "done").
		MustBuild()
}

// OpenCoin is like Coin but the flip is an *input* action named "go_<id>",
// so an environment controls when the coin flips. Output actions report the
// outcome.
func OpenCoin(id string, bias float64) *psioa.Table {
	goAct := psioa.Action("go_" + id)
	heads := psioa.Action("heads_" + id)
	tails := psioa.Action("tails_" + id)
	d := measure.New[psioa.State]()
	d.Add("h", bias)
	d.Add("t", 1-bias)
	return psioa.NewBuilder(id, "q0").
		AddState("q0", psioa.NewSignature([]psioa.Action{goAct}, nil, nil)).
		AddState("h", psioa.NewSignature([]psioa.Action{goAct}, []psioa.Action{heads}, nil)).
		AddState("t", psioa.NewSignature([]psioa.Action{goAct}, []psioa.Action{tails}, nil)).
		AddState("done", psioa.NewSignature([]psioa.Action{goAct}, nil, nil)).
		AddTrans("q0", goAct, d).
		AddDet("h", heads, "done").
		AddDet("t", tails, "done").
		AddDet("h", goAct, "h").
		AddDet("t", goAct, "t").
		AddDet("done", goAct, "done").
		MustBuild()
}

// CoinEnv returns an environment for OpenCoin(id): it outputs go_<id> once
// and then listens to the outcome, recording it in its state.
func CoinEnv(id string) *psioa.Table {
	goAct := psioa.Action("go_" + id)
	heads := psioa.Action("heads_" + id)
	tails := psioa.Action("tails_" + id)
	listen := psioa.NewSignature([]psioa.Action{heads, tails}, nil, nil)
	return psioa.NewBuilder("env_"+id, "e0").
		AddState("e0", psioa.NewSignature([]psioa.Action{heads, tails}, []psioa.Action{goAct}, nil)).
		AddState("sent", listen).
		AddState("sawH", listen).
		AddState("sawT", listen).
		AddDet("e0", goAct, "sent").
		AddDet("e0", heads, "sawH").
		AddDet("e0", tails, "sawT").
		AddDet("sent", heads, "sawH").
		AddDet("sent", tails, "sawT").
		AddDet("sawH", heads, "sawH").
		AddDet("sawH", tails, "sawT").
		AddDet("sawT", heads, "sawH").
		AddDet("sawT", tails, "sawT").
		MustBuild()
}

// Counter returns an automaton that counts "tick" inputs up to n and then
// outputs "done_<id>".
func Counter(id string, n int) *psioa.Table {
	tick := psioa.Action("tick")
	done := psioa.Action("done_" + id)
	b := psioa.NewBuilder(id, st(0))
	for i := 0; i < n; i++ {
		b.AddState(st(i), psioa.NewSignature([]psioa.Action{tick}, nil, nil))
		b.AddDet(st(i), tick, st(i+1))
	}
	b.AddState(st(n), psioa.NewSignature([]psioa.Action{tick}, []psioa.Action{done}, nil))
	b.AddDet(st(n), tick, st(n))
	b.AddState("fin", psioa.NewSignature([]psioa.Action{tick}, nil, nil))
	b.AddDet(st(n), done, "fin")
	b.AddDet("fin", tick, "fin")
	return b.MustBuild()
}

func st(i int) psioa.State { return psioa.State(fmt.Sprintf("c%d", i)) }

// PingPong returns a pair of automata that exchange ping/pong messages k
// times; useful for composition tests where actions are matched in/out.
func PingPong(k int) (*psioa.Table, *psioa.Table) {
	ping, pong := psioa.Action("ping"), psioa.Action("pong")
	pb := psioa.NewBuilder("pinger", "p0")
	qb := psioa.NewBuilder("ponger", "r0")
	for i := 0; i < k; i++ {
		pb.AddState(psioa.State(fmt.Sprintf("p%d", i)),
			psioa.NewSignature([]psioa.Action{pong}, []psioa.Action{ping}, nil))
		pb.AddState(psioa.State(fmt.Sprintf("w%d", i)),
			psioa.NewSignature([]psioa.Action{pong}, nil, nil))
		pb.AddDet(psioa.State(fmt.Sprintf("p%d", i)), ping, psioa.State(fmt.Sprintf("w%d", i)))
		next := psioa.State(fmt.Sprintf("p%d", i+1))
		if i == k-1 {
			next = "pdone"
		}
		pb.AddDet(psioa.State(fmt.Sprintf("w%d", i)), pong, next)
		pb.AddDet(psioa.State(fmt.Sprintf("p%d", i)), pong, psioa.State(fmt.Sprintf("p%d", i)))

		qb.AddState(psioa.State(fmt.Sprintf("r%d", i)),
			psioa.NewSignature([]psioa.Action{ping}, nil, nil))
		qb.AddState(psioa.State(fmt.Sprintf("s%d", i)),
			psioa.NewSignature([]psioa.Action{ping}, []psioa.Action{pong}, nil))
		qb.AddDet(psioa.State(fmt.Sprintf("r%d", i)), ping, psioa.State(fmt.Sprintf("s%d", i)))
		qb.AddDet(psioa.State(fmt.Sprintf("s%d", i)), ping, psioa.State(fmt.Sprintf("s%d", i)))
		rnext := psioa.State(fmt.Sprintf("r%d", i+1))
		if i == k-1 {
			rnext = "rdone"
		}
		qb.AddDet(psioa.State(fmt.Sprintf("s%d", i)), pong, rnext)
	}
	pb.AddState("pdone", psioa.NewSignature([]psioa.Action{pong}, nil, nil))
	pb.AddDet("pdone", pong, "pdone")
	qb.AddState("rdone", psioa.NewSignature([]psioa.Action{ping}, nil, nil))
	qb.AddDet("rdone", ping, "rdone")
	return pb.MustBuild(), qb.MustBuild()
}

// RandomWalk returns an automaton performing an internal biased random walk
// on a line of n+1 positions, emitting "hit_<id>" when it reaches position
// n. Used to generate larger execution trees for benchmarks.
func RandomWalk(id string, n int, p float64) *psioa.Table {
	step := psioa.Action("step_" + id)
	hit := psioa.Action("hit_" + id)
	b := psioa.NewBuilder(id, "x0")
	for i := 0; i < n; i++ {
		b.AddState(psioa.State(fmt.Sprintf("x%d", i)),
			psioa.NewSignature(nil, nil, []psioa.Action{step}))
		d := measure.New[psioa.State]()
		up := psioa.State(fmt.Sprintf("x%d", i+1))
		down := psioa.State(fmt.Sprintf("x%d", max(0, i-1)))
		if up == down {
			d.Add(up, 1)
		} else {
			d.Add(up, p)
			d.Add(down, 1-p)
		}
		b.AddTrans(psioa.State(fmt.Sprintf("x%d", i)), step, d)
	}
	b.AddState(psioa.State(fmt.Sprintf("x%d", n)),
		psioa.NewSignature(nil, []psioa.Action{hit}, nil))
	b.AddState("end", psioa.EmptySignature())
	b.AddDet(psioa.State(fmt.Sprintf("x%d", n)), hit, "end")
	return b.MustBuild()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RandomSpec parameterises RandomAutomaton.
type RandomSpec struct {
	// States is the number of states (≥ 1).
	States int
	// Actions is the number of distinct action names.
	Actions int
	// Branch is the maximum support size of each transition measure.
	Branch int
	// InputShare in [0,1] is the approximate fraction of actions placed in
	// the input component (the rest split between output and internal).
	InputShare float64
}

// RandomAutomaton generates a pseudo-random valid finite PSIOA from a
// deterministic stream — the workload generator for property-based tests
// and size sweeps. Every state enables every one of its signature actions
// (E1 holds by construction) and all transition measures are probability
// measures over declared states.
func RandomAutomaton(id string, spec RandomSpec, next func() uint64) *psioa.Table {
	if spec.States < 1 {
		spec.States = 1
	}
	if spec.Actions < 1 {
		spec.Actions = 1
	}
	if spec.Branch < 1 {
		spec.Branch = 1
	}
	rnd := func(n int) int { return int(next() % uint64(n)) }
	stateName := func(i int) psioa.State { return psioa.State(fmt.Sprintf("s%d", i)) }
	actName := func(i int) psioa.Action { return psioa.Action(fmt.Sprintf("a%d_%s", i, id)) }

	b := psioa.NewBuilder(id, stateName(0))
	type stateSig struct{ in, out, internal []psioa.Action }
	sigs := make([]stateSig, spec.States)
	for i := 0; i < spec.States; i++ {
		// Each state gets 1..3 actions with disjoint roles.
		n := 1 + rnd(3)
		used := map[int]bool{}
		var ss stateSig
		for j := 0; j < n; j++ {
			k := rnd(spec.Actions)
			if used[k] {
				continue
			}
			used[k] = true
			switch {
			case float64(rnd(1000))/1000 < spec.InputShare:
				ss.in = append(ss.in, actName(k))
			case rnd(2) == 0:
				ss.out = append(ss.out, actName(k))
			default:
				ss.internal = append(ss.internal, actName(k))
			}
		}
		sigs[i] = ss
		b.AddState(stateName(i), psioa.NewSignature(ss.in, ss.out, ss.internal))
	}
	for i := 0; i < spec.States; i++ {
		all := append(append(append([]psioa.Action(nil), sigs[i].in...), sigs[i].out...), sigs[i].internal...)
		for _, a := range all {
			support := 1 + rnd(spec.Branch)
			d := measure.New[psioa.State]()
			remaining := 1.0
			for j := 0; j < support; j++ {
				target := stateName(rnd(spec.States))
				p := remaining
				if j < support-1 {
					p = remaining * (float64(1+rnd(9)) / 10)
				}
				d.Add(target, p)
				remaining -= p
			}
			b.AddTrans(stateName(i), a, d)
		}
	}
	return b.MustBuild()
}
