// Package experiments implements the reproduction experiment suite E1–E18
// (see DESIGN.md §4 and EXPERIMENTS.md). The paper is a brief announcement
// with no empirical section, so each experiment validates one of its
// lemmas/theorems on calibrated instances and reports the measured
// quantities as a table. The cmd/dsebench tool prints all tables; the root
// benchmark suite exercises the same kernels under testing.B.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/adversary"
	"repro/internal/bounded"
	"repro/internal/core"
	"repro/internal/insight"
	"repro/internal/measure"
	"repro/internal/obs"
	"repro/internal/pca"
	"repro/internal/protocols/channel"
	"repro/internal/protocols/coin"
	"repro/internal/protocols/coinflip"
	"repro/internal/protocols/commitment"
	"repro/internal/protocols/dynchannel"
	"repro/internal/protocols/ledger"
	"repro/internal/psioa"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/structured"
	"repro/internal/testaut"
)

// Table is one experiment's output.
type Table struct {
	// ID is the experiment identifier (E1..E10).
	ID string `json:"id"`
	// Title states the claim under test with its paper reference.
	Title string `json:"title"`
	// Header names the columns.
	Header []string `json:"header"`
	// Rows are the measurements.
	Rows [][]string `json:"rows"`
	// Verdict summarises whether the paper's claim held.
	Verdict string `json:"verdict"`
	// Workers is the worker count the experiment's kernels ran with
	// (0 means the default sequential path and reports as 1).
	Workers int `json:"workers,omitempty"`
	// Kernel names the measure kernel exercised: "tree" (exact sequential
	// expansion), "parallel" (sharded frontier expansion) or "dag"
	// (state-collapsed forward propagation). Empty reports as "tree".
	Kernel string `json:"kernel,omitempty"`
	// Cluster names the verification-cluster topology the experiment ran
	// on (e.g. "in-process-3"); empty means a single local runner.
	Cluster string `json:"cluster,omitempty"`
	// Elapsed is the wall-clock runtime, filled in by Instrumented.
	Elapsed time.Duration `json:"-"`
}

// Pass reports whether the verdict is a PASS.
func (t *Table) Pass() bool { return !strings.HasPrefix(t.Verdict, "FAIL") }

// Result is the machine-readable form of a table, one JSON object per
// benchmark, emitted by dsebench -json so the perf trajectory can be
// tracked across revisions.
type Result struct {
	ID        string     `json:"id"`
	Title     string     `json:"title"`
	Verdict   string     `json:"verdict"`
	Pass      bool       `json:"pass"`
	ElapsedUS int64      `json:"elapsed_us"`
	Workers   int        `json:"workers"`
	Kernel    string     `json:"kernel"`
	Cluster   string     `json:"cluster,omitempty"`
	Header    []string   `json:"header"`
	Rows      [][]string `json:"rows"`
}

// Result converts the table, defaulting the kernel provenance fields so
// every benchmark object records how it was computed.
func (t *Table) Result() Result {
	workers := t.Workers
	if workers <= 0 {
		workers = 1
	}
	kernel := t.Kernel
	if kernel == "" {
		kernel = "tree"
	}
	return Result{
		ID:        t.ID,
		Title:     t.Title,
		Verdict:   t.Verdict,
		Pass:      t.Pass(),
		ElapsedUS: t.Elapsed.Microseconds(),
		Workers:   workers,
		Kernel:    kernel,
		Cluster:   t.Cluster,
		Header:    t.Header,
		Rows:      t.Rows,
	}
}

// Instrumented wraps an experiment runner with observability: a trace
// span, a per-experiment wall-time histogram in the default metrics
// registry, the table's Elapsed field, and a trace event carrying the
// verdict.
func Instrumented(id string, run func() (*Table, error)) func() (*Table, error) {
	return func() (*Table, error) {
		sp := obs.Begin("experiment", id)
		defer sp.End()
		defer obs.Time("experiment." + id + ".us")()
		start := time.Now()
		t, err := run()
		if err != nil || t == nil {
			return t, err
		}
		t.Elapsed = time.Since(start)
		if tr := obs.Active(); tr.Enabled() {
			tr.Emit(obs.Event{Kind: obs.KindExperiment, Name: id, Attr: t.Verdict, Dur: t.Elapsed.Microseconds()})
		}
		return t, nil
	}
}

// String renders the table in aligned plain text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "  %-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	fmt.Fprintf(&b, "  verdict: %s\n", t.Verdict)
	return b.String()
}

func f6(v float64) string { return fmt.Sprintf("%.6g", v) }

// E1CompositionBound measures Lemma 4.3/B.1: B(A₁‖A₂) ≤ c·(B₁+B₂) across a
// size sweep of explicit automata.
func E1CompositionBound() (*Table, error) {
	t := &Table{
		ID:     "E1",
		Title:  "composition of bounded PSIOA is bounded (Lemma 4.3/B.1)",
		Header: []string{"n1", "n2", "B1(bits)", "B2(bits)", "B12(bits)", "c=B12/(B1+B2)"},
	}
	worst := 0.0
	for _, n := range []int{2, 4, 8, 16, 32} {
		a1 := testaut.Counter("a1", n)
		a2 := testaut.Counter("a2", 2*n)
		r, err := bounded.CompositionBound(a1, a2, 100000)
		if err != nil {
			return nil, err
		}
		if r.C > worst {
			worst = r.C
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(2 * n),
			fmt.Sprint(r.B1), fmt.Sprint(r.B2), fmt.Sprint(r.B12), f6(r.C),
		})
	}
	t.Verdict = verdict(worst <= 3, fmt.Sprintf("linear bound with empirical c_comp = %s (paper: some universal constant)", f6(worst)))
	return t, nil
}

// E2PCACompositionBound measures Lemma B.2 on dynamic ledger hosts.
func E2PCACompositionBound() (*Table, error) {
	t := &Table{
		ID:     "E2",
		Title:  "composition of bounded PCA is bounded (Lemma B.2)",
		Header: []string{"subchains", "B1(bits)", "B2(bits)", "B12(bits)", "c"},
	}
	worst := 0.0
	for _, n := range []int{1, 2, 3} {
		x1, _ := ledger.Host("a", n, ledger.Direct)
		x2, _ := ledger.Host("b", n, ledger.Parity)
		d1, err := bounded.Describe(pca.DescAdapter{PCA: x1}, 100000)
		if err != nil {
			return nil, err
		}
		d2, err := bounded.Describe(pca.DescAdapter{PCA: x2}, 100000)
		if err != nil {
			return nil, err
		}
		comp, err := pca.ComposePCA(x1, x2)
		if err != nil {
			return nil, err
		}
		d12, err := bounded.Describe(pca.DescAdapter{PCA: comp}, 100000)
		if err != nil {
			return nil, err
		}
		c := float64(d12.B()) / float64(d1.B()+d2.B())
		if c > worst {
			worst = c
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(d1.B()), fmt.Sprint(d2.B()), fmt.Sprint(d12.B()), f6(c),
		})
	}
	t.Verdict = verdict(worst <= 3, fmt.Sprintf("linear bound with empirical c'_comp = %s", f6(worst)))
	return t, nil
}

// E3HidingBound measures Lemma 4.5/B.3 on growing hidden sets.
func E3HidingBound() (*Table, error) {
	t := &Table{
		ID:     "E3",
		Title:  "hiding of bounded automata is bounded (Lemma 4.5/B.3)",
		Header: []string{"n", "|S|", "B(A)", "B(S)(bits)", "B(hide)", "c"},
	}
	worst := 0.0
	for _, n := range []int{4, 8, 16} {
		a := testaut.Counter("a", n)
		for _, hiddenCount := range []int{1, 2} {
			s := psioa.NewActionSet()
			s.Add(psioa.Action("done_a"))
			if hiddenCount > 1 {
				s.Add("tick") // inputs are unaffected by hiding but size the recogniser
			}
			r, err := bounded.HidingBound(a, s, 100000)
			if err != nil {
				return nil, err
			}
			if r.C > worst {
				worst = r.C
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(n), fmt.Sprint(len(s)),
				fmt.Sprint(r.B1), fmt.Sprint(r.B2), fmt.Sprint(r.B12), f6(r.C),
			})
		}
	}
	t.Verdict = verdict(worst <= 1, fmt.Sprintf("empirical c_hide = %s (hiding never grows the description)", f6(worst)))
	return t, nil
}

func coinOpts(eps float64, q int) core.Options {
	return core.Options{
		Envs:    []psioa.PSIOA{coin.Env("x")},
		Schema:  &sched.ObliviousSchema{},
		Insight: insight.Trace(),
		Eps:     eps,
		Q1:      q, Q2: q,
	}
}

// E4Transitivity measures Theorem 4.16: ε₁₃ = ε₁₂ + ε₂₃ on calibrated coin
// chains.
func E4Transitivity() (*Table, error) {
	t := &Table{
		ID:     "E4",
		Title:  "implementation transitivity, ε13 = ε12+ε23 (Theorem 4.16/B.4)",
		Header: []string{"δ", "ε12", "ε23", "measured ε13", "ε12+ε23", "tight?"},
	}
	ok := true
	for _, delta := range []float64{0.25, 0.125, 0.0625, 0.03125} {
		a1 := coin.Flipper("x", 0.5+2*delta)
		a2 := coin.Flipper("x", 0.5+delta)
		a3 := coin.Fair("x")
		r12, err := core.ImplementsWitness(a1, a2, core.IdentityWitness(), coinOpts(delta, 3))
		if err != nil {
			return nil, err
		}
		r23, err := core.ImplementsWitness(a2, a3, core.IdentityWitness(), coinOpts(delta, 3))
		if err != nil {
			return nil, err
		}
		w13 := core.ComposeWitnesses(a2, core.IdentityWitness(), core.IdentityWitness())
		r13, err := core.ImplementsWitness(a1, a3, w13, coinOpts(2*delta, 3))
		if err != nil {
			return nil, err
		}
		tight := r12.Holds && r23.Holds && r13.Holds &&
			abs(r13.MaxDist-(r12.MaxDist+r23.MaxDist)) < 1e-9
		ok = ok && tight
		t.Rows = append(t.Rows, []string{
			f6(delta), f6(r12.MaxDist), f6(r23.MaxDist), f6(r13.MaxDist),
			f6(r12.MaxDist + r23.MaxDist), fmt.Sprint(tight),
		})
	}
	t.Verdict = verdict(ok, "triangle equality exact on the calibrated chain")
	return t, nil
}

// E5Composability measures Lemma 4.13: the context A₃ neither helps nor
// hurts the distinguisher.
func E5Composability() (*Table, error) {
	t := &Table{
		ID:     "E5",
		Title:  "composability of approximate implementation (Lemma 4.13)",
		Header: []string{"δ", "premise dist (A1≤A2 vs E||A3)", "conclusion dist (A3||A1≤A3||A2 vs E)", "equal?"},
	}
	schema := &sched.PrefixPrioritySchema{Templates: [][]string{
		{"flip_x", "result"}, {"result", "flip_x"},
	}}
	ok := true
	for _, delta := range []float64{0.25, 0.125, 0.0625} {
		a1 := coin.Flipper("x", 0.5+delta)
		a2 := coin.Fair("x")
		a3 := coin.Fair("y")
		env := coin.Env("x")
		premise, err := core.Implements(a1, a2, core.Options{
			Envs: []psioa.PSIOA{psioa.MustCompose(env, a3)}, Schema: schema,
			Insight: insight.Trace(), Eps: delta, Q1: 4, Q2: 4,
		})
		if err != nil {
			return nil, err
		}
		left, right, err := core.ComposeContext(a3, a1, a2)
		if err != nil {
			return nil, err
		}
		conclusion, err := core.Implements(left, right, core.Options{
			Envs: []psioa.PSIOA{env}, Schema: schema,
			Insight: insight.Trace(), Eps: delta, Q1: 4, Q2: 4,
		})
		if err != nil {
			return nil, err
		}
		eq := premise.Holds && conclusion.Holds && abs(premise.MaxDist-conclusion.MaxDist) < 1e-9
		ok = ok && eq
		t.Rows = append(t.Rows, []string{f6(delta), f6(premise.MaxDist), f6(conclusion.MaxDist), fmt.Sprint(eq)})
	}
	t.Verdict = verdict(ok, "context preserves the distance exactly (flattened composition)")
	return t, nil
}

// E6FamilyNegPt measures Lemma 4.14/Theorem 4.15 material: the leaky coin
// family is ≤_{neg,pt} the fair family with ε(k)=2^-k, also under context.
func E6FamilyNegPt() (*Table, error) {
	t := &Table{
		ID:     "E6",
		Title:  "family implementation and ≤_{neg,pt} (Lemma 4.14 / Theorem 4.15)",
		Header: []string{"k", "ε(k)=2^-k", "measured dist", "with context A3", "≤ 2^-k?"},
	}
	fam := coin.Family("x")
	fair := coin.FairFamily("x")
	ctx := bounded.Family(func(k int) psioa.PSIOA { return coin.Fair("y") })
	cfam := core.ContextFamily(ctx, fam)
	cfair := core.ContextFamily(ctx, fair)
	schema := &sched.PrefixPrioritySchema{Templates: [][]string{{"flip_x", "result"}}}
	ok := true
	for k := 1; k <= 8; k++ {
		eps := bounded.Negl(2)(k)
		rep, err := core.Implements(fam(k), fair(k), coinOpts(eps, 3))
		if err != nil {
			return nil, err
		}
		crep, err := core.Implements(cfam(k), cfair(k), core.Options{
			Envs: []psioa.PSIOA{coin.Env("x")}, Schema: schema,
			Insight: insight.Trace(), Eps: eps, Q1: 4, Q2: 4,
		})
		if err != nil {
			return nil, err
		}
		pass := rep.Holds && crep.Holds && rep.MaxDist <= eps+1e-12
		ok = ok && pass
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k), f6(eps), f6(rep.MaxDist), f6(crep.MaxDist), fmt.Sprint(pass),
		})
	}
	t.Verdict = verdict(ok, "negligible error curve matched exactly, preserved by composition")
	return t, nil
}

// E7DummyInsertion measures Lemma 4.29/D.1: ε = 0 balance between the
// direct and dummy-mediated worlds, with the 2× scheduler-bound overhead.
func E7DummyInsertion() (*Table, error) {
	t := &Table{
		ID:     "E7",
		Title:  "dummy adversary insertion (Lemma 4.29/D.1)",
		Header: []string{"scheduler", "f-dist distance", "len(W1 exec)", "len(W2 exec)", "ratio ≤ 2?"},
	}
	env := channel.Env("x", 1)
	a := channel.Real("x")
	adv := psioa.RenameMap(channel.Eavesdropper("x"), channel.G("x"))
	ctx, err := adversary.NewForwardCtx(env, a, adv, channel.G("x"), 10000)
	if err != nil {
		return nil, err
	}
	mk := func(name string, order []string) sched.Scheduler {
		ss, err := (&sched.PrefixPrioritySchema{Templates: [][]string{order}}).Enumerate(ctx.W1, 8)
		if err != nil {
			panic(err)
		}
		return &sched.FuncSched{ID: name, Fn: ss[0].Choose}
	}
	cases := []struct {
		name string
		s    sched.Scheduler
	}{
		{"observe-then-deliver", mk("otd", []string{"send", "encrypt", "g_tap", "guess", "deliver"})},
		{"deliver-only", mk("d", []string{"send", "encrypt", "deliver"})},
		{"block-early", mk("be", []string{"send", "encrypt", "g_tap", "g_block", "deliver"})},
		{"uniform-random", &sched.Random{A: ctx.W1, Bound: 6, LocalOnly: true}},
	}
	ok := true
	for _, cse := range cases {
		s2 := ctx.ForwardSched(cse.s)
		d1, err := insight.FDist(ctx.W1, cse.s, insight.Trace(), 30)
		if err != nil {
			return nil, err
		}
		d2, err := insight.FDist(ctx.W2, s2, insight.Trace(), 30)
		if err != nil {
			return nil, err
		}
		dist := insight.Distance(d1, d2)
		em1, err := sched.Measure(ctx.W1, cse.s, 30)
		if err != nil {
			return nil, err
		}
		em2, err := sched.Measure(ctx.W2, s2, 30)
		if err != nil {
			return nil, err
		}
		ratioOK := em2.MaxLen() <= 2*em1.MaxLen()
		pass := dist < 1e-9 && ratioOK
		ok = ok && pass
		t.Rows = append(t.Rows, []string{
			cse.name, f6(dist), fmt.Sprint(em1.MaxLen()), fmt.Sprint(em2.MaxLen()), fmt.Sprint(ratioOK),
		})
	}
	t.Verdict = verdict(ok, "perfect (ε=0) balance; forwarded schedulers within the 2·q1 bound")
	return t, nil
}

// E8SecureEmulation measures Def 4.26 and Theorem 4.30: the OTP channel
// securely emulates the ideal channel (exactly), the leak sweep calibrates
// the emulation error, and the composed simulator construction works.
func E8SecureEmulation() (*Table, error) {
	t := &Table{
		ID:     "E8",
		Title:  "dynamic secure emulation and its composability (Def 4.26, Theorem 4.30)",
		Header: []string{"system", "leak", "ε needed", "measured dist", "holds"},
	}
	schema := &sched.PrefixPrioritySchema{Templates: [][]string{
		{"send", "encrypt", "tap", "notify", "fabricate", "g_tap", "guess", "deliver"},
		{"send", "encrypt", "tap", "notify", "fabricate", "g_tap", "g_block", "block", "guess", "deliver"},
		{"send", "encrypt", "tap", "notify", "deliver"},
	}}
	single := func(leak float64) (*core.EmulationReport, error) {
		return core.SecureEmulates(
			channel.LeakyReal("x", leak), channel.Ideal("x"),
			[]core.AdvSim{{Adv: channel.Eavesdropper("x"), Sim: channel.SimFor("x")}},
			core.Options{
				Envs:    []psioa.PSIOA{channel.Env("x", 0), channel.Env("x", 1)},
				Schema:  schema,
				Insight: insight.Trace(),
				Eps:     leak / 2,
				Q1:      8, Q2: 8,
			}, 50000)
	}
	ok := true
	for _, leak := range []float64{0, 0.125, 0.25, 0.5} {
		rep, err := single(leak)
		if err != nil {
			return nil, err
		}
		dist := 0.0
		for _, r := range rep.PerAdv {
			if r.MaxDist > dist {
				dist = r.MaxDist
			}
		}
		ok = ok && rep.Holds
		t.Rows = append(t.Rows, []string{
			"OTP(single)", f6(leak), f6(leak / 2), f6(dist), fmt.Sprint(rep.Holds),
		})
	}
	// Theorem 4.30: composed instances with the constructed simulator.
	realHat := structured.MustCompose(channel.Real("a"), channel.Real("b"))
	idealHat := structured.MustCompose(channel.Ideal("a"), channel.Ideal("b"))
	g := channel.G("a")
	for k, v := range channel.G("b") {
		g[k] = v
	}
	adv := psioa.MustCompose(channel.Eavesdropper("a"), channel.Eavesdropper("b"))
	sim, err := core.ComposedSimulator(g, []psioa.PSIOA{channel.DummySim("a"), channel.DummySim("b")}, adv)
	if err != nil {
		return nil, err
	}
	var envs []psioa.PSIOA
	for m1 := 0; m1 < 2; m1++ {
		for m2 := 0; m2 < 2; m2++ {
			envs = append(envs, psioa.MustCompose(channel.Env("a", m1), channel.Env("b", m2)))
		}
	}
	rep, err := core.SecureEmulates(realHat, idealHat,
		[]core.AdvSim{{Adv: adv, Sim: sim}},
		core.Options{Envs: envs, Schema: schema, Insight: insight.Trace(), Eps: 0, Q1: 16, Q2: 16},
		10000)
	if err != nil {
		return nil, err
	}
	dist := 0.0
	for _, r := range rep.PerAdv {
		if r.MaxDist > dist {
			dist = r.MaxDist
		}
	}
	ok = ok && rep.Holds
	t.Rows = append(t.Rows, []string{"OTP×2 composed (Thm 4.30 Sim)", "0", "0", f6(dist), fmt.Sprint(rep.Holds)})
	t.Verdict = verdict(ok, "emulation error = leak/2 exactly; composed simulator achieves ε=0")
	return t, nil
}

// E9DynamicCreation measures the §4.4 creation-obliviousness scenario on
// the ledger hosts.
func E9DynamicCreation() (*Table, error) {
	t := &Table{
		ID:     "E9",
		Title:  "dynamic creation and creation-oblivious scheduling (§4.4)",
		Header: []string{"subchains", "reachable configs (direct)", "reachable (parity)", "perception distance", "oblivious factoring"},
	}
	ok := true
	for _, n := range []int{1, 2} {
		xd, _ := ledger.Host("m", n, ledger.Direct)
		xp, _ := ledger.Host("m", n, ledger.Parity)
		exd, err := psioa.Explore(xd, 100000)
		if err != nil {
			return nil, err
		}
		exp, err := psioa.Explore(xp, 100000)
		if err != nil {
			return nil, err
		}
		var order []psioa.Action
		for i := 0; i < n; i++ {
			order = append(order,
				psioa.Action(fmt.Sprintf("sample_%d_m", i)),
				psioa.Action(fmt.Sprintf("sample_%d_m2", i)),
				ledger.Sealed("m", i, 0), ledger.Sealed("m", i, 1))
		}
		order = append(order, ledger.Open("m"))
		sd := &sched.Priority{A: xd, Bound: 6 * n, LocalOnly: true, Order: order}
		sp := &sched.Priority{A: xp, Bound: 6 * n, LocalOnly: true, Order: order}
		dd, err := insight.FDist(xd, sd, insight.Trace(), 8*n)
		if err != nil {
			return nil, err
		}
		dp, err := insight.FDist(xp, sp, insight.Trace(), 8*n)
		if err != nil {
			return nil, err
		}
		dist := insight.Distance(dd, dp)
		seq := &sched.Sequence{A: xd, LocalOnly: true, Acts: []psioa.Action{ledger.Open("m"), "sample_0_m"}}
		factErr := sched.FactorsThrough(xd, seq, ledger.MaskView(xd, "m"), 8*n)
		pass := dist < 1e-9 && factErr == nil
		ok = ok && pass
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(len(exd.States)), fmt.Sprint(len(exp.States)),
			f6(dist), fmt.Sprint(factErr == nil),
		})
	}
	t.Verdict = verdict(ok, "trace-equivalent dynamic children keep the hosts indistinguishable")
	return t, nil
}

// E10Scaling measures the exact execution-measure computation cost against
// scheduler depth and system width.
func E10Scaling() (*Table, error) {
	t := &Table{
		ID:     "E10",
		Title:  "exact execution-measure computation: support and cost scaling",
		Header: []string{"walk length", "bound", "support size", "time"},
	}
	for _, n := range []int{4, 8, 12} {
		for _, bnd := range []int{8, 12, 16} {
			w := testaut.RandomWalk("w", n, 0.5)
			s := &sched.Greedy{A: w, Bound: bnd, LocalOnly: true}
			start := time.Now()
			em, err := sched.Measure(w, s, bnd+2)
			if err != nil {
				return nil, err
			}
			elapsed := time.Since(start)
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(n), fmt.Sprint(bnd), fmt.Sprint(em.Len()), elapsed.Round(time.Microsecond).String(),
			})
		}
	}
	t.Verdict = "PASS — support grows with branching × depth; exact computation feasible for protocol-scale systems"
	return t, nil
}

// E11DynamicEmulation measures the scenario the paper's introduction
// motivates and no prior framework expresses: a *dynamic* host creating
// secure-channel sessions at run time, where the real host (creating OTP
// sessions) securely emulates the ideal host (creating ideal-functionality
// sessions) with the session simulators composed.
func E11DynamicEmulation() (*Table, error) {
	t := &Table{
		ID:     "E11",
		Title:  "dynamic secure emulation of run-time-created sessions (paper's motivating scenario)",
		Header: []string{"sessions", "reachable real configs", "reachable ideal configs", "measured dist", "holds"},
	}
	schema := &sched.PrefixPrioritySchema{Templates: [][]string{
		{"open", "send", "encrypt", "tap", "notify", "fabricate", "guess", "deliver"},
		{"open", "send", "encrypt", "tap", "notify", "fabricate", "guess"},
		{"open", "send", "encrypt", "tap", "notify", "deliver"},
	}}
	ok := true
	for _, n := range []int{1, 2} {
		real := dynchannel.Host("d", n, dynchannel.RealKind)
		ideal := dynchannel.Host("d", n, dynchannel.IdealKind)
		exr, err := psioa.Explore(real, 100000)
		if err != nil {
			return nil, err
		}
		exi, err := psioa.Explore(ideal, 100000)
		if err != nil {
			return nil, err
		}
		var envs []psioa.PSIOA
		if n == 1 {
			envs = []psioa.PSIOA{dynchannel.Env("d", []int{0}), dynchannel.Env("d", []int{1})}
		} else {
			for m1 := 0; m1 < 2; m1++ {
				for m2 := 0; m2 < 2; m2++ {
					envs = append(envs, dynchannel.Env("d", []int{m1, m2}))
				}
			}
		}
		rep, err := core.SecureEmulates(real, ideal,
			[]core.AdvSim{{Adv: dynchannel.Adversary("d", n), Sim: dynchannel.Simulator("d", n)}},
			core.Options{
				Envs: envs, Schema: schema, Insight: insight.Trace(),
				Eps: 0, Q1: 10 * n, Q2: 10 * n,
			}, 20000)
		if err != nil {
			return nil, err
		}
		dist := 0.0
		for _, r := range rep.PerAdv {
			if r.MaxDist > dist {
				dist = r.MaxDist
			}
		}
		ok = ok && rep.Holds
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(len(exr.States)), fmt.Sprint(len(exi.States)),
			f6(dist), fmt.Sprint(rep.Holds),
		})
	}
	t.Verdict = verdict(ok, "run-time-created real sessions perfectly emulate run-time-created ideal sessions")
	return t, nil
}

// E12Commitment measures the stateful-simulator calibration: the
// perfectly-hiding commitment protocol emulates the ideal commitment
// functionality at ε = 0 with the consistency-keeping simulator, while the
// forgetful simulator (independent pad at open) fails at exactly 1/2.
func E12Commitment() (*Table, error) {
	t := &Table{
		ID:     "E12",
		Title:  "stateful simulator calibration on bit commitment (Def 4.26 negative control)",
		Header: []string{"simulator", "ε", "measured dist", "holds"},
	}
	opts := func(eps float64) core.Options {
		return core.Options{
			Envs: []psioa.PSIOA{commitment.Env("x", 0), commitment.Env("x", 1)},
			Schema: &sched.PrefixPrioritySchema{Templates: [][]string{
				{"commit", "blind", "tapc", "committed", "fabc", "seec", "open_x", "tapp", "opened", "fabp", "seep", "reveal"},
				{"commit", "blind", "tapc", "committed", "fabc", "seec", "open_x"},
				{"commit", "blind", "tapc", "committed", "fabc", "seec"},
			}},
			Insight: insight.Trace(),
			Eps:     eps,
			Q1:      12, Q2: 12,
		}
	}
	run := func(sim psioa.PSIOA, eps float64) (float64, bool, error) {
		rep, err := core.SecureEmulates(commitment.Real("x"), commitment.Ideal("x"),
			[]core.AdvSim{{Adv: commitment.Observer("x"), Sim: sim}}, opts(eps), 50000)
		if err != nil {
			return 0, false, err
		}
		dist := 0.0
		for _, r := range rep.PerAdv {
			if r.MaxDist > dist {
				dist = r.MaxDist
			}
		}
		return dist, rep.Holds, nil
	}
	ok := true
	dist, holds, err := run(commitment.Sim("x"), 0)
	if err != nil {
		return nil, err
	}
	ok = ok && holds && dist < 1e-9
	t.Rows = append(t.Rows, []string{"consistent (correct)", "0", f6(dist), fmt.Sprint(holds)})
	dist, holds, err = run(commitment.ForgetfulSim("x"), 0)
	if err != nil {
		return nil, err
	}
	ok = ok && !holds && abs(dist-0.5) < 1e-9
	t.Rows = append(t.Rows, []string{"forgetful (wrong)", "0", f6(dist), fmt.Sprint(holds)})
	dist, holds, err = run(commitment.ForgetfulSim("x"), 0.5)
	if err != nil {
		return nil, err
	}
	ok = ok && holds
	t.Rows = append(t.Rows, []string{"forgetful (wrong)", "0.5", f6(dist), fmt.Sprint(holds)})
	t.Verdict = verdict(ok, "correct simulator exact at 0; wrong simulator fails by exactly the consistency defect 1/2")
	return t, nil
}

// E13CreationMonotonicity measures the §4.4 monotonicity scenario end to
// end: trace-equivalent children plus a creation-oblivious schema imply
// host indistinguishability.
func E13CreationMonotonicity() (*Table, error) {
	t := &Table{
		ID:     "E13",
		Title:  "monotonicity of implementation w.r.t. creation under creation-oblivious scheduling (§4.4/[7])",
		Header: []string{"level", "max distance", "holds"},
	}
	seqs := func(withOpen bool) sched.Schema {
		prefix := []psioa.Action{}
		if withOpen {
			prefix = append(prefix, ledger.Open("m"))
		}
		mk := func(tail ...psioa.Action) []psioa.Action { return append(append([]psioa.Action{}, prefix...), tail...) }
		all := [][]psioa.Action{
			mk("sample_0_m", "sample_0_m2", ledger.Sealed("m", 0, 0)),
			mk("sample_0_m", "sample_0_m2", ledger.Sealed("m", 0, 1)),
			mk("sample_0_m", "sample_0_m2"),
		}
		return &sched.FixedSchema{ID: "ledger-seqs", Default: func(a psioa.PSIOA, bound int) []sched.Scheduler {
			out := make([]sched.Scheduler, len(all))
			for i, s := range all {
				out[i] = &sched.Sequence{A: a, Acts: s, LocalOnly: true}
			}
			return out
		}}
	}
	childOpt := core.Options{
		Envs: []psioa.PSIOA{psioa.Null("nullenv")}, Schema: seqs(false),
		Insight: insight.Trace(), Eps: 0, Q1: 4, Q2: 4,
	}
	hostOpt := core.Options{
		Envs: []psioa.PSIOA{psioa.Null("nullenv")}, Schema: seqs(true),
		Insight: insight.Trace(), Eps: 0, Q1: 5, Q2: 5,
	}
	hostA, _ := ledger.Host("m", 1, ledger.Direct)
	hostB, _ := ledger.Host("m", 1, ledger.Parity)
	rep, err := core.CreationMonotonicity(
		ledger.Subchain("m", 0, ledger.Direct), ledger.Subchain("m", 0, ledger.Parity),
		hostA, hostB, []string{"host_m"}, childOpt, hostOpt)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"children (A ≤ B)", f6(rep.Child.MaxDist), fmt.Sprint(rep.Child.Holds)})
	t.Rows = append(t.Rows, []string{"hosts (X_A ≤ X_B)", f6(rep.Host.MaxDist), fmt.Sprint(rep.Host.Holds)})
	t.Verdict = verdict(rep.Holds(), "child implementation lifts to the dynamic hosts under the creation-oblivious schema")
	return t, nil
}

// E14CoinFlipping measures the XOR coin-flipping trilogy: secure against
// passive adversaries (ε = 0 w.r.t. the strong ideal coin), broken by a
// rushing adversary by exactly 1/2, and repaired by the weak (biasable)
// ideal functionality.
func E14CoinFlipping() (*Table, error) {
	t := &Table{
		ID:     "E14",
		Title:  "XOR coin flipping: passive security, rushing attack, weak-functionality repair",
		Header: []string{"scenario", "ideal", "measured dist", "holds"},
	}
	passive := core.Options{
		Envs: []psioa.PSIOA{coinflip.Env("x")},
		Schema: &sched.PrefixPrioritySchema{Templates: [][]string{
			{"pick", "share", "see", "toss", "announce", "fabshare", "result"},
			{"pick", "share", "see", "toss", "announce", "fabshare"},
		}},
		Insight: insight.Trace(), Eps: 0, Q1: 12, Q2: 12,
	}
	rushing := core.Options{
		Envs: []psioa.PSIOA{coinflip.Env("x")},
		Schema: &sched.PrefixPrioritySchema{Templates: [][]string{
			{"pick", "share", "bias1", "toss", "announce", "result"},
		}},
		Insight: insight.Trace(), Eps: 0, Q1: 10, Q2: 10,
	}
	run := func(label, ideal string, real, idl structured.SPSIOA, adv, sim psioa.PSIOA, opt core.Options) (float64, bool, error) {
		rep, err := core.SecureEmulates(real, idl, []core.AdvSim{{Adv: adv, Sim: sim}}, opt, 50000)
		if err != nil {
			return 0, false, err
		}
		dist := 0.0
		for _, r := range rep.PerAdv {
			if r.MaxDist > dist {
				dist = r.MaxDist
			}
		}
		t.Rows = append(t.Rows, []string{label, ideal, f6(dist), fmt.Sprint(rep.Holds)})
		return dist, rep.Holds, nil
	}
	ok := true
	_, holds, err := run("honest + passive adversary", "strong coin",
		coinflip.Real("x", 2), coinflip.Ideal("x"),
		coinflip.PassiveAdv("x", 2), coinflip.PassiveSim("x"), passive)
	if err != nil {
		return nil, err
	}
	ok = ok && holds
	dist, holds, err := run("corrupt player + rushing adversary", "strong coin",
		coinflip.RealCorrupt("x", 2), coinflip.Ideal("x"),
		coinflip.RushingAdv("x"), coinflip.NullSim("x"), rushing)
	if err != nil {
		return nil, err
	}
	ok = ok && !holds && abs(dist-0.5) < 1e-9
	_, holds, err = run("corrupt player + rushing adversary", "weak (biasable) coin",
		coinflip.RealCorrupt("x", 2), coinflip.WeakIdeal("x"),
		coinflip.RushingAdv("x"), coinflip.RushSim("x"), rushing)
	if err != nil {
		return nil, err
	}
	ok = ok && holds
	t.Verdict = verdict(ok, "passive ε=0; rushing bias exactly 1/2 against the strong coin; weak coin repairs it")
	return t, nil
}

// E15FamilyEmulation measures Def 4.26 in its native family form: the
// leaky-pad channel family (leak 2^-k) securely emulates the ideal channel
// family with the negligible error curve 2^-(k+1), measured exactly.
func E15FamilyEmulation() (*Table, error) {
	t := &Table{
		ID:     "E15",
		Title:  "family-level secure emulation ≤_SE with negligible error (Def 4.26 verbatim)",
		Header: []string{"k", "leak 2^-k", "ε(k)", "measured dist", "holds"},
	}
	real := core.SFamily(func(k int) structured.SPSIOA {
		return channel.LeakyReal("x", bounded.Negl(2)(k))
	})
	ideal := core.SFamily(func(k int) structured.SPSIOA { return channel.Ideal("x") })
	cases := []core.AdvSimFamily{{
		Adv: func(k int) psioa.PSIOA { return channel.Eavesdropper("x") },
		Sim: func(k int) psioa.PSIOA { return channel.SimFor("x") },
	}}
	optFor := func(k int) core.Options {
		return core.Options{
			Envs: []psioa.PSIOA{channel.Env("x", 0), channel.Env("x", 1)},
			Schema: &sched.PrefixPrioritySchema{Templates: [][]string{
				{"send", "encrypt", "tap", "notify", "fabricate", "g_tap", "guess", "deliver"},
				{"send", "encrypt", "tap", "notify", "deliver"},
			}},
			Insight: insight.Trace(),
			Eps:     bounded.Negl(2)(k) / 2,
			Q1:      8, Q2: 8,
		}
	}
	rep, err := core.SecureEmulatesFamily(real, ideal, cases, optFor, 1, 7, 50000)
	if err != nil {
		return nil, err
	}
	f := rep.MaxDistFn()
	ok := rep.Holds
	for k := 1; k <= 7; k++ {
		eps := bounded.Negl(2)(k) / 2
		ok = ok && abs(f(k)-eps) < 1e-9
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k), f6(bounded.Negl(2)(k)), f6(eps), f6(f(k)), fmt.Sprint(rep.PerK[k].Holds),
		})
	}
	if err := core.NegPtEmulation(rep, bounded.Negl(2), 1, 7); err != nil {
		ok = false
	}
	t.Verdict = verdict(ok, "emulation error is exactly leak/2 = 2^-(k+1), a negligible function")
	return t, nil
}

// E16SchedulingRole measures the role-of-scheduling phenomenon the paper
// inherits from Canetti et al. [5]: a system resolving a choice by internal
// randomness is implemented by a system leaving the choice to the scheduler
// only if the scheduler schema contains *probabilistic* schedulers. With
// deterministic off-line schedulers the relation fails by exactly 1/2; with
// convex mixtures (Def 3.1's sub-probability choices) it holds at ε = 0.
func E16SchedulingRole() (*Table, error) {
	t := &Table{
		ID:     "E16",
		Title:  "the role of scheduling ([5]): matching internal randomness needs probabilistic schedulers",
		Header: []string{"right-side schema", "measured dist", "holds at ε=0"},
	}
	// S1 resolves the choice internally (uniform flip, then announce).
	s1 := testaut.Coin("c", 0.5)
	// S2 leaves the choice to the scheduler: both announcements enabled.
	s2 := psioa.NewBuilder("c2", "n0").
		AddState("n0", psioa.NewSignature(nil, []psioa.Action{"heads_c", "tails_c"}, nil)).
		AddState("done", psioa.EmptySignature()).
		AddDet("n0", "heads_c", "done").
		AddDet("n0", "tails_c", "done").
		MustBuild()
	leftSched := func(a psioa.PSIOA, bound int) []sched.Scheduler {
		return []sched.Scheduler{
			&sched.Priority{A: a, Order: []psioa.Action{"flip_c", "heads_c", "tails_c"}, Bound: bound, LocalOnly: true},
		}
	}
	det := func(a psioa.PSIOA, bound int) []sched.Scheduler {
		if a.ID() != "nullenv||c2" {
			return leftSched(a, bound)
		}
		return []sched.Scheduler{
			&sched.Sequence{A: a, Acts: []psioa.Action{"heads_c"}, LocalOnly: true},
			&sched.Sequence{A: a, Acts: []psioa.Action{"tails_c"}, LocalOnly: true},
		}
	}
	mixed := func(a psioa.PSIOA, bound int) []sched.Scheduler {
		base := det(a, bound)
		if a.ID() != "nullenv||c2" {
			return base
		}
		return append(base, &sched.Mix{Weights: []float64{0.5, 0.5}, Inner: base})
	}
	ok := true
	for _, cse := range []struct {
		name    string
		schema  func(a psioa.PSIOA, bound int) []sched.Scheduler
		holds   bool
		wantEps float64
	}{
		{"deterministic off-line", det, false, 0.5},
		{"with convex mixtures", mixed, true, 0},
	} {
		rep, err := core.Implements(s1, s2, core.Options{
			Envs:    []psioa.PSIOA{psioa.Null("nullenv")},
			Schema:  &sched.FixedSchema{ID: cse.name, Default: cse.schema},
			Insight: insight.Trace(),
			Eps:     0,
			Q1:      3, Q2: 3,
		})
		if err != nil {
			return nil, err
		}
		pass := rep.Holds == cse.holds && abs(rep.MaxDist-cse.wantEps) < 1e-9
		ok = ok && pass
		t.Rows = append(t.Rows, []string{cse.name, f6(rep.MaxDist), fmt.Sprint(rep.Holds)})
	}
	t.Verdict = verdict(ok, "deterministic schedulers miss by exactly 1/2; a 50/50 mixture matches exactly")
	return t, nil
}

// E17SamplingConvergence measures the Monte-Carlo estimator of f-dist
// against the exact computation: the total-variation error decays as
// ~1/sqrt(n) — the figure-style dataset for choosing between the exact and
// sampled pipelines.
func E17SamplingConvergence() (*Table, error) {
	t := &Table{
		ID:     "E17",
		Title:  "Monte-Carlo f-dist estimation: TV error vs sample count (~1/sqrt(n))",
		Header: []string{"samples", "TV error", "error·sqrt(n)"},
	}
	w := testaut.RandomWalk("w", 6, 0.5)
	s := &sched.Greedy{A: w, Bound: 10, LocalOnly: true}
	em, err := sched.Measure(w, s, 12)
	if err != nil {
		return nil, err
	}
	traceOf := func(f *psioa.Frag) string { return f.TraceKey(w) }
	exact := em.Image(traceOf)
	stream := rng.New(20260705)
	ok := true
	first, last := -1.0, 0.0
	for _, n := range []int{100, 1000, 10000, 100000} {
		est, err := sched.SampleImage(w, s, stream.Split(uint64(n)), 12, n, traceOf)
		if err != nil {
			return nil, err
		}
		tv := measure.TVDistance(exact, est)
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), f6(tv), f6(tv * sqrt(float64(n)))})
		// The normalised error stays O(1) (individual steps fluctuate).
		if tv*sqrt(float64(n)) > 1 {
			ok = false
		}
		if first < 0 {
			first = tv
		}
		last = tv
	}
	ok = ok && last < first
	t.Verdict = verdict(ok, "error decays overall; normalised error·sqrt(n) stays bounded")
	return t, nil
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 40; i++ {
		x = 0.5 * (x + v/x)
	}
	return x
}

// Runners returns every experiment keyed by id, each wrapped with
// Instrumented, in suite order.
func Runners() (ids []string, byID map[string]func() (*Table, error)) {
	type entry struct {
		id  string
		run func() (*Table, error)
	}
	entries := []entry{
		{"E1", E1CompositionBound}, {"E2", E2PCACompositionBound}, {"E3", E3HidingBound},
		{"E4", E4Transitivity}, {"E5", E5Composability}, {"E6", E6FamilyNegPt},
		{"E7", E7DummyInsertion}, {"E8", E8SecureEmulation}, {"E9", E9DynamicCreation},
		{"E10", E10Scaling}, {"E11", E11DynamicEmulation}, {"E12", E12Commitment},
		{"E13", E13CreationMonotonicity}, {"E14", E14CoinFlipping}, {"E15", E15FamilyEmulation},
		{"E16", E16SchedulingRole}, {"E17", E17SamplingConvergence},
		{"E18", E18EngineEquivalence},
		{"E19", E19ParallelMeasure}, {"E20", E20DAGCollapse},
		{"E21", E21ShardTelemetry},
		{"E22", E22ClusterEquivalence},
		{"E23", E23InternedCore},
	}
	byID = make(map[string]func() (*Table, error), len(entries))
	for _, e := range entries {
		ids = append(ids, e.id)
		byID[e.id] = Instrumented(e.id, e.run)
	}
	return ids, byID
}

// All runs every experiment in order.
func All() ([]*Table, error) {
	ids, byID := Runners()
	out := make([]*Table, 0, len(ids))
	for _, id := range ids {
		tbl, err := byID[id]()
		if err != nil {
			return out, err
		}
		out = append(out, tbl)
	}
	return out, nil
}

func verdict(ok bool, detail string) string {
	if ok {
		return "PASS — " + detail
	}
	return "FAIL — " + detail
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
