package experiments

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/protocols/channel"
	"repro/internal/psioa"
)

// e22Limit bounds the reachability analyses, matching the E18 sweep.
const e22Limit = 50000

// e22Resolve maps the experiment's reference vocabulary onto the Def 4.26
// comparison objects of the E8/E18 leaky-channel emulation:
//
//	e22:left:<leak> → hide(LeakyReal(x,leak)‖Eavesdropper(x), AAct)
//	e22:right       → hide(Ideal(x)‖SimFor(x), AAct)
//	e22:env:<bit>   → the environment sending bit 0 or 1
//
// Every cluster worker installs the same table, so a check job shipped to
// any node resolves to the same automata — the cluster analogue of the
// shared spec registry.
func e22Resolve(ref string) (psioa.PSIOA, error) {
	switch {
	case strings.HasPrefix(ref, "e22:left:"):
		leak, err := strconv.ParseFloat(strings.TrimPrefix(ref, "e22:left:"), 64)
		if err != nil {
			return nil, fmt.Errorf("experiments: bad leak in ref %q: %w", ref, err)
		}
		return core.HideAAct(channel.LeakyReal("x", leak), channel.Eavesdropper("x"), e22Limit)
	case ref == "e22:right":
		return core.HideAAct(channel.Ideal("x"), channel.SimFor("x"), e22Limit)
	case ref == "e22:env:0":
		return channel.Env("x", 0), nil
	case ref == "e22:env:1":
		return channel.Env("x", 1), nil
	default:
		return nil, fmt.Errorf("experiments: unknown e22 ref %q", ref)
	}
}

// e22Job is the check job for one leak value: the same comparison
// SecureEmulates performs for the single adversary/simulator pair, expressed
// over the e22 reference vocabulary so the coordinator can shard it by
// environment.
func e22Job(leak float64) engine.Job {
	return engine.Job{Kind: engine.KindCheck, Check: &engine.CheckSpec{
		Left:   "e22:left:" + strconv.FormatFloat(leak, 'g', -1, 64),
		Right:  "e22:right",
		Envs:   []string{"e22:env:0", "e22:env:1"},
		Schema: "priority",
		Templates: [][]string{
			{"send", "encrypt", "tap", "notify", "fabricate", "g_tap", "guess", "deliver"},
			{"send", "encrypt", "tap", "notify", "fabricate", "g_tap", "g_block", "block", "guess", "deliver"},
			{"send", "encrypt", "tap", "notify", "deliver"},
		},
		Eps: leak / 2,
		Q1:  8, Q2: 8,
	}}
}

// e22Worker builds one cluster worker: a LocalBackend over its own pool and
// cache (nothing shared in-process) with the e22 reference table installed.
func e22Worker(id string) *cluster.LocalBackend {
	r := engine.NewRunner(engine.NewPool(2), engine.NewCache(1024))
	r.Resolve = e22Resolve
	return cluster.NewLocalBackend(id, r)
}

// e22Pass runs the leak sweep through the coordinator and re-assembles the
// per-leak EmulationReports exactly as core.SecureEmulates would: one
// adversary pair, so Holds and PerAdv come straight from the merged report.
func e22Pass(coord *cluster.Coordinator, advID string) ([]*core.EmulationReport, int, int, error) {
	reps := make([]*core.EmulationReport, 0, len(e18Leaks))
	shards, fromStore := 0, 0
	for _, leak := range e18Leaks {
		res, err := coord.Run(context.Background(), e22Job(leak))
		if err != nil {
			return nil, 0, 0, err
		}
		for _, sh := range res.Shards {
			shards++
			if sh.FromStore {
				fromStore++
			}
		}
		reps = append(reps, &core.EmulationReport{
			Holds:  res.Check.Holds,
			PerAdv: map[string]*core.Report{advID: res.Check},
		})
	}
	return reps, shards, fromStore, nil
}

// E22ClusterEquivalence validates the cluster layer end to end: a
// 1-coordinator + 3-worker in-process cluster sharding the E18 leak sweep by
// environment must produce byte-identical EmulationReports to the
// sequential, uncached local run (the outer environment quantifier of
// Def 4.12 commutes with sharding; the merge recomputes Holds/MaxDist and
// the canonical pair order). A second pass must be served from the workers'
// content-addressed stores with nonzero cross-node hits, and adding a
// fourth worker must leave every report identical and every shard
// store-served — rendezvous placement re-homes ownership, but survivors
// still answer the lookups.
func E22ClusterEquivalence() (*Table, error) {
	t := &Table{
		ID:      "E22",
		Title:   "cluster sharding + shared store preserve emulation reports (Def 4.12/4.26 over 3 workers)",
		Header:  []string{"pass", "workers", "leaks", "shards", "from store", "remote hits", "identical"},
		Workers: 2,
		Kernel:  "parallel",
		Cluster: "in-process-3",
	}
	hitsC := obs.C("cluster.remote.hits")

	// Baseline: the sequential, uncached local sweep — the ground truth the
	// cluster must reproduce byte for byte.
	baseReps, err := e18Sweep(core.Options{})
	if err != nil {
		return nil, err
	}
	want := e18Render(baseReps)
	t.Rows = append(t.Rows, []string{
		"local", "1", fmt.Sprint(len(e18Leaks)), "—", "—", "—", "—",
	})

	advID := channel.Eavesdropper("x").ID()
	workers := []*cluster.LocalBackend{e22Worker("e22-w1"), e22Worker("e22-w2"), e22Worker("e22-w3")}
	coord, err := cluster.NewCoordinator(workers[0], workers[1], workers[2])
	if err != nil {
		return nil, err
	}

	identical := true
	row := func(name string, n int, coord *cluster.Coordinator) (int, error) {
		h0 := hitsC.Value()
		reps, shards, fromStore, err := e22Pass(coord, advID)
		if err != nil {
			return 0, err
		}
		hits := int(hitsC.Value() - h0)
		same := e18Render(reps) == want
		identical = identical && same
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprint(n), fmt.Sprint(len(e18Leaks)),
			fmt.Sprint(shards), fmt.Sprint(fromStore), fmt.Sprint(hits), fmt.Sprint(same),
		})
		return fromStore, nil
	}

	if _, err := row("cluster-cold", 3, coord); err != nil {
		return nil, err
	}
	h1 := hitsC.Value()
	warmStore, err := row("cluster-warm", 3, coord)
	if err != nil {
		return nil, err
	}
	warmHits := int(hitsC.Value() - h1)

	// Scale out: a fourth (empty) worker shifts rendezvous ownership, but
	// the lookups fall through to the nodes that computed the shards.
	scaled, err := cluster.NewCoordinator(workers[0], workers[1], workers[2], e22Worker("e22-w4"))
	if err != nil {
		return nil, err
	}
	scaledStore, err := row("cluster-scaled", 4, scaled)
	if err != nil {
		return nil, err
	}

	totalShards := 2 * len(e18Leaks)
	ok := identical && e18Holds(baseReps) &&
		warmHits >= 1 && warmStore == totalShards && scaledStore == totalShards
	t.Verdict = verdict(ok, fmt.Sprintf(
		"reports identical=%v, warm pass %d/%d shards store-served (%d remote hits), scaled pass %d/%d",
		identical, warmStore, totalShards, warmHits, scaledStore, totalShards))
	return t, nil
}
