package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/psioa"
	"repro/internal/sched"
	"repro/internal/testaut"
)

// e19Workload is the deep/wide tree workload of the parallel sweep: a biased
// random walk whose frontier doubles per level, so the sharded expansion has
// real work to split.
func e19Workload() (psioa.PSIOA, sched.Scheduler, int) {
	w := testaut.RandomWalk("w", 8, 0.5)
	return w, &sched.Random{A: w, Bound: 13}, 16
}

// e19Render canonicalises an execution measure for equivalence comparison:
// every support element with its exact mass plus the aggregates, so two
// renderings are equal iff the measures are byte-identical.
func e19Render(em *sched.ExecMeasure) string {
	var b strings.Builder
	em.ForEach(func(f *psioa.Frag, p float64) {
		fmt.Fprintf(&b, "E %s %.17g\n", f.Key(), p)
	})
	fmt.Fprintf(&b, "total %.17g len %d maxlen %d\n", em.Total(), em.Len(), em.MaxLen())
	return b.String()
}

// E19ParallelMeasure measures the sharded frontier expansion: the parallel
// kernel must be byte-identical to the sequential tree kernel at every
// worker count, and the sweep records the wall-clock scaling curve. On a
// single-CPU host the curve is flat at best (see docs/PERFORMANCE.md); the
// equivalence column is the correctness acceptance either way.
func E19ParallelMeasure() (*Table, error) {
	t := &Table{
		ID:      "E19",
		Title:   "parallel sharded frontier expansion: byte-equivalence and scaling vs workers",
		Header:  []string{"workers", "support", "time", "speedup vs 1w", "byte-identical"},
		Workers: 8,
		Kernel:  "parallel",
	}
	w, s, depth := e19Workload()
	seqStart := time.Now()
	seq, err := sched.MeasureCtx(context.Background(), w, s, depth, nil)
	if err != nil {
		return nil, err
	}
	seqElapsed := time.Since(seqStart)
	ref := e19Render(seq)
	var base time.Duration
	ok := true
	for _, workers := range []int{1, 2, 4, 8} {
		start := time.Now()
		em, err := sched.MeasureOpts(context.Background(), w, s, depth, nil, sched.Options{Workers: workers})
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		if workers == 1 {
			base = elapsed
		}
		same := e19Render(em) == ref
		ok = ok && same
		speedup := float64(base) / float64(elapsed)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(workers), fmt.Sprint(em.Len()), elapsed.Round(time.Microsecond).String(),
			f6(speedup), fmt.Sprint(same),
		})
	}
	t.Rows = append(t.Rows, []string{
		"(sequential)", fmt.Sprint(seq.Len()), seqElapsed.Round(time.Microsecond).String(), "1", "true",
	})
	t.Verdict = verdict(ok, "parallel expansion byte-identical to the sequential kernel at every worker count")
	return t, nil
}

// E20DAGCollapse measures the state-collapsed DAG fast path on a converging
// automaton: the tree kernel's cost is the number of distinct executions
// (2^depth on the walk) while the DAG kernel propagates |states| × depth
// nodes — a super-linear, sub-exponential win. Equivalence is checked bit
// for bit on the dyadic workload up to the deepest bound the tree kernel
// can afford; past that only the DAG runs.
func E20DAGCollapse() (*Table, error) {
	t := &Table{
		ID:     "E20",
		Title:  "state-collapsed DAG kernel: sub-exponential cost on converging automata",
		Header: []string{"bound", "tree execs", "tree time", "dag nodes", "dag time", "speedup", "totals equal"},
		Kernel: "dag",
	}
	w := testaut.RandomWalk("w", 6, 0.5)
	ok := true
	for _, bound := range []int{8, 12, 14, 16} {
		s := &sched.Random{A: w, Bound: bound}
		dob, isOb := sched.AsDepthOblivious(s)
		if !isOb {
			return nil, fmt.Errorf("E20: Random must be depth-oblivious")
		}
		treeStart := time.Now()
		em, err := sched.MeasureCtx(context.Background(), w, s, bound+2, nil)
		if err != nil {
			return nil, err
		}
		treeElapsed := time.Since(treeStart)
		nodes0 := obs.C("sched.measure.dag.nodes").Value()
		dagStart := time.Now()
		dm, err := sched.MeasureDAG(context.Background(), w, dob, bound+2, nil)
		if err != nil {
			return nil, err
		}
		dagElapsed := time.Since(dagStart)
		nodes := obs.C("sched.measure.dag.nodes").Value() - nodes0
		same := dm.Total() == em.Total() && dm.MaxLen() == em.MaxLen()
		ok = ok && same
		speedup := float64(treeElapsed) / float64(dagElapsed)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(bound), fmt.Sprint(em.Len()), treeElapsed.Round(time.Microsecond).String(),
			fmt.Sprint(nodes), dagElapsed.Round(time.Microsecond).String(),
			f6(speedup), fmt.Sprint(same),
		})
	}
	// Beyond the tree horizon: a bound whose execution tree (~2^40 paths)
	// no tree kernel could expand, finished by the DAG in microseconds.
	deep := &sched.Random{A: w, Bound: 40}
	dob, _ := sched.AsDepthOblivious(deep)
	deepStart := time.Now()
	dm, err := sched.MeasureDAG(context.Background(), w, dob, 42, nil)
	if err != nil {
		return nil, err
	}
	deepElapsed := time.Since(deepStart)
	t.Rows = append(t.Rows, []string{
		"40", "~2^40 (infeasible)", "-", fmt.Sprint(dm.Classes()),
		deepElapsed.Round(time.Microsecond).String(), "-", "-",
	})
	t.Verdict = verdict(ok, "DAG kernel matches the tree bit for bit and collapses exponential trees to |states|×depth nodes")
	return t, nil
}
