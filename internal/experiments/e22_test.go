package experiments_test

import (
	"testing"

	"repro/internal/experiments"
)

func TestE22(t *testing.T) {
	tbl, err := experiments.E22ClusterEquivalence()
	checkTable(t, tbl, err)
	res := tbl.Result()
	if res.Cluster != "in-process-3" {
		t.Errorf("E22 cluster provenance = %q, want in-process-3", res.Cluster)
	}
}

// TestResultClusterOmitted pins that single-runner experiments keep an empty
// cluster field (omitted from dsebench -json output).
func TestResultClusterOmitted(t *testing.T) {
	tbl := &experiments.Table{ID: "X", Verdict: "PASS"}
	if res := tbl.Result(); res.Cluster != "" {
		t.Errorf("defaulted cluster = %q, want empty", res.Cluster)
	}
}
