package experiments_test

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

func checkTable(t *testing.T, tbl *experiments.Table, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatalf("%s produced no rows", tbl.ID)
	}
	if !strings.HasPrefix(tbl.Verdict, "PASS") && tbl.ID != "E10" {
		t.Errorf("%s verdict: %s", tbl.ID, tbl.Verdict)
	}
	s := tbl.String()
	if !strings.Contains(s, tbl.ID) || !strings.Contains(s, "verdict:") {
		t.Errorf("%s rendering malformed:\n%s", tbl.ID, s)
	}
	for _, r := range tbl.Rows {
		if len(r) != len(tbl.Header) {
			t.Errorf("%s row width %d != header width %d", tbl.ID, len(r), len(tbl.Header))
		}
	}
}

func TestE1(t *testing.T) { tbl, err := experiments.E1CompositionBound(); checkTable(t, tbl, err) }
func TestE3(t *testing.T) { tbl, err := experiments.E3HidingBound(); checkTable(t, tbl, err) }
func TestE4(t *testing.T) { tbl, err := experiments.E4Transitivity(); checkTable(t, tbl, err) }
func TestE5(t *testing.T) { tbl, err := experiments.E5Composability(); checkTable(t, tbl, err) }
func TestE6(t *testing.T) { tbl, err := experiments.E6FamilyNegPt(); checkTable(t, tbl, err) }
func TestE7(t *testing.T) { tbl, err := experiments.E7DummyInsertion(); checkTable(t, tbl, err) }

func TestE2(t *testing.T) {
	if testing.Short() {
		t.Skip("PCA description sweep is slow")
	}
	tbl, err := experiments.E2PCACompositionBound()
	checkTable(t, tbl, err)
}

func TestE8(t *testing.T) {
	if testing.Short() {
		t.Skip("composed emulation is slow")
	}
	tbl, err := experiments.E8SecureEmulation()
	checkTable(t, tbl, err)
}

func TestE9(t *testing.T) { tbl, err := experiments.E9DynamicCreation(); checkTable(t, tbl, err) }

func TestE11(t *testing.T) {
	if testing.Short() {
		t.Skip("dynamic emulation sweep is slow")
	}
	tbl, err := experiments.E11DynamicEmulation()
	checkTable(t, tbl, err)
}

func TestE10(t *testing.T) {
	if testing.Short() {
		t.Skip("measure scaling sweep is slow")
	}
	tbl, err := experiments.E10Scaling()
	checkTable(t, tbl, err)
}

func TestE12(t *testing.T) {
	if testing.Short() {
		t.Skip("commitment sweep is slow")
	}
	tbl, err := experiments.E12Commitment()
	checkTable(t, tbl, err)
}

func TestE13(t *testing.T) {
	tbl, err := experiments.E13CreationMonotonicity()
	checkTable(t, tbl, err)
}

func TestE14(t *testing.T) {
	tbl, err := experiments.E14CoinFlipping()
	checkTable(t, tbl, err)
}

func TestE15(t *testing.T) {
	if testing.Short() {
		t.Skip("family emulation sweep is slow")
	}
	tbl, err := experiments.E15FamilyEmulation()
	checkTable(t, tbl, err)
}

func TestE16(t *testing.T) {
	tbl, err := experiments.E16SchedulingRole()
	checkTable(t, tbl, err)
}

func TestE17(t *testing.T) {
	if testing.Short() {
		t.Skip("sampling sweep is slow")
	}
	tbl, err := experiments.E17SamplingConvergence()
	checkTable(t, tbl, err)
}
