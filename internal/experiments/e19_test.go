package experiments_test

import (
	"testing"

	"repro/internal/experiments"
)

func TestE19(t *testing.T) {
	tbl, err := experiments.E19ParallelMeasure()
	checkTable(t, tbl, err)
	res := tbl.Result()
	if res.Workers != 8 || res.Kernel != "parallel" {
		t.Errorf("E19 provenance = workers %d kernel %q, want 8/parallel", res.Workers, res.Kernel)
	}
}

func TestE20(t *testing.T) {
	tbl, err := experiments.E20DAGCollapse()
	checkTable(t, tbl, err)
	res := tbl.Result()
	if res.Workers != 1 || res.Kernel != "dag" {
		t.Errorf("E20 provenance = workers %d kernel %q, want 1/dag", res.Workers, res.Kernel)
	}
}

func TestResultDefaultsProvenance(t *testing.T) {
	tbl := &experiments.Table{ID: "X", Verdict: "PASS"}
	res := tbl.Result()
	if res.Workers != 1 || res.Kernel != "tree" {
		t.Errorf("defaulted provenance = workers %d kernel %q, want 1/tree", res.Workers, res.Kernel)
	}
}
