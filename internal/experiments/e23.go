package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/psioa"
	"repro/internal/sched"
)

// E23InternedCore re-runs the E19/E21 parallel-scaling workload on the
// interned measure core (ROADMAP item 2, closed by this experiment): the
// kernels now expand over dense intern IDs — slice-indexed frontiers, cone
// indexes and halt lists instead of string-keyed maps — and the shared
// bounded memo tables (sorted-support memo, choice caches) moved from
// RWMutex maps to read-mostly snapshots whose steady-state hits take no
// lock. E21 localised the E19 saturation inside the shards, on exactly
// those structures; E23 is the after-measurement on the same workload.
//
// Acceptance is twofold: the interned parallel kernel must remain
// byte-identical to the sequential kernel at every worker count (the
// representation change must not move a single float), and the scaling
// column records what the de-contended shards actually buy on this host
// (single-CPU in CI: the barrier overhead still bounds the curve; the
// per-call wall time against the E19 baseline in EXPERIMENTS.md is the
// honest comparison).
func E23InternedCore() (*Table, error) {
	t := &Table{
		ID:      "E23",
		Title:   "interned measure core: byte-equivalence and scaling on the E19/E21 workload",
		Header:  []string{"workers", "support", "time", "speedup vs 1w", "byte-identical", "memo hits", "memo misses"},
		Workers: 8,
		Kernel:  "parallel",
	}
	w, s, depth := e19Workload()
	seqStart := time.Now()
	seq, err := sched.MeasureCtx(context.Background(), w, s, depth, nil)
	if err != nil {
		return nil, err
	}
	seqElapsed := time.Since(seqStart)
	ref := e19Render(seq)
	var base time.Duration
	ok := true
	for _, workers := range []int{1, 2, 4, 8} {
		memo0 := psioa.SortMemoSnapshot()
		start := time.Now()
		em, err := sched.MeasureOpts(context.Background(), w, s, depth, nil, sched.Options{Workers: workers})
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		memo1 := psioa.SortMemoSnapshot()
		if workers == 1 {
			base = elapsed
		}
		same := e19Render(em) == ref
		ok = ok && same
		speedup := float64(base) / float64(elapsed)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(workers), fmt.Sprint(em.Len()), elapsed.Round(time.Microsecond).String(),
			f6(speedup), fmt.Sprint(same),
			fmt.Sprint(memo1.Hits - memo0.Hits), fmt.Sprint(memo1.Misses - memo0.Misses),
		})
	}
	t.Rows = append(t.Rows, []string{
		"(sequential)", fmt.Sprint(seq.Len()), seqElapsed.Round(time.Microsecond).String(), "1", "true", "-", "-",
	})
	t.Verdict = verdict(ok,
		"interned kernels byte-identical to the string-keyed goldens at every worker count; "+
			"scaling on the de-contended core recorded against the E19 baseline")
	return t, nil
}
