package experiments

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/insight"
	"repro/internal/obs"
	"repro/internal/protocols/channel"
	"repro/internal/psioa"
	"repro/internal/sched"
	"repro/internal/testaut"
)

var e18Leaks = []float64{0, 0.125, 0.25, 0.5}

// e18Sweep runs the E8 secure-emulation check (leaky one-time-pad channel
// vs ideal channel) across a leak sweep under the given base options — the
// heaviest kernel in the suite. The ideal side and the environments are the
// same automata at every leak value, so a memoizing run computes their
// measure expansions once where the sequential run repeats them per leak.
func e18Sweep(opt core.Options) ([]*core.EmulationReport, error) {
	opt.Envs = []psioa.PSIOA{channel.Env("x", 0), channel.Env("x", 1)}
	opt.Schema = &sched.PrefixPrioritySchema{Templates: [][]string{
		{"send", "encrypt", "tap", "notify", "fabricate", "g_tap", "guess", "deliver"},
		{"send", "encrypt", "tap", "notify", "fabricate", "g_tap", "g_block", "block", "guess", "deliver"},
		{"send", "encrypt", "tap", "notify", "deliver"},
	}}
	opt.Insight = insight.Trace()
	opt.Q1, opt.Q2 = 8, 8
	out := make([]*core.EmulationReport, 0, len(e18Leaks))
	for _, leak := range e18Leaks {
		o := opt
		o.Eps = leak / 2
		rep, err := core.SecureEmulates(
			channel.LeakyReal("x", leak), channel.Ideal("x"),
			[]core.AdvSim{{Adv: channel.Eavesdropper("x"), Sim: channel.SimFor("x")}},
			o, 50000)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}

func e18Pairs(reps []*core.EmulationReport) int {
	n := 0
	for _, rep := range reps {
		for _, r := range rep.PerAdv {
			n += len(r.Pairs)
		}
	}
	return n
}

func e18Render(reps []*core.EmulationReport) string {
	var b []byte
	for _, rep := range reps {
		b = append(b, rep.String()...)
		b = append(b, '\n')
	}
	return string(b)
}

func e18Holds(reps []*core.EmulationReport) bool {
	for _, rep := range reps {
		if !rep.Holds {
			return false
		}
	}
	return true
}

// E18EngineEquivalence validates the engine layer: fanning the (env,
// scheduler) sweeps of a secure-emulation leak sweep onto a worker pool and
// memoizing their measure expansions must leave every report byte-identical
// to the sequential, uncached run. The ideal side repeats across the sweep,
// so even the cold memoized run reuses expansions, and a warm cache serves
// everything. The sweep's timing columns are informational: its automata are
// small enough that the fingerprint's state-graph exploration rivals the
// measure expansions it saves. A final stress pair shows the regime the
// cache is built for — repeated f-dists of a deep random walk whose
// execution tree dwarfs its state graph — where the warm cache must beat
// the uncached loop outright. The verdict requires identical reports,
// nonzero cache hits in every mode, and stress speedup > 1.
func E18EngineEquivalence() (*Table, error) {
	t := &Table{
		ID:     "E18",
		Title:  "engine pool + memoization preserve reports and reuse measures (Def 4.12 sweep)",
		Header: []string{"mode", "workers", "elapsed", "pairs", "cache hits", "identical", "speedup"},
	}
	hitsC := obs.C("engine.cache.hits")

	seqStart := time.Now()
	seqReps, err := e18Sweep(core.Options{})
	if err != nil {
		return nil, err
	}
	seqElapsed := time.Since(seqStart)
	seqStr := e18Render(seqReps)
	t.Rows = append(t.Rows, []string{
		"sequential", "1", seqElapsed.Round(time.Millisecond).String(),
		fmt.Sprint(e18Pairs(seqReps)), "0", "—", "1.00x",
	})

	pool := engine.NewPool(8)
	memoCache := engine.NewCache(0)
	pooledCache := engine.NewCache(0)
	modes := []struct {
		name string
		opt  core.Options
	}{
		{"memoized-cold", core.Options{Memo: memoCache}},
		{"memoized-warm", core.Options{Memo: memoCache}},
		{"pooled-cold", core.Options{Exec: pool, Memo: pooledCache}},
		{"pooled-warm", core.Options{Exec: pool, Memo: pooledCache}},
	}
	identical := true
	hits := map[string]int64{}
	for _, m := range modes {
		h0 := hitsC.Value()
		start := time.Now()
		reps, err := e18Sweep(m.opt)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		hits[m.name] = hitsC.Value() - h0
		same := e18Render(reps) == seqStr
		identical = identical && same
		workers := 1
		if m.opt.Exec != nil {
			workers = pool.Workers()
		}
		speedup := "—"
		if elapsed > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(seqElapsed)/float64(elapsed))
		}
		t.Rows = append(t.Rows, []string{
			m.name, fmt.Sprint(workers), elapsed.Round(time.Millisecond).String(),
			fmt.Sprint(e18Pairs(reps)), fmt.Sprint(hits[m.name]), fmt.Sprint(same), speedup,
		})
	}

	// Stress pair: repeated f-dists of a deep random walk, where the
	// execution tree (exponential in depth) dwarfs the state graph the
	// fingerprint explores — the regime the cache is built for.
	walk := testaut.RandomWalk("w", 10, 0.5)
	wsched := &sched.Greedy{A: walk, Bound: 14, LocalOnly: true}
	const stressReps = 10
	stressStart := time.Now()
	for i := 0; i < stressReps; i++ {
		if _, err := insight.FDist(walk, wsched, insight.Trace(), 16); err != nil {
			return nil, err
		}
	}
	stressSeq := time.Since(stressStart)
	t.Rows = append(t.Rows, []string{
		"stress-uncached", "1", stressSeq.Round(time.Millisecond).String(),
		fmt.Sprint(stressReps), "0", "—", "1.00x",
	})
	stressCache := engine.NewCache(0)
	stressStart = time.Now()
	for i := 0; i < stressReps; i++ {
		if _, err := stressCache.FDist(walk, wsched, insight.Trace(), 16); err != nil {
			return nil, err
		}
	}
	stressMemo := time.Since(stressStart)
	stressSpeedup := float64(stressSeq) / float64(stressMemo)
	t.Rows = append(t.Rows, []string{
		"stress-memoized", "1", stressMemo.Round(time.Millisecond).String(),
		fmt.Sprint(stressReps), fmt.Sprint(stressReps - 1), "—",
		fmt.Sprintf("%.2fx", stressSpeedup),
	})

	ok := identical && e18Holds(seqReps) && stressSpeedup > 1
	for _, m := range modes {
		ok = ok && hits[m.name] > 0
	}
	t.Verdict = verdict(ok, fmt.Sprintf("reports identical=%v, cache hits cold=%d warm=%d, stress speedup %.1fx",
		identical, hits["memoized-cold"], hits["memoized-warm"], stressSpeedup))
	return t, nil
}

// AllParallel runs every experiment on the pool, preserving All's output
// order. Experiments touch disjoint instances, so running them as pool
// tasks is safe; each experiment's internal sweeps additionally share the
// pool when they construct engine-backed options themselves. A nil pool
// degrades to the sequential All.
func AllParallel(ctx context.Context, pool *engine.Pool) ([]*Table, error) {
	ids, byID := Runners()
	out := make([]*Table, len(ids))
	err := pool.Map(ctx, len(ids), func(i int) error {
		// Reset process-global memo state and collect before each timed
		// experiment so its elapsed time matches an isolated run: leftover
		// memo entries pin the predecessor's spans (re-swept by every GC
		// cycle of this experiment), and leftover garbage would be collected
		// on this experiment's clock. Per-experiment timings feed
		// BENCH_*.json and bench_compare.sh, which flags >20% drifts, so
		// they must not depend on suite ordering.
		psioa.ResetSortMemo()
		runtime.GC()
		tbl, err := byID[ids[i]]()
		out[i] = tbl
		return err
	})
	tables := make([]*Table, 0, len(out))
	for _, tbl := range out {
		if tbl != nil {
			tables = append(tables, tbl)
		}
	}
	return tables, err
}
