package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/psioa"
	"repro/internal/sched"
)

// E21ShardTelemetry re-runs the E19 workload under the telemetry-v2
// collector to localise the weak parallel scaling E19 exposed (ROADMAP
// item 2 hypothesises contention on shared string-keyed structures rather
// than work imbalance). For each worker count the collector reports how
// the frontier items actually split across shards (imbalance = max/mean),
// how much wall time shards idled at level barriers, and how hard the
// psioa sorted-support memo — the central string-keyed shared structure —
// was hit during the run. If the split is near-balanced and barrier waits
// are a small fraction of the wall while speedup still saturates, the
// lost time is inside the shards (hashing/allocating string keys against
// shared memos), confirming the hypothesis; a large imbalance or barrier
// fraction would refute it in favour of a scheduling/partitioning fix.
func E21ShardTelemetry() (*Table, error) {
	t := &Table{
		ID:      "E21",
		Title:   "shard-balance and contention telemetry on the E19 workload (ROADMAP item-2 hypothesis)",
		Header:  []string{"workers", "time", "shards", "items max/mean", "barrier-wait %", "memo hits", "memo misses", "items accounted"},
		Workers: 8,
		Kernel:  "parallel",
	}
	w, s, depth := e19Workload()
	ok := true
	var refItems int64 = -1

	// Baseline: the sequential route has no shards to account, but its
	// memo traffic calibrates what a single thread pays.
	memo0 := psioa.SortMemoSnapshot()
	seqStart := time.Now()
	if _, err := sched.MeasureOpts(context.Background(), w, s, depth, nil, sched.Options{Workers: 1, Stats: &sched.Stats{}}); err != nil {
		return nil, err
	}
	seqElapsed := time.Since(seqStart)
	memo1 := psioa.SortMemoSnapshot()
	t.Rows = append(t.Rows, []string{
		"1 (seq)", seqElapsed.Round(time.Microsecond).String(), "-", "-", "-",
		fmt.Sprint(memo1.Hits - memo0.Hits), fmt.Sprint(memo1.Misses - memo0.Misses), "-",
	})

	for _, workers := range []int{2, 4, 8} {
		st := &sched.Stats{}
		memo0 := psioa.SortMemoSnapshot()
		start := time.Now()
		if _, err := sched.MeasureOpts(context.Background(), w, s, depth, nil, sched.Options{Workers: workers, Stats: st}); err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		memo1 := psioa.SortMemoSnapshot()

		shards := st.Shards()
		var items, busyUS, waitUS int64
		for _, sh := range shards {
			items += sh.Items
			busyUS += sh.WallUS
			waitUS += sh.BarrierWaitUS
		}
		// Every worker count must account the same total expansion — the
		// collector sees all the work or it is lying.
		if refItems < 0 {
			refItems = items
		}
		accounted := items == refItems && items > 0
		ok = ok && accounted
		waitFrac := 0.0
		if busyUS+waitUS > 0 {
			waitFrac = 100 * float64(waitUS) / float64(busyUS+waitUS)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(workers), elapsed.Round(time.Microsecond).String(),
			fmt.Sprint(len(shards)), f6(obs.Imbalance(shards)),
			fmt.Sprintf("%.1f", waitFrac),
			fmt.Sprint(memo1.Hits - memo0.Hits), fmt.Sprint(memo1.Misses - memo0.Misses),
			fmt.Sprint(accounted),
		})
	}
	t.Verdict = verdict(ok,
		"per-shard accounting covers the full expansion at every worker count; "+
			"near-balanced shards with small barrier waits localise the E19 saturation inside the shards "+
			"(shared string-keyed memo traffic), per ROADMAP item 2")
	return t, nil
}
