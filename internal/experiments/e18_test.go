package experiments_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/experiments"
)

func TestE18(t *testing.T) {
	if testing.Short() {
		t.Skip("E18 runs full secure-emulation checks")
	}
	tbl, err := experiments.E18EngineEquivalence()
	checkTable(t, tbl, err)
	if len(tbl.Rows) != 7 {
		t.Fatalf("E18 rows = %d, want sequential + memoized/pooled cold+warm + stress pair", len(tbl.Rows))
	}
	for _, row := range tbl.Rows[1:5] {
		if row[5] != "true" {
			t.Errorf("mode %s not identical to sequential: %v", row[0], row)
		}
	}
	if !strings.Contains(tbl.Verdict, "cache hits") {
		t.Errorf("verdict missing cache stats: %s", tbl.Verdict)
	}
}

func TestAllParallelOrderAndVerdicts(t *testing.T) {
	// Per-experiment correctness (and parallel-vs-sequential report
	// identity) is covered by the individual TestE* cases and by E18
	// itself; here we check the orchestration: the pooled suite returns
	// every table in All's order with the expected verdicts.
	if testing.Short() {
		t.Skip("runs the full experiment suite")
	}
	ids, _ := experiments.Runners()
	par, err := experiments.AllParallel(context.Background(), engine.NewPool(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(ids) {
		t.Fatalf("parallel suite returned %d tables, want %d", len(par), len(ids))
	}
	for i, tbl := range par {
		if tbl.ID != ids[i] {
			t.Errorf("order differs at %d: %s vs %s", i, tbl.ID, ids[i])
		}
		if !tbl.Pass() && tbl.ID != "E10" {
			t.Errorf("%s failed under the pool: %s", tbl.ID, tbl.Verdict)
		}
	}
}
