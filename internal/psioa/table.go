package psioa

import (
	"fmt"

	"repro/internal/measure"
)

// Table is an explicit finite PSIOA: states, signatures and transition
// measures are stored in maps. It is the workhorse for the worked examples
// and for exhaustive checking of the implementation relations.
type Table struct {
	id    string
	start State
	sigs  map[State]Signature
	trans map[State]map[Action]*Dist
}

// ID implements PSIOA.
func (t *Table) ID() string { return t.id }

// Start implements PSIOA.
func (t *Table) Start() State { return t.start }

// Sig implements PSIOA.
func (t *Table) Sig(q State) Signature {
	sig, ok := t.sigs[q]
	if !ok {
		panic(fmt.Sprintf("psioa: automaton %q: unknown state %q", t.id, q))
	}
	return sig
}

// Trans implements PSIOA.
func (t *Table) Trans(q State, a Action) *Dist {
	if !t.Sig(q).Has(a) {
		disabledPanic(t.id, q, a)
	}
	return t.trans[q][a]
}

// States returns all declared states (not only reachable ones).
func (t *Table) States() []State {
	out := make([]State, 0, len(t.sigs))
	for q := range t.sigs {
		out = append(out, q)
	}
	return out
}

// Builder assembles a Table and validates the PSIOA constraints of Def 2.1
// at Build time.
type Builder struct {
	id    string
	start State
	sigs  map[State]Signature
	trans map[State]map[Action]*Dist
	errs  []error
}

// NewBuilder starts building an automaton with the given identifier and
// start state.
func NewBuilder(id string, start State) *Builder {
	return &Builder{
		id:    id,
		start: start,
		sigs:  make(map[State]Signature),
		trans: make(map[State]map[Action]*Dist),
	}
}

// AddState declares a state with its signature.
func (b *Builder) AddState(q State, sig Signature) *Builder {
	if _, dup := b.sigs[q]; dup {
		b.errs = append(b.errs, fmt.Errorf("psioa: duplicate state %q", q))
		return b
	}
	b.sigs[q] = sig
	b.trans[q] = make(map[Action]*Dist)
	return b
}

// AddTrans declares the transition measure for (q, a). Per Def 2.1 there is
// exactly one measure per enabled (q, a) pair.
func (b *Builder) AddTrans(q State, a Action, d *Dist) *Builder {
	m, ok := b.trans[q]
	if !ok {
		b.errs = append(b.errs, fmt.Errorf("psioa: transition from undeclared state %q", q))
		return b
	}
	if _, dup := m[a]; dup {
		b.errs = append(b.errs, fmt.Errorf("psioa: duplicate transition (%q, %q)", q, a))
		return b
	}
	m[a] = d
	return b
}

// AddDet declares a deterministic (Dirac) transition q --a--> q′.
func (b *Builder) AddDet(q State, a Action, to State) *Builder {
	return b.AddTrans(q, a, measure.Dirac(to))
}

// AddCoin declares a fair binary probabilistic transition.
func (b *Builder) AddCoin(q State, a Action, heads, tails State) *Builder {
	d := measure.New[State]()
	d.Add(heads, 0.5)
	d.Add(tails, 0.5)
	return b.AddTrans(q, a, d)
}

// Build validates and returns the automaton. Checks performed:
// start state declared; signatures mutually disjoint; every signature action
// has exactly one transition (E1); no transition for actions outside the
// signature; transition measures are probability measures whose supports are
// declared states.
func (b *Builder) Build() (*Table, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if _, ok := b.sigs[b.start]; !ok {
		return nil, fmt.Errorf("psioa: automaton %q: start state %q not declared", b.id, b.start)
	}
	for q, sig := range b.sigs {
		if err := sig.CheckDisjoint(); err != nil {
			return nil, fmt.Errorf("psioa: automaton %q state %q: %w", b.id, q, err)
		}
		all := sig.All()
		for a := range all {
			d, ok := b.trans[q][a]
			if !ok {
				return nil, fmt.Errorf("psioa: automaton %q: action %q enabled at %q has no transition (violates E1)", b.id, a, q)
			}
			if !d.IsProb() {
				return nil, fmt.Errorf("psioa: automaton %q: transition (%q,%q) has total mass %v, want 1", b.id, q, a, d.Total())
			}
			for _, q2 := range d.Support() {
				if _, ok := b.sigs[q2]; !ok {
					return nil, fmt.Errorf("psioa: automaton %q: transition (%q,%q) targets undeclared state %q", b.id, q, a, q2)
				}
			}
		}
		for a := range b.trans[q] {
			if !all.Has(a) {
				return nil, fmt.Errorf("psioa: automaton %q: transition for %q at %q but the action is not in the signature", b.id, a, q)
			}
		}
	}
	return &Table{id: b.id, start: b.start, sigs: b.sigs, trans: b.trans}, nil
}

// MustBuild is Build that panics on error, for statically-correct automata
// in tests and examples.
func (b *Builder) MustBuild() *Table {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}
