package psioa

import (
	"fmt"
)

// Signature is a state signature sig(A)(q) = (in, out, int): three mutually
// disjoint sets of input, output and internal actions (Def 2.1).
type Signature struct {
	In  ActionSet
	Out ActionSet
	Int ActionSet
}

// NewSignature builds a signature from the given action lists.
func NewSignature(in, out, internal []Action) Signature {
	return Signature{In: NewActionSet(in...), Out: NewActionSet(out...), Int: NewActionSet(internal...)}
}

// EmptySignature returns the empty signature; an automaton whose current
// signature is empty is considered destroyed when it occurs inside a
// configuration (Def 2.12).
func EmptySignature() Signature {
	return Signature{In: NewActionSet(), Out: NewActionSet(), Int: NewActionSet()}
}

// Has reports whether a is in the signature (in ∪ out ∪ int) without
// allocating the union set; prefer it to All().Has on hot paths.
func (s Signature) Has(a Action) bool {
	return s.In.Has(a) || s.Out.Has(a) || s.Int.Has(a)
}

// ForEachAction visits every action of the signature without allocating
// the union set. Actions appearing in several components (which a valid
// signature forbids) would be visited more than once.
func (s Signature) ForEachAction(f func(Action)) {
	for a := range s.In {
		f(a)
	}
	for a := range s.Out {
		f(a)
	}
	for a := range s.Int {
		f(a)
	}
}

// Ext returns the external actions in ∪ out.
func (s Signature) Ext() ActionSet { return s.In.Union(s.Out) }

// All returns the full action set sig^ = in ∪ out ∪ int.
func (s Signature) All() ActionSet { return s.In.Union(s.Out).Union(s.Int) }

// IsEmpty reports whether the signature has no actions at all.
func (s Signature) IsEmpty() bool {
	return len(s.In) == 0 && len(s.Out) == 0 && len(s.Int) == 0
}

// CheckDisjoint verifies the mutual disjointness required by Def 2.1.
func (s Signature) CheckDisjoint() error {
	if !s.In.Disjoint(s.Out) {
		return fmt.Errorf("psioa: in/out overlap: %v", s.In.Intersect(s.Out))
	}
	if !s.In.Disjoint(s.Int) {
		return fmt.Errorf("psioa: in/int overlap: %v", s.In.Intersect(s.Int))
	}
	if !s.Out.Disjoint(s.Int) {
		return fmt.Errorf("psioa: out/int overlap: %v", s.Out.Intersect(s.Int))
	}
	return nil
}

// Copy returns an independent copy of the signature.
func (s Signature) Copy() Signature {
	return Signature{In: s.In.Copy(), Out: s.Out.Copy(), Int: s.Int.Copy()}
}

// Equal reports componentwise set equality.
func (s Signature) Equal(t Signature) bool {
	return s.In.Equal(t.In) && s.Out.Equal(t.Out) && s.Int.Equal(t.Int)
}

// String renders the signature deterministically.
func (s Signature) String() string {
	return fmt.Sprintf("(in:%v out:%v int:%v)", s.In, s.Out, s.Int)
}

// CompatibleSignatures checks pairwise compatibility per Def 2.3: for any
// two distinct signatures, (in ∪ out ∪ int) ∩ int′ = ∅ and out ∩ out′ = ∅.
// Membership is probed directly so the compatible (common) case allocates
// nothing; the offending intersections are materialised only for errors.
func CompatibleSignatures(sigs []Signature) error {
	for i := range sigs {
		for j := range sigs {
			if i == j {
				continue
			}
			si, sj := sigs[i], sigs[j]
			for a := range sj.Int {
				if si.In.Has(a) || si.Out.Has(a) || si.Int.Has(a) {
					return fmt.Errorf("psioa: signature %d shares actions %v with internal actions of signature %d",
						i, si.All().Intersect(sj.Int), j)
				}
			}
			if i < j {
				for a := range si.Out {
					if sj.Out.Has(a) {
						return fmt.Errorf("psioa: signatures %d and %d share output actions %v",
							i, j, si.Out.Intersect(sj.Out))
					}
				}
			}
		}
	}
	return nil
}

// ComposeSignatures implements Def 2.4 for n signatures:
// Σ₁ × ... × Σₙ = (∪in − ∪out, ∪out, ∪int). The signatures must be
// compatible; this is not re-checked here.
func ComposeSignatures(sigs []Signature) Signature {
	nIn, nOut, nInt := 0, 0, 0
	for _, s := range sigs {
		nIn += len(s.In)
		nOut += len(s.Out)
		nInt += len(s.Int)
	}
	in := make(ActionSet, nIn)
	out := make(ActionSet, nOut)
	internal := make(ActionSet, nInt)
	for _, s := range sigs {
		for a := range s.In {
			in[a] = struct{}{}
		}
		for a := range s.Out {
			out[a] = struct{}{}
		}
		for a := range s.Int {
			internal[a] = struct{}{}
		}
	}
	for a := range out {
		delete(in, a)
	}
	return Signature{In: in, Out: out, Int: internal}
}

// HideSignature implements Def 2.6: hide(sig, S) moves the hidden output
// actions out ∩ S into the internal set.
func HideSignature(sig Signature, hidden ActionSet) Signature {
	moved := sig.Out.Intersect(hidden)
	return Signature{
		In:  sig.In.Copy(),
		Out: sig.Out.Minus(hidden),
		Int: sig.Int.Union(moved),
	}
}
