// Package psioa implements probabilistic signature input/output automata
// (Section 2 of the paper): state signatures, compatibility and composition
// (Defs 2.3–2.5, 2.18), hiding and renaming (Defs 2.6–2.8, Lemma A.1), and
// execution fragments, executions and traces (Def 2.2).
//
// A PSIOA A = (Q_A, q̄_A, sig(A), D_A) is rendered as an interface: states
// and actions are strings, the signature is a function of the current state,
// and Trans(q, a) returns the unique probability measure η_{(A,q,a)} of the
// transition enabled at q by a (constraint E1 of Def 2.1: every action in
// the signature is enabled).
package psioa

import (
	"fmt"
	"sync"

	"repro/internal/measure"
)

// Dist is the transition-target measure type: a discrete probability
// measure over states.
type Dist = measure.Dist[State]

// PSIOA is a probabilistic signature input/output automaton (Def 2.1).
//
// Implementations must satisfy, for every reachable state q:
//   - Sig(q) has mutually disjoint in/out/int components;
//   - for every a ∈ Sig(q).All(), Trans(q, a) is a probability measure
//     (action enabling, assumption E1);
//   - Trans(q, a) panics for a ∉ Sig(q).All() — asking to step a disabled
//     action is a caller bug, not an input error.
//
// Validate (explore.go) checks these properties on the reachable fragment.
type PSIOA interface {
	// ID returns the automaton identifier (an element of Autids).
	ID() string
	// Start returns the unique start state q̄.
	Start() State
	// Sig returns the state signature sig(A)(q).
	Sig(q State) Signature
	// Trans returns η_{(A,q,a)}, the unique transition measure for the
	// enabled action a at state q.
	Trans(q State, a Action) *Dist
}

// compatAtChecker is implemented by composite automata whose signature
// computation can fail when components are incompatible at a state. Explore
// uses it to report incompatibility as an error rather than a panic.
type compatAtChecker interface {
	CompatAt(q State) error
}

// Steps returns the support of the transition measure, i.e. the states q′
// with (q, a, q′) ∈ steps(A).
func Steps(a PSIOA, q State, act Action) []State {
	return a.Trans(q, act).Support()
}

// Enabled reports whether act ∈ sig(A)(q)^.
func Enabled(a PSIOA, q State, act Action) bool {
	return a.Sig(q).Has(act)
}

// disabledPanic is the uniform panic for stepping a disabled action.
func disabledPanic(id string, q State, a Action) {
	panic(fmt.Sprintf("psioa: automaton %q: action %q not enabled at state %q", id, a, q))
}

// Null returns the trivial automaton with a single state and no actions.
// It is the unit of composition and serves as the "no environment"
// environment for checks on closed systems.
func Null(id string) PSIOA {
	return &Func{
		Name:    id,
		StartSt: "·",
		SigFn:   func(State) Signature { return EmptySignature() },
		TransFn: func(q State, a Action) *Dist {
			panic(fmt.Sprintf("psioa: null automaton %q has no transitions", id))
		},
	}
}

// InputEnabled wraps an automaton so that every action of the given input
// universe is enabled (as an ignoring self-loop) at every state where it is
// not otherwise in the signature — the classic I/O-automata input-enabling
// completion, convenient for building environments that must tolerate
// outputs they do not track.
type InputEnabled struct {
	inner    PSIOA
	universe ActionSet

	mu       sync.Mutex
	sigCache map[State]Signature
}

// InputEnable wraps a with ignoring self-loops for the universe's inputs.
// Actions already in a state's signature keep their behaviour there.
func InputEnable(a PSIOA, universe ActionSet) *InputEnabled {
	return &InputEnabled{
		inner:    a,
		universe: universe.Copy(),
		sigCache: make(map[State]Signature),
	}
}

// ID implements PSIOA.
func (ie *InputEnabled) ID() string { return "ie(" + ie.inner.ID() + ")" }

// Start implements PSIOA.
func (ie *InputEnabled) Start() State { return ie.inner.Start() }

// Sig implements PSIOA: the inner signature with the missing universe
// actions added as inputs. Results are cached per state.
func (ie *InputEnabled) Sig(q State) Signature {
	ie.mu.Lock()
	if sig, ok := ie.sigCache[q]; ok {
		ie.mu.Unlock()
		return sig
	}
	ie.mu.Unlock()
	sig := ie.inner.Sig(q)
	if missing := ie.universe.Minus(sig.All()); len(missing) > 0 {
		sig = Signature{In: sig.In.Union(missing), Out: sig.Out.Copy(), Int: sig.Int.Copy()}
	}
	ie.mu.Lock()
	ie.sigCache[q] = sig
	ie.mu.Unlock()
	return sig
}

// Trans implements PSIOA: added inputs are ignoring self-loops.
func (ie *InputEnabled) Trans(q State, a Action) *Dist {
	if ie.inner.Sig(q).Has(a) {
		return ie.inner.Trans(q, a)
	}
	if !ie.universe.Has(a) {
		disabledPanic(ie.ID(), q, a)
	}
	return measure.Dirac(q)
}

// CompatAt delegates to the wrapped automaton.
func (ie *InputEnabled) CompatAt(q State) error {
	if cc, ok := ie.inner.(compatAtChecker); ok {
		return cc.CompatAt(q)
	}
	return nil
}

// Func is a PSIOA defined by closures, for automata whose state space is
// large or unbounded (only reachable states under bounded schedulers are
// ever evaluated).
type Func struct {
	Name      string
	StartSt   State
	SigFn     func(State) Signature
	TransFn   func(State, Action) *Dist
	CompatErr func(State) error // optional; nil means always compatible
}

// ID implements PSIOA.
func (f *Func) ID() string { return f.Name }

// Start implements PSIOA.
func (f *Func) Start() State { return f.StartSt }

// Sig implements PSIOA.
func (f *Func) Sig(q State) Signature { return f.SigFn(q) }

// Trans implements PSIOA.
func (f *Func) Trans(q State, a Action) *Dist {
	if !f.SigFn(q).All().Has(a) {
		disabledPanic(f.Name, q, a)
	}
	return f.TransFn(q, a)
}

// CompatAt implements compatAtChecker when CompatErr is provided.
func (f *Func) CompatAt(q State) error {
	if f.CompatErr == nil {
		return nil
	}
	return f.CompatErr(q)
}
