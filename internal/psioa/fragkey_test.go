package psioa_test

import (
	"testing"
	"testing/quick"

	"repro/internal/psioa"
)

// hostile state/action labels exercising the codec escape machinery: the
// separator, the escape byte, the empty-tuple sentinel, and empty strings.
var hostileLabels = []string{"|", "\\", "||", "\\\\", "|\\|", "()", "", "q|0", "a\\x"}

func TestFragKeyRoundTripHostile(t *testing.T) {
	// Zero-length fragments, including ones whose only state is itself a
	// codec metacharacter.
	for _, s := range hostileLabels {
		f := psioa.NewFrag(psioa.State(s))
		g, err := psioa.FragFromKey(f.Key())
		if err != nil {
			t.Fatalf("FragFromKey(Key(NewFrag(%q))): %v", s, err)
		}
		if g.Key() != f.Key() || g.Len() != 0 || g.LState() != f.LState() {
			t.Errorf("zero-length round trip failed for state %q", s)
		}
	}
	// Deeper fragments mixing hostile labels in both positions.
	f := psioa.NewFrag("q|0")
	for i, s := range hostileLabels {
		f = f.Extend(psioa.Action(hostileLabels[len(hostileLabels)-1-i]), psioa.State(s))
	}
	g, err := psioa.FragFromKey(f.Key())
	if err != nil {
		t.Fatal(err)
	}
	if g.Key() != f.Key() || g.Len() != f.Len() {
		t.Error("hostile round trip failed")
	}
	for i := 0; i <= f.Len(); i++ {
		if g.StateAt(i) != f.StateAt(i) {
			t.Errorf("state %d: %q != %q", i, g.StateAt(i), f.StateAt(i))
		}
	}
	for i := 0; i < f.Len(); i++ {
		if g.ActionAt(i) != f.ActionAt(i) {
			t.Errorf("action %d: %q != %q", i, g.ActionAt(i), f.ActionAt(i))
		}
	}
}

// naivePrefix is the reference definition: f ≤ g iff f's alternating
// sequence is an initial segment of g's.
func naivePrefix(f, g *psioa.Frag) bool {
	if f.Len() > g.Len() {
		return false
	}
	for i := 0; i <= f.Len(); i++ {
		if f.StateAt(i) != g.StateAt(i) {
			return false
		}
	}
	for i := 0; i < f.Len(); i++ {
		if f.ActionAt(i) != g.ActionAt(i) {
			return false
		}
	}
	return true
}

func TestIsPrefixOfQuick(t *testing.T) {
	mk := func(start string, steps []string) *psioa.Frag {
		f := psioa.NewFrag(psioa.State(start))
		for i, s := range steps {
			f = f.Extend(psioa.Action(steps[(i+1)%len(steps)]), psioa.State(s))
		}
		return f
	}
	prop := func(start string, steps, extra, other []string) bool {
		f := mk(start, steps)
		g := f
		for i, s := range extra {
			g = g.Extend(psioa.Action(s), psioa.State(extra[(i+1)%len(extra)]))
		}
		// Extensions are always extended-by-prefix; the converse holds only
		// when nothing was added.
		if !f.IsPrefixOf(g) {
			return false
		}
		if g.IsPrefixOf(f) != (len(extra) == 0) {
			return false
		}
		// A structurally unrelated fragment must agree with the reference
		// definition, and so must a rebuilt copy of f that shares no nodes
		// with g (exercising the value-comparison path, not the
		// pointer-shortcut path).
		h := mk(start, other)
		if f.IsPrefixOf(h) != naivePrefix(f, h) {
			return false
		}
		f2, err := psioa.FragFromKey(f.Key())
		if err != nil {
			return false
		}
		return f2.IsPrefixOf(g) && g.IsPrefixOf(f2) == (len(extra) == 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestFragParentChain(t *testing.T) {
	f := psioa.NewFrag("q0")
	if f.Parent() != nil {
		t.Error("root fragment must have nil parent")
	}
	g := f.Extend("a", "q1").Extend("b", "q2")
	if g.Parent() == nil || g.Parent().Parent() != f {
		t.Error("parent chain broken")
	}
	// Extend must share structure: the parent is the extended fragment
	// itself, not a copy.
	h := g.Extend("c", "q3")
	if h.Parent() != g {
		t.Error("Extend does not share structure with its receiver")
	}
}

func TestFragKeyIncrementalMatchesRebuilt(t *testing.T) {
	// Key computed incrementally (parent key cached first) must equal the
	// key computed from scratch on an identical rebuilt fragment.
	f := psioa.NewFrag("s|0")
	_ = f.Key() // cache the root key, forcing the incremental path below
	f = f.Extend("a\\1", "s1").Extend("a|2", "s\\2")
	inc := f.Key()
	scratch := psioa.NewFrag("s|0").Extend("a\\1", "s1").Extend("a|2", "s\\2")
	if scratch.Key() != inc {
		t.Errorf("incremental key %q != scratch key %q", inc, scratch.Key())
	}
}
