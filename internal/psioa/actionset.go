package psioa

import (
	"sort"
	"strings"

	"repro/internal/codec"
)

// Action is an action name. The paper treats actions as opaque elements of a
// countable universe; we use strings, with structured names (e.g.
// "send(m,1)") by convention.
type Action string

// State is a state name. Composite automata use canonical tuple encodings
// (internal/codec) so that states remain comparable map keys.
type State string

// ActionSet is a finite set of actions.
type ActionSet map[Action]struct{}

// NewActionSet builds a set from the given actions.
func NewActionSet(as ...Action) ActionSet {
	s := make(ActionSet, len(as))
	for _, a := range as {
		s[a] = struct{}{}
	}
	return s
}

// Has reports membership.
func (s ActionSet) Has(a Action) bool {
	_, ok := s[a]
	return ok
}

// Add inserts a into s.
func (s ActionSet) Add(a Action) { s[a] = struct{}{} }

// Copy returns an independent copy.
func (s ActionSet) Copy() ActionSet {
	c := make(ActionSet, len(s))
	for a := range s {
		c[a] = struct{}{}
	}
	return c
}

// Union returns s ∪ t.
func (s ActionSet) Union(t ActionSet) ActionSet {
	u := s.Copy()
	for a := range t {
		u[a] = struct{}{}
	}
	return u
}

// Minus returns s \ t.
func (s ActionSet) Minus(t ActionSet) ActionSet {
	d := make(ActionSet)
	for a := range s {
		if !t.Has(a) {
			d[a] = struct{}{}
		}
	}
	return d
}

// Intersect returns s ∩ t.
func (s ActionSet) Intersect(t ActionSet) ActionSet {
	i := make(ActionSet)
	for a := range s {
		if t.Has(a) {
			i[a] = struct{}{}
		}
	}
	return i
}

// Disjoint reports whether s ∩ t = ∅.
func (s ActionSet) Disjoint(t ActionSet) bool {
	small, big := s, t
	if len(big) < len(small) {
		small, big = big, small
	}
	for a := range small {
		if big.Has(a) {
			return false
		}
	}
	return true
}

// Equal reports set equality.
func (s ActionSet) Equal(t ActionSet) bool {
	if len(s) != len(t) {
		return false
	}
	for a := range s {
		if !t.Has(a) {
			return false
		}
	}
	return true
}

// Sorted returns the elements in lexicographic order.
func (s ActionSet) Sorted() []Action {
	out := make([]Action, 0, len(s))
	for a := range s {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Key returns a canonical encoding of the set, usable as a map key.
func (s ActionSet) Key() string {
	elems := make([]string, 0, len(s))
	for a := range s {
		elems = append(elems, string(a))
	}
	return codec.EncodeSortedSet(elems)
}

// String renders the set deterministically for diagnostics.
func (s ActionSet) String() string {
	parts := make([]string, 0, len(s))
	for _, a := range s.Sorted() {
		parts = append(parts, string(a))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// MapActions returns { f(a) | a ∈ s }.
func (s ActionSet) MapActions(f func(Action) Action) ActionSet {
	out := make(ActionSet, len(s))
	for a := range s {
		out[f(a)] = struct{}{}
	}
	return out
}
