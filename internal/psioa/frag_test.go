package psioa_test

import (
	"testing"
	"testing/quick"

	"repro/internal/psioa"
	"repro/internal/testaut"
)

func TestFragBasics(t *testing.T) {
	f := psioa.NewFrag("q0")
	if f.Len() != 0 || f.FState() != "q0" || f.LState() != "q0" {
		t.Error("zero fragment wrong")
	}
	g := f.Extend("a", "q1").Extend("b", "q2")
	if g.Len() != 2 || g.LState() != "q2" || g.FState() != "q0" {
		t.Error("Extend wrong")
	}
	if g.StateAt(1) != "q1" || g.ActionAt(0) != "a" {
		t.Error("indexing wrong")
	}
	// Immutability.
	if f.Len() != 0 {
		t.Error("Extend mutated the original")
	}
}

func TestFromAlternating(t *testing.T) {
	f, err := psioa.FromAlternating([]psioa.State{"a", "b"}, []psioa.Action{"x"})
	if err != nil || f.Len() != 1 {
		t.Errorf("FromAlternating: %v %v", f, err)
	}
	if _, err := psioa.FromAlternating([]psioa.State{"a"}, []psioa.Action{"x"}); err == nil {
		t.Error("expected length-mismatch error")
	}
}

func TestConcat(t *testing.T) {
	f := psioa.NewFrag("q0").Extend("a", "q1")
	g := psioa.NewFrag("q1").Extend("b", "q2")
	h, err := f.Concat(g)
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 2 || h.LState() != "q2" {
		t.Errorf("Concat = %v", h)
	}
	// Undefined when states mismatch (Def 2.2).
	bad := psioa.NewFrag("zzz")
	if _, err := f.Concat(bad); err == nil {
		t.Error("expected concat mismatch error")
	}
}

func TestPrefix(t *testing.T) {
	f := psioa.NewFrag("q0").Extend("a", "q1")
	g := f.Extend("b", "q2")
	if !f.IsPrefixOf(g) || !f.IsProperPrefixOf(g) {
		t.Error("prefix detection failed")
	}
	if g.IsPrefixOf(f) {
		t.Error("longer fragment cannot be prefix")
	}
	if !f.IsPrefixOf(f) || f.IsProperPrefixOf(f) {
		t.Error("reflexivity wrong")
	}
	other := psioa.NewFrag("q0").Extend("z", "q1").Extend("b", "q2")
	if f.IsPrefixOf(other) {
		t.Error("differing action accepted as prefix")
	}
}

func TestFragKeyRoundTrip(t *testing.T) {
	f := psioa.NewFrag("q|0").Extend("a\\x", "q1").Extend("b", "q2")
	g, err := psioa.FragFromKey(f.Key())
	if err != nil {
		t.Fatal(err)
	}
	if g.Key() != f.Key() || g.Len() != f.Len() || g.LState() != f.LState() {
		t.Error("Key round trip failed")
	}
	if _, err := psioa.FragFromKey("bad\\"); err == nil {
		t.Error("expected decode error")
	}
}

func TestFragKeyInjectiveQuick(t *testing.T) {
	prop := func(states1, states2 []string) bool {
		mk := func(ss []string) *psioa.Frag {
			f := psioa.NewFrag("s")
			for _, s := range ss {
				f = f.Extend("a", psioa.State(s))
			}
			return f
		}
		f1, f2 := mk(states1), mk(states2)
		eq := len(states1) == len(states2)
		if eq {
			for i := range states1 {
				if states1[i] != states2[i] {
					eq = false
					break
				}
			}
		}
		return (f1.Key() == f2.Key()) == eq
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTrace(t *testing.T) {
	c := testaut.Coin("c", 0.5)
	// flip is internal, heads is output (external).
	f := psioa.NewFrag("q0").Extend("flip_c", "h").Extend("heads_c", "done")
	tr := f.Trace(c)
	if len(tr) != 1 || tr[0] != "heads_c" {
		t.Errorf("Trace = %v", tr)
	}
	if !f.IsExecOf(c) {
		t.Error("valid execution rejected")
	}
	bad := psioa.NewFrag("q0").Extend("flip_c", "done")
	if bad.IsExecOf(c) {
		t.Error("invalid step accepted (done not in supp(flip))")
	}
	bad2 := psioa.NewFrag("q0").Extend("heads_c", "h")
	if bad2.IsExecOf(c) {
		t.Error("disabled action accepted")
	}
}

func TestTraceKeyDistinguishes(t *testing.T) {
	c := testaut.Coin("c", 0.5)
	fh := psioa.NewFrag("q0").Extend("flip_c", "h").Extend("heads_c", "done")
	ft := psioa.NewFrag("q0").Extend("flip_c", "t").Extend("tails_c", "done")
	if fh.TraceKey(c) == ft.TraceKey(c) {
		t.Error("different traces share a key")
	}
	// Internal-only prefixes share the empty trace.
	f0 := psioa.NewFrag("q0")
	f1 := psioa.NewFrag("q0").Extend("flip_c", "h")
	if f0.TraceKey(c) != f1.TraceKey(c) {
		t.Error("internal action leaked into trace")
	}
}

func TestFragString(t *testing.T) {
	f := psioa.NewFrag("a").Extend("x", "b")
	if f.String() != "a --x--> b" {
		t.Errorf("String = %q", f.String())
	}
}

func TestExploreTruncation(t *testing.T) {
	w := testaut.RandomWalk("w", 50, 0.5)
	ex, err := psioa.Explore(w, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Truncated {
		t.Error("expected truncation")
	}
	full, err := psioa.Explore(w, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if full.Truncated {
		t.Error("unexpected truncation")
	}
	if len(full.States) != 52 {
		t.Errorf("reachable = %d, want 52", len(full.States))
	}
}

func TestSortedStates(t *testing.T) {
	c := testaut.Coin("c", 0.5)
	ex, _ := psioa.Explore(c, 100)
	ss := ex.SortedStates()
	for i := 1; i < len(ss); i++ {
		if ss[i-1] >= ss[i] {
			t.Fatal("SortedStates not sorted")
		}
	}
}

func TestReachable(t *testing.T) {
	c := testaut.Coin("c", 0.5)
	if ok, _ := psioa.Reachable(c, "done", 100); !ok {
		t.Error("done should be reachable")
	}
	if ok, _ := psioa.Reachable(c, "ghost", 100); ok {
		t.Error("ghost should not be reachable")
	}
}

func TestActsUniverse(t *testing.T) {
	c := testaut.Coin("c", 0.5)
	acts, err := psioa.ActsUniverse(c, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := psioa.NewActionSet("flip_c", "heads_c", "tails_c")
	if !acts.Equal(want) {
		t.Errorf("ActsUniverse = %v, want %v", acts, want)
	}
}

func TestStepsAndEnabled(t *testing.T) {
	c := testaut.Coin("c", 0.5)
	if !psioa.Enabled(c, "q0", "flip_c") || psioa.Enabled(c, "q0", "heads_c") {
		t.Error("Enabled wrong")
	}
	steps := psioa.Steps(c, "q0", "flip_c")
	if len(steps) != 2 {
		t.Errorf("Steps = %v", steps)
	}
}
