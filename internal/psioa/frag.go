package psioa

import (
	"fmt"

	"repro/internal/codec"
)

// Frag is an execution fragment (Def 2.2): an alternating sequence
// q⁰ a¹ q¹ a² ... ending with a state. Frags are immutable and persistent:
// Extend returns a new fragment that shares its prefix with the receiver
// via a parent pointer, so extending is O(1) and n extensions of one
// fragment cost O(n) total instead of O(n²) slice copying. The canonical
// key is computed incrementally from the parent's cached key.
//
// The lazily cached key is the only mutable (write-once) field; computing
// it is not synchronized, so the first Key() call on a given fragment must
// not race with other uses of that fragment. Measure forces the key of
// every fragment it retains, which is why execution measures shared through
// the engine cache are safe for concurrent readers.
type Frag struct {
	parent *Frag // nil iff Len() == 0
	root   *Frag // first fragment of the chain (self for roots)
	act    Action
	last   State
	depth  int
	key    string
	hasKey bool
	// ord+1, where ord is the dense per-expansion intern ID assigned by the
	// measure kernels (retention order); 0 means unassigned. Like key it is
	// write-once and unsynchronized: the kernel assigns it single-threaded
	// before the fragment is shared.
	ord uint32
}

// NewFrag returns the zero-length fragment at q0.
func NewFrag(q0 State) *Frag {
	f := &Frag{last: q0}
	f.root = f
	return f
}

// FromAlternating builds a fragment from explicit state and action slices.
func FromAlternating(states []State, actions []Action) (*Frag, error) {
	if len(states) != len(actions)+1 {
		return nil, fmt.Errorf("psioa: fragment needs len(states)==len(actions)+1, got %d/%d", len(states), len(actions))
	}
	f := NewFrag(states[0])
	for i, a := range actions {
		f = f.Extend(a, states[i+1])
	}
	return f, nil
}

// Len returns |α|, the number of transitions along the fragment.
func (f *Frag) Len() int { return f.depth }

// FState returns fstate(α), the first state.
func (f *Frag) FState() State { return f.root.last }

// LState returns lstate(α), the last state.
func (f *Frag) LState() State { return f.last }

// Parent returns the immediate prefix of f (everything but the final
// transition), or nil for zero-length fragments. Walking Parent pointers
// enumerates exactly the prefixes of f, longest first.
func (f *Frag) Parent() *Frag { return f.parent }

// chain returns the fragments from root to f, indexed by depth.
func (f *Frag) chain() []*Frag {
	out := make([]*Frag, f.depth+1)
	for g := f; g != nil; g = g.parent {
		out[g.depth] = g
	}
	return out
}

// States returns a copy of the state sequence.
func (f *Frag) States() []State {
	out := make([]State, f.depth+1)
	for g := f; g != nil; g = g.parent {
		out[g.depth] = g.last
	}
	return out
}

// Actions returns a copy of the action sequence.
func (f *Frag) Actions() []Action {
	out := make([]Action, f.depth)
	for g := f; g.parent != nil; g = g.parent {
		out[g.depth-1] = g.act
	}
	return out
}

// at returns the fragment prefix of length i.
func (f *Frag) at(i int) *Frag {
	g := f
	for g.depth > i {
		g = g.parent
	}
	return g
}

// StateAt returns qⁱ.
func (f *Frag) StateAt(i int) State { return f.at(i).last }

// ActionAt returns aⁱ⁺¹ (the action leaving state i).
func (f *Frag) ActionAt(i int) Action { return f.at(i + 1).act }

// SetInternID assigns the fragment's dense per-expansion intern ID. The
// measure kernels call it exactly once per retained fragment, from the
// single-threaded retention path (the sequential worklist or the parallel
// merge), before the fragment escapes to concurrent readers; the ID then
// indexes slice-backed views (cone masses, halt indexes) so the interior of
// a measure never hashes the fragment's string key. IDs are meaningful only
// relative to the expansion that assigned them — consumers must check
// identity against that expansion's fragment list before trusting one.
func (f *Frag) SetInternID(id uint32) { f.ord = id + 1 }

// InternID returns the dense per-expansion intern ID, if one was assigned.
func (f *Frag) InternID() (uint32, bool) {
	if f.ord == 0 {
		return 0, false
	}
	return f.ord - 1, true
}

// Extend returns the fragment α⌢(a, q′) = α lstate(α) a q′ in O(1), sharing
// α as the new fragment's prefix.
func (f *Frag) Extend(a Action, q State) *Frag {
	return &Frag{parent: f, root: f.root, act: a, last: q, depth: f.depth + 1}
}

// Concat implements the ⌢ operator: α⌢α′ is defined only when
// fstate(α′) == lstate(α). The cost is O(|α′|); the receiver is shared.
func (f *Frag) Concat(g *Frag) (*Frag, error) {
	if g.FState() != f.LState() {
		return nil, fmt.Errorf("psioa: concat undefined: lstate %q != fstate %q", f.LState(), g.FState())
	}
	out := f
	for _, h := range g.chain()[1:] {
		out = out.Extend(h.act, h.last)
	}
	return out, nil
}

// IsPrefixOf reports whether f ≤ g (f is a prefix of g). It walks g's
// ancestors to f's depth and compares chains upward, so it is O(depth) and
// O(1) extra space; fragments from the same expansion tree short-circuit on
// pointer equality as soon as the chains join.
func (f *Frag) IsPrefixOf(g *Frag) bool {
	if f.depth > g.depth {
		return false
	}
	y := g.at(f.depth)
	for x := f; x != y; x, y = x.parent, y.parent {
		if x.last != y.last {
			return false
		}
		if x.parent == nil {
			// Both chains are at their roots (depths are equal) and the
			// states matched.
			return true
		}
		if x.act != y.act {
			return false
		}
	}
	return true
}

// IsProperPrefixOf reports whether f < g.
func (f *Frag) IsProperPrefixOf(g *Frag) bool {
	return f.depth < g.depth && f.IsPrefixOf(g)
}

// Key returns a canonical injective encoding of the fragment, used as the
// support element of execution measures. Keys are cached: the first call
// extends the nearest keyed ancestor's cached key incrementally, so keying
// every prefix of an execution (the Measure expansion pattern) does one
// append per step instead of re-encoding the whole alternating sequence.
func (f *Frag) Key() string {
	if f.hasKey {
		return f.key
	}
	if f.parent != nil && f.parent.hasKey {
		// Fast path: one append off the parent's cached key (the expansion
		// pattern, where prefixes are keyed before their extensions).
		f.key = codec.AppendToTuple(f.parent.key, string(f.act), string(f.last))
		f.hasKey = true
		return f.key
	}
	// Collect the unkeyed suffix of the chain, deepest first.
	var pending []*Frag
	g := f
	for g.parent != nil && !g.hasKey {
		pending = append(pending, g)
		g = g.parent
	}
	if !g.hasKey {
		g.key = codec.EncodeTuple([]string{string(g.last)})
		g.hasKey = true
	}
	for i := len(pending) - 1; i >= 0; i-- {
		h := pending[i]
		h.key = codec.AppendToTuple(h.parent.key, string(h.act), string(h.last))
		h.hasKey = true
	}
	return f.key
}

// FragFromKey decodes a fragment key produced by Key.
func FragFromKey(key string) (*Frag, error) {
	parts, err := codec.DecodeTuple(key)
	if err != nil {
		return nil, err
	}
	if len(parts)%2 == 0 {
		return nil, fmt.Errorf("psioa: fragment key %q has even length %d", key, len(parts))
	}
	f := NewFrag(State(parts[0]))
	for i := 1; i < len(parts); i += 2 {
		f = f.Extend(Action(parts[i]), State(parts[i+1]))
	}
	return f, nil
}

// Trace returns trace(α) w.r.t. automaton A: the restriction of the action
// sequence to the actions that are external in the signature of the state
// they leave (Def 2.2).
func (f *Frag) Trace(a PSIOA) []Action {
	var tr []Action
	for _, h := range f.chain()[1:] {
		sig := a.Sig(h.parent.last)
		if sig.In.Has(h.act) || sig.Out.Has(h.act) {
			tr = append(tr, h.act)
		}
	}
	return tr
}

// TraceKey returns a canonical encoding of Trace for use as an insight
// value.
func (f *Frag) TraceKey(a PSIOA) string {
	tr := f.Trace(a)
	parts := make([]string, len(tr))
	for i, act := range tr {
		parts[i] = string(act)
	}
	return codec.EncodeTuple(parts)
}

// IsExecOf reports whether f is an execution fragment of A: every step
// (qⁱ, aⁱ⁺¹, qⁱ⁺¹) must be in steps(A).
func (f *Frag) IsExecOf(a PSIOA) bool {
	for _, h := range f.chain()[1:] {
		q := h.parent.last
		if !a.Sig(q).Has(h.act) {
			return false
		}
		if a.Trans(q, h.act).P(h.last) <= 0 {
			return false
		}
	}
	return true
}

// String renders the fragment for diagnostics.
func (f *Frag) String() string {
	s := string(f.root.last)
	for _, h := range f.chain()[1:] {
		s += fmt.Sprintf(" --%s--> %s", h.act, h.last)
	}
	return s
}
