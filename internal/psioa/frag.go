package psioa

import (
	"fmt"

	"repro/internal/codec"
)

// Frag is an execution fragment (Def 2.2): an alternating sequence
// q⁰ a¹ q¹ a² ... ending with a state. Frags are immutable: Extend and
// Concat return new fragments.
type Frag struct {
	states  []State // len(states) == len(actions)+1
	actions []Action
}

// NewFrag returns the zero-length fragment at q0.
func NewFrag(q0 State) *Frag {
	return &Frag{states: []State{q0}}
}

// FromAlternating builds a fragment from explicit state and action slices.
func FromAlternating(states []State, actions []Action) (*Frag, error) {
	if len(states) != len(actions)+1 {
		return nil, fmt.Errorf("psioa: fragment needs len(states)==len(actions)+1, got %d/%d", len(states), len(actions))
	}
	return &Frag{
		states:  append([]State(nil), states...),
		actions: append([]Action(nil), actions...),
	}, nil
}

// Len returns |α|, the number of transitions along the fragment.
func (f *Frag) Len() int { return len(f.actions) }

// FState returns fstate(α), the first state.
func (f *Frag) FState() State { return f.states[0] }

// LState returns lstate(α), the last state.
func (f *Frag) LState() State { return f.states[len(f.states)-1] }

// States returns a copy of the state sequence.
func (f *Frag) States() []State { return append([]State(nil), f.states...) }

// Actions returns a copy of the action sequence.
func (f *Frag) Actions() []Action { return append([]Action(nil), f.actions...) }

// StateAt returns qⁱ.
func (f *Frag) StateAt(i int) State { return f.states[i] }

// ActionAt returns aⁱ⁺¹ (the action leaving state i).
func (f *Frag) ActionAt(i int) Action { return f.actions[i] }

// Extend returns the fragment α⌢(a, q′) = α lstate(α) a q′.
func (f *Frag) Extend(a Action, q State) *Frag {
	return &Frag{
		states:  append(append([]State(nil), f.states...), q),
		actions: append(append([]Action(nil), f.actions...), a),
	}
}

// Concat implements the ⌢ operator: α⌢α′ is defined only when
// fstate(α′) == lstate(α).
func (f *Frag) Concat(g *Frag) (*Frag, error) {
	if g.FState() != f.LState() {
		return nil, fmt.Errorf("psioa: concat undefined: lstate %q != fstate %q", f.LState(), g.FState())
	}
	return &Frag{
		states:  append(append([]State(nil), f.states...), g.states[1:]...),
		actions: append(append([]Action(nil), f.actions...), g.actions...),
	}, nil
}

// IsPrefixOf reports whether f ≤ g (f is a prefix of g).
func (f *Frag) IsPrefixOf(g *Frag) bool {
	if f.Len() > g.Len() {
		return false
	}
	for i, q := range f.states {
		if g.states[i] != q {
			return false
		}
	}
	for i, a := range f.actions {
		if g.actions[i] != a {
			return false
		}
	}
	return true
}

// IsProperPrefixOf reports whether f < g.
func (f *Frag) IsProperPrefixOf(g *Frag) bool {
	return f.Len() < g.Len() && f.IsPrefixOf(g)
}

// Key returns a canonical injective encoding of the fragment, used as the
// support element of execution measures.
func (f *Frag) Key() string {
	parts := make([]string, 0, len(f.states)+len(f.actions))
	for i, q := range f.states {
		parts = append(parts, string(q))
		if i < len(f.actions) {
			parts = append(parts, string(f.actions[i]))
		}
	}
	return codec.EncodeTuple(parts)
}

// FragFromKey decodes a fragment key produced by Key.
func FragFromKey(key string) (*Frag, error) {
	parts, err := codec.DecodeTuple(key)
	if err != nil {
		return nil, err
	}
	if len(parts)%2 == 0 {
		return nil, fmt.Errorf("psioa: fragment key %q has even length %d", key, len(parts))
	}
	f := &Frag{}
	for i, p := range parts {
		if i%2 == 0 {
			f.states = append(f.states, State(p))
		} else {
			f.actions = append(f.actions, Action(p))
		}
	}
	return f, nil
}

// Trace returns trace(α) w.r.t. automaton A: the restriction of the action
// sequence to the actions that are external in the signature of the state
// they leave (Def 2.2).
func (f *Frag) Trace(a PSIOA) []Action {
	var tr []Action
	for i, act := range f.actions {
		if a.Sig(f.states[i]).Ext().Has(act) {
			tr = append(tr, act)
		}
	}
	return tr
}

// TraceKey returns a canonical encoding of Trace for use as an insight
// value.
func (f *Frag) TraceKey(a PSIOA) string {
	tr := f.Trace(a)
	parts := make([]string, len(tr))
	for i, act := range tr {
		parts[i] = string(act)
	}
	return codec.EncodeTuple(parts)
}

// IsExecOf reports whether f is an execution fragment of A: every step
// (qⁱ, aⁱ⁺¹, qⁱ⁺¹) must be in steps(A).
func (f *Frag) IsExecOf(a PSIOA) bool {
	for i, act := range f.actions {
		q := f.states[i]
		if !a.Sig(q).All().Has(act) {
			return false
		}
		if a.Trans(q, act).P(f.states[i+1]) <= 0 {
			return false
		}
	}
	return true
}

// String renders the fragment for diagnostics.
func (f *Frag) String() string {
	s := string(f.states[0])
	for i, a := range f.actions {
		s += fmt.Sprintf(" --%s--> %s", a, f.states[i+1])
	}
	return s
}
