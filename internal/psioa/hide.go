package psioa

import "sync"

// Hidden is the hiding operator of Def 2.7: hide(A, h) reclassifies, at each
// state q, the output actions h(q) as internal actions. States and
// transitions are untouched.
type Hidden struct {
	inner PSIOA
	h     func(State) ActionSet

	mu       sync.Mutex
	sigCache map[State]Signature
}

// Hide applies the state-dependent hiding function h to A.
func Hide(a PSIOA, h func(State) ActionSet) *Hidden {
	return &Hidden{inner: a, h: h, sigCache: make(map[State]Signature)}
}

// HideSet hides a fixed set of output actions at every state — the common
// special case used by the secure-emulation layer (hide(A‖Adv, AAct_A)).
func HideSet(a PSIOA, s ActionSet) *Hidden {
	fixed := s.Copy()
	return Hide(a, func(State) ActionSet { return fixed })
}

// ID implements PSIOA.
func (h *Hidden) ID() string { return "hide(" + h.inner.ID() + ")" }

// Inner returns the wrapped automaton.
func (h *Hidden) Inner() PSIOA { return h.inner }

// HiddenAt returns the hiding set h(q).
func (h *Hidden) HiddenAt(q State) ActionSet { return h.h(q) }

// Start implements PSIOA.
func (h *Hidden) Start() State { return h.inner.Start() }

// Sig implements PSIOA per Def 2.6. Results are cached per state.
func (h *Hidden) Sig(q State) Signature {
	h.mu.Lock()
	if sig, ok := h.sigCache[q]; ok {
		h.mu.Unlock()
		return sig
	}
	h.mu.Unlock()
	sig := HideSignature(h.inner.Sig(q), h.h(q))
	h.mu.Lock()
	h.sigCache[q] = sig
	h.mu.Unlock()
	return sig
}

// Trans implements PSIOA: transitions are unchanged by hiding.
func (h *Hidden) Trans(q State, a Action) *Dist {
	if !h.Sig(q).Has(a) {
		disabledPanic(h.ID(), q, a)
	}
	return h.inner.Trans(q, a)
}

// CompatAt delegates to the wrapped automaton.
func (h *Hidden) CompatAt(q State) error {
	if cc, ok := h.inner.(compatAtChecker); ok {
		return cc.CompatAt(q)
	}
	return nil
}
