package psioa

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/resilience"
)

// Observability instruments for the exploration hot path. Counters are
// batched per Explore call; per-state and per-transition trace events fire
// only when a tracer is installed.
var (
	cExploreCalls  = obs.C("psioa.explore.calls")
	cExploreStates = obs.C("psioa.explore.states")
	cExploreTrans  = obs.C("psioa.explore.transitions")
	cExploreTrunc  = obs.C("psioa.explore.truncated")
)

// Exploration is the result of a bounded breadth-first reachability
// analysis of an automaton.
type Exploration struct {
	// States are the reachable states in BFS discovery order.
	States []State
	// Sigs maps each reachable state to its signature.
	Sigs map[State]Signature
	// Acts is the union of all reachable signatures: the reachable part of
	// acts(A).
	Acts ActionSet
	// Truncated reports whether the state limit was hit before the
	// reachable set was exhausted.
	Truncated bool
}

// Explore performs bounded BFS from the start state, following the supports
// of all enabled transitions. limit bounds the number of distinct states
// visited; when the reachable set is larger, Truncated is set and the
// result covers the first limit states. Component incompatibility (for
// composite automata) is reported as an error.
func Explore(a PSIOA, limit int) (*Exploration, error) {
	return ExploreCtx(nil, a, limit, nil)
}

// ExploreCtx is Explore with cooperative cancellation and a work budget:
// the BFS loop polls ctx and charges b (one state per dequeue, one
// transition per enabled action) through an amortized checkpoint. On a
// budget-bounded stop the exploration found so far is returned — marked
// Truncated — alongside the ErrBudgetExceeded-classified error; on context
// termination the result is nil with an ErrCancelled/ErrDeadline error.
// Explore(a, limit) is exactly ExploreCtx(nil, a, limit, nil).
func ExploreCtx(ctx context.Context, a PSIOA, limit int, b *resilience.Budget) (*Exploration, error) {
	sp := obs.Begin("psioa.explore", a.ID())
	defer sp.End()
	defer obs.Time("psioa.explore.us")()
	if err := resilience.FireDelay(ctx, resilience.FaultSlowOp); err != nil {
		return nil, err
	}
	ck := resilience.NewCheckpoint(ctx, b)
	tr := obs.Active()
	traced := tr.Enabled()
	var nTrans int64
	ex := &Exploration{Sigs: make(map[State]Signature), Acts: NewActionSet()}
	start := a.Start()
	queue := []State{start}
	seen := map[State]bool{start: true}
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		if err := ck.Step(1, 0); err != nil {
			return exploreStopped(ex, nTrans, err)
		}
		if cc, ok := a.(compatAtChecker); ok {
			if err := cc.CompatAt(q); err != nil {
				return nil, err
			}
		}
		sig := a.Sig(q)
		ex.States = append(ex.States, q)
		ex.Sigs[q] = sig
		if traced {
			tr.Emit(obs.Event{Kind: obs.KindStateFound, Name: a.ID(), Attr: string(q), N: int64(len(ex.States))})
		}
		// Deterministic discovery order: sorted actions, sorted successors.
		// This makes truncated explorations reproducible run to run. Both
		// sorts are memoized: SortedAll per signature identity (states
		// sharing a signature share the sort) and SortedSupport inside the
		// transition measure (automata cache transition measures per
		// (state, action), so revisits — Validate, ActsUniverse, repeated
		// explorations of a shared automaton — skip the sort entirely).
		for _, act := range SortedAll(sig) {
			ex.Acts.Add(act)
			nTrans++
			if err := ck.Step(0, 1); err != nil {
				return exploreStopped(ex, nTrans, err)
			}
			if traced {
				tr.Emit(obs.Event{Kind: obs.KindTransition, Name: a.ID(), Attr: string(act)})
			}
			for _, q2 := range a.Trans(q, act).SortedSupport() {
				if !seen[q2] {
					if len(seen) >= limit {
						ex.Truncated = true
						continue
					}
					seen[q2] = true
					queue = append(queue, q2)
				}
			}
		}
	}
	if err := ck.Finish(); err != nil {
		return exploreStopped(ex, nTrans, err)
	}
	cExploreCalls.Inc()
	cExploreStates.Add(int64(len(ex.States)))
	cExploreTrans.Add(nTrans)
	if ex.Truncated {
		cExploreTrunc.Inc()
	}
	return ex, nil
}

// exploreStopped finalises an exploration interrupted by a checkpoint. A
// budget stop keeps the partial result (marked Truncated — the reachable
// set was not exhausted); context termination discards it.
func exploreStopped(ex *Exploration, nTrans int64, err error) (*Exploration, error) {
	cExploreCalls.Inc()
	cExploreStates.Add(int64(len(ex.States)))
	cExploreTrans.Add(nTrans)
	cExploreTrunc.Inc()
	if !resilience.IsBudget(err) {
		return nil, err
	}
	ex.Truncated = true
	return ex, err
}

// SortedStates returns the reachable states in lexicographic order.
func (ex *Exploration) SortedStates() []State {
	out := append([]State(nil), ex.States...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks the PSIOA constraints of Def 2.1 on the reachable
// fragment (up to limit states): signature disjointness, action enabling
// with probability-measure transitions, and — for composite automata —
// compatibility at every reachable state (partial compatibility, §2.6) and
// renaming injectivity (Lemma A.1 requirement).
func Validate(a PSIOA, limit int) error {
	ex, err := Explore(a, limit)
	if err != nil {
		return err
	}
	for _, q := range ex.States {
		sig := ex.Sigs[q]
		if err := sig.CheckDisjoint(); err != nil {
			return fmt.Errorf("psioa: %q state %q: %w", a.ID(), q, err)
		}
		var verr error
		sig.ForEachAction(func(act Action) {
			if verr != nil {
				return
			}
			d := a.Trans(q, act)
			if !d.IsProb() {
				verr = fmt.Errorf("psioa: %q transition (%q,%q): total mass %v, want 1", a.ID(), q, act, d.Total())
			}
		})
		if verr != nil {
			return verr
		}
	}
	return nil
}

// ActsUniverse returns the reachable part of acts(A) =
// ∪_q sig(A)(q)^, computed by bounded exploration.
func ActsUniverse(a PSIOA, limit int) (ActionSet, error) {
	ex, err := Explore(a, limit)
	if err != nil {
		return nil, err
	}
	return ex.Acts, nil
}

// CheckPartiallyCompatible verifies that the automata are partially
// compatible (§2.6): every reachable state of their composition is
// compatible. It is the executable rendering of Def 3.3's requirement for
// environments.
func CheckPartiallyCompatible(limit int, auts ...PSIOA) error {
	p, err := Compose(auts...)
	if err != nil {
		return err
	}
	_, err = Explore(p, limit)
	return err
}

// Reachable reports whether q is reachable in A within the state limit.
func Reachable(a PSIOA, q State, limit int) (bool, error) {
	ex, err := Explore(a, limit)
	if err != nil {
		return false, err
	}
	_, ok := ex.Sigs[q]
	return ok, nil
}
