package psioa

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/codec"
	"repro/internal/intern"
	"repro/internal/measure"
	"repro/internal/obs"
)

// cComposeCalls counts compositions built; together with component counts
// it shows how much of a workload is product construction.
var (
	cComposeCalls      = obs.C("psioa.compose.calls")
	cComposeComponents = obs.C("psioa.compose.components")
)

// Product is the partial composition A₁‖...‖Aₙ of Def 2.18. Its states are
// canonical tuples of component states; its signature at a state is the
// signature composition of Def 2.4 (the components must be compatible there,
// Def 2.5); its transition measure is the product measure of Def 2.5, where
// components that do not participate in an action stay put (Dirac).
//
// Compose flattens nested products, so composition is associative on the
// nose: Compose(Compose(a,b),c), Compose(a,Compose(b,c)) and Compose(a,b,c)
// are literally the same automaton (same states, same measures). The
// composability proofs of Section 4 use this associativity freely.
type Product struct {
	id    string
	comps []PSIOA

	// Per-product caches stay mutex-guarded plain maps on purpose: an
	// exploration sweep inserts a fresh entry for nearly every state it
	// visits, and for that insert-heavy profile a snapshot-promoting
	// read-mostly map (intern.RM) pays O(n) copies over and over — the
	// shared *bounded* memo tables (sortcache, choicecache) are where RM
	// earns its keep. The transition cache stays two chained string-keyed
	// maps rather than one struct-keyed map: string keys get the runtime's
	// faststr map path, which a composite struct key forfeits. Values are
	// immutable once stored.
	mu         sync.Mutex
	sigCache   map[State]Signature
	compatOK   map[State]bool
	transCache map[State]map[Action]*Dist
	splitCache map[State][]State
}

// Compose builds the partial composition of the given automata (Def 2.18).
// Arguments that are themselves Products are flattened into their
// components. Component identifiers must be pairwise distinct.
func Compose(auts ...PSIOA) (*Product, error) {
	if len(auts) == 0 {
		return nil, fmt.Errorf("psioa: Compose needs at least one automaton")
	}
	var comps []PSIOA
	for _, a := range auts {
		if p, ok := a.(*Product); ok {
			comps = append(comps, p.comps...)
		} else {
			comps = append(comps, a)
		}
	}
	// The interner's freshness bit is exactly the duplicate check: a
	// component ID that is not fresh was already seen.
	seen := intern.NewTable(len(comps))
	ids := make([]string, len(comps))
	for i, c := range comps {
		if _, fresh := seen.Intern(c.ID()); !fresh {
			return nil, fmt.Errorf("psioa: Compose: duplicate component identifier %q", c.ID())
		}
		ids[i] = c.ID()
	}
	cComposeCalls.Inc()
	cComposeComponents.Add(int64(len(comps)))
	return &Product{
		id:         strings.Join(ids, "||"),
		comps:      comps,
		sigCache:   make(map[State]Signature),
		compatOK:   make(map[State]bool),
		transCache: make(map[State]map[Action]*Dist),
		splitCache: make(map[State][]State),
	}, nil
}

// MustCompose is Compose that panics on error.
func MustCompose(auts ...PSIOA) *Product {
	p, err := Compose(auts...)
	if err != nil {
		panic(err)
	}
	return p
}

// ID implements PSIOA.
func (p *Product) ID() string { return p.id }

// Components returns the (flattened) component automata.
func (p *Product) Components() []PSIOA { return p.comps }

// Start implements PSIOA: the tuple of component start states.
func (p *Product) Start() State {
	parts := make([]string, len(p.comps))
	for i, c := range p.comps {
		parts[i] = string(c.Start())
	}
	return State(codec.EncodeTuple(parts))
}

// Split decomposes a product state into component states.
func (p *Product) Split(q State) []State {
	p.mu.Lock()
	if cached, ok := p.splitCache[q]; ok {
		p.mu.Unlock()
		return cached
	}
	p.mu.Unlock()
	parts, err := codec.DecodeTuple(string(q))
	if err != nil || len(parts) != len(p.comps) {
		panic(fmt.Sprintf("psioa: product %q: malformed state %q", p.id, q))
	}
	out := make([]State, len(parts))
	for i, s := range parts {
		out[i] = State(s)
	}
	p.mu.Lock()
	p.splitCache[q] = out
	p.mu.Unlock()
	return out
}

// Join composes component states into a product state.
func (p *Product) Join(qs []State) State {
	if len(qs) != len(p.comps) {
		panic(fmt.Sprintf("psioa: product %q: Join got %d states, want %d", p.id, len(qs), len(p.comps)))
	}
	parts := make([]string, len(qs))
	for i, s := range qs {
		parts[i] = string(s)
	}
	return State(codec.EncodeTuple(parts))
}

// Project returns q↾Aᵢ, the i-th component of the product state.
func (p *Product) Project(q State, i int) State { return p.Split(q)[i] }

// ProjectID returns the component state of the component with the given
// identifier, and whether such a component exists.
func (p *Product) ProjectID(q State, id string) (State, bool) {
	qs := p.Split(q)
	for i, c := range p.comps {
		if c.ID() == id {
			return qs[i], true
		}
	}
	return "", false
}

// CompatAt reports whether the components are compatible at q (Def 2.5):
// their state signatures form a compatible set per Def 2.3.
func (p *Product) CompatAt(q State) error {
	p.mu.Lock()
	if p.compatOK[q] {
		p.mu.Unlock()
		return nil
	}
	p.mu.Unlock()
	qs := p.Split(q)
	sigs := make([]Signature, len(qs))
	for i, c := range p.comps {
		sigs[i] = c.Sig(qs[i])
	}
	if err := CompatibleSignatures(sigs); err != nil {
		return fmt.Errorf("psioa: product %q incompatible at state %q: %w", p.id, q, err)
	}
	// Propagate into composite components (e.g. nested hides over products).
	for i, c := range p.comps {
		if cc, ok := c.(compatAtChecker); ok {
			if err := cc.CompatAt(qs[i]); err != nil {
				return err
			}
		}
	}
	p.mu.Lock()
	p.compatOK[q] = true
	p.mu.Unlock()
	return nil
}

// Sig implements PSIOA per Defs 2.4/2.5. It panics if the components are
// incompatible at q; use CompatAt (or Explore/Validate) to check
// compatibility without panicking.
func (p *Product) Sig(q State) Signature {
	p.mu.Lock()
	if sig, ok := p.sigCache[q]; ok {
		p.mu.Unlock()
		return sig
	}
	p.mu.Unlock()

	if err := p.CompatAt(q); err != nil {
		panic(err)
	}
	qs := p.Split(q)
	sigs := make([]Signature, len(qs))
	for i, c := range p.comps {
		sigs[i] = c.Sig(qs[i])
	}
	sig := ComposeSignatures(sigs)

	p.mu.Lock()
	p.sigCache[q] = sig
	p.mu.Unlock()
	return sig
}

// Trans implements PSIOA per Def 2.5: η_{(A,q,a)} = η₁ ⊗ ... ⊗ ηₙ with
// ηⱼ = η_{(Aⱼ,qⱼ,a)} when a is in Aⱼ's current signature and δ_{qⱼ}
// otherwise.
func (p *Product) Trans(q State, a Action) *Dist {
	p.mu.Lock()
	if m, ok := p.transCache[q]; ok {
		if d, ok := m[a]; ok {
			p.mu.Unlock()
			return d
		}
	}
	p.mu.Unlock()
	if !p.Sig(q).Has(a) {
		disabledPanic(p.id, q, a)
	}
	qs := p.Split(q)
	// The product measure is built directly over the component
	// distributions: non-participating components stay put (Dirac), so they
	// contribute a fixed tuple slot instead of a factor, and participating
	// factors are consumed in place — no per-factor copies, no intermediate
	// product. Every tuple combination is emitted exactly once, so the
	// result is independent of map iteration order.
	factors := make([]*Dist, len(p.comps))
	for i, c := range p.comps {
		if c.Sig(qs[i]).Has(a) {
			factors[i] = c.Trans(qs[i], a)
		}
	}
	d := measure.New[State]()
	parts := make([]string, len(p.comps))
	var rec func(i int, pr float64)
	rec = func(i int, pr float64) {
		if i == len(factors) {
			d.Add(State(codec.EncodeTuple(parts)), pr)
			return
		}
		if factors[i] == nil {
			parts[i] = string(qs[i])
			rec(i+1, pr)
			return
		}
		factors[i].ForEach(func(x State, px float64) {
			parts[i] = string(x)
			rec(i+1, pr*px)
		})
	}
	rec(0, 1)
	p.mu.Lock()
	m := p.transCache[q]
	if m == nil {
		m = make(map[Action]*Dist)
		p.transCache[q] = m
	}
	m[a] = d
	p.mu.Unlock()
	return d
}

// Atomic wraps an automaton so that Compose treats it as a single
// component even when it is itself a Product. Analyses that need to project
// a composite state onto a known pair — e.g. the adversary predicate, which
// inspects (q_A, q_Adv) — wrap their arguments in Atom so the flattening
// behaviour of Compose cannot regroup components underneath them.
type Atomic struct{ inner PSIOA }

// Atom wraps a to suppress composition flattening.
func Atom(a PSIOA) *Atomic { return &Atomic{inner: a} }

// ID implements PSIOA.
func (a *Atomic) ID() string { return a.inner.ID() }

// Inner returns the wrapped automaton.
func (a *Atomic) Inner() PSIOA { return a.inner }

// Start implements PSIOA.
func (a *Atomic) Start() State { return a.inner.Start() }

// Sig implements PSIOA.
func (a *Atomic) Sig(q State) Signature { return a.inner.Sig(q) }

// Trans implements PSIOA.
func (a *Atomic) Trans(q State, act Action) *Dist { return a.inner.Trans(q, act) }

// CompatAt delegates compatibility checking.
func (a *Atomic) CompatAt(q State) error {
	if cc, ok := a.inner.(compatAtChecker); ok {
		return cc.CompatAt(q)
	}
	return nil
}
