package psioa

import (
	"testing"
	"testing/quick"
)

func TestActionSetOps(t *testing.T) {
	s := NewActionSet("a", "b")
	tt := NewActionSet("b", "c")
	if !s.Has("a") || s.Has("c") {
		t.Error("Has wrong")
	}
	if u := s.Union(tt); len(u) != 3 {
		t.Errorf("Union size = %d", len(u))
	}
	if m := s.Minus(tt); !m.Equal(NewActionSet("a")) {
		t.Errorf("Minus = %v", m)
	}
	if i := s.Intersect(tt); !i.Equal(NewActionSet("b")) {
		t.Errorf("Intersect = %v", i)
	}
	if s.Disjoint(tt) {
		t.Error("Disjoint wrong: share b")
	}
	if !NewActionSet("x").Disjoint(NewActionSet("y")) {
		t.Error("Disjoint wrong: no overlap")
	}
}

func TestActionSetCopyIndependent(t *testing.T) {
	s := NewActionSet("a")
	c := s.Copy()
	c.Add("b")
	if s.Has("b") {
		t.Error("Copy not independent")
	}
}

func TestActionSetSortedAndString(t *testing.T) {
	s := NewActionSet("c", "a", "b")
	sorted := s.Sorted()
	if sorted[0] != "a" || sorted[1] != "b" || sorted[2] != "c" {
		t.Errorf("Sorted = %v", sorted)
	}
	if s.String() != "{a,b,c}" {
		t.Errorf("String = %q", s.String())
	}
}

func TestActionSetKeyCanonical(t *testing.T) {
	a := NewActionSet("x", "y")
	b := NewActionSet("y", "x")
	if a.Key() != b.Key() {
		t.Error("Key not canonical")
	}
	if a.Key() == NewActionSet("x").Key() {
		t.Error("Key collision for different sets")
	}
}

func TestActionSetAlgebraQuick(t *testing.T) {
	mk := func(bits uint8) ActionSet {
		s := NewActionSet()
		names := []Action{"a", "b", "c", "d", "e"}
		for i, n := range names {
			if bits&(1<<i) != 0 {
				s.Add(n)
			}
		}
		return s
	}
	prop := func(x, y uint8) bool {
		s, u := mk(x), mk(y)
		// (s ∪ u) \ u ⊆ s, s ∩ u ⊆ s, De Morgan-ish sanity.
		for a := range s.Union(u).Minus(u) {
			if !s.Has(a) {
				return false
			}
		}
		for a := range s.Intersect(u) {
			if !s.Has(a) || !u.Has(a) {
				return false
			}
		}
		return s.Disjoint(u) == (len(s.Intersect(u)) == 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 256}); err != nil {
		t.Error(err)
	}
}

func TestSignatureDisjoint(t *testing.T) {
	good := NewSignature([]Action{"i"}, []Action{"o"}, []Action{"h"})
	if err := good.CheckDisjoint(); err != nil {
		t.Errorf("valid signature rejected: %v", err)
	}
	bad := NewSignature([]Action{"x"}, []Action{"x"}, nil)
	if err := bad.CheckDisjoint(); err == nil {
		t.Error("in/out overlap accepted")
	}
	bad2 := NewSignature([]Action{"x"}, nil, []Action{"x"})
	if err := bad2.CheckDisjoint(); err == nil {
		t.Error("in/int overlap accepted")
	}
	bad3 := NewSignature(nil, []Action{"x"}, []Action{"x"})
	if err := bad3.CheckDisjoint(); err == nil {
		t.Error("out/int overlap accepted")
	}
}

func TestSignatureExtAll(t *testing.T) {
	s := NewSignature([]Action{"i"}, []Action{"o"}, []Action{"h"})
	if !s.Ext().Equal(NewActionSet("i", "o")) {
		t.Errorf("Ext = %v", s.Ext())
	}
	if !s.All().Equal(NewActionSet("i", "o", "h")) {
		t.Errorf("All = %v", s.All())
	}
	if s.IsEmpty() {
		t.Error("non-empty signature reported empty")
	}
	if !EmptySignature().IsEmpty() {
		t.Error("empty signature not reported empty")
	}
}

func TestCompatibleSignatures(t *testing.T) {
	s1 := NewSignature([]Action{"m"}, []Action{"a"}, []Action{"h1"})
	s2 := NewSignature([]Action{"a"}, []Action{"m"}, []Action{"h2"})
	if err := CompatibleSignatures([]Signature{s1, s2}); err != nil {
		t.Errorf("compatible pair rejected: %v", err)
	}
	// Output/output clash (Def 2.3 condition 2).
	s3 := NewSignature(nil, []Action{"a"}, nil)
	if err := CompatibleSignatures([]Signature{s1, s3}); err == nil {
		t.Error("shared outputs accepted")
	}
	// Internal action clash (Def 2.3 condition 1).
	s4 := NewSignature(nil, nil, []Action{"m"})
	if err := CompatibleSignatures([]Signature{s1, s4}); err == nil {
		t.Error("internal overlap accepted")
	}
}

func TestComposeSignatures(t *testing.T) {
	// Def 2.4: matched in/out become output of the composition.
	s1 := NewSignature([]Action{"req"}, []Action{"rsp"}, []Action{"t1"})
	s2 := NewSignature([]Action{"rsp"}, []Action{"req"}, []Action{"t2"})
	c := ComposeSignatures([]Signature{s1, s2})
	if len(c.In) != 0 {
		t.Errorf("composed In = %v, want empty", c.In)
	}
	if !c.Out.Equal(NewActionSet("req", "rsp")) {
		t.Errorf("composed Out = %v", c.Out)
	}
	if !c.Int.Equal(NewActionSet("t1", "t2")) {
		t.Errorf("composed Int = %v", c.Int)
	}
}

func TestComposeSignaturesAssocComm(t *testing.T) {
	s1 := NewSignature([]Action{"a"}, []Action{"b"}, nil)
	s2 := NewSignature([]Action{"b"}, []Action{"c"}, nil)
	s3 := NewSignature([]Action{"c"}, []Action{"d"}, nil)
	left := ComposeSignatures([]Signature{ComposeSignatures([]Signature{s1, s2}), s3})
	right := ComposeSignatures([]Signature{s1, ComposeSignatures([]Signature{s2, s3})})
	flat := ComposeSignatures([]Signature{s1, s2, s3})
	if !left.Equal(right) || !left.Equal(flat) {
		t.Errorf("associativity broken:\n left=%v\nright=%v\n flat=%v", left, right, flat)
	}
	perm := ComposeSignatures([]Signature{s3, s1, s2})
	if !perm.Equal(flat) {
		t.Error("commutativity broken")
	}
}

func TestHideSignature(t *testing.T) {
	s := NewSignature([]Action{"i"}, []Action{"o1", "o2"}, []Action{"h"})
	hd := HideSignature(s, NewActionSet("o1", "i", "zzz"))
	if !hd.Out.Equal(NewActionSet("o2")) {
		t.Errorf("hidden Out = %v", hd.Out)
	}
	if !hd.Int.Equal(NewActionSet("h", "o1")) {
		t.Errorf("hidden Int = %v", hd.Int)
	}
	// Hiding never touches inputs (Def 2.6 only moves out∩S).
	if !hd.In.Equal(s.In) {
		t.Errorf("hidden In = %v", hd.In)
	}
}

func TestMapActions(t *testing.T) {
	s := NewActionSet("a", "b")
	m := s.MapActions(func(a Action) Action { return "g_" + a })
	if !m.Equal(NewActionSet("g_a", "g_b")) {
		t.Errorf("MapActions = %v", m)
	}
}
