package psioa_test

import (
	"testing"

	"repro/internal/psioa"
	"repro/internal/testaut"
)

func TestHideSetMovesOutputs(t *testing.T) {
	c := testaut.Coin("c", 0.5)
	h := psioa.HideSet(c, psioa.NewActionSet("heads_c"))
	sig := h.Sig("h")
	if sig.Out.Has("heads_c") {
		t.Error("hidden action still in Out")
	}
	if !sig.Int.Has("heads_c") {
		t.Error("hidden action not in Int")
	}
	// Transition content unchanged.
	if h.Trans("h", "heads_c").P("done") != 1 {
		t.Error("hiding changed transitions")
	}
	if err := psioa.Validate(h, 100); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if h.ID() != "hide(c)" {
		t.Errorf("ID = %q", h.ID())
	}
}

func TestHideStateDependent(t *testing.T) {
	c := testaut.Coin("c", 0.5)
	h := psioa.Hide(c, func(q psioa.State) psioa.ActionSet {
		if q == "h" {
			return psioa.NewActionSet("heads_c")
		}
		return psioa.NewActionSet()
	})
	if !h.Sig("h").Int.Has("heads_c") {
		t.Error("hide at h failed")
	}
	if !h.Sig("t").Out.Has("tails_c") {
		t.Error("hide leaked to state t")
	}
	if !h.HiddenAt("h").Has("heads_c") {
		t.Error("HiddenAt wrong")
	}
}

func TestHideDoesNotTouchInputs(t *testing.T) {
	c := testaut.OpenCoin("c", 0.5)
	h := psioa.HideSet(c, psioa.NewActionSet("go_c"))
	if !h.Sig("q0").In.Has("go_c") {
		t.Error("hiding removed an input action; Def 2.6 only moves outputs")
	}
}

func TestHideIdempotentOnSignature(t *testing.T) {
	c := testaut.Coin("c", 0.5)
	s := psioa.NewActionSet("heads_c", "tails_c")
	h1 := psioa.HideSet(c, s)
	h2 := psioa.HideSet(h1, s)
	for _, q := range []psioa.State{"q0", "h", "t", "done"} {
		if !h1.Sig(q).Equal(h2.Sig(q)) {
			t.Errorf("hide not idempotent at %q", q)
		}
	}
}

func TestRenameMap(t *testing.T) {
	c := testaut.Coin("c", 0.5)
	r := psioa.RenameMap(c, map[psioa.Action]psioa.Action{"heads_c": "H", "tails_c": "T"})
	if !r.Sig("h").Out.Has("H") || r.Sig("h").Out.Has("heads_c") {
		t.Errorf("renamed sig = %v", r.Sig("h"))
	}
	// Def 2.8 item 4: η_{(r(A),q,r(a))} = η_{(A),q,a}.
	if r.Trans("h", "H").P("done") != 1 {
		t.Error("renamed transition wrong")
	}
	if err := psioa.Validate(r, 100); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// Unmapped actions unchanged.
	if !r.Sig("q0").Int.Has("flip_c") {
		t.Error("unmapped action renamed")
	}
}

func TestRenameNonInjectiveDetected(t *testing.T) {
	c := testaut.Coin("c", 0.5)
	// Collapse both outputs of state... heads and tails never co-occur in one
	// signature, so collapsing them is fine per state. Instead collapse a
	// renamed action onto a co-occurring one.
	two := psioa.NewBuilder("two", "q").
		AddState("q", psioa.NewSignature(nil, []psioa.Action{"a", "b"}, nil)).
		AddDet("q", "a", "q").
		AddDet("q", "b", "q").
		MustBuild()
	r := psioa.Rename(two, func(_ psioa.State, a psioa.Action) psioa.Action { return "same" })
	if err := r.CompatAt("q"); err == nil {
		t.Error("non-injective renaming not detected by CompatAt")
	}
	if err := psioa.Validate(r, 10); err == nil {
		t.Error("non-injective renaming not detected by Validate")
	}
	// Per-state collapsing that never conflicts is fine (heads/tails of coin).
	ok := psioa.Rename(c, func(_ psioa.State, a psioa.Action) psioa.Action {
		if a == "heads_c" || a == "tails_c" {
			return "outcome"
		}
		return a
	})
	if err := psioa.Validate(ok, 100); err != nil {
		t.Errorf("state-wise injective renaming rejected: %v", err)
	}
}

func TestRenameTransPanicsOnUnknown(t *testing.T) {
	c := testaut.Coin("c", 0.5)
	r := psioa.RenameMap(c, map[psioa.Action]psioa.Action{"heads_c": "H"})
	defer func() {
		if recover() == nil {
			t.Error("expected panic for action with no pre-image")
		}
	}()
	r.Trans("h", "heads_c") // old name no longer exists
}

func TestFreshRenamingAndInverse(t *testing.T) {
	s := psioa.NewActionSet("a", "b")
	m := psioa.FreshRenaming("g_", s)
	if m["a"] != "g_a" || m["b"] != "g_b" {
		t.Errorf("FreshRenaming = %v", m)
	}
	inv := psioa.InvertRenaming(m)
	if inv["g_a"] != "a" {
		t.Errorf("InvertRenaming = %v", inv)
	}
}

func TestInvertRenamingPanicsOnNonInjective(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	psioa.InvertRenaming(map[psioa.Action]psioa.Action{"a": "x", "b": "x"})
}

func TestHideOfComposePropagatesCompat(t *testing.T) {
	// hide over an incompatible product must still report incompatibility.
	mk := func(id string) *psioa.Table {
		return psioa.NewBuilder(id, "q").
			AddState("q", psioa.NewSignature(nil, []psioa.Action{"o"}, nil)).
			AddDet("q", "o", "q").
			MustBuild()
	}
	p := psioa.MustCompose(mk("a"), mk("b"))
	h := psioa.HideSet(p, psioa.NewActionSet("o"))
	if _, err := psioa.Explore(h, 10); err == nil {
		t.Error("incompatibility hidden by Hide wrapper")
	}
}
