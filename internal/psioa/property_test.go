package psioa_test

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/psioa"
	"repro/internal/rng"
	"repro/internal/testaut"
)

// genAut derives a random automaton from a quick-generated seed.
func genAut(id string, seed uint64, states, actions int) *psioa.Table {
	stream := rng.New(seed)
	return testaut.RandomAutomaton(id, testaut.RandomSpec{
		States: states, Actions: actions, Branch: 3, InputShare: 0.3,
	}, stream.Uint64)
}

// TestRandomAutomataValidQuick: every generated automaton satisfies the
// PSIOA constraints of Def 2.1.
func TestRandomAutomataValidQuick(t *testing.T) {
	prop := func(seed uint64, ns, na uint8) bool {
		a := genAut("r", seed, 1+int(ns%8), 1+int(na%6))
		return psioa.Validate(a, 1000) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestComposeProbabilityPreservedQuick: product transition measures are
// probability measures at every reachable state (Def 2.5 product measure).
func TestComposeProbabilityPreservedQuick(t *testing.T) {
	prop := func(seed uint64) bool {
		a1 := genAut("r1", seed, 4, 3)
		a2 := genAut("r2", seed^0xabcdef, 4, 3)
		p, err := psioa.Compose(a1, a2)
		if err != nil {
			return false
		}
		ex, err := psioa.Explore(p, 500)
		if err != nil {
			// Random automata can clash (shared internal/output names are
			// prevented by id-suffixing, so this should not happen).
			return false
		}
		for _, q := range ex.States {
			ok := true
			ex.Sigs[q].ForEachAction(func(act psioa.Action) {
				if !p.Trans(q, act).IsProb() {
					ok = false
				}
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestComposeCommutativeQuick: A‖B and B‖A have isomorphic reachable
// fragments (equal counts and equal action universes) — composition is
// commutative up to component order.
func TestComposeCommutativeQuick(t *testing.T) {
	prop := func(seed uint64) bool {
		a1 := genAut("r1", seed, 4, 3)
		a2 := genAut("r2", seed^0x1234, 4, 3)
		p12 := psioa.MustCompose(a1, a2)
		p21 := psioa.MustCompose(a2, a1)
		e12, err1 := psioa.Explore(p12, 500)
		e21, err2 := psioa.Explore(p21, 500)
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil // both fail compatibly
		}
		return len(e12.States) == len(e21.States) && e12.Acts.Equal(e21.Acts)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestHidePreservesDynamicsQuick: hiding changes signatures but never
// transition measures or reachability (Def 2.7).
func TestHidePreservesDynamicsQuick(t *testing.T) {
	prop := func(seed uint64, pick uint8) bool {
		a := genAut("r", seed, 5, 4)
		ex, err := psioa.Explore(a, 1000)
		if err != nil {
			return false
		}
		// Hide one arbitrary reachable action.
		acts := ex.Acts.Sorted()
		if len(acts) == 0 {
			return true
		}
		hidden := psioa.NewActionSet(acts[int(pick)%len(acts)])
		h := psioa.HideSet(a, hidden)
		exh, err := psioa.Explore(h, 1000)
		if err != nil {
			return false
		}
		if len(ex.States) != len(exh.States) || !ex.Acts.Equal(exh.Acts) {
			return false
		}
		for _, q := range ex.States {
			var same = true
			ex.Sigs[q].ForEachAction(func(act psioa.Action) {
				da, dh := a.Trans(q, act), h.Trans(q, act)
				for _, q2 := range da.Support() {
					if math.Abs(da.P(q2)-dh.P(q2)) > 1e-12 {
						same = false
					}
				}
			})
			if !same {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestRenameRoundTripQuick: renaming with a fresh bijection and renaming
// back is the identity on signatures and transitions (Lemma A.1).
func TestRenameRoundTripQuick(t *testing.T) {
	prop := func(seed uint64) bool {
		a := genAut("r", seed, 5, 4)
		ex, err := psioa.Explore(a, 1000)
		if err != nil {
			return false
		}
		m := psioa.FreshRenaming("g_", ex.Acts)
		inv := psioa.InvertRenaming(m)
		rr := psioa.RenameMap(psioa.RenameMap(a, m), inv)
		for _, q := range ex.States {
			if !rr.Sig(q).Equal(a.Sig(q)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestExploreDeterministicQuick: exploration is deterministic — two runs
// produce identical state sequences.
func TestExploreDeterministicQuick(t *testing.T) {
	prop := func(seed uint64) bool {
		a := genAut("r", seed, 6, 4)
		e1, err1 := psioa.Explore(a, 1000)
		e2, err2 := psioa.Explore(a, 1000)
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil
		}
		if len(e1.States) != len(e2.States) {
			return false
		}
		for i := range e1.States {
			if e1.States[i] != e2.States[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestAtomTransparencyQuick: wrapping in Atom changes nothing about the
// automaton's behaviour, only its composition granularity.
func TestAtomTransparencyQuick(t *testing.T) {
	prop := func(seed uint64) bool {
		a := genAut("r", seed, 5, 3)
		w := psioa.Atom(a)
		if w.ID() != a.ID() || w.Start() != a.Start() {
			return false
		}
		ex, err := psioa.Explore(a, 500)
		if err != nil {
			return false
		}
		for _, q := range ex.States {
			if !w.Sig(q).Equal(a.Sig(q)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestAtomPreventsFlattening: composing Atom-wrapped products keeps the
// pair structure.
func TestAtomPreventsFlattening(t *testing.T) {
	a := testaut.Coin("a", 0.5)
	b := testaut.Coin("b", 0.5)
	c := testaut.Coin("c", 0.5)
	inner := psioa.MustCompose(a, b)
	flat := psioa.MustCompose(inner, c)
	if len(flat.Components()) != 3 {
		t.Fatalf("flattened components = %d", len(flat.Components()))
	}
	paired := psioa.MustCompose(psioa.Atom(inner), c)
	if len(paired.Components()) != 2 {
		t.Fatalf("atom-paired components = %d", len(paired.Components()))
	}
	// Behaviour identical: same reachable count.
	e1, _ := psioa.Explore(flat, 1000)
	e2, _ := psioa.Explore(paired, 1000)
	if len(e1.States) != len(e2.States) {
		t.Errorf("states %d vs %d", len(e1.States), len(e2.States))
	}
}

// TestRandomWalkHitProbability sanity-checks the generator workloads: a
// symmetric walk of length 2 hits the end with the known probability under
// greedy run-to-completion scheduling... the walk is absorbing, so
// eventually hits with probability 1 given enough budget.
func TestRandomWalkHitProbability(t *testing.T) {
	w := testaut.RandomWalk("w", 2, 0.5)
	if err := psioa.Validate(w, 100); err != nil {
		t.Fatal(err)
	}
	reached, err := psioa.Reachable(w, "end", 100)
	if err != nil || !reached {
		t.Errorf("end unreachable: %v", err)
	}
}

// TestRandomSpecDefaults exercises the generator's defaulting.
func TestRandomSpecDefaults(t *testing.T) {
	stream := rng.New(1)
	a := testaut.RandomAutomaton("d", testaut.RandomSpec{}, stream.Uint64)
	if err := psioa.Validate(a, 100); err != nil {
		t.Fatal(err)
	}
}

// TestRandomAutomataDistinctSeeds: different seeds give different automata
// (almost always) — guards against a degenerate generator.
func TestRandomAutomataDistinctSeeds(t *testing.T) {
	same := 0
	for i := 0; i < 10; i++ {
		a := genAut("r", uint64(i), 6, 4)
		b := genAut("r", uint64(i)+1000, 6, 4)
		ea, _ := psioa.Explore(a, 100)
		eb, _ := psioa.Explore(b, 100)
		if fmt.Sprint(ea.Acts) == fmt.Sprint(eb.Acts) && len(ea.States) == len(eb.States) {
			same++
		}
	}
	if same == 10 {
		t.Error("generator appears seed-independent")
	}
}
