package psioa

import (
	"fmt"
	"sync"
)

// Renamed is the action-renaming operator of Def 2.8: r(A) renames, at each
// state q, the actions of sig(A)(q) through the injective map r(q). States
// and transition targets are untouched (Lemma A.1: r(A) is a PSIOA).
type Renamed struct {
	inner PSIOA
	r     func(State, Action) Action

	mu       sync.Mutex
	sigCache map[State]Signature
	preCache map[State]map[Action]Action
}

// Rename applies the state-dependent renaming r to A. For each state q,
// r(q, ·) must be injective on sig(A)(q)^; Validate checks this on the
// reachable fragment.
func Rename(a PSIOA, r func(State, Action) Action) *Renamed {
	return &Renamed{
		inner:    a,
		r:        r,
		sigCache: make(map[State]Signature),
		preCache: make(map[State]map[Action]Action),
	}
}

// RenameMap renames via a fixed, state-independent partial map; actions
// outside the map are unchanged. Used for the adversary-action renamings g
// of Section 4.9. The map must be injective and must not map any action onto
// an unrenamed action that co-occurs in a signature; Validate detects
// violations on the reachable fragment.
func RenameMap(a PSIOA, m map[Action]Action) *Renamed {
	cp := make(map[Action]Action, len(m))
	for k, v := range m {
		cp[k] = v
	}
	return Rename(a, func(_ State, act Action) Action {
		if to, ok := cp[act]; ok {
			return to
		}
		return act
	})
}

// ID implements PSIOA.
func (r *Renamed) ID() string { return "ren(" + r.inner.ID() + ")" }

// Inner returns the wrapped automaton.
func (r *Renamed) Inner() PSIOA { return r.inner }

// Start implements PSIOA.
func (r *Renamed) Start() State { return r.inner.Start() }

// Sig implements PSIOA per Def 2.8 item 3. Results are cached per state —
// r(q, ·) is a function, so the renamed signature at q never changes.
func (r *Renamed) Sig(q State) Signature {
	r.mu.Lock()
	if sig, ok := r.sigCache[q]; ok {
		r.mu.Unlock()
		return sig
	}
	r.mu.Unlock()
	inner := r.inner.Sig(q)
	f := func(a Action) Action { return r.r(q, a) }
	sig := Signature{
		In:  inner.In.MapActions(f),
		Out: inner.Out.MapActions(f),
		Int: inner.Int.MapActions(f),
	}
	r.mu.Lock()
	r.sigCache[q] = sig
	r.mu.Unlock()
	return sig
}

// preimages returns the inverse renaming at q, built once per state by
// scanning the (finite) inner signature.
func (r *Renamed) preimages(q State) map[Action]Action {
	r.mu.Lock()
	if pre, ok := r.preCache[q]; ok {
		r.mu.Unlock()
		return pre
	}
	r.mu.Unlock()
	innerSig := r.inner.Sig(q).All()
	pre := make(map[Action]Action, len(innerSig))
	for a := range innerSig {
		b := r.r(q, a)
		if _, dup := pre[b]; dup {
			panic(fmt.Sprintf("psioa: renaming of %q is not injective at state %q: two pre-images of %q", r.inner.ID(), q, b))
		}
		pre[b] = a
	}
	r.mu.Lock()
	r.preCache[q] = pre
	r.mu.Unlock()
	return pre
}

// Trans implements PSIOA per Def 2.8 item 4: dtrans(r(A)) =
// {(q, r(a), η) | (q, a, η) ∈ dtrans(A)}. The pre-image of the requested
// action comes from the per-state inverse map.
func (r *Renamed) Trans(q State, b Action) *Dist {
	pre, found := r.preimages(q)[b]
	if !found {
		disabledPanic(r.ID(), q, b)
	}
	return r.inner.Trans(q, pre)
}

// CompatAt checks injectivity of the renaming at q and delegates to the
// wrapped automaton.
func (r *Renamed) CompatAt(q State) error {
	innerSig := r.inner.Sig(q).All()
	seen := make(map[Action]Action, len(innerSig))
	for a := range innerSig {
		b := r.r(q, a)
		if prev, dup := seen[b]; dup {
			return fmt.Errorf("psioa: renaming of %q not injective at %q: %q and %q both map to %q", r.inner.ID(), q, prev, a, b)
		}
		seen[b] = a
	}
	if cc, ok := r.inner.(compatAtChecker); ok {
		return cc.CompatAt(q)
	}
	return nil
}

// FreshRenaming builds an injective map sending every action in s to a fresh
// name obtained by prefixing, suitable as the bijection g from AAct_A to
// fresh action names used by the dummy-adversary construction (Def 4.27).
func FreshRenaming(prefix string, s ActionSet) map[Action]Action {
	m := make(map[Action]Action, len(s))
	for a := range s {
		m[a] = Action(prefix + string(a))
	}
	return m
}

// InvertRenaming returns the inverse of an injective action map.
func InvertRenaming(m map[Action]Action) map[Action]Action {
	inv := make(map[Action]Action, len(m))
	for k, v := range m {
		if _, dup := inv[v]; dup {
			panic(fmt.Sprintf("psioa: InvertRenaming: map is not injective at %q", v))
		}
		inv[v] = k
	}
	return inv
}
