package psioa_test

import (
	"math"
	"testing"

	"repro/internal/psioa"
	"repro/internal/testaut"
)

func TestComposeBasics(t *testing.T) {
	c1 := testaut.Coin("c1", 0.5)
	c2 := testaut.Coin("c2", 0.25)
	p, err := psioa.Compose(c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	if p.ID() != "c1||c2" {
		t.Errorf("ID = %q", p.ID())
	}
	start := p.Start()
	if p.Project(start, 0) != "q0" || p.Project(start, 1) != "q0" {
		t.Error("start projection wrong")
	}
	sig := p.Sig(start)
	if !sig.Int.Has("flip_c1") || !sig.Int.Has("flip_c2") {
		t.Errorf("composed signature missing flips: %v", sig)
	}
	if err := psioa.Validate(p, 1000); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestComposeRejectsDuplicateIDs(t *testing.T) {
	c := testaut.Coin("c", 0.5)
	if _, err := psioa.Compose(c, c); err == nil {
		t.Error("expected duplicate-identifier error")
	}
}

func TestComposeRejectsEmpty(t *testing.T) {
	if _, err := psioa.Compose(); err == nil {
		t.Error("expected error for empty composition")
	}
}

func TestComposeFlattening(t *testing.T) {
	a := testaut.Coin("a", 0.5)
	b := testaut.Coin("b", 0.5)
	c := testaut.Coin("c", 0.5)
	left := psioa.MustCompose(psioa.MustCompose(a, b), c)
	right := psioa.MustCompose(a, psioa.MustCompose(b, c))
	flat := psioa.MustCompose(a, b, c)
	if left.ID() != flat.ID() || right.ID() != flat.ID() {
		t.Errorf("flattening failed: %q %q %q", left.ID(), right.ID(), flat.ID())
	}
	if left.Start() != flat.Start() || right.Start() != flat.Start() {
		t.Error("associativity of start states broken")
	}
	if len(left.Components()) != 3 {
		t.Errorf("components = %d, want 3", len(left.Components()))
	}
	// Transition measures agree on the nose.
	d1 := left.Trans(left.Start(), "flip_b")
	d2 := flat.Trans(flat.Start(), "flip_b")
	for _, q := range d1.Support() {
		if math.Abs(d1.P(q)-d2.P(q)) > 1e-9 {
			t.Errorf("transition measures differ at %q", q)
		}
	}
}

func TestComposeProductMeasure(t *testing.T) {
	// Two coins, one shared input trigger: exercise the ⊗/Dirac split of
	// Def 2.5. Use OpenCoin with same trigger name via renaming.
	c1 := testaut.OpenCoin("x", 0.5)
	ren := psioa.RenameMap(testaut.OpenCoin("y", 0.25), map[psioa.Action]psioa.Action{
		"go_y": "go_x", // now both coins flip on go_x
	})
	p := psioa.MustCompose(c1, ren)
	d := p.Trans(p.Start(), "go_x")
	if d.Len() != 4 {
		t.Fatalf("joint support size = %d, want 4 (both coins move)", d.Len())
	}
	// P(h,h) = 0.5 * 0.25.
	hh := p.Join([]psioa.State{"h", "h"})
	if math.Abs(d.P(hh)-0.125) > 1e-9 {
		t.Errorf("P(h,h) = %v, want 0.125", d.P(hh))
	}
	if !d.IsProb() {
		t.Error("joint transition is not a probability measure")
	}
}

func TestComposeNonParticipantStaysPut(t *testing.T) {
	c1 := testaut.OpenCoin("x", 0.5)
	c2 := testaut.OpenCoin("y", 0.5)
	p := psioa.MustCompose(c1, c2)
	d := p.Trans(p.Start(), "go_x")
	for _, q := range d.Support() {
		if p.Project(q, 1) != "q0" {
			t.Errorf("non-participant moved: %q", q)
		}
	}
}

func TestComposePingPongReachability(t *testing.T) {
	pinger, ponger := testaut.PingPong(3)
	p := psioa.MustCompose(pinger, ponger)
	ex, err := psioa.Explore(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Lock-step protocol: 2 states per round + terminal.
	if len(ex.States) != 7 {
		t.Errorf("reachable states = %d, want 7", len(ex.States))
	}
	done := p.Join([]psioa.State{"pdone", "rdone"})
	if _, ok := ex.Sigs[done]; !ok {
		t.Error("terminal state unreachable")
	}
}

func TestCompatAtDetectsOutputClash(t *testing.T) {
	// Two automata that both output "o" at some state: incompatible.
	mk := func(id string) *psioa.Table {
		return psioa.NewBuilder(id, "q").
			AddState("q", psioa.NewSignature(nil, []psioa.Action{"o"}, nil)).
			AddDet("q", "o", "q").
			MustBuild()
	}
	p := psioa.MustCompose(mk("a"), mk("b"))
	if err := p.CompatAt(p.Start()); err == nil {
		t.Error("output clash not detected")
	}
	if _, err := psioa.Explore(p, 10); err == nil {
		t.Error("Explore should surface incompatibility")
	}
	if err := psioa.CheckPartiallyCompatible(10, mk("a"), mk("b")); err == nil {
		t.Error("CheckPartiallyCompatible should fail")
	}
}

func TestPartialCompatibilityOnlyReachableMatters(t *testing.T) {
	// a and b clash only at a state unreachable under composition.
	a := psioa.NewBuilder("a", "q0").
		AddState("q0", psioa.NewSignature(nil, []psioa.Action{"ok_a"}, nil)).
		AddState("bad", psioa.NewSignature(nil, []psioa.Action{"clash"}, nil)).
		AddDet("q0", "ok_a", "q0").
		AddDet("bad", "clash", "bad").
		MustBuild()
	b := psioa.NewBuilder("b", "q0").
		AddState("q0", psioa.NewSignature(nil, []psioa.Action{"ok_b"}, nil)).
		AddState("bad", psioa.NewSignature(nil, []psioa.Action{"clash"}, nil)).
		AddDet("q0", "ok_b", "q0").
		AddDet("bad", "clash", "bad").
		MustBuild()
	if err := psioa.CheckPartiallyCompatible(100, a, b); err != nil {
		t.Errorf("partially compatible pair rejected: %v", err)
	}
}

func TestProjectID(t *testing.T) {
	p := psioa.MustCompose(testaut.Coin("a", 0.5), testaut.Coin("b", 0.5))
	q, ok := p.ProjectID(p.Start(), "b")
	if !ok || q != "q0" {
		t.Errorf("ProjectID = %q,%v", q, ok)
	}
	if _, ok := p.ProjectID(p.Start(), "zzz"); ok {
		t.Error("ProjectID found nonexistent component")
	}
}

func TestJoinSplitRoundTrip(t *testing.T) {
	p := psioa.MustCompose(testaut.Coin("a", 0.5), testaut.Coin("b", 0.5))
	qs := []psioa.State{"h", "t"}
	if got := p.Split(p.Join(qs)); got[0] != "h" || got[1] != "t" {
		t.Errorf("Join/Split round trip = %v", got)
	}
}
