package psioa_test

import (
	"fmt"

	"repro/internal/psioa"
	"repro/internal/testaut"
)

// ExampleCompose builds the parallel composition of two automata and shows
// the composed signature at the start state: matched input/output pairs
// become outputs of the composition (Def 2.4).
func ExampleCompose() {
	pinger, ponger := testaut.PingPong(1)
	w, err := psioa.Compose(pinger, ponger)
	if err != nil {
		panic(err)
	}
	sig := w.Sig(w.Start())
	fmt.Println("in: ", sig.In)
	fmt.Println("out:", sig.Out)
	// Output:
	// in:  {pong}
	// out: {ping}
}

// ExampleHideSet reclassifies an output action as internal (Def 2.6): the
// trace no longer shows it, but the dynamics are unchanged.
func ExampleHideSet() {
	c := testaut.Coin("c", 1.0) // always heads
	h := psioa.HideSet(c, psioa.NewActionSet("heads_c"))
	fmt.Println("before:", c.Sig("h").Out)
	fmt.Println("after: ", h.Sig("h").Out, "internal:", h.Sig("h").Int)
	// Output:
	// before: {heads_c}
	// after:  {} internal: {heads_c}
}

// ExampleRenameMap applies an injective action renaming (Def 2.8),
// preserving the transition structure (Lemma A.1).
func ExampleRenameMap() {
	c := testaut.Coin("c", 1.0)
	r := psioa.RenameMap(c, map[psioa.Action]psioa.Action{"heads_c": "fresh_name"})
	fmt.Println(r.Sig("h").Out)
	fmt.Println(r.Trans("h", "fresh_name").P("done"))
	// Output:
	// {fresh_name}
	// 1
}

// ExampleExplore performs a bounded reachability analysis and reports the
// reachable fragment.
func ExampleExplore() {
	c := testaut.Coin("c", 0.5)
	ex, err := psioa.Explore(c, 100)
	if err != nil {
		panic(err)
	}
	fmt.Println("states:", len(ex.States))
	fmt.Println("acts:  ", ex.Acts)
	// Output:
	// states: 4
	// acts:   {flip_c,heads_c,tails_c}
}
