package psioa_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/measure"
	"repro/internal/psioa"
	"repro/internal/testaut"
)

func TestBuilderValid(t *testing.T) {
	c := testaut.Coin("c", 0.5)
	if c.ID() != "c" || c.Start() != "q0" {
		t.Errorf("ID/Start wrong: %q %q", c.ID(), c.Start())
	}
	d := c.Trans("q0", "flip_c")
	if math.Abs(d.P("h")-0.5) > 1e-9 || math.Abs(d.P("t")-0.5) > 1e-9 {
		t.Errorf("flip measure wrong: %v", d)
	}
	if err := psioa.Validate(c, 100); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBuilderRejectsMissingStart(t *testing.T) {
	_, err := psioa.NewBuilder("x", "nowhere").Build()
	if err == nil || !strings.Contains(err.Error(), "start state") {
		t.Errorf("expected start-state error, got %v", err)
	}
}

func TestBuilderRejectsUnenabledTransition(t *testing.T) {
	_, err := psioa.NewBuilder("x", "q").
		AddState("q", psioa.EmptySignature()).
		AddDet("q", "a", "q").
		Build()
	if err == nil {
		t.Error("expected error for transition outside signature")
	}
}

func TestBuilderRejectsMissingTransition(t *testing.T) {
	_, err := psioa.NewBuilder("x", "q").
		AddState("q", psioa.NewSignature(nil, []psioa.Action{"a"}, nil)).
		Build()
	if err == nil || !strings.Contains(err.Error(), "E1") {
		t.Errorf("expected action-enabling (E1) error, got %v", err)
	}
}

func TestBuilderRejectsSubProbTransition(t *testing.T) {
	d := measure.New[psioa.State]()
	d.Add("q", 0.5)
	_, err := psioa.NewBuilder("x", "q").
		AddState("q", psioa.NewSignature(nil, []psioa.Action{"a"}, nil)).
		AddTrans("q", "a", d).
		Build()
	if err == nil || !strings.Contains(err.Error(), "mass") {
		t.Errorf("expected mass error, got %v", err)
	}
}

func TestBuilderRejectsUndeclaredTarget(t *testing.T) {
	_, err := psioa.NewBuilder("x", "q").
		AddState("q", psioa.NewSignature(nil, []psioa.Action{"a"}, nil)).
		AddDet("q", "a", "ghost").
		Build()
	if err == nil || !strings.Contains(err.Error(), "undeclared") {
		t.Errorf("expected undeclared-target error, got %v", err)
	}
}

func TestBuilderRejectsOverlappingSignature(t *testing.T) {
	_, err := psioa.NewBuilder("x", "q").
		AddState("q", psioa.NewSignature([]psioa.Action{"a"}, []psioa.Action{"a"}, nil)).
		AddDet("q", "a", "q").
		Build()
	if err == nil {
		t.Error("expected signature disjointness error")
	}
}

func TestBuilderRejectsDuplicates(t *testing.T) {
	_, err := psioa.NewBuilder("x", "q").
		AddState("q", psioa.EmptySignature()).
		AddState("q", psioa.EmptySignature()).
		Build()
	if err == nil {
		t.Error("expected duplicate-state error")
	}
	_, err = psioa.NewBuilder("x", "q").
		AddState("q", psioa.NewSignature(nil, []psioa.Action{"a"}, nil)).
		AddDet("q", "a", "q").
		AddDet("q", "a", "q").
		Build()
	if err == nil {
		t.Error("expected duplicate-transition error")
	}
}

func TestTransPanicsOnDisabled(t *testing.T) {
	c := testaut.Coin("c", 0.5)
	defer func() {
		if recover() == nil {
			t.Error("expected panic stepping disabled action")
		}
	}()
	c.Trans("q0", "heads_c")
}

func TestSigPanicsOnUnknownState(t *testing.T) {
	c := testaut.Coin("c", 0.5)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on unknown state")
		}
	}()
	c.Sig("nope")
}

func TestFuncAutomaton(t *testing.T) {
	// Unbounded counter as a functional automaton.
	inc := psioa.Action("inc")
	f := &psioa.Func{
		Name:    "unbounded",
		StartSt: "0",
		SigFn: func(q psioa.State) psioa.Signature {
			return psioa.NewSignature(nil, []psioa.Action{inc}, nil)
		},
		TransFn: func(q psioa.State, a psioa.Action) *psioa.Dist {
			n := 0
			for i := 0; i < len(q); i++ {
				n = n*10 + int(q[i]-'0')
			}
			return measure.Dirac(psioa.State(itoa(n + 1)))
		},
	}
	q := f.Start()
	for i := 0; i < 5; i++ {
		q = f.Trans(q, inc).Support()[0]
	}
	if q != "5" {
		t.Errorf("counter state = %q, want 5", q)
	}
	defer func() {
		if recover() == nil {
			t.Error("Func.Trans should panic on disabled action")
		}
	}()
	f.Trans("0", "nope")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
