package psioa

import (
	"reflect"
	"sort"

	"repro/internal/intern"
	"repro/internal/obs"
)

// Sorted-action memoization for the exploration and scheduling hot paths.
//
// Explore, Greedy/Random schedulers and the engine fingerprint all need
// "the actions of sig(A)(q), sorted" at every visited state, and the naive
// rendering (sig.All().Sorted()) allocates two union sets and re-sorts on
// every call. Signatures, however, are stable values in this codebase:
// Table automata store one Signature per state and Product/wrapper automata
// cache the composed Signature per state, so the identity of a signature's
// underlying sets is a faithful memo key. Automata that build fresh
// signature maps per call only lose the memoization (every lookup misses
// and falls back to the sort), never correctness — distinct maps with equal
// contents sort to equal slices.
//
// The memo is process-global and bounded: when it exceeds sortMemoLimit
// entries it is dropped wholesale (entries are recomputable), which keeps
// long-running daemons that churn through many automata from leaking.

// sigIdent identifies a signature by the identity of its component sets.
type sigIdent struct {
	in, out, inner uintptr
	local          bool
}

// sortMemoLimit bounds the memo — and, because entries pin their
// signature sets, the live heap the memo can hold across workloads. Hot
// loops (repeated measures over one automaton) touch at most a few
// thousand distinct signatures, so a small cap keeps their hit rate while
// a state-space sweep that churns through hundreds of thousands of
// signatures cannot leave hundreds of MB pinned for the GC to scan on
// behalf of every later operation in the process.
const sortMemoLimit = 1 << 13

// memoEntry pins the signature's sets alongside the sorted slice. The
// pinning is what makes identity keying sound: while an entry is live its
// sets cannot be collected, so no later allocation can reuse their
// addresses and a pointer match always identifies the very same sets.
type memoEntry struct {
	in, out, inner ActionSet
	acts           []Action
}

// sortMemo is a read-mostly concurrent map: steady-state hits are one
// atomic load with no lock, so the parallel kernels' shards no longer
// serialize on an RWMutex for every Choose (the dominant contention source
// E21 measured). The cap preserves the wholesale-drop bound above.
var sortMemo = intern.NewRM[sigIdent, memoEntry](sortMemoLimit)

// Contention instruments for the sort memo. The memo sits on the hottest
// scheduler paths, so its hit rate and reset churn are the direct signal
// for the interned-ID contention hypothesis (ROADMAP item 2). Hits and
// misses are one atomic add on paths that already take the memo lock.
var (
	cSortMemoHits   = obs.C("psioa.sortmemo.hits")
	cSortMemoMisses = obs.C("psioa.sortmemo.misses")
	cSortMemoResets = obs.C("psioa.sortmemo.resets")
	gSortMemoSize   = obs.G("psioa.sortmemo.entries")
)

// SortMemoStats is a point-in-time view of the sorted-action memo: cumulative
// hit/miss/reset counts and the entries currently pinned.
type SortMemoStats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Resets  int64 `json:"resets"`
	Entries int   `json:"entries"`
}

// SortMemoSnapshot reads the memo's counters and current size.
func SortMemoSnapshot() SortMemoStats {
	n := sortMemo.Len()
	return SortMemoStats{
		Hits:    cSortMemoHits.Value(),
		Misses:  cSortMemoMisses.Value(),
		Resets:  cSortMemoResets.Value(),
		Entries: n,
	}
}

// ResetSortMemo drops the process-global memo. Entries are recomputable, so
// this only costs warm-up; callers that time independent workloads in one
// process (benchmark harnesses) use it to unpin the previous workload's
// signature sets — a handful of live entries scattered across an old
// workload's spans keeps those spans in use, and every GC cycle of the next
// workload re-sweeps them.
func ResetSortMemo() {
	sortMemo.Reset()
	cSortMemoResets.Inc()
	gSortMemoSize.Set(0)
}

func setPtr(s ActionSet) uintptr {
	if s == nil {
		return 0
	}
	return reflect.ValueOf(s).Pointer()
}

func sortedMemoized(sig Signature, local bool) []Action {
	key := sigIdent{in: setPtr(sig.In), out: setPtr(sig.Out), inner: setPtr(sig.Int), local: local}
	if ent, ok := sortMemo.Get(key); ok {
		cSortMemoHits.Inc()
		return ent.acts
	}
	cSortMemoMisses.Inc()
	n := len(sig.Out) + len(sig.Int)
	if !local {
		n += len(sig.In)
	}
	acts := make([]Action, 0, n)
	if !local {
		for a := range sig.In {
			acts = append(acts, a)
		}
	}
	for a := range sig.Out {
		acts = append(acts, a)
	}
	for a := range sig.Int {
		acts = append(acts, a)
	}
	sort.Slice(acts, func(i, j int) bool { return acts[i] < acts[j] })
	// Valid signatures are disjoint; compress duplicates anyway so invalid
	// ones (checked later by Validate) still yield set semantics.
	dedup := acts[:0]
	for i, a := range acts {
		if i == 0 || a != dedup[len(dedup)-1] {
			dedup = append(dedup, a)
		}
	}
	acts = dedup
	if sortMemo.Set(key, memoEntry{in: sig.In, out: sig.Out, inner: sig.Int, acts: acts}) {
		cSortMemoResets.Inc()
	}
	gSortMemoSize.Set(int64(sortMemo.Len()))
	return acts
}

// SortedAll returns sig^ = in ∪ out ∪ int in lexicographic order, memoized
// by the identity of the signature's sets. The returned slice is shared and
// MUST NOT be modified; copy before sorting differently or appending.
func SortedAll(sig Signature) []Action { return sortedMemoized(sig, false) }

// SortedLocal returns the locally controlled actions out ∪ int in
// lexicographic order, memoized like SortedAll. The returned slice is
// shared and MUST NOT be modified.
func SortedLocal(sig Signature) []Action { return sortedMemoized(sig, true) }
