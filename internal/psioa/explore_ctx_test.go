package psioa_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/psioa"
	"repro/internal/resilience"
)

// chain builds a deterministic n-state chain automaton, large enough to
// cross the checkpoint's amortized poll interval several times.
func chain(n int) psioa.PSIOA {
	b := psioa.NewBuilder("chain", "q0")
	for i := 0; i < n-1; i++ {
		act := psioa.Action(fmt.Sprintf("step%d", i))
		b.AddState(psioa.State(fmt.Sprintf("q%d", i)),
			psioa.NewSignature(nil, []psioa.Action{act}, nil))
		b.AddDet(psioa.State(fmt.Sprintf("q%d", i)), act, psioa.State(fmt.Sprintf("q%d", i+1)))
	}
	b.AddState(psioa.State(fmt.Sprintf("q%d", n-1)), psioa.NewSignature(nil, nil, nil))
	return b.MustBuild()
}

func TestExploreCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ex, err := psioa.ExploreCtx(ctx, chain(5000), 10000, nil)
	if !errors.Is(err, resilience.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if ex != nil {
		t.Error("cancellation must not return a partial exploration")
	}
}

func TestExploreCtxBudgetPartial(t *testing.T) {
	bud := resilience.NewBudget(1000, 0, 0)
	ex, err := psioa.ExploreCtx(nil, chain(5000), 10000, bud)
	if !resilience.IsBudget(err) {
		t.Fatalf("err = %v, want budget", err)
	}
	if ex == nil || !ex.Truncated {
		t.Fatal("budget stop should return a truncated partial exploration")
	}
	// The partial covers a prefix: at least the budget, at most the budget
	// plus one amortized poll interval.
	if n := len(ex.States); n < 1000-256 || n > 1000+256 {
		t.Errorf("partial exploration has %d states, want ~1000", n)
	}
	// The prefix is a genuine BFS prefix of the full exploration.
	full, ferr := psioa.Explore(chain(5000), 10000)
	if ferr != nil {
		t.Fatal(ferr)
	}
	for i, q := range ex.States {
		if full.States[i] != q {
			t.Fatalf("partial state %d = %q, full has %q: not a prefix", i, q, full.States[i])
		}
	}
}

func TestExploreCtxUnlimitedMatchesExplore(t *testing.T) {
	// A live context and a generous budget must not change the result.
	a := chain(600)
	full, err := psioa.Explore(a, 10000)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := psioa.ExploreCtx(context.Background(), a, 10000, resilience.NewBudget(1<<30, 1<<30, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.States) != len(full.States) || ex.Truncated != full.Truncated {
		t.Errorf("hardened exploration diverged: %d/%v vs %d/%v",
			len(ex.States), ex.Truncated, len(full.States), full.Truncated)
	}
}
