package resilience_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/resilience"
)

// drive steps a checkpoint n times with one state each, returning the first
// terminal error.
func drive(ck *resilience.Checkpoint, n int) error {
	for i := 0; i < n; i++ {
		if err := ck.Step(1, 0); err != nil {
			return err
		}
	}
	return ck.Finish()
}

func TestNilCheckpointIsFree(t *testing.T) {
	ck := resilience.NewCheckpoint(nil, nil)
	if ck != nil {
		t.Fatal("nothing to enforce should yield a nil checkpoint")
	}
	if err := drive(ck, 10000); err != nil {
		t.Fatalf("nil checkpoint errored: %v", err)
	}
}

func TestCheckpointCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ck := resilience.NewCheckpoint(ctx, nil)
	if ck == nil {
		t.Fatal("context-bearing checkpoint should be non-nil")
	}
	if err := drive(ck, 100); err != nil {
		t.Fatalf("live context errored: %v", err)
	}
	cancel()
	err := drive(ck, 10000)
	if !errors.Is(err, resilience.ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled checkpoint = %v, want ErrCancelled wrapping context.Canceled", err)
	}
}

func TestCheckpointDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	err := drive(resilience.NewCheckpoint(ctx, nil), 10000)
	if !errors.Is(err, resilience.ErrDeadline) {
		t.Fatalf("expired checkpoint = %v, want ErrDeadline", err)
	}
}

func TestBudgetStates(t *testing.T) {
	b := resilience.NewBudget(1000, 0, 0)
	err := drive(resilience.NewCheckpoint(nil, b), 100000)
	if !resilience.IsBudget(err) {
		t.Fatalf("err = %v, want budget", err)
	}
	var be *resilience.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetError", err)
	}
	if be.Dimension != "states" {
		t.Errorf("Dimension = %q, want states", be.Dimension)
	}
	// Amortized polling overshoots by at most one poll interval.
	if be.States <= 1000 || be.States > 1000+512 {
		t.Errorf("States = %d, want in (1000, 1512]", be.States)
	}
	if resilience.Class(err) != "budget" {
		t.Errorf("Class = %q, want budget", resilience.Class(err))
	}
}

func TestBudgetTransitions(t *testing.T) {
	b := resilience.NewBudget(0, 50, 0)
	ck := resilience.NewCheckpoint(nil, b)
	var err error
	for i := 0; i < 1000 && err == nil; i++ {
		err = ck.Step(0, 1)
	}
	var be *resilience.BudgetError
	if !errors.As(err, &be) || be.Dimension != "transitions" {
		t.Fatalf("err = %v, want transitions *BudgetError", err)
	}
}

func TestBudgetWallClock(t *testing.T) {
	b := resilience.NewBudget(0, 0, time.Nanosecond)
	time.Sleep(time.Millisecond)
	err := drive(resilience.NewCheckpoint(nil, b), 10000)
	var be *resilience.BudgetError
	if !errors.As(err, &be) || be.Dimension != "wallclock" {
		t.Fatalf("err = %v, want wallclock *BudgetError", err)
	}
	if be.Elapsed <= 0 {
		t.Errorf("Elapsed = %v, want > 0", be.Elapsed)
	}
}

// TestBudgetShared pins that one budget bounds the sum of work across
// checkpoints (one job = several kernel calls sharing the job's budget).
func TestBudgetShared(t *testing.T) {
	b := resilience.NewBudget(1000, 0, 0)
	if err := drive(resilience.NewCheckpoint(nil, b), 600); err != nil {
		t.Fatalf("first call within budget errored: %v", err)
	}
	err := drive(resilience.NewCheckpoint(nil, b), 600)
	if !resilience.IsBudget(err) {
		t.Fatalf("second call should exhaust the shared budget, got %v", err)
	}
	s, _ := b.Used()
	if s < 1000 {
		t.Errorf("Used states = %d, want >= 1000", s)
	}
}

func TestDefaultBudget(t *testing.T) {
	prev := resilience.SetDefaultBudget(resilience.NewBudget(100, 0, 0))
	defer resilience.SetDefaultBudget(prev)
	// An explicit nil budget falls back to the process default.
	err := drive(resilience.NewCheckpoint(nil, nil), 100000)
	if !resilience.IsBudget(err) {
		t.Fatalf("default budget not enforced: %v", err)
	}
	// An explicit budget wins over the default.
	if err := drive(resilience.NewCheckpoint(nil, resilience.NewBudget(1000000, 0, 0)), 5000); err != nil {
		t.Fatalf("explicit budget should override the default: %v", err)
	}
}
