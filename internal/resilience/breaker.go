package resilience

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/obs"
)

var (
	cBreakerOpened   = obs.C("resilience.breaker.opened")
	cBreakerRejected = obs.C("resilience.breaker.rejected")
)

// Breaker is a per-key circuit breaker for panics: after K consecutive
// panic-classified failures of the same key (a job fingerprint), the key is
// quarantined and Allow rejects it with ErrQuarantined. Any non-panic
// outcome — success or an ordinary error — resets the key's count: the
// breaker guards against crash loops, not against jobs that legitimately
// fail. A nil *Breaker allows everything.
type Breaker struct {
	mu     sync.Mutex
	k      int
	consec map[string]int
	open   map[string]bool
}

// NewBreaker returns a breaker quarantining a key after k consecutive
// panics; k <= 0 defaults to 3.
func NewBreaker(k int) *Breaker {
	if k <= 0 {
		k = 3
	}
	return &Breaker{k: k, consec: make(map[string]int), open: make(map[string]bool)}
}

// Allow reports whether work for key may run, returning an
// ErrQuarantined-classified error when the key's circuit is open.
func (b *Breaker) Allow(key string) error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.open[key] {
		cBreakerRejected.Inc()
		return fmt.Errorf("resilience: %w: %q after %d consecutive panics", ErrQuarantined, key, b.k)
	}
	return nil
}

// Observe records the outcome of running work for key. A *PanicError
// increments the key's consecutive-panic count (opening the circuit at K);
// anything else resets it.
func (b *Breaker) Observe(key string, err error) {
	if b == nil {
		return
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		b.mu.Lock()
		delete(b.consec, key)
		b.mu.Unlock()
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consec[key]++
	if b.consec[key] >= b.k && !b.open[key] {
		b.open[key] = true
		cBreakerOpened.Inc()
	}
}

// Open reports whether key's circuit is currently open.
func (b *Breaker) Open(key string) bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open[key]
}

// BreakerState is the observable state of one breaker key: whether its
// circuit is open and how many consecutive panics it has accumulated.
type BreakerState struct {
	Key         string `json:"key"`
	Open        bool   `json:"open"`
	Consecutive int    `json:"consecutive"`
}

// Snapshot returns the state of every key the breaker is tracking (open
// circuits and keys with a non-zero consecutive-panic count), sorted by
// key for stable output. A nil breaker returns nil.
func (b *Breaker) Snapshot() []BreakerState {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	keys := make(map[string]bool, len(b.open)+len(b.consec))
	for k := range b.open {
		keys[k] = true
	}
	for k := range b.consec {
		keys[k] = true
	}
	out := make([]BreakerState, 0, len(keys))
	for k := range keys {
		out = append(out, BreakerState{Key: k, Open: b.open[k], Consecutive: b.consec[k]})
	}
	b.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Reset closes key's circuit and clears its count (an operator action; the
// breaker has no automatic half-open probe).
func (b *Breaker) Reset(key string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.open, key)
	delete(b.consec, key)
}
