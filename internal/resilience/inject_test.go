package resilience_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/resilience"
)

func TestInjectorDisabledNeverFires(t *testing.T) {
	// No installed injector: every Fire* helper is a no-op.
	if resilience.Fire("anything") {
		t.Error("Fire fired with no injector installed")
	}
	if err := resilience.FireErr("anything"); err != nil {
		t.Errorf("FireErr = %v with no injector installed", err)
	}
	resilience.FirePanic("anything") // must not panic
	if err := resilience.FireDelay(context.Background(), "anything"); err != nil {
		t.Errorf("FireDelay = %v with no injector installed", err)
	}
	// Installed injector, but the point is not armed.
	restore := resilience.InstallInjector(resilience.NewInjector(1))
	defer restore()
	if resilience.Fire("unarmed") {
		t.Error("unarmed point fired")
	}
}

func TestInjectorDeterminism(t *testing.T) {
	sequence := func(seed uint64) []bool {
		in := resilience.NewInjector(seed).Arm("p", 0.5)
		restore := resilience.InstallInjector(in)
		defer restore()
		out := make([]bool, 64)
		for i := range out {
			out[i] = resilience.Fire("p")
		}
		return out
	}
	a, b := sequence(42), sequence(42)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Errorf("p=0.5 fired %d/%d times, want a mix", fired, len(a))
	}
	// A different seed gives a different sequence (overwhelmingly likely
	// over 64 draws).
	c := sequence(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical sequences")
	}
}

func TestInjectorArmN(t *testing.T) {
	in := resilience.NewInjector(1).ArmN("p", 1, 3)
	restore := resilience.InstallInjector(in)
	defer restore()
	fired := 0
	for i := 0; i < 10; i++ {
		if resilience.Fire("p") {
			fired++
		}
	}
	if fired != 3 {
		t.Errorf("ArmN(3) fired %d times, want 3", fired)
	}
	if in.Fired("p") != 3 || in.Seen("p") != 10 {
		t.Errorf("Fired/Seen = %d/%d, want 3/10", in.Fired("p"), in.Seen("p"))
	}
}

func TestFireErrIsTransientInjected(t *testing.T) {
	restore := resilience.InstallInjector(resilience.NewInjector(1).Arm("p", 1))
	defer restore()
	err := resilience.FireErr("p")
	if !errors.Is(err, resilience.ErrInjected) || !resilience.IsTransient(err) {
		t.Fatalf("FireErr = %v, want transient ErrInjected", err)
	}
}

func TestFireDelayHonoursContext(t *testing.T) {
	restore := resilience.InstallInjector(
		resilience.NewInjector(1).ArmDelay("slow", 1, 10*time.Second))
	defer restore()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := resilience.FireDelay(ctx, "slow")
	if !errors.Is(err, resilience.ErrDeadline) {
		t.Fatalf("FireDelay = %v, want ErrDeadline", err)
	}
	if el := time.Since(start); el > time.Second {
		t.Errorf("FireDelay took %v, should abort at the context deadline", el)
	}
}

func TestBreaker(t *testing.T) {
	b := resilience.NewBreaker(3)
	panicErr := resilience.Catch(func() error { panic("boom") })
	if err := b.Allow("k"); err != nil {
		t.Fatalf("fresh key rejected: %v", err)
	}
	// Two panics then a success: the success resets the count.
	b.Observe("k", panicErr)
	b.Observe("k", panicErr)
	b.Observe("k", nil)
	b.Observe("k", panicErr)
	b.Observe("k", panicErr)
	if b.Open("k") {
		t.Fatal("breaker opened before K consecutive panics")
	}
	b.Observe("k", panicErr)
	if !b.Open("k") {
		t.Fatal("breaker should open after 3 consecutive panics")
	}
	err := b.Allow("k")
	if !errors.Is(err, resilience.ErrQuarantined) {
		t.Fatalf("Allow = %v, want ErrQuarantined", err)
	}
	// Ordinary errors never open the circuit.
	for i := 0; i < 10; i++ {
		b.Observe("other", errors.New("ordinary failure"))
	}
	if b.Open("other") {
		t.Error("ordinary failures must not open the circuit")
	}
	// Keys are independent; Reset closes the circuit.
	if err := b.Allow("other"); err != nil {
		t.Errorf("independent key rejected: %v", err)
	}
	b.Reset("k")
	if b.Open("k") || b.Allow("k") != nil {
		t.Error("Reset should close the circuit")
	}
	// A nil breaker allows everything.
	var nb *resilience.Breaker
	if nb.Allow("k") != nil || nb.Open("k") {
		t.Error("nil breaker should allow everything")
	}
	nb.Observe("k", panicErr)
	nb.Reset("k")
}

func TestRetryTransientOnly(t *testing.T) {
	b := resilience.Backoff{Attempts: 4, Base: time.Microsecond}
	// Transient failures are retried until success.
	calls := 0
	err := resilience.Retry(context.Background(), b, func() error {
		calls++
		if calls < 3 {
			return resilience.Transient(errors.New("flaky"))
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Retry = %v after %d calls, want nil after 3", err, calls)
	}
	// Permanent errors are not retried.
	calls = 0
	perm := errors.New("permanent")
	if err := resilience.Retry(context.Background(), b, func() error { calls++; return perm }); !errors.Is(err, perm) || calls != 1 {
		t.Fatalf("Retry = %v after %d calls, want permanent after 1", err, calls)
	}
	// Attempts bound transient retries; the last error is returned.
	calls = 0
	err = resilience.Retry(context.Background(), b, func() error {
		calls++
		return resilience.Transient(errors.New("always"))
	})
	if !resilience.IsTransient(err) || calls != 4 {
		t.Fatalf("Retry = %v after %d calls, want transient after 4", err, calls)
	}
	// The zero policy runs exactly once.
	calls = 0
	resilience.Retry(context.Background(), resilience.Backoff{}, func() error {
		calls++
		return resilience.Transient(errors.New("x"))
	})
	if calls != 1 {
		t.Fatalf("zero Backoff ran %d times, want 1", calls)
	}
}

func TestRetryAbortsOnContext(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := resilience.Retry(ctx, resilience.Backoff{Attempts: 100, Base: 10 * time.Second}, func() error {
		return resilience.Transient(errors.New("flaky"))
	})
	if !errors.Is(err, resilience.ErrDeadline) {
		t.Fatalf("Retry = %v, want ErrDeadline from the backoff sleep", err)
	}
	if el := time.Since(start); el > time.Second {
		t.Errorf("Retry took %v, should abort at the context deadline", el)
	}
}
