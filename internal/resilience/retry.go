package resilience

import (
	"context"
	"time"

	"repro/internal/obs"
	"repro/internal/rng"
)

var (
	cRetries = obs.C("resilience.retries")
)

// Backoff is an exponential backoff policy with deterministic jitter.
// The zero value means "one attempt, no retries".
type Backoff struct {
	// Attempts is the total number of attempts (first try included);
	// values below 1 are treated as 1.
	Attempts int
	// Base is the delay before the first retry; doubled each retry.
	// Defaults to 10ms when retries are configured.
	Base time.Duration
	// Cap bounds the (pre-jitter) delay. Defaults to 2s.
	Cap time.Duration
	// Jitter in [0, 1) subtracts up to that fraction of the delay, drawn
	// from a stream seeded by Seed — deterministic across runs.
	Jitter float64
	// Seed seeds the jitter stream.
	Seed uint64
}

// Delay returns the backoff before retry number retry (1-based), drawing
// jitter from s (which may be nil when Jitter is 0). Exported so pollers —
// like the cluster coordinator's revival re-probe — can pace themselves
// with the same policy without going through Retry.
func (b Backoff) Delay(retry int, s *rng.Stream) time.Duration {
	base := b.Base
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	cap := b.Cap
	if cap <= 0 {
		cap = 2 * time.Second
	}
	d := base
	for i := 1; i < retry && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	if b.Jitter > 0 {
		d -= time.Duration(float64(d) * b.Jitter * s.Float64())
	}
	return d
}

// Retry runs fn up to b.Attempts times, sleeping the backoff between
// attempts. Only transient errors (IsTransient) are retried: a success,
// a permanent error, or exhausted attempts end the loop with fn's last
// result. Sleeps honour ctx; a context that terminates while waiting
// returns the classified context error instead of retrying.
func Retry(ctx context.Context, b Backoff, fn func() error) error {
	attempts := b.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var stream *rng.Stream
	if b.Jitter > 0 {
		stream = rng.New(b.Seed)
	}
	var err error
	for i := 1; ; i++ {
		err = fn()
		if err == nil || !IsTransient(err) || i >= attempts {
			return err
		}
		cRetries.Inc()
		if serr := sleepCtx(ctx, b.Delay(i, stream)); serr != nil {
			return serr
		}
	}
}
