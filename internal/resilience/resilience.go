// Package resilience is the hardening layer of the framework: cooperative
// cancellation checkpoints for the long-running kernels, work budgets with
// graceful degradation, panic isolation, a per-key circuit breaker,
// exponential backoff with deterministic jitter, and a seeded fault
// injector for chaos testing.
//
// Like internal/obs, the package follows the guarded no-op pattern: every
// hook a hot path invokes — a nil *Checkpoint, a disabled injector — costs
// a nil check or one atomic load plus a predictable branch, so hardened
// kernels run at full speed when nothing is armed.
//
// Error taxonomy (see docs/ROBUSTNESS.md):
//
//   - ErrCancelled / ErrDeadline classify context interruption; every error
//     a checkpoint returns for an expired context wraps one of them *and*
//     the underlying ctx.Err(), so both errors.Is(err, ErrDeadline) and
//     errors.Is(err, context.DeadlineExceeded) hold;
//   - ErrBudgetExceeded tags graceful degradation: the kernel stopped at
//     its work budget and may have returned a partial result (the
//     *BudgetError carries how far it got);
//   - ErrQueueFull and ErrQuarantined are load-shedding outcomes of the
//     daemon's bounded queue and circuit breaker;
//   - *PanicError is a recovered panic, classified with errors.As.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"repro/internal/obs"
)

// Sentinel errors. Every failure this package produces wraps exactly one of
// them (plus the underlying cause), so callers classify with errors.Is
// without parsing messages.
var (
	// ErrCancelled reports an operation interrupted by context
	// cancellation (client disconnect, shutdown).
	ErrCancelled = errors.New("operation cancelled")
	// ErrDeadline reports an operation interrupted by a context deadline
	// (job timeout).
	ErrDeadline = errors.New("operation deadline exceeded")
	// ErrBudgetExceeded reports an operation stopped at its work budget;
	// the concrete *BudgetError carries how far it got.
	ErrBudgetExceeded = errors.New("operation budget exceeded")
	// ErrQueueFull reports load shedding: the bounded async job queue is
	// saturated and the submission was rejected.
	ErrQueueFull = errors.New("job queue full")
	// ErrQuarantined reports a job fingerprint quarantined by the circuit
	// breaker after repeated panics.
	ErrQuarantined = errors.New("quarantined by circuit breaker")
	// ErrInjected tags deterministic faults raised by the Injector; chaos
	// tests use it to tell injected failures from organic ones.
	ErrInjected = errors.New("injected fault")
)

// Observability instruments for the recovery paths.
var (
	cPanics = obs.C("resilience.panics.recovered")
)

// CtxError classifies a context's termination: nil while the context is
// live, otherwise an error wrapping ErrDeadline or ErrCancelled together
// with the context's own error. A nil context is always live.
func CtxError(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	err := ctx.Err()
	if err == nil {
		return nil
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("resilience: %w: %w", ErrDeadline, err)
	}
	return fmt.Errorf("resilience: %w: %w", ErrCancelled, err)
}

// WrapCtx normalises an error produced under a cancelled or expired
// context: if err wraps a bare context error but not yet the matching
// sentinel, the sentinel is attached. Errors that are already classified
// (or unrelated to context termination) pass through unchanged.
func WrapCtx(err error) error {
	if err == nil || errors.Is(err, ErrDeadline) || errors.Is(err, ErrCancelled) {
		return err
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("resilience: %w: %w", ErrDeadline, err)
	}
	if errors.Is(err, context.Canceled) {
		return fmt.Errorf("resilience: %w: %w", ErrCancelled, err)
	}
	return err
}

// Class names the resilience classification of an error — "deadline",
// "cancelled", "budget", "queue-full", "quarantined", "panic",
// "transient" — or "" for errors this package does not classify. The
// daemon reports it alongside HTTP errors so clients can branch without
// parsing messages.
func Class(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrQueueFull):
		return "queue-full"
	case errors.Is(err, ErrQuarantined):
		return "quarantined"
	case errors.Is(err, ErrBudgetExceeded):
		return "budget"
	case errors.Is(err, ErrDeadline):
		return "deadline"
	case errors.Is(err, ErrCancelled):
		return "cancelled"
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		return "panic"
	}
	if IsTransient(err) {
		return "transient"
	}
	return ""
}

// PanicError is a panic recovered at an isolation boundary (a pool worker,
// an async job, an HTTP handler), preserving the panic value and the stack
// of the panicking goroutine. Classify with errors.As.
type PanicError struct {
	// Value is the rendered panic value.
	Value string
	// Stack is the goroutine stack captured at recovery.
	Stack string
}

// Error implements error. The stack is deliberately omitted: it is for
// logs and debugging, not for user-facing messages.
func (e *PanicError) Error() string {
	return "resilience: recovered panic: " + e.Value
}

// RecoverTo converts an in-flight panic into a *PanicError stored in
// *errp. Use directly as a deferred call at an isolation boundary:
//
//	func worker() (err error) {
//	    defer resilience.RecoverTo(&err)
//	    ...
//	}
func RecoverTo(errp *error) {
	r := recover()
	if r == nil {
		return
	}
	cPanics.Inc()
	*errp = &PanicError{Value: fmt.Sprint(r), Stack: string(debug.Stack())}
}

// Catch runs fn, converting a panic into a *PanicError return.
func Catch(fn func() error) (err error) {
	defer RecoverTo(&err)
	return fn()
}

// transientError marks an error as transient: safe to retry because the
// fault is expected to clear (an injected transient fault, a shed retry).
type transientError struct{ err error }

func (t *transientError) Error() string   { return t.err.Error() }
func (t *transientError) Unwrap() error   { return t.err }
func (t *transientError) Transient() bool { return true }

// Transient marks err as transient for IsTransient. A nil err stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether any error in err's chain is marked
// transient. Retry loops use it to decide whether another attempt can
// possibly succeed.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}
