package resilience_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/resilience"
)

// TestErrorClassification pins the taxonomy: every error the package
// produces classifies under exactly one sentinel via errors.Is, and the
// checkpoint's context errors additionally wrap the underlying ctx.Err().
func TestErrorClassification(t *testing.T) {
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()

	cancelErr := resilience.CtxError(cancelled)
	deadlineErr := resilience.CtxError(expired)

	cases := []struct {
		name  string
		err   error
		is    error
		class string
	}{
		{"cancelled", cancelErr, resilience.ErrCancelled, "cancelled"},
		{"deadline", deadlineErr, resilience.ErrDeadline, "deadline"},
		{"budget", fmt.Errorf("wrapped: %w", resilience.ErrBudgetExceeded), resilience.ErrBudgetExceeded, "budget"},
		{"queue-full", fmt.Errorf("wrapped: %w", resilience.ErrQueueFull), resilience.ErrQueueFull, "queue-full"},
		{"quarantined", fmt.Errorf("wrapped: %w", resilience.ErrQuarantined), resilience.ErrQuarantined, "quarantined"},
		{"transient", resilience.Transient(errors.New("flaky")), nil, "transient"},
	}
	for _, c := range cases {
		if c.is != nil && !errors.Is(c.err, c.is) {
			t.Errorf("%s: errors.Is failed for %v", c.name, c.err)
		}
		if got := resilience.Class(c.err); got != c.class {
			t.Errorf("%s: Class = %q, want %q", c.name, got, c.class)
		}
	}

	// Context classification also preserves the raw context errors, so
	// pre-resilience call sites checking errors.Is(err, context.Canceled)
	// keep working.
	if !errors.Is(cancelErr, context.Canceled) {
		t.Error("cancelled error should wrap context.Canceled")
	}
	if !errors.Is(deadlineErr, context.DeadlineExceeded) {
		t.Error("deadline error should wrap context.DeadlineExceeded")
	}
	if resilience.Class(nil) != "" || resilience.Class(errors.New("plain")) != "" {
		t.Error("nil and unclassified errors should have empty class")
	}
	if resilience.CtxError(nil) != nil || resilience.CtxError(context.Background()) != nil {
		t.Error("live or nil contexts should classify as nil")
	}
}

func TestWrapCtx(t *testing.T) {
	if resilience.WrapCtx(nil) != nil {
		t.Error("WrapCtx(nil) != nil")
	}
	plain := errors.New("plain")
	if resilience.WrapCtx(plain) != plain {
		t.Error("unrelated errors must pass through unchanged")
	}
	wrapped := resilience.WrapCtx(fmt.Errorf("op: %w", context.Canceled))
	if !errors.Is(wrapped, resilience.ErrCancelled) || !errors.Is(wrapped, context.Canceled) {
		t.Errorf("WrapCtx should attach ErrCancelled: %v", wrapped)
	}
	wrapped = resilience.WrapCtx(fmt.Errorf("op: %w", context.DeadlineExceeded))
	if !errors.Is(wrapped, resilience.ErrDeadline) {
		t.Errorf("WrapCtx should attach ErrDeadline: %v", wrapped)
	}
	// Already-classified errors are not double-wrapped.
	if again := resilience.WrapCtx(wrapped); again != wrapped {
		t.Error("classified errors must pass through unchanged")
	}
}

func TestPanicIsolation(t *testing.T) {
	err := resilience.Catch(func() error { panic("boom") })
	var pe *resilience.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Catch returned %v, want *PanicError", err)
	}
	if pe.Value != "boom" || !strings.Contains(pe.Stack, "resilience_test") {
		t.Errorf("PanicError = {Value: %q, Stack has test frame: %v}", pe.Value, strings.Contains(pe.Stack, "resilience_test"))
	}
	if resilience.Class(err) != "panic" {
		t.Errorf("Class = %q, want panic", resilience.Class(err))
	}
	if !strings.Contains(pe.Error(), "boom") || strings.Contains(pe.Error(), pe.Stack[:20]) {
		t.Error("Error() should carry the value, not the stack")
	}
	// No panic → the function's own result passes through.
	want := errors.New("ordinary")
	if got := resilience.Catch(func() error { return want }); got != want {
		t.Errorf("Catch = %v, want %v", got, want)
	}
}

func TestTransient(t *testing.T) {
	if resilience.Transient(nil) != nil {
		t.Error("Transient(nil) != nil")
	}
	base := errors.New("cause")
	terr := resilience.Transient(base)
	if !resilience.IsTransient(terr) || !errors.Is(terr, base) {
		t.Error("transient error should be transient and unwrap to its cause")
	}
	if resilience.IsTransient(base) || resilience.IsTransient(nil) {
		t.Error("unmarked errors are not transient")
	}
	// Transience survives wrapping.
	if !resilience.IsTransient(fmt.Errorf("outer: %w", terr)) {
		t.Error("transience should survive wrapping")
	}
}
