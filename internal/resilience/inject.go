package resilience

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/rng"
)

// Named fault points. Each is a specific place in the engine where the
// injector can raise a deterministic fault; docs/ROBUSTNESS.md documents
// where each one fires.
const (
	// FaultCacheEvict fires in engine.Cache.Get: a present entry is
	// evicted and reported as a miss, forcing recomputation.
	FaultCacheEvict = "cache.evict"
	// FaultTransitionPanic fires in the sched.Measure worklist expansion:
	// the kernel panics mid-transition, exercising panic isolation.
	FaultTransitionPanic = "transition.panic"
	// FaultSlowOp fires at kernel entry (psioa.Explore, sched.Measure): a
	// context-aware delay simulating a slow operation, exercising
	// deadlines.
	FaultSlowOp = "op.slow"
	// FaultJobTransient fires in engine.Runner.Run: the job fails with a
	// transient ErrInjected error, exercising the retry path.
	FaultJobTransient = "job.transient"
)

var (
	cInjected = obs.C("resilience.faults.injected")
)

// Injector raises deterministic faults at named points. Each armed point
// draws from its own seeded stream, so the per-point fire/skip sequence
// depends only on (seed, point name, hit index) — never on how concurrent
// goroutines interleave their hits across different points.
type Injector struct {
	mu     sync.Mutex
	seed   uint64
	points map[string]*faultPoint
}

type faultPoint struct {
	p         float64
	remaining int64 // fires left; negative means unlimited
	delay     time.Duration
	stream    *rng.Stream
	fired     int64
	seen      int64
}

// NewInjector returns an injector with no armed points; faults are drawn
// deterministically from seed.
func NewInjector(seed uint64) *Injector {
	return &Injector{seed: seed, points: make(map[string]*faultPoint)}
}

// Arm makes the named point fire with probability p on every hit.
// Arm(name, 1) fires always. Returns the injector for chaining.
func (in *Injector) Arm(name string, p float64) *Injector {
	return in.arm(name, p, -1, 0)
}

// ArmN is Arm limited to at most n fires; after that the point is spent.
func (in *Injector) ArmN(name string, p float64, n int) *Injector {
	return in.arm(name, p, int64(n), 0)
}

// ArmDelay arms a delaying point: when it fires, FireDelay sleeps d
// (honouring the caller's context).
func (in *Injector) ArmDelay(name string, p float64, d time.Duration) *Injector {
	return in.arm(name, p, -1, d)
}

func (in *Injector) arm(name string, p float64, remaining int64, d time.Duration) *Injector {
	h := fnv.New64a()
	h.Write([]byte(name))
	in.mu.Lock()
	defer in.mu.Unlock()
	in.points[name] = &faultPoint{
		p:         p,
		remaining: remaining,
		delay:     d,
		stream:    rng.New(in.seed ^ h.Sum64()),
	}
	return in
}

// Fired reports how many times the named point has fired.
func (in *Injector) Fired(name string) int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	if pt := in.points[name]; pt != nil {
		return pt.fired
	}
	return 0
}

// Seen reports how many times the named point has been hit (fired or not),
// i.e. how often the instrumented code path ran while this injector was
// installed.
func (in *Injector) Seen(name string) int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	if pt := in.points[name]; pt != nil {
		return pt.seen
	}
	return 0
}

// fire decides whether the named point fires on this hit.
func (in *Injector) fire(name string) (time.Duration, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	pt := in.points[name]
	if pt == nil {
		return 0, false
	}
	pt.seen++
	if pt.remaining == 0 {
		return 0, false
	}
	if pt.p < 1 && pt.stream.Float64() >= pt.p {
		return 0, false
	}
	if pt.remaining > 0 {
		pt.remaining--
	}
	pt.fired++
	return pt.delay, true
}

// The installed injector. The atomic.Bool is the fast-path gate: with no
// injector installed every Fire* helper is one atomic load and a branch.
var (
	injectorOn atomic.Bool
	injector   atomic.Pointer[Injector]
)

// InstallInjector installs in as the process-wide injector and returns a
// restore function reinstating the previous state. Installing nil disables
// injection. Tests must call restore (and not run fault points in
// parallel with unrelated tests exercising the same points).
func InstallInjector(in *Injector) (restore func()) {
	prev := injector.Swap(in)
	injectorOn.Store(in != nil)
	return func() {
		injector.Store(prev)
		injectorOn.Store(prev != nil)
	}
}

func installed(name string) (time.Duration, bool) {
	if !injectorOn.Load() {
		return 0, false
	}
	in := injector.Load()
	if in == nil {
		return 0, false
	}
	d, ok := in.fire(name)
	if ok {
		cInjected.Inc()
	}
	return d, ok
}

// Fire reports whether the named fault point fires on this hit. Callers
// implement the fault themselves (e.g. the cache drops an entry).
func Fire(name string) bool {
	_, ok := installed(name)
	return ok
}

// FireErr returns a transient ErrInjected-classified error when the named
// point fires, nil otherwise.
func FireErr(name string) error {
	if _, ok := installed(name); ok {
		return Transient(fmt.Errorf("resilience: %w at %q", ErrInjected, name))
	}
	return nil
}

// FirePanic panics with an injected-fault value when the named point
// fires. The panic is expected to be recovered at an isolation boundary
// and converted to a *PanicError.
func FirePanic(name string) {
	if _, ok := installed(name); ok {
		panic(fmt.Sprintf("injected panic at %q", name))
	}
}

// FireDelay sleeps the armed delay when the named point fires, aborting
// early — with the classified context error — if ctx terminates during the
// sleep. A nil ctx skips the delay entirely: the slow-op fault exists to
// exercise deadline handling, and a call path with no context has no
// deadline to exercise — delaying it would only stall legacy paths
// uninterruptibly.
func FireDelay(ctx context.Context, name string) error {
	if ctx == nil {
		return nil
	}
	d, ok := installed(name)
	if !ok || d <= 0 {
		return nil
	}
	return sleepCtx(ctx, d)
}

// sleepCtx sleeps for d or until ctx terminates, whichever is first,
// returning the classified context error in the latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return CtxError(ctx)
	}
}
