package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Budget bounds how much work an operation may perform. Usage counters are
// atomic so one budget can be shared across pool workers and memoized
// kernel calls of a single job: the whole job is bounded, not each call.
// The zero limit in any dimension means "unlimited".
type Budget struct {
	maxStates int64
	maxTrans  int64
	wall      time.Duration
	start     time.Time
	states    atomic.Int64
	trans     atomic.Int64
}

// NewBudget builds a budget of at most states explored states, transitions
// expanded transitions, and wall elapsed wall-clock time (measured from
// this call). Zero disables the corresponding dimension; NewBudget(0, 0, 0)
// returns an always-passing budget (prefer nil for that).
func NewBudget(states, transitions int64, wall time.Duration) *Budget {
	return &Budget{maxStates: states, maxTrans: transitions, wall: wall, start: time.Now()}
}

// Used reports the states and transitions charged so far. Checkpoints
// accumulate locally and flush every pollEvery steps, so during a run the
// value can lag by a bounded amount.
func (b *Budget) Used() (states, transitions int64) {
	if b == nil {
		return 0, 0
	}
	return b.states.Load(), b.trans.Load()
}

// check charges addStates/addTrans and returns a *BudgetError as soon as
// any enabled dimension is exhausted.
func (b *Budget) check(addStates, addTrans int64) error {
	s := b.states.Add(addStates)
	t := b.trans.Add(addTrans)
	if b.maxStates > 0 && s > b.maxStates {
		return b.errFor("states", s, t)
	}
	if b.maxTrans > 0 && t > b.maxTrans {
		return b.errFor("transitions", s, t)
	}
	if b.wall > 0 && time.Since(b.start) > b.wall {
		return b.errFor("wallclock", s, t)
	}
	return nil
}

func (b *Budget) errFor(dim string, states, trans int64) error {
	return &BudgetError{
		Dimension:   dim,
		States:      states,
		Transitions: trans,
		Elapsed:     time.Since(b.start),
	}
}

// BudgetError reports a budget-bounded stop, carrying how far the
// operation got before the budget ran out. It wraps ErrBudgetExceeded, so
// errors.Is(err, ErrBudgetExceeded) classifies it; kernels that can return
// a meaningful prefix pair it with a partial result.
type BudgetError struct {
	// Dimension is the exhausted limit: "states", "transitions" or
	// "wallclock".
	Dimension string
	// States and Transitions are the usage charged when the budget
	// tripped (cumulative across everything sharing the budget).
	States      int64
	Transitions int64
	// Elapsed is the wall-clock time since the budget was created.
	Elapsed time.Duration
}

// Error implements error.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("resilience: %s budget exceeded after %d states, %d transitions, %s",
		e.Dimension, e.States, e.Transitions, e.Elapsed.Round(time.Millisecond))
}

// Unwrap makes the error classify as ErrBudgetExceeded.
func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }

// IsBudget reports whether err is a budget-bounded stop, i.e. whether the
// result accompanying it (if any) is a usable partial prefix.
func IsBudget(err error) bool {
	return errors.Is(err, ErrBudgetExceeded)
}

// defaultBudget is the process-wide fallback budget consulted when a
// checkpoint is created without an explicit one. CLI tools install it from
// their -budget flags so even call paths that do not thread a budget (the
// experiment suite under dsebench) become bounded.
var defaultBudget atomic.Pointer[Budget]

// SetDefaultBudget installs (or, with nil, clears) the process-wide
// fallback budget and returns the previous one.
func SetDefaultBudget(b *Budget) *Budget {
	if b == nil {
		return defaultBudget.Swap(nil)
	}
	return defaultBudget.Swap(b)
}

// DefaultBudget returns the process-wide fallback budget, or nil when none
// is installed. Callers that substitute their own budget into a call path
// (e.g. the engine's per-job metering) consult it so an operator-installed
// -budget limit is never silently bypassed.
func DefaultBudget() *Budget { return defaultBudget.Load() }

// Limits reports the budget's configured bounds (zero = unlimited).
func (b *Budget) Limits() (states, transitions int64, wall time.Duration) {
	if b == nil {
		return 0, 0, 0
	}
	return b.maxStates, b.maxTrans, b.wall
}

// pollEvery is the amortization factor of Checkpoint.Step: the context and
// the shared budget are consulted once per pollEvery steps, bounding both
// the per-step cost (two adds, a decrement, a branch) and the overshoot
// past a limit (at most pollEvery states + the transitions charged with
// them).
const pollEvery = 256

// Checkpoint is the cooperative cancellation and budget probe kernels call
// once per unit of work. A nil *Checkpoint is valid and free, so legacy
// call paths (nil ctx, no budget) pay only the nil check.
type Checkpoint struct {
	ctx    context.Context
	done   <-chan struct{}
	budget *Budget
	states int64 // charged locally, flushed to budget every pollEvery steps
	trans  int64
	tick   int
}

// NewCheckpoint builds a checkpoint polling ctx and charging b (or the
// process default budget when b is nil). Returns nil — a free checkpoint —
// when there is nothing to enforce.
func NewCheckpoint(ctx context.Context, b *Budget) *Checkpoint {
	if b == nil {
		b = defaultBudget.Load()
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	if done == nil && b == nil {
		return nil
	}
	return &Checkpoint{ctx: ctx, done: done, budget: b, tick: pollEvery}
}

// Step charges states/trans units of work and, once per pollEvery calls,
// polls the context and the budget. A non-nil return is terminal: an
// ErrCancelled/ErrDeadline-classified context error or a *BudgetError.
func (c *Checkpoint) Step(states, trans int64) error {
	if c == nil {
		return nil
	}
	c.states += states
	c.trans += trans
	if c.tick--; c.tick > 0 {
		return nil
	}
	return c.flush()
}

// Finish flushes the residual locally-accumulated work into the budget and
// performs a final poll. Kernels call it before returning success so
// shared-budget accounting stays accurate across calls.
func (c *Checkpoint) Finish() error {
	if c == nil {
		return nil
	}
	return c.flush()
}

func (c *Checkpoint) flush() error {
	c.tick = pollEvery
	if c.done != nil {
		select {
		case <-c.done:
			return CtxError(c.ctx)
		default:
		}
	}
	if c.budget != nil {
		err := c.budget.check(c.states, c.trans)
		c.states, c.trans = 0, 0
		if err != nil {
			return err
		}
	}
	return nil
}
