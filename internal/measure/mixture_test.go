package measure

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMixtureBasics(t *testing.T) {
	d1 := MustFromMap(map[string]float64{"a": 1})
	d2 := MustFromMap(map[string]float64{"b": 1})
	m, err := Mixture([]float64{0.25, 0.75}, []*Dist[string]{d1, d2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.P("a")-0.25) > Eps || math.Abs(m.P("b")-0.75) > Eps {
		t.Errorf("mixture = %v", m)
	}
	if !m.IsProb() {
		t.Error("full mixture should be a probability measure")
	}
}

func TestMixtureSubConvex(t *testing.T) {
	d1 := Dirac("a")
	m, err := Mixture([]float64{0.5}, []*Dist[string]{d1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Deficit()-0.5) > Eps {
		t.Errorf("deficit = %v", m.Deficit())
	}
}

func TestMixtureErrors(t *testing.T) {
	d := Dirac("a")
	if _, err := Mixture([]float64{1}, []*Dist[string]{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Mixture([]float64{-0.5}, []*Dist[string]{d}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := Mixture([]float64{0.8, 0.8}, []*Dist[string]{d, d}); err == nil {
		t.Error("super-convex weights accepted")
	}
}

func TestMixturePreservesMassQuick(t *testing.T) {
	prop := func(w1, w2 uint8) bool {
		a := float64(w1%100) / 200
		b := float64(w2%100) / 200
		d1 := MustFromMap(map[string]float64{"x": 0.3, "y": 0.7})
		d2 := MustFromMap(map[string]float64{"y": 0.4, "z": 0.6})
		m, err := Mixture([]float64{a, b}, []*Dist[string]{d1, d2})
		if err != nil {
			return false
		}
		return math.Abs(m.Total()-(a+b)) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCondition(t *testing.T) {
	d := MustFromMap(map[string]float64{"a1": 0.2, "a2": 0.3, "b1": 0.5})
	c, err := Condition(d, func(s string) bool { return s[0] == 'a' })
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsProb() {
		t.Error("conditioned measure not normalised")
	}
	if math.Abs(c.P("a1")-0.4) > Eps || math.Abs(c.P("a2")-0.6) > Eps {
		t.Errorf("conditioned = %v", c)
	}
	if c.P("b1") != 0 {
		t.Error("excluded element kept mass")
	}
}

func TestConditionNullEvent(t *testing.T) {
	d := Dirac("a")
	if _, err := Condition(d, func(string) bool { return false }); err == nil {
		t.Error("conditioning on null event accepted")
	}
}
