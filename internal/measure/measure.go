// Package measure implements the discrete probability theory of Section 2.1:
// discrete (sub-)probability measures Disc(S)/SubDisc(S) on countable sets,
// Dirac measures, product measures, image measures, supports, and the
// distribution distances used by the balanced-scheduler relation (Def 3.6).
//
// Measures are represented as finite support maps from elements to weights.
// Elements must be comparable; throughout the framework they are canonical
// string encodings (see internal/codec), so Dist[string] is the workhorse.
package measure

import (
	"fmt"
	"math"
	"sort"
)

// Eps is the tolerance used when comparing probabilities and totals. Exact
// rational arithmetic would be overkill: every measure in the framework is
// built from user-supplied float weights and finitely many products/sums.
const Eps = 1e-9

// Dist is a discrete sub-probability measure over T: a finite-support
// weight function with total mass ≤ 1 (+Eps slack). A Dist with total mass 1
// is a probability measure, i.e. an element of Disc(T); with mass < 1 it is
// an element of SubDisc(T) as used by schedulers (Def 3.1), where the
// deficit 1 − |η| is the halting probability.
type Dist[T comparable] struct {
	w map[T]float64
}

// New returns an empty (zero-mass) distribution.
func New[T comparable]() *Dist[T] {
	return &Dist[T]{w: make(map[T]float64)}
}

// Dirac returns δ_x, the Dirac probability measure at x (Section 2.1).
func Dirac[T comparable](x T) *Dist[T] {
	d := New[T]()
	d.w[x] = 1
	return d
}

// FromMap builds a distribution from an explicit weight map. Weights must be
// non-negative and sum to at most 1+Eps. Zero weights are dropped so that
// Support is exactly the set of positive-weight elements.
func FromMap[T comparable](w map[T]float64) (*Dist[T], error) {
	d := New[T]()
	total := 0.0
	for x, p := range w {
		if p < 0 {
			return nil, fmt.Errorf("measure: negative weight %v for %v", p, x)
		}
		if p == 0 {
			continue
		}
		d.w[x] = p
		total += p
	}
	if total > 1+Eps {
		return nil, fmt.Errorf("measure: total mass %v exceeds 1", total)
	}
	return d, nil
}

// MustFromMap is FromMap that panics on invalid input; for literals in tests
// and in-package constructions whose validity is guaranteed by construction.
func MustFromMap[T comparable](w map[T]float64) *Dist[T] {
	d, err := FromMap(w)
	if err != nil {
		panic(err)
	}
	return d
}

// Uniform returns the uniform probability measure on the given elements.
// Duplicate elements accumulate weight. Panics if xs is empty.
func Uniform[T comparable](xs []T) *Dist[T] {
	if len(xs) == 0 {
		panic("measure: Uniform over empty support")
	}
	d := New[T]()
	p := 1.0 / float64(len(xs))
	for _, x := range xs {
		d.w[x] += p
	}
	return d
}

// P returns the probability mass assigned to x (0 if absent).
func (d *Dist[T]) P(x T) float64 { return d.w[x] }

// Add increases the mass at x by p. It is the building block for measure
// construction; callers are responsible for keeping the total ≤ 1 (validated
// by Total/IsProb when it matters). Negative p panics.
func (d *Dist[T]) Add(x T, p float64) {
	if p < 0 {
		panic(fmt.Sprintf("measure: Add negative mass %v", p))
	}
	if p == 0 {
		return
	}
	d.w[x] += p
}

// Total returns the total mass Σ_x d(x).
func (d *Dist[T]) Total() float64 {
	t := 0.0
	for _, p := range d.w {
		t += p
	}
	return t
}

// IsProb reports whether d is a probability measure (total mass 1 ± Eps).
func (d *Dist[T]) IsProb() bool { return math.Abs(d.Total()-1) <= Eps }

// IsSubProb reports whether d is a sub-probability measure (total ≤ 1+Eps).
func (d *Dist[T]) IsSubProb() bool { return d.Total() <= 1+Eps }

// Deficit returns 1 − Total(), the halting probability when d is a
// scheduler's choice sub-distribution (Def 3.1). Clamped at 0.
func (d *Dist[T]) Deficit() float64 {
	def := 1 - d.Total()
	if def < 0 {
		return 0
	}
	return def
}

// Len returns the size of the support.
func (d *Dist[T]) Len() int { return len(d.w) }

// Support returns supp(d): the elements with positive mass, in map order.
func (d *Dist[T]) Support() []T {
	s := make([]T, 0, len(d.w))
	for x := range d.w {
		s = append(s, x)
	}
	return s
}

// ForEach calls f for every (element, mass) pair with positive mass.
func (d *Dist[T]) ForEach(f func(x T, p float64)) {
	for x, p := range d.w {
		if p > 0 {
			f(x, p)
		}
	}
}

// Copy returns an independent copy of d.
func (d *Dist[T]) Copy() *Dist[T] {
	c := New[T]()
	for x, p := range d.w {
		c.w[x] = p
	}
	return c
}

// Scale returns the measure x ↦ c·d(x). c must be in [0, 1].
func (d *Dist[T]) Scale(c float64) *Dist[T] {
	if c < 0 || c > 1+Eps {
		panic(fmt.Sprintf("measure: Scale factor %v out of [0,1]", c))
	}
	s := New[T]()
	for x, p := range d.w {
		s.w[x] = c * p
	}
	return s
}

// Map returns the image measure of d under f: (f∗d)(y) = Σ_{f(x)=y} d(x).
// This is exactly the f-dist construction of Def 3.5 when d is an execution
// measure and f an insight function.
func Map[T, U comparable](d *Dist[T], f func(T) U) *Dist[U] {
	img := New[U]()
	for x, p := range d.w {
		img.w[f(x)] += p
	}
	return img
}

// Product returns the product measure d1 ⊗ d2 over pairs, represented via
// the combining function pair (typically a tuple codec):
// (d1⊗d2)(pair(x,y)) = d1(x)·d2(y) (Section 2.1).
func Product[T, U, V comparable](d1 *Dist[T], d2 *Dist[U], pair func(T, U) V) *Dist[V] {
	prod := New[V]()
	for x, px := range d1.w {
		for y, py := range d2.w {
			prod.w[pair(x, y)] += px * py
		}
	}
	return prod
}

// ProductN returns the n-fold product measure of probability measures over
// string-encoded components, combined with join (typically codec.EncodeTuple
// over the component list). Each factor contributes independently.
func ProductN(factors []*Dist[string], join func([]string) string) *Dist[string] {
	acc := New[string]()
	var rec func(i int, parts []string, p float64)
	rec = func(i int, parts []string, p float64) {
		if i == len(factors) {
			acc.w[join(parts)] += p
			return
		}
		for x, px := range factors[i].w {
			rec(i+1, append(parts, x), p*px)
		}
	}
	rec(0, make([]string, 0, len(factors)), 1)
	return acc
}

// Mixture returns the convex combination Σ wᵢ·dᵢ. Weights must be
// non-negative and sum to at most 1+Eps (sub-convex combinations yield
// sub-probability measures, matching the scheduler convexity of Def 3.1).
func Mixture[T comparable](ws []float64, ds []*Dist[T]) (*Dist[T], error) {
	if len(ws) != len(ds) {
		return nil, fmt.Errorf("measure: %d weights for %d measures", len(ws), len(ds))
	}
	total := 0.0
	out := New[T]()
	for i, w := range ws {
		if w < 0 {
			return nil, fmt.Errorf("measure: negative weight %v", w)
		}
		total += w
		ds[i].ForEach(func(x T, p float64) { out.Add(x, w*p) })
	}
	if total > 1+Eps {
		return nil, fmt.Errorf("measure: mixture weights sum to %v > 1", total)
	}
	return out, nil
}

// Condition returns the measure restricted to elements satisfying pred,
// renormalised to a probability measure. It errors when the predicate has
// measure zero.
func Condition[T comparable](d *Dist[T], pred func(T) bool) (*Dist[T], error) {
	mass := 0.0
	d.ForEach(func(x T, p float64) {
		if pred(x) {
			mass += p
		}
	})
	if mass <= Eps {
		return nil, fmt.Errorf("measure: conditioning on a null event")
	}
	out := New[T]()
	d.ForEach(func(x T, p float64) {
		if pred(x) {
			out.Add(x, p/mass)
		}
	})
	return out, nil
}

// Equal reports whether d and e assign the same mass (± Eps) to every
// element of the union of their supports.
func Equal[T comparable](d, e *Dist[T]) bool {
	for x, p := range d.w {
		if math.Abs(p-e.w[x]) > Eps {
			return false
		}
	}
	for x, p := range e.w {
		if math.Abs(p-d.w[x]) > Eps {
			return false
		}
	}
	return true
}

// BalancedSup computes the distance of Def 3.6:
//
//	sup_{I ⊆ supp} | Σ_{i∈I} (e(ζ_i) − d(ζ_i)) |
//
// over all countable families of elements. For finite supports this sup is
// attained either by the set of elements where e > d or by the set where
// e < d, so it equals max(Σ positive differences, Σ negative differences).
// Two schedulers σ, σ′ are S^{≤ε}_{E,f}-balanced iff
// BalancedSup(f-dist(σ), f-dist(σ′)) ≤ ε.
func BalancedSup[T comparable](d, e *Dist[T]) float64 {
	var pos, neg []float64
	seen := make(map[T]bool, len(d.w)+len(e.w))
	for x := range d.w {
		seen[x] = true
	}
	for x := range e.w {
		seen[x] = true
	}
	for x := range seen {
		diff := e.w[x] - d.w[x]
		if diff > 0 {
			pos = append(pos, diff)
		} else if diff < 0 {
			neg = append(neg, -diff)
		}
	}
	return math.Max(sumSorted(pos), sumSorted(neg))
}

// sumSorted adds the terms in sorted order, so the result depends only on
// the multiset of terms and never on map-iteration order. Distances are part
// of reports that must be byte-identical between sequential and parallel
// runs (internal/engine), and float addition is not associative.
func sumSorted(terms []float64) float64 {
	sort.Float64s(terms)
	s := 0.0
	for _, t := range terms {
		s += t
	}
	return s
}

// TVDistance returns the total variation distance
// ½ Σ_x |d(x) − e(x)|. For probability measures TVDistance == BalancedSup;
// for sub-probability measures they can differ, which is why the framework
// uses BalancedSup (the paper's Def 3.6) for the implementation relation.
func TVDistance[T comparable](d, e *Dist[T]) float64 {
	var terms []float64
	seen := make(map[T]bool, len(d.w)+len(e.w))
	for x := range d.w {
		seen[x] = true
	}
	for x := range e.w {
		seen[x] = true
	}
	for x := range seen {
		if diff := math.Abs(d.w[x] - e.w[x]); diff > 0 {
			terms = append(terms, diff)
		}
	}
	return sumSorted(terms) / 2
}

// Sample draws one element from d using u ∈ [0,1). If u lands in the halting
// deficit of a sub-probability measure, ok is false. Iteration order over
// map entries is randomized by the runtime, so sampling is made deterministic
// by walking the support in sorted order of fmt-formatted keys; for the
// string instantiations used throughout this is plain lexicographic order.
func (d *Dist[T]) Sample(u float64) (x T, ok bool) {
	keys := d.Support()
	sort.Slice(keys, func(i, j int) bool {
		return fmt.Sprint(keys[i]) < fmt.Sprint(keys[j])
	})
	acc := 0.0
	for _, k := range keys {
		acc += d.w[k]
		if u < acc {
			return k, true
		}
	}
	var zero T
	return zero, false
}

// String renders the distribution deterministically for diagnostics.
func (d *Dist[T]) String() string {
	keys := d.Support()
	sort.Slice(keys, func(i, j int) bool {
		return fmt.Sprint(keys[i]) < fmt.Sprint(keys[j])
	})
	s := "{"
	for i, k := range keys {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%v:%.6g", k, d.w[k])
	}
	return s + "}"
}
