// Package measure implements the discrete probability theory of Section 2.1:
// discrete (sub-)probability measures Disc(S)/SubDisc(S) on countable sets,
// Dirac measures, product measures, image measures, supports, and the
// distribution distances used by the balanced-scheduler relation (Def 3.6).
//
// Measures are represented as finite support maps from elements to weights.
// Elements must be comparable; throughout the framework they are canonical
// string encodings (see internal/codec), so Dist[string] is the workhorse.
package measure

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"sync/atomic"
)

// Eps is the tolerance used when comparing probabilities and totals. Exact
// rational arithmetic would be overkill: every measure in the framework is
// built from user-supplied float weights and finitely many products/sums.
const Eps = 1e-9

// Dist is a discrete sub-probability measure over T: a finite-support
// weight function with total mass ≤ 1 (+Eps slack). A Dist with total mass 1
// is a probability measure, i.e. an element of Disc(T); with mass < 1 it is
// an element of SubDisc(T) as used by schedulers (Def 3.1), where the
// deficit 1 − |η| is the halting probability.
type Dist[T comparable] struct {
	w map[T]float64
	// cdf is the lazily built sorted-support + prefix-sum view, invalidated
	// by Add. Publishing it through an atomic pointer keeps read-only
	// sharing safe (engine-cached distributions are sampled concurrently);
	// concurrent builds are idempotent, so the last write winning is fine.
	cdf atomic.Pointer[distCDF[T]]
}

// distCDF caches the support in canonical sorted order together with the
// left-to-right prefix sums of the weights. Sorted order is by the
// fmt-formatted element (plain lexicographic order for the string-kinded
// instantiations used throughout), matching the historical Sample order.
// cum[len-1] is the total mass summed in sorted order, so every consumer of
// the cache sums deterministically.
type distCDF[T comparable] struct {
	keys  []T
	reprs []string
	ps    []float64 // raw weights aligned with keys (struct-of-arrays view)
	cum   []float64
}

// view returns the current CDF cache, building it on first use after a
// mutation.
func (d *Dist[T]) view() *distCDF[T] {
	if c := d.cdf.Load(); c != nil {
		return c
	}
	c := buildCDF(d.w)
	d.cdf.Store(c)
	return c
}

func buildCDF[T comparable](w map[T]float64) *distCDF[T] {
	c := &distCDF[T]{keys: make([]T, 0, len(w))}
	for x := range w {
		c.keys = append(c.keys, x)
	}
	if len(c.keys) > 1 {
		if ks, ok := any(c.keys).([]string); ok {
			sort.Strings(ks)
			c.reprs = ks
		} else {
			c.reprs = make([]string, len(c.keys))
			for i, k := range c.keys {
				c.reprs[i] = reprOf(k)
			}
			sort.Sort(&byRepr[T]{reprs: c.reprs, keys: c.keys})
		}
	} else if ks, ok := any(c.keys).([]string); ok {
		c.reprs = ks
	}
	c.ps = make([]float64, len(c.keys))
	c.cum = make([]float64, len(c.keys))
	acc := 0.0
	for i, k := range c.keys {
		p := w[k]
		c.ps[i] = p
		acc += p
		c.cum[i] = acc
	}
	return c
}

// reprOf returns the canonical sort representation of an element: the
// fmt-formatted value, with a reflection fast path for string-kinded types
// (psioa.Action, psioa.State, …) that avoids fmt's allocation.
func reprOf[T comparable](x T) string {
	if s, ok := any(x).(string); ok {
		return s
	}
	if rv := reflect.ValueOf(x); rv.Kind() == reflect.String {
		return rv.String()
	}
	return fmt.Sprint(x)
}

// byRepr sorts keys and reprs in lockstep by repr.
type byRepr[T comparable] struct {
	reprs []string
	keys  []T
}

func (b *byRepr[T]) Len() int           { return len(b.keys) }
func (b *byRepr[T]) Less(i, j int) bool { return b.reprs[i] < b.reprs[j] }
func (b *byRepr[T]) Swap(i, j int) {
	b.reprs[i], b.reprs[j] = b.reprs[j], b.reprs[i]
	b.keys[i], b.keys[j] = b.keys[j], b.keys[i]
}

// repr returns the sort representation of key i, tolerating the missing
// reprs slice of single-element string caches.
func (c *distCDF[T]) repr(i int) string {
	if c.reprs != nil {
		return c.reprs[i]
	}
	return reprOf(c.keys[i])
}

// New returns an empty (zero-mass) distribution.
func New[T comparable]() *Dist[T] {
	return &Dist[T]{w: make(map[T]float64)}
}

// Dirac returns δ_x, the Dirac probability measure at x (Section 2.1).
func Dirac[T comparable](x T) *Dist[T] {
	d := New[T]()
	d.w[x] = 1
	return d
}

// FromMap builds a distribution from an explicit weight map. Weights must be
// non-negative and sum to at most 1+Eps. Zero weights are dropped so that
// Support is exactly the set of positive-weight elements.
func FromMap[T comparable](w map[T]float64) (*Dist[T], error) {
	d := New[T]()
	total := 0.0
	for x, p := range w {
		if p < 0 {
			return nil, fmt.Errorf("measure: negative weight %v for %v", p, x)
		}
		if p == 0 {
			continue
		}
		d.w[x] = p
		total += p
	}
	if total > 1+Eps {
		return nil, fmt.Errorf("measure: total mass %v exceeds 1", total)
	}
	return d, nil
}

// MustFromMap is FromMap that panics on invalid input; for literals in tests
// and in-package constructions whose validity is guaranteed by construction.
func MustFromMap[T comparable](w map[T]float64) *Dist[T] {
	d, err := FromMap(w)
	if err != nil {
		panic(err)
	}
	return d
}

// Uniform returns the uniform probability measure on the given elements.
// Duplicate elements accumulate weight. Panics if xs is empty.
func Uniform[T comparable](xs []T) *Dist[T] {
	if len(xs) == 0 {
		panic("measure: Uniform over empty support")
	}
	d := New[T]()
	p := 1.0 / float64(len(xs))
	for _, x := range xs {
		d.w[x] += p
	}
	return d
}

// P returns the probability mass assigned to x (0 if absent).
func (d *Dist[T]) P(x T) float64 { return d.w[x] }

// Add increases the mass at x by p. It is the building block for measure
// construction; callers are responsible for keeping the total ≤ 1 (validated
// by Total/IsProb when it matters). Negative p panics.
func (d *Dist[T]) Add(x T, p float64) {
	if p < 0 {
		panic(fmt.Sprintf("measure: Add negative mass %v", p))
	}
	if p == 0 {
		return
	}
	d.w[x] += p
	if d.cdf.Load() != nil {
		d.cdf.Store(nil)
	}
}

// Total returns the total mass Σ_x d(x), summed in the cache's canonical
// sorted order so the float result is independent of map iteration order
// (totals feed reports that must be byte-identical run to run).
func (d *Dist[T]) Total() float64 {
	c := d.view()
	if n := len(c.cum); n > 0 {
		return c.cum[n-1]
	}
	return 0
}

// IsProb reports whether d is a probability measure (total mass 1 ± Eps).
func (d *Dist[T]) IsProb() bool { return math.Abs(d.Total()-1) <= Eps }

// IsSubProb reports whether d is a sub-probability measure (total ≤ 1+Eps).
func (d *Dist[T]) IsSubProb() bool { return d.Total() <= 1+Eps }

// Deficit returns 1 − Total(), the halting probability when d is a
// scheduler's choice sub-distribution (Def 3.1). Clamped at 0.
func (d *Dist[T]) Deficit() float64 {
	def := 1 - d.Total()
	if def < 0 {
		return 0
	}
	return def
}

// Len returns the size of the support.
func (d *Dist[T]) Len() int { return len(d.w) }

// Support returns supp(d): the elements with positive mass, in map order.
func (d *Dist[T]) Support() []T {
	s := make([]T, 0, len(d.w))
	for x := range d.w {
		s = append(s, x)
	}
	return s
}

// SortedSupport returns supp(d) in canonical sorted order (the Sample
// order). The slice is shared with the distribution's internal cache and
// MUST NOT be modified by the caller; it stays valid until the next
// mutation. Use Support for an owned copy.
func (d *Dist[T]) SortedSupport() []T { return d.view().keys }

// SupportAndProbs returns the sorted support together with the aligned raw
// weights — the struct-of-arrays view the measure kernels iterate instead
// of probing the weight map per element (ps[i] == P(keys[i]) bit for bit).
// Both slices are shared with the internal cache and MUST NOT be modified;
// they stay valid until the next mutation.
func (d *Dist[T]) SupportAndProbs() (keys []T, ps []float64) {
	c := d.view()
	return c.keys, c.ps
}

// ForEach calls f for every (element, mass) pair with positive mass.
func (d *Dist[T]) ForEach(f func(x T, p float64)) {
	for x, p := range d.w {
		if p > 0 {
			f(x, p)
		}
	}
}

// Copy returns an independent copy of d.
func (d *Dist[T]) Copy() *Dist[T] {
	c := New[T]()
	for x, p := range d.w {
		c.w[x] = p
	}
	return c
}

// Scale returns the measure x ↦ c·d(x). c must be in [0, 1].
func (d *Dist[T]) Scale(c float64) *Dist[T] {
	if c < 0 || c > 1+Eps {
		panic(fmt.Sprintf("measure: Scale factor %v out of [0,1]", c))
	}
	s := New[T]()
	for x, p := range d.w {
		s.w[x] = c * p
	}
	return s
}

// Map returns the image measure of d under f: (f∗d)(y) = Σ_{f(x)=y} d(x).
// This is exactly the f-dist construction of Def 3.5 when d is an execution
// measure and f an insight function.
func Map[T, U comparable](d *Dist[T], f func(T) U) *Dist[U] {
	img := New[U]()
	for x, p := range d.w {
		img.w[f(x)] += p
	}
	return img
}

// Product returns the product measure d1 ⊗ d2 over pairs, represented via
// the combining function pair (typically a tuple codec):
// (d1⊗d2)(pair(x,y)) = d1(x)·d2(y) (Section 2.1).
func Product[T, U, V comparable](d1 *Dist[T], d2 *Dist[U], pair func(T, U) V) *Dist[V] {
	prod := New[V]()
	for x, px := range d1.w {
		for y, py := range d2.w {
			prod.w[pair(x, y)] += px * py
		}
	}
	return prod
}

// ProductN returns the n-fold product measure of probability measures over
// string-encoded components, combined with join (typically codec.EncodeTuple
// over the component list). Each factor contributes independently.
func ProductN(factors []*Dist[string], join func([]string) string) *Dist[string] {
	acc := New[string]()
	var rec func(i int, parts []string, p float64)
	rec = func(i int, parts []string, p float64) {
		if i == len(factors) {
			acc.w[join(parts)] += p
			return
		}
		for x, px := range factors[i].w {
			rec(i+1, append(parts, x), p*px)
		}
	}
	rec(0, make([]string, 0, len(factors)), 1)
	return acc
}

// Mixture returns the convex combination Σ wᵢ·dᵢ. Weights must be
// non-negative and sum to at most 1+Eps (sub-convex combinations yield
// sub-probability measures, matching the scheduler convexity of Def 3.1).
func Mixture[T comparable](ws []float64, ds []*Dist[T]) (*Dist[T], error) {
	if len(ws) != len(ds) {
		return nil, fmt.Errorf("measure: %d weights for %d measures", len(ws), len(ds))
	}
	total := 0.0
	out := New[T]()
	for i, w := range ws {
		if w < 0 {
			return nil, fmt.Errorf("measure: negative weight %v", w)
		}
		total += w
		ds[i].ForEach(func(x T, p float64) { out.Add(x, w*p) })
	}
	if total > 1+Eps {
		return nil, fmt.Errorf("measure: mixture weights sum to %v > 1", total)
	}
	return out, nil
}

// Condition returns the measure restricted to elements satisfying pred,
// renormalised to a probability measure. It errors when the predicate has
// measure zero.
func Condition[T comparable](d *Dist[T], pred func(T) bool) (*Dist[T], error) {
	mass := 0.0
	d.ForEach(func(x T, p float64) {
		if pred(x) {
			mass += p
		}
	})
	if mass <= Eps {
		return nil, fmt.Errorf("measure: conditioning on a null event")
	}
	out := New[T]()
	d.ForEach(func(x T, p float64) {
		if pred(x) {
			out.Add(x, p/mass)
		}
	})
	return out, nil
}

// Equal reports whether d and e assign the same mass (± Eps) to every
// element of the union of their supports.
func Equal[T comparable](d, e *Dist[T]) bool {
	for x, p := range d.w {
		if math.Abs(p-e.w[x]) > Eps {
			return false
		}
	}
	for x, p := range e.w {
		if math.Abs(p-d.w[x]) > Eps {
			return false
		}
	}
	return true
}

// BalancedSup computes the distance of Def 3.6:
//
//	sup_{I ⊆ supp} | Σ_{i∈I} (e(ζ_i) − d(ζ_i)) |
//
// over all countable families of elements. For finite supports this sup is
// attained either by the set of elements where e > d or by the set where
// e < d, so it equals max(Σ positive differences, Σ negative differences).
// Two schedulers σ, σ′ are S^{≤ε}_{E,f}-balanced iff
// BalancedSup(f-dist(σ), f-dist(σ′)) ≤ ε.
func BalancedSup[T comparable](d, e *Dist[T]) float64 {
	var pos, neg []float64
	forEachDiff(d, e, func(dw, ew float64) {
		diff := ew - dw
		if diff > 0 {
			pos = append(pos, diff)
		} else if diff < 0 {
			neg = append(neg, -diff)
		}
	})
	return math.Max(sumSorted(pos), sumSorted(neg))
}

// forEachDiff visits the weight pairs (d(x), e(x)) over the union of the
// two supports by merging the cached sorted orders — no union set is
// materialised and the visit order is deterministic. Elements whose sort
// representations collide without being equal are visited singly.
func forEachDiff[T comparable](d, e *Dist[T], visit func(dw, ew float64)) {
	dc, ec := d.view(), e.view()
	i, j := 0, 0
	for i < len(dc.keys) || j < len(ec.keys) {
		switch {
		case j >= len(ec.keys):
			visit(d.w[dc.keys[i]], 0)
			i++
		case i >= len(dc.keys):
			visit(0, e.w[ec.keys[j]])
			j++
		default:
			ri, rj := dc.repr(i), ec.repr(j)
			switch {
			case ri < rj:
				visit(d.w[dc.keys[i]], 0)
				i++
			case rj < ri:
				visit(0, e.w[ec.keys[j]])
				j++
			case dc.keys[i] == ec.keys[j]:
				visit(d.w[dc.keys[i]], e.w[ec.keys[j]])
				i++
				j++
			default:
				visit(d.w[dc.keys[i]], 0)
				i++
			}
		}
	}
}

// sumSorted adds the terms in sorted order, so the result depends only on
// the multiset of terms and never on map-iteration order. Distances are part
// of reports that must be byte-identical between sequential and parallel
// runs (internal/engine), and float addition is not associative.
func sumSorted(terms []float64) float64 {
	sort.Float64s(terms)
	s := 0.0
	for _, t := range terms {
		s += t
	}
	return s
}

// TVDistance returns the total variation distance
// ½ Σ_x |d(x) − e(x)|. For probability measures TVDistance == BalancedSup;
// for sub-probability measures they can differ, which is why the framework
// uses BalancedSup (the paper's Def 3.6) for the implementation relation.
func TVDistance[T comparable](d, e *Dist[T]) float64 {
	var terms []float64
	forEachDiff(d, e, func(dw, ew float64) {
		if diff := math.Abs(dw - ew); diff > 0 {
			terms = append(terms, diff)
		}
	})
	return sumSorted(terms) / 2
}

// Sample draws one element from d using u ∈ [0,1). If u lands in the halting
// deficit of a sub-probability measure, ok is false. Sampling is
// deterministic: elements are laid out in the cache's canonical sorted
// order (lexicographic for the string instantiations used throughout) and
// the draw is a binary search over the cached prefix sums, so repeated
// draws from one distribution cost O(log n) each instead of an O(n log n)
// sort per draw.
func (d *Dist[T]) Sample(u float64) (x T, ok bool) {
	c := d.view()
	i := sort.Search(len(c.cum), func(i int) bool { return c.cum[i] > u })
	if i < len(c.cum) {
		return c.keys[i], true
	}
	var zero T
	return zero, false
}

// String renders the distribution deterministically for diagnostics.
func (d *Dist[T]) String() string {
	c := d.view()
	s := "{"
	for i, k := range c.keys {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%v:%.6g", k, d.w[k])
	}
	return s + "}"
}
