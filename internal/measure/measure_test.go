package measure

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/codec"
)

func TestDirac(t *testing.T) {
	d := Dirac("x")
	if !d.IsProb() {
		t.Error("Dirac is not a probability measure")
	}
	if d.P("x") != 1 || d.P("y") != 0 {
		t.Errorf("Dirac masses wrong: P(x)=%v P(y)=%v", d.P("x"), d.P("y"))
	}
	if d.Len() != 1 {
		t.Errorf("Dirac support size = %d", d.Len())
	}
}

func TestFromMapValid(t *testing.T) {
	d, err := FromMap(map[string]float64{"a": 0.25, "b": 0.75, "c": 0})
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsProb() {
		t.Error("expected probability measure")
	}
	if d.Len() != 2 {
		t.Errorf("zero weights should be dropped; support size = %d", d.Len())
	}
}

func TestFromMapErrors(t *testing.T) {
	if _, err := FromMap(map[string]float64{"a": -0.1}); err == nil {
		t.Error("expected error for negative weight")
	}
	if _, err := FromMap(map[string]float64{"a": 0.6, "b": 0.6}); err == nil {
		t.Error("expected error for mass > 1")
	}
}

func TestMustFromMapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustFromMap(map[string]float64{"a": 2})
}

func TestUniform(t *testing.T) {
	d := Uniform([]string{"a", "b", "c", "d"})
	for _, x := range []string{"a", "b", "c", "d"} {
		if math.Abs(d.P(x)-0.25) > Eps {
			t.Errorf("P(%s) = %v, want 0.25", x, d.P(x))
		}
	}
	dup := Uniform([]string{"a", "a"})
	if math.Abs(dup.P("a")-1) > Eps {
		t.Errorf("duplicate accumulation: P(a) = %v, want 1", dup.P("a"))
	}
}

func TestUniformEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for empty support")
		}
	}()
	Uniform[string](nil)
}

func TestSubProbDeficit(t *testing.T) {
	d := MustFromMap(map[string]float64{"go": 0.7})
	if d.IsProb() {
		t.Error("sub-probability measure should not be IsProb")
	}
	if !d.IsSubProb() {
		t.Error("should be sub-probability")
	}
	if math.Abs(d.Deficit()-0.3) > Eps {
		t.Errorf("Deficit = %v, want 0.3", d.Deficit())
	}
	if Dirac("x").Deficit() != 0 {
		t.Error("probability measure should have zero deficit")
	}
}

func TestAdd(t *testing.T) {
	d := New[string]()
	d.Add("a", 0.5)
	d.Add("a", 0.25)
	d.Add("b", 0)
	if math.Abs(d.P("a")-0.75) > Eps {
		t.Errorf("P(a) = %v", d.P("a"))
	}
	if d.Len() != 1 {
		t.Errorf("zero Add should not extend support; len = %d", d.Len())
	}
}

func TestAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New[string]().Add("a", -1)
}

func TestMapImageMeasure(t *testing.T) {
	d := MustFromMap(map[string]float64{"aa": 0.2, "ab": 0.3, "ba": 0.5})
	img := Map(d, func(s string) string { return s[:1] })
	if math.Abs(img.P("a")-0.5) > Eps || math.Abs(img.P("b")-0.5) > Eps {
		t.Errorf("image measure wrong: %v", img)
	}
	if !img.IsProb() {
		t.Error("image of probability measure must be probability measure")
	}
}

func TestProduct(t *testing.T) {
	d1 := MustFromMap(map[string]float64{"x": 0.5, "y": 0.5})
	d2 := MustFromMap(map[string]float64{"u": 0.25, "v": 0.75})
	p := Product(d1, d2, func(a, b string) string { return a + b })
	want := map[string]float64{"xu": 0.125, "xv": 0.375, "yu": 0.125, "yv": 0.375}
	for k, v := range want {
		if math.Abs(p.P(k)-v) > Eps {
			t.Errorf("P(%s) = %v, want %v", k, p.P(k), v)
		}
	}
	if !p.IsProb() {
		t.Error("product of probability measures must be probability measure")
	}
}

func TestProductN(t *testing.T) {
	f := []*Dist[string]{
		MustFromMap(map[string]float64{"0": 0.5, "1": 0.5}),
		MustFromMap(map[string]float64{"0": 0.5, "1": 0.5}),
		MustFromMap(map[string]float64{"0": 0.5, "1": 0.5}),
	}
	p := ProductN(f, func(parts []string) string { return strings.Join(parts, "") })
	if p.Len() != 8 {
		t.Fatalf("support size = %d, want 8", p.Len())
	}
	for _, x := range p.Support() {
		if math.Abs(p.P(x)-0.125) > Eps {
			t.Errorf("P(%s) = %v, want 0.125", x, p.P(x))
		}
	}
	// Empty product is Dirac at join(nil).
	empty := ProductN(nil, codec.EncodeTuple)
	if !empty.IsProb() || math.Abs(empty.P(codec.EncodeTuple(nil))-1) > Eps {
		t.Error("empty product should be Dirac at empty tuple")
	}
}

func TestEqual(t *testing.T) {
	a := MustFromMap(map[string]float64{"x": 0.5, "y": 0.5})
	b := MustFromMap(map[string]float64{"y": 0.5, "x": 0.5})
	c := MustFromMap(map[string]float64{"x": 0.6, "y": 0.4})
	if !Equal(a, b) {
		t.Error("equal measures reported unequal")
	}
	if Equal(a, c) {
		t.Error("unequal measures reported equal")
	}
	// Differing supports.
	d := MustFromMap(map[string]float64{"x": 0.5, "z": 0.5})
	if Equal(a, d) {
		t.Error("measures with different supports reported equal")
	}
}

func TestBalancedSupBasics(t *testing.T) {
	a := MustFromMap(map[string]float64{"x": 0.5, "y": 0.5})
	b := MustFromMap(map[string]float64{"x": 0.7, "y": 0.3})
	if got := BalancedSup(a, b); math.Abs(got-0.2) > Eps {
		t.Errorf("BalancedSup = %v, want 0.2", got)
	}
	if got := BalancedSup(a, a); got > Eps {
		t.Errorf("BalancedSup(a,a) = %v, want 0", got)
	}
}

func TestBalancedSupSubProb(t *testing.T) {
	// For sub-probability measures the positive and negative parts differ:
	// a has mass 1, b has mass 0.5 concentrated on x.
	a := MustFromMap(map[string]float64{"x": 0.5, "y": 0.5})
	b := MustFromMap(map[string]float64{"x": 0.5})
	// e - d: x: 0, y: -0.5 → pos = 0, neg = 0.5 → sup = 0.5.
	if got := BalancedSup(a, b); math.Abs(got-0.5) > Eps {
		t.Errorf("BalancedSup = %v, want 0.5", got)
	}
}

func TestTVDistanceMatchesBalancedSupOnProb(t *testing.T) {
	prop := func(w1, w2, w3, w4 uint8) bool {
		// Build two probability measures on {a,b,c} from random weights.
		mk := func(x, y, z uint8) *Dist[string] {
			tot := float64(x) + float64(y) + float64(z) + 3
			return MustFromMap(map[string]float64{
				"a": (float64(x) + 1) / tot,
				"b": (float64(y) + 1) / tot,
				"c": (float64(z) + 1) / tot,
			})
		}
		d := mk(w1, w2, w3)
		e := mk(w2, w3, w4)
		return math.Abs(TVDistance(d, e)-BalancedSup(d, e)) <= 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBalancedSupTriangleQuick(t *testing.T) {
	prop := func(w1, w2, w3, w4, w5, w6 uint8) bool {
		mk := func(x, y uint8) *Dist[string] {
			tot := float64(x) + float64(y) + 2
			return MustFromMap(map[string]float64{
				"a": (float64(x) + 1) / tot,
				"b": (float64(y) + 1) / tot,
			})
		}
		d1, d2, d3 := mk(w1, w2), mk(w3, w4), mk(w5, w6)
		// Triangle inequality: key to transitivity (Thm 4.16 / B.4).
		return BalancedSup(d1, d3) <= BalancedSup(d1, d2)+BalancedSup(d2, d3)+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestScale(t *testing.T) {
	d := MustFromMap(map[string]float64{"a": 0.4, "b": 0.6})
	s := d.Scale(0.5)
	if math.Abs(s.Total()-0.5) > Eps {
		t.Errorf("scaled total = %v, want 0.5", s.Total())
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range scale")
		}
	}()
	d.Scale(2)
}

func TestCopyIndependence(t *testing.T) {
	d := MustFromMap(map[string]float64{"a": 0.5})
	c := d.Copy()
	c.Add("b", 0.5)
	if d.P("b") != 0 {
		t.Error("Copy is not independent")
	}
}

func TestSampleDeterministic(t *testing.T) {
	d := MustFromMap(map[string]float64{"a": 0.25, "b": 0.25, "c": 0.5})
	// Sorted order: a [0,.25), b [.25,.5), c [.5,1).
	cases := []struct {
		u    float64
		want string
	}{{0.0, "a"}, {0.24, "a"}, {0.26, "b"}, {0.49, "b"}, {0.5, "c"}, {0.99, "c"}}
	for _, c := range cases {
		got, ok := d.Sample(c.u)
		if !ok || got != c.want {
			t.Errorf("Sample(%v) = %q,%v want %q", c.u, got, ok, c.want)
		}
	}
	// Sub-probability deficit → halt.
	sub := MustFromMap(map[string]float64{"a": 0.5})
	if _, ok := sub.Sample(0.9); ok {
		t.Error("sample in deficit region should report !ok")
	}
}

func TestForEachSkipsZero(t *testing.T) {
	d := New[string]()
	d.w["z"] = 0 // direct manipulation to simulate a zero entry
	d.Add("a", 1)
	count := 0
	d.ForEach(func(x string, p float64) { count++ })
	if count != 1 {
		t.Errorf("ForEach visited %d entries, want 1", count)
	}
}

func TestStringDeterministic(t *testing.T) {
	d := MustFromMap(map[string]float64{"b": 0.5, "a": 0.5})
	want := "{a:0.5, b:0.5}"
	if got := d.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestMapPreservesTotalQuick(t *testing.T) {
	prop := func(ws []uint8) bool {
		if len(ws) == 0 {
			return true
		}
		tot := 0.0
		for _, w := range ws {
			tot += float64(w) + 1
		}
		d := New[int]()
		for i, w := range ws {
			d.Add(i, (float64(w)+1)/tot)
		}
		img := Map(d, func(i int) int { return i % 3 })
		return math.Abs(img.Total()-d.Total()) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
