package measure

import (
	"sort"
	"testing"
)

func TestSortedSupport(t *testing.T) {
	d := New[string]()
	d.Add("b", 0.25)
	d.Add("a", 0.5)
	d.Add("c", 0.125)
	ss := d.SortedSupport()
	if !sort.StringsAreSorted(ss) || len(ss) != 3 {
		t.Fatalf("SortedSupport = %v", ss)
	}
	// The view is cached: repeated calls return the same backing slice.
	if &ss[0] != &d.SortedSupport()[0] {
		t.Error("SortedSupport rebuilt despite no mutation")
	}
}

func TestCDFInvalidatedByAdd(t *testing.T) {
	d := New[string]()
	d.Add("a", 0.5)
	d.Add("b", 0.25)
	if got := d.Total(); got != 0.75 {
		t.Fatalf("Total = %v", got)
	}
	// Mutating after the CDF is built must invalidate it: totals, sorted
	// support, and sampling all see the new point.
	d.Add("c", 0.25)
	if got := d.Total(); got != 1.0 {
		t.Errorf("Total after Add = %v, want 1", got)
	}
	if ss := d.SortedSupport(); len(ss) != 3 || ss[2] != "c" {
		t.Errorf("SortedSupport after Add = %v", ss)
	}
	if x, ok := d.Sample(0.999); !ok || x != "c" {
		t.Errorf("Sample(0.999) = %v, %v", x, ok)
	}
}

func TestSampleBoundaries(t *testing.T) {
	// Sorted order a(0.5), b(0.25), c(0.25); prefix sums 0.5, 0.75, 1.0.
	// Sample returns the first element whose cumulative mass exceeds u, so
	// boundary values select the next element — the same convention as the
	// linear scan it replaced.
	d := New[string]()
	d.Add("c", 0.25)
	d.Add("a", 0.5)
	d.Add("b", 0.25)
	cases := []struct {
		u    float64
		want string
	}{
		{0, "a"}, {0.49, "a"}, {0.5, "b"}, {0.74, "b"}, {0.75, "c"}, {0.999, "c"},
	}
	for _, c := range cases {
		got, ok := d.Sample(c.u)
		if !ok || got != c.want {
			t.Errorf("Sample(%v) = %v, %v; want %v", c.u, got, ok, c.want)
		}
	}
	// Mass beyond the total fails (sub-probability halting convention).
	sub := New[string]()
	sub.Add("x", 0.5)
	if _, ok := sub.Sample(0.75); ok {
		t.Error("Sample beyond total mass should fail")
	}
}

func TestTotalSortedOrderDeterministic(t *testing.T) {
	// Two distributions with identical content built in different insertion
	// orders must report bitwise-equal totals: summation follows the sorted
	// support, never map or insertion order. The masses are deliberately
	// non-dyadic so addition order is observable in the low bits.
	masses := map[string]float64{"p": 0.1, "q": 0.2, "r": 0.3, "s": 0.15, "t": 0.25}
	fwd, rev := New[string](), New[string]()
	keys := []string{"p", "q", "r", "s", "t"}
	for _, k := range keys {
		fwd.Add(k, masses[k])
	}
	for i := len(keys) - 1; i >= 0; i-- {
		rev.Add(keys[i], masses[keys[i]])
	}
	ft, rt := fwd.Total(), rev.Total()
	if ft != rt {
		t.Errorf("insertion order leaked into Total: %v vs %v", ft, rt)
	}
	want := 0.0
	for _, k := range keys {
		// keys is already sorted; this is the specified summation order.
		want += masses[k]
	}
	if ft != want {
		t.Errorf("Total = %v, sorted-order sum = %v", ft, want)
	}
	for i := 0; i < 50; i++ {
		if fwd.Total() != ft {
			t.Fatal("Total not reproducible across calls")
		}
	}
}

func TestIntSortedSupportUsesNumericRepr(t *testing.T) {
	// Non-string kinds sort by their fmt representation — pin that so the
	// reflection fast path stays consistent with the fmt.Sprint fallback.
	d := New[int]()
	d.Add(10, 0.25)
	d.Add(2, 0.5)
	d.Add(1, 0.25)
	ss := d.SortedSupport()
	if len(ss) != 3 || ss[0] != 1 || ss[1] != 10 || ss[2] != 2 {
		t.Errorf("SortedSupport = %v, want lexicographic by repr [1 10 2]", ss)
	}
}
