package codec

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestEncodeTupleRoundTrip(t *testing.T) {
	cases := [][]string{
		nil,
		{""},
		{"a"},
		{"a", "b"},
		{"a|b", "c\\d"},
		{"", ""},
		{"()", "()"},
		{"|", "\\", "|\\|"},
		{"state with spaces", "ütf-8 ✓"},
	}
	for _, in := range cases {
		enc := EncodeTuple(in)
		out, err := DecodeTuple(enc)
		if err != nil {
			t.Fatalf("DecodeTuple(%q): %v", enc, err)
		}
		if len(in) == 0 && len(out) == 0 {
			continue
		}
		if !reflect.DeepEqual(in, out) {
			t.Errorf("round trip %v -> %q -> %v", in, enc, out)
		}
	}
}

func TestEncodeTupleInjective(t *testing.T) {
	pairs := [][2][]string{
		{{"a", "b"}, {"a|b"}},
		{{"a", ""}, {"a"}},
		{{"", "a"}, {"a"}},
		{{"\\"}, {"\\\\"}},
		{{}, {""}},
		{{"x", "y", "z"}, {"x", "y|z"}},
	}
	for _, p := range pairs {
		if EncodeTuple(p[0]) == EncodeTuple(p[1]) {
			t.Errorf("collision: %v and %v both encode to %q", p[0], p[1], EncodeTuple(p[0]))
		}
	}
}

func TestEncodeTupleRoundTripQuick(t *testing.T) {
	prop := func(parts []string) bool {
		enc := EncodeTuple(parts)
		out, err := DecodeTuple(enc)
		if err != nil {
			return false
		}
		if len(parts) == 0 {
			return len(out) == 0
		}
		return reflect.DeepEqual(parts, out)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEncodeTupleInjectiveQuick(t *testing.T) {
	prop := func(a, b []string) bool {
		ea, eb := EncodeTuple(a), EncodeTuple(b)
		if reflect.DeepEqual(a, b) || (len(a) == 0 && len(b) == 0) {
			return ea == eb
		}
		return ea != eb
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeTupleErrors(t *testing.T) {
	if _, err := DecodeTuple("abc\\"); err == nil {
		t.Error("expected error for dangling escape")
	}
}

func TestMustDecodeTuplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on malformed input")
		}
	}()
	MustDecodeTuple("bad\\")
}

func TestEncodeTagged(t *testing.T) {
	enc := EncodeTagged("hide", "q0", "q1")
	tag, parts, err := DecodeTagged(enc)
	if err != nil {
		t.Fatal(err)
	}
	if tag != "hide" || !reflect.DeepEqual(parts, []string{"q0", "q1"}) {
		t.Errorf("got tag=%q parts=%v", tag, parts)
	}
}

func TestDecodeTaggedErrors(t *testing.T) {
	if _, _, err := DecodeTagged(EncodeTuple([]string{"notag"})); err == nil {
		t.Error("expected error for untagged input")
	}
	if _, _, err := DecodeTagged("x\\"); err == nil {
		t.Error("expected error for malformed input")
	}
}

func TestEncodeSortedSetCanonical(t *testing.T) {
	a := EncodeSortedSet([]string{"b", "a", "c"})
	b := EncodeSortedSet([]string{"c", "b", "a"})
	if a != b {
		t.Errorf("set encodings differ: %q vs %q", a, b)
	}
	if EncodeSortedSet(nil) != EncodeTuple(nil) {
		t.Error("empty set should encode like empty tuple")
	}
}

func TestEncodeSortedSetDoesNotMutate(t *testing.T) {
	in := []string{"b", "a"}
	EncodeSortedSet(in)
	if in[0] != "b" || in[1] != "a" {
		t.Error("EncodeSortedSet mutated its input")
	}
}

func TestEncodePairsRoundTrip(t *testing.T) {
	m := map[string]string{"A1": "q|0", "A2": "s\\1", "": "empty-key-value"}
	enc := EncodePairs(m)
	out, err := DecodePairs(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, out) {
		t.Errorf("round trip mismatch: %v -> %v", m, out)
	}
}

func TestEncodePairsCanonical(t *testing.T) {
	// Maps iterate in random order; encoding must not depend on it.
	m := map[string]string{"x": "1", "y": "2", "z": "3", "w": "4"}
	first := EncodePairs(m)
	for i := 0; i < 20; i++ {
		if EncodePairs(m) != first {
			t.Fatal("EncodePairs is not deterministic")
		}
	}
}

func TestEncodePairsRoundTripQuick(t *testing.T) {
	prop := func(m map[string]string) bool {
		out, err := DecodePairs(EncodePairs(m))
		if err != nil {
			return false
		}
		if len(m) == 0 {
			return len(out) == 0
		}
		return reflect.DeepEqual(m, out)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodePairsErrors(t *testing.T) {
	if _, err := DecodePairs("x\\"); err == nil {
		t.Error("expected error for malformed outer tuple")
	}
	// A tuple whose entry is not a 2-tuple.
	bad := EncodeTuple([]string{EncodeTuple([]string{"only-one"})})
	if _, err := DecodePairs(bad); err == nil {
		t.Error("expected error for non-pair entry")
	}
}

func TestBitLen(t *testing.T) {
	if got := BitLen("abcd"); got != 32 {
		t.Errorf("BitLen(abcd) = %d, want 32", got)
	}
	if got := BitLen(""); got != 0 {
		t.Errorf("BitLen(\"\") = %d, want 0", got)
	}
}

func TestAppendToTuple(t *testing.T) {
	cases := []struct{ base, extra []string }{
		{[]string{"a"}, []string{"b"}},
		{[]string{"a", "b"}, []string{"c", "d"}},
		{[]string{"q|0"}, []string{"a\\x", "q1"}},
		{[]string{""}, []string{""}},
		{[]string{"|", "\\"}, []string{"|\\|", "()"}},
		{[]string{"x"}, nil},
	}
	for _, c := range cases {
		got := AppendToTuple(EncodeTuple(c.base), c.extra...)
		want := EncodeTuple(append(append([]string(nil), c.base...), c.extra...))
		if got != want {
			t.Errorf("AppendToTuple(%v, %v) = %q, want %q", c.base, c.extra, got, want)
		}
	}
}

func TestAppendToTupleQuick(t *testing.T) {
	prop := func(base []string, extra []string) bool {
		if len(base) == 0 {
			// The incremental form is only specified for non-empty prefixes:
			// EncodeTuple(nil) is the sentinel "()", which must not be
			// extended in place.
			return true
		}
		got := AppendToTuple(EncodeTuple(base), extra...)
		want := EncodeTuple(append(append([]string(nil), base...), extra...))
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEncodeTupleSentinelComponent(t *testing.T) {
	// A singleton component equal to the empty-tuple sentinel must not
	// collide with the empty tuple, and must round-trip.
	if EncodeTuple([]string{"()"}) == EncodeTuple(nil) {
		t.Fatal("singleton \"()\" collides with the empty tuple")
	}
	for _, in := range [][]string{{"()"}, {"()", "x"}, {"x", "()"}, {"()", "()"}} {
		out, err := DecodeTuple(EncodeTuple(in))
		if err != nil {
			t.Fatalf("DecodeTuple: %v", err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Errorf("round trip %v -> %q -> %v", in, EncodeTuple(in), out)
		}
	}
	// The incremental form must agree on sentinel components too.
	if AppendToTuple(EncodeTuple([]string{"()"}), "()") != EncodeTuple([]string{"()", "()"}) {
		t.Error("AppendToTuple disagrees with EncodeTuple on sentinel components")
	}
}
