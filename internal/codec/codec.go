// Package codec provides injective, canonical string encodings for the
// structured objects of the framework: tuples, lists, sets and maps of
// strings. These encodings play the role of the paper's bit-string
// representations ⟨q⟩, ⟨a⟩, ⟨tr⟩, ⟨C⟩ (Section 4): they are used both as map
// keys (so composite states, configurations and executions are comparable)
// and as the yardstick for description-length bounds in internal/bounded.
//
// All encodings are injective: distinct inputs produce distinct outputs, and
// every output decodes back to the original input. Tuple encoding is escape
// based: '\' escapes itself and the separator '|', so arbitrary component
// strings round-trip.
package codec

import (
	"fmt"
	"sort"
	"strings"
)

// sep separates tuple components; esc escapes sep and itself.
const (
	sep = '|'
	esc = '\\'
)

// emptyTuple is the sentinel encoding of the zero-length tuple.
const emptyTuple = "()"

// EncodeTuple encodes an ordered sequence of strings into a single string.
// The encoding is injective over [][]string: EncodeTuple(a) == EncodeTuple(b)
// implies len(a) == len(b) and a[i] == b[i] for all i. The empty tuple
// encodes to "()" to keep it distinct from the singleton empty string.
func EncodeTuple(parts []string) string {
	if len(parts) == 0 {
		return emptyTuple
	}
	var b strings.Builder
	// Reserve room for the common case of no escapes.
	n := len(parts)
	for _, p := range parts {
		n += len(p)
	}
	b.Grow(n)
	for i, p := range parts {
		if i > 0 {
			b.WriteByte(sep)
		}
		appendEscaped(&b, p)
	}
	return b.String()
}

// appendEscaped writes one component with sep/esc escaping. A component
// that is exactly the empty-tuple sentinel is written escape-prefixed so a
// singleton ("()") never collides with the encoding of the empty tuple;
// the decoder needs no special case since escaped bytes pass through
// verbatim.
func appendEscaped(b *strings.Builder, p string) {
	if p == emptyTuple {
		b.WriteByte(esc)
		b.WriteByte('(')
		b.WriteByte(esc)
		b.WriteByte(')')
		return
	}
	for j := 0; j < len(p); j++ {
		c := p[j]
		if c == sep || c == esc {
			b.WriteByte(esc)
		}
		b.WriteByte(c)
	}
}

// AppendToTuple extends an existing encoding of a non-empty tuple with
// further components, in one pass over the new components only:
// AppendToTuple(EncodeTuple(xs), ys...) == EncodeTuple(append(xs, ys...))
// whenever xs is non-empty. It is the incremental form of EncodeTuple used
// by persistent structures (execution fragments) whose keys grow one step
// at a time from a cached parent key.
func AppendToTuple(enc string, parts ...string) string {
	var b strings.Builder
	n := len(enc) + len(parts)
	for _, p := range parts {
		n += len(p)
	}
	b.Grow(n)
	b.WriteString(enc)
	for _, p := range parts {
		b.WriteByte(sep)
		appendEscaped(&b, p)
	}
	return b.String()
}

// DecodeTuple reverses EncodeTuple. It returns an error if s is not a valid
// tuple encoding (dangling escape).
func DecodeTuple(s string) ([]string, error) {
	if s == emptyTuple {
		return nil, nil
	}
	parts := []string{}
	var cur strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch c {
		case esc:
			i++
			if i >= len(s) {
				return nil, fmt.Errorf("codec: dangling escape in %q", s)
			}
			cur.WriteByte(s[i])
		case sep:
			parts = append(parts, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	parts = append(parts, cur.String())
	return parts, nil
}

// MustDecodeTuple is DecodeTuple for encodings produced by this package; it
// panics on malformed input, which indicates a caller bug.
func MustDecodeTuple(s string) []string {
	parts, err := DecodeTuple(s)
	if err != nil {
		panic(err)
	}
	return parts
}

// EncodeTagged encodes a tagged value: an identifying tag plus a payload
// tuple. Used for states of wrapper automata (hidden, renamed, dummy) so
// their state spaces never collide with those of the wrapped automata.
func EncodeTagged(tag string, parts ...string) string {
	all := make([]string, 0, len(parts)+1)
	all = append(all, "#"+tag)
	all = append(all, parts...)
	return EncodeTuple(all)
}

// DecodeTagged reverses EncodeTagged, returning the tag and payload parts.
func DecodeTagged(s string) (tag string, parts []string, err error) {
	all, err := DecodeTuple(s)
	if err != nil {
		return "", nil, err
	}
	if len(all) == 0 || !strings.HasPrefix(all[0], "#") {
		return "", nil, fmt.Errorf("codec: %q is not a tagged encoding", s)
	}
	return all[0][1:], all[1:], nil
}

// EncodeSortedSet encodes an unordered collection of strings canonically by
// sorting a copy first, so two sets with equal elements encode identically.
func EncodeSortedSet(elems []string) string {
	cp := append([]string(nil), elems...)
	sort.Strings(cp)
	return EncodeTuple(cp)
}

// EncodePairs encodes a string→string map canonically (sorted by key). Each
// entry becomes a 2-tuple; the whole map is a tuple of entry encodings.
func EncodePairs(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	entries := make([]string, len(keys))
	for i, k := range keys {
		entries[i] = EncodeTuple([]string{k, m[k]})
	}
	return EncodeTuple(entries)
}

// DecodePairs reverses EncodePairs.
func DecodePairs(s string) (map[string]string, error) {
	entries, err := DecodeTuple(s)
	if err != nil {
		return nil, err
	}
	m := make(map[string]string, len(entries))
	for _, e := range entries {
		kv, err := DecodeTuple(e)
		if err != nil {
			return nil, err
		}
		if len(kv) != 2 {
			return nil, fmt.Errorf("codec: pair entry %q has %d parts, want 2", e, len(kv))
		}
		m[kv[0]] = kv[1]
	}
	return m, nil
}

// BitLen reports the length in bits of the canonical representation of s,
// the quantity bounded by the paper's b-time-bounded definitions (Def 4.1
// item 1: "the length of the bit-string representation ... is at most b").
func BitLen(s string) int { return 8 * len(s) }
