package cluster_test

import (
	"context"
	"encoding/json"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// chanJob is the 2-environment leaky-channel check shared by the engine
// tests: the smallest real workload that exercises per-env sharding.
func chanJob() engine.Job {
	return engine.Job{Kind: engine.KindCheck, Check: &engine.CheckSpec{
		Left:      "chan:leaky:x:0.5",
		Right:     "chan:ideal:x",
		Envs:      []string{"chan:env:x:0", "chan:env:x:1"},
		Schema:    "priority",
		Templates: [][]string{{"send", "encrypt", "tap", "notify", "fabricate", "deliver"}},
		Eps:       0.25,
		Q1:        6, Q2: 6,
	}}
}

func newRunner() *engine.Runner {
	return engine.NewRunner(engine.NewPool(2), engine.NewCache(256))
}

// renderReport is the byte-identity witness: the full canonical JSON of the
// check report, pairs included.
func renderReport(t *testing.T, res *engine.Result) string {
	t.Helper()
	if res == nil || res.Check == nil {
		t.Fatal("result has no check report")
	}
	b, err := json.MarshalIndent(res.Check, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// localBaseline runs the whole job on one fresh runner.
func localBaseline(t *testing.T, job engine.Job) string {
	t.Helper()
	res, err := newRunner().Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	return renderReport(t, res)
}

func localCluster(t *testing.T, n int) (*cluster.Coordinator, []*cluster.LocalBackend) {
	t.Helper()
	backs := make([]*cluster.LocalBackend, n)
	ifaces := make([]cluster.Backend, n)
	for i := range backs {
		backs[i] = cluster.NewLocalBackend(string(rune('a'+i))+"-worker", newRunner())
		ifaces[i] = backs[i]
	}
	coord, err := cluster.NewCoordinator(ifaces...)
	if err != nil {
		t.Fatal(err)
	}
	return coord, backs
}

// TestCoordinatorMergeByteIdentical pins the headline property: a 3-worker
// cluster check merges to the exact bytes of the sequential single-node
// run, and a re-run is served from the content-addressed stores with
// cluster.remote.hits ticking.
func TestCoordinatorMergeByteIdentical(t *testing.T) {
	job := chanJob()
	want := localBaseline(t, job)
	coord, _ := localCluster(t, 3)

	hits0 := obs.C("cluster.remote.hits").Value()
	res, err := coord.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderReport(t, res.Result); got != want {
		t.Fatalf("distributed report differs from local run:\n got: %s\nwant: %s", got, want)
	}
	if len(res.Shards) != len(job.Check.Envs) {
		t.Fatalf("shards = %d, want %d", len(res.Shards), len(job.Check.Envs))
	}
	for _, sh := range res.Shards {
		if sh.Worker == "" || sh.FromStore {
			t.Fatalf("cold shard %+v: want computed with a worker attributed", sh)
		}
	}

	// Second run: every shard is in some worker's store now.
	res2, err := coord.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderReport(t, res2.Result); got != want {
		t.Fatalf("store-served report differs from local run:\n got: %s\nwant: %s", got, want)
	}
	for _, sh := range res2.Shards {
		if !sh.FromStore {
			t.Fatalf("warm shard %+v: want store-served", sh)
		}
	}
	if d := obs.C("cluster.remote.hits").Value() - hits0; d < 1 {
		t.Fatalf("cluster.remote.hits delta = %d, want >= 1", d)
	}
}

// TestCoordinatorSingleEnvPassThrough pins the unsharded path: a 1-env
// check routes as one shard and still matches the local run.
func TestCoordinatorSingleEnvPassThrough(t *testing.T) {
	job := engine.Job{Kind: engine.KindCheck, Check: &engine.CheckSpec{
		Left:  "coin:biased:x:0.625",
		Right: "coin:fair:x",
		Envs:  []string{"coin:env:x"},
		Eps:   0.125,
		Q1:    3, Q2: 3,
	}}
	want := localBaseline(t, job)
	coord, _ := localCluster(t, 2)
	res, err := coord.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderReport(t, res.Result); got != want {
		t.Fatalf("single-env cluster run differs:\n got: %s\nwant: %s", got, want)
	}
	if len(res.Shards) != 1 {
		t.Fatalf("shards = %d, want 1", len(res.Shards))
	}
	if res.WorkerID == "" {
		t.Fatal("pass-through result lost its worker attribution")
	}
}

// TestCoordinatorWorkerDeathMidSweep kills a worker the moment the sweep
// first reaches it: the coordinator must re-route the failed shard to a
// survivor and still merge the exact local-run bytes. Every worker takes a
// turn as the victim, so whichever node rendezvous hashing makes a shard
// owner is covered.
func TestCoordinatorWorkerDeathMidSweep(t *testing.T) {
	job := chanJob()
	want := localBaseline(t, job)
	anyDied := false
	for v := 0; v < 3; v++ {
		mocks := make([]*cluster.MockBackend, 3)
		ifaces := make([]cluster.Backend, 3)
		for i := range mocks {
			mocks[i] = cluster.NewMockBackend(string(rune('a'+i))+"-worker", newRunner())
			ifaces[i] = mocks[i]
		}
		var died atomic.Bool
		victim := mocks[v]
		victim.SetHook(func(engine.Job) error {
			died.Store(true)
			victim.Kill()
			return &cluster.UnreachableError{Node: victim.ID(), Err: errors.New("killed mid-sweep")}
		})
		coord, err := cluster.NewCoordinator(ifaces...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := coord.Run(context.Background(), job)
		if err != nil {
			t.Fatalf("victim %d: %v", v, err)
		}
		if got := renderReport(t, res.Result); got != want {
			t.Fatalf("victim %d: re-routed report differs from local run:\n got: %s\nwant: %s", v, got, want)
		}
		if !died.Load() {
			continue // rendezvous never routed a shard to this victim
		}
		anyDied = true
		rerouted := 0
		for _, sh := range res.Shards {
			rerouted += sh.Rerouted
			if sh.Worker == victim.ID() {
				t.Fatalf("victim %d: shard %+v attributed to the dead worker", v, sh)
			}
		}
		if rerouted == 0 {
			t.Fatalf("victim %d died mid-sweep but no shard was re-routed", v)
		}
		if st := coord.Stats(); st.Rerouted == 0 {
			t.Fatalf("victim %d: coordinator stats missed the re-route: %+v", v, st)
		}
	}
	if !anyDied {
		t.Fatal("no victim ever owned a shard — the test exercised nothing")
	}
}

// TestCoordinatorAllWorkersDown pins the typed fail-fast: with every node
// dead, Run returns ErrNoWorkers promptly instead of hanging.
func TestCoordinatorAllWorkersDown(t *testing.T) {
	mocks := []*cluster.MockBackend{
		cluster.NewMockBackend("a-worker", nil),
		cluster.NewMockBackend("b-worker", nil),
	}
	mocks[0].Kill()
	mocks[1].Kill()
	coord, err := cluster.NewCoordinator(mocks[0], mocks[1])
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := coord.Run(context.Background(), chanJob())
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, cluster.ErrNoWorkers) {
			t.Fatalf("err = %v, want ErrNoWorkers", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator hung with all workers down")
	}
}

// TestCoordinatorRevival pins lazy membership recovery: a worker that was
// down (all its jobs failed, node marked dead) is re-probed at the next Run
// and serves again once healthy.
func TestCoordinatorRevival(t *testing.T) {
	job := chanJob()
	want := localBaseline(t, job)
	mock := cluster.NewMockBackend("a-worker", newRunner())
	coord, err := cluster.NewCoordinator(mock)
	if err != nil {
		t.Fatal(err)
	}
	mock.Kill()
	if _, err := coord.Run(context.Background(), job); !errors.Is(err, cluster.ErrNoWorkers) {
		t.Fatalf("dead single-node cluster: err = %v, want ErrNoWorkers", err)
	}
	mock.Revive()
	res, err := coord.Run(context.Background(), job)
	if err != nil {
		t.Fatalf("revived cluster: %v", err)
	}
	if got := renderReport(t, res.Result); got != want {
		t.Fatalf("revived report differs from local run")
	}
	if st := coord.Stats(); st.Workers[0].Down {
		t.Fatalf("worker still marked down after revival: %+v", st)
	}
}

// TestCoordinatorDeterministicErrorNotRerouted pins the error policy: a
// job that fails deterministically (bad spec) must surface as-is, not mark
// workers dead or bounce around the cluster.
func TestCoordinatorDeterministicErrorNotRerouted(t *testing.T) {
	coord, _ := localCluster(t, 2)
	bad := engine.Job{Kind: engine.KindCheck, Check: &engine.CheckSpec{
		Left: "coin:fair:x", Right: "coin:fair:x", Envs: []string{"no:such:ref"},
	}}
	_, err := coord.Run(context.Background(), bad)
	if err == nil {
		t.Fatal("bad spec succeeded")
	}
	if errors.Is(err, cluster.ErrNoWorkers) || cluster.IsUnreachable(err) {
		t.Fatalf("deterministic failure misclassified: %v", err)
	}
	st := coord.Stats()
	for _, w := range st.Workers {
		if w.Down {
			t.Fatalf("deterministic failure marked worker down: %+v", st)
		}
	}
	if st.Rerouted != 0 {
		t.Fatalf("deterministic failure was re-routed: %+v", st)
	}
}

// TestCoordinatorTransientBlip pins that a brief transport blip (one failed
// attempt, node stays up) re-routes the shard without losing the job, and
// the blipped node rejoins for later runs.
func TestCoordinatorTransientBlip(t *testing.T) {
	job := chanJob()
	want := localBaseline(t, job)
	mocks := make([]*cluster.MockBackend, 2)
	ifaces := make([]cluster.Backend, 2)
	for i := range mocks {
		mocks[i] = cluster.NewMockBackend(string(rune('a'+i))+"-worker", newRunner())
		ifaces[i] = mocks[i]
	}
	mocks[0].FailNext(1)
	mocks[1].FailNext(1)
	coord, err := cluster.NewCoordinator(ifaces...)
	if err != nil {
		t.Fatal(err)
	}
	coord.Retry = resilience.Backoff{Attempts: 3, Base: time.Millisecond}
	res, err := coord.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderReport(t, res.Result); got != want {
		t.Fatalf("post-blip report differs from local run")
	}
}

// TestRunResultStoreSkipsPartials would need a budget-partial simulate; the
// cheap pinnable slice of that rule: a simulate result flagged Partial is
// never published to any store. Exercised through the coordinator with a
// mock whose runner degrades is heavyweight, so pin the storable rule at
// the unit seam instead: a store lookup never returns a partial because
// nothing partial is ever put (see Coordinator.storePublish); here we
// verify simulate results round-trip the store when exact.
func TestCoordinatorSimulateStoreRoundTrip(t *testing.T) {
	job := engine.Job{Kind: engine.KindSimulate, Simulate: &engine.SimulateSpec{
		Systems: []string{"coin:fair:x"},
		Bound:   3,
	}}
	want := func(res *engine.Result) string {
		b, err := json.MarshalIndent(res.Simulate, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	base, err := newRunner().Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	coord, _ := localCluster(t, 2)
	res1, err := coord.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := coord.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if want(res1.Result) != want(base) || want(res2.Result) != want(base) {
		t.Fatal("simulate results differ across store round-trip")
	}
	if !res2.Shards[0].FromStore {
		t.Fatalf("second simulate run not store-served: %+v", res2.Shards)
	}
}
