package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/resilience"
)

// RemoteBackend speaks dsed's HTTP job API. The client is mutex-guarded and
// redialed (idle connections torn down, transport state reset) after any
// transport-level failure, and each request is wrapped in resilience.Retry
// so brief disconnects and load sheds (503) heal without the coordinator
// noticing — only an exhausted retry budget surfaces as UnreachableError
// and triggers re-routing.
type RemoteBackend struct {
	id   string
	base string
	// Backoff drives the per-request retry loop. The zero value means a
	// single attempt (no retries).
	backoff resilience.Backoff

	mu     sync.Mutex
	client *http.Client

	jobs      atomic.Int64
	errs      atomic.Int64
	storeGets atomic.Int64
	storeHits atomic.Int64
	storePuts atomic.Int64
	redials   atomic.Int64
}

// NewRemoteBackend targets the dsed worker at baseURL (e.g.
// "http://127.0.0.1:8080"), identified as id for sharding and attribution.
// backoff governs per-request retries of transient failures.
func NewRemoteBackend(id, baseURL string, backoff resilience.Backoff) *RemoteBackend {
	return &RemoteBackend{
		id:      id,
		base:    strings.TrimRight(baseURL, "/"),
		backoff: backoff,
		client:  &http.Client{Transport: &http.Transport{}},
	}
}

// URL returns the worker's base URL.
func (b *RemoteBackend) URL() string { return b.base }

// ID implements Backend.
func (b *RemoteBackend) ID() string { return b.id }

// httpClient returns the current client under the mutex.
func (b *RemoteBackend) httpClient() *http.Client {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.client
}

// redial resets the client after a transport failure: idle connections are
// closed and a fresh transport installed, so the next attempt dials anew
// instead of reusing a half-dead keep-alive connection (the miniclient
// reconnect pattern, translated to HTTP).
func (b *RemoteBackend) redial() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.redials.Add(1)
	if t, ok := b.client.Transport.(*http.Transport); ok {
		t.CloseIdleConnections()
	}
	b.client = &http.Client{Transport: &http.Transport{}}
}

// do issues one HTTP request with retry-on-transient and redial-on-
// transport-failure. It returns the response body and status, or an error:
// UnreachableError for exhausted transport failures, a re-classified
// *WorkerError for job-level failures the worker reported.
func (b *RemoteBackend) do(ctx context.Context, method, url string, body []byte, contentType string) (status int, respBody []byte, err error) {
	return b.doOpts(ctx, method, url, body, contentType, false)
}

// doOpts is do with the store-op flag: during a store round-trip a 5xx
// other than a load shed (503) is the footprint of a worker restarting
// mid-request — its listener answers before the store is wired up — so it
// re-classifies as UnreachableError (transient) rather than a job-level
// *WorkerError, letting the retry loop and the coordinator's re-probe heal
// the blip instead of failing the publish permanently.
func (b *RemoteBackend) doOpts(ctx context.Context, method, url string, body []byte, contentType string, storeOp bool) (status int, respBody []byte, err error) {
	attempt := func() error {
		var rdr io.Reader
		if body != nil {
			rdr = bytes.NewReader(body)
		}
		req, rerr := http.NewRequestWithContext(ctx, method, url, rdr)
		if rerr != nil {
			return rerr
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, rerr := b.httpClient().Do(req)
		if rerr != nil {
			b.redial()
			return &UnreachableError{Node: b.id, Err: rerr}
		}
		defer resp.Body.Close()
		data, rerr := io.ReadAll(resp.Body)
		if rerr != nil {
			b.redial()
			return &UnreachableError{Node: b.id, Err: rerr}
		}
		status, respBody = resp.StatusCode, data
		if resp.StatusCode >= 400 {
			cerr := b.classify(resp.StatusCode, data)
			if storeOp && resp.StatusCode >= 500 && resp.StatusCode != http.StatusServiceUnavailable {
				return &UnreachableError{Node: b.id, Err: cerr}
			}
			return cerr
		}
		return nil
	}
	err = resilience.Retry(ctx, b.backoff, attempt)
	return status, respBody, err
}

// classify turns a worker's {error, class} payload into a typed error so
// coordinator policy (re-route, fail fast, surface verbatim) keys off
// errors.Is instead of string matching. Load sheds stay transient.
func (b *RemoteBackend) classify(status int, body []byte) error {
	var payload struct {
		Error string `json:"error"`
		Class string `json:"class"`
	}
	json.Unmarshal(body, &payload)
	msg := payload.Error
	if msg == "" {
		msg = fmt.Sprintf("http %d", status)
	}
	return &WorkerError{Node: b.id, Status: status, Class: payload.Class, Msg: msg}
}

// WorkerError is a job-level failure reported by a worker over HTTP,
// carrying the worker's resilience classification. Is() re-anchors it to
// the matching resilience sentinel so the coordinator's error policy is
// identical for local and remote backends.
type WorkerError struct {
	Node   string
	Status int
	// Class is the worker-side resilience.Class string ("queue-full",
	// "quarantined", "deadline", ...), or "" for unclassified failures.
	Class string
	Msg   string
}

func (e *WorkerError) Error() string {
	if e.Class != "" {
		return fmt.Sprintf("cluster: worker %s: %s (%s)", e.Node, e.Msg, e.Class)
	}
	return fmt.Sprintf("cluster: worker %s: %s", e.Node, e.Msg)
}

// Is maps the wire classification back onto the resilience sentinels.
func (e *WorkerError) Is(target error) bool {
	switch e.Class {
	case "queue-full":
		return target == resilience.ErrQueueFull
	case "quarantined":
		return target == resilience.ErrQuarantined
	case "budget":
		return target == resilience.ErrBudgetExceeded
	case "deadline":
		return target == resilience.ErrDeadline
	case "cancelled":
		return target == resilience.ErrCancelled
	}
	return false
}

// Transient mirrors the worker-side classification: a shed (503) clears on
// its own, everything else needs intervention or is deterministic.
func (e *WorkerError) Transient() bool { return e.Status == http.StatusServiceUnavailable }

// Run implements Backend: POST /v1/{kind} with the kind's spec as body and
// the job limits as query overrides (the daemon's spec schema is strict, so
// limits travel in the URL).
func (b *RemoteBackend) Run(ctx context.Context, job engine.Job) (*engine.Result, error) {
	b.jobs.Add(1)
	var spec any
	switch job.Kind {
	case engine.KindCheck:
		spec = job.Check
	case engine.KindSimulate:
		spec = job.Simulate
	case engine.KindDescribe:
		spec = job.Describe
	default:
		b.errs.Add(1)
		return nil, fmt.Errorf("cluster: unknown job kind %q", job.Kind)
	}
	body, err := json.Marshal(spec)
	if err != nil {
		b.errs.Add(1)
		return nil, fmt.Errorf("cluster: encode %s spec: %w", job.Kind, err)
	}
	q := make([]string, 0, 4)
	for _, f := range []struct {
		name string
		v    int64
	}{
		{"timeout_ms", job.TimeoutMS},
		{"budget_states", job.BudgetStates},
		{"budget_transitions", job.BudgetTransitions},
		{"budget_wall_ms", job.BudgetWallMS},
	} {
		if f.v > 0 {
			q = append(q, f.name+"="+strconv.FormatInt(f.v, 10))
		}
	}
	url := b.base + "/v1/" + job.Kind
	if len(q) > 0 {
		url += "?" + strings.Join(q, "&")
	}
	_, respBody, err := b.do(ctx, http.MethodPost, url, body, "application/json")
	if err != nil {
		b.errs.Add(1)
		return nil, err
	}
	res := &engine.Result{}
	if err := json.Unmarshal(respBody, res); err != nil {
		b.errs.Add(1)
		return nil, &UnreachableError{Node: b.id, Err: fmt.Errorf("bad result payload: %w", err)}
	}
	return res, nil
}

// Health implements Backend via the daemon's liveness probe.
func (b *RemoteBackend) Health(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := b.httpClient().Do(req)
	if err != nil {
		b.redial()
		return &UnreachableError{Node: b.id, Err: err}
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &UnreachableError{Node: b.id, Err: fmt.Errorf("healthz %d", resp.StatusCode)}
	}
	return nil
}

// StoreGet implements Backend over GET /v1/store/{key}; a 404 comes back
// wrapping engine.ErrCacheMiss so remote and local misses classify alike.
func (b *RemoteBackend) StoreGet(ctx context.Context, key string) ([]byte, error) {
	b.storeGets.Add(1)
	status, body, err := b.doOpts(ctx, http.MethodGet, b.base+"/v1/store/"+key, nil, "", true)
	if err != nil {
		if status == http.StatusNotFound {
			return nil, fmt.Errorf("cluster: worker %s: %w", b.id, engine.ErrCacheMiss)
		}
		return nil, err
	}
	b.storeHits.Add(1)
	return body, nil
}

// StorePut implements Backend over PUT /v1/store/{key}. A worker
// restarting mid-put surfaces as a transient blip (retried, then
// UnreachableError), never a permanent job-level failure — the payload is
// content-addressed, so re-publishing it later is always safe.
func (b *RemoteBackend) StorePut(ctx context.Context, key string, data []byte) error {
	b.storePuts.Add(1)
	_, _, err := b.doOpts(ctx, http.MethodPut, b.base+"/v1/store/"+key, data, "application/octet-stream", true)
	return err
}

// Stats implements Backend.
func (b *RemoteBackend) Stats() BackendStats {
	return BackendStats{
		Jobs:      b.jobs.Load(),
		Errors:    b.errs.Load(),
		StoreGets: b.storeGets.Load(),
		StoreHits: b.storeHits.Load(),
		StorePuts: b.storePuts.Load(),
		Redials:   b.redials.Load(),
	}
}
