package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/resilience"
	"repro/internal/rng"
)

// Coordinator shards jobs across a fixed set of backends and merges the
// results byte-identically to a single-node run (see the package comment
// for the determinism argument). It is safe for concurrent use.
type Coordinator struct {
	backends []Backend
	// Retry drives per-shard retries of transient failures on the
	// assigned node before re-routing is considered (RemoteBackend has
	// its own transport-level retry underneath; this one also covers
	// transient job faults on local and mock backends). The zero value
	// means a single attempt.
	Retry resilience.Backoff

	mu   sync.Mutex
	down map[string]bool

	dispatched int64
	rerouted   int64
	storeHits  int64
	storeMiss  int64
}

// NewCoordinator builds a coordinator over backends. Backend order is the
// tie-break order for diagnostics only — shard placement depends solely on
// the (backend ID, shard key) rendezvous scores, so two coordinators over
// the same IDs route identically whatever order they list them in.
func NewCoordinator(backends ...Backend) (*Coordinator, error) {
	if len(backends) == 0 {
		return nil, ErrNoWorkers
	}
	seen := make(map[string]bool, len(backends))
	for _, b := range backends {
		if seen[b.ID()] {
			return nil, fmt.Errorf("cluster: duplicate worker id %q", b.ID())
		}
		seen[b.ID()] = true
	}
	return &Coordinator{backends: backends, down: make(map[string]bool)}, nil
}

// ShardResult records where one shard of a job ran and how it was served.
type ShardResult struct {
	// Key is the shard's content fingerprint (the store key).
	Key string `json:"key"`
	// Env is the environment reference the shard covers ("" for unsharded
	// jobs).
	Env string `json:"env,omitempty"`
	// Worker is the node that served the shard: the store node on a store
	// hit, else the node that computed it.
	Worker string `json:"worker"`
	// FromStore reports the shard was served from a content-addressed
	// store instead of recomputed.
	FromStore bool `json:"from_store,omitempty"`
	// Rerouted counts how many times the shard moved to a surviving node
	// after a transport failure or load shed.
	Rerouted int `json:"rerouted,omitempty"`
}

// RunResult is a coordinator run: the merged engine result plus per-shard
// placement. For sharded check jobs Result.Report (run telemetry) is nil —
// kernel telemetry is a per-node account and does not merge.
type RunResult struct {
	*engine.Result
	Shards []ShardResult `json:"shards"`
}

// WorkerStatus is one backend's view in CoordinatorStats.
type WorkerStatus struct {
	ID    string       `json:"id"`
	Down  bool         `json:"down,omitempty"`
	Stats BackendStats `json:"stats"`
}

// CoordinatorStats is the coordinator's cumulative account, surfaced under
// "cluster" in the coordinator daemon's /v1/debug.
type CoordinatorStats struct {
	Workers     []WorkerStatus `json:"workers"`
	Dispatched  int64          `json:"dispatched"`
	Rerouted    int64          `json:"rerouted"`
	StoreHits   int64          `json:"store_hits"`
	StoreMisses int64          `json:"store_misses"`
}

// Stats snapshots the coordinator and its backends.
func (c *Coordinator) Stats() CoordinatorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CoordinatorStats{
		Dispatched:  c.dispatched,
		Rerouted:    c.rerouted,
		StoreHits:   c.storeHits,
		StoreMisses: c.storeMiss,
	}
	for _, b := range c.backends {
		st.Workers = append(st.Workers, WorkerStatus{ID: b.ID(), Down: c.down[b.ID()], Stats: b.Stats()})
	}
	return st
}

// Backends returns the configured backends in order.
func (c *Coordinator) Backends() []Backend { return append([]Backend(nil), c.backends...) }

// liveIDs returns the IDs of the backends not marked down, in configured
// order, excluding any in skip.
func (c *Coordinator) liveIDs(skip map[string]bool) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]string, 0, len(c.backends))
	for _, b := range c.backends {
		if !c.down[b.ID()] && !skip[b.ID()] {
			ids = append(ids, b.ID())
		}
	}
	return ids
}

func (c *Coordinator) backend(id string) Backend {
	for _, b := range c.backends {
		if b.ID() == id {
			return b
		}
	}
	return nil
}

func (c *Coordinator) markDown(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.down[id] {
		c.down[id] = true
		cWorkersDown.Inc()
	}
}

// revive re-probes nodes marked down and brings responders back, returning
// how many rejoined. Run calls it once up front, so a restarted worker
// rejoins on the next job; StartReprobe calls it in the background, so an
// idle cluster notices the revival too. A node marked down is treated as a
// transient blip until proven otherwise — it stays in the probe set
// forever, never permanently evicted.
func (c *Coordinator) revive(ctx context.Context) int {
	c.mu.Lock()
	var downed []string
	for id, d := range c.down {
		if d {
			downed = append(downed, id)
		}
	}
	c.mu.Unlock()
	sort.Strings(downed)
	revived := 0
	for _, id := range downed {
		if b := c.backend(id); b != nil && b.Health(ctx) == nil {
			c.mu.Lock()
			delete(c.down, id)
			c.mu.Unlock()
			revived++
			cWorkersRevived.Inc()
		}
	}
	return revived
}

// downCount returns the number of nodes currently marked down.
func (c *Coordinator) downCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, d := range c.down {
		if d {
			n++
		}
	}
	return n
}

// StartReprobe launches a background loop that re-probes downed workers on
// a jittered backoff cadence, so a cluster with no job traffic still
// notices a revived worker. The delay follows b (resilience.Backoff
// defaults apply): it grows while the same outage persists and resets to
// the base whenever a probe revives something — or when nothing is down,
// keeping the idle loop cheap (revive with an empty down set does no I/O).
// The loop exits when ctx terminates; it returns immediately.
func (c *Coordinator) StartReprobe(ctx context.Context, b resilience.Backoff) {
	go func() {
		stream := rng.New(b.Seed)
		retry := 1
		for {
			t := time.NewTimer(b.Delay(retry, stream))
			select {
			case <-ctx.Done():
				t.Stop()
				return
			case <-t.C:
			}
			if c.revive(ctx) > 0 || c.downCount() == 0 {
				retry = 1
			} else if retry < 16 {
				retry++
			}
		}
	}()
}

// reroutable reports whether moving the shard to another node can help:
// transport failures (node gone) and load sheds (node saturated) yes;
// deterministic job errors, deadlines and budget trips no — they would
// fail identically anywhere.
func reroutable(err error) bool {
	return IsUnreachable(err) || errors.Is(err, resilience.ErrQueueFull)
}

// Run executes job on the cluster. Check jobs quantifying over more than
// one environment are sharded per environment; everything else routes as a
// single shard. The merged report is byte-identical to a single-node run.
func (c *Coordinator) Run(ctx context.Context, job engine.Job) (*RunResult, error) {
	c.revive(ctx)
	if job.Kind == engine.KindCheck && job.Check != nil && len(job.Check.Envs) > 1 {
		return c.runSharded(ctx, job)
	}
	res, sh, err := c.runShard(ctx, job, "")
	if err != nil {
		return nil, err
	}
	return &RunResult{Result: res, Shards: []ShardResult{sh}}, nil
}

// runSharded splits a multi-environment check per environment — the outer
// quantifier of Def 4.12, whose per-env pair blocks are independent —
// launches the shards in index order, and merges in the canonical
// (Env, Sched, Matched) order of core.Report.
func (c *Coordinator) runSharded(ctx context.Context, job engine.Job) (*RunResult, error) {
	envs := job.Check.Envs
	results := make([]*engine.Result, len(envs))
	shards := make([]ShardResult, len(envs))
	errs := make([]error, len(envs))
	var wg sync.WaitGroup
	for i, env := range envs {
		sub := job
		cs := *job.Check
		cs.Envs = []string{env}
		sub.Check = &cs
		wg.Add(1)
		go func(i int, env string, sub engine.Job) {
			defer wg.Done()
			results[i], shards[i], errs[i] = c.runShard(ctx, sub, env)
		}(i, env, sub)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merged := &core.Report{Holds: true}
	for _, res := range results {
		if res.Check == nil {
			return nil, fmt.Errorf("cluster: shard returned no check report")
		}
		merged.Pairs = append(merged.Pairs, res.Check.Pairs...)
	}
	// Recompute the aggregates exactly as core.Report.assemble does: Holds
	// is the conjunction over pairs, MaxDist the max over non-infinite
	// distances, and the pair order the canonical (Env, Sched, Matched)
	// sort — so merging shard reports commutes with computing the report
	// in one piece.
	for _, p := range merged.Pairs {
		if !p.OK {
			merged.Holds = false
		}
		if p.Dist > merged.MaxDist && !math.IsInf(p.Dist, 1) {
			merged.MaxDist = p.Dist
		}
	}
	sort.Slice(merged.Pairs, func(i, j int) bool {
		pi, pj := merged.Pairs[i], merged.Pairs[j]
		if pi.Env != pj.Env {
			return pi.Env < pj.Env
		}
		if pi.Sched != pj.Sched {
			return pi.Sched < pj.Sched
		}
		return pi.Matched < pj.Matched
	})
	return &RunResult{
		Result: &engine.Result{Kind: engine.KindCheck, Check: merged},
		Shards: shards,
	}, nil
}

// runShard serves one shard: consult the content-addressed stores
// (rendezvous owner first, then peers in configured order), and on a miss
// compute on the owner, re-routing to survivors on transport failures and
// load sheds. env labels the shard for diagnostics.
func (c *Coordinator) runShard(ctx context.Context, job engine.Job, env string) (*engine.Result, ShardResult, error) {
	key := job.Fingerprint()
	sh := ShardResult{Key: key, Env: env}
	cDispatched.Inc()
	c.mu.Lock()
	c.dispatched++
	c.mu.Unlock()

	if res, node := c.storeLookup(ctx, key); res != nil {
		cRemoteHits.Inc()
		c.mu.Lock()
		c.storeHits++
		c.mu.Unlock()
		sh.Worker, sh.FromStore = node, true
		return res, sh, nil
	}
	cRemoteMiss.Inc()
	c.mu.Lock()
	c.storeMiss++
	c.mu.Unlock()

	tried := make(map[string]bool)
	var lastErr error
	for {
		live := c.liveIDs(tried)
		if len(live) == 0 {
			if lastErr != nil {
				return nil, sh, fmt.Errorf("%w (last: %v)", ErrNoWorkers, lastErr)
			}
			return nil, sh, ErrNoWorkers
		}
		id := live[pickHRW(live, key)]
		b := c.backend(id)
		var res *engine.Result
		err := resilience.Retry(ctx, c.Retry, func() error {
			var e error
			res, e = b.Run(ctx, job)
			return e
		})
		if err == nil {
			sh.Worker = id
			c.storePublish(ctx, b, key, res)
			return res, sh, nil
		}
		if !reroutable(err) {
			return nil, sh, err
		}
		lastErr = err
		if IsUnreachable(err) {
			c.markDown(id)
		} else {
			// Load shed: the node is alive, just saturated. Skip it for
			// this shard without declaring it dead.
			tried[id] = true
		}
		sh.Rerouted++
		cRerouted.Inc()
		c.mu.Lock()
		c.rerouted++
		c.mu.Unlock()
	}
}

// storeLookup consults the shard's rendezvous owner first, then the
// remaining live nodes in configured order. A decodable hit from any node
// is authoritative: entries are content-addressed by the full job
// fingerprint, so byte-identity cannot depend on which node answered.
func (c *Coordinator) storeLookup(ctx context.Context, key string) (*engine.Result, string) {
	live := c.liveIDs(nil)
	if len(live) == 0 {
		return nil, ""
	}
	order := make([]string, 0, len(live))
	owner := live[pickHRW(live, key)]
	order = append(order, owner)
	for _, id := range live {
		if id != owner {
			order = append(order, id)
		}
	}
	for _, id := range order {
		b := c.backend(id)
		data, err := b.StoreGet(ctx, key)
		if err != nil {
			if IsUnreachable(err) {
				c.markDown(id)
			}
			continue
		}
		res := &engine.Result{}
		if json.Unmarshal(data, res) != nil || res.Kind == "" {
			continue
		}
		return res, id
	}
	return nil, ""
}

// storePublish writes the shard result to the store of the node that
// computed it, stripped of its run telemetry (a per-run account, not
// content). Partial simulate results are never published, mirroring the
// engine cache's partials-are-never-cached rule; unmarshalable results
// (e.g. +Inf distances) are skipped — the shard still returns normally.
func (c *Coordinator) storePublish(ctx context.Context, b Backend, key string, res *engine.Result) {
	if res == nil || (res.Simulate != nil && res.Simulate.Partial) {
		return
	}
	stored := *res
	stored.Report = nil
	data, err := json.Marshal(&stored)
	if err != nil {
		return
	}
	if b.StorePut(ctx, key, data) == nil {
		cStorePuts.Inc()
	}
}
