package cluster_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/resilience"
)

// fakeWorker is a minimal in-test dsed: POST /v1/check runs on a real
// runner, GET/PUT /v1/store/{key} serve a map, and shedFirst makes the
// first N job requests shed with 503 + {"class":"queue-full"}.
type fakeWorker struct {
	runner    *engine.Runner
	shedFirst atomic.Int64

	mu    sync.Mutex
	store map[string][]byte
}

func newFakeWorker() *fakeWorker {
	return &fakeWorker{runner: newRunner(), store: make(map[string][]byte)}
}

func (f *fakeWorker) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/check", func(w http.ResponseWriter, r *http.Request) {
		if f.shedFirst.Add(-1) >= 0 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]string{"error": "queue full", "class": "queue-full"})
			return
		}
		cs := &engine.CheckSpec{}
		if err := json.NewDecoder(r.Body).Decode(cs); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		res, err := f.runner.RunSafe(r.Context(), engine.Job{Kind: engine.KindCheck, Check: cs})
		if err != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusUnprocessableEntity)
			json.NewEncoder(w).Encode(map[string]string{"error": err.Error(), "class": resilience.Class(err)})
			return
		}
		json.NewEncoder(w).Encode(res)
	})
	mux.HandleFunc("GET /v1/store/{key}", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		data, ok := f.store[r.PathValue("key")]
		f.mu.Unlock()
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(map[string]string{"error": "miss"})
			return
		}
		w.Write(data)
	})
	mux.HandleFunc("PUT /v1/store/{key}", func(w http.ResponseWriter, r *http.Request) {
		data, _ := io.ReadAll(r.Body)
		f.mu.Lock()
		f.store[r.PathValue("key")] = data
		f.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	return mux
}

// TestRemoteBackendRoundTrip pins the HTTP job path: a check shipped
// through RemoteBackend returns the same report bytes as the local run,
// and the store endpoints round-trip raw bytes.
func TestRemoteBackendRoundTrip(t *testing.T) {
	fw := newFakeWorker()
	srv := httptest.NewServer(fw.handler())
	defer srv.Close()

	job := chanJob()
	want := localBaseline(t, job)
	b := cluster.NewRemoteBackend("w1", srv.URL, resilience.Backoff{})
	if err := b.Health(context.Background()); err != nil {
		t.Fatalf("health: %v", err)
	}
	res, err := b.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderReport(t, res); got != want {
		t.Fatalf("remote report differs from local run:\n got: %s\nwant: %s", got, want)
	}

	if _, err := b.StoreGet(context.Background(), "job-nope"); !errors.Is(err, engine.ErrCacheMiss) {
		t.Fatalf("store miss classified as %v, want ErrCacheMiss", err)
	}
	if err := b.StorePut(context.Background(), "job-k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	got, err := b.StoreGet(context.Background(), "job-k")
	if err != nil || string(got) != "payload" {
		t.Fatalf("store round-trip: %q, %v", got, err)
	}
}

// TestRemoteBackendRetriesShed pins the admission-control contract: a 503
// shed is transient, so the backend's retry loop absorbs it and the job
// succeeds on the next attempt.
func TestRemoteBackendRetriesShed(t *testing.T) {
	fw := newFakeWorker()
	fw.shedFirst.Store(2)
	srv := httptest.NewServer(fw.handler())
	defer srv.Close()

	b := cluster.NewRemoteBackend("w1", srv.URL, resilience.Backoff{Attempts: 4, Base: time.Millisecond})
	res, err := b.Run(context.Background(), chanJob())
	if err != nil {
		t.Fatalf("shed not retried: %v", err)
	}
	if res.Check == nil {
		t.Fatal("no report after retries")
	}
}

// TestRemoteBackendShedExhaustsToQueueFull pins the error surface when the
// worker keeps shedding: the returned error classifies as ErrQueueFull
// (the coordinator then re-routes without declaring the node dead).
func TestRemoteBackendShedExhaustsToQueueFull(t *testing.T) {
	fw := newFakeWorker()
	fw.shedFirst.Store(1 << 30)
	srv := httptest.NewServer(fw.handler())
	defer srv.Close()

	b := cluster.NewRemoteBackend("w1", srv.URL, resilience.Backoff{Attempts: 2, Base: time.Millisecond})
	_, err := b.Run(context.Background(), chanJob())
	if !errors.Is(err, resilience.ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull classification", err)
	}
	if cluster.IsUnreachable(err) {
		t.Fatalf("shed misclassified as unreachable: %v", err)
	}
}

// TestRemoteBackendUnreachable pins the transport-failure surface: a dead
// address yields UnreachableError (re-routable) and counts a redial.
func TestRemoteBackendUnreachable(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close() // now nothing listens there

	b := cluster.NewRemoteBackend("w1", url, resilience.Backoff{Attempts: 2, Base: time.Millisecond})
	_, err := b.Run(context.Background(), chanJob())
	if !cluster.IsUnreachable(err) {
		t.Fatalf("err = %v, want UnreachableError", err)
	}
	if b.Stats().Redials == 0 {
		t.Fatal("transport failure did not redial the client")
	}
	if err := b.Health(context.Background()); !cluster.IsUnreachable(err) {
		t.Fatalf("health on dead node: %v, want UnreachableError", err)
	}
}

// TestRemoteBackendWorkerErrorPassThrough pins that a deterministic job
// failure on the worker surfaces as a classified WorkerError, not a
// transport failure.
func TestRemoteBackendWorkerErrorPassThrough(t *testing.T) {
	fw := newFakeWorker()
	srv := httptest.NewServer(fw.handler())
	defer srv.Close()

	bad := engine.Job{Kind: engine.KindCheck, Check: &engine.CheckSpec{
		Left: "coin:fair:x", Right: "coin:fair:x", Envs: []string{"no:such:ref"},
	}}
	b := cluster.NewRemoteBackend("w1", srv.URL, resilience.Backoff{Attempts: 3, Base: time.Millisecond})
	_, err := b.Run(context.Background(), bad)
	if err == nil || cluster.IsUnreachable(err) {
		t.Fatalf("deterministic worker failure: %v, want classified WorkerError", err)
	}
	var we *cluster.WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("err = %T %v, want *cluster.WorkerError", err, err)
	}
}

// TestRemoteCluster pins the full remote topology in-process: a coordinator
// over two HTTP workers merges byte-identically and serves the second run
// from the workers' stores.
func TestRemoteCluster(t *testing.T) {
	var srvs []*httptest.Server
	var backs []cluster.Backend
	for i := 0; i < 2; i++ {
		fw := newFakeWorker()
		srv := httptest.NewServer(fw.handler())
		srvs = append(srvs, srv)
		backs = append(backs, cluster.NewRemoteBackend(srv.URL, srv.URL, resilience.Backoff{Attempts: 2, Base: time.Millisecond}))
	}
	defer func() {
		for _, s := range srvs {
			s.Close()
		}
	}()
	job := chanJob()
	want := localBaseline(t, job)
	coord, err := cluster.NewCoordinator(backs...)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := coord.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderReport(t, res1.Result); got != want {
		t.Fatalf("remote cluster report differs from local run")
	}
	res2, err := coord.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderReport(t, res2.Result); got != want {
		t.Fatalf("store-served remote report differs from local run")
	}
	for _, sh := range res2.Shards {
		if !sh.FromStore {
			t.Fatalf("second run shard not store-served: %+v", sh)
		}
	}
}
