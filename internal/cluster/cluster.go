// Package cluster scales dsed horizontally: a Coordinator shards
// verification work across N worker backends and merges their results into
// reports byte-identical to a single local run.
//
// The design follows the engine's determinism discipline (see
// docs/CLUSTER.md):
//
//   - Backend is the small surface a worker exposes — run a job, answer a
//     health probe, and serve a content-addressed result store. Three
//     implementations ship: LocalBackend (an in-process engine.Runner),
//     RemoteBackend (dsed's HTTP job API behind a mutex-guarded client with
//     automatic redial/backoff), and MockBackend (scripted failures for
//     tests).
//   - The Coordinator shards a check job's (env, scheduler) sweep by
//     environment — the outer quantifier of Def 4.12, whose per-env pair
//     blocks are independent — assigning each shard to a worker by
//     rendezvous (HRW) hashing of its content fingerprint, so membership
//     changes move only the keys owned by the nodes that changed.
//     Sub-jobs launch in index order and merge in the canonical
//     (Env, Sched, Matched) pair sort of core.Report, which makes the
//     merged report indistinguishable from the sequential single-node run.
//   - Every shard result is published to the content-addressed store of the
//     node that computed it, keyed by the sub-job fingerprint. Before
//     computing a shard the coordinator consults the stores (assigned node
//     first, then peers), so one node's exploration is every node's warm
//     hit — including across membership changes, where a moved key is
//     served by its previous owner and re-warmed on the new one.
//
// Worker failures re-route: a transport-level failure (or a worker shedding
// load with 503) marks the node down and re-runs rendezvous hashing among
// the survivors; deterministic job errors are returned as-is. With every
// worker down, Run fails fast with ErrNoWorkers.
package cluster

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/engine"
	"repro/internal/obs"
)

// Observability instruments. cluster.remote.hits counts shard results
// served from a node's content-addressed store instead of recomputed — the
// acceptance signal that exploration travels between nodes (E22, `make
// cluster-smoke`). cluster.remote.misses counts consultations that found no
// store entry anywhere.
var (
	cRemoteHits = obs.C("cluster.remote.hits")
	cRemoteMiss = obs.C("cluster.remote.misses")
	cDispatched = obs.C("cluster.jobs.dispatched")
	cRerouted   = obs.C("cluster.jobs.rerouted")
	cWorkersDown    = obs.C("cluster.workers.down")
	cWorkersRevived = obs.C("cluster.workers.revived")
	cStorePuts      = obs.C("cluster.store.puts")
)

// ErrNoWorkers reports a cluster operation with no live worker left to run
// it: every backend is marked down (or the coordinator has none). Typed so
// callers can distinguish a dead cluster from a failing job.
var ErrNoWorkers = errors.New("cluster: no live workers")

// Backend is one verification node. Implementations must be safe for
// concurrent use: the coordinator runs shards, health probes and store
// lookups from multiple goroutines.
type Backend interface {
	// ID returns the node's stable identity (the worker_id it stamps on
	// results). Coordinator membership is keyed by it, so IDs must be
	// unique within a cluster.
	ID() string
	// Run executes one job to completion. Transport-level failures (node
	// unreachable, connection dropped, load shed) must be distinguishable
	// from deterministic job errors via IsUnreachable / resilience
	// classification, so the coordinator knows when re-routing can help.
	Run(ctx context.Context, job engine.Job) (*engine.Result, error)
	// Health probes liveness; nil means the node can accept work.
	Health(ctx context.Context) error
	// StoreGet fetches the canonical bytes stored under a content
	// fingerprint key, or an error wrapping engine.ErrCacheMiss.
	StoreGet(ctx context.Context, key string) ([]byte, error)
	// StorePut publishes canonical bytes under a content fingerprint key.
	StorePut(ctx context.Context, key string, data []byte) error
	// Stats returns the node's cumulative traffic counters.
	Stats() BackendStats
}

// BackendStats are one backend's cumulative counters, surfaced per worker
// in the coordinator's /v1/debug section.
type BackendStats struct {
	Jobs      int64 `json:"jobs"`
	Errors    int64 `json:"errors"`
	StoreGets int64 `json:"store_gets"`
	StoreHits int64 `json:"store_hits"`
	StorePuts int64 `json:"store_puts"`
	Redials   int64 `json:"redials,omitempty"`
}

// UnreachableError marks a transport-level backend failure: the node could
// not be reached or dropped the connection, as opposed to the node running
// the job and reporting a deterministic error. The coordinator re-routes
// shards on it.
type UnreachableError struct {
	// Node is the backend ID.
	Node string
	// Err is the underlying transport error.
	Err error
}

func (e *UnreachableError) Error() string {
	return fmt.Sprintf("cluster: worker %s unreachable: %v", e.Node, e.Err)
}

func (e *UnreachableError) Unwrap() error { return e.Err }

// Transient implements resilience.IsTransient: a fresh attempt against the
// same (redialed) or another node can succeed.
func (e *UnreachableError) Transient() bool { return true }

// IsUnreachable reports whether err marks a transport-level backend
// failure (see UnreachableError).
func IsUnreachable(err error) bool {
	var ue *UnreachableError
	return errors.As(err, &ue)
}
