package cluster_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/resilience"
)

// TestChaosCluster runs a sweep under injected transient transport faults
// (resilience.FaultJobTransient fires inside every worker's Runner.Run):
// the coordinator's per-shard retry must absorb the blips with zero lost
// jobs and the merged reports byte-identical to the fault-free local run.
func TestChaosCluster(t *testing.T) {
	job := chanJob()
	want := localBaseline(t, job) // baseline computed before arming faults

	restore := resilience.InstallInjector(
		resilience.NewInjector(42).Arm(resilience.FaultJobTransient, 0.3))
	defer restore()

	coord, _ := localCluster(t, 3)
	coord.Retry = resilience.Backoff{Attempts: 8, Base: time.Millisecond, Cap: 10 * time.Millisecond}
	for run := 0; run < 4; run++ {
		res, err := coord.Run(context.Background(), job)
		if err != nil {
			t.Fatalf("run %d lost the job: %v", run, err)
		}
		if got := renderReport(t, res.Result); got != want {
			t.Fatalf("run %d report differs from fault-free local run:\n got: %s\nwant: %s", run, got, want)
		}
	}
	st := coord.Stats()
	for _, w := range st.Workers {
		if w.Down {
			t.Fatalf("transient faults marked a worker down: %+v", st)
		}
	}
}

// TestChaosClusterDegenerate pins the same property on a single-node
// cluster: no survivor exists, so only the retry loop stands between a
// transient blip and a lost job.
func TestChaosClusterDegenerate(t *testing.T) {
	job := engine.Job{Kind: engine.KindCheck, Check: &engine.CheckSpec{
		Left:  "coin:biased:x:0.625",
		Right: "coin:fair:x",
		Envs:  []string{"coin:env:x"},
		Eps:   0.125,
		Q1:    3, Q2: 3,
	}}
	want := localBaseline(t, job)

	restore := resilience.InstallInjector(
		resilience.NewInjector(7).Arm(resilience.FaultJobTransient, 0.5))
	defer restore()

	coord, _ := localCluster(t, 1)
	coord.Retry = resilience.Backoff{Attempts: 16, Base: time.Millisecond, Cap: 10 * time.Millisecond}
	for run := 0; run < 4; run++ {
		res, err := coord.Run(context.Background(), job)
		if err != nil {
			t.Fatalf("run %d lost the job: %v", run, err)
		}
		if got := renderReport(t, res.Result); got != want {
			t.Fatalf("run %d report differs under faults", run)
		}
	}
}
