package cluster_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/durable"
	"repro/internal/engine"
	"repro/internal/resilience"
)

// TestLocalBackendDiskWarmRestart pins the tentpole cluster property: a
// worker whose cache is backed by a disk store persists its shard results,
// so after a "restart" (fresh cache and coordinator over the same
// directory) the warm pass is served from disk byte-identically.
func TestLocalBackendDiskWarmRestart(t *testing.T) {
	dir := t.TempDir()
	job := chanJob()
	want := localBaseline(t, job)

	node := func() (*cluster.Coordinator, *durable.DiskStore) {
		ds, err := durable.Open(dir, durable.StoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		r := newRunner()
		r.Cache.SetRawBacking(ds)
		coord, err := cluster.NewCoordinator(cluster.NewLocalBackend("w0", r))
		if err != nil {
			t.Fatal(err)
		}
		return coord, ds
	}

	// Cold pass: compute and publish; the write-through backing commits the
	// shard results to disk.
	coord1, _ := node()
	res1, err := coord1.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderReport(t, res1.Result); got != want {
		t.Fatalf("cold pass diverged from baseline:\n%s", got)
	}
	for _, sh := range res1.Shards {
		if sh.FromStore {
			t.Fatalf("cold pass served shard %s from store", sh.Key)
		}
	}

	// Restart: a fresh cache and coordinator over the same directory. Every
	// shard must come from the disk-backed store, byte-identically.
	coord2, ds2 := node()
	res2, err := coord2.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderReport(t, res2.Result); got != want {
		t.Fatalf("warm pass diverged from baseline:\n%s", got)
	}
	for _, sh := range res2.Shards {
		if !sh.FromStore {
			t.Errorf("warm pass recomputed shard %s after restart", sh.Key)
		}
	}
	if st := ds2.Stats(); st.Hits == 0 {
		t.Errorf("disk store stats = %+v, want hits > 0", st)
	}
}

// TestReprobeRevivesIdleCluster pins the background re-probe: a worker
// marked down is brought back by StartReprobe with NO job traffic — the
// lazy revive in Run never fires.
func TestReprobeRevivesIdleCluster(t *testing.T) {
	w0 := cluster.NewMockBackend("w0", newRunner())
	w1 := cluster.NewMockBackend("w1", newRunner())
	coord, err := cluster.NewCoordinator(w0, w1)
	if err != nil {
		t.Fatal(err)
	}
	// Kill w1 and run one job so the coordinator marks it down.
	w1.Kill()
	if _, err := coord.Run(context.Background(), chanJob()); err != nil {
		t.Fatal(err)
	}
	down := func() bool {
		for _, w := range coord.Stats().Workers {
			if w.ID == "w1" {
				return w.Down
			}
		}
		t.Fatal("w1 missing from stats")
		return false
	}
	if !down() {
		t.Fatal("killed worker not marked down")
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	coord.StartReprobe(ctx, resilience.Backoff{Base: 5 * time.Millisecond, Cap: 20 * time.Millisecond})
	w1.Revive()
	deadline := time.Now().Add(5 * time.Second)
	for down() {
		if time.Now().After(deadline) {
			t.Fatal("idle re-probe never revived the restarted worker")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRemoteBackendStoreOpRestartTransient is the regression for store
// round-trips racing a worker restart: a bare 500 mid-StorePut (the
// listener is up before the store is wired) is retried as a transient blip
// and succeeds; exhausted retries classify as unreachable — never as a
// permanent job-level WorkerError. A 503 shed keeps its own semantics.
func TestRemoteBackendStoreOpRestartTransient(t *testing.T) {
	var failures atomic.Int64
	var puts atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /v1/store/{key}", func(w http.ResponseWriter, r *http.Request) {
		if failures.Load() > 0 {
			failures.Add(-1)
			http.Error(w, "restarting", http.StatusInternalServerError)
			return
		}
		puts.Add(1)
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /v1/store/{key}", func(w http.ResponseWriter, r *http.Request) {
		if failures.Load() > 0 {
			failures.Add(-1)
			http.Error(w, "restarting", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"kind":"check"}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	b := cluster.NewRemoteBackend("w0", ts.URL, resilience.Backoff{Attempts: 3, Base: time.Millisecond})

	// One restart blip: the put retries through it.
	failures.Store(1)
	if err := b.StorePut(context.Background(), "job-1", []byte("data")); err != nil {
		t.Fatalf("StorePut through a restart blip = %v, want nil", err)
	}
	if puts.Load() != 1 {
		t.Fatalf("puts = %d, want 1", puts.Load())
	}

	// Same for the read side.
	failures.Store(1)
	if _, err := b.StoreGet(context.Background(), "job-1"); err != nil {
		t.Fatalf("StoreGet through a restart blip = %v, want nil", err)
	}

	// A restart outlasting the retry budget is unreachable (re-probe
	// territory, the coordinator marks the node down and revives it later) —
	// the original 500 stays visible in the chain but the classification is
	// transport-level, not job-level.
	failures.Store(100)
	err := b.StorePut(context.Background(), "job-2", []byte("data"))
	if !cluster.IsUnreachable(err) {
		t.Fatalf("exhausted store put = %v, want UnreachableError", err)
	}
	if !resilience.IsTransient(err) {
		t.Fatalf("exhausted store put = %v, want transient", err)
	}
}

// TestRemoteBackendStoreOpShedStaysWorkerError pins the boundary of the
// restart-blip re-classification: a 503 shed is a saturated-but-alive node
// and must NOT classify as unreachable (that would mark it down).
func TestRemoteBackendStoreOpShedStaysWorkerError(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /v1/store/{key}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, `{"error":"shed","class":"queue-full"}`, http.StatusServiceUnavailable)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	b := cluster.NewRemoteBackend("w0", ts.URL, resilience.Backoff{Attempts: 2, Base: time.Millisecond})
	err := b.StorePut(context.Background(), "job-1", []byte("data"))
	if cluster.IsUnreachable(err) {
		t.Fatalf("shed store put classified unreachable: %v", err)
	}
	if !errors.Is(err, resilience.ErrQueueFull) {
		t.Fatalf("shed store put = %v, want ErrQueueFull through WorkerError", err)
	}
}

// TestRemoteBackendRunKeeps5xxSemantics guards against over-reach: the
// restart-blip re-classification applies to store ops only — a 500 from a
// job run (e.g. a recovered panic) must stay a WorkerError.
func TestRemoteBackendRunKeeps5xxSemantics(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/check", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"internal panic: boom","class":"panic"}`, http.StatusInternalServerError)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	b := cluster.NewRemoteBackend("w0", ts.URL, resilience.Backoff{Attempts: 2, Base: time.Millisecond})
	_, err := b.Run(context.Background(), engine.Job{Kind: engine.KindCheck, Check: &engine.CheckSpec{
		Left: "coin:fair:x", Right: "coin:fair:x", Envs: []string{"coin:env:x"}, Eps: 0.5, Q1: 2,
	}})
	var we *cluster.WorkerError
	if !errors.As(err, &we) || we.Class != "panic" {
		t.Fatalf("run 500 = %v, want WorkerError with class panic", err)
	}
	if cluster.IsUnreachable(err) {
		t.Fatalf("run 500 classified unreachable: %v", err)
	}
}
