package cluster

import (
	"context"
	"sync/atomic"

	"repro/internal/engine"
)

// LocalBackend runs jobs on an in-process engine.Runner. It is the
// single-node degenerate case of the cluster (a coordinator over one
// LocalBackend behaves exactly like calling the runner directly) and the
// building block for in-process multi-worker tests and E22, where several
// LocalBackends with private caches emulate separate machines.
type LocalBackend struct {
	runner *engine.Runner
	id     string

	jobs      atomic.Int64
	errs      atomic.Int64
	storeGets atomic.Int64
	storeHits atomic.Int64
	storePuts atomic.Int64
}

// NewLocalBackend wraps runner as a backend named id. The runner's
// WorkerID is set to id so every result it produces is attributed.
func NewLocalBackend(id string, runner *engine.Runner) *LocalBackend {
	runner.WorkerID = id
	return &LocalBackend{runner: runner, id: id}
}

// Runner exposes the wrapped runner (tests warm or inspect its cache).
func (b *LocalBackend) Runner() *engine.Runner { return b.runner }

// ID implements Backend.
func (b *LocalBackend) ID() string { return b.id }

// Run implements Backend with the panic-isolated runner path, mirroring
// what dsed's job handler gives a RemoteBackend.
func (b *LocalBackend) Run(ctx context.Context, job engine.Job) (*engine.Result, error) {
	b.jobs.Add(1)
	res, err := b.runner.RunSafe(ctx, job)
	if err != nil {
		b.errs.Add(1)
	}
	return res, err
}

// Health implements Backend; an in-process runner is always reachable.
func (b *LocalBackend) Health(ctx context.Context) error { return ctx.Err() }

// StoreGet implements Backend over the runner cache's raw-bytes path.
func (b *LocalBackend) StoreGet(ctx context.Context, key string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b.storeGets.Add(1)
	data, err := b.runner.Cache.GetRaw(key)
	if err == nil {
		b.storeHits.Add(1)
	}
	return data, err
}

// StorePut implements Backend over the runner cache's raw-bytes path.
func (b *LocalBackend) StorePut(ctx context.Context, key string, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	b.storePuts.Add(1)
	b.runner.Cache.PutRaw(key, data)
	return nil
}

// Stats implements Backend.
func (b *LocalBackend) Stats() BackendStats {
	return BackendStats{
		Jobs:      b.jobs.Load(),
		Errors:    b.errs.Load(),
		StoreGets: b.storeGets.Load(),
		StoreHits: b.storeHits.Load(),
		StorePuts: b.storePuts.Load(),
	}
}
