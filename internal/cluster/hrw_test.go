package cluster

import (
	"fmt"
	"testing"
)

// TestHRWDeterministic pins that placement depends only on (ids, key) —
// not on list order.
func TestHRWDeterministic(t *testing.T) {
	ids := []string{"w1", "w2", "w3"}
	rev := []string{"w3", "w2", "w1"}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("job-%016x", i)
		a := ids[pickHRW(ids, key)]
		b := rev[pickHRW(rev, key)]
		if a != b {
			t.Fatalf("key %s: order-dependent placement %s vs %s", key, a, b)
		}
	}
}

// TestHRWMinimalMovement pins the rendezvous property the shared store
// relies on: removing one node re-homes only the keys it owned.
func TestHRWMinimalMovement(t *testing.T) {
	full := []string{"w1", "w2", "w3", "w4"}
	without := []string{"w1", "w2", "w4"}
	moved, kept := 0, 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("job-%016x", i*7919)
		before := full[pickHRW(full, key)]
		after := without[pickHRW(without, key)]
		if before == "w3" {
			moved++
			continue
		}
		if before != after {
			t.Fatalf("key %s moved from surviving node %s to %s", key, before, after)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}

// TestHRWSpreads sanity-checks that placement is not degenerate: over many
// keys every node of a 4-node cluster owns something.
func TestHRWSpreads(t *testing.T) {
	ids := []string{"w1", "w2", "w3", "w4"}
	counts := make(map[string]int)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("job-%016x", i*104729)
		counts[ids[pickHRW(ids, key)]]++
	}
	for _, id := range ids {
		if counts[id] == 0 {
			t.Fatalf("node %s owns no keys: %v", id, counts)
		}
	}
}

// TestHRWEmpty pins the no-candidates sentinel.
func TestHRWEmpty(t *testing.T) {
	if got := pickHRW(nil, "job-x"); got != -1 {
		t.Fatalf("pickHRW(nil) = %d, want -1", got)
	}
}
