package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/engine"
)

// MockBackend is a scriptable in-memory Backend for coordinator tests. It
// can delegate real work to an engine.Runner (so failure-path tests still
// produce real reports to compare byte-for-byte) while injecting deaths,
// one-shot failures and per-job hooks at the transport boundary.
type MockBackend struct {
	id string
	// Runner, when set, computes jobs for real; without it Run fails.
	runner *engine.Runner

	mu    sync.Mutex
	dead  bool
	store map[string][]byte
	// failNext errors the next n Run calls with a transport failure.
	failNext int
	// hook, when set, runs before each job; a non-nil return preempts it.
	hook func(job engine.Job) error
	// log records every job fingerprint this backend was asked to run.
	log []string
}

// NewMockBackend builds a mock named id. runner may be nil for tests that
// only exercise routing and error policy.
func NewMockBackend(id string, runner *engine.Runner) *MockBackend {
	if runner != nil {
		runner.WorkerID = id
	}
	return &MockBackend{id: id, runner: runner, store: make(map[string][]byte)}
}

// ID implements Backend.
func (b *MockBackend) ID() string { return b.id }

// Kill makes the node unreachable until Revive.
func (b *MockBackend) Kill() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.dead = true
}

// Revive brings a killed node back.
func (b *MockBackend) Revive() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.dead = false
}

// FailNext makes the next n Run calls fail with a transport error (the
// node stays up afterwards — a blip, not a death).
func (b *MockBackend) FailNext(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failNext = n
}

// SetHook installs fn to run before each job; returning a non-nil error
// preempts the job with it. Use it to kill the node mid-sweep.
func (b *MockBackend) SetHook(fn func(job engine.Job) error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.hook = fn
}

// Log returns the fingerprints of every job routed to this backend.
func (b *MockBackend) Log() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]string(nil), b.log...)
}

// Run implements Backend.
func (b *MockBackend) Run(ctx context.Context, job engine.Job) (*engine.Result, error) {
	b.mu.Lock()
	b.log = append(b.log, job.Fingerprint())
	dead, hook := b.dead, b.hook
	failing := b.failNext > 0
	if failing {
		b.failNext--
	}
	b.mu.Unlock()
	if dead {
		return nil, &UnreachableError{Node: b.id, Err: errors.New("node down")}
	}
	if failing {
		return nil, &UnreachableError{Node: b.id, Err: errors.New("connection reset")}
	}
	if hook != nil {
		if err := hook(job); err != nil {
			return nil, err
		}
	}
	if b.runner == nil {
		return nil, fmt.Errorf("cluster: mock %s has no runner", b.id)
	}
	return b.runner.RunSafe(ctx, job)
}

// Health implements Backend.
func (b *MockBackend) Health(ctx context.Context) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.dead {
		return &UnreachableError{Node: b.id, Err: errors.New("node down")}
	}
	return ctx.Err()
}

// StoreGet implements Backend over the in-memory map.
func (b *MockBackend) StoreGet(ctx context.Context, key string) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.dead {
		return nil, &UnreachableError{Node: b.id, Err: errors.New("node down")}
	}
	data, ok := b.store[key]
	if !ok {
		return nil, fmt.Errorf("cluster: mock %s: %w", b.id, engine.ErrCacheMiss)
	}
	return append([]byte(nil), data...), nil
}

// StorePut implements Backend over the in-memory map.
func (b *MockBackend) StorePut(ctx context.Context, key string, data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.dead {
		return &UnreachableError{Node: b.id, Err: errors.New("node down")}
	}
	b.store[key] = append([]byte(nil), data...)
	return nil
}

// Stats implements Backend.
func (b *MockBackend) Stats() BackendStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BackendStats{Jobs: int64(len(b.log)), StorePuts: int64(len(b.store))}
}
