package cluster

import "hash/fnv"

// hrwScore ranks backend id for key under rendezvous (highest-random-weight)
// hashing: fnv64a over id, a separator that cannot appear in fingerprints,
// then key. Each (id, key) pair scores independently, so removing a node
// re-homes only the keys it owned and adding one steals only the keys it
// now wins — the minimal-movement property the shared store relies on.
func hrwScore(id, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return h.Sum64()
}

// pickHRW returns the index in ids of the rendezvous winner for key, or -1
// if ids is empty. Ties (astronomically unlikely with fnv64a, but the
// merge discipline tolerates nothing nondeterministic) break toward the
// lexicographically smallest id.
func pickHRW(ids []string, key string) int {
	best := -1
	var bestScore uint64
	for i, id := range ids {
		s := hrwScore(id, key)
		if best == -1 || s > bestScore || (s == bestScore && id < ids[best]) {
			best, bestScore = i, s
		}
	}
	return best
}
