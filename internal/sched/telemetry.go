package sched

import (
	"sync"

	"repro/internal/obs"
)

// Stats collects per-shard kernel telemetry for one run (typically one
// engine job): how many frontier items each shard expanded, how wide the
// index spans it was handed were, how long it was busy, and how long it
// idled at level barriers waiting for slower shards. One Stats value may
// be shared by every kernel call a job fans out to — methods are
// mutex-guarded — and aggregates are keyed by shard index, so shard i of
// every level and every call accumulates into one row.
//
// Collection is opt-in: kernels touch the collector (and the clock) only
// when Options.Stats is non-nil or tracing is enabled, so benchmarks with
// neither pay nothing beyond the existing nil check.
type Stats struct {
	mu     sync.Mutex
	levels int64
	depth  int
	shards []obs.ShardStat

	measureCalls, measureWallUS int64
	sampleCalls, sampleWallUS   int64
	dagCalls, dagWallUS         int64
	dagNodes                    int64
}

// recordLevel folds one level's shard outputs into the per-shard rows.
// widths[i] is the index-span width handed to shard i, items[i] the
// frontier items it expanded, wallUS[i] its busy time. A shard's barrier
// wait at this level is the gap to the slowest shard of the level
// (max wall - own wall) — the wall time lost to work imbalance, excluding
// the single-threaded merge that follows the barrier. Called once per
// level from the single-threaded merge.
func (st *Stats) recordLevel(widths, items, wallUS []int64) {
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.levels++
	var slowest int64
	for _, w := range wallUS {
		if w > slowest {
			slowest = w
		}
	}
	for i := range items {
		for len(st.shards) <= i {
			st.shards = append(st.shards, obs.ShardStat{Shard: len(st.shards)})
		}
		sh := &st.shards[i]
		sh.Levels++
		sh.Items += items[i]
		sh.Width += widths[i]
		sh.WallUS += wallUS[i]
		sh.BarrierWaitUS += slowest - wallUS[i]
	}
}

// recordDepth raises the depth high-water mark.
func (st *Stats) recordDepth(d int) {
	if st == nil {
		return
	}
	st.mu.Lock()
	if d > st.depth {
		st.depth = d
	}
	st.mu.Unlock()
}

// recordCall accumulates one kernel call into the per-phase totals.
func (st *Stats) recordCall(phase string, wallUS int64, nodes int64) {
	if st == nil {
		return
	}
	st.mu.Lock()
	switch phase {
	case "measure":
		st.measureCalls++
		st.measureWallUS += wallUS
	case "sample":
		st.sampleCalls++
		st.sampleWallUS += wallUS
	case "dag":
		st.dagCalls++
		st.dagWallUS += wallUS
		st.dagNodes += nodes
	}
	st.mu.Unlock()
}

// Levels returns the number of parallel levels recorded.
func (st *Stats) Levels() int64 {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.levels
}

// DepthReached returns the deepest frontier level expanded.
func (st *Stats) DepthReached() int {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.depth
}

// Shards returns a copy of the per-shard work rows, ordered by shard
// index.
func (st *Stats) Shards() []obs.ShardStat {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]obs.ShardStat(nil), st.shards...)
}

// Phases returns the per-kernel wall breakdown recorded so far: one row
// per kernel family that ran (measure = tree expansion, sample =
// Monte-Carlo sampling, dag = state-collapsed propagation).
func (st *Stats) Phases() []obs.PhaseStat {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []obs.PhaseStat
	if st.measureCalls > 0 {
		out = append(out, obs.PhaseStat{Name: "sched.measure", Calls: st.measureCalls, WallUS: st.measureWallUS})
	}
	if st.sampleCalls > 0 {
		out = append(out, obs.PhaseStat{Name: "sched.sample", Calls: st.sampleCalls, WallUS: st.sampleWallUS})
	}
	if st.dagCalls > 0 {
		out = append(out, obs.PhaseStat{Name: "sched.measure.dag", Calls: st.dagCalls, WallUS: st.dagWallUS})
	}
	return out
}

// DagNodes returns the (state, depth) classes expanded by DAG kernel calls
// recorded into this collector.
func (st *Stats) DagNodes() int64 {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.dagNodes
}
