package sched_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/psioa"
	"repro/internal/resilience"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/testaut"
)

func TestMeasureCtxCancellation(t *testing.T) {
	w := testaut.RandomWalk("w", 6, 0.5)
	s := &sched.Greedy{A: w, Bound: 14}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	em, err := sched.MeasureCtx(ctx, w, s, 20, nil)
	if !errors.Is(err, resilience.ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCancelled wrapping context.Canceled", err)
	}
	if em != nil {
		t.Error("cancellation must not return a partial measure")
	}
}

func TestMeasureCtxBudgetPartial(t *testing.T) {
	w := testaut.RandomWalk("w", 6, 0.5)
	s := &sched.Greedy{A: w, Bound: 14}
	full, err := sched.Measure(w, s, 20)
	if err != nil {
		t.Fatal(err)
	}
	bud := resilience.NewBudget(0, 500, 0)
	em, err := sched.MeasureCtx(nil, w, s, 20, bud)
	if !resilience.IsBudget(err) {
		t.Fatalf("err = %v, want budget", err)
	}
	if em == nil {
		t.Fatal("budget stop should return the partial measure")
	}
	// Graceful degradation: the partial is a strict sub-probability prefix
	// of ε_σ — every execution it contains carries exactly its full-measure
	// mass, and the total is below 1.
	if tot := em.Total(); tot <= 0 || tot >= full.Total() {
		t.Errorf("partial total = %v, want in (0, %v)", tot, full.Total())
	}
	em.ForEach(func(f *psioa.Frag, p float64) {
		if fp := full.P(f); fp != p {
			t.Errorf("partial mass of %v = %v, full measure has %v", f, p, fp)
		}
	})
}

func TestMeasureCtxMatchesMeasure(t *testing.T) {
	w := testaut.RandomWalk("w", 6, 0.5)
	s := &sched.Greedy{A: w, Bound: 10}
	full, err := sched.Measure(w, s, 20)
	if err != nil {
		t.Fatal(err)
	}
	em, err := sched.MeasureCtx(context.Background(), w, s, 20, resilience.NewBudget(1<<30, 1<<30, 0))
	if err != nil {
		t.Fatal(err)
	}
	if em.Len() != full.Len() || em.Total() != full.Total() || em.MaxLen() != full.MaxLen() {
		t.Errorf("hardened measure diverged: %d/%v/%d vs %d/%v/%d",
			em.Len(), em.Total(), em.MaxLen(), full.Len(), full.Total(), full.MaxLen())
	}
}

func TestSampleImageCtxNoPartials(t *testing.T) {
	c := testaut.Coin("c", 0.5)
	s := &sched.Greedy{A: c, Bound: 5}
	fragKey := func(f *psioa.Frag) string { return f.Key() }
	// Cancellation: no result at all (estimates are unbiased only at the
	// full sample count).
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d, err := sched.SampleImageCtx(ctx, c, s, rng.New(1), 10, 5000, fragKey, nil)
	if d != nil || !errors.Is(err, resilience.ErrCancelled) {
		t.Fatalf("cancelled SampleImageCtx = (%v, %v), want (nil, ErrCancelled)", d, err)
	}
	// Budget exhaustion: same, no partial estimate.
	d, err = sched.SampleImageCtx(nil, c, s, rng.New(1), 10, 5000, fragKey, resilience.NewBudget(100, 0, 0))
	if d != nil || !resilience.IsBudget(err) {
		t.Fatalf("budgeted SampleImageCtx = (%v, %v), want (nil, budget)", d, err)
	}
	// Unconstrained: matches the plain SampleImage under the same stream.
	want, err := sched.SampleImage(c, s, rng.New(7), 10, 500, fragKey)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sched.SampleImageCtx(context.Background(), c, s, rng.New(7), 10, 500, fragKey, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want.Total() != got.Total() || want.Len() != got.Len() {
		t.Errorf("hardened sampling diverged: %v/%d vs %v/%d", got.Total(), got.Len(), want.Total(), want.Len())
	}
}
