package sched

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/intern"
	"repro/internal/measure"
	"repro/internal/obs"
	"repro/internal/psioa"
	"repro/internal/resilience"
)

// Observability instruments for the state-collapsed DAG kernel. The nodes
// counter measures the collapsed workload: on converging automata it stays
// O(|reachable states| × depth) where the tree kernel's step counter grows
// with the number of distinct executions.
var (
	cDagCalls = obs.C("sched.measure.dag.calls")
	cDagNodes = obs.C("sched.measure.dag.nodes")
)

// DepthOblivious is the capability interface of schedulers whose choice
// depends only on the fragment's last state and length — the oblivious
// schema the paper singles out as sufficient for emulation correctness
// (§4.4). For such a scheduler every fragment with equal (lstate, depth)
// receives the same choice, so the execution tree of ε_σ collapses to a
// DAG over (state, depth) classes and aggregate quantities — total mass,
// halting mass, any state-local image — can be propagated forward in
// O(|reachable states| × depth) instead of O(branching^depth).
//
// Implementations must guarantee Choose(α) == ChooseAt(lstate(α), |α|).
type DepthOblivious interface {
	Scheduler
	// ChooseAt returns σ(α) for any fragment α with lstate(α) = q and
	// |α| = depth.
	ChooseAt(q psioa.State, depth int) *Choice
}

// ChooseAt implements DepthOblivious: step i deterministically triggers
// Acts[i] when enabled at q and halts otherwise.
func (s *Sequence) ChooseAt(q psioa.State, depth int) *Choice {
	if depth >= len(s.Acts) {
		return Halt()
	}
	if !enabledHas(s.A.Sig(q), s.Acts[depth], s.LocalOnly) {
		return Halt()
	}
	return diracChoice(s.Acts[depth])
}

// ChooseAt implements DepthOblivious: uniform over the actions enabled at
// q, halting at the bound.
func (r *Random) ChooseAt(q psioa.State, depth int) *Choice {
	if depth >= r.Bound {
		return Halt()
	}
	enabled := enabledSorted(r.A.Sig(q), r.LocalOnly)
	if len(enabled) == 0 {
		return Halt()
	}
	return uniformChoice(enabled)
}

// ChooseAt implements DepthOblivious: the first enabled action of the
// priority order at q, halting at the bound.
func (p *Priority) ChooseAt(q psioa.State, depth int) *Choice {
	if depth >= p.Bound {
		return Halt()
	}
	sig := p.A.Sig(q)
	for _, a := range p.Order {
		if enabledHas(sig, a, p.LocalOnly) {
			return diracChoice(a)
		}
	}
	return Halt()
}

// ChooseAt implements DepthOblivious: the lexicographically-first enabled
// action at q, halting at the bound.
func (g *Greedy) ChooseAt(q psioa.State, depth int) *Choice {
	if depth >= g.Bound {
		return Halt()
	}
	enabled := enabledSorted(g.A.Sig(q), g.LocalOnly)
	if len(enabled) == 0 {
		return Halt()
	}
	return diracChoice(enabled[0])
}

// boundedOblivious adapts Bounded over a depth-oblivious inner scheduler:
// the wrapper consults only the depth, so obliviousness is preserved.
type boundedOblivious struct {
	*Bounded
	inner DepthOblivious
}

func (b *boundedOblivious) ChooseAt(q psioa.State, depth int) *Choice {
	if depth >= b.B {
		return Halt()
	}
	return b.inner.ChooseAt(q, depth)
}

// AsDepthOblivious reports whether s exposes the DepthOblivious capability,
// unwrapping Bounded around an oblivious inner scheduler. The DAG kernel
// and the FDist routing use it to pick the collapsed fast path
// automatically; schedulers that inspect the fragment itself (TaskSchedule,
// FuncSched, ViewScheduler, Mix over arbitrary inners) fall back to the
// exact tree expansion.
func AsDepthOblivious(s Scheduler) (DepthOblivious, bool) {
	switch x := s.(type) {
	case *Bounded:
		inner, ok := AsDepthOblivious(x.Inner)
		if !ok {
			return nil, false
		}
		return &boundedOblivious{Bounded: x, inner: inner}, true
	case DepthOblivious:
		return x, true
	}
	return nil, false
}

// dagHalt is one (state, depth) halting class with its aggregated mass.
type dagHalt struct {
	q     psioa.State
	depth int
	p     float64
}

// DAGMeasure is the state-collapsed form of ε_σ produced by MeasureDAG:
// halting mass aggregated per (state, depth) class, recorded in propagation
// order (depth ascending, states sorted within a depth). It supports every
// aggregate that does not need individual execution fragments — total mass,
// max length, state-local images; cones and prefix enumeration need the
// tree kernel. On the dyadic workloads pinned in equivalence_test.go all
// float sums are exact, so the aggregates agree bit for bit with the tree
// kernel's; in general they agree up to float summation order.
type DAGMeasure struct {
	halts  []dagHalt
	total  float64
	maxLen int
}

// Total returns the aggregated halting mass; 1 for schedulers that always
// eventually halt. The sum accumulates in propagation order, which is
// deterministic.
func (dm *DAGMeasure) Total() float64 { return dm.total }

// MaxLen returns the depth of the deepest halting class.
func (dm *DAGMeasure) MaxLen() int { return dm.maxLen }

// Classes returns the number of (state, depth) halting classes — the
// collapsed analogue of ExecMeasure.Len (which counts executions).
func (dm *DAGMeasure) Classes() int { return len(dm.halts) }

// ForEach visits every halting class in deterministic propagation order.
func (dm *DAGMeasure) ForEach(visit func(q psioa.State, depth int, p float64)) {
	for _, h := range dm.halts {
		visit(h.q, h.depth, h.p)
	}
}

// Image returns the image measure of ε_σ under a state-local functional —
// the collapsed analogue of ExecMeasure.Image for insights that depend only
// on (lstate, depth). Mass accumulates in propagation order.
func (dm *DAGMeasure) Image(f func(q psioa.State, depth int) string) *measure.Dist[string] {
	d := measure.New[string]()
	for _, h := range dm.halts {
		d.Add(f(h.q, h.depth), h.p)
	}
	return d
}

// MeasureDAG computes the state-collapsed form of ε_σ by forward-propagating
// aggregated state mass level by level: all fragments sharing (lstate,
// depth) receive the same choice from a depth-oblivious scheduler, so they
// are merged into one node. Validation (sub-probability choices, enabled
// actions, the maxDepth guard) and pruning mirror MeasureCtx; cancellation
// and budgets thread through the same checkpoint with the same typed
// sentinels, and a budget-bounded stop returns the sound sub-probability
// prefix aggregated so far.
func MeasureDAG(ctx context.Context, a psioa.PSIOA, s DepthOblivious, maxDepth int, b *resilience.Budget) (*DAGMeasure, error) {
	return MeasureDAGOpts(ctx, a, s, maxDepth, b, Options{})
}

// MeasureDAGOpts is MeasureDAG threading kernel Options: the propagation
// itself stays sequential (the collapsed workload rarely warrants
// sharding), but a Stats collector receives per-level rows — one shard per
// level with the nodes expanded and the level's wall time — and the dag
// phase totals, so run reports cover DAG-routed jobs too.
func MeasureDAGOpts(ctx context.Context, a psioa.PSIOA, s DepthOblivious, maxDepth int, b *resilience.Budget, o Options) (*DAGMeasure, error) {
	sp := obs.Begin("sched.measure.dag", s.Name())
	defer sp.End()
	defer obs.Time("sched.measure.dag.us")()
	cDagCalls.Inc()
	if err := resilience.FireDelay(ctx, resilience.FaultSlowOp); err != nil {
		return nil, err
	}
	collect := o.Stats != nil
	var callStart time.Time
	if collect {
		callStart = time.Now()
	}
	dm := &DAGMeasure{}
	start := a.Start()
	if maxDepth <= 0 {
		// Depth 0 admits only the empty execution: ε_σ is the Dirac measure
		// on the start state, exactly as in MeasureCtx.
		dm.halts = append(dm.halts, dagHalt{q: start, depth: 0, p: 1})
		dm.total = 1
		return dm, nil
	}
	ck := resilience.NewCheckpoint(ctx, b)
	// Interned core: states get dense per-call IDs on first touch, and the
	// two frontier mass vectors are plain slices indexed by ID — no
	// string-keyed map in the propagation loop. Level membership is tracked
	// by an epoch mark (not mass != 0), so a sum that underflows to zero
	// cannot change the insertion order the pre-interning map kernel had.
	// First touch in an epoch assigns rather than accumulates, which also
	// retires stale mass left from two levels ago when the vectors swap.
	tbl := intern.NewTable(64)
	startID := tbl.ID(string(start))
	curMass := []float64{1}
	nextMass := []float64{0}
	seenEpoch := []uint32{0}
	epoch := uint32(0)
	order := []uint32{startID}
	var nextOrder []uint32
	// succIDs memoizes the interned sorted support of each transition
	// distribution. Dists are pointer-stable (automata cache them), so a
	// state revisited across levels interns its successors once.
	succIDs := make(map[*measure.Dist[psioa.State]][]uint32)
	var err, stopped error
	var nodes int64
outer:
	for d := 0; len(order) > 0; d++ {
		var levelStart time.Time
		levelNodes := nodes
		if collect {
			levelStart = time.Now()
		}
		epoch++
		nextOrder = nextOrder[:0]
		for _, qid := range order {
			m := curMass[qid]
			if m < pruneBelow {
				continue
			}
			if stopped = ck.Step(1, 0); stopped != nil {
				break outer
			}
			nodes++
			q := psioa.State(tbl.Str(qid))
			choice := s.ChooseAt(q, d)
			if !choice.IsSubProb() {
				err = fmt.Errorf("sched: scheduler %q returned mass %v > 1 at state %q depth %d: %w", s.Name(), choice.Total(), q, d, ErrOverMass)
				break outer
			}
			if halt := choice.Deficit(); halt > pruneBelow {
				dm.halts = append(dm.halts, dagHalt{q: q, depth: d, p: m * halt})
				dm.total += m * halt
				if d > dm.maxLen {
					dm.maxLen = d
				}
			}
			if choice.Total() <= pruneBelow {
				continue
			}
			if d >= maxDepth {
				err = fmt.Errorf("sched: scheduler %q schedules past depth %d at state %q: %w", s.Name(), maxDepth, q, ErrDepthExceeded)
				break outer
			}
			sig := a.Sig(q)
			var kids int64
			acts, aps := choice.SupportAndProbs()
			for ai, act := range acts {
				pa := aps[ai]
				if pa <= 0 {
					continue
				}
				if !sig.Has(act) {
					err = fmt.Errorf("sched: scheduler %q chose disabled action %q at state %q depth %d: %w", s.Name(), act, q, d, ErrDisabledAction)
					break outer
				}
				resilience.FirePanic(resilience.FaultTransitionPanic)
				eta := a.Trans(q, act)
				ids, ok := succIDs[eta]
				if !ok {
					qs, _ := eta.SupportAndProbs()
					ids = make([]uint32, len(qs))
					for i, q2 := range qs {
						ids[i] = tbl.ID(string(q2))
					}
					succIDs[eta] = ids
				}
				for n := tbl.Len(); len(curMass) < n; {
					curMass = append(curMass, 0)
					nextMass = append(nextMass, 0)
					seenEpoch = append(seenEpoch, 0)
				}
				_, pqs := eta.SupportAndProbs()
				for qi, q2id := range ids {
					pq := pqs[qi]
					if pq <= 0 {
						continue
					}
					// Mass accumulates in (source state, action, successor)
					// sorted order — deterministic for a fixed workload.
					if seenEpoch[q2id] != epoch {
						seenEpoch[q2id] = epoch
						nextOrder = append(nextOrder, q2id)
						nextMass[q2id] = m * pa * pq
					} else {
						nextMass[q2id] += m * pa * pq
					}
					kids++
				}
			}
			if stopped = ck.Step(0, kids); stopped != nil {
				break outer
			}
		}
		if collect {
			wall := time.Since(levelStart).Microseconds()
			o.Stats.recordLevel([]int64{int64(len(order))}, []int64{nodes - levelNodes}, []int64{wall})
			o.Stats.recordDepth(d)
		}
		sort.Slice(nextOrder, func(i, j int) bool { return tbl.Str(nextOrder[i]) < tbl.Str(nextOrder[j]) })
		curMass, nextMass = nextMass, curMass
		order, nextOrder = nextOrder, order[:0]
	}
	if err == nil && stopped == nil {
		stopped = ck.Finish()
	}
	if collect {
		o.Stats.recordCall("dag", time.Since(callStart).Microseconds(), nodes)
	}
	cDagNodes.Add(nodes)
	if err != nil {
		return nil, err
	}
	if stopped != nil {
		if resilience.IsBudget(stopped) {
			// Graceful degradation: the classes aggregated so far carry an
			// exact sub-probability prefix of ε_σ's halting mass.
			return dm, stopped
		}
		return nil, stopped
	}
	return dm, nil
}

// MeasureTotalCtx computes Total and MaxLen of ε_σ, routing through the
// state-collapsed DAG kernel when the scheduler is depth-oblivious and
// falling back to the exact tree expansion otherwise. Callers that need
// fragments (cones, prefix enumeration) must use MeasureCtx/MeasureOpts.
func MeasureTotalCtx(ctx context.Context, a psioa.PSIOA, s Scheduler, maxDepth int, b *resilience.Budget) (total float64, maxLen int, err error) {
	if dob, ok := AsDepthOblivious(s); ok {
		dm, derr := MeasureDAG(ctx, a, dob, maxDepth, b)
		if derr != nil {
			return 0, 0, derr
		}
		return dm.Total(), dm.MaxLen(), nil
	}
	em, merr := MeasureCtx(ctx, a, s, maxDepth, b)
	if merr != nil {
		return 0, 0, merr
	}
	return em.Total(), em.MaxLen(), nil
}
