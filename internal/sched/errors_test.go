package sched_test

import (
	"errors"
	"testing"

	"repro/internal/measure"
	"repro/internal/psioa"
	"repro/internal/sched"
	"repro/internal/testaut"
)

// TestMeasureErrorClassification verifies the %w-wrapped sentinels: every
// Measure failure mode is classifiable with errors.Is.
func TestMeasureErrorClassification(t *testing.T) {
	pp1, pp2 := testaut.PingPong(8)
	w := psioa.MustCompose(pp1, pp2)

	// A scheduler that never halts exhausts any depth bound.
	_, err := sched.Measure(w, &sched.Greedy{A: w, Bound: 1 << 20, LocalOnly: true}, 4)
	if !errors.Is(err, sched.ErrDepthExceeded) {
		t.Errorf("unbounded scheduler: err = %v, want ErrDepthExceeded", err)
	}

	// A scheduler assigning mass to an action that is not enabled.
	bogus := &sched.FuncSched{ID: "bogus", Fn: func(alpha *psioa.Frag) *sched.Choice {
		return measure.Dirac(psioa.Action("no-such-action"))
	}}
	_, err = sched.Measure(w, bogus, 4)
	if !errors.Is(err, sched.ErrDisabledAction) {
		t.Errorf("disabled action: err = %v, want ErrDisabledAction", err)
	}

	// A scheduler whose choice is not a sub-probability distribution.
	heavy := &sched.FuncSched{ID: "heavy", Fn: func(alpha *psioa.Frag) *sched.Choice {
		d := measure.New[psioa.Action]()
		d.Add("ping", 0.8)
		d.Add("pong", 0.8)
		return d
	}}
	_, err = sched.Measure(w, heavy, 4)
	if !errors.Is(err, sched.ErrOverMass) {
		t.Errorf("over mass: err = %v, want ErrOverMass", err)
	}
}

// TestEnumerationCapClassification verifies the schema-cap sentinel.
func TestEnumerationCapClassification(t *testing.T) {
	pp1, pp2 := testaut.PingPong(4)
	w := psioa.MustCompose(pp1, pp2)
	_, err := (&sched.ObliviousSchema{MaxCount: 8}).Enumerate(w, 12)
	if !errors.Is(err, sched.ErrEnumerationCap) {
		t.Errorf("enumeration cap: err = %v, want ErrEnumerationCap", err)
	}
}
