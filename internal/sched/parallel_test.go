package sched_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/psioa"
	"repro/internal/resilience"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/testaut"
)

// renderMeasure renders an execution measure exhaustively — every support
// element with its exact mass, the totals, and every cone — exactly like the
// kernel pins in equivalence_test.go, so "byte-identical" means identical
// renderings down to the last float bit.
func renderMeasure(em *sched.ExecMeasure) string {
	var b strings.Builder
	em.ForEach(func(f *psioa.Frag, p float64) {
		fmt.Fprintf(&b, "E %s %.17g\n", f.Key(), p)
	})
	fmt.Fprintf(&b, "total %.17g len %d maxlen %d\n", em.Total(), em.Len(), em.MaxLen())
	em.ForEachPrefix(func(f *psioa.Frag) {
		fmt.Fprintf(&b, "C %s %.17g\n", f.Key(), em.Cone(f))
	})
	return b.String()
}

func renderDist(d interface {
	SortedSupport() []string
	P(string) float64
	Total() float64
}) string {
	var b strings.Builder
	fmt.Fprintf(&b, "total %.17g\n", d.Total())
	for _, k := range d.SortedSupport() {
		fmt.Fprintf(&b, "S %s %.17g\n", k, d.P(k))
	}
	return b.String()
}

// parallelWorkloads enumerates (automaton, scheduler, depth) triples covering
// every built-in scheduler schema over workloads whose frontiers exceed the
// inline threshold, so the sharded path really runs.
func parallelWorkloads() []struct {
	name     string
	a        psioa.PSIOA
	s        sched.Scheduler
	maxDepth int
} {
	w := testaut.RandomWalk("w", 5, 0.5)
	c := psioa.MustCompose(testaut.OpenCoin("x", 0.25), testaut.CoinEnv("x"))
	step, hit := psioa.Action("step_w"), psioa.Action("hit_w")
	return []struct {
		name     string
		a        psioa.PSIOA
		s        sched.Scheduler
		maxDepth int
	}{
		{"greedy/walk", w, &sched.Greedy{A: w, Bound: 9}, 12},
		{"random/walk", w, &sched.Random{A: w, Bound: 8}, 10},
		{"sequence/walk", w, &sched.Sequence{A: w, Acts: []psioa.Action{step, step, step, step, step, step, step, hit}}, 10},
		{"priority/walk", w, &sched.Priority{A: w, Order: []psioa.Action{step, hit}, Bound: 8}, 10},
		{"mix/walk", w, &sched.Mix{
			Weights: []float64{0.5, 0.25},
			Inner:   []sched.Scheduler{&sched.Greedy{A: w, Bound: 8}, &sched.Random{A: w, Bound: 8}},
		}, 10},
		{"bounded(random)/walk", w, &sched.Bounded{Inner: &sched.Random{A: w, Bound: 20}, B: 7}, 10},
		{"random/coins", c, &sched.Random{A: c, Bound: 6, LocalOnly: true}, 8},
		{"greedy/depth0", w, &sched.Greedy{A: w, Bound: 4}, 0},
	}
}

// TestParallelMeasureByteIdentical is the tentpole property: for every
// built-in scheduler schema, depth and worker count, the parallel kernel
// renders byte-identically to the sequential kernel.
func TestParallelMeasureByteIdentical(t *testing.T) {
	for _, tc := range parallelWorkloads() {
		want, err := sched.MeasureCtx(context.Background(), tc.a, tc.s, tc.maxDepth, nil)
		if err != nil {
			t.Fatalf("%s: sequential: %v", tc.name, err)
		}
		ref := renderMeasure(want)
		for _, workers := range []int{1, 2, 4, 8} {
			em, err := sched.MeasureOpts(context.Background(), tc.a, tc.s, tc.maxDepth, nil,
				sched.Options{Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.name, workers, err)
			}
			if got := renderMeasure(em); got != ref {
				t.Errorf("%s workers=%d: parallel measure not byte-identical to sequential", tc.name, workers)
			}
		}
	}
}

// TestParallelSampleImageWorkerInvariant pins the substream design: the
// sampled image distribution is identical for every worker count, and the
// caller's stream advances by exactly one draw regardless of n.
func TestParallelSampleImageWorkerInvariant(t *testing.T) {
	w := testaut.RandomWalk("w", 5, 0.5)
	s := &sched.Random{A: w, Bound: 8}
	traceKey := func(f *psioa.Frag) string { return f.TraceKey(w) }
	var ref string
	for _, workers := range []int{1, 2, 4, 8} {
		st := rng.New(42)
		d, err := sched.SampleImageOpts(context.Background(), w, s, st, 10, 500, traceKey, nil,
			sched.Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := renderDist(d)
		if ref == "" {
			ref = got
		} else if got != ref {
			t.Errorf("workers=%d: sampled distribution depends on worker count", workers)
		}
	}
	// Stream advancement: SampleImageOpts consumes exactly one draw.
	a, b := rng.New(7), rng.New(7)
	a.Uint64()
	if _, err := sched.SampleImageOpts(context.Background(), w, s, b, 8, 32, traceKey, nil,
		sched.Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if a.Uint64() != b.Uint64() {
		t.Error("SampleImageOpts must advance the caller stream by exactly one draw")
	}
}

// TestParallelMeasureBudgetPartial pins graceful degradation under
// parallelism: a budget stop merges only completed shard work, so the
// partial is an exact sub-probability prefix of ε_σ.
func TestParallelMeasureBudgetPartial(t *testing.T) {
	w := testaut.RandomWalk("w", 6, 0.5)
	s := &sched.Greedy{A: w, Bound: 14}
	full, err := sched.Measure(w, s, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		bud := resilience.NewBudget(0, 500, 0)
		em, err := sched.MeasureOpts(nil, w, s, 20, bud, sched.Options{Workers: workers})
		if !resilience.IsBudget(err) {
			t.Fatalf("workers=%d: err = %v, want budget", workers, err)
		}
		if em == nil {
			t.Fatalf("workers=%d: budget stop should return the partial measure", workers)
		}
		if tot := em.Total(); tot <= 0 || tot >= full.Total() {
			t.Errorf("workers=%d: partial total = %v, want in (0, %v)", workers, tot, full.Total())
		}
		em.ForEach(func(f *psioa.Frag, p float64) {
			if fp := full.P(f); fp != p {
				t.Errorf("workers=%d: partial mass of %v = %v, full measure has %v", workers, f, p, fp)
			}
		})
	}
}

// TestParallelSampleImageNoPartials mirrors the sequential sampler's
// contract: estimates are unbiased only at the full sample count, so any
// interruption returns nil with the classified error.
func TestParallelSampleImageNoPartials(t *testing.T) {
	c := testaut.Coin("c", 0.5)
	s := &sched.Greedy{A: c, Bound: 5}
	fragKey := func(f *psioa.Frag) string { return f.Key() }
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d, err := sched.SampleImageOpts(ctx, c, s, rng.New(1), 10, 5000, fragKey, nil, sched.Options{Workers: 4})
	if d != nil || !errors.Is(err, resilience.ErrCancelled) {
		t.Fatalf("cancelled = (%v, %v), want (nil, ErrCancelled)", d, err)
	}
	d, err = sched.SampleImageOpts(nil, c, s, rng.New(1), 10, 5000, fragKey,
		resilience.NewBudget(100, 0, 0), sched.Options{Workers: 4})
	if d != nil || !resilience.IsBudget(err) {
		t.Fatalf("budgeted = (%v, %v), want (nil, budget)", d, err)
	}
}

// settleGoroutines polls until the goroutine count returns to at most base
// or the deadline passes, absorbing scheduler lag.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines did not settle: %d running, want <= %d", n, base)
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosParallelMeasureCancel cancels the context from inside a scheduler
// choice while the sharded expansion is mid-level: the kernel must return
// the ErrCancelled sentinel with no partial measure and leak no goroutines.
func TestChaosParallelMeasureCancel(t *testing.T) {
	w := testaut.RandomWalk("w", 6, 0.5)
	inner := &sched.Random{A: w, Bound: 12}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := &sched.FuncSched{ID: "cancel-at-4", Fn: func(f *psioa.Frag) *sched.Choice {
		if f.Len() == 4 {
			cancel() // fired inside worker goroutines: frontier at depth 4 is 16
		}
		return inner.Choose(f)
	}}
	base := runtime.NumGoroutine()
	em, err := sched.MeasureOpts(ctx, w, s, 16, nil, sched.Options{Workers: 4})
	if !errors.Is(err, resilience.ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCancelled wrapping context.Canceled", err)
	}
	if em != nil {
		t.Error("cancellation must not return a partial measure")
	}
	settleGoroutines(t, base)
}

// TestChaosParallelMeasurePanic arms the transition.panic fault point once
// the expansion is inside the sharded level: the worker panic must surface
// as a *resilience.PanicError return — engine.Pool.Map's isolation rule —
// instead of crashing the process, and leak no goroutines.
func TestChaosParallelMeasurePanic(t *testing.T) {
	w := testaut.RandomWalk("w", 6, 0.5)
	inner := &sched.Random{A: w, Bound: 12}
	var once sync.Once
	var restore func()
	defer func() {
		if restore != nil {
			restore()
		}
	}()
	s := &sched.FuncSched{ID: "panic-at-4", Fn: func(f *psioa.Frag) *sched.Choice {
		if f.Len() == 4 {
			// Armed mid-level: every FirePanic call from here on runs inside
			// a worker goroutine of the depth-4 frontier (16 items, sharded).
			once.Do(func() {
				restore = resilience.InstallInjector(
					resilience.NewInjector(1).Arm(resilience.FaultTransitionPanic, 1))
			})
		}
		return inner.Choose(f)
	}}
	base := runtime.NumGoroutine()
	em, err := sched.MeasureOpts(context.Background(), w, s, 16, nil, sched.Options{Workers: 4})
	var pe *resilience.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if resilience.Class(err) != "panic" {
		t.Errorf("Class = %q, want panic", resilience.Class(err))
	}
	if em != nil {
		t.Error("a panicking expansion must not return a measure")
	}
	settleGoroutines(t, base)
}

// TestParallelMeasureRace drives the same parallel expansion from several
// goroutines at once (shared scheduler, shared automaton memos) so the race
// detector can see the full concurrent surface.
func TestParallelMeasureRace(t *testing.T) {
	w := testaut.RandomWalk("w", 5, 0.5)
	s := &sched.Random{A: w, Bound: 8}
	want, err := sched.Measure(w, s, 10)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			em, err := sched.MeasureOpts(context.Background(), w, s, 10, nil, sched.Options{Workers: 4})
			if err != nil {
				t.Errorf("concurrent MeasureOpts: %v", err)
				return
			}
			if em.Total() != want.Total() || em.Len() != want.Len() {
				t.Error("concurrent MeasureOpts diverged")
			}
		}()
	}
	wg.Wait()
}
