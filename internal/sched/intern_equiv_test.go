package sched_test

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/psioa"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/testaut"
)

// These tests pin the interned-core refactor (ROADMAP item 2): the kernels
// now run on dense intern IDs internally, and these properties check them
// bit for bit against independent string-keyed reference implementations
// on random automata. Bitwise — not approximate — equality is the
// contract: interning changes representation, never a float operation or
// its order.

// refMeasure is the pre-interning tree kernel, reimplemented here over
// string-keyed maps as an independent reference: same DFS, same pruning,
// same (action, successor) child order, halts keyed by fragment key, cone
// masses accumulated in sorted halted-key order over parent chains.
type refMeasure struct {
	halts map[string]float64
	cones map[string]float64
	total float64
}

func refExpand(a psioa.PSIOA, s sched.Scheduler, maxDepth int) (*refMeasure, error) {
	rm := &refMeasure{halts: map[string]float64{}, cones: map[string]float64{}}
	type item struct {
		f *psioa.Frag
		p float64
	}
	haltFrag := map[string]*psioa.Frag{}
	stack := []item{{psioa.NewFrag(a.Start()), 1}}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		f, p := it.f, it.p
		if p < 1e-15 {
			continue
		}
		choice := s.Choose(f)
		if !choice.IsSubProb() {
			return nil, fmt.Errorf("over-mass at %v", f)
		}
		if halt := choice.Deficit(); halt > 1e-15 {
			k := f.Key()
			rm.halts[k] += p * halt
			haltFrag[k] = f
		}
		if choice.Total() <= 1e-15 {
			continue
		}
		if f.Len() >= maxDepth {
			return nil, fmt.Errorf("depth exceeded at %v", f)
		}
		var kids []item
		lst := f.LState()
		for _, act := range choice.SortedSupport() {
			pa := choice.P(act)
			if pa <= 0 {
				continue
			}
			eta := a.Trans(lst, act)
			for _, q2 := range eta.SortedSupport() {
				pq := eta.P(q2)
				if pq <= 0 {
					continue
				}
				kids = append(kids, item{f.Extend(act, q2), p * pa * pq})
			}
		}
		for i := len(kids) - 1; i >= 0; i-- {
			stack = append(stack, kids[i])
		}
	}
	keys := make([]string, 0, len(rm.halts))
	for k := range rm.halts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		rm.total += rm.halts[k]
		for g := haltFrag[k]; g != nil; g = g.Parent() {
			rm.cones[g.Key()] += rm.halts[k]
		}
	}
	return rm, nil
}

func internEquivScheduler(a *psioa.Table, pick uint8) sched.Scheduler {
	switch pick % 3 {
	case 0:
		return &sched.Greedy{A: a, Bound: 5, LocalOnly: true}
	case 1:
		return &sched.Random{A: a, Bound: 5, LocalOnly: true}
	default:
		return &sched.Priority{A: a, Bound: 5, LocalOnly: true,
			Order: []psioa.Action{"a0_r", "a1_r", "a2_r", "a3_r"}}
	}
}

// TestInternedMeasureMatchesReferenceQuick: the interned tree kernel
// agrees bitwise with the string-keyed reference — support keys, halted
// masses, total, and every cone mass, queried both through retained
// fragments (dense fast path) and re-decoded foreign fragments (key
// fallback).
func TestInternedMeasureMatchesReferenceQuick(t *testing.T) {
	prop := func(seed uint64, pick uint8) bool {
		a := randomAut(seed)
		s := internEquivScheduler(a, pick)
		em, err := sched.Measure(a, s, 6)
		if err != nil {
			t.Logf("seed %d: measure: %v", seed, err)
			return false
		}
		ref, err := refExpand(a, s, 6)
		if err != nil {
			t.Logf("seed %d: reference: %v", seed, err)
			return false
		}
		if em.Total() != ref.total {
			t.Logf("seed %d: total %v != ref %v", seed, em.Total(), ref.total)
			return false
		}
		if em.Len() != len(ref.halts) {
			t.Logf("seed %d: support %d != ref %d", seed, em.Len(), len(ref.halts))
			return false
		}
		ok := true
		em.ForEach(func(f *psioa.Frag, p float64) {
			if ref.halts[f.Key()] != p {
				t.Logf("seed %d: halt %q mass %v != ref %v", seed, f.Key(), p, ref.halts[f.Key()])
				ok = false
			}
		})
		em.ForEachPrefix(func(f *psioa.Frag) {
			if got := em.Cone(f); got != ref.cones[f.Key()] {
				t.Logf("seed %d: cone(%q) %v != ref %v", seed, f.Key(), got, ref.cones[f.Key()])
				ok = false
			}
			// Foreign fragment with no intern ID: must take the key-indexed
			// fallback and agree exactly.
			re, err := psioa.FragFromKey(f.Key())
			if err != nil {
				t.Logf("seed %d: FragFromKey: %v", seed, err)
				ok = false
				return
			}
			if got := em.Cone(re); got != ref.cones[f.Key()] {
				t.Logf("seed %d: foreign cone(%q) %v != ref %v", seed, f.Key(), got, ref.cones[f.Key()])
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestInternIDAssignmentQuick: every retained fragment carries a dense
// intern ID consistent with retention order — the round-trip contract of
// the per-expansion interning (IDs are positions, positions resolve back
// to the same fragment).
func TestInternIDAssignmentQuick(t *testing.T) {
	prop := func(seed uint64, pick uint8) bool {
		a := randomAut(seed)
		em, err := sched.Measure(a, internEquivScheduler(a, pick), 6)
		if err != nil {
			return false
		}
		ids := map[uint32]bool{}
		ok := true
		n := 0
		em.ForEachPrefix(func(f *psioa.Frag) {
			n++
			id, has := f.InternID()
			if !has {
				t.Logf("seed %d: retained fragment %q has no intern ID", seed, f.Key())
				ok = false
				return
			}
			if ids[id] {
				t.Logf("seed %d: duplicate intern ID %d", seed, id)
				ok = false
			}
			ids[id] = true
		})
		if n != len(ids) {
			ok = false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestParallelMergeDeterminismQuick: the sharded kernel merges to a
// bitwise-identical measure at every worker count — same support order,
// same masses, same cone masses — on random (non-dyadic) workloads where
// any reordering of float sums would show.
func TestParallelMergeDeterminismQuick(t *testing.T) {
	prop := func(seed uint64, pick uint8) bool {
		a := randomAut(seed)
		s := internEquivScheduler(a, pick)
		base, err := sched.MeasureOpts(context.Background(), a, s, 6, nil, sched.Options{Workers: 1})
		if err != nil {
			return false
		}
		type line struct {
			k string
			p float64
		}
		render := func(em *sched.ExecMeasure) []line {
			var out []line
			em.ForEach(func(f *psioa.Frag, p float64) {
				out = append(out, line{f.Key(), p})
			})
			em.ForEachPrefix(func(f *psioa.Frag) {
				out = append(out, line{"C" + f.Key(), em.Cone(f)})
			})
			out = append(out, line{"T", em.Total()})
			return out
		}
		want := render(base)
		for _, w := range []int{2, 3, 8} {
			em, err := sched.MeasureOpts(context.Background(), a, s, 6, nil, sched.Options{Workers: w})
			if err != nil {
				t.Logf("seed %d workers %d: %v", seed, w, err)
				return false
			}
			got := render(em)
			if len(got) != len(want) {
				t.Logf("seed %d workers %d: %d lines != %d", seed, w, len(got), len(want))
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					t.Logf("seed %d workers %d: line %d %v != %v", seed, w, i, got[i], want[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// refDAG is the pre-interning map-keyed DAG propagation, reimplemented as
// an independent reference: map frontiers with sorted-state level order
// and (state, action, successor) sorted accumulation.
func refDAG(a psioa.PSIOA, s sched.DepthOblivious, maxDepth int) (halts [][3]interface{}, total float64, err error) {
	cur := map[psioa.State]float64{a.Start(): 1}
	order := []psioa.State{a.Start()}
	for d := 0; len(order) > 0; d++ {
		next := map[psioa.State]float64{}
		var nextOrder []psioa.State
		for _, q := range order {
			m := cur[q]
			if m < 1e-15 {
				continue
			}
			choice := s.ChooseAt(q, d)
			if !choice.IsSubProb() {
				return nil, 0, fmt.Errorf("over-mass at %q", q)
			}
			if halt := choice.Deficit(); halt > 1e-15 {
				halts = append(halts, [3]interface{}{q, d, m * halt})
				total += m * halt
			}
			if choice.Total() <= 1e-15 {
				continue
			}
			if d >= maxDepth {
				return nil, 0, fmt.Errorf("depth exceeded at %q", q)
			}
			for _, act := range choice.SortedSupport() {
				pa := choice.P(act)
				if pa <= 0 {
					continue
				}
				eta := a.Trans(q, act)
				for _, q2 := range eta.SortedSupport() {
					pq := eta.P(q2)
					if pq <= 0 {
						continue
					}
					if _, seen := next[q2]; !seen {
						nextOrder = append(nextOrder, q2)
					}
					next[q2] += m * pa * pq
				}
			}
		}
		sort.Slice(nextOrder, func(i, j int) bool { return nextOrder[i] < nextOrder[j] })
		cur, order = next, nextOrder
	}
	return halts, total, nil
}

// TestInternedDAGMatchesReferenceQuick: the interned DAG kernel (dense
// epoch-marked mass vectors) agrees bitwise with the map-keyed reference
// propagation — per-class halting masses in the same order, same totals —
// and with the tree kernel's total up to float summation order.
func TestInternedDAGMatchesReferenceQuick(t *testing.T) {
	prop := func(seed uint64, pick uint8) bool {
		a := randomAut(seed)
		s := internEquivScheduler(a, pick)
		dob, ok := sched.AsDepthOblivious(s)
		if !ok {
			t.Logf("scheduler not depth-oblivious")
			return false
		}
		dm, err := sched.MeasureDAG(context.Background(), a, dob, 6, nil)
		if err != nil {
			return false
		}
		refHalts, refTotal, err := refDAG(a, dob, 6)
		if err != nil {
			return false
		}
		if dm.Total() != refTotal {
			t.Logf("seed %d: dag total %v != ref %v", seed, dm.Total(), refTotal)
			return false
		}
		if dm.Classes() != len(refHalts) {
			t.Logf("seed %d: classes %d != ref %d", seed, dm.Classes(), len(refHalts))
			return false
		}
		i, good := 0, true
		dm.ForEach(func(q psioa.State, depth int, p float64) {
			h := refHalts[i]
			if q != h[0].(psioa.State) || depth != h[1].(int) || p != h[2].(float64) {
				t.Logf("seed %d: class %d (%q,%d,%v) != ref (%v,%v,%v)", seed, i, q, depth, p, h[0], h[1], h[2])
				good = false
			}
			i++
		})
		if !good {
			return false
		}
		em, err := sched.Measure(a, s, 6)
		if err != nil {
			return false
		}
		return math.Abs(dm.Total()-em.Total()) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSharedCachesConcurrentMeasure drives concurrent measures of one
// shared composed product through the shared memo tables (read-mostly
// sort memo and choice caches, mutex-guarded product caches). Under -race
// this is the soundness check for the lock-free snapshot reads the
// interned core introduced.
func TestSharedCachesConcurrentMeasure(t *testing.T) {
	c1 := testaut.RandomAutomaton("c1", testaut.RandomSpec{States: 4, Actions: 3, Branch: 2, InputShare: 0.3}, rng.New(7).Uint64)
	c2 := testaut.RandomAutomaton("c2", testaut.RandomSpec{States: 4, Actions: 3, Branch: 2, InputShare: 0.3}, rng.New(11).Uint64)
	prod, err := psioa.Compose(c1, c2)
	if err != nil {
		t.Fatalf("compose: %v", err)
	}
	s := &sched.Random{A: prod, Bound: 5, LocalOnly: true}
	want, err := sched.Measure(prod, s, 6)
	if err != nil {
		t.Fatalf("measure: %v", err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				em, err := sched.MeasureOpts(context.Background(), prod, s, 6, nil, sched.Options{Workers: 1 + g%3})
				if err != nil {
					errs[g] = err
					return
				}
				if em.Total() != want.Total() || em.Len() != want.Len() {
					errs[g] = fmt.Errorf("goroutine %d: total %v len %d != %v/%d", g, em.Total(), em.Len(), want.Total(), want.Len())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
